// Telemetry overhead gate: `make telemetry-overhead` (part of `make
// ci`) re-measures the end-to-end detailed engine — whose hot path now
// carries the telemetry layer's nil-tracer checks — and asserts it
// stays within 2% of the throughput recorded in BENCH_engine.json.
// Telemetry detached must be free; if this gate fails, a guard landed
// inside a loop instead of bracketing it (docs/TELEMETRY.md).
package offloadsim_test

import (
	"encoding/json"
	"os"
	"testing"

	"offloadsim/internal/enginebench"
)

// telemetryOverheadTolerance is the accepted wall-clock regression of
// the detailed engine with telemetry detached: 2%, generous against
// benchmark noise yet far below what any per-segment bookkeeping would
// cost.
const telemetryOverheadTolerance = 0.98

// TestTelemetryOverheadDisabled is env-gated like the bench writers: a
// no-op unless OFFLOADSIM_TELEMETRY_OVERHEAD names the recorded
// BENCH_engine.json, so plain `go test` stays fast.
//
// A 2% assertion cannot be a raw wall-clock comparison: shared-host
// throughput swings far more than 2% between the recording window and
// any CI run. Each attempt therefore has two ways to pass — the
// absolute recorded floor, or a host-normalized floor scaled by the
// CoreStep body, which exercises the same cpu/cache/directory machinery
// but contains no telemetry code at all. CoreStep and DetailedRun run
// back-to-back, so host-speed drift cancels out of their ratio while a
// genuine nil-tracer regression (which slows only DetailedRun) does
// not. Best of up to five attempts, stopping early once the gate is
// met: the question is whether the engine *can* still reach the
// recorded speed, not whether every run does.
func TestTelemetryOverheadDisabled(t *testing.T) {
	path := os.Getenv("OFFLOADSIM_TELEMETRY_OVERHEAD")
	if path == "" {
		t.Skip("set OFFLOADSIM_TELEMETRY_OVERHEAD=BENCH_engine.json to run the overhead gate")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading recorded engine bench: %v", err)
	}
	var file struct {
		Current struct {
			DetailedInstrsPerS float64 `json:"detailed_sim_instrs_per_sec"`
			CoreStepNsPerInstr float64 `json:"core_step_ns_per_instr"`
		} `json:"current"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	recorded := file.Current.DetailedInstrsPerS
	recordedStep := file.Current.CoreStepNsPerInstr
	if recorded <= 0 || recordedStep <= 0 {
		t.Fatalf("%s records no detailed_sim_instrs_per_sec / core_step_ns_per_instr", path)
	}

	floor := telemetryOverheadTolerance * recorded
	var best, bestRatio float64
	for attempt := 0; attempt < 5; attempt++ {
		r := testing.Benchmark(enginebench.DetailedRun)
		cur := r.Extra["sim_instrs/s"]
		if cur > best {
			best = cur
		}
		if cur >= floor {
			t.Logf("detailed engine with telemetry detached: %.2fM sim instrs/s vs recorded %.2fM (%.1f%%)",
				cur/1e6, recorded/1e6, 100*cur/recorded)
			return
		}
		// Below the absolute floor — normalize by current host speed
		// via the telemetry-free CoreStep body measured immediately
		// after, under the same host conditions.
		s := testing.Benchmark(enginebench.CoreStep)
		stepNs := float64(s.T.Nanoseconds()) / float64(s.N) / s.Extra["instrs/op"]
		if stepNs <= 0 {
			continue
		}
		hostScale := recordedStep / stepNs // <1 when the host is currently slower
		ratio := cur / (recorded * hostScale)
		if ratio > bestRatio {
			bestRatio = ratio
		}
		if ratio >= telemetryOverheadTolerance {
			t.Logf("detailed engine with telemetry detached: %.2fM sim instrs/s = %.1f%% of the recorded %.2fM host-normalized by CoreStep (%.2f vs %.2f ns/instr)",
				cur/1e6, 100*ratio, recorded/1e6, stepNs, recordedStep)
			return
		}
	}
	t.Errorf("detailed engine with telemetry detached: best %.2fM sim instrs/s, below 98%% of the recorded %.2fM even host-normalized (best ratio %.1f%%, %s) — the nil-tracer fast path has regressed",
		best/1e6, recorded/1e6, 100*bestRatio, path)
}

// BenchmarkEngineTracedRun is the enabled-cost counterpart for manual
// comparison against BenchmarkEngineDetailedRun: the same end-to-end
// body with the event trace and interval series attached.
func BenchmarkEngineTracedRun(b *testing.B) { enginebench.TracedRun(b) }
