package offloadsim_test

import (
	"testing"

	"offloadsim"
)

func TestFacadeQuickstart(t *testing.T) {
	prof, ok := offloadsim.WorkloadByName("apache")
	if !ok {
		t.Fatal("apache profile missing")
	}
	cfg := offloadsim.DefaultConfig(prof)
	cfg.Policy = offloadsim.HardwarePredictor
	cfg.Threshold = 100
	cfg.Migration = offloadsim.Aggressive()
	cfg.WarmupInstrs = 50_000
	cfg.MeasureInstrs = 150_000
	res, err := offloadsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput %v", res.Throughput)
	}
	if res.Offloads == 0 {
		t.Fatal("no off-loads at N=100 on apache")
	}
}

func TestFacadeRejectsBadConfig(t *testing.T) {
	prof, _ := offloadsim.WorkloadByName("derby")
	cfg := offloadsim.DefaultConfig(prof)
	cfg.UserCores = 0
	if _, err := offloadsim.Run(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := offloadsim.New(cfg); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

func TestFacadeWorkloadSets(t *testing.T) {
	if len(offloadsim.Workloads()) != 9 {
		t.Fatalf("workloads = %d", len(offloadsim.Workloads()))
	}
	if len(offloadsim.ServerWorkloads()) != 3 || len(offloadsim.ComputeWorkloads()) != 6 {
		t.Fatal("suite split wrong")
	}
	if len(offloadsim.WorkloadNames()) != 9 {
		t.Fatal("names incomplete")
	}
	if _, ok := offloadsim.WorkloadByName("nosuch"); ok {
		t.Fatal("unknown workload resolved")
	}
}

func TestFacadeMigrationEngines(t *testing.T) {
	if offloadsim.Conservative().OneWay != 5000 ||
		offloadsim.Fast().OneWay != 3000 ||
		offloadsim.Aggressive().OneWay != 100 ||
		offloadsim.CustomMigration(42).OneWay != 42 {
		t.Fatal("migration engine latencies wrong")
	}
}

func TestFacadePredictorDirect(t *testing.T) {
	p := offloadsim.NewCAMPredictor(offloadsim.DefaultCAMEntries)
	p.Update(7, 500)
	p.Update(7, 500)
	if got := p.Predict(7); got.Length != 500 {
		t.Fatalf("predictor via facade returned %+v", got)
	}
	dm := offloadsim.NewDirectMappedPredictor(offloadsim.DefaultDirectMappedEntries)
	if dm.StorageBits() == 0 {
		t.Fatal("direct-mapped storage unreported")
	}
}

func TestFacadeTunerConfig(t *testing.T) {
	tc := offloadsim.DefaultTunerConfig()
	if tc.SampleEpoch != 25_000_000 {
		t.Fatalf("sample epoch %d, want paper's 25M", tc.SampleEpoch)
	}
	if err := tc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExperimentOptions(t *testing.T) {
	if offloadsim.DefaultExperimentOptions().MeasureInstrs <= offloadsim.QuickExperimentOptions().MeasureInstrs {
		t.Fatal("default options should be larger than quick options")
	}
}

func TestFacadeEnergy(t *testing.T) {
	prof, _ := offloadsim.WorkloadByName("apache")
	cfg := offloadsim.DefaultConfig(prof)
	cfg.Policy = offloadsim.HardwarePredictor
	cfg.Threshold = 100
	cfg.WarmupInstrs = 100_000
	cfg.MeasureInstrs = 200_000
	res, err := offloadsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := offloadsim.Energy(res, offloadsim.DefaultEnergyModel())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Joules <= 0 || rep.Seconds <= 0 || rep.EDP <= 0 {
		t.Fatalf("degenerate energy report: %+v", rep)
	}
	if rep.AvgWatts <= 0 || rep.AvgWatts > 20 {
		t.Fatalf("implausible average power %v W", rep.AvgWatts)
	}
	// An invalid model must be rejected.
	bad := offloadsim.DefaultEnergyModel()
	bad.ClockGHz = 0
	if _, err := offloadsim.Energy(res, bad); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestFacadeExtensions(t *testing.T) {
	apache, _ := offloadsim.WorkloadByName("apache")
	mcf, _ := offloadsim.WorkloadByName("mcf")

	cfg := offloadsim.DefaultConfig(apache)
	cfg.Policy = offloadsim.HardwarePredictor
	cfg.Threshold = 100
	cfg.UserCores = 2
	cfg.Workloads = []*offloadsim.Workload{apache, mcf} // consolidation
	cfg.OSCoreSlots = 2                                 // SMT OS core
	cc := offloadsim.DefaultCoherenceConfig()
	cc.Protocol = offloadsim.MOESI // protocol extension
	cfg.Coherence = cc
	osCPU := offloadsim.DefaultCPUConfig() // heterogeneous OS core
	osCPU.L1I.SizeBytes = 16 << 10
	osCPU.L1D.SizeBytes = 16 << 10
	cfg.OSCPU = &osCPU
	cfg.WarmupInstrs = 80_000
	cfg.MeasureInstrs = 150_000

	res, err := offloadsim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "mixed" {
		t.Fatalf("consolidated run labeled %q", res.Workload)
	}
	if len(res.PerCoreIPC) != 2 {
		t.Fatal("per-core results missing")
	}
	if res.Offloads == 0 {
		t.Fatal("extension stack never off-loaded")
	}
}
