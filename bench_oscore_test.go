// Multi-OS-core trajectory bench, the writer behind `make bench-oscore`:
// OFFLOADSIM_BENCH_OSCORE=BENCH_oscore.json go test -run
// TestWriteBenchOSCoreJSON sweeps the off-load cluster size on a
// 4-user-core apache run and records, per cell, aggregate throughput,
// simulation wall speed and the off-load latency distribution pulled
// from the telemetry event trace (docs/OSCORES.md). The host CPU count
// is stamped into the file: the engine is single-goroutine, but wall
// speeds are only comparable across hosts of the same class.
package offloadsim_test

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"offloadsim"
)

// benchOSCoreCell is one cluster shape's row in BENCH_oscore.json.
type benchOSCoreCell struct {
	Name            string  `json:"name"`
	K               int     `json:"os_cores"`
	Async           bool    `json:"async,omitempty"`
	Asymmetry       string  `json:"asymmetry,omitempty"`
	Throughput      float64 `json:"throughput"`
	Offloads        uint64  `json:"offloads"`
	WallSeconds     float64 `json:"wall_seconds"`
	SimInstrsPerSec float64 `json:"sim_instrs_per_sec"`
	// Off-load round-trip latency distribution in cycles (dispatch to
	// return), from the telemetry event trace. Async cells instead
	// distribute the reconciliation stalls their user cores paid.
	LatencySource string  `json:"latency_source"`
	LatencyCount  int     `json:"latency_count"`
	LatencyP50    float64 `json:"latency_p50_cycles"`
	LatencyP95    float64 `json:"latency_p95_cycles"`
	LatencyMax    float64 `json:"latency_max_cycles"`
}

type benchOSCoreFile struct {
	Sweep    string            `json:"sweep"`
	HostCPUs int               `json:"host_cpus"`
	Cells    []benchOSCoreCell `json:"cells"`
}

// benchOSCoreConfig builds the shared 4-user-core apache cell.
func benchOSCoreConfig(tb testing.TB, block offloadsim.OSCores) offloadsim.Config {
	prof, ok := offloadsim.WorkloadByName("apache")
	if !ok {
		tb.Fatal("apache profile missing")
	}
	cfg := offloadsim.DefaultConfig(prof)
	cfg.Policy = offloadsim.HardwarePredictor
	cfg.Threshold = 100
	cfg.UserCores = 4
	cfg.WarmupInstrs = 500_000
	cfg.MeasureInstrs = 4_000_000
	cfg.OSCores = block
	return cfg
}

// cyclesPercentile reads the p-th percentile of a sorted slice.
func cyclesPercentile(sorted []uint64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return float64(sorted[int(p*float64(len(sorted)-1))])
}

// TestWriteBenchOSCoreJSON is the engine of `make bench-oscore`. It is a
// no-op unless OFFLOADSIM_BENCH_OSCORE names the output file, so plain
// `go test` stays fast.
func TestWriteBenchOSCoreJSON(t *testing.T) {
	path := os.Getenv("OFFLOADSIM_BENCH_OSCORE")
	if path == "" {
		t.Skip("set OFFLOADSIM_BENCH_OSCORE=<file> to run the OS-core bench")
	}
	cells := []struct {
		name  string
		block offloadsim.OSCores
	}{
		{"k1-legacy", offloadsim.OSCores{}},
		{"k2-sync", offloadsim.OSCores{Enabled: true, K: 2, Rebalance: true}},
		{"k4-sync", offloadsim.OSCores{Enabled: true, K: 4, Rebalance: true}},
		{"k4-async-biglittle", offloadsim.OSCores{
			Enabled: true, K: 4, Async: true,
			Asymmetry: "1,1,0.5,0.5", Rebalance: true,
		}},
	}
	out := benchOSCoreFile{
		Sweep:    "oscore-count apache 4 user cores HI N=100, K={1,2,4}+async",
		HostCPUs: runtime.NumCPU(),
	}
	for _, cell := range cells {
		cfg := benchOSCoreConfig(t, cell.block)
		start := time.Now()
		res, capt, err := offloadsim.RunTraced(cfg,
			offloadsim.TelemetryOptions{Events: true, RingEvents: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		wall := time.Since(start)

		// Sync cells distribute the full off-load round trip; async cells
		// never price a round trip on the user core, so they distribute
		// the reconciliation stalls instead.
		wantKind, source := "offload_return", "offload_return cycles"
		if cell.block.Async {
			wantKind, source = "async_return", "async reconcile stall cycles"
		}
		var lats []uint64
		for _, ev := range capt.Events {
			if ev.Kind.String() == wantKind {
				lats = append(lats, ev.Cycles)
			}
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		out.Cells = append(out.Cells, benchOSCoreCell{
			Name:            cell.name,
			K:               max(cell.block.K, 1),
			Async:           cell.block.Async,
			Asymmetry:       cell.block.Asymmetry,
			Throughput:      res.Throughput,
			Offloads:        res.Offloads,
			WallSeconds:     wall.Seconds(),
			SimInstrsPerSec: float64(res.Instrs) / wall.Seconds(),
			LatencySource:   source,
			LatencyCount:    len(lats),
			LatencyP50:      cyclesPercentile(lats, 0.50),
			LatencyP95:      cyclesPercentile(lats, 0.95),
			LatencyMax:      cyclesPercentile(lats, 1.0),
		})
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	for _, c := range out.Cells {
		t.Logf("%s: throughput %.4f, %d off-loads, p50 %v / p95 %v cycles (%s)",
			c.Name, c.Throughput, c.Offloads, c.LatencyP50, c.LatencyP95, c.LatencySource)
	}
}
