// Figure-4 sweep benchmark in both execution modes, and the writer
// behind `make bench-json`: OFFLOADSIM_BENCH_JSON=BENCH_sweep.json
// go test -run TestWriteBenchSweepJSON runs the sweep detailed and
// sampled and records ns/op, simulated instructions per second and the
// sampled-over-detailed speedup.
package offloadsim_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"offloadsim"
)

// sweepBudget is the per-run measurement budget of the bench sweep —
// large enough that per-run fixed costs (trace setup, warmup) do not
// drown the mode difference the bench exists to show.
const sweepBudget = 8_000_000

// benchSweepConfigs builds the Figure-4 threshold sweep: per workload a
// baseline plus the hardware predictor at each threshold.
func benchSweepConfigs(sampled bool) []offloadsim.Config {
	var cfgs []offloadsim.Config
	for _, name := range []string{"apache", "specjbb"} {
		prof, ok := offloadsim.WorkloadByName(name)
		if !ok {
			panic(name)
		}
		for _, n := range []int{-1, 50, 100, 250} {
			cfg := offloadsim.DefaultConfig(prof)
			if n < 0 {
				cfg.Policy = offloadsim.Baseline
				cfg.Threshold = 0
			} else {
				cfg.Threshold = n
			}
			cfg.WarmupInstrs = 500_000
			cfg.MeasureInstrs = sweepBudget
			if sampled {
				cfg.Sampling = offloadsim.DefaultSampling()
			}
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

// runBenchSweep executes the sweep once and returns its wall time and
// total measured instructions.
func runBenchSweep(tb testing.TB, sampled bool) (time.Duration, uint64) {
	cfgs := benchSweepConfigs(sampled)
	start := time.Now()
	var instrs uint64
	for _, cfg := range cfgs {
		var res offloadsim.Result
		var err error
		if sampled {
			res, _, err = offloadsim.RunSampled(cfg)
		} else {
			res, err = offloadsim.Run(cfg)
		}
		if err != nil {
			tb.Fatal(err)
		}
		instrs += res.Instrs
	}
	return time.Since(start), instrs
}

func BenchmarkFigure4SweepDetailed(b *testing.B) {
	var instrs uint64
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		d, n := runBenchSweep(b, false)
		elapsed += d
		instrs += n
	}
	b.ReportMetric(float64(instrs)/elapsed.Seconds(), "sim_instrs/s")
}

func BenchmarkFigure4SweepSampled(b *testing.B) {
	var instrs uint64
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		d, n := runBenchSweep(b, true)
		elapsed += d
		instrs += n
	}
	b.ReportMetric(float64(instrs)/elapsed.Seconds(), "sim_instrs/s")
}

// benchSweepMode is one mode's row in BENCH_sweep.json.
type benchSweepMode struct {
	Mode            string  `json:"mode"`
	NsPerOp         float64 `json:"ns_per_op"`
	SimInstrsPerSec float64 `json:"sim_instrs_per_sec"`
	Instrs          uint64  `json:"simulated_instrs"`
}

type benchSweepFile struct {
	Sweep   string           `json:"sweep"`
	Modes   []benchSweepMode `json:"modes"`
	Speedup float64          `json:"speedup"`
}

// TestWriteBenchSweepJSON is the engine of `make bench-json`. It is a
// no-op unless OFFLOADSIM_BENCH_JSON names the output file, so plain
// `go test` stays fast.
func TestWriteBenchSweepJSON(t *testing.T) {
	path := os.Getenv("OFFLOADSIM_BENCH_JSON")
	if path == "" {
		t.Skip("set OFFLOADSIM_BENCH_JSON=<file> to run the sweep bench")
	}
	out := benchSweepFile{Sweep: "figure4-thresholds apache+specjbb N={50,100,250}+baseline"}
	for _, mode := range []string{"detailed", "sampled"} {
		d, instrs := runBenchSweep(t, mode == "sampled")
		out.Modes = append(out.Modes, benchSweepMode{
			Mode:            mode,
			NsPerOp:         float64(d.Nanoseconds()),
			SimInstrsPerSec: float64(instrs) / d.Seconds(),
			Instrs:          instrs,
		})
	}
	out.Speedup = out.Modes[1].SimInstrsPerSec / out.Modes[0].SimInstrsPerSec
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: detailed %.2fs, sampled %.2fs, speedup %.1fx",
		path, out.Modes[0].NsPerOp/1e9, out.Modes[1].NsPerOp/1e9, out.Speedup)
}
