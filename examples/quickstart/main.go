// Quickstart: run the Apache-like server workload with and without the
// paper's hardware off-loading predictor and compare throughput.
//
//	go run ./examples/quickstart
//
// Expected output: the HI configuration off-loads most system calls to
// the OS core and delivers substantially higher throughput than the
// single-core baseline, with the predictor reporting its run-length and
// binary decision accuracy.
package main

import (
	"fmt"
	"log"

	"offloadsim"
)

func main() {
	prof, ok := offloadsim.WorkloadByName("apache")
	if !ok {
		log.Fatal("apache profile missing")
	}

	// Baseline: everything executes on one core with one private L2.
	base := offloadsim.DefaultConfig(prof)
	base.Policy = offloadsim.Baseline
	base.WarmupInstrs = 2_000_000
	base.MeasureInstrs = 2_000_000
	baseRes, err := offloadsim.Run(base)
	if err != nil {
		log.Fatal(err)
	}

	// HI: the hardware run-length predictor decides, threshold N=100,
	// over the aggressive (100-cycle) migration engine.
	hi := base
	hi.Policy = offloadsim.HardwarePredictor
	hi.Threshold = 100
	hi.Migration = offloadsim.Aggressive()
	hiRes, err := offloadsim.Run(hi)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s (%s)\n\n", prof.Name, prof.Description)
	fmt.Printf("baseline (single core):\n")
	fmt.Printf("  throughput        %.4f instr/cycle\n", baseRes.Throughput)
	fmt.Printf("  user L2 hit rate  %.3f\n\n", baseRes.UserL2HitRate)

	fmt.Printf("HI off-loading (N=%d, %d-cycle migration):\n", hiRes.Threshold, hiRes.OneWay)
	fmt.Printf("  throughput        %.4f instr/cycle\n", hiRes.Throughput)
	fmt.Printf("  speedup           %.2fx\n", hiRes.Throughput/baseRes.Throughput)
	fmt.Printf("  OS entries        %d, off-loaded %.1f%%\n", hiRes.OSEntries, 100*hiRes.OffloadRate)
	fmt.Printf("  OS core busy      %.1f%%\n", 100*hiRes.OSCoreUtilization)
	fmt.Printf("  user L2 hit rate  %.3f   OS core L2 hit rate %.3f\n",
		hiRes.UserL2HitRate, hiRes.OSL2HitRate)
	fmt.Printf("  predictor         %.1f%% exact + %.1f%% within ±5%% (syscalls)\n",
		100*hiRes.PredictorExact, 100*hiRes.PredictorWithin5)
	fmt.Printf("  binary decisions  %.1f%% match the run-length oracle\n",
		100*hiRes.BinaryAccuracy)
}
