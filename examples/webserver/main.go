// Webserver study: sweep the off-loading threshold N for the Apache-like
// workload at several migration latencies, reproducing the central
// trade-off of the paper's Figure 4 — off-loading short OS sequences pays
// off only when migration is cheap, and off-loading *everything* (N=0)
// backfires because user/OS shared data starts ping-ponging between the
// two caches.
//
//	go run ./examples/webserver
package main

import (
	"fmt"
	"log"

	"offloadsim"
)

func main() {
	prof, ok := offloadsim.WorkloadByName("apache")
	if !ok {
		log.Fatal("apache profile missing")
	}

	mk := func(policy offloadsim.PolicyKind, n, latency int) offloadsim.Result {
		cfg := offloadsim.DefaultConfig(prof)
		cfg.Policy = policy
		cfg.Threshold = n
		cfg.Migration = offloadsim.CustomMigration(latency)
		cfg.WarmupInstrs = 2_000_000
		cfg.MeasureInstrs = 2_000_000
		res, err := offloadsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := mk(offloadsim.Baseline, 0, 0)
	fmt.Printf("apache baseline: %.4f instr/cycle\n\n", base.Throughput)

	thresholds := []int{0, 50, 100, 500, 1000, 10000}
	latencies := []int{0, 100, 1000, 5000}

	fmt.Printf("normalized throughput (HI policy; 1.00 = baseline)\n")
	fmt.Printf("%-12s", "one-way lat")
	for _, n := range thresholds {
		fmt.Printf("  N=%-6d", n)
	}
	fmt.Println()
	for _, lat := range latencies {
		fmt.Printf("%-12d", lat)
		for _, n := range thresholds {
			r := mk(offloadsim.HardwarePredictor, n, lat)
			fmt.Printf("  %-8.3f", r.Throughput/base.Throughput)
		}
		fmt.Println()
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  - each column is an off-load threshold N (instructions);")
	fmt.Println("    invocations predicted longer than N migrate to the OS core")
	fmt.Println("  - cheap migration (top rows) rewards small N: even ~100-instruction")
	fmt.Println("    OS sequences are worth off-loading")
	fmt.Println("  - N=0 also moves the register-window spill/fill traps, whose user-stack")
	fmt.Println("    traffic ping-pongs between caches: performance drops back")
	fmt.Println("  - at 5,000-cycle migration only the long tail pays for the trip")
}
