// Capacity planning: how many user cores can share one OS core?
// Reproduces the paper's §V-C scaling study: with aggressive off-loading
// (N=100) the OS core's utilization climbs quickly, queuing delay grows
// superlinearly with the user-core count, and per-core throughput decays —
// the basis for the paper's conclusion that 1:1 (or at most 2:1)
// provisioning is appropriate.
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"

	"offloadsim"
)

func main() {
	prof, ok := offloadsim.WorkloadByName("specjbb")
	if !ok {
		log.Fatal("specjbb profile missing")
	}

	fmt.Printf("workload: %s (%s)\n", prof.Name, prof.Description)
	fmt.Printf("policy:   HI, N=100, 1,000-cycle one-way migration, one shared OS core\n\n")
	fmt.Printf("%-8s %-10s %-10s %-12s %-10s %-12s\n",
		"cores", "agg tput", "per-core", "queue mean", "queue max", "OS core busy")

	var oneCore float64
	for _, cores := range []int{1, 2, 4, 8} {
		cfg := offloadsim.DefaultConfig(prof)
		cfg.Policy = offloadsim.HardwarePredictor
		cfg.Threshold = 100
		cfg.Migration = offloadsim.CustomMigration(1000)
		cfg.UserCores = cores
		cfg.WarmupInstrs = 1_000_000
		cfg.MeasureInstrs = 1_000_000
		res, err := offloadsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if cores == 1 {
			oneCore = res.Throughput
		}
		fmt.Printf("%-8d %-10.4f %-10.4f %-12.0f %-10.0f %-12s\n",
			cores, res.Throughput, res.Throughput/float64(cores),
			res.MeanQueueDelay, res.MaxQueueDelay,
			fmt.Sprintf("%.1f%%", 100*res.OSCoreUtilization))
	}

	fmt.Printf("\n(1:1 aggregate = %.4f; watch per-core throughput fall and queuing\n", oneCore)
	fmt.Printf(" delay grow as more user cores contend for the single OS core)\n")
}
