// Command loadtest fires K concurrent job submissions at a running
// offsimd and reports latency percentiles, the cache-hit ratio and how
// much backpressure (429) the daemon pushed back. It doubles as a smoke
// test for the serving path:
//
//	go run ./cmd/offsimd -addr :8080 &
//	go run ./examples/loadtest -addr http://localhost:8080 -k 16 -jobs 96
//
// Specs are drawn from a small sweep grid with deliberate repeats, so a
// healthy run shows a rising cache-hit ratio as the grid fills in.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

type jobSpec struct {
	Workload      string `json:"workload"`
	Policy        string `json:"policy,omitempty"`
	Threshold     *int   `json:"threshold,omitempty"`
	LatencyCycles *int   `json:"latency_cycles,omitempty"`
	WarmupInstrs  uint64 `json:"warmup_instrs"`
	MeasureInstrs uint64 `json:"measure_instrs"`
	Seed          uint64 `json:"seed"`
}

type jobStatus struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
	Error  string `json:"error,omitempty"`
}

type sample struct {
	latency time.Duration
	cached  bool
}

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8080", "offsimd base URL")
		k       = flag.Int("k", 16, "concurrent submitters")
		jobs    = flag.Int("jobs", 96, "total submissions")
		measure = flag.Uint64("measure", 200_000, "measured instructions per job")
		seeds   = flag.Uint64("seeds", 4, "distinct seeds per grid point (controls repeat rate)")
		timeout = flag.Duration("timeout", 2*time.Minute, "per-job completion deadline")
	)
	flag.Parse()
	if *k < 1 || *jobs < 1 || *seeds < 1 || *measure == 0 {
		fmt.Fprintln(os.Stderr, "loadtest: -k, -jobs, -seeds must be >= 1 and -measure positive")
		os.Exit(2)
	}

	// A small grid with repeats: workloads x thresholds x seeds.
	workloads := []string{"apache", "specjbb", "derby"}
	thresholds := []int{100, 1000}
	latency := 100

	client := &http.Client{Timeout: 30 * time.Second}
	var (
		mu       sync.Mutex
		samples  []sample
		rejected atomic.Int64
		failed   atomic.Int64
	)
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for range work {
				spec := jobSpec{
					Workload:      workloads[rng.Intn(len(workloads))],
					Policy:        "HI",
					WarmupInstrs:  0,
					MeasureInstrs: *measure,
					Seed:          uint64(rng.Int63n(int64(*seeds))) + 1,
				}
				thr := thresholds[rng.Intn(len(thresholds))]
				spec.Threshold = &thr
				spec.LatencyCycles = &latency
				s, err := runOne(client, *addr, spec, *timeout, &rejected)
				if err != nil {
					failed.Add(1)
					fmt.Fprintf(os.Stderr, "loadtest: %v\n", err)
					continue
				}
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
			}
		}(w)
	}
	for i := 0; i < *jobs; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "loadtest: no job completed")
		os.Exit(1)
	}
	lats := make([]time.Duration, len(samples))
	hits := 0
	for i, s := range samples {
		lats[i] = s.latency
		if s.cached {
			hits++
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(lats)-1))
		return lats[idx]
	}
	fmt.Printf("completed           %d/%d jobs in %v (%.1f jobs/s)\n",
		len(samples), *jobs, wall.Round(time.Millisecond),
		float64(len(samples))/wall.Seconds())
	fmt.Printf("latency p50         %v\n", pct(0.50).Round(time.Microsecond))
	fmt.Printf("latency p95         %v\n", pct(0.95).Round(time.Microsecond))
	fmt.Printf("latency p99         %v\n", pct(0.99).Round(time.Microsecond))
	fmt.Printf("cache-hit ratio     %.1f%% (%d/%d)\n",
		100*float64(hits)/float64(len(samples)), hits, len(samples))
	fmt.Printf("backpressure 429s   %d (retried)\n", rejected.Load())
	fmt.Printf("failed jobs         %d\n", failed.Load())
	if failed.Load() > 0 {
		os.Exit(1)
	}
}

// runOne submits one spec (retrying on 429 backpressure) and waits for
// the job to finish, returning its end-to-end latency.
func runOne(client *http.Client, addr string, spec jobSpec, timeout time.Duration, rejected *atomic.Int64) (sample, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return sample{}, err
	}
	deadline := time.Now().Add(timeout)
	start := time.Now()

	var st jobStatus
	for {
		resp, err := client.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return sample{}, err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			// Backpressure: honor it and retry.
			rejected.Add(1)
			if time.Now().After(deadline) {
				return sample{}, fmt.Errorf("still rejected at deadline")
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			return sample{}, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, raw)
		}
		if err := json.Unmarshal(raw, &st); err != nil {
			return sample{}, fmt.Errorf("submit: bad status document: %w", err)
		}
		break
	}

	for st.State != "done" && st.State != "failed" {
		if time.Now().After(deadline) {
			return sample{}, fmt.Errorf("job %s: not finished at deadline (state %s)", st.ID, st.State)
		}
		time.Sleep(10 * time.Millisecond)
		resp, err := client.Get(addr + "/v1/jobs/" + st.ID)
		if err != nil {
			return sample{}, err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return sample{}, fmt.Errorf("status %s: HTTP %d: %s", st.ID, resp.StatusCode, raw)
		}
		if err := json.Unmarshal(raw, &st); err != nil {
			return sample{}, err
		}
	}
	if st.State == "failed" {
		return sample{}, fmt.Errorf("job %s failed: %s", st.ID, st.Error)
	}
	return sample{latency: time.Since(start), cached: st.Cached}, nil
}
