// Command loadtest drives a running offsimd — one replica or a whole
// fleet — and reports latency percentiles, the fleet-wide cache-hit
// ratio and the work-steal rate. It doubles as the serving-path SLO
// gate: -p95-max and -hit-min turn the report into a non-zero exit
// when the daemon misses its targets.
//
// Two arrival disciplines:
//
//	-arrival closed  (default) K submitters in a closed loop: each waits
//	                 for its job to finish before submitting the next.
//	                 -jobs bounds the total.
//	-arrival open    Poisson-less fixed-rate arrivals: -rate jobs/s for
//	                 -duration, regardless of completions (finds the
//	                 saturation knee).
//
// Examples:
//
//	go run ./cmd/offsimd -addr :8080 &
//	go run ./examples/loadtest -addrs http://localhost:8080 -k 16 -jobs 96
//
//	# 3-replica fleet with SLO gates:
//	go run ./examples/loadtest \
//	    -addrs http://localhost:8080,http://localhost:8081,http://localhost:8082 \
//	    -jobs 120 -p95-max 5s -hit-min 0.5
//
//	# multi-OS-core cluster scenario (docs/OSCORES.md):
//	go run ./examples/loadtest -addrs http://localhost:8080 \
//	    -os-cores 2 -asymmetry 1,0.5 -async -jobs 48
//
// Specs are drawn from a small sweep grid with deliberate repeats, so a
// healthy run shows a rising cache-hit ratio as the grid fills in. In a
// fleet, submissions round-robin across replicas and each job is polled
// at the replica the status document names — the one that owns it.
//
// -slo-report writes the same numbers as machine-readable JSON, plus a
// per-stage latency breakdown (admission, queue_wait, sim_execute, ...)
// scraped from a sample of the daemon's service traces via
// /v1/debug/traces/{id} — empty when the daemon runs with -tracing=false
// (docs/OBSERVABILITY.md).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type jobSpec struct {
	Workload      string `json:"workload"`
	Policy        string `json:"policy,omitempty"`
	Threshold     *int   `json:"threshold,omitempty"`
	LatencyCycles *int   `json:"latency_cycles,omitempty"`
	Cores         int    `json:"cores,omitempty"`
	OSCores       int    `json:"os_cores,omitempty"`
	Affinity      string `json:"affinity,omitempty"`
	Asymmetry     string `json:"asymmetry,omitempty"`
	Async         bool   `json:"async,omitempty"`
	WarmupInstrs  uint64 `json:"warmup_instrs"`
	MeasureInstrs uint64 `json:"measure_instrs"`
	Seed          uint64 `json:"seed"`
}

type jobStatus struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Cached  bool   `json:"cached"`
	Stolen  bool   `json:"stolen"`
	Replica string `json:"replica"`
	Error   string `json:"error,omitempty"`
}

type sample struct {
	id      string
	replica string
	latency time.Duration
	cached  bool
	stolen  bool
}

// span is the slice of the /v1/debug/traces span document the stage
// breakdown needs; kept local so the loadtest reads like an external
// client (docs/OBSERVABILITY.md).
type span struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_unix_ns"`
	EndNS   int64  `json:"end_unix_ns"`
}

// stageStats aggregates one span name's durations across the sampled
// traces.
type stageStats struct {
	Spans  int     `json:"spans"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// sloReport is the machine-readable run summary -slo-report writes: the
// same numbers the human report prints, plus the per-stage latency
// breakdown scraped from the daemon's service traces.
type sloReport struct {
	Arrival       string  `json:"arrival"`
	Replicas      int     `json:"replicas"`
	Completed     int     `json:"completed"`
	Submitted     int     `json:"submitted"`
	WallMS        float64 `json:"wall_ms"`
	JobsPerSecond float64 `json:"jobs_per_second"`
	P50MS         float64 `json:"latency_p50_ms"`
	P95MS         float64 `json:"latency_p95_ms"`
	P99MS         float64 `json:"latency_p99_ms"`
	FleetHitRatio float64 `json:"fleet_cache_hit_ratio"`
	StealRate     float64 `json:"fleet_steal_rate"`
	Rejected429   int64   `json:"rejected_429"`
	Failed        int64   `json:"failed"`
	// SLO echoes the gates and whether each one failed; Pass is the
	// process exit contract (false exits non-zero).
	SLO struct {
		P95MaxMS       float64 `json:"p95_max_ms,omitempty"`
		P95Violated    bool    `json:"p95_violated"`
		HitMin         float64 `json:"hit_min,omitempty"`
		HitMinViolated bool    `json:"hit_min_violated"`
		Pass           bool    `json:"pass"`
	} `json:"slo"`
	// TracedJobs counts the completed jobs whose service trace was
	// scraped for the stage breakdown (0 when the daemon runs with
	// tracing disabled).
	TracedJobs int                   `json:"traced_jobs"`
	Stages     map[string]stageStats `json:"stage_latency_ms,omitempty"`
}

// fleetCounters are the /metrics series the report aggregates across
// replicas (deltas over the run).
type fleetCounters struct {
	submitted float64
	hits      float64
	peerHits  float64
	stolen    float64
}

func main() {
	var (
		addrsFlag = flag.String("addrs", "http://localhost:8080", "comma-separated offsimd base URLs (one per replica)")
		arrival   = flag.String("arrival", "closed", "arrival discipline: closed or open")
		k         = flag.Int("k", 16, "concurrent submitters (closed arrivals)")
		jobs      = flag.Int("jobs", 96, "total submissions (closed arrivals)")
		rate      = flag.Float64("rate", 20, "arrivals per second (open arrivals)")
		duration  = flag.Duration("duration", 10*time.Second, "run length (open arrivals)")
		measure   = flag.Uint64("measure", 200_000, "measured instructions per job")
		seeds     = flag.Uint64("seeds", 4, "distinct seeds per grid point (controls repeat rate)")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-job completion deadline")
		p95Max    = flag.Duration("p95-max", 0, "SLO: exit non-zero if p95 latency exceeds this (0 disables)")
		hitMin    = flag.Float64("hit-min", -1, "SLO: exit non-zero if the fleet cache-hit ratio falls below this fraction (<0 disables)")
		osCores   = flag.Int("os-cores", 0, "run the grid against a K-core off-load cluster (0 = classic single OS core; docs/OSCORES.md)")
		affinity  = flag.String("affinity", "", "syscall-class affinity map for the cluster scenario")
		asymmetry = flag.String("asymmetry", "", "per-OS-core speed factors for the cluster scenario")
		async     = flag.Bool("async", false, "fire-and-forget off-load for side-effect-only syscall classes")
		sloOut    = flag.String("slo-report", "", "write a machine-readable JSON report to this path (\"-\" = stdout), with a per-stage latency breakdown scraped from service traces")
	)
	flag.Parse()
	if *k < 1 || *jobs < 1 || *seeds < 1 || *measure == 0 {
		fmt.Fprintln(os.Stderr, "loadtest: -k, -jobs, -seeds must be >= 1 and -measure positive")
		os.Exit(2)
	}
	if *arrival != "closed" && *arrival != "open" {
		fmt.Fprintf(os.Stderr, "loadtest: -arrival must be \"closed\" or \"open\" (got %q)\n", *arrival)
		os.Exit(2)
	}
	if *arrival == "open" && (*rate <= 0 || *duration <= 0) {
		fmt.Fprintln(os.Stderr, "loadtest: open arrivals need -rate > 0 and -duration > 0")
		os.Exit(2)
	}
	var addrs []string
	for _, a := range strings.Split(*addrsFlag, ",") {
		if a = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(a), "/")); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "loadtest: -addrs must name at least one replica")
		os.Exit(2)
	}

	// A small grid with repeats: workloads x thresholds x seeds, walked
	// by job index so runs are reproducible.
	type gridPoint struct {
		workload  string
		threshold int
		seed      uint64
	}
	var grid []gridPoint
	for _, wl := range []string{"apache", "specjbb", "derby"} {
		for _, thr := range []int{100, 1000} {
			for s := uint64(1); s <= *seeds; s++ {
				grid = append(grid, gridPoint{wl, thr, s})
			}
		}
	}
	latency := 100
	specFor := func(i int) jobSpec {
		g := grid[i%len(grid)]
		thr := g.threshold
		spec := jobSpec{
			Workload:      g.workload,
			Policy:        "HI",
			Threshold:     &thr,
			LatencyCycles: &latency,
			WarmupInstrs:  0,
			MeasureInstrs: *measure,
			Seed:          g.seed,
		}
		if *osCores > 0 || *affinity != "" || *asymmetry != "" || *async {
			// Cluster scenario: every grid point off-loads into a K-core
			// OS cluster, exercising the daemon's os_cores job surface and
			// the per-class queue-depth gauge under load.
			spec.Cores = 2
			spec.OSCores = *osCores
			spec.Affinity = *affinity
			spec.Asymmetry = *asymmetry
			spec.Async = *async
		}
		return spec
	}

	client := &http.Client{Timeout: 30 * time.Second}
	before := scrapeFleet(client, addrs)

	var (
		mu       sync.Mutex
		samples  []sample
		rejected atomic.Int64
		failed   atomic.Int64
	)
	runJob := func(i int) {
		s, err := runOne(client, addrs[i%len(addrs)], specFor(i), *timeout, &rejected)
		if err != nil {
			failed.Add(1)
			fmt.Fprintf(os.Stderr, "loadtest: %v\n", err)
			return
		}
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}

	start := time.Now()
	var total int
	switch *arrival {
	case "closed":
		total = *jobs
		work := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < *k; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					runJob(i)
				}
			}()
		}
		for i := 0; i < *jobs; i++ {
			work <- i
		}
		close(work)
		wg.Wait()
	case "open":
		// Fixed-rate arrivals: fire every 1/rate regardless of how many
		// jobs are still in flight, for -duration.
		interval := time.Duration(float64(time.Second) / *rate)
		var wg sync.WaitGroup
		tick := time.NewTicker(interval)
		stop := time.After(*duration)
	arrivals:
		for i := 0; ; i++ {
			select {
			case <-stop:
				break arrivals
			case <-tick.C:
				total++
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					runJob(i)
				}(i)
			}
		}
		tick.Stop()
		wg.Wait()
	}
	wall := time.Since(start)
	after := scrapeFleet(client, addrs)

	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "loadtest: no job completed")
		os.Exit(1)
	}
	lats := make([]time.Duration, len(samples))
	clientHits, clientStolen := 0, 0
	for i, s := range samples {
		lats[i] = s.latency
		if s.cached {
			clientHits++
		}
		if s.stolen {
			clientStolen++
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(lats)-1))
		return lats[idx]
	}

	submitted := after.submitted - before.submitted
	hitRatio := 0.0
	stealRate := 0.0
	if submitted > 0 {
		hitRatio = (after.hits - before.hits + after.peerHits - before.peerHits) / submitted
		stealRate = (after.stolen - before.stolen) / submitted
	}

	fmt.Printf("arrival             %s (%d replica(s))\n", *arrival, len(addrs))
	fmt.Printf("completed           %d/%d jobs in %v (%.1f jobs/s)\n",
		len(samples), total, wall.Round(time.Millisecond),
		float64(len(samples))/wall.Seconds())
	fmt.Printf("latency p50         %v\n", pct(0.50).Round(time.Microsecond))
	fmt.Printf("latency p95         %v\n", pct(0.95).Round(time.Microsecond))
	fmt.Printf("latency p99         %v\n", pct(0.99).Round(time.Microsecond))
	fmt.Printf("client cache hits   %.1f%% (%d/%d instant)\n",
		100*float64(clientHits)/float64(len(samples)), clientHits, len(samples))
	fmt.Printf("fleet cache-hit     %.1f%% (local+peer hits / submissions, via /metrics)\n", 100*hitRatio)
	fmt.Printf("fleet steal rate    %.1f%% (%d observed stolen)\n", 100*stealRate, clientStolen)
	fmt.Printf("backpressure 429s   %d (retried)\n", rejected.Load())
	fmt.Printf("failed jobs         %d\n", failed.Load())

	exit := 0
	if failed.Load() > 0 {
		exit = 1
	}
	p95Violated := *p95Max > 0 && pct(0.95) > *p95Max
	if p95Violated {
		fmt.Fprintf(os.Stderr, "loadtest: SLO violation: p95 %v > -p95-max %v\n", pct(0.95), *p95Max)
		exit = 1
	}
	hitViolated := *hitMin >= 0 && hitRatio < *hitMin
	if hitViolated {
		fmt.Fprintf(os.Stderr, "loadtest: SLO violation: fleet cache-hit ratio %.3f < -hit-min %.3f\n", hitRatio, *hitMin)
		exit = 1
	}

	if *sloOut != "" {
		ms := func(d time.Duration) float64 { return float64(d) / 1e6 }
		rep := sloReport{
			Arrival:       *arrival,
			Replicas:      len(addrs),
			Completed:     len(samples),
			Submitted:     total,
			WallMS:        ms(wall),
			JobsPerSecond: float64(len(samples)) / wall.Seconds(),
			P50MS:         ms(pct(0.50)),
			P95MS:         ms(pct(0.95)),
			P99MS:         ms(pct(0.99)),
			FleetHitRatio: hitRatio,
			StealRate:     stealRate,
			Rejected429:   rejected.Load(),
			Failed:        failed.Load(),
		}
		rep.SLO.P95MaxMS = ms(*p95Max)
		rep.SLO.P95Violated = p95Violated
		if *hitMin >= 0 {
			rep.SLO.HitMin = *hitMin
		}
		rep.SLO.HitMinViolated = hitViolated
		rep.SLO.Pass = exit == 0
		rep.Stages, rep.TracedJobs = collectStages(client, samples, 16)
		if err := writeSLOReport(*sloOut, rep); err != nil {
			fmt.Fprintf(os.Stderr, "loadtest: %v\n", err)
			exit = 1
		}
	}
	os.Exit(exit)
}

// writeSLOReport marshals the report to path, or stdout for "-".
func writeSLOReport(path string, rep sloReport) error {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("writing -slo-report: %w", err)
	}
	fmt.Printf("slo report          %s (%d traced jobs)\n", path, rep.TracedJobs)
	return nil
}

// scrapeFleet sums the counters of interest across every replica's
// /metrics. Unreachable replicas contribute zero (the run itself will
// surface hard failures).
func scrapeFleet(client *http.Client, addrs []string) fleetCounters {
	var c fleetCounters
	for _, addr := range addrs {
		resp, err := client.Get(addr + "/metrics")
		if err != nil {
			continue
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, line := range strings.Split(string(raw), "\n") {
			fields := strings.Fields(line)
			if len(fields) != 2 || strings.HasPrefix(line, "#") {
				continue
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				continue
			}
			switch fields[0] {
			case "offsimd_jobs_submitted_total":
				c.submitted += v
			case "offsimd_cache_hits_total":
				c.hits += v
			case "offsimd_peer_cache_hits_total":
				c.peerHits += v
			case "offsimd_jobs_stolen_total":
				c.stolen += v
			}
		}
	}
	return c
}

// runOne submits one spec (retrying on 429 backpressure) and waits for
// the job to finish, polling the replica that owns it, and returns its
// end-to-end latency.
func runOne(client *http.Client, addr string, spec jobSpec, timeout time.Duration, rejected *atomic.Int64) (sample, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return sample{}, err
	}
	deadline := time.Now().Add(timeout)
	start := time.Now()

	var st jobStatus
	for {
		resp, err := client.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return sample{}, err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			// Backpressure: honor it and retry.
			rejected.Add(1)
			if time.Now().After(deadline) {
				return sample{}, fmt.Errorf("still rejected at deadline")
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			return sample{}, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, raw)
		}
		if err := json.Unmarshal(raw, &st); err != nil {
			return sample{}, fmt.Errorf("submit: bad status document: %w", err)
		}
		break
	}
	// In a fleet, the submission may have been routed: poll the replica
	// that holds the job.
	pollAddr := addr
	if st.Replica != "" {
		pollAddr = st.Replica
	}
	stolen := st.Stolen

	for st.State != "done" && st.State != "failed" {
		if time.Now().After(deadline) {
			return sample{}, fmt.Errorf("job %s: not finished at deadline (state %s)", st.ID, st.State)
		}
		time.Sleep(10 * time.Millisecond)
		resp, err := client.Get(pollAddr + "/v1/jobs/" + st.ID)
		if err != nil {
			return sample{}, err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return sample{}, fmt.Errorf("status %s: HTTP %d: %s", st.ID, resp.StatusCode, raw)
		}
		if err := json.Unmarshal(raw, &st); err != nil {
			return sample{}, err
		}
		stolen = stolen || st.Stolen
	}
	if st.State == "failed" {
		return sample{}, fmt.Errorf("job %s failed: %s", st.ID, st.Error)
	}
	return sample{id: st.ID, replica: pollAddr, latency: time.Since(start), cached: st.Cached, stolen: stolen}, nil
}

// collectStages scrapes the service traces of up to limit completed
// jobs from the replicas that ran them and aggregates span durations by
// stage name — the per-stage latency breakdown behind the end-to-end
// percentiles. A daemon running with tracing disabled answers 404,
// which degrades to an empty breakdown rather than an error.
func collectStages(client *http.Client, samples []sample, limit int) (map[string]stageStats, int) {
	type acc struct {
		n     int
		total time.Duration
		max   time.Duration
	}
	accs := map[string]*acc{}
	traced := 0
	for _, s := range samples {
		if traced >= limit {
			break
		}
		resp, err := client.Get(s.replica + "/v1/debug/traces/" + s.id + "?format=json")
		if err != nil {
			continue
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			continue
		}
		var spans []span
		if err := json.Unmarshal(raw, &spans); err != nil {
			continue
		}
		traced++
		for _, sp := range spans {
			a := accs[sp.Name]
			if a == nil {
				a = &acc{}
				accs[sp.Name] = a
			}
			d := time.Duration(sp.EndNS - sp.StartNS)
			a.n++
			a.total += d
			if d > a.max {
				a.max = d
			}
		}
	}
	if len(accs) == 0 {
		return nil, traced
	}
	out := make(map[string]stageStats, len(accs))
	for name, a := range accs {
		out[name] = stageStats{
			Spans:  a.n,
			MeanMS: float64(a.total) / float64(a.n) / 1e6,
			MaxMS:  float64(a.max) / 1e6,
		}
	}
	return out, traced
}
