// Dynamic threshold tuning: watch the §III-B epoch sampler adjust the
// off-loading threshold N at run time. The tuner starts from the paper's
// heuristic (N=1,000 for OS-intensive applications), samples neighbouring
// thresholds for one epoch each, adopts a neighbour when it improves the
// feedback metric by more than 1%, and doubles its uninterrupted run
// length each time the current threshold is confirmed.
//
//	go run ./examples/tuner
package main

import (
	"fmt"
	"log"

	"offloadsim"
)

func main() {
	prof, ok := offloadsim.WorkloadByName("apache")
	if !ok {
		log.Fatal("apache profile missing")
	}

	cfg := offloadsim.DefaultConfig(prof)
	cfg.Policy = offloadsim.HardwarePredictor
	cfg.Migration = offloadsim.Aggressive()
	cfg.DynamicN = true
	cfg.WarmupInstrs = 2_000_000
	cfg.MeasureInstrs = 8_000_000

	// Scale the paper's 25M/100M-instruction epochs down so several
	// sampling rounds fit in this demo's measurement window; the
	// algorithm itself is unchanged.
	tc := offloadsim.DefaultTunerConfig()
	tc.SampleEpoch = 400_000
	tc.BaseRun = 1_600_000
	tc.MaxRun = 6_400_000
	cfg.Tuner = tc

	res, err := offloadsim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s, HI policy, dynamic N (start heuristic: N=1000)\n\n", prof.Name)
	fmt.Printf("%-8s %-10s %-14s\n", "epoch", "N", "feedback (IPC)")
	for i, s := range res.TunerHistory {
		fmt.Printf("%-8d %-10d %-14.4f\n", i, s.Threshold, s.HitRate)
	}
	fmt.Printf("\nfinal adopted threshold: N=%d (%d changes)\n", res.Threshold, res.TunerChanges)
	fmt.Printf("throughput: %.4f instr/cycle, off-load rate %.1f%%\n",
		res.Throughput, 100*res.OffloadRate)
}
