// Consolidation study: the paper's introduction motivates OS off-loading
// with datacenter consolidation — "many different virtual machines and
// tasks will likely be consolidated on simpler, many-core processors".
// This example runs a *mixed* system (a web server, a database and two
// compute jobs on four user cores) sharing one OS core, and compares a
// single-context OS core against the SMT variant §V-C suggests.
//
//	go run ./examples/consolidation
package main

import (
	"fmt"
	"log"

	"offloadsim"
)

func main() {
	names := []string{"apache", "derby", "mcf", "blackscholes"}
	var mix []*offloadsim.Workload
	for _, n := range names {
		p, ok := offloadsim.WorkloadByName(n)
		if !ok {
			log.Fatalf("workload %q missing", n)
		}
		mix = append(mix, p)
	}

	run := func(slots int) offloadsim.Result {
		cfg := offloadsim.DefaultConfig(mix[0])
		cfg.Workloads = mix
		cfg.UserCores = len(mix)
		cfg.Policy = offloadsim.HardwarePredictor
		cfg.Threshold = 100
		cfg.Migration = offloadsim.CustomMigration(1000)
		cfg.OSCoreSlots = slots
		cfg.WarmupInstrs = 1_000_000
		cfg.MeasureInstrs = 1_000_000
		res, err := offloadsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("consolidated system: %v sharing one OS core (HI, N=100, 1000-cycle migration)\n\n", names)
	for _, slots := range []int{1, 2} {
		res := run(slots)
		fmt.Printf("OS core with %d context(s):\n", slots)
		fmt.Printf("  aggregate throughput  %.4f instr/cycle\n", res.Throughput)
		for i, ipc := range res.PerCoreIPC {
			fmt.Printf("    %-14s IPC %.4f\n", names[i], ipc)
		}
		fmt.Printf("  mean queue delay      %.0f cycles (max %.0f)\n", res.MeanQueueDelay, res.MaxQueueDelay)
		fmt.Printf("  OS core utilization   %.1f%%\n\n", 100*res.OSCoreUtilization)
	}
	fmt.Println("the OS-intensive tenants (apache) generate nearly all OS-core traffic;")
	fmt.Println("the compute tenants ride along almost unaffected, and a second OS-core")
	fmt.Println("context absorbs the queuing the web tenant would otherwise inflict.")
}
