// Energy study: the extension the paper leaves to future work. Under an
// asymmetric-CMP power model (Mogul et al.: the OS core is a simpler,
// lower-power design, and the user core can sleep while its OS work runs
// remotely), off-loading can win on energy-delay product even beyond its
// throughput gain.
//
//	go run ./examples/energy
package main

import (
	"fmt"
	"log"

	"offloadsim"
)

func main() {
	prof, ok := offloadsim.WorkloadByName("apache")
	if !ok {
		log.Fatal("apache profile missing")
	}
	model := offloadsim.DefaultEnergyModel()

	type row struct {
		name string
		cfg  offloadsim.Config
	}
	mk := func(kind offloadsim.PolicyKind, n, lat int) offloadsim.Config {
		cfg := offloadsim.DefaultConfig(prof)
		cfg.Policy = kind
		cfg.Threshold = n
		cfg.Migration = offloadsim.CustomMigration(lat)
		cfg.WarmupInstrs = 1_500_000
		cfg.MeasureInstrs = 1_500_000
		return cfg
	}
	rows := []row{
		{"baseline (1 core)", mk(offloadsim.Baseline, 0, 0)},
		{"HI N=100, 100cyc", mk(offloadsim.HardwarePredictor, 100, 100)},
		{"HI N=100, 5000cyc", mk(offloadsim.HardwarePredictor, 100, 5000)},
		{"HI N=10000, 5000cyc", mk(offloadsim.HardwarePredictor, 10000, 5000)},
	}

	fmt.Printf("workload: %s; power model: user %.1fW / OS core %.1fW @ %.1f GHz\n\n",
		prof.Name, model.UserActiveW, model.OSActiveW, model.ClockGHz)
	fmt.Printf("%-22s %-10s %-10s %-10s %-12s %-10s\n",
		"configuration", "tput", "seconds", "joules", "avg watts", "EDP (J*s)")

	var baseEDP float64
	for i, r := range rows {
		res, err := offloadsim.Run(r.cfg)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := offloadsim.Energy(res, model)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseEDP = rep.EDP
		}
		fmt.Printf("%-22s %-10.4f %-10.6f %-10.6f %-12.2f %-10.3e (%.2fx)\n",
			r.name, res.Throughput, rep.Seconds, rep.Joules, rep.AvgWatts,
			rep.EDP, rep.EDP/baseEDP)
	}

	fmt.Println("\nEDP below 1.00x of baseline means the off-loading configuration is a")
	fmt.Println("net energy-delay win: the user core sleeps during migrations while the")
	fmt.Println("cheaper OS core does the kernel's work.")
}
