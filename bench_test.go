// Benchmarks regenerating every table and figure of the paper, plus
// microbenchmarks of the core structures. Run with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTableX/BenchmarkFigureX iteration executes the full
// experiment at a moderate scale and reports headline values through
// b.ReportMetric, so `go test -bench` output doubles as a compact
// reproduction log. EXPERIMENTS.md records the full-scale numbers.
package offloadsim_test

import (
	"io"
	"testing"

	"offloadsim"
	"offloadsim/internal/coherence"
	"offloadsim/internal/core"
	"offloadsim/internal/experiments"
	"offloadsim/internal/policy"
	"offloadsim/internal/rng"
	"offloadsim/internal/sim"
	"offloadsim/internal/syscalls"
	"offloadsim/internal/trace"
	"offloadsim/internal/workloads"
)

// benchOptions is the experiment scale used by the table/figure benches:
// large enough that the headline signals (off-loading wins, the N=0
// collapse, the halved-L2 crossover) are visible in the reported metrics,
// small enough that the full bench suite finishes in a few minutes. The
// full-scale numbers live in EXPERIMENTS.md.
func benchOptions() experiments.Options {
	return experiments.Options{
		WarmupInstrs:  800_000,
		MeasureInstrs: 800_000,
		Seed:          1,
		ComputeReps:   []string{"blackscholes"},
	}
}

func BenchmarkTable1SyscallCensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.TableI(io.Discard)
	}
}

func BenchmarkTable2SimulatorParameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.TableII(io.Discard)
	}
}

func BenchmarkTable3OSCoreUtilization(b *testing.B) {
	var last experiments.TableIIIResult
	for i := 0; i < b.N; i++ {
		last = experiments.TableIII(benchOptions())
	}
	// apache at N=100 and N=10000: the Table III anchors (45.75%/17.68%).
	b.ReportMetric(100*last.Utilization[0][0], "apache_util_N100_%")
	b.ReportMetric(100*last.Utilization[0][3], "apache_util_N10000_%")
}

func BenchmarkFigure1InstrumentationOverhead(b *testing.B) {
	var last experiments.Figure1Result
	for i := 0; i < b.N; i++ {
		last = experiments.Figure1(benchOptions())
	}
	b.ReportMetric(100*last.Slowdowns[0][len(last.Costs)-1], "apache_slowdown_200cyc_%")
}

func BenchmarkFigure2PredictorLookup(b *testing.B) {
	// The single-cycle claim rests on the lookup being one hash + one
	// table probe; this measures the software model's cost per
	// Predict+Update pair.
	p := core.NewCAMPredictor(core.DefaultCAMEntries)
	src := rng.New(42)
	astates := make([]uint64, 512)
	lengths := make([]int, 512)
	for i := range astates {
		astates[i] = src.Uint64()
		lengths[i] = 50 + src.Intn(20000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & 511
		p.Predict(astates[k])
		p.Update(astates[k], lengths[k])
	}
}

func BenchmarkFigure3BinaryHitRate(b *testing.B) {
	var last experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		last = experiments.Figure3(benchOptions())
	}
	// Paper anchors at N=500: apache 94.8%, specjbb 93.4%, derby 96.8%,
	// compute 99.6%.
	b.ReportMetric(100*last.HitRate[0][1], "apache_N500_%")
	b.ReportMetric(100*last.HitRate[3][1], "compute_N500_%")
}

func BenchmarkFigure4ThresholdSweep(b *testing.B) {
	var last experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		last = experiments.Figure4(benchOptions())
	}
	norm, _, _ := last.Best(0)
	b.ReportMetric(norm, "apache_best_norm")
	normJbb, _, _ := last.Best(1)
	b.ReportMetric(normJbb, "specjbb_best_norm")
}

func BenchmarkFigure5PolicyComparison(b *testing.B) {
	var last experiments.Figure5Result
	for i := 0; i < b.N; i++ {
		last = experiments.Figure5(benchOptions())
	}
	// HI is policy index 2; [0]=conservative, [1]=aggressive.
	b.ReportMetric(last.Normalized[0][2][0], "apache_HI_cons_norm")
	b.ReportMetric(last.Normalized[0][2][1], "apache_HI_agg_norm")
}

func BenchmarkScalingStudy(b *testing.B) {
	var last experiments.ScalingResult
	for i := 0; i < b.N; i++ {
		last = experiments.Scaling(benchOptions())
	}
	b.ReportMetric(last.MeanQueueDelay[1], "queue_delay_2to1_cyc")
	b.ReportMetric(last.MeanQueueDelay[2], "queue_delay_4to1_cyc")
}

// --- microbenchmarks of the substrates ---

func BenchmarkPredictorDirectMapped(b *testing.B) {
	p := core.NewDirectMappedPredictor(core.DefaultDirectMappedEntries)
	src := rng.New(7)
	astates := make([]uint64, 512)
	for i := range astates {
		astates[i] = src.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & 511
		p.Predict(astates[k])
		p.Update(astates[k], 1000)
	}
}

func BenchmarkTraceGenerator(b *testing.B) {
	space := &trace.AddressSpace{}
	src := rng.New(3)
	kernel := trace.NewKernelLayout(space, src.Fork())
	gen := trace.MustNewGenerator(workloads.Apache(), 0, kernel, space, src.Fork())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg := gen.Next()
		_ = seg
	}
}

func BenchmarkSimulatedMInstr(b *testing.B) {
	// End-to-end simulator speed: simulated instructions per wall
	// second, the number that bounds experiment turnaround.
	prof, _ := offloadsim.WorkloadByName("apache")
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(prof)
		cfg.Policy = policy.HardwarePredictor
		cfg.Threshold = 100
		cfg.WarmupInstrs = 0
		cfg.MeasureInstrs = 1_000_000
		sim.MustNew(cfg).Run()
	}
	b.ReportMetric(float64(b.N)*1e6/b.Elapsed().Seconds(), "sim_instrs/s")
}

func BenchmarkSyscallSample(b *testing.B) {
	src := rng.New(11)
	spec := syscalls.Lookup(syscalls.Read)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.SampleLength(i%spec.ArgClasses, src)
	}
}

func BenchmarkAblationHalvedL2(b *testing.B) {
	var last experiments.HalvedL2Result
	for i := 0; i < b.N; i++ {
		last = experiments.HalvedL2(benchOptions())
	}
	b.ReportMetric(float64(last.CrossoverLatency()), "crossover_latency_cyc")
}

func BenchmarkAblationDecisionMechanisms(b *testing.B) {
	var last experiments.PredictorAblationResult
	for i := 0; i < b.N; i++ {
		last = experiments.PredictorAblation(benchOptions())
	}
	for i, v := range last.Variants {
		if v == "oracle" {
			b.ReportMetric(last.Normalized[i], "oracle_norm")
		}
		if v == "HI-CAM" {
			b.ReportMetric(last.Normalized[i], "hi_cam_norm")
		}
	}
}

func BenchmarkEnergyEDP(b *testing.B) {
	// The future-work extension: EDP of HI off-loading relative to the
	// baseline under the default asymmetric power model.
	prof, _ := offloadsim.WorkloadByName("apache")
	model := offloadsim.DefaultEnergyModel()
	var ratio float64
	for i := 0; i < b.N; i++ {
		base := offloadsim.DefaultConfig(prof)
		base.Policy = offloadsim.Baseline
		base.WarmupInstrs = 200_000
		base.MeasureInstrs = 400_000
		bres, err := offloadsim.Run(base)
		if err != nil {
			b.Fatal(err)
		}
		hi := base
		hi.Policy = offloadsim.HardwarePredictor
		hi.Threshold = 100
		hi.Migration = offloadsim.Aggressive()
		hres, err := offloadsim.Run(hi)
		if err != nil {
			b.Fatal(err)
		}
		be, _ := offloadsim.Energy(bres, model)
		he, _ := offloadsim.Energy(hres, model)
		ratio = he.EDP / be.EDP
	}
	b.ReportMetric(ratio, "EDP_vs_baseline")
}

func BenchmarkCoherenceReadWrite(b *testing.B) {
	sys := coherenceSystem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := uint64(i) & 1023
		if i&1 == 0 {
			sys.Read(i&1, line)
		} else {
			sys.Write((i>>1)&1, line)
		}
	}
}

// coherenceSystem builds a 2-node Table II system for microbenchmarks.
func coherenceSystem() *coherence.System {
	return coherence.MustNew(coherence.DefaultConfig(), nil)
}
