# Development and CI entry points. `make ci` is the gate: formatting,
# vet, and the full test suite under the race detector (the server's
# worker pool and result cache must be race-clean).

GO ?= go

.PHONY: ci fmt vet test race server-race build bench

ci: fmt vet race

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fast loop while working on the daemon.
server-race:
	$(GO) test -race ./internal/server/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
