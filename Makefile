# Development and CI entry points. `make ci` is the gate: formatting,
# vet, the full test suite under the race detector (the server's worker
# pool, and internal/sample's parallel replica replay, must be
# race-clean), and the sampling accuracy sweep in a plain build (it
# asserts wall-clock speedup, so it skips itself under -race).

GO ?= go

.PHONY: ci fmt vet test race server-race build bench bench-json accuracy

ci: fmt vet race accuracy

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fast loop while working on the daemon.
server-race:
	$(GO) test -race ./internal/server/...

# Sampling accuracy gate: the Figure-4 sweep at the validation scale
# must keep normalized-IPC error within 2% at >=5x speedup.
accuracy:
	$(GO) test -run '^TestSamplingAccuracy$$' -count=1 -v ./internal/experiments/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Runs the Figure-4 threshold sweep in detailed and sampled mode and
# writes BENCH_sweep.json (ns/op, simulated instrs/sec, speedup).
bench-json:
	OFFLOADSIM_BENCH_JSON=BENCH_sweep.json $(GO) test -run '^TestWriteBenchSweepJSON$$' -count=1 -v .
