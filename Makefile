# Development and CI entry points. `make ci` is the gate: formatting,
# vet, the full test suite under the race detector (the server's worker
# pool, and internal/sample's parallel replica replay, must be
# race-clean), and the sampling accuracy sweep in a plain build (it
# asserts wall-clock speedup, so it skips itself under -race).

GO ?= go

.PHONY: ci fmt vet test race server-race build build-examples bench \
	bench-json bench-engine bench-parallel bench-cluster bench-oscore \
	accuracy accuracy-parallel golden golden-check fuzz-smoke \
	telemetry-overhead cluster-e2e oscore-equivalence obs-smoke

ci: fmt vet build-examples race golden-check fuzz-smoke telemetry-overhead obs-smoke cluster-e2e oscore-equivalence accuracy accuracy-parallel

build:
	$(GO) build ./...

# The examples are excluded from `go build ./...`-style wildcard test
# runs but must keep compiling against the facade.
build-examples:
	$(GO) build ./examples/...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fast loop while working on the daemon.
server-race:
	$(GO) test -race ./internal/server/...

# Sampling accuracy gate: the Figure-4 sweep at the validation scale
# must keep normalized-IPC error within 2% at >=5x speedup.
accuracy:
	$(GO) test -run '^TestSamplingAccuracy$$' -count=1 -v ./internal/experiments/

# Parallel-engine accuracy gate: the multi-core threshold sweep on the
# quantum-parallel engine must keep normalized-IPC error within 2% of
# serial detailed; the 2.5x speedup floor asserts only on hosts with
# >=4 CPUs (docs/PARALLEL.md). Skips itself under -race, like accuracy.
accuracy-parallel:
	$(GO) test -run '^TestParallelAccuracy$$' -count=1 -v ./internal/experiments/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ -pgo=default.pgo .

# Runs the Figure-4 threshold sweep in detailed and sampled mode and
# writes BENCH_sweep.json (ns/op, simulated instrs/sec, speedup).
bench-json:
	OFFLOADSIM_BENCH_JSON=BENCH_sweep.json $(GO) test -run '^TestWriteBenchSweepJSON$$' -count=1 -v .

# Engine hot-path trajectory: runs the shared microbenchmark bodies
# (internal/enginebench) plus the end-to-end detailed run and writes
# BENCH_engine.json against the recorded pre-optimization baseline.
# -pgo is explicit because `go test` does not pick up a root
# default.pgo automatically (see docs/PERFORMANCE.md).
bench-engine:
	OFFLOADSIM_BENCH_ENGINE=BENCH_engine.json $(GO) test -run '^TestWriteBenchEngineJSON$$' -count=1 -v -pgo=default.pgo .

# Fleet acceptance gate, part of `make ci`: the in-process 3-replica
# tests (routing lands on the ring owner, peer cache hit instead of a
# cross-replica recompute, stealing under induced overload, a 64-point
# sweep streamed exactly once) plus the out-of-process run — three real
# offsimd processes driven by the loadtest under -p95-max/-hit-min SLO
# gates (docs/CLUSTER.md).
cluster-e2e:
	$(GO) test -run '^TestFleet' -count=1 -v ./internal/server/ ./cmd/offsimd/

# Fleet throughput trajectory: the 64-point sweep through POST
# /v1/sweeps on a 1-replica vs 3-replica in-process fleet, into
# BENCH_cluster.json (records host CPU count — fan-out on one host
# needs free cores to win).
bench-cluster:
	OFFLOADSIM_BENCH_CLUSTER=BENCH_cluster.json $(GO) test -run '^TestWriteBenchClusterJSON$$' -count=1 -v -timeout 30m .

# Parallel-engine trajectory: serial vs quantum-parallel wall clock on
# the 8-simulated-core configuration, swept over 1/2/4/8 workers, into
# BENCH_parallel.json (records host CPU count — speedup needs free
# cores).
bench-parallel:
	OFFLOADSIM_BENCH_PARALLEL=BENCH_parallel.json $(GO) test -run '^TestWriteBenchParallelJSON$$' -count=1 -v -timeout 30m .

# Multi-OS-core K=1 equivalence gate, part of `make ci`: an enabled
# K=1 synchronous cluster block must collapse to the classic
# single-OS-core model — identical canonical key and byte-identical
# Result JSON (docs/OSCORES.md). This is what keeps the cluster
# subsystem from silently forking the legacy model's behavior.
oscore-equivalence:
	$(GO) test -run '^TestOSCoresK1Equivalence$$' -count=1 -v ./internal/sim/

# Multi-OS-core trajectory: the cluster-size sweep (K={1,2,4} plus a
# big/little async cell) on 4-user-core apache, into BENCH_oscore.json
# with the off-load latency distribution from the event trace (records
# host CPU count — wall speeds are host-class-relative).
bench-oscore:
	OFFLOADSIM_BENCH_OSCORE=BENCH_oscore.json $(GO) test -run '^TestWriteBenchOSCoreJSON$$' -count=1 -v -timeout 30m .

# Telemetry zero-overhead gate: the detailed engine with telemetry
# detached must stay within 2% of the throughput recorded in
# BENCH_engine.json — the nil-tracer checks are the only telemetry code
# on the hot path (docs/TELEMETRY.md). Part of `make ci`. -pgo matches
# bench-engine so the comparison is like-for-like. The second run gates
# the service layer the same way: offsimd with tracing disabled must
# stay within 2% of running the engine directly — the nil-*Tracer
# guards are the only tracing code on the job path
# (docs/OBSERVABILITY.md).
telemetry-overhead:
	OFFLOADSIM_TELEMETRY_OVERHEAD=BENCH_engine.json $(GO) test -run '^TestTelemetryOverheadDisabled$$' -count=1 -v -pgo=default.pgo .
	OFFLOADSIM_TELEMETRY_OVERHEAD=1 $(GO) test -run '^TestServerTracingOverheadDisabled$$' -count=1 -v ./internal/server/

# Distributed-tracing acceptance gate, part of `make ci`: a 3-replica
# in-process fleet with tracing enabled runs a forwarded job, a stolen
# job and an 8-point sweep, and each must download from
# /v1/debug/traces/{id} as one orphan-free trace stitched across every
# replica that touched it; plus span-ID determinism and byte-identical
# results with tracing on vs off (docs/OBSERVABILITY.md).
obs-smoke:
	$(GO) test -run '^TestObs' -count=1 -v ./internal/server/

# Byte-identical golden gate: the corpus in testdata/golden must
# replay exactly. Part of `make ci`; a perf PR that fails this changed
# observable behavior (docs/PERFORMANCE.md, "The golden workflow").
golden-check:
	$(GO) test -run '^TestGoldenResults$$' -count=1 .

# Regenerate the golden corpus from the current engine. ONLY for
# intentional modeling changes — never to make a perf PR pass.
golden:
	$(GO) test -run '^TestGoldenResults$$' -update -count=1 .
	@echo "testdata/golden regenerated — review 'git diff testdata/golden/' before committing"

# Short fuzz runs of the config-canonicalization, policy-parsing and
# affinity-parsing fuzzers; part of `make ci`. The committed seed
# corpora live under each package's testdata/fuzz/.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzCanonicalize$$' -fuzztime 10s ./internal/sim/
	$(GO) test -run '^$$' -fuzz '^FuzzParsePolicy$$' -fuzztime 10s ./internal/policy/
	$(GO) test -run '^$$' -fuzz '^FuzzParseAffinity$$' -fuzztime 10s ./internal/oscore/
