// Engine bench trajectory: `make bench-engine` (OFFLOADSIM_BENCH_ENGINE=
// BENCH_engine.json go test -run TestWriteBenchEngineJSON) measures the
// four shared engine benchmarks (internal/enginebench) and writes
// BENCH_engine.json, comparing against the pre-optimization baseline
// recorded below. The baseline was measured with the same benchmark
// bodies at the pre-rewrite commit, so the speedup column is the
// tentpole's headline number.
package offloadsim_test

import (
	"encoding/json"
	"os"
	"testing"

	"offloadsim/internal/enginebench"
)

// engineBenchRow is one measurement set: nanoseconds per operation for
// the three microbenchmarks, end-to-end simulated instructions per wall
// second, and the core step's allocation count.
type engineBenchRow struct {
	Commit              string  `json:"commit,omitempty"`
	CacheProbeNs        float64 `json:"cache_probe_ns_per_op"`
	DirectoryLookupNs   float64 `json:"directory_lookup_ns_per_op"`
	DirectoryMissNs     float64 `json:"directory_miss_ns_per_op"`
	CoreStepNsPerInstr  float64 `json:"core_step_ns_per_instr"`
	CoreStepAllocsPerOp float64 `json:"core_step_allocs_per_op"`
	DetailedInstrsPerS  float64 `json:"detailed_sim_instrs_per_sec"`
}

// engineBaseline is the pre-optimization engine, measured at commit
// a721101 (the last commit before the hot-path rewrite) on the same
// benchmark bodies. Regenerating the baseline is only legitimate when
// the benchmark definitions themselves change.
var engineBaseline = engineBenchRow{
	Commit:              "a721101",
	CacheProbeNs:        engineBaselineCacheProbeNs,
	DirectoryLookupNs:   engineBaselineDirLookupNs,
	DirectoryMissNs:     engineBaselineDirMissNs,
	CoreStepNsPerInstr:  engineBaselineCoreStepNsPerInstr,
	CoreStepAllocsPerOp: engineBaselineCoreStepAllocs,
	DetailedInstrsPerS:  engineBaselineDetailedInstrsPerS,
}

type engineBenchFile struct {
	Description string         `json:"description"`
	Baseline    engineBenchRow `json:"baseline"`
	Current     engineBenchRow `json:"current"`
	// SpeedupDetailed is current/baseline end-to-end simulated
	// instructions per second — the tentpole's >=2x target.
	SpeedupDetailed float64 `json:"speedup_detailed"`
	// SpeedupCoreStep is baseline/current core-step ns per instruction.
	SpeedupCoreStep float64 `json:"speedup_core_step"`
}

// Pre-optimization measurements behind engineBaseline (see its comment).
const (
	engineBaselineCacheProbeNs       = 5.2
	engineBaselineDirLookupNs        = 49.7
	engineBaselineDirMissNs          = 203.6
	engineBaselineCoreStepNsPerInstr = 49.4
	engineBaselineCoreStepAllocs     = 3
	engineBaselineDetailedInstrsPerS = 17_928_392
)

// BenchmarkEngineDetailedRun is the root view of the end-to-end engine
// benchmark (the other engine benchmarks live next to their packages).
func BenchmarkEngineDetailedRun(b *testing.B) { enginebench.DetailedRun(b) }

// measureEngine runs the shared benchmark bodies once each.
func measureEngine() engineBenchRow {
	probe := testing.Benchmark(enginebench.CacheProbe)
	lookup := testing.Benchmark(enginebench.DirectoryLookup)
	miss := testing.Benchmark(enginebench.DirectoryMiss)
	step := testing.Benchmark(enginebench.CoreStep)
	run := testing.Benchmark(enginebench.DetailedRun)
	return engineBenchRow{
		CacheProbeNs:        float64(probe.NsPerOp()),
		DirectoryLookupNs:   float64(lookup.NsPerOp()),
		DirectoryMissNs:     float64(miss.NsPerOp()),
		CoreStepNsPerInstr:  float64(step.NsPerOp()) / step.Extra["instrs/op"],
		CoreStepAllocsPerOp: float64(step.AllocsPerOp()),
		DetailedInstrsPerS:  run.Extra["sim_instrs/s"],
	}
}

// TestWriteBenchEngineJSON is the engine of `make bench-engine`. It is a
// no-op unless OFFLOADSIM_BENCH_ENGINE names the output file, so plain
// `go test` stays fast.
func TestWriteBenchEngineJSON(t *testing.T) {
	path := os.Getenv("OFFLOADSIM_BENCH_ENGINE")
	if path == "" {
		t.Skip("set OFFLOADSIM_BENCH_ENGINE=<file> to run the engine bench")
	}
	cur := measureEngine()
	out := engineBenchFile{
		Description: "detailed-engine hot-path benchmarks; baseline = pre-optimization commit, same bodies",
		Baseline:    engineBaseline,
		Current:     cur,
		SpeedupDetailed: cur.DetailedInstrsPerS /
			engineBaseline.DetailedInstrsPerS,
		SpeedupCoreStep: engineBaseline.CoreStepNsPerInstr /
			cur.CoreStepNsPerInstr,
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: detailed %.2fM instrs/s (baseline %.2fM, %.2fx), core step %.2f ns/instr (%.2fx), %g allocs/op",
		path, cur.DetailedInstrsPerS/1e6, engineBaseline.DetailedInstrsPerS/1e6,
		out.SpeedupDetailed, cur.CoreStepNsPerInstr, out.SpeedupCoreStep,
		cur.CoreStepAllocsPerOp)
}
