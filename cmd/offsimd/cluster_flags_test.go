package main

import (
	"strings"
	"testing"
)

// TestParseClusterFlags pins the up-front validation contract for the
// fleet flags: malformed URLs, self-in-peers and duplicates are caught
// at startup, never mid-request.
func TestParseClusterFlags(t *testing.T) {
	cases := []struct {
		name      string
		advertise string
		peers     string
		steal     int
		wantErr   string // substring; empty = success
		wantSelf  string
		wantPeers []string
	}{
		{
			name: "single replica when both flags empty",
		},
		{
			name:      "fleet of three",
			advertise: "http://10.0.0.1:8080",
			peers:     "http://10.0.0.2:8080,http://10.0.0.3:8080",
			wantSelf:  "http://10.0.0.1:8080",
			wantPeers: []string{"http://10.0.0.2:8080", "http://10.0.0.3:8080"},
		},
		{
			name:      "advertise without peers is a one-replica fleet",
			advertise: "http://10.0.0.1:8080",
			wantSelf:  "http://10.0.0.1:8080",
		},
		{
			name:      "addresses are normalized before comparison",
			advertise: "HTTP://Node-A:8080/",
			peers:     " http://node-b:8080 ,http://node-c:8080",
			wantSelf:  "http://node-a:8080",
			wantPeers: []string{"http://node-b:8080", "http://node-c:8080"},
		},
		{
			name:    "peers without advertise",
			peers:   "http://10.0.0.2:8080",
			wantErr: "-peers requires -advertise",
		},
		{
			name:    "steal threshold without fleet mode",
			steal:   4,
			wantErr: "-steal-threshold requires fleet mode",
		},
		{
			name:      "malformed advertise",
			advertise: "10.0.0.1:8080",
			wantErr:   "-advertise:",
		},
		{
			name:      "advertise with a path",
			advertise: "http://10.0.0.1:8080/api",
			wantErr:   "-advertise:",
		},
		{
			name:      "malformed peer",
			advertise: "http://10.0.0.1:8080",
			peers:     "http://10.0.0.2:8080,not a url://",
			wantErr:   "-peers:",
		},
		{
			name:      "self listed as peer",
			advertise: "http://10.0.0.1:8080",
			peers:     "http://10.0.0.2:8080,http://10.0.0.1:8080",
			wantErr:   "own -advertise address",
		},
		{
			name:      "self listed as peer after normalization",
			advertise: "http://node-a:8080",
			peers:     "HTTP://NODE-A:8080/",
			wantErr:   "own -advertise address",
		},
		{
			name:      "duplicate peer",
			advertise: "http://10.0.0.1:8080",
			peers:     "http://10.0.0.2:8080,http://10.0.0.2:8080",
			wantErr:   "duplicate address",
		},
		{
			name:      "peer with query string",
			advertise: "http://10.0.0.1:8080",
			peers:     "http://10.0.0.2:8080?x=1",
			wantErr:   "-peers:",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts, err := parseClusterFlags(tc.advertise, tc.peers, tc.steal)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("want error containing %q, got nil (opts %+v)", tc.wantErr, opts)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not contain %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if opts.Membership.Self != tc.wantSelf {
				t.Fatalf("Self = %q, want %q", opts.Membership.Self, tc.wantSelf)
			}
			if len(opts.Membership.Peers) != len(tc.wantPeers) {
				t.Fatalf("Peers = %v, want %v", opts.Membership.Peers, tc.wantPeers)
			}
			for i, p := range tc.wantPeers {
				if opts.Membership.Peers[i] != p {
					t.Fatalf("Peers[%d] = %q, want %q", i, opts.Membership.Peers[i], p)
				}
			}
			if tc.advertise == "" && opts.Enabled() {
				t.Fatal("empty flags must yield disabled cluster options")
			}
			if tc.advertise != "" && !opts.Enabled() {
				t.Fatal("advertise set but cluster options disabled")
			}
		})
	}
}
