// Command offsimd serves offloadsim simulations over an HTTP JSON API:
// a bounded job queue with 429 backpressure, a worker pool sized to the
// machine, a canonical-key result cache so repeated sweep points are
// O(1), and Prometheus-style /metrics.
//
//	offsimd -addr :8080 -queue 256 -workers 8 -job-timeout 2m
//
//	curl -s localhost:8080/v1/jobs -d '{"workload":"apache","policy":"HI","threshold":100}'
//	curl -s localhost:8080/v1/jobs/j-00000001
//	curl -s localhost:8080/v1/results/j-00000001
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM trigger a graceful drain: intake stops (healthz turns
// 503 so load balancers fail over), running and queued jobs finish, then
// the process exits. A second signal — or -drain-timeout expiring —
// forces exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"offloadsim/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		queueSize    = flag.Int("queue", 256, "job queue capacity (full queue returns 429)")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		jobTimeout   = flag.Duration("job-timeout", 2*time.Minute, "per-job wall-time limit (<0 disables)")
		cacheSize    = flag.Int("cache", 4096, "result cache capacity in entries")
		drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "max time to drain jobs on shutdown")
		pprofOn      = flag.Bool("pprof", false, "serve Go runtime profiles under /debug/pprof/")
	)
	flag.Parse()
	if *queueSize < 1 {
		fatalUsage("offsimd: -queue must be >= 1 (got %d)", *queueSize)
	}
	if *workers < 0 {
		fatalUsage("offsimd: -workers must be >= 0 (got %d)", *workers)
	}
	if *cacheSize < 1 {
		fatalUsage("offsimd: -cache must be >= 1 (got %d)", *cacheSize)
	}
	if *drainTimeout <= 0 {
		fatalUsage("offsimd: -drain-timeout must be positive (got %v)", *drainTimeout)
	}
	if flag.NArg() > 0 {
		fatalUsage("offsimd: unexpected arguments: %v", flag.Args())
	}

	srv := server.New(server.Options{
		QueueSize:    *queueSize,
		Workers:      *workers,
		JobTimeout:   *jobTimeout,
		CacheEntries: *cacheSize,
	})
	srv.Start()

	handler := srv.Handler()
	if *pprofOn {
		// Opt-in only: profiles expose internals, so they never ride on
		// the default mux an operator did not ask for.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("offsimd: listening on %s (queue=%d workers=%d cache=%d)",
		*addr, *queueSize, *workers, *cacheSize)

	select {
	case err := <-errCh:
		log.Fatalf("offsimd: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills us
	log.Printf("offsimd: shutting down, draining jobs (max %v)...", *drainTimeout)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("offsimd: http shutdown: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("offsimd: drain incomplete: %v", err)
		os.Exit(1)
	}
	log.Printf("offsimd: drained cleanly")
}

func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
