// Command offsimd serves offloadsim simulations over an HTTP JSON API:
// a bounded job queue with 429 backpressure, a worker pool sized to the
// machine, a canonical-key result cache so repeated sweep points are
// O(1), and Prometheus-style /metrics.
//
//	offsimd -addr :8080 -queue 256 -workers 8 -job-timeout 2m
//
//	curl -s localhost:8080/v1/jobs -d '{"workload":"apache","policy":"HI","threshold":100}'
//	curl -s localhost:8080/v1/jobs/j-00000001
//	curl -s localhost:8080/v1/results/j-00000001
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM trigger a graceful drain: intake stops (healthz turns
// 503 so load balancers fail over), running and queued jobs finish, then
// the process exits. A second signal — or -drain-timeout expiring —
// forces exit.
//
// -advertise plus -peers joins a static-membership fleet (docs/CLUSTER.md):
// submissions route to their consistent-hash owner, results are served
// from a two-tier cache, overloaded replicas shed work to idle peers,
// and POST /v1/sweeps fans parameter grids across every replica.
//
//	offsimd -addr :8080 -advertise http://10.0.0.1:8080 \
//	        -peers http://10.0.0.2:8080,http://10.0.0.3:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"offloadsim/internal/cluster"
	"offloadsim/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		queueSize    = flag.Int("queue", 256, "job queue capacity (full queue returns 429)")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		jobTimeout   = flag.Duration("job-timeout", 2*time.Minute, "per-job wall-time limit (<0 disables)")
		cacheSize    = flag.Int("cache", 4096, "result cache capacity in entries")
		drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "max time to drain jobs on shutdown")
		pprofOn      = flag.Bool("pprof", false, "serve Go runtime profiles under /debug/pprof/")
		advertise    = flag.String("advertise", "", "this replica's base URL as peers reach it (enables fleet mode)")
		peersFlag    = flag.String("peers", "", "comma-separated peer base URLs (requires -advertise)")
		stealThresh  = flag.Int("steal-threshold", 0, "queue depth that triggers work-stealing (0 = default, <0 disables)")
		tracing      = flag.Bool("tracing", true, "record service spans and serve /v1/debug/traces")
		traceStore   = flag.Int("trace-store", 1024, "max in-memory traces before FIFO eviction")
		logFormat    = flag.String("log-format", "text", "structured log encoding: text or json")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		sloP95       = flag.Duration("slo-p95", 0, "per-job latency SLO target backing the burn counters (0 disables)")
		sloHitMin    = flag.Float64("slo-hit-min", 0, "cache-hit-ratio SLO target in (0,1] (0 disables)")
	)
	flag.Parse()
	if *queueSize < 1 {
		fatalUsage("offsimd: -queue must be >= 1 (got %d)", *queueSize)
	}
	if *workers < 0 {
		fatalUsage("offsimd: -workers must be >= 0 (got %d)", *workers)
	}
	if *cacheSize < 1 {
		fatalUsage("offsimd: -cache must be >= 1 (got %d)", *cacheSize)
	}
	if *drainTimeout <= 0 {
		fatalUsage("offsimd: -drain-timeout must be positive (got %v)", *drainTimeout)
	}
	if flag.NArg() > 0 {
		fatalUsage("offsimd: unexpected arguments: %v", flag.Args())
	}
	clusterOpts, err := parseClusterFlags(*advertise, *peersFlag, *stealThresh)
	if err != nil {
		fatalUsage("offsimd: %v", err)
	}
	obsOpts, err := parseObsFlags(*tracing, *traceStore, *logFormat, *logLevel, *sloP95, *sloHitMin)
	if err != nil {
		fatalUsage("offsimd: %v", err)
	}

	srv := server.New(server.Options{
		QueueSize:    *queueSize,
		Workers:      *workers,
		JobTimeout:   *jobTimeout,
		CacheEntries: *cacheSize,
		Cluster:      clusterOpts,
		Obs:          obsOpts,
	})
	srv.Start()

	handler := srv.Handler()
	if *pprofOn {
		// Opt-in only: profiles expose internals, so they never ride on
		// the default mux an operator did not ask for.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("offsimd: listening on %s (queue=%d workers=%d cache=%d)",
		*addr, *queueSize, *workers, *cacheSize)
	if clusterOpts.Enabled() {
		log.Printf("offsimd: fleet mode: advertising %s with %d peer(s)",
			clusterOpts.Membership.Self, len(clusterOpts.Membership.Peers))
	}
	if obsOpts.Tracing {
		log.Printf("offsimd: service tracing on (%d-trace store), logs as %s at %s",
			*traceStore, *logFormat, *logLevel)
	}

	select {
	case err := <-errCh:
		log.Fatalf("offsimd: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills us
	log.Printf("offsimd: shutting down, draining jobs (max %v)...", *drainTimeout)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("offsimd: http shutdown: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("offsimd: drain incomplete: %v", err)
		os.Exit(1)
	}
	log.Printf("offsimd: drained cleanly")
}

// parseClusterFlags validates the fleet flags up front — malformed
// URLs, a replica listed as its own peer, and duplicate peers are all
// rejected before the server binds a socket. Single-replica operation
// (no -advertise, no -peers) returns the zero options.
func parseClusterFlags(advertise, peers string, stealThreshold int) (server.ClusterOptions, error) {
	var peerList []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	if advertise == "" {
		if len(peerList) > 0 {
			return server.ClusterOptions{}, fmt.Errorf("-peers requires -advertise (peers must know how to reach this replica)")
		}
		if stealThreshold != 0 {
			return server.ClusterOptions{}, fmt.Errorf("-steal-threshold requires fleet mode (-advertise)")
		}
		return server.ClusterOptions{}, nil
	}
	mem, err := cluster.ParseMembership(advertise, peerList)
	if err != nil {
		return server.ClusterOptions{}, err
	}
	return server.ClusterOptions{Membership: mem, StealThreshold: stealThreshold}, nil
}

// parseObsFlags validates the observability flags and builds the
// server's ObsOptions, including the structured logger the daemon logs
// through. Like parseClusterFlags, a bad combination fails before the
// server binds a socket.
func parseObsFlags(tracing bool, traceStore int, logFormat, logLevel string, sloP95 time.Duration, sloHitMin float64) (server.ObsOptions, error) {
	if traceStore < 1 {
		return server.ObsOptions{}, fmt.Errorf("-trace-store must be >= 1 (got %d)", traceStore)
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(logLevel)); err != nil {
		return server.ObsOptions{}, fmt.Errorf("-log-level %q: want debug, info, warn or error", logLevel)
	}
	var handler slog.Handler
	switch logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	default:
		return server.ObsOptions{}, fmt.Errorf("-log-format %q: want text or json", logFormat)
	}
	if sloP95 < 0 {
		return server.ObsOptions{}, fmt.Errorf("-slo-p95 must be >= 0 (got %v)", sloP95)
	}
	if sloHitMin < 0 || sloHitMin > 1 {
		return server.ObsOptions{}, fmt.Errorf("-slo-hit-min must be in [0,1] (got %g)", sloHitMin)
	}
	return server.ObsOptions{
		Tracing:        tracing,
		MaxTraces:      traceStore,
		Logger:         slog.New(handler),
		SLOLatencyP95:  sloP95,
		SLOCacheHitMin: sloHitMin,
	}, nil
}

func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
