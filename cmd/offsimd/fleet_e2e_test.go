package main

import (
	"bytes"

	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestFleetLoadtestSLO is the out-of-process acceptance run: it builds
// the real offsimd and loadtest binaries, boots a 3-replica fleet on
// localhost with -advertise/-peers, and drives it with the closed-loop
// loadtest under -p95-max and -hit-min SLO gates. Exit 0 from loadtest
// is the assertion: jobs completed, p95 under budget, and the fleet
// cache-hit ratio above the floor (the grid repeats, so hits must
// accumulate fleet-wide).
func TestFleetLoadtestSLO(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs daemon + loadtest binaries")
	}

	dir := t.TempDir()
	offsimd := filepath.Join(dir, "offsimd")
	loadtest := filepath.Join(dir, "loadtest")
	if out, err := exec.Command("go", "build", "-o", offsimd, ".").CombinedOutput(); err != nil {
		t.Fatalf("building offsimd: %v\n%s", err, out)
	}
	if out, err := exec.Command("go", "build", "-o", loadtest, "offloadsim/examples/loadtest").CombinedOutput(); err != nil {
		t.Fatalf("building loadtest: %v\n%s", err, out)
	}

	const n = 3
	addrs := make([]string, n)
	bases := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		bases[i] = "http://" + addrs[i]
		ln.Close()
	}

	var logs [n]bytes.Buffer
	for i := 0; i < n; i++ {
		var peers []string
		for j, b := range bases {
			if j != i {
				peers = append(peers, b)
			}
		}
		cmd := exec.Command(offsimd,
			"-addr", addrs[i],
			"-advertise", bases[i],
			"-peers", strings.Join(peers, ","),
			"-queue", "128",
			"-workers", "2",
		)
		cmd.Stdout = &logs[i]
		cmd.Stderr = &logs[i]
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		proc := cmd.Process
		t.Cleanup(func() { _ = proc.Kill() })
	}
	for i, b := range bases {
		base := b
		waitUntil(t, 10*time.Second, func() bool {
			resp, err := http.Get(base + "/healthz")
			if err != nil {
				return false
			}
			resp.Body.Close()
			return resp.StatusCode == http.StatusOK
		})
		if !strings.Contains(logs[i].String(), "fleet mode") {
			t.Fatalf("replica %d did not announce fleet mode:\n%s", i, logs[i].String())
		}
	}

	// 60 closed-loop jobs over a 6-point grid (-seeds 1): at least 54
	// submissions must be servable from the fleet cache, so a 0.5
	// hit-ratio floor has a wide margin (coalescing absorbs the races).
	lt := exec.Command(loadtest,
		"-addrs", strings.Join(bases, ","),
		"-arrival", "closed",
		"-k", "8",
		"-jobs", "60",
		"-seeds", "1",
		"-measure", "100000",
		"-p95-max", "30s",
		"-hit-min", "0.5",
	)
	out, err := lt.CombinedOutput()
	t.Logf("loadtest output:\n%s", out)
	if err != nil {
		for i := range logs {
			t.Logf("replica %d logs:\n%s", i, logs[i].String())
		}
		t.Fatalf("loadtest exited non-zero (SLO violation or failures): %v", err)
	}
	for _, want := range []string{"latency p95", "fleet cache-hit", "fleet steal rate"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("loadtest report missing %q", want)
		}
	}

	// The open-arrival discipline must also drive the fleet cleanly (a
	// short burst; no SLO gates — this checks the arrival loop, not
	// capacity).
	open := exec.Command(loadtest,
		"-addrs", strings.Join(bases, ","),
		"-arrival", "open",
		"-rate", "40",
		"-duration", "2s",
		"-seeds", "1",
		"-measure", "100000",
	)
	out, err = open.CombinedOutput()
	t.Logf("open-arrival output:\n%s", out)
	if err != nil {
		t.Fatalf("open-arrival loadtest failed: %v", err)
	}
	if !strings.Contains(string(out), "arrival             open") {
		t.Fatalf("open-arrival report did not record its discipline:\n%s", out)
	}
}
