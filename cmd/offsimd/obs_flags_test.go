package main

import (
	"strings"
	"testing"
	"time"
)

// TestParseObsFlags pins the observability flags' startup validation:
// a bad store size, log encoding, log level or SLO target is rejected
// before the daemon binds a socket, and a good combination lands in
// ObsOptions verbatim with a real logger attached.
func TestParseObsFlags(t *testing.T) {
	type args struct {
		tracing    bool
		traceStore int
		logFormat  string
		logLevel   string
		sloP95     time.Duration
		sloHitMin  float64
	}
	def := args{tracing: true, traceStore: 1024, logFormat: "text", logLevel: "info"}
	cases := []struct {
		name    string
		mutate  func(*args)
		wantErr string // substring; empty = success
	}{
		{"defaults", func(a *args) {}, ""},
		{"tracing off", func(a *args) { a.tracing = false }, ""},
		{"json logs", func(a *args) { a.logFormat = "json" }, ""},
		{"debug level", func(a *args) { a.logLevel = "debug" }, ""},
		{"warn level", func(a *args) { a.logLevel = "warn" }, ""},
		{"slo targets", func(a *args) { a.sloP95 = 30 * time.Second; a.sloHitMin = 0.9 }, ""},
		{"zero store", func(a *args) { a.traceStore = 0 }, "-trace-store"},
		{"negative store", func(a *args) { a.traceStore = -5 }, "-trace-store"},
		{"bad format", func(a *args) { a.logFormat = "logfmt" }, "-log-format"},
		{"bad level", func(a *args) { a.logLevel = "loud" }, "-log-level"},
		{"negative p95", func(a *args) { a.sloP95 = -time.Second }, "-slo-p95"},
		{"hit-min above one", func(a *args) { a.sloHitMin = 1.5 }, "-slo-hit-min"},
		{"negative hit-min", func(a *args) { a.sloHitMin = -0.1 }, "-slo-hit-min"},
	}
	for _, c := range cases {
		a := def
		c.mutate(&a)
		got, err := parseObsFlags(a.tracing, a.traceStore, a.logFormat, a.logLevel, a.sloP95, a.sloHitMin)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("%s: err=%v, want substring %q", c.name, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: unexpected error: %v", c.name, err)
			continue
		}
		if got.Tracing != a.tracing || got.MaxTraces != a.traceStore ||
			got.SLOLatencyP95 != a.sloP95 || got.SLOCacheHitMin != a.sloHitMin {
			t.Errorf("%s: options %+v do not mirror the flags %+v", c.name, got, a)
		}
		if got.Logger == nil {
			t.Errorf("%s: no logger built", c.name)
		}
	}
}
