package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSIGTERMDrainsRunningJobs builds the daemon, submits a long job,
// sends SIGTERM while it runs, and verifies the process finishes the
// job before exiting cleanly — the acceptance contract for graceful
// shutdown. Skipped where POSIX signals are unavailable.
func TestSIGTERMDrainsRunningJobs(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal semantics required")
	}
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}

	bin := filepath.Join(t.TempDir(), "offsimd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building offsimd: %v\n%s", err, out)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var logBuf bytes.Buffer
	cmd := exec.Command(bin, "-addr", addr, "-drain-timeout", "60s")
	cmd.Stdout = &logBuf
	cmd.Stderr = &logBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	waitUntil(t, 5*time.Second, func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})

	// A job big enough to still be running when the signal lands.
	spec := `{"workload":"derby","measure_instrs":3000000,"warmup_instrs":0,"seed":42}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, raw)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v\n%s", err, logBuf.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM\n%s", logBuf.String())
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "drained cleanly") {
		t.Errorf("expected clean drain, logs:\n%s", logs)
	}
	if !strings.Contains(logs, "draining jobs") {
		t.Errorf("expected drain announcement, logs:\n%s", logs)
	}
}

func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
