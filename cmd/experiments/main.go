// Command experiments regenerates every table and figure of the paper's
// evaluation and writes them to stdout:
//
//	experiments            # full scale (~a few minutes)
//	experiments -quick     # reduced scale smoke run
//	experiments -only figure4,table3
//
// The output is the textual equivalent of the paper's artifacts; see
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"offloadsim/internal/experiments"
	"offloadsim/internal/sim"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "reduced-scale smoke run")
		only  = flag.String("only", "", "comma-separated subset: table1,table2,table3,figure1,figure2,figure3,figure4,figure5,scaling,ablation,sampling,parallel,oscore,sensitivity")
		seed  = flag.Uint64("seed", 1, "random seed")
		plots = flag.Bool("plot", false, "also render Figure 4 as ASCII charts")
	)
	flag.Parse()

	opt := experiments.DefaultOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	opt.Seed = *seed

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(name))] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[name] }

	out := os.Stdout
	start := time.Now()

	if selected("table1") {
		experiments.TableI(out)
	}
	if selected("table2") {
		experiments.TableII(out)
	}
	if selected("figure1") {
		experiments.Figure1(opt).Render(out)
	}
	if selected("figure2") {
		experiments.Figure2(opt).Render(out)
	}
	if selected("figure3") {
		experiments.Figure3(opt).Render(out)
	}
	if selected("figure4") {
		f4 := experiments.Figure4(opt)
		f4.Render(out)
		if *plots {
			f4.RenderCharts(out)
		}
	}
	if selected("figure5") {
		experiments.Figure5(opt).Render(out)
	}
	if selected("table3") {
		experiments.TableIII(opt).Render(out)
	}
	if selected("scaling") {
		experiments.Scaling(opt).Render(out)
	}
	if selected("ablation") {
		experiments.HalvedL2(opt).Render(out)
		experiments.PredictorAblation(opt).Render(out)
		experiments.PredictorSizing(opt).Render(out)
		experiments.ProtocolAblation(opt).Render(out)
		experiments.AsymmetricOSCore(opt).Render(out)
		experiments.Confidence(opt, 5).Render(out)
	}
	if selected("sampling") {
		acc := experiments.SamplingAccuracyOptions{}
		if *quick {
			// Small enough to stay a smoke run, large enough that the
			// regression estimator has windows to work with (the noise
			// scales as sqrt(Ratio/Measure); below ~10M the ratio-of-sums
			// fallback makes the table look worse than the sampler is).
			acc.Thresholds = []int{100}
			acc.Seeds = []uint64{1}
			acc.MeasureInstrs = 16_000_000
			// Twice the default sampling density: at 16M the default
			// one-in-50 schedule leaves the regression estimator only ~16
			// windows and its variance dominates the table.
			acc.Sampling = sim.DefaultSampling()
			acc.Sampling.Ratio = 25
		}
		experiments.SamplingAccuracy(acc).Render(out)
	}
	if selected("oscore") {
		experiments.OSCoreCountSweep(opt).Render(out)
	}
	if selected("sensitivity") {
		experiments.OSCoreSensitivity(opt).Render(out)
	}
	if selected("parallel") {
		acc := experiments.ParallelAccuracyOptions{}
		if *quick {
			acc.Thresholds = []int{100}
			acc.Seeds = []uint64{1}
			acc.Cores = 4
			acc.MeasureInstrs = 500_000
		}
		experiments.ParallelAccuracy(acc).Render(out)
	}

	fmt.Fprintf(out, "completed in %s\n", time.Since(start).Round(time.Millisecond))
}
