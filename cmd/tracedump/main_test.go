package main

import "testing"

func TestValidateFlags(t *testing.T) {
	type args struct {
		capture, summary, replay, convert bool
		file, out                         string
		n, entries                        int
		instrs                            uint64
	}
	ok := args{capture: true, file: "x.trc", n: 500, instrs: 1000}
	cases := []struct {
		name    string
		mutate  func(*args)
		wantErr bool
	}{
		{"capture ok", func(a *args) {}, false},
		{"summary ok", func(a *args) { a.capture = false; a.summary = true }, false},
		{"replay ok", func(a *args) { a.capture = false; a.replay = true }, false},
		{"convert ok", func(a *args) { a.capture = false; a.convert = true; a.out = "y.json" }, false},
		{"no mode", func(a *args) { a.capture = false }, true},
		{"two modes", func(a *args) { a.summary = true }, true},
		{"three modes", func(a *args) { a.summary = true; a.replay = true }, true},
		{"capture+convert", func(a *args) { a.convert = true; a.out = "y.json" }, true},
		{"no file", func(a *args) { a.file = "" }, true},
		{"convert without out", func(a *args) { a.capture = false; a.convert = true }, true},
		{"out without convert", func(a *args) { a.out = "y.json" }, true},
		{"negative n", func(a *args) { a.n = -1 }, true},
		{"negative entries", func(a *args) { a.entries = -1500 }, true},
		{"zero instrs", func(a *args) { a.instrs = 0 }, true},
	}
	for _, c := range cases {
		a := ok
		c.mutate(&a)
		err := validateFlags(a.capture, a.summary, a.replay, a.convert, a.file, a.out, a.n, a.entries, a.instrs)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: err=%v, wantErr=%v", c.name, err, c.wantErr)
		}
	}
}
