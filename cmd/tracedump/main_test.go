package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	type args struct {
		capture, summary, replay, convert bool
		file, out                         string
		n, entries                        int
		instrs                            uint64
	}
	ok := args{capture: true, file: "x.trc", n: 500, instrs: 1000}
	cases := []struct {
		name    string
		mutate  func(*args)
		wantErr bool
	}{
		{"capture ok", func(a *args) {}, false},
		{"summary ok", func(a *args) { a.capture = false; a.summary = true }, false},
		{"replay ok", func(a *args) { a.capture = false; a.replay = true }, false},
		{"convert ok", func(a *args) { a.capture = false; a.convert = true; a.out = "y.json" }, false},
		{"no mode", func(a *args) { a.capture = false }, true},
		{"two modes", func(a *args) { a.summary = true }, true},
		{"three modes", func(a *args) { a.summary = true; a.replay = true }, true},
		{"capture+convert", func(a *args) { a.convert = true; a.out = "y.json" }, true},
		{"no file", func(a *args) { a.file = "" }, true},
		{"convert without out", func(a *args) { a.capture = false; a.convert = true }, true},
		{"out without convert", func(a *args) { a.out = "y.json" }, true},
		{"negative n", func(a *args) { a.n = -1 }, true},
		{"negative entries", func(a *args) { a.entries = -1500 }, true},
		{"zero instrs", func(a *args) { a.instrs = 0 }, true},
		{"convert onto input", func(a *args) { a.capture = false; a.convert = true; a.out = a.file }, true},
		{"convert distinct out", func(a *args) { a.capture = false; a.convert = true; a.out = "x.trace.json" }, false},
	}
	for _, c := range cases {
		a := ok
		c.mutate(&a)
		err := validateFlags(a.capture, a.summary, a.replay, a.convert, a.file, a.out, a.n, a.entries, a.instrs)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: err=%v, wantErr=%v", c.name, err, c.wantErr)
		}
	}
}

func TestClassifyJSONL(t *testing.T) {
	event := `{"t":5,"core":0,"seq":1,"kind":"os_entry"}`
	span := `{"trace_id":"ab","span_id":"cd","name":"request","start_unix_ns":1,"end_unix_ns":2,"status":"ok"}`
	cases := []struct {
		name    string
		data    string
		want    jsonlKind
		wantErr string // substring of the error, "" for success
	}{
		{"events only", event + "\n" + event + "\n", jsonlEvents, ""},
		{"spans only", span + "\n" + span + "\n", jsonlSpans, ""},
		{"blank lines tolerated", "\n" + span + "\n\n", jsonlSpans, ""},
		{"empty file", "\n\n", jsonlEvents, "no JSONL records"},
		{"mixed span then event", span + "\n" + event + "\n", jsonlEvents, "line 2 is a simulation event"},
		{"mixed event then span", event + "\n" + span + "\n", jsonlEvents, "line 2 is a service span"},
	}
	for _, c := range cases {
		got, err := classifyJSONL([]byte(c.data))
		if c.wantErr == "" {
			if err != nil || got != c.want {
				t.Errorf("%s: got kind=%v err=%v, want kind=%v", c.name, got, err, c.want)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err=%v, want substring %q", c.name, err, c.wantErr)
		}
	}
}
