// Command tracedump captures, inspects and replays OS-entry decision
// traces:
//
//	tracedump -capture -workload apache -instrs 5000000 -file apache.trc
//	tracedump -summary -file apache.trc
//	tracedump -replay  -file apache.trc -n 500
//	tracedump -replay  -file apache.trc -n 500 -dm -entries 1500
//	tracedump -convert -file run.jsonl -out run.trace.json
//
// Captured traces decouple predictor studies from the timing simulator:
// the same stream can be replayed through either predictor organization
// at any threshold, and the decision accuracy compared offline.
// -convert turns a JSONL export into a Perfetto-loadable Chrome trace
// and accepts both JSONL dialects the project emits: simulation-event
// traces (offsim -trace-format jsonl, offsimd /v1/traces) and service-
// span traces (offsimd /v1/debug/traces/{id}?format=jsonl). The file's
// records pick the converter; a file mixing the two is rejected with
// the offending line.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"offloadsim"
	"offloadsim/internal/core"
	"offloadsim/internal/obs"
	"offloadsim/internal/rng"
	"offloadsim/internal/trace"
	"offloadsim/internal/tracefile"
	"offloadsim/internal/workloads"
)

func main() {
	var (
		capture  = flag.Bool("capture", false, "capture a new trace from a workload")
		summary  = flag.Bool("summary", false, "summarize a trace's composition")
		replay   = flag.Bool("replay", false, "replay a trace through a run-length predictor")
		convert  = flag.Bool("convert", false, "convert a telemetry JSONL export to a Chrome trace")
		file     = flag.String("file", "", "trace file path")
		out      = flag.String("out", "", "output path for -convert")
		workload = flag.String("workload", "apache", "workload to capture: "+strings.Join(offloadsim.WorkloadNames(), ", "))
		instrs   = flag.Uint64("instrs", 5_000_000, "instructions to capture")
		seed     = flag.Uint64("seed", 1, "capture seed")
		n        = flag.Int("n", 500, "replay off-load threshold")
		dm       = flag.Bool("dm", false, "replay with the direct-mapped organization")
		entries  = flag.Int("entries", 0, "predictor entries (0 = paper default)")
	)
	flag.Parse()

	// Validate the whole invocation up front: a bad flag combination
	// should fail fast with usage, never after minutes of capture work.
	if err := validateFlags(*capture, *summary, *replay, *convert, *file, *out, *n, *entries, *instrs); err != nil {
		fail(err.Error())
	}

	switch {
	case *capture:
		doCapture(*workload, *instrs, *seed, *file)
	case *summary:
		doSummary(*file)
	case *replay:
		doReplay(*file, *n, *dm, *entries)
	case *convert:
		doConvert(*file, *out)
	}
}

// validateFlags checks the mode selection and every numeric flag before
// any work starts. Exactly one mode flag must be set.
func validateFlags(capture, summary, replay, convert bool, file, out string, n, entries int, instrs uint64) error {
	modes := 0
	for _, on := range []bool{capture, summary, replay, convert} {
		if on {
			modes++
		}
	}
	if modes == 0 {
		return fmt.Errorf("one of -capture, -summary, -replay, -convert is required")
	}
	if modes > 1 {
		return fmt.Errorf("-capture, -summary, -replay and -convert are mutually exclusive")
	}
	if file == "" {
		return fmt.Errorf("a -file is required")
	}
	if convert && out == "" {
		return fmt.Errorf("-convert requires -out")
	}
	if convert && out == file {
		return fmt.Errorf("-out %q would overwrite the -convert input; pick a different path", out)
	}
	if !convert && out != "" {
		return fmt.Errorf("-out only applies to -convert")
	}
	if n < 0 {
		return fmt.Errorf("-n must be >= 0 (got %d)", n)
	}
	if entries < 0 {
		return fmt.Errorf("-entries must be >= 0 (got %d)", entries)
	}
	if instrs == 0 {
		return fmt.Errorf("-instrs must be positive")
	}
	return nil
}

func fail(msg string) {
	fmt.Fprintf(os.Stderr, "tracedump: %s\n", msg)
	flag.Usage()
	os.Exit(2)
}

func doCapture(workload string, instrs, seed uint64, path string) {
	prof, ok := workloads.ByName(workload)
	if !ok {
		fail(fmt.Sprintf("unknown workload %q", workload))
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err.Error())
	}
	defer f.Close()

	space := &trace.AddressSpace{}
	src := rng.New(seed)
	kernel := trace.NewKernelLayout(space, src.Fork())
	gen, err := trace.NewGenerator(prof, 0, kernel, space, src.Fork())
	if err != nil {
		fail(err.Error())
	}
	count, err := tracefile.Capture(gen, instrs, f)
	if err != nil {
		fail(err.Error())
	}
	info, _ := f.Stat()
	fmt.Printf("captured %d OS entries from %d %s instructions into %s", count, instrs, workload, path)
	if info != nil {
		fmt.Printf(" (%d bytes, %.1f B/entry)", info.Size(), float64(info.Size())/float64(count))
	}
	fmt.Println()
}

func doSummary(path string) {
	f, err := os.Open(path)
	if err != nil {
		fail(err.Error())
	}
	defer f.Close()
	s, err := tracefile.Summarize(tracefile.NewReader(f))
	if err != nil {
		fail(err.Error())
	}
	fmt.Printf("entries            %d (%d syscalls, %d traps)\n", s.Entries, s.Syscalls, s.Traps)
	fmt.Printf("instructions       %d OS + %d user (%.1f%% privileged)\n",
		s.OSInstrs, s.UserInstrs, 100*s.PrivFraction())
	fmt.Printf("median run length  %.0f instructions\n", s.RunLengths.Quantile(0.5))
	fmt.Printf("p99 run length     %.0f instructions\n", s.RunLengths.Quantile(0.99))

	type kv struct {
		name string
		n    uint64
	}
	var mix []kv
	for name, cnt := range s.PerSyscall {
		mix = append(mix, kv{name, cnt})
	}
	sort.Slice(mix, func(i, j int) bool { return mix[i].n > mix[j].n })
	fmt.Println("top entry points:")
	for i, e := range mix {
		if i >= 10 {
			break
		}
		fmt.Printf("  %-14s %8d (%.1f%%)\n", e.name, e.n, 100*float64(e.n)/float64(s.Entries))
	}

	var cats []kv
	for name, instrs := range s.PerCategory {
		cats = append(cats, kv{name, instrs})
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i].n > cats[j].n })
	fmt.Println("OS time by subsystem:")
	for _, e := range cats {
		fmt.Printf("  %-14s %8d instrs (%.1f%%)\n", e.name, e.n, 100*float64(e.n)/float64(s.OSInstrs))
	}
}

func doConvert(path, out string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err.Error())
	}
	kind, err := classifyJSONL(data)
	if err != nil {
		fail(fmt.Sprintf("reading %s: %v", path, err))
	}
	f, err := os.Create(out)
	if err != nil {
		fail(err.Error())
	}
	switch kind {
	case jsonlSpans:
		spans, err := obs.ReadJSONL(bytes.NewReader(data))
		if err != nil {
			f.Close()
			fail(fmt.Sprintf("reading %s: %v", path, err))
		}
		if err := obs.WriteChrome(f, spans); err != nil {
			f.Close()
			fail(fmt.Sprintf("writing %s: %v", out, err))
		}
		if err := f.Close(); err != nil {
			fail(err.Error())
		}
		fmt.Printf("converted %d service spans into %s — load it in Perfetto or chrome://tracing\n",
			len(spans), out)
	case jsonlEvents:
		capt, err := offloadsim.ReadJSONLTrace(bytes.NewReader(data))
		if err != nil {
			f.Close()
			fail(fmt.Sprintf("reading %s: %v", path, err))
		}
		if err := offloadsim.ExportTrace(capt, offloadsim.NewChromeSink(f)); err != nil {
			f.Close()
			fail(fmt.Sprintf("writing %s: %v", out, err))
		}
		if err := f.Close(); err != nil {
			fail(err.Error())
		}
		fmt.Printf("converted %d events (%s, %d cores) into %s — load it in Perfetto or chrome://tracing\n",
			len(capt.Events), capt.Meta.Workload, capt.Meta.UserCores, out)
	}
}

// jsonlKind labels the two JSONL dialects -convert accepts.
type jsonlKind int

const (
	jsonlEvents jsonlKind = iota // simulation-event telemetry export
	jsonlSpans                   // service-span export
)

// classifyJSONL decides which dialect a JSONL export holds by probing
// every line for the span discriminator ("span_id"), and rejects files
// that mix the two — the dialects look superficially similar, and a
// silent best-effort parse would produce a half-empty Chrome trace.
func classifyJSONL(data []byte) (jsonlKind, error) {
	spanLine, eventLine := 0, 0 // first 1-based line of each dialect
	for i, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if obs.IsSpanRecord(line) {
			if spanLine == 0 {
				spanLine = i + 1
			}
		} else if eventLine == 0 {
			eventLine = i + 1
		}
	}
	switch {
	case spanLine == 0 && eventLine == 0:
		return jsonlEvents, fmt.Errorf("no JSONL records found")
	case spanLine != 0 && eventLine != 0:
		return jsonlEvents, fmt.Errorf(
			"mixed export: line %d is a service span but line %d is a simulation event — "+
				"the two JSONL dialects are different formats; export and convert them separately",
			spanLine, eventLine)
	case spanLine != 0:
		return jsonlSpans, nil
	default:
		return jsonlEvents, nil
	}
}

func doReplay(path string, n int, dm bool, entries int) {
	f, err := os.Open(path)
	if err != nil {
		fail(err.Error())
	}
	defer f.Close()

	var pred core.Predictor
	var label string
	if dm {
		if entries == 0 {
			entries = core.DefaultDirectMappedEntries
		}
		pred = core.NewDirectMappedPredictor(entries)
		label = fmt.Sprintf("direct-mapped, %d entries", entries)
	} else {
		if entries == 0 {
			entries = core.DefaultCAMEntries
		}
		pred = core.NewCAMPredictor(entries)
		label = fmt.Sprintf("CAM, %d entries", entries)
	}
	rep, err := tracefile.Replay(tracefile.NewReader(f), pred, n)
	if err != nil {
		fail(err.Error())
	}
	fmt.Printf("predictor            %s, threshold N=%d\n", label, n)
	fmt.Printf("entries replayed     %d (%d syscalls, %d traps)\n", rep.Entries, rep.Syscalls, rep.Traps)
	fmt.Printf("run-length accuracy  %.1f%% exact + %.1f%% within ±5%% (syscalls)\n",
		100*rep.Exact, 100*rep.Within5)
	fmt.Printf("binary accuracy      %.1f%% at N=%d\n", 100*rep.BinaryAccuracy, n)
	fmt.Printf("off-load rate        %.1f%% of entries\n", 100*rep.OffloadRate)
}
