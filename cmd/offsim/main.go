// Command offsim runs a single off-loading simulation and prints the
// measured result. It is the interactive front end to the library:
//
//	offsim -workload apache -policy HI -n 100 -latency 100
//	offsim -workload specjbb -policy HI -n 100 -latency 1000 -cores 4
//	offsim -workload derby -policy DI -dynamic -latency 5000
//	offsim -workload apache -trace run.trace.json       # Perfetto-loadable
//	offsim -workload apache -timeseries run.csv         # interval series
//
// Pass -baseline-compare to also run the single-core no-off-loading
// baseline and report normalized throughput. -trace and -timeseries
// attach the telemetry layer (docs/TELEMETRY.md) without changing the
// measured result.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"offloadsim"
)

func main() {
	var (
		workload   = flag.String("workload", "apache", "workload profile: "+strings.Join(offloadsim.WorkloadNames(), ", "))
		policyName = flag.String("policy", "HI", "decision policy: baseline, SI, DI, HI")
		threshold  = flag.Int("n", 1000, "off-load threshold N in instructions")
		latency    = flag.Int("latency", 100, "one-way migration latency in cycles")
		cores      = flag.Int("cores", 1, "user cores sharing the OS core")
		dynamic    = flag.Bool("dynamic", false, "enable the dynamic threshold tuner (DI/HI)")
		dmPred     = flag.Bool("dm-predictor", false, "use the 1500-entry direct-mapped predictor instead of the 200-entry CAM")
		warmup     = flag.Uint64("warmup", 1_000_000, "warmup instructions per core")
		measure    = flag.Uint64("measure", 2_000_000, "measured instructions per core")
		seed       = flag.Uint64("seed", 1, "random seed")
		instrOnly  = flag.Bool("instrument-only", false, "charge decision overhead but never migrate (Figure 1 mode)")
		compare    = flag.Bool("baseline-compare", false, "also run the no-off-loading baseline and report normalized throughput")
		energyRpt  = flag.Bool("energy", false, "evaluate the run under the default asymmetric-CMP energy model")
		jsonOut    = flag.Bool("json", false, "emit the full result as JSON instead of text")
		osSlots    = flag.Int("os-slots", 1, "OS core hardware contexts (SMT extension)")
		moesi      = flag.Bool("moesi", false, "use the MOESI coherence protocol instead of MESI")
		osL1KB     = flag.Int("os-l1", 0, "OS core L1 size in KB (0 = same as user cores)")
		traceFile  = flag.String("trace", "", "write a telemetry event trace of the measured phase to this file (docs/TELEMETRY.md)")
		traceFmt   = flag.String("trace-format", "chrome", "trace file format: chrome (Perfetto-loadable) or jsonl")
		seriesFile = flag.String("timeseries", "", "write the interval time-series to this CSV file")
		traceIval  = flag.Uint64("trace-interval", 50_000, "time-series sampling cadence in retired instructions (with -timeseries)")
		osCores    = flag.Int("os-cores", 1, "OS cores in the off-load cluster (docs/OSCORES.md)")
		affinity   = flag.String("affinity", "", "syscall-class affinity map, e.g. 'file=0,network=1,*=0' (requires -os-cores > 1)")
		asymmetry  = flag.String("asymmetry", "", "per-OS-core speed factors, e.g. '1,0.5' (big/little cluster)")
		async      = flag.Bool("async", false, "fire-and-forget off-load for side-effect-only syscall classes")
		asyncSlots = flag.Int("async-slots", 0, "outstanding async off-loads per user core (0 = default, requires -async)")
		depthN     = flag.Int("depth-n", 0, "queue-depth threshold penalty per backlogged request (dynamic-N extension)")
		rebalance  = flag.Bool("rebalance", false, "route to a strictly less-backlogged OS core over the designated one")
	)
	flag.Parse()

	// Validate every flag up front so nonsense values fail immediately
	// with a clear message instead of deep inside Config.Validate (or,
	// worse, silently producing a meaningless run).
	if *threshold < 0 {
		fatalUsage("-n must be >= 0 (got %d)", *threshold)
	}
	if *latency < 0 {
		fatalUsage("-latency must be >= 0 cycles (got %d)", *latency)
	}
	if *cores < 1 {
		fatalUsage("-cores must be >= 1 (got %d)", *cores)
	}
	if *osSlots < 1 {
		fatalUsage("-os-slots must be >= 1 (got %d)", *osSlots)
	}
	if *measure == 0 {
		fatalUsage("-measure must be positive")
	}
	if *osL1KB < 0 {
		fatalUsage("-os-l1 must be >= 0 KB (got %d)", *osL1KB)
	}
	if *traceFmt != "chrome" && *traceFmt != "jsonl" {
		fatalUsage("-trace-format must be chrome or jsonl (got %q)", *traceFmt)
	}
	if *seriesFile != "" && *traceIval == 0 {
		fatalUsage("-trace-interval must be positive with -timeseries")
	}
	oscoresBlock, oscErr := oscoresFlags{
		K: *osCores, Affinity: *affinity, Asymmetry: *asymmetry,
		Async: *async, AsyncSlots: *asyncSlots, DepthN: *depthN, Rebalance: *rebalance,
	}.block()
	if oscErr != nil {
		fatalUsage("%v", oscErr)
	}
	if flag.NArg() > 0 {
		fatalUsage("unexpected arguments: %s", strings.Join(flag.Args(), " "))
	}

	prof, ok := offloadsim.WorkloadByName(*workload)
	if !ok {
		fatalUsage("unknown workload %q (have: %s)",
			*workload, strings.Join(offloadsim.WorkloadNames(), ", "))
	}
	kind, ok := offloadsim.ParsePolicy(*policyName)
	if !ok {
		fatalUsage("unknown policy %q (baseline, SI, DI, HI, oracle)", *policyName)
	}

	cfg := offloadsim.DefaultConfig(prof)
	cfg.Policy = kind
	cfg.Threshold = *threshold
	cfg.Migration = offloadsim.CustomMigration(*latency)
	cfg.UserCores = *cores
	cfg.WarmupInstrs = *warmup
	cfg.MeasureInstrs = *measure
	cfg.Seed = *seed
	cfg.InstrumentOnly = *instrOnly
	cfg.DirectMappedPredictor = *dmPred
	cfg.OSCoreSlots = *osSlots
	cfg.OSCores = oscoresBlock
	if *moesi {
		cc := offloadsim.DefaultCoherenceConfig()
		cc.Protocol = offloadsim.MOESI
		cfg.Coherence = cc
	}
	if *osL1KB > 0 {
		osCPU := offloadsim.DefaultCPUConfig()
		osCPU.L1I.SizeBytes = *osL1KB << 10
		osCPU.L1D.SizeBytes = *osL1KB << 10
		cfg.OSCPU = &osCPU
	}
	if *dynamic {
		cfg.DynamicN = true
		tc := offloadsim.DefaultTunerConfig()
		tc.SampleEpoch = *measure / 40
		if tc.SampleEpoch < 1000 {
			tc.SampleEpoch = 1000
		}
		tc.BaseRun = tc.SampleEpoch * 4
		tc.MaxRun = tc.BaseRun * 4
		cfg.Tuner = tc
	}

	var res offloadsim.Result
	var err error
	if *traceFile != "" || *seriesFile != "" {
		// Telemetry is attachment-only: the traced Result is
		// byte-identical to an untraced run of the same config.
		opts := offloadsim.TelemetryOptions{Events: *traceFile != ""}
		if *seriesFile != "" {
			opts.IntervalInstrs = *traceIval
		}
		var capt *offloadsim.TraceCapture
		res, capt, err = offloadsim.RunTraced(cfg, opts)
		if err == nil {
			err = writeTelemetry(capt, *traceFile, *traceFmt, *seriesFile)
		}
	} else {
		res, err = offloadsim.Run(cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "offsim: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "offsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	printResult(res)

	if *energyRpt {
		rep, err := offloadsim.Energy(res, offloadsim.DefaultEnergyModel())
		if err != nil {
			fmt.Fprintf(os.Stderr, "offsim: energy: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("energy                  %.6f J over %.6f s (%.2f W avg), EDP %.3e J*s\n",
			rep.Joules, rep.Seconds, rep.AvgWatts, rep.EDP)
	}

	if *compare {
		base := cfg
		base.Policy = offloadsim.Baseline
		base.DynamicN = false
		baseRes, err := offloadsim.Run(base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "offsim: baseline: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nbaseline throughput     %.4f\n", baseRes.Throughput)
		fmt.Printf("normalized throughput   %.3f\n", res.Throughput/baseRes.Throughput)
	}
}

func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "offsim: "+format+"\n", args...)
	os.Exit(2)
}

// writeTelemetry exports the capture to the requested trace and/or
// time-series files.
func writeTelemetry(capt *offloadsim.TraceCapture, traceFile, format, seriesFile string) error {
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		sink := offloadsim.NewChromeSink(f)
		if format == "jsonl" {
			sink = offloadsim.NewJSONLSink(f)
		}
		if err := offloadsim.ExportTrace(capt, sink); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if seriesFile != "" {
		f, err := os.Create(seriesFile)
		if err != nil {
			return err
		}
		if err := offloadsim.WriteSeriesCSV(f, capt.Series); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func printResult(r offloadsim.Result) {
	fmt.Printf("workload                %s\n", r.Workload)
	fmt.Printf("policy                  %s (final N=%d)\n", r.Policy, r.Threshold)
	fmt.Printf("migration one-way       %d cycles\n", r.OneWay)
	fmt.Printf("user cores              %d\n", r.UserCores)
	fmt.Printf("instructions            %d\n", r.Instrs)
	fmt.Printf("cycles (max core)       %d\n", r.Cycles)
	fmt.Printf("aggregate throughput    %.4f instr/cycle\n", r.Throughput)
	for i, ipc := range r.PerCoreIPC {
		fmt.Printf("  core %d IPC            %.4f\n", i, ipc)
	}
	fmt.Printf("privileged share        %.1f%%\n", 100*r.PrivFraction)
	fmt.Printf("OS entries              %d (off-loaded %d = %.1f%%)\n",
		r.OSEntries, r.Offloads, 100*r.OffloadRate)
	fmt.Printf("decision overhead       %d cycles\n", r.OverheadCycles)
	fmt.Printf("user L2 hit rate        %.3f\n", r.UserL2HitRate)
	fmt.Printf("OS   L2 hit rate        %.3f\n", r.OSL2HitRate)
	fmt.Printf("OS core utilization     %.1f%%\n", 100*r.OSCoreUtilization)
	fmt.Printf("mean queue delay        %.0f cycles (max %.0f)\n", r.MeanQueueDelay, r.MaxQueueDelay)
	fmt.Printf("coherence: c2c          %d, invalidations %d, memory fills %d\n",
		r.C2CTransfers, r.Invalidations, r.MemoryFills)
	if r.PredictorExact+r.PredictorWithin5 > 0 {
		fmt.Printf("predictor accuracy      %.1f%% exact + %.1f%% within ±5%%\n",
			100*r.PredictorExact, 100*r.PredictorWithin5)
		fmt.Printf("binary decision acc.    %.1f%%\n", 100*r.BinaryAccuracy)
	}
	if len(r.TunerHistory) > 0 {
		fmt.Printf("tuner: %d threshold changes over %d epochs\n", r.TunerChanges, len(r.TunerHistory))
	}
}
