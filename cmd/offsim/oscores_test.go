package main

import (
	"strings"
	"testing"

	"offloadsim"
)

// TestOSCoresFlagBlock exercises the up-front validation of the
// -os-cores/-affinity/-asymmetry flag family: every rejection must name
// the offending flag, and accepted combinations must build the exact
// Config block the engine will see.
func TestOSCoresFlagBlock(t *testing.T) {
	cases := []struct {
		name    string
		flags   oscoresFlags
		want    offloadsim.OSCores
		wantErr string // substring of the error, "" for success
	}{
		{
			name:  "defaults collapse to the legacy single-OS-core model",
			flags: oscoresFlags{K: 1},
			want:  offloadsim.OSCores{},
		},
		{
			name:  "plain k=2 cluster",
			flags: oscoresFlags{K: 2},
			want:  offloadsim.OSCores{Enabled: true, K: 2},
		},
		{
			name:  "k=1 with async still enables the cluster model",
			flags: oscoresFlags{K: 1, Async: true},
			want:  offloadsim.OSCores{Enabled: true, K: 1, Async: true},
		},
		{
			name:  "explicit affinity and asymmetry carried through",
			flags: oscoresFlags{K: 2, Affinity: "file=0,network=1", Asymmetry: "1,0.5"},
			want: offloadsim.OSCores{
				Enabled: true, K: 2,
				Affinity: "file=0,network=1", Asymmetry: "1,0.5",
			},
		},
		{
			name:  "wildcard affinity",
			flags: oscoresFlags{K: 4, Affinity: "*=0,trap=3"},
			want:  offloadsim.OSCores{Enabled: true, K: 4, Affinity: "*=0,trap=3"},
		},
		{
			name:  "async slots with async",
			flags: oscoresFlags{K: 2, Async: true, AsyncSlots: 4},
			want:  offloadsim.OSCores{Enabled: true, K: 2, Async: true, AsyncSlots: 4},
		},
		{
			name:  "depth-n and rebalance carried through",
			flags: oscoresFlags{K: 2, DepthN: 500, Rebalance: true},
			want:  offloadsim.OSCores{Enabled: true, K: 2, DepthN: 500, Rebalance: true},
		},
		{
			name:    "zero os-cores",
			flags:   oscoresFlags{K: 0},
			wantErr: "-os-cores must be >= 1",
		},
		{
			name:    "negative os-cores",
			flags:   oscoresFlags{K: -3},
			wantErr: "-os-cores must be >= 1",
		},
		{
			name:    "os-cores beyond the cap",
			flags:   oscoresFlags{K: offloadsim.MaxOSCores + 1},
			wantErr: "-os-cores must be <=",
		},
		{
			name:    "affinity core index out of range",
			flags:   oscoresFlags{K: 2, Affinity: "file=2"},
			wantErr: "-affinity:",
		},
		{
			name:    "affinity unknown class",
			flags:   oscoresFlags{K: 2, Affinity: "disk=0"},
			wantErr: "-affinity:",
		},
		{
			name:    "affinity duplicate class",
			flags:   oscoresFlags{K: 2, Affinity: "file=0,file=1"},
			wantErr: "-affinity:",
		},
		{
			name:    "affinity missing equals",
			flags:   oscoresFlags{K: 2, Affinity: "file"},
			wantErr: "-affinity:",
		},
		{
			name:    "asymmetry wrong arity",
			flags:   oscoresFlags{K: 4, Asymmetry: "1,0.5"},
			wantErr: "-asymmetry:",
		},
		{
			name:    "asymmetry factor out of range",
			flags:   oscoresFlags{K: 2, Asymmetry: "1,100"},
			wantErr: "-asymmetry:",
		},
		{
			name:    "asymmetry not a number",
			flags:   oscoresFlags{K: 2, Asymmetry: "1,fast"},
			wantErr: "-asymmetry:",
		},
		{
			name:    "negative async slots",
			flags:   oscoresFlags{K: 2, Async: true, AsyncSlots: -1},
			wantErr: "-async-slots must be >= 0",
		},
		{
			name:    "async slots without async",
			flags:   oscoresFlags{K: 2, AsyncSlots: 2},
			wantErr: "-async-slots requires -async",
		},
		{
			name:    "negative depth-n",
			flags:   oscoresFlags{K: 2, DepthN: -1},
			wantErr: "-depth-n must be >= 0",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.flags.block()
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("block() = %+v, want error containing %q", got, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("block() error = %q, want it to contain %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("block() unexpected error: %v", err)
			}
			if got != tc.want {
				t.Fatalf("block() = %+v, want %+v", got, tc.want)
			}
		})
	}
}

// TestOSCoresFlagBlockPassesConfigValidate: every block the flag layer
// accepts must also be accepted by the engine's own Config.Validate —
// the up-front check is a better error message, never a different rule.
func TestOSCoresFlagBlockPassesConfigValidate(t *testing.T) {
	accepted := []oscoresFlags{
		{K: 1},
		{K: 2},
		{K: 4, Affinity: "*=1", Asymmetry: "2"},
		{K: 2, Async: true, AsyncSlots: 8, DepthN: 100, Rebalance: true},
	}
	prof, _ := offloadsim.WorkloadByName("apache")
	for _, f := range accepted {
		blk, err := f.block()
		if err != nil {
			t.Fatalf("block(%+v): %v", f, err)
		}
		cfg := offloadsim.DefaultConfig(prof)
		cfg.OSCores = blk
		if err := cfg.Validate(); err != nil {
			t.Errorf("Config.Validate rejected flag-accepted block %+v: %v", f, err)
		}
	}
}
