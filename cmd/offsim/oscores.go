package main

import (
	"fmt"

	"offloadsim"
)

// oscoresFlags collects the multi-OS-core flag values (docs/OSCORES.md)
// so they can be validated up front as a unit — the flags constrain each
// other (-affinity indexes must fit -os-cores, -async-slots needs
// -async), so per-flag checks cannot catch everything.
type oscoresFlags struct {
	K          int
	Affinity   string
	Asymmetry  string
	Async      bool
	AsyncSlots int
	DepthN     int
	Rebalance  bool
}

// block validates the flags and returns the Config block they describe.
// All-default flags return the disabled zero block: the run takes the
// classic single-OS-core path, byte-identical to builds that predate the
// cluster model.
func (f oscoresFlags) block() (offloadsim.OSCores, error) {
	if f.K < 1 {
		return offloadsim.OSCores{}, fmt.Errorf("-os-cores must be >= 1 (got %d)", f.K)
	}
	if f.K > offloadsim.MaxOSCores {
		return offloadsim.OSCores{}, fmt.Errorf("-os-cores must be <= %d (got %d)", offloadsim.MaxOSCores, f.K)
	}
	if err := offloadsim.ValidateAffinity(f.Affinity, f.K); err != nil {
		return offloadsim.OSCores{}, fmt.Errorf("-affinity: %v", err)
	}
	if err := offloadsim.ValidateAsymmetry(f.Asymmetry, f.K); err != nil {
		return offloadsim.OSCores{}, fmt.Errorf("-asymmetry: %v", err)
	}
	if f.AsyncSlots < 0 {
		return offloadsim.OSCores{}, fmt.Errorf("-async-slots must be >= 0 (got %d)", f.AsyncSlots)
	}
	if f.AsyncSlots > 0 && !f.Async {
		return offloadsim.OSCores{}, fmt.Errorf("-async-slots requires -async")
	}
	if f.DepthN < 0 {
		return offloadsim.OSCores{}, fmt.Errorf("-depth-n must be >= 0 (got %d)", f.DepthN)
	}
	if f == (oscoresFlags{K: 1}) {
		return offloadsim.OSCores{}, nil
	}
	return offloadsim.OSCores{
		Enabled:    true,
		K:          f.K,
		Affinity:   f.Affinity,
		Asymmetry:  f.Asymmetry,
		Async:      f.Async,
		AsyncSlots: f.AsyncSlots,
		DepthN:     f.DepthN,
		Rebalance:  f.Rebalance,
	}, nil
}
