package main

import (
	"reflect"
	"strings"
	"testing"

	"offloadsim"
)

// TestOSCoreAxis exercises the up-front validation of the sweep's
// -os-cores axis and its scalar companions: the whole grid must be
// rejected before any simulation starts when any K on the axis cannot
// satisfy the affinity/asymmetry flags.
func TestOSCoreAxis(t *testing.T) {
	cases := []struct {
		name      string
		list      string
		affinity  string
		asymmetry string
		async     bool
		depthN    int
		rebalance bool
		wantKs    []int
		want      []offloadsim.OSCores
		wantErr   string // substring of the error, "" for success
	}{
		{
			name:   "default axis collapses to the legacy model",
			list:   "1",
			wantKs: []int{1},
			want:   []offloadsim.OSCores{{}},
		},
		{
			name:   "k sweep",
			list:   "1,2,4",
			wantKs: []int{1, 2, 4},
			want: []offloadsim.OSCores{
				{},
				{Enabled: true, K: 2},
				{Enabled: true, K: 4},
			},
		},
		{
			name:     "scalar flags applied to every k",
			list:     "2,4",
			affinity: "file=1,*=0",
			async:    true,
			depthN:   200,
			wantKs:   []int{2, 4},
			want: []offloadsim.OSCores{
				{Enabled: true, K: 2, Affinity: "file=1,*=0", Async: true, DepthN: 200},
				{Enabled: true, K: 4, Affinity: "file=1,*=0", Async: true, DepthN: 200},
			},
		},
		{
			name:      "k=1 with rebalance still enables the cluster model",
			list:      "1",
			rebalance: true,
			wantKs:    []int{1},
			want:      []offloadsim.OSCores{{Enabled: true, K: 1, Rebalance: true}},
		},
		{
			name:      "single asymmetry factor broadcasts across the axis",
			list:      "2,4",
			asymmetry: "0.5",
			wantKs:    []int{2, 4},
			want: []offloadsim.OSCores{
				{Enabled: true, K: 2, Asymmetry: "0.5"},
				{Enabled: true, K: 4, Asymmetry: "0.5"},
			},
		},
		{
			name:    "empty axis",
			list:    "",
			wantErr: "at least one value",
		},
		{
			name:    "non-numeric axis entry",
			list:    "2,many",
			wantErr: "bad -os-cores",
		},
		{
			name:    "zero k",
			list:    "0,2",
			wantErr: "-os-cores values must be >= 1",
		},
		{
			name:    "k beyond the cap",
			list:    "2,65",
			wantErr: "-os-cores values must be <=",
		},
		{
			name:    "duplicate k",
			list:    "2,2",
			wantErr: "duplicate -os-cores value 2",
		},
		{
			name:     "affinity index must fit every k on the axis",
			list:     "4,2",
			affinity: "file=3",
			wantErr:  "-affinity (at k=2)",
		},
		{
			name:     "unknown affinity class",
			list:     "2",
			affinity: "disk=0",
			wantErr:  "-affinity (at k=2)",
		},
		{
			name:      "asymmetry arity must fit every k on the axis",
			list:      "2,4",
			asymmetry: "1,0.5",
			wantErr:   "-asymmetry (at k=4)",
		},
		{
			name:      "asymmetry factor out of range",
			list:      "2",
			asymmetry: "1,32",
			wantErr:   "-asymmetry (at k=2)",
		},
		{
			name:    "negative depth-n",
			list:    "2",
			depthN:  -5,
			wantErr: "-depth-n must be >= 0",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ks, blocks, err := oscoreAxis(tc.list, tc.affinity, tc.asymmetry,
				tc.async, tc.depthN, tc.rebalance)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("oscoreAxis() = %v, %+v; want error containing %q", ks, blocks, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("oscoreAxis() error = %q, want it to contain %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("oscoreAxis() unexpected error: %v", err)
			}
			if !reflect.DeepEqual(ks, tc.wantKs) {
				t.Errorf("oscoreAxis() ks = %v, want %v", ks, tc.wantKs)
			}
			if !reflect.DeepEqual(blocks, tc.want) {
				t.Errorf("oscoreAxis() blocks = %+v, want %+v", blocks, tc.want)
			}
		})
	}
}

// TestOSCoreModeGatesExportColumn: the os_cores column appears exactly
// when the axis departs from the classic model, so legacy sweep output
// stays byte-identical.
func TestOSCoreModeGatesExportColumn(t *testing.T) {
	_, legacy, err := oscoreAxis("1", "", "", false, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if oscoreMode(legacy) {
		t.Error("oscoreMode(default axis) = true, want false (legacy CSV must not change)")
	}
	_, cluster, err := oscoreAxis("1,2", "", "", false, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !oscoreMode(cluster) {
		t.Error("oscoreMode(1,2 axis) = false, want true")
	}
	_, asym, err := oscoreAxis("1", "", "0.5", false, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !oscoreMode(asym) {
		t.Error("oscoreMode(k=1 with asymmetry) = false, want true")
	}
}
