// Command sweep runs a parameter grid (workloads × policies × thresholds
// × migration latencies) and emits machine-readable results for external
// analysis:
//
//	sweep -workloads apache,derby -policies HI,SI -n 50,100,1000 -latencies 100,5000 -format csv
//	sweep -workloads apache -policies HI -n 100 -latencies 100 -format json -energy
//	sweep -workloads apache -n 100,1000 -telemetry-dir ts/   # per-point interval CSVs
//
// Every row is one deterministic simulation; rows also carry normalized
// throughput against the matching single-core baseline, which the tool
// runs automatically per workload.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"offloadsim"
	"offloadsim/internal/parallel"
)

// Row is one sweep result in export form.
type Row struct {
	Workload   string  `json:"workload"`
	Policy     string  `json:"policy"`
	Threshold  int     `json:"threshold"`
	OneWay     int     `json:"one_way_latency"`
	Throughput float64 `json:"throughput"`
	Normalized float64 `json:"normalized"`
	OffloadPct float64 `json:"offload_pct"`
	OSUtilPct  float64 `json:"os_util_pct"`
	UserL2Hit  float64 `json:"user_l2_hit"`
	OSL2Hit    float64 `json:"os_l2_hit"`
	C2C        uint64  `json:"c2c_transfers"`
	QueueMean  float64 `json:"queue_mean_cyc"`
	OSCores    int     `json:"os_cores,omitempty"`
	Joules     float64 `json:"joules,omitempty"`
	EDP        float64 `json:"edp,omitempty"`
}

func main() {
	var (
		workloadsFlag = flag.String("workloads", "apache", "comma-separated workloads")
		policiesFlag  = flag.String("policies", "HI", "comma-separated policies: baseline,SI,DI,HI,oracle")
		nFlag         = flag.String("n", "100", "comma-separated thresholds")
		latFlag       = flag.String("latencies", "100", "comma-separated one-way migration latencies")
		format        = flag.String("format", "csv", "output format: csv or json")
		warmup        = flag.Uint64("warmup", 1_000_000, "warmup instructions")
		measure       = flag.Uint64("measure", 1_000_000, "measured instructions")
		seed          = flag.Uint64("seed", 1, "random seed")
		energy        = flag.Bool("energy", false, "include energy/EDP columns (default power model)")
		sampled       = flag.Bool("sampled", false, "run every point in interval-sampling mode (default schedule; see docs/SAMPLING.md)")
		replicas      = flag.Int("replicas", 1, "independent sampled replicas merged per point (requires -sampled)")
		parEngine     = flag.Bool("parallel", false, "run every point on the quantum-parallel detailed engine (docs/PARALLEL.md)")
		workers       = flag.Int("workers", runtime.GOMAXPROCS(0), "host goroutines running sweep points concurrently (results are order- and count-independent)")
		cpuProfile    = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file (pprof format)")
		memProfile    = flag.String("memprofile", "", "write an end-of-sweep heap profile to this file (pprof format)")
		telemetryDir  = flag.String("telemetry-dir", "", "write a per-point interval time-series CSV into this directory (docs/TELEMETRY.md; incompatible with -sampled)")
		telemetryIval = flag.Uint64("telemetry-interval", 50_000, "time-series sampling cadence in retired instructions (with -telemetry-dir)")
		osCoresFlag   = flag.String("os-cores", "1", "comma-separated OS-core cluster sizes as a sweep axis (docs/OSCORES.md)")
		affinityFlag  = flag.String("affinity", "", "syscall-class affinity map applied to every sweep point, e.g. 'file=0,*=1'")
		asymFlag      = flag.String("asymmetry", "", "per-OS-core speed factors applied to every sweep point, e.g. '1,0.5'")
		asyncFlag     = flag.Bool("async", false, "fire-and-forget off-load for side-effect-only syscall classes")
		depthNFlag    = flag.Int("depth-n", 0, "queue-depth threshold penalty per backlogged request")
		rebalFlag     = flag.Bool("rebalance", false, "route to a strictly less-backlogged OS core over the designated one")
	)
	flag.Parse()

	wls := splitList(*workloadsFlag)
	pols := splitList(*policiesFlag)
	ns, err := splitInts(*nFlag)
	if err != nil {
		fail("bad -n: " + err.Error())
	}
	lats, err := splitInts(*latFlag)
	if err != nil {
		fail("bad -latencies: " + err.Error())
	}
	for _, n := range ns {
		if n < 0 {
			fail(fmt.Sprintf("-n values must be >= 0 (got %d)", n))
		}
	}
	for _, lat := range lats {
		if lat < 0 {
			fail(fmt.Sprintf("-latencies values must be >= 0 (got %d)", lat))
		}
	}
	if *measure == 0 {
		fail("-measure must be positive")
	}
	if *replicas < 1 {
		fail("-replicas must be >= 1")
	}
	if *replicas > 1 && !*sampled {
		fail("-replicas requires -sampled")
	}
	if *workers < 1 {
		fail("-workers must be >= 1")
	}
	oscoreKs, oscoreBlocks, err := oscoreAxis(*osCoresFlag, *affinityFlag, *asymFlag,
		*asyncFlag, *depthNFlag, *rebalFlag)
	if err != nil {
		fail(err.Error())
	}
	withOSCores := oscoreMode(oscoreBlocks)
	if withOSCores && *parEngine {
		fail("-parallel is incompatible with the multi-OS-core cluster model (-os-cores/-affinity/-asymmetry/-async)")
	}
	if *telemetryDir != "" && *sampled {
		fail("-telemetry-dir requires cycle-accurate execution (incompatible with -sampled)")
	}
	if *telemetryDir != "" && *telemetryIval == 0 {
		fail("-telemetry-interval must be positive with -telemetry-dir")
	}
	if *telemetryDir != "" {
		if err := os.MkdirAll(*telemetryDir, 0o755); err != nil {
			fail("creating -telemetry-dir: " + err.Error())
		}
	}

	// Profiling hooks: a sweep is the natural harness for profiling the
	// simulation engine under a realistic mix (docs/PERFORMANCE.md walks
	// through the workflow). CPU profiling covers the whole grid; the
	// heap profile is taken after the last point so it shows steady-state
	// retention, not construction transients.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail("creating -cpuprofile: " + err.Error())
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("starting CPU profile: " + err.Error())
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fail("creating -memprofile: " + err.Error())
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail("writing heap profile: " + err.Error())
			}
		}()
	}
	runOne := func(cfg offloadsim.Config) (offloadsim.Result, error) {
		if *parEngine {
			cfg.Parallel = offloadsim.DefaultParallel()
			// Host parallelism lives in the row fan-out; each point stays
			// single-goroutine so -workers alone bounds the load.
			cfg.Parallel.Workers = 1
		}
		if !*sampled {
			return offloadsim.Run(cfg)
		}
		cfg.Sampling = offloadsim.DefaultSampling()
		cfg.Sampling.Replicas = *replicas
		res, _, err := offloadsim.RunSampled(cfg)
		return res, err
	}

	// The grid flattens into an indexed point list executed on a worker
	// pool. Every point is a pure function of its Config, so concurrency
	// affects wall time only; results land in input order, keeping the
	// emitted rows byte-identical at any -workers.
	type outcome struct {
		res offloadsim.Result
		err error
	}
	baseFor := make(map[string]offloadsim.Config, len(wls))
	for _, wl := range wls {
		prof, ok := offloadsim.WorkloadByName(wl)
		if !ok {
			fail(fmt.Sprintf("unknown workload %q (have: %s)", wl,
				strings.Join(offloadsim.WorkloadNames(), ", ")))
		}
		baseCfg := offloadsim.DefaultConfig(prof)
		baseCfg.Policy = offloadsim.Baseline
		baseCfg.WarmupInstrs = *warmup
		baseCfg.MeasureInstrs = *measure
		baseCfg.Seed = *seed
		baseFor[wl] = baseCfg
	}
	baseOut := parallel.Map(*workers, len(wls), func(i int) outcome {
		res, err := runOne(baseFor[wls[i]])
		return outcome{res, err}
	})
	baseRes := make(map[string]offloadsim.Result, len(wls))
	for i, out := range baseOut {
		if out.err != nil {
			fail(out.err.Error())
		}
		baseRes[wls[i]] = out.res
	}

	type point struct {
		wl     string
		kind   offloadsim.PolicyKind
		n, lat int
		osi    int // index into oscoreKs/oscoreBlocks
	}
	var points []point
	for _, wl := range wls {
		for _, pol := range pols {
			kind, ok := offloadsim.ParsePolicy(pol)
			if !ok {
				fail(fmt.Sprintf("unknown policy %q", pol))
			}
			for _, n := range ns {
				for _, lat := range lats {
					for osi := range oscoreKs {
						points = append(points, point{wl, kind, n, lat, osi})
					}
				}
			}
		}
	}
	outs := parallel.Map(*workers, len(points), func(i int) outcome {
		p := points[i]
		cfg := baseFor[p.wl]
		cfg.Policy = p.kind
		cfg.Threshold = p.n
		cfg.Migration = offloadsim.CustomMigration(p.lat)
		cfg.OSCores = oscoreBlocks[p.osi]
		if *telemetryDir != "" {
			// Telemetry is attachment-only, so the traced rows are
			// byte-identical to an untraced sweep of the same grid; the
			// per-point CSV rides along for free. Points write distinct
			// files, so the fan-out needs no coordination.
			if *parEngine {
				cfg.Parallel = offloadsim.DefaultParallel()
				cfg.Parallel.Workers = 1
			}
			res, capt, err := offloadsim.RunTraced(cfg,
				offloadsim.TelemetryOptions{IntervalInstrs: *telemetryIval})
			if err == nil {
				err = writeSeries(*telemetryDir, p.wl, res.Policy, p.n, p.lat, capt.Series)
			}
			return outcome{res, err}
		}
		res, err := runOne(cfg)
		return outcome{res, err}
	})

	model := offloadsim.DefaultEnergyModel()
	rows := make([]Row, 0, len(points))
	for i, out := range outs {
		if out.err != nil {
			fail(out.err.Error())
		}
		p, res := points[i], out.res
		row := Row{
			Workload:   p.wl,
			Policy:     res.Policy,
			Threshold:  p.n,
			OneWay:     p.lat,
			Throughput: res.Throughput,
			Normalized: res.Throughput / baseRes[p.wl].Throughput,
			OffloadPct: 100 * res.OffloadRate,
			OSUtilPct:  100 * res.OSCoreUtilization,
			UserL2Hit:  res.UserL2HitRate,
			OSL2Hit:    res.OSL2HitRate,
			C2C:        res.C2CTransfers,
			QueueMean:  res.MeanQueueDelay,
		}
		if withOSCores {
			row.OSCores = oscoreKs[p.osi]
		}
		if *energy {
			if rep, err := offloadsim.Energy(res, model); err == nil {
				row.Joules = rep.Joules
				row.EDP = rep.EDP
			}
		}
		rows = append(rows, row)
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fail(err.Error())
		}
	case "csv":
		writeCSV(rows, *energy, withOSCores)
	default:
		fail("format must be csv or json")
	}
}

func writeCSV(rows []Row, energy, oscores bool) {
	head := "workload,policy,threshold,one_way_latency"
	if oscores {
		head += ",os_cores"
	}
	head += ",throughput,normalized,offload_pct,os_util_pct,user_l2_hit,os_l2_hit,c2c_transfers,queue_mean_cyc"
	if energy {
		head += ",joules,edp"
	}
	fmt.Println(head)
	for _, r := range rows {
		fmt.Printf("%s,%s,%d,%d", r.Workload, r.Policy, r.Threshold, r.OneWay)
		if oscores {
			fmt.Printf(",%d", r.OSCores)
		}
		fmt.Printf(",%.6f,%.4f,%.2f,%.2f,%.4f,%.4f,%d,%.1f",
			r.Throughput, r.Normalized, r.OffloadPct, r.OSUtilPct,
			r.UserL2Hit, r.OSL2Hit, r.C2C, r.QueueMean)
		if energy {
			fmt.Printf(",%.6g,%.6g", r.Joules, r.EDP)
		}
		fmt.Println()
	}
}

// writeSeries stores one sweep point's interval time-series under the
// canonical per-point file name.
func writeSeries(dir, workload, policy string, n, lat int, series []offloadsim.TraceIntervalPoint) error {
	f, err := os.Create(filepath.Join(dir, offloadsim.SeriesFileName(workload, policy, n, lat)))
	if err != nil {
		return err
	}
	if err := offloadsim.WriteSeriesCSV(f, series); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(msg string) {
	fmt.Fprintf(os.Stderr, "sweep: %s\n", msg)
	os.Exit(2)
}
