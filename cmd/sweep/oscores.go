package main

import (
	"fmt"

	"offloadsim"
)

// oscoreAxis validates the -os-cores comma list against the scalar
// cluster flags (-affinity/-asymmetry/-async/-depth-n/-rebalance apply
// to every K on the axis) and returns, per K, the Config block the grid
// points will run with. Validation happens up front as a unit because
// the flags constrain each other: affinity core indexes and asymmetry
// arity must fit every K on the axis, and a bad combination must fail
// before any simulation starts. K=1 with no scalar flags set collapses
// to the disabled zero block — the classic single-OS-core model.
func oscoreAxis(list, affinity, asymmetry string, async bool, depthN int, rebalance bool) ([]int, []offloadsim.OSCores, error) {
	ks, err := splitInts(list)
	if err != nil {
		return nil, nil, fmt.Errorf("bad -os-cores: %v", err)
	}
	if len(ks) == 0 {
		return nil, nil, fmt.Errorf("-os-cores needs at least one value")
	}
	if depthN < 0 {
		return nil, nil, fmt.Errorf("-depth-n must be >= 0 (got %d)", depthN)
	}
	seen := make(map[int]bool, len(ks))
	blocks := make([]offloadsim.OSCores, 0, len(ks))
	for _, k := range ks {
		if k < 1 {
			return nil, nil, fmt.Errorf("-os-cores values must be >= 1 (got %d)", k)
		}
		if k > offloadsim.MaxOSCores {
			return nil, nil, fmt.Errorf("-os-cores values must be <= %d (got %d)", offloadsim.MaxOSCores, k)
		}
		if seen[k] {
			return nil, nil, fmt.Errorf("duplicate -os-cores value %d", k)
		}
		seen[k] = true
		if err := offloadsim.ValidateAffinity(affinity, k); err != nil {
			return nil, nil, fmt.Errorf("-affinity (at k=%d): %v", k, err)
		}
		if err := offloadsim.ValidateAsymmetry(asymmetry, k); err != nil {
			return nil, nil, fmt.Errorf("-asymmetry (at k=%d): %v", k, err)
		}
		if k == 1 && affinity == "" && asymmetry == "" && !async && depthN == 0 && !rebalance {
			blocks = append(blocks, offloadsim.OSCores{})
			continue
		}
		blocks = append(blocks, offloadsim.OSCores{
			Enabled: true, K: k,
			Affinity: affinity, Asymmetry: asymmetry,
			Async: async, DepthN: depthN, Rebalance: rebalance,
		})
	}
	return ks, blocks, nil
}

// oscoreMode reports whether the axis departs from the classic
// single-OS-core model; it gates the extra os_cores export column so
// legacy sweeps keep byte-identical output.
func oscoreMode(blocks []offloadsim.OSCores) bool {
	for _, b := range blocks {
		if b.Enabled {
			return true
		}
	}
	return len(blocks) != 1
}
