// Package enginebench holds the shared bodies of the detailed-engine
// microbenchmarks: cache hit access, directory-backed miss service, core
// segment stepping and the end-to-end detailed run. Each hot-path package
// wraps these in a conventional Benchmark function, and the
// BENCH_engine.json writer at the repository root runs the same bodies
// through testing.Benchmark, so the numbers developers see in `go test
// -bench` and the numbers the bench trajectory records are one
// measurement.
package enginebench

import (
	"testing"

	"offloadsim/internal/cache"
	"offloadsim/internal/coherence"
	"offloadsim/internal/cpu"
	"offloadsim/internal/policy"
	"offloadsim/internal/rng"
	"offloadsim/internal/sim"
	"offloadsim/internal/telemetry"
	"offloadsim/internal/trace"
	"offloadsim/internal/workloads"
)

// CacheProbe measures one steady-state L2 hit access (presence lookup
// plus replacement touch) over a Table II 1 MB 16-way array with every
// way of the probed sets valid — the access the detailed loop performs
// for every L1-missing reference that L2 still holds.
func CacheProbe(b *testing.B) {
	cfg := coherence.DefaultL2Config()
	c := cache.MustNew(cfg, nil)
	// Fill 1024 consecutive line addresses (64 sets x 16 ways).
	const span = 1024
	for la := uint64(0); la < span; la++ {
		c.Allocate(la, cache.Shared)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		la := uint64(i) & (span - 1)
		if st := c.Probe(la); st == cache.Invalid {
			b.Fatalf("line %#x absent", la)
		}
	}
}

// DirectoryMiss measures the coherent miss path: every read misses the
// private L2 (working set twice its capacity) and runs the directory
// lookup, entry management and memory fill — the path the open-addressed
// directory table exists to make cheap.
func DirectoryMiss(b *testing.B) {
	sys := coherence.MustNew(coherence.DefaultConfig(), nil)
	l2cfg := coherence.DefaultL2Config()
	span := uint64(2 * l2cfg.SizeBytes / l2cfg.LineBytes) // 2x L2 capacity
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Read(0, uint64(i)%span)
	}
}

// DirectoryLookup measures a steady-state directory transaction with no
// allocation: two nodes alternately write the same small line set, so
// every access is an ownership transfer through an existing directory
// entry (lookup + sharer bookkeeping, no entry churn).
func DirectoryLookup(b *testing.B) {
	sys := coherence.MustNew(coherence.DefaultConfig(), nil)
	const span = 256
	for la := uint64(0); la < span; la++ {
		sys.Write(0, la)
		sys.Write(1, la)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The writing node alternates per pass over the line set, so
		// every write is an ownership transfer serviced through the
		// directory, never a private-cache hit.
		sys.Write((i>>8)&1, uint64(i)&(span-1))
	}
}

// stepFixture builds a one-core detailed system with a pre-generated
// segment pool for CoreStep and the allocation regression tests.
type stepFixture struct {
	core *cpu.Core
	segs []trace.Segment
}

func newStepFixture(nSegs int) *stepFixture {
	root := rng.New(7)
	sys := coherence.MustNew(coherence.DefaultConfig(), root.Fork())
	c := cpu.MustNew(0, 0, cpu.DefaultConfig(), sys)
	space := &trace.AddressSpace{}
	kernel := trace.NewKernelLayout(space, root.Fork())
	gen := trace.MustNewGenerator(workloads.Apache(), 0, kernel, space, root.Fork())
	segs := make([]trace.Segment, nSegs)
	for i := range segs {
		segs[i] = gen.Next()
	}
	return &stepFixture{core: c, segs: segs}
}

// warm drives every pooled segment through the core once so cache arrays
// and the directory reach steady state before measurement.
func (f *stepFixture) warm() {
	for i := range f.segs {
		f.core.RunSegment(&f.segs[i])
	}
}

// CoreStep measures the detailed per-segment step — the inner loop of
// the whole simulator — over a pooled segment stream in steady state. It
// reports instructions per op so ns/op divided by it gives the real
// per-instruction cost, and allocations, which must be zero.
func CoreStep(b *testing.B) {
	f := newStepFixture(256)
	f.warm()
	var instrs uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg := &f.segs[i&255]
		f.core.RunSegment(seg)
		instrs += uint64(seg.Instrs)
	}
	b.ReportMetric(float64(instrs)/float64(b.N), "instrs/op")
}

// CoreStepAllocs returns the steady-state allocations of one detailed
// segment step, for the regression test that pins it at zero.
func CoreStepAllocs(runs int) float64 {
	f := newStepFixture(256)
	f.warm()
	i := 0
	return testing.AllocsPerRun(runs, func() {
		f.core.RunSegment(&f.segs[i&255])
		i++
	})
}

// detailedConfig is the end-to-end measurement configuration: one apache
// core under the hardware predictor at N=100, 1M detailed instructions,
// no warmup (construction and cold caches are part of what a sweep
// pays).
func detailedConfig() sim.Config {
	cfg := sim.DefaultConfig(workloads.Apache())
	cfg.Policy = policy.HardwarePredictor
	cfg.Threshold = 100
	cfg.WarmupInstrs = 0
	cfg.MeasureInstrs = 1_000_000
	return cfg
}

// DetailedRun measures end-to-end detailed-mode throughput in simulated
// instructions per wall second — the number that bounds every sweep.
func DetailedRun(b *testing.B) {
	var instrs uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.MustNew(detailedConfig()).Run()
		instrs += res.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim_instrs/s")
}

// TracedRun is DetailedRun with the telemetry layer attached — event
// trace plus 50k-instruction interval series — measuring the enabled
// cost of instrumentation. The disabled cost is gated separately at the
// repository root (`make telemetry-overhead`): DetailedRun itself
// exercises the nil-tracer fast path.
func TracedRun(b *testing.B) {
	var instrs uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sim.MustNew(detailedConfig())
		if _, err := s.AttachTelemetry(telemetry.Options{Events: true, IntervalInstrs: 50_000}); err != nil {
			b.Fatal(err)
		}
		res := s.Run()
		instrs += res.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim_instrs/s")
}

// parallelConfig is DetailedRun's configuration at the parallel
// engine's target scale: eight apache cores under the hardware
// predictor, run through the quantum-synchronized engine.
func parallelConfig(workers int) sim.Config {
	cfg := detailedConfig()
	cfg.UserCores = 8
	cfg.MeasureInstrs = 250_000 // per core; 2M total, matching DetailedRun's budget x2
	cfg.Parallel = sim.DefaultParallel()
	cfg.Parallel.Workers = workers
	return cfg
}

// ParallelRun measures end-to-end quantum-parallel throughput in
// simulated instructions per wall second at the default worker count
// (GOMAXPROCS). Compare against SerialMulticoreRun for the speedup.
func ParallelRun(b *testing.B) {
	var instrs uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.MustNew(parallelConfig(0)).Run()
		instrs += res.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim_instrs/s")
}

// ParallelRunWorkers returns a benchmark body running the parallel
// engine at a fixed worker count, for the per-worker scaling curve
// `make bench-parallel` records.
func ParallelRunWorkers(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		var instrs uint64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := sim.MustNew(parallelConfig(workers)).Run()
			instrs += res.Instrs
		}
		b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim_instrs/s")
	}
}

// SerialMulticoreRun is ParallelRun's reference: the identical
// eight-core configuration on the serial detailed engine.
func SerialMulticoreRun(b *testing.B) {
	var instrs uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := parallelConfig(0)
		cfg.Parallel = sim.Parallel{}
		res := sim.MustNew(cfg).Run()
		instrs += res.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim_instrs/s")
}
