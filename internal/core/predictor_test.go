package core

import (
	"testing"
	"testing/quick"

	"offloadsim/internal/rng"
)

func predictors(t *testing.T) map[string]Predictor {
	t.Helper()
	return map[string]Predictor{
		"cam": NewCAMPredictor(DefaultCAMEntries),
		"dm":  NewDirectMappedPredictor(DefaultDirectMappedEntries),
	}
}

func TestWithinFivePercent(t *testing.T) {
	cases := []struct {
		pred, actual int
		want         bool
	}{
		{100, 100, true},
		{105, 100, true},
		{95, 100, true},
		{106, 100, false},
		{94, 100, false},
		{0, 0, true},
		{1, 0, false},
		{1000, 1050, true},
		{1000, 1053, true}, // |diff|=53, 53*20=1060 > 1053? 1060>1053 -> false... see below
	}
	// Recompute the last case precisely: 53*20 = 1060 > 1053 so false.
	cases[len(cases)-1].want = false
	for _, c := range cases {
		if got := withinFivePercent(c.pred, c.actual); got != c.want {
			t.Fatalf("withinFivePercent(%d,%d) = %v, want %v", c.pred, c.actual, got, c.want)
		}
	}
}

func TestLearnsStableRunLength(t *testing.T) {
	for name, p := range predictors(t) {
		const astate = 0xDEADBEEF
		// Train twice so confidence rises above zero.
		p.Update(astate, 500)
		p.Update(astate, 500)
		got := p.Predict(astate)
		if got.Length != 500 || got.Source != LocalPrediction {
			t.Fatalf("%s: predicted %+v, want local 500", name, got)
		}
	}
}

func TestGlobalFallbackOnUnknownAState(t *testing.T) {
	for name, p := range predictors(t) {
		p.Update(1, 100)
		p.Update(2, 200)
		p.Update(3, 300)
		got := p.Predict(0xFFFF_0000_1111)
		if got.Source != GlobalPrediction {
			t.Fatalf("%s: unknown AState used %v", name, got.Source)
		}
		if got.Length != 200 {
			t.Fatalf("%s: global prediction %d, want mean(100,200,300)=200", name, got.Length)
		}
	}
}

func TestGlobalWindowSlides(t *testing.T) {
	p := NewCAMPredictor(8)
	for _, l := range []int{10, 20, 30, 40} { // window keeps 20,30,40
		p.Update(uint64(l), l)
	}
	got := p.Predict(0x9999)
	if got.Length != 30 {
		t.Fatalf("global = %d, want mean(20,30,40)=30", got.Length)
	}
}

func TestConfidenceDropsToGlobalOnNoisyEntry(t *testing.T) {
	p := NewCAMPredictor(8)
	const astate = 42
	// Allocation sets conf=2; two wildly different lengths drop it to 0.
	p.Update(astate, 100)
	p.Update(astate, 10000)
	p.Update(astate, 100)
	// Entry now has conf 0 -> prediction should be global, not local.
	p.Update(1, 70)
	p.Update(2, 70)
	p.Update(3, 70)
	got := p.Predict(astate)
	if got.Source != GlobalPrediction {
		t.Fatalf("low-confidence entry should fall back to global, got %v", got.Source)
	}
	if got.Length != 70 {
		t.Fatalf("global length = %d, want 70", got.Length)
	}
}

func TestConfidenceRecovers(t *testing.T) {
	p := NewCAMPredictor(8)
	const astate = 42
	p.Update(astate, 100)
	p.Update(astate, 10000) // conf 2 -> 1
	p.Update(astate, 100)   // conf 1 -> 0
	p.Update(astate, 100)   // within 5% of stored 100 -> conf 1
	got := p.Predict(astate)
	if got.Source != LocalPrediction || got.Length != 100 {
		t.Fatalf("recovered entry should predict locally, got %+v", got)
	}
}

func TestCAMLRUReplacement(t *testing.T) {
	p := NewCAMPredictor(2)
	p.Update(1, 100)
	p.Update(1, 100) // conf up
	p.Update(2, 200)
	p.Update(2, 200)
	p.Predict(1) // touch 1; 2 becomes LRU
	p.Update(3, 300)
	p.Update(3, 300) // should have evicted astate 2
	if got := p.Predict(1); got.Source != LocalPrediction || got.Length != 100 {
		t.Fatalf("astate 1 evicted wrongly: %+v", got)
	}
	if got := p.Predict(3); got.Source != LocalPrediction || got.Length != 300 {
		t.Fatalf("astate 3 missing: %+v", got)
	}
	if got := p.Predict(2); got.Source != GlobalPrediction {
		t.Fatalf("astate 2 should have been evicted, got %+v", got)
	}
}

func TestDirectMappedAliasing(t *testing.T) {
	p := NewDirectMappedPredictor(10)
	// 5 and 15 alias (both mod 10 == 5): training one perturbs the other,
	// which is the documented cost of the tag-less organization.
	p.Update(5, 100)
	p.Update(5, 100)
	p.Update(15, 9000)
	p.Update(15, 9000)
	got := p.Predict(5)
	if got.Source == LocalPrediction && got.Length == 100 {
		t.Fatal("tag-less table cannot distinguish aliasing AStates")
	}
}

func TestStorageBudgetsMatchPaper(t *testing.T) {
	cam := NewCAMPredictor(DefaultCAMEntries)
	bytes := cam.StorageBits() / 8
	// §III-A: "requires only 2 KB storage space".
	if bytes < 1800 || bytes > 2300 {
		t.Fatalf("CAM storage = %d bytes, want ~2KB", bytes)
	}
	dm := NewDirectMappedPredictor(DefaultDirectMappedEntries)
	bytes = dm.StorageBits() / 8
	// §III-A: "a storage requirement of 3.3 KB".
	if bytes < 3000 || bytes > 3700 {
		t.Fatalf("direct-mapped storage = %d bytes, want ~3.3KB", bytes)
	}
}

func TestAccuracyAccounting(t *testing.T) {
	p := NewCAMPredictor(8)
	// Build a confident entry at 1000.
	p.Update(7, 1000)
	p.Update(7, 1000)
	p.Predict(7)
	p.Update(7, 1000) // exact
	p.Predict(7)
	p.Update(7, 1020) // within 5%
	p.Predict(7)
	p.Update(7, 5000) // miss, undershoot
	acc := p.Accuracy()
	if acc.Predictions() != 3 {
		t.Fatalf("predictions = %d, want 3", acc.Predictions())
	}
	if acc.ExactRate() != 1.0/3 {
		t.Fatalf("exact rate = %v", acc.ExactRate())
	}
	if acc.Within5Rate() != 1.0/3 {
		t.Fatalf("within5 rate = %v", acc.Within5Rate())
	}
	if acc.MissRate() != 1.0/3 {
		t.Fatalf("miss rate = %v", acc.MissRate())
	}
	if acc.UnderShootShare() != 1.0 {
		t.Fatalf("undershoot share = %v, want 1", acc.UnderShootShare())
	}
}

func TestEngineDecision(t *testing.T) {
	p := NewCAMPredictor(8)
	p.Update(1, 5000)
	p.Update(1, 5000)
	e := NewEngine(p, 1000)
	d := e.Decide(1)
	if !d.Offload {
		t.Fatalf("predicted 5000 > N=1000 should off-load: %+v", d)
	}
	e.SetThreshold(10000)
	d = e.Decide(1)
	if d.Offload {
		t.Fatalf("predicted 5000 < N=10000 should stay: %+v", d)
	}
}

func TestEngineBinaryAccuracy(t *testing.T) {
	p := NewCAMPredictor(8)
	e := NewEngine(p, 500)
	// Train a stable long syscall; decisions should converge to correct.
	const astate = 3
	for i := 0; i < 20; i++ {
		d := e.Decide(astate)
		e.Train(astate, d, 2000)
	}
	if acc := e.BinaryAccuracy(); acc < 0.9 {
		t.Fatalf("binary accuracy on a stable stream = %v, want >= 0.9", acc)
	}
	if e.BinaryDecisions() != 20 {
		t.Fatalf("decisions = %d", e.BinaryDecisions())
	}
	e.ResetBinaryAccuracy()
	if e.BinaryDecisions() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestPredictorAccuracyOnSyntheticMix(t *testing.T) {
	// A mixture of mostly-deterministic AStates should produce the high
	// exact+within5 accuracy the paper reports (73.6% + 24.8%).
	src := rng.New(99)
	p := NewCAMPredictor(DefaultCAMEntries)
	lengths := map[uint64]int{}
	for i := 0; i < 50; i++ {
		lengths[uint64(i+1)] = 50 + 400*i
	}
	for i := 0; i < 30000; i++ {
		a := uint64(src.Intn(50) + 1)
		nominal := lengths[a]
		actual := nominal
		if src.Bool(0.2) { // 20% jitter within ±5%
			actual = int(float64(nominal) * (0.95 + 0.1*src.Float64()))
		}
		p.Predict(a)
		p.Update(a, actual)
	}
	acc := p.Accuracy()
	good := acc.ExactRate() + acc.Within5Rate()
	if good < 0.90 {
		t.Fatalf("exact+within5 = %v, want >= 0.90 on a mostly-deterministic mix", good)
	}
}

func TestNewPredictorPanicsOnBadSize(t *testing.T) {
	for _, f := range []func(){
		func() { NewCAMPredictor(0) },
		func() { NewDirectMappedPredictor(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("zero-entry predictor accepted")
				}
			}()
			f()
		}()
	}
}

// Property: after two consecutive identical updates, both organizations
// predict that value locally (absent aliasing in the CAM, which cannot
// alias).
func TestQuickCAMLearnsAnyAState(t *testing.T) {
	f := func(astate uint64, lenRaw uint16) bool {
		length := int(lenRaw) + 1
		p := NewCAMPredictor(16)
		p.Update(astate, length)
		p.Update(astate, length)
		got := p.Predict(astate)
		return got.Source == LocalPrediction && got.Length == length
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: predictions never panic and lengths are non-negative for
// arbitrary update streams.
func TestQuickPredictNonNegative(t *testing.T) {
	f := func(ops []uint32) bool {
		cam := NewCAMPredictor(4)
		dm := NewDirectMappedPredictor(7)
		for _, op := range ops {
			a := uint64(op % 64)
			l := int(op>>8) % 10000
			for _, p := range []Predictor{cam, dm} {
				if got := p.Predict(a); got.Length < 0 {
					return false
				}
				p.Update(a, l)
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
