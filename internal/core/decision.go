package core

import "offloadsim/internal/stats"

// Decision is the binary off-load verdict derived from a run-length
// prediction (§III: "a system call will be off-loaded if it is expected to
// last longer than a specified threshold, N cycles").
type Decision struct {
	Offload   bool
	Predicted int
	Source    PredictionSource
}

// Engine couples a Predictor with a threshold to produce single-cycle
// off-load decisions, and keeps the books needed to reproduce Figure 3
// (binary decision accuracy per threshold).
type Engine struct {
	pred      Predictor
	threshold int

	binTotal   stats.Counter
	binCorrect stats.Counter
}

// NewEngine wraps pred with an initial threshold n.
func NewEngine(pred Predictor, n int) *Engine {
	return &Engine{pred: pred, threshold: n}
}

// Predictor returns the wrapped predictor.
func (e *Engine) Predictor() Predictor { return e.pred }

// Threshold returns the current N.
func (e *Engine) Threshold() int { return e.threshold }

// SetThreshold updates N (the dynamic tuner calls this at epoch
// boundaries).
func (e *Engine) SetThreshold(n int) { e.threshold = n }

// Decide produces the off-load verdict for an OS entry with register hash
// astate. In hardware this is the predictor lookup plus one comparison —
// the single-cycle path the paper contrasts with tens-to-hundreds of
// cycles of software instrumentation.
func (e *Engine) Decide(astate uint64) Decision {
	p := e.pred.Predict(astate)
	return Decision{
		Offload:   p.Length > e.threshold,
		Predicted: p.Length,
		Source:    p.Source,
	}
}

// Train feeds the observed run length back and scores the binary decision
// the engine made for this invocation against the decision an oracle with
// the same threshold would have made.
func (e *Engine) Train(astate uint64, d Decision, actual int) {
	e.pred.Update(astate, actual)
	e.binTotal.Inc()
	if d.Offload == (actual > e.threshold) {
		e.binCorrect.Inc()
	}
}

// BinaryAccuracy returns the fraction of invocations whose off-load/stay
// decision matched the oracle (Figure 3's metric).
func (e *Engine) BinaryAccuracy() float64 {
	return stats.Ratio(e.binCorrect.Value(), e.binTotal.Value())
}

// BinaryDecisions returns the number of scored decisions.
func (e *Engine) BinaryDecisions() uint64 { return e.binTotal.Value() }

// ResetBinaryAccuracy clears the Figure 3 accounting (used when sweeping
// thresholds over one trace).
func (e *Engine) ResetBinaryAccuracy() {
	e.binTotal.Reset()
	e.binCorrect.Reset()
}
