// Package core implements the paper's primary contribution: a hardware
// predictor of OS invocation run-length and the policy machinery built on
// it (§III).
//
// On every transition to privileged mode the hardware XOR-hashes PSTATE,
// g0, g1, i0 and i1 into a 64-bit "AState" value and looks it up in a
// small table that records the run length observed the last time that
// AState was seen. A 2-bit saturating confidence counter per entry arbitrates
// between this "local" prediction and a "global" prediction (the average of
// the last three observed invocation lengths, regardless of AState). The
// off-load decision distills the predicted length into a binary choice:
// off-load iff the prediction exceeds a threshold N, where N itself is
// tuned at run time by an epoch-based sampler (tuner.go).
//
// Two table organizations from §III-A are provided:
//
//   - CAMPredictor: 200-entry fully-associative CAM storing the full
//     64-bit AState per entry (~2 KB), the configuration the paper reports
//     as within noise of infinite history.
//   - DirectMappedPredictor: 1500-entry tag-less direct-mapped RAM
//     (~3.3 KB) indexed by the low bits of AState; aliasing is possible
//     and accepted.
package core

import (
	"fmt"

	"offloadsim/internal/stats"
)

// PredictionSource says which sub-predictor produced a prediction.
type PredictionSource int

const (
	// LocalPrediction came from the AState-indexed table entry.
	LocalPrediction PredictionSource = iota
	// GlobalPrediction came from the last-3-invocations average, used when
	// the table has no confident entry for this AState.
	GlobalPrediction
)

// String implements fmt.Stringer.
func (s PredictionSource) String() string {
	if s == LocalPrediction {
		return "local"
	}
	return "global"
}

// Prediction is a predicted OS invocation run length in instructions.
type Prediction struct {
	Length int
	Source PredictionSource
}

// Predictor is the run-length prediction interface shared by the two table
// organizations. Implementations are single-core structures: each simulated
// user core owns one, exactly as each real core would own a copy of the
// hardware.
type Predictor interface {
	// Predict returns the predicted run length for an OS invocation whose
	// captured register hash is astate.
	Predict(astate uint64) Prediction
	// Update trains the predictor with the observed run length after the
	// invocation retires.
	Update(astate uint64, actual int)
	// Accuracy exposes the running accuracy accounting.
	Accuracy() *Accuracy
	// StorageBits returns the hardware storage cost of the organization,
	// in bits, for reporting against the paper's ~2 KB claim.
	StorageBits() int
}

// confMax is the saturating limit of the 2-bit confidence counter.
const confMax = 3

// withinFivePercent reports whether predicted is within ±5% of actual,
// the paper's accuracy band and the confidence update rule.
func withinFivePercent(predicted, actual int) bool {
	if actual == 0 {
		return predicted == 0
	}
	diff := predicted - actual
	if diff < 0 {
		diff = -diff
	}
	// diff/actual <= 0.05 without floating point, as hardware would.
	return diff*20 <= actual
}

// global is the last-3-invocations average fallback shared by both
// organizations.
type global struct {
	window [3]int
	n      int
	next   int
}

func (g *global) observe(length int) {
	g.window[g.next] = length
	g.next = (g.next + 1) % len(g.window)
	if g.n < len(g.window) {
		g.n++
	}
}

func (g *global) predict() int {
	if g.n == 0 {
		return 0
	}
	sum := 0
	for i := 0; i < g.n; i++ {
		sum += g.window[i]
	}
	return sum / g.n
}

// Accuracy tracks the prediction-quality numbers reported in §III-A
// (73.6% exact, +24.8% within ±5%) and the per-threshold binary decision
// accuracy of Figure 3.
type Accuracy struct {
	predictions stats.Counter
	exact       stats.Counter
	within5     stats.Counter
	underShoot  stats.Counter // mispredictions that underestimated
	overShoot   stats.Counter // mispredictions that overestimated
}

// Record scores one (predicted, actual) pair. It is exported so policy
// wrappers can keep population-filtered accuracy books (§IV omits the
// SPARC register-window invocations from reported statistics where they
// would skew results; the sim reports syscall-only accuracy through this
// hook).
func (a *Accuracy) Record(predicted, actual int) { a.record(predicted, actual) }

func (a *Accuracy) record(predicted, actual int) {
	a.predictions.Inc()
	switch {
	case predicted == actual:
		a.exact.Inc()
	case withinFivePercent(predicted, actual):
		a.within5.Inc()
	case predicted < actual:
		a.underShoot.Inc()
	default:
		a.overShoot.Inc()
	}
}

// Predictions returns the total number of scored predictions.
func (a *Accuracy) Predictions() uint64 { return a.predictions.Value() }

// ExactRate returns the fraction of predictions that matched exactly.
func (a *Accuracy) ExactRate() float64 {
	return stats.Ratio(a.exact.Value(), a.predictions.Value())
}

// Within5Rate returns the fraction within ±5% but not exact.
func (a *Accuracy) Within5Rate() float64 {
	return stats.Ratio(a.within5.Value(), a.predictions.Value())
}

// MissRate returns the fraction outside ±5%.
func (a *Accuracy) MissRate() float64 {
	return stats.Ratio(a.underShoot.Value()+a.overShoot.Value(), a.predictions.Value())
}

// UnderShootShare returns, of the outside-±5% mispredictions, the share
// that underestimated. The paper observes interrupt extension makes
// underestimation the dominant failure mode.
func (a *Accuracy) UnderShootShare() float64 {
	return stats.Ratio(a.underShoot.Value(), a.underShoot.Value()+a.overShoot.Value())
}

// Reset clears the accounting.
func (a *Accuracy) Reset() { *a = Accuracy{} }

// camEntry is one fully-associative predictor entry.
type camEntry struct {
	astate  uint64
	length  int
	conf    uint8
	lastUse uint64
	valid   bool
}

// CAMPredictor is the 200-entry fully-associative organization (§III-A):
// each entry stores the full 64-bit AState tag, the last observed run
// length and a 2-bit confidence counter; replacement is LRU.
type CAMPredictor struct {
	entries []camEntry
	index   map[uint64]int // astate -> entry slot, the CAM match function
	gen     uint64
	global  global
	acc     Accuracy

	// pending remembers the last prediction per astate so Update can
	// score it; hardware keeps this in the invocation's context.
	pending map[uint64]int
}

// DefaultCAMEntries is the paper's table size, chosen as "close to optimal
// (infinite history) performance" at ~2 KB of storage.
const DefaultCAMEntries = 200

// NewCAMPredictor builds a fully-associative predictor with the given
// entry count (panics if entries < 1).
func NewCAMPredictor(entries int) *CAMPredictor {
	if entries < 1 {
		panic(fmt.Sprintf("core: CAM predictor needs >= 1 entry, got %d", entries))
	}
	return &CAMPredictor{
		entries: make([]camEntry, entries),
		index:   make(map[uint64]int, entries),
		pending: make(map[uint64]int),
	}
}

// Predict implements Predictor.
func (p *CAMPredictor) Predict(astate uint64) Prediction {
	var pred Prediction
	if slot, ok := p.index[astate]; ok {
		e := &p.entries[slot]
		p.gen++
		e.lastUse = p.gen
		if e.conf > 0 {
			pred = Prediction{Length: e.length, Source: LocalPrediction}
		} else {
			// Low confidence: the global average of the last three
			// invocations is the better estimate (§III-A).
			pred = Prediction{Length: p.global.predict(), Source: GlobalPrediction}
		}
	} else {
		pred = Prediction{Length: p.global.predict(), Source: GlobalPrediction}
	}
	p.pending[astate] = pred.Length
	return pred
}

// Update implements Predictor.
func (p *CAMPredictor) Update(astate uint64, actual int) {
	if predicted, ok := p.pending[astate]; ok {
		p.acc.record(predicted, actual)
		delete(p.pending, astate)
	}
	p.global.observe(actual)

	if slot, ok := p.index[astate]; ok {
		e := &p.entries[slot]
		if withinFivePercent(e.length, actual) {
			if e.conf < confMax {
				e.conf++
			}
		} else if e.conf > 0 {
			e.conf--
		}
		e.length = actual
		p.gen++
		e.lastUse = p.gen
		return
	}
	// Allocate: free slot if any, else LRU victim.
	victim := -1
	for i := range p.entries {
		if !p.entries[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(p.entries); i++ {
			if p.entries[i].lastUse < p.entries[victim].lastUse {
				victim = i
			}
		}
		delete(p.index, p.entries[victim].astate)
	}
	p.gen++
	// New entries start weakly confident (2 of 3): a single anomalous
	// invocation (interrupt extension) must not dump a syscall onto the
	// global fallback, whose trap-dominated average would misclassify
	// long calls as short.
	p.entries[victim] = camEntry{astate: astate, length: actual, conf: 2, lastUse: p.gen, valid: true}
	p.index[astate] = victim
}

// Accuracy implements Predictor.
func (p *CAMPredictor) Accuracy() *Accuracy { return &p.acc }

// StorageBits implements Predictor: 64-bit AState tag + 16-bit length +
// 2-bit confidence per entry. 200 entries ≈ 2 KB, matching §III-A.
func (p *CAMPredictor) StorageBits() int {
	return len(p.entries) * (64 + 16 + 2)
}

// Entries returns the configured entry count.
func (p *CAMPredictor) Entries() int { return len(p.entries) }

// Occupancy returns the number of valid entries (diagnostics).
func (p *CAMPredictor) Occupancy() int { return len(p.index) }

// Peek returns the stored entry for astate without touching replacement
// state (diagnostics).
func (p *CAMPredictor) Peek(astate uint64) (length int, conf uint8, ok bool) {
	slot, ok := p.index[astate]
	if !ok {
		return 0, 0, false
	}
	e := &p.entries[slot]
	return e.length, e.conf, true
}

// dmEntry is one direct-mapped, tag-less entry.
type dmEntry struct {
	length int
	conf   uint8
	valid  bool
}

// DirectMappedPredictor is the 1500-entry tag-less RAM organization from
// §III-A: the least-significant bits of AState select the entry and no tag
// is stored, so unrelated AStates can alias; the paper reports accuracy
// similar to the CAM at ~3.3 KB.
type DirectMappedPredictor struct {
	entries []dmEntry
	global  global
	acc     Accuracy
	pending map[uint64]int
}

// DefaultDirectMappedEntries is the paper's direct-mapped table size.
const DefaultDirectMappedEntries = 1500

// NewDirectMappedPredictor builds the tag-less organization (panics if
// entries < 1).
func NewDirectMappedPredictor(entries int) *DirectMappedPredictor {
	if entries < 1 {
		panic(fmt.Sprintf("core: direct-mapped predictor needs >= 1 entry, got %d", entries))
	}
	return &DirectMappedPredictor{
		entries: make([]dmEntry, entries),
		pending: make(map[uint64]int),
	}
}

func (p *DirectMappedPredictor) slot(astate uint64) *dmEntry {
	return &p.entries[astate%uint64(len(p.entries))]
}

// Predict implements Predictor.
func (p *DirectMappedPredictor) Predict(astate uint64) Prediction {
	e := p.slot(astate)
	var pred Prediction
	if e.valid && e.conf > 0 {
		pred = Prediction{Length: e.length, Source: LocalPrediction}
	} else {
		pred = Prediction{Length: p.global.predict(), Source: GlobalPrediction}
	}
	p.pending[astate] = pred.Length
	return pred
}

// Update implements Predictor.
func (p *DirectMappedPredictor) Update(astate uint64, actual int) {
	if predicted, ok := p.pending[astate]; ok {
		p.acc.record(predicted, actual)
		delete(p.pending, astate)
	}
	p.global.observe(actual)
	e := p.slot(astate)
	if e.valid {
		if withinFivePercent(e.length, actual) {
			if e.conf < confMax {
				e.conf++
			}
		} else if e.conf > 0 {
			e.conf--
		}
		e.length = actual
		return
	}
	// Same weak-confidence allocation as the CAM organization.
	*e = dmEntry{length: actual, conf: 2, valid: true}
}

// Accuracy implements Predictor.
func (p *DirectMappedPredictor) Accuracy() *Accuracy { return &p.acc }

// StorageBits implements Predictor: tag-less, 16-bit length + 2-bit
// confidence per entry; 1500 entries ≈ 3.3 KB.
func (p *DirectMappedPredictor) StorageBits() int {
	return len(p.entries) * (16 + 2)
}

// Entries returns the configured entry count.
func (p *DirectMappedPredictor) Entries() int { return len(p.entries) }

var (
	_ Predictor = (*CAMPredictor)(nil)
	_ Predictor = (*DirectMappedPredictor)(nil)
)
