package core

import (
	"fmt"
	"sort"
)

// TunerConfig parameterizes the dynamic estimation of the off-load
// threshold N (§III-B). The defaults reproduce the paper's numbers; the
// simulator scales the epoch lengths down proportionally so experiments
// finish quickly without changing the algorithm.
type TunerConfig struct {
	// Ladder is the ascending set of candidate thresholds. The paper
	// uses "very coarse-grained values of N"; refining the ladder buys
	// performance at the cost of sampling overhead.
	Ladder []int
	// SampleEpoch is the instruction count of one sampling epoch
	// (paper: 25 M instructions).
	SampleEpoch uint64
	// BaseRun is the uninterrupted run length after a threshold change
	// (paper: 100 M instructions).
	BaseRun uint64
	// MaxRun caps the exponential run-length growth applied while the
	// threshold keeps being confirmed optimal (paper doubles 100 M to
	// 200 M; we keep doubling up to this cap).
	MaxRun uint64
	// ImprovementMargin is the relative feedback gain a neighbour must
	// show to displace the current threshold (paper: 1%).
	ImprovementMargin float64
	// PrivFracThreshold splits OS-intensive from compute-bound startup
	// (paper: 10% of instructions in privileged mode).
	PrivFracThreshold float64
	// InitialHighPriv / InitialLowPriv are the startup thresholds for
	// the two regimes (paper: N=1,000 and N=10,000).
	InitialHighPriv int
	InitialLowPriv  int
}

// DefaultTunerConfig returns the paper's §III-B parameters.
func DefaultTunerConfig() TunerConfig {
	return TunerConfig{
		Ladder:            []int{0, 50, 100, 500, 1000, 5000, 10000, 100000},
		SampleEpoch:       25_000_000,
		BaseRun:           100_000_000,
		MaxRun:            800_000_000,
		ImprovementMargin: 0.01,
		PrivFracThreshold: 0.10,
		InitialHighPriv:   1000,
		InitialLowPriv:    10000,
	}
}

// Validate checks the configuration.
func (c TunerConfig) Validate() error {
	if len(c.Ladder) == 0 {
		return fmt.Errorf("core: tuner ladder is empty")
	}
	if !sort.IntsAreSorted(c.Ladder) {
		return fmt.Errorf("core: tuner ladder must be ascending: %v", c.Ladder)
	}
	for i := 1; i < len(c.Ladder); i++ {
		if c.Ladder[i] == c.Ladder[i-1] {
			return fmt.Errorf("core: tuner ladder has duplicate %d", c.Ladder[i])
		}
	}
	if c.SampleEpoch == 0 || c.BaseRun == 0 {
		return fmt.Errorf("core: tuner epochs must be positive")
	}
	if c.MaxRun < c.BaseRun {
		return fmt.Errorf("core: MaxRun %d < BaseRun %d", c.MaxRun, c.BaseRun)
	}
	if c.ImprovementMargin < 0 || c.ImprovementMargin > 1 {
		return fmt.Errorf("core: improvement margin %v out of [0,1]", c.ImprovementMargin)
	}
	return nil
}

// tunerPhase is the sampler's state.
type tunerPhase int

const (
	phaseSampleCurrent tunerPhase = iota
	phaseSampleLow
	phaseSampleHigh
	phaseRun
)

// Sample is one (threshold, feedback) observation kept for introspection
// and the examples/tuner demo. HitRate carries whatever feedback metric
// the host feeds ReportEpoch (§III-B proposes L2 hit rate; the simulator
// uses epoch IPC — see DESIGN.md §5).
type Sample struct {
	Threshold    int
	HitRate      float64
	Instructions uint64
}

// Tuner is the epoch-based threshold estimator. The host simulation loop
// drives it: run for EpochLength() instructions using Threshold(), measure
// the feedback metric over that epoch, call ReportEpoch, repeat. Higher
// feedback is better; the decision rule is metric-agnostic.
type Tuner struct {
	cfg   TunerConfig
	idx   int // index into Ladder of the adopted threshold
	phase tunerPhase

	curRate, lowRate, highRate float64
	hasLow, hasHigh            bool
	runLen                     uint64

	history []Sample
	changes int
}

// NewTuner constructs a tuner; privFrac is the application's fraction of
// instructions executed in privileged mode, which selects the starting
// threshold per §III-B.
func NewTuner(cfg TunerConfig, privFrac float64) (*Tuner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start := cfg.InitialLowPriv
	if privFrac > cfg.PrivFracThreshold {
		start = cfg.InitialHighPriv
	}
	t := &Tuner{cfg: cfg, runLen: cfg.BaseRun}
	t.idx = t.nearestIndex(start)
	return t, nil
}

// MustNewTuner panics on config error.
func MustNewTuner(cfg TunerConfig, privFrac float64) *Tuner {
	t, err := NewTuner(cfg, privFrac)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Tuner) nearestIndex(n int) int {
	best, bestDist := 0, -1
	for i, v := range t.cfg.Ladder {
		d := v - n
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// Threshold returns the N in effect for the *current* epoch: the adopted
// threshold during run epochs, or the neighbour being sampled.
func (t *Tuner) Threshold() int {
	switch t.phase {
	case phaseSampleLow:
		return t.cfg.Ladder[t.idx-1]
	case phaseSampleHigh:
		return t.cfg.Ladder[t.idx+1]
	default:
		return t.cfg.Ladder[t.idx]
	}
}

// AdoptedThreshold returns the threshold the tuner currently believes is
// best, independent of any in-flight sampling.
func (t *Tuner) AdoptedThreshold() int { return t.cfg.Ladder[t.idx] }

// EpochLength returns how many instructions the current epoch should run
// before ReportEpoch is called.
func (t *Tuner) EpochLength() uint64 {
	if t.phase == phaseRun {
		return t.runLen
	}
	return t.cfg.SampleEpoch
}

// Changes returns how many times the adopted threshold has changed.
func (t *Tuner) Changes() int { return t.changes }

// History returns the recorded samples (aliases internal storage; callers
// must not modify).
func (t *Tuner) History() []Sample { return t.history }

// ReportEpoch feeds the epoch's feedback metric back and advances the
// sampling state machine.
func (t *Tuner) ReportEpoch(l2HitRate float64) {
	t.history = append(t.history, Sample{
		Threshold:    t.Threshold(),
		HitRate:      l2HitRate,
		Instructions: t.EpochLength(),
	})
	switch t.phase {
	case phaseSampleCurrent:
		t.curRate = l2HitRate
		t.hasLow, t.hasHigh = false, false
		if t.idx > 0 {
			t.phase = phaseSampleLow
			return
		}
		if t.idx < len(t.cfg.Ladder)-1 {
			t.phase = phaseSampleHigh
			return
		}
		// Single-rung ladder: nothing to compare against.
		t.decide()

	case phaseSampleLow:
		t.lowRate = l2HitRate
		t.hasLow = true
		if t.idx < len(t.cfg.Ladder)-1 {
			t.phase = phaseSampleHigh
			return
		}
		t.decide()

	case phaseSampleHigh:
		t.highRate = l2HitRate
		t.hasHigh = true
		t.decide()

	case phaseRun:
		// The long run finished; re-sample around the adopted threshold.
		t.phase = phaseSampleCurrent
	}
}

// decide compares the sampled neighbours against the current threshold and
// either adopts a better neighbour (resetting the run length to BaseRun)
// or confirms the current one (doubling the run length up to MaxRun).
// "Better" means a relative improvement beyond the margin (§III-B: "1%
// better"), which keeps the rule metric-agnostic — the host can feed L2
// hit rate or IPC.
func (t *Tuner) decide() {
	bestIdx := t.idx
	bestRate := t.curRate
	if t.hasLow && t.lowRate > t.curRate*(1+t.cfg.ImprovementMargin) && t.lowRate > bestRate {
		bestIdx = t.idx - 1
		bestRate = t.lowRate
	}
	if t.hasHigh && t.highRate > t.curRate*(1+t.cfg.ImprovementMargin) && t.highRate > bestRate {
		bestIdx = t.idx + 1
		bestRate = t.highRate
	}
	if bestIdx != t.idx {
		t.idx = bestIdx
		t.changes++
		t.runLen = t.cfg.BaseRun
	} else {
		// Still optimal: back off sampling by doubling the run epoch
		// (100 M -> 200 M in the paper), bounded by MaxRun.
		if t.runLen*2 <= t.cfg.MaxRun {
			t.runLen *= 2
		} else {
			t.runLen = t.cfg.MaxRun
		}
	}
	t.phase = phaseRun
}
