package core

import (
	"testing"
)

func testTunerConfig() TunerConfig {
	cfg := DefaultTunerConfig()
	// Scale epochs down for test speed; the algorithm is unchanged.
	cfg.SampleEpoch = 1000
	cfg.BaseRun = 4000
	cfg.MaxRun = 16000
	return cfg
}

func TestTunerConfigValidate(t *testing.T) {
	if err := DefaultTunerConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultTunerConfig()
	bad.Ladder = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("empty ladder accepted")
	}
	bad = DefaultTunerConfig()
	bad.Ladder = []int{100, 50}
	if err := bad.Validate(); err == nil {
		t.Fatal("descending ladder accepted")
	}
	bad = DefaultTunerConfig()
	bad.Ladder = []int{100, 100}
	if err := bad.Validate(); err == nil {
		t.Fatal("duplicate rung accepted")
	}
	bad = DefaultTunerConfig()
	bad.MaxRun = bad.BaseRun - 1
	if err := bad.Validate(); err == nil {
		t.Fatal("MaxRun < BaseRun accepted")
	}
}

func TestInitialThresholdByPrivFraction(t *testing.T) {
	// §III-B: start at N=1,000 when >10% privileged, else N=10,000.
	hi := MustNewTuner(testTunerConfig(), 0.30)
	if hi.AdoptedThreshold() != 1000 {
		t.Fatalf("OS-intensive start N = %d, want 1000", hi.AdoptedThreshold())
	}
	lo := MustNewTuner(testTunerConfig(), 0.02)
	if lo.AdoptedThreshold() != 10000 {
		t.Fatalf("compute-bound start N = %d, want 10000", lo.AdoptedThreshold())
	}
}

func TestSamplingVisitsNeighbours(t *testing.T) {
	tu := MustNewTuner(testTunerConfig(), 0.5) // start at 1000
	seen := []int{}
	for i := 0; i < 3; i++ {
		seen = append(seen, tu.Threshold())
		tu.ReportEpoch(0.5)
	}
	// Sampling order: current (1000), low (500), high (5000).
	if seen[0] != 1000 || seen[1] != 500 || seen[2] != 5000 {
		t.Fatalf("sampling sequence %v, want [1000 500 5000]", seen)
	}
}

func TestAdoptsBetterNeighbour(t *testing.T) {
	tu := MustNewTuner(testTunerConfig(), 0.5) // start 1000
	tu.ReportEpoch(0.50)                       // current 1000
	tu.ReportEpoch(0.60)                       // low 500: clearly better
	tu.ReportEpoch(0.50)                       // high 5000
	if tu.AdoptedThreshold() != 500 {
		t.Fatalf("adopted %d, want 500", tu.AdoptedThreshold())
	}
	if tu.Changes() != 1 {
		t.Fatalf("changes = %d", tu.Changes())
	}
	// After a change the stable run resets to BaseRun.
	if tu.EpochLength() != 4000 {
		t.Fatalf("run epoch = %d, want BaseRun 4000", tu.EpochLength())
	}
}

func TestKeepsCurrentWithinMargin(t *testing.T) {
	tu := MustNewTuner(testTunerConfig(), 0.5)
	tu.ReportEpoch(0.50)
	tu.ReportEpoch(0.505) // better, but within the 1% margin
	tu.ReportEpoch(0.505)
	if tu.AdoptedThreshold() != 1000 {
		t.Fatalf("adopted %d despite sub-margin improvement, want 1000", tu.AdoptedThreshold())
	}
}

func TestRunLengthDoublesWhenStable(t *testing.T) {
	tu := MustNewTuner(testTunerConfig(), 0.5)
	runLens := []uint64{}
	// Three full rounds of stable sampling.
	for round := 0; round < 3; round++ {
		tu.ReportEpoch(0.5) // current
		tu.ReportEpoch(0.4) // low worse
		tu.ReportEpoch(0.4) // high worse
		runLens = append(runLens, tu.EpochLength())
		tu.ReportEpoch(0.5) // the long run completes
	}
	if runLens[0] != 8000 || runLens[1] != 16000 {
		t.Fatalf("run lengths %v, want doubling 8000,16000,...", runLens)
	}
	// Capped at MaxRun.
	if runLens[2] != 16000 {
		t.Fatalf("run length exceeded MaxRun: %v", runLens)
	}
}

func TestEdgeRungsSkipMissingNeighbour(t *testing.T) {
	cfg := testTunerConfig()
	cfg.Ladder = []int{0, 100}
	cfg.InitialLowPriv = 0 // start at the bottom rung
	tu := MustNewTuner(cfg, 0.0)
	if tu.AdoptedThreshold() != 0 {
		t.Fatalf("start = %d", tu.AdoptedThreshold())
	}
	tu.ReportEpoch(0.5) // current (idx 0, no low neighbour)
	if tu.Threshold() != 100 {
		t.Fatalf("bottom rung should sample high next, got %d", tu.Threshold())
	}
	tu.ReportEpoch(0.9) // high much better
	if tu.AdoptedThreshold() != 100 {
		t.Fatalf("adopted %d, want 100", tu.AdoptedThreshold())
	}
}

func TestTopRungSkipsHighNeighbour(t *testing.T) {
	cfg := testTunerConfig()
	cfg.Ladder = []int{100, 1000}
	cfg.InitialHighPriv = 1000
	tu := MustNewTuner(cfg, 0.9)
	tu.ReportEpoch(0.5) // current at top rung -> next samples low only
	if tu.Threshold() != 100 {
		t.Fatalf("top rung should sample low, got %d", tu.Threshold())
	}
	tu.ReportEpoch(0.2) // low worse -> keep, enter run phase
	if tu.AdoptedThreshold() != 1000 {
		t.Fatalf("adopted %d, want 1000", tu.AdoptedThreshold())
	}
	if tu.EpochLength() != 8000 { // doubled BaseRun after confirmation
		t.Fatalf("run epoch = %d", tu.EpochLength())
	}
}

func TestSingleRungLadder(t *testing.T) {
	cfg := testTunerConfig()
	cfg.Ladder = []int{500}
	tu := MustNewTuner(cfg, 0.5)
	tu.ReportEpoch(0.5) // must not panic; goes straight to run phase
	if tu.AdoptedThreshold() != 500 {
		t.Fatal("single rung changed")
	}
	if tu.EpochLength() <= cfg.SampleEpoch {
		t.Fatal("single-rung ladder should enter run phase")
	}
}

func TestHistoryRecorded(t *testing.T) {
	tu := MustNewTuner(testTunerConfig(), 0.5)
	tu.ReportEpoch(0.5)
	tu.ReportEpoch(0.6)
	h := tu.History()
	if len(h) != 2 {
		t.Fatalf("history length %d", len(h))
	}
	if h[0].Threshold != 1000 || h[1].Threshold != 500 {
		t.Fatalf("history thresholds %v", h)
	}
	if h[0].HitRate != 0.5 || h[1].HitRate != 0.6 {
		t.Fatalf("history rates %v", h)
	}
}

func TestNearestIndexSnapping(t *testing.T) {
	cfg := testTunerConfig()
	cfg.InitialHighPriv = 900 // not on the ladder; snaps to 1000
	tu := MustNewTuner(cfg, 0.5)
	if tu.AdoptedThreshold() != 1000 {
		t.Fatalf("snapped to %d, want 1000", tu.AdoptedThreshold())
	}
}
