package workloads

import (
	"testing"

	"offloadsim/internal/syscalls"
)

func TestAllProfilesValidate(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestSuiteComposition(t *testing.T) {
	if len(ServerSet()) != 3 {
		t.Fatalf("server set has %d members, want 3", len(ServerSet()))
	}
	if len(ComputeSet()) != 6 {
		t.Fatalf("compute set has %d members, want 6 (blackscholes, canneal, fasta_protein, mummer, mcf, hmmer)", len(ComputeSet()))
	}
	if len(All()) != 9 {
		t.Fatalf("all = %d, want 9", len(All()))
	}
	for _, p := range ServerSet() {
		if p.Class != Server {
			t.Errorf("%s misclassified as %v", p.Name, p.Class)
		}
	}
	for _, p := range ComputeSet() {
		if p.Class != Compute {
			t.Errorf("%s misclassified as %v", p.Name, p.Class)
		}
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("apache")
	if !ok || p.Name != "apache" {
		t.Fatal("ByName(apache) failed")
	}
	if _, ok := ByName("nosuch"); ok {
		t.Fatal("ByName(nosuch) succeeded")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != 9 {
		t.Fatalf("Names() has %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

func TestOSIntensityOrdering(t *testing.T) {
	// The paper's workload hierarchy: apache most OS-intensive, then
	// specjbb, then derby, then the compute group.
	apache := Apache().ExpectedOSShare()
	jbb := SPECjbb().ExpectedOSShare()
	derby := Derby().ExpectedOSShare()
	mcf := Mcf().ExpectedOSShare()
	if !(apache > jbb && jbb > derby && derby > mcf) {
		t.Fatalf("OS share ordering violated: apache=%.3f jbb=%.3f derby=%.3f mcf=%.3f",
			apache, jbb, derby, mcf)
	}
}

func TestTableIIITailStructure(t *testing.T) {
	// Derby must have (almost) no invocations beyond 10k instructions
	// (Table III: 0.2% OS-core time at N>=10000); apache and specjbb
	// must have a substantial >10k tail.
	if f := Derby().OSTimeFractionAbove(10000); f > 0.02 {
		t.Errorf("derby nominal OS time above 10k = %.3f, want ~0", f)
	}
	if f := Apache().OSTimeFractionAbove(10000); f < 0.15 {
		t.Errorf("apache nominal OS time above 10k = %.3f, want >= 0.15", f)
	}
	if f := SPECjbb().OSTimeFractionAbove(10000); f < 0.15 {
		t.Errorf("specjbb nominal OS time above 10k = %.3f, want >= 0.15", f)
	}
}

func TestOSTimeFractionAboveMonotone(t *testing.T) {
	p := Apache()
	prev := 1.1
	for _, n := range []int{0, 100, 1000, 10000, 100000} {
		f := p.OSTimeFractionAbove(n)
		if f > prev {
			t.Fatalf("fraction above %d = %v exceeds fraction above smaller threshold %v", n, f, prev)
		}
		prev = f
	}
	if p.OSTimeFractionAbove(0) != 1.0 {
		t.Fatal("every invocation is longer than 0")
	}
}

func TestMeanSyscallLengthPositive(t *testing.T) {
	for _, p := range All() {
		if p.MeanSyscallLength() <= 0 {
			t.Errorf("%s mean syscall length = %v", p.Name, p.MeanSyscallLength())
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	good := Apache()
	bad := *good
	bad.Name = ""
	if bad.Validate() == nil {
		t.Fatal("empty name accepted")
	}
	bad = *good
	bad.Mix = nil
	if bad.Validate() == nil {
		t.Fatal("empty mix accepted")
	}
	bad = *good
	bad.Mix = []SyscallWeight{{syscalls.ID(9999), 1}}
	if bad.Validate() == nil {
		t.Fatal("unknown syscall accepted")
	}
	bad = *good
	bad.UserMemRatio = 0
	if bad.Validate() == nil {
		t.Fatal("zero mem ratio accepted")
	}
	bad = *good
	bad.HotFrac = 1.5
	if bad.Validate() == nil {
		t.Fatal("HotFrac > 1 accepted")
	}
	bad = *good
	bad.UserBurstMin = 0
	if bad.Validate() == nil {
		t.Fatal("zero burst floor accepted")
	}
	bad = *good
	bad.TrapContexts = 0
	if bad.Validate() == nil {
		t.Fatal("zero trap contexts accepted")
	}
}

func TestServerProfilesUseTwoThreadsPerCore(t *testing.T) {
	// §II: server benchmarks map two threads per core.
	for _, p := range ServerSet() {
		if p.ThreadsPerCore != 2 {
			t.Errorf("%s ThreadsPerCore = %d, want 2", p.Name, p.ThreadsPerCore)
		}
	}
}

func TestComputeGroupSimilarity(t *testing.T) {
	// §II: the compute group displays "extremely similar behavior" —
	// identical syscall mixes, differing in footprint and intensity.
	ref := Blackscholes()
	for _, p := range ComputeSet() {
		if len(p.Mix) != len(ref.Mix) {
			t.Errorf("%s mix length differs from group", p.Name)
		}
		if p.ExpectedOSShare() > 0.08 {
			t.Errorf("%s OS share %.3f too high for compute group", p.Name, p.ExpectedOSShare())
		}
	}
}
