// Package workloads defines the benchmark profiles the simulator runs.
// The paper evaluates Apache 2.2.6 (static pages selected by a CGI
// script), SPECjbb2005, Derby (SPECjvm2008) and a compute-bound group
// drawn from PARSEC (blackscholes, canneal), BioBench (fasta_protein,
// mummer) and SPEC CPU2006 (mcf, hmmer). We cannot run those binaries, so
// each profile is a stochastic characterization — system-call mix,
// privileged-instruction share, invocation-length structure, working-set
// sizes and user/OS data sharing — calibrated so the simulated streams
// reproduce the OS behaviour the paper reports (Table III utilizations,
// the short-vs-long invocation mix of §II, interrupt extension of §III-A).
package workloads

import (
	"fmt"
	"sort"

	"offloadsim/internal/syscalls"
)

// Class separates the paper's two workload groups.
type Class int

const (
	// Server workloads are OS-intensive (Apache, SPECjbb2005, Derby).
	Server Class = iota
	// Compute workloads are HPC-style with minimal OS interaction.
	Compute
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == Server {
		return "server"
	}
	return "compute"
}

// SyscallWeight is one entry of a profile's system-call mix.
type SyscallWeight struct {
	ID     syscalls.ID
	Weight float64
}

// Profile is the complete stochastic description of one benchmark.
type Profile struct {
	Name        string
	Class       Class
	Description string

	// Mix is the system-call sampling distribution (weights need not
	// sum to 1).
	Mix []SyscallWeight

	// UserBurstMean is the mean user-mode instruction count between OS
	// invocations (geometric distribution). Together with the mix it
	// determines the privileged-instruction share.
	UserBurstMean int
	// UserBurstMin floors the burst length.
	UserBurstMin int

	// CallGrain is the mean instructions per procedure call in user
	// code, and CallDepthBias skews the call/return random walk deeper;
	// together they set the SPARC register-window spill/fill trap rate.
	CallGrain     int
	CallDepthBias float64

	// TLBMissPer1K is the rate of TLB-refill traps per 1000 user
	// instructions.
	TLBMissPer1K float64

	// InterruptRate is the probability that an interrupt-enabled OS
	// invocation is extended by an external interrupt before finishing
	// (§III-A's source of run-length underestimation).
	InterruptRate float64
	// InterruptMeanLen is the mean instruction count of the extension.
	InterruptMeanLen int

	// ThreadsPerCore reflects the paper's 2:1 mapping for server
	// workloads (Apache self-tunes; modeled as 2 as well). It scales
	// the distinct trap-context population the predictor must track.
	ThreadsPerCore int

	// Memory behaviour.
	UserCodeLines  int     // user text footprint in 64 B lines
	UserDataLines  int     // user heap/stack footprint in 64 B lines
	SharedLines    int     // user<->OS shared buffer pool per core
	UserMemRatio   float64 // data references per user instruction
	UserWriteFrac  float64 // fraction of user data references that write
	UserSharedFrac float64 // fraction of user data refs into the shared pool
	HotFrac        float64 // fraction of refs to the Zipf-hot subset
	ZipfS          float64 // Zipf exponent of the hot subset

	// TrapContexts is the number of distinct user register contexts
	// live at spill/fill/TLB trap time; it bounds the AState variety of
	// trap invocations.
	TrapContexts int
}

// Validate checks internal consistency.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workloads: profile with empty name")
	}
	if len(p.Mix) == 0 {
		return fmt.Errorf("workloads: %s has empty syscall mix", p.Name)
	}
	for _, m := range p.Mix {
		if m.Weight < 0 {
			return fmt.Errorf("workloads: %s has negative weight for %v", p.Name, m.ID)
		}
		if int(m.ID) < 0 || int(m.ID) >= syscalls.NumIDs {
			return fmt.Errorf("workloads: %s references unknown syscall %d", p.Name, m.ID)
		}
	}
	if p.UserBurstMean < p.UserBurstMin || p.UserBurstMin < 1 {
		return fmt.Errorf("workloads: %s burst bounds invalid", p.Name)
	}
	if p.UserMemRatio <= 0 || p.UserMemRatio > 1 {
		return fmt.Errorf("workloads: %s UserMemRatio %v out of (0,1]", p.Name, p.UserMemRatio)
	}
	for name, f := range map[string]float64{
		"UserWriteFrac":  p.UserWriteFrac,
		"UserSharedFrac": p.UserSharedFrac,
		"HotFrac":        p.HotFrac,
		"InterruptRate":  p.InterruptRate,
		"CallDepthBias":  p.CallDepthBias,
	} {
		if f < 0 || f > 1 {
			return fmt.Errorf("workloads: %s %s=%v out of [0,1]", p.Name, name, f)
		}
	}
	if p.UserCodeLines <= 0 || p.UserDataLines <= 0 || p.SharedLines <= 0 {
		return fmt.Errorf("workloads: %s has non-positive footprint", p.Name)
	}
	if p.TrapContexts < 1 {
		return fmt.Errorf("workloads: %s TrapContexts < 1", p.Name)
	}
	if p.CallGrain < 1 {
		return fmt.Errorf("workloads: %s CallGrain < 1", p.Name)
	}
	return nil
}

// MeanSyscallLength returns the mix-weighted mean nominal invocation
// length in instructions (argument classes taken uniform).
func (p *Profile) MeanSyscallLength() float64 {
	var wsum, lsum float64
	for _, m := range p.Mix {
		spec := syscalls.Lookup(m.ID)
		mean := float64(spec.BaseLength) + float64(spec.ArgScale)*float64(spec.ArgClasses-1)/2
		lsum += m.Weight * mean
		wsum += m.Weight
	}
	if wsum == 0 {
		return 0
	}
	return lsum / wsum
}

// ExpectedOSShare estimates the fraction of instructions executed in
// privileged mode: syscall time over syscall-plus-burst time. Trap and
// interrupt contributions are second-order and excluded; calibration
// tests measure the emergent value from generated traces.
func (p *Profile) ExpectedOSShare() float64 {
	osLen := p.MeanSyscallLength()
	return osLen / (osLen + float64(p.UserBurstMean))
}

// OSTimeFractionAbove returns the estimated fraction of OS (syscall)
// instruction time spent in invocations whose nominal length exceeds n —
// the quantity that shapes Table III's utilization-vs-threshold rows.
func (p *Profile) OSTimeFractionAbove(n int) float64 {
	var above, total float64
	for _, m := range p.Mix {
		spec := syscalls.Lookup(m.ID)
		for c := 0; c < spec.ArgClasses; c++ {
			l := float64(spec.Length(c))
			w := m.Weight / float64(spec.ArgClasses)
			total += w * l
			if spec.Length(c) > n {
				above += w * l
			}
		}
	}
	if total == 0 {
		return 0
	}
	return above / total
}

// Apache models the paper's Apache 2.2.6 setup: static pages picked by a
// server-side CGI script. The mix is dominated by socket and file I/O,
// with an fork/exec tail from CGI. It is the most OS-intensive workload
// (Table III: the OS core is ~46% busy at N=100 and still ~18% busy at
// N>=10000, so a large share of OS time sits in very long invocations).
func Apache() *Profile {
	return &Profile{
		Name:        "apache",
		Class:       Server,
		Description: "Apache 2.2.6 serving static pages via CGI selection",
		Mix: []SyscallWeight{
			{syscalls.Read, 16}, {syscalls.Write, 14}, {syscalls.Sendfile, 8},
			{syscalls.Accept, 6}, {syscalls.Poll, 9}, {syscalls.Epoll_wait, 4},
			{syscalls.Open, 5}, {syscalls.Close, 6}, {syscalls.Stat, 7},
			{syscalls.Fstat, 4}, {syscalls.Recv, 6}, {syscalls.Send, 6},
			{syscalls.Writev, 4}, {syscalls.Getdents, 1}, {syscalls.Time, 22},
			{syscalls.Gettid, 11}, {syscalls.Fcntl, 3}, {syscalls.Lseek, 2},
			{syscalls.Socket, 1}, {syscalls.Shutdown, 1.5}, {syscalls.Sigprocmask, 6},
			{syscalls.Fork, 1.1}, {syscalls.Execve, 0.9}, {syscalls.Wait4, 1.0},
			{syscalls.Mmap, 1}, {syscalls.Brk, 1}, {syscalls.Futex, 2},
			{syscalls.Getpid, 8},
		},
		UserBurstMean:    2600,
		UserBurstMin:     80,
		CallGrain:        35,
		CallDepthBias:    0.47,
		TLBMissPer1K:     0.8,
		InterruptRate:    0.012, // network IRQs
		InterruptMeanLen: 1200,
		ThreadsPerCore:   2,
		UserCodeLines:    1800,
		UserDataLines:    18000,
		SharedLines:      1280,
		UserMemRatio:     0.30,
		UserWriteFrac:    0.30,
		UserSharedFrac:   0.03,
		HotFrac:          0.96,
		ZipfS:            0.9,
		TrapContexts:     8,
	}
}

// SPECjbb models SPECjbb2005: a JVM middleware workload. OS interaction
// is lock (futex), timer and memory-management heavy, with a long tail
// from GC-driven mmap/clone activity (Table III: ~34% OS-core busy at
// N=100, ~15% at N>=10000).
func SPECjbb() *Profile {
	return &Profile{
		Name:        "specjbb",
		Class:       Server,
		Description: "SPECjbb2005 middleware (JVM warehouse transactions)",
		Mix: []SyscallWeight{
			{syscalls.Futex, 22}, {syscalls.ClockGettime, 22}, {syscalls.Time, 10},
			{syscalls.Mmap, 4}, {syscalls.Munmap, 2.5}, {syscalls.Mprotect, 3},
			{syscalls.Madvise, 2}, {syscalls.Brk, 2}, {syscalls.Sched_yield, 5},
			{syscalls.Read, 2.5}, {syscalls.Write, 2.5}, {syscalls.Sigprocmask, 3},
			{syscalls.Nanosleep, 1.5}, {syscalls.Getrusage, 1.5}, {syscalls.Gettid, 14},
			{syscalls.Clone, 2.8}, {syscalls.Fork, 0.2}, {syscalls.Exit, 0.4},
			{syscalls.Wait4, 0.4}, {syscalls.Fsync, 0.8}, {syscalls.Setitimer, 1},
		},
		UserBurstMean:    3600,
		UserBurstMin:     100,
		CallGrain:        30,
		CallDepthBias:    0.47,
		TLBMissPer1K:     1.2, // large heap
		InterruptRate:    0.008,
		InterruptMeanLen: 1500,
		ThreadsPerCore:   2,
		UserCodeLines:    2400,
		UserDataLines:    17000,
		SharedLines:      768,
		UserMemRatio:     0.32,
		UserWriteFrac:    0.35,
		UserSharedFrac:   0.01,
		HotFrac:          0.96,
		ZipfS:            0.8,
		TrapContexts:     8,
	}
}

// Derby models the SPECjvm2008 Derby database workload: moderate OS
// interaction dominated by positioned file I/O and locking, with
// essentially no invocations beyond 10k instructions (Table III: 8.2%
// OS-core busy at N=100 collapsing to 0.2% at N>=10000).
func Derby() *Profile {
	return &Profile{
		Name:        "derby",
		Class:       Server,
		Description: "Derby database (SPECjvm2008) on an embedded store",
		Mix: []SyscallWeight{
			{syscalls.Pread, 14}, {syscalls.Pwrite, 11}, {syscalls.Read, 6},
			{syscalls.Write, 6}, {syscalls.Lseek, 9}, {syscalls.Futex, 9},
			{syscalls.ClockGettime, 12}, {syscalls.Time, 7}, {syscalls.Stat, 2},
			{syscalls.Fstat, 3}, {syscalls.Open, 1}, {syscalls.Close, 1.2},
			{syscalls.Poll, 2}, {syscalls.Send, 2.5}, {syscalls.Recv, 2.5},
			{syscalls.Getdents, 0.5}, {syscalls.Sigprocmask, 1.5},
			{syscalls.Getpid, 4}, {syscalls.Brk, 1},
		},
		UserBurstMean:    26000,
		UserBurstMin:     400,
		CallGrain:        38,
		CallDepthBias:    0.40,
		TLBMissPer1K:     0.6,
		InterruptRate:    0.006,
		InterruptMeanLen: 1200,
		ThreadsPerCore:   2,
		UserCodeLines:    2200,
		UserDataLines:    17000,
		SharedLines:      1024,
		UserMemRatio:     0.31,
		UserWriteFrac:    0.32,
		UserSharedFrac:   0.025,
		HotFrac:          0.95,
		ZipfS:            0.85,
		TrapContexts:     8,
	}
}

// computeProfile builds one member of the compute-bound group. The group
// displays "extremely similar behavior" (§II), differing mainly in
// working-set size and memory intensity; OS interaction is limited to
// occasional allocation and I/O plus register-window traps.
func computeProfile(name, desc string, dataLines int, memRatio float64, burst int) *Profile {
	return &Profile{
		Name:        name,
		Class:       Compute,
		Description: desc,
		Mix: []SyscallWeight{
			{syscalls.Brk, 5}, {syscalls.Mmap, 2}, {syscalls.Read, 3},
			{syscalls.Write, 1.5}, {syscalls.Fstat, 1}, {syscalls.ClockGettime, 2},
			{syscalls.Time, 1}, {syscalls.Getrusage, 0.5},
		},
		UserBurstMean:    burst,
		UserBurstMin:     2000,
		CallGrain:        45,
		CallDepthBias:    0.28,
		TLBMissPer1K:     0.4,
		InterruptRate:    0.006, // timer ticks only
		InterruptMeanLen: 900,
		ThreadsPerCore:   1,
		UserCodeLines:    900,
		UserDataLines:    dataLines,
		SharedLines:      256,
		UserMemRatio:     memRatio,
		UserWriteFrac:    0.28,
		UserSharedFrac:   0.01,
		HotFrac:          0.93,
		ZipfS:            0.75,
		TrapContexts:     8,
	}
}

// Blackscholes models PARSEC blackscholes (small working set, compute
// dense).
func Blackscholes() *Profile {
	return computeProfile("blackscholes", "PARSEC option pricing", 3500, 0.26, 90000)
}

// Canneal models PARSEC canneal (large, cache-hostile working set).
func Canneal() *Profile {
	return computeProfile("canneal", "PARSEC simulated annealing for routing", 15000, 0.34, 80000)
}

// FastaProtein models BioBench fasta_protein sequence search.
func FastaProtein() *Profile {
	return computeProfile("fasta_protein", "BioBench protein sequence alignment", 9000, 0.30, 70000)
}

// Mummer models BioBench mummer genome alignment.
func Mummer() *Profile {
	return computeProfile("mummer", "BioBench genome alignment (suffix trees)", 14000, 0.33, 75000)
}

// Mcf models SPEC CPU2006 mcf (pointer chasing, memory bound).
func Mcf() *Profile {
	return computeProfile("mcf", "SPEC CPU2006 vehicle scheduling (429.mcf)", 18000, 0.36, 85000)
}

// Hmmer models SPEC CPU2006 hmmer profile HMM search.
func Hmmer() *Profile {
	return computeProfile("hmmer", "SPEC CPU2006 hidden Markov model search (456.hmmer)", 5000, 0.28, 95000)
}

// ServerSet returns the three server workloads in paper order.
func ServerSet() []*Profile {
	return []*Profile{Apache(), SPECjbb(), Derby()}
}

// ComputeSet returns the six compute-bound workloads.
func ComputeSet() []*Profile {
	return []*Profile{Blackscholes(), Canneal(), FastaProtein(), Mummer(), Mcf(), Hmmer()}
}

// All returns every profile.
func All() []*Profile {
	return append(ServerSet(), ComputeSet()...)
}

// ByName looks a profile up by its Name; the boolean reports success.
func ByName(name string) (*Profile, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}

// Names returns all profile names, sorted.
func Names() []string {
	var out []string
	for _, p := range All() {
		out = append(out, p.Name)
	}
	sort.Strings(out)
	return out
}
