package sample

import (
	"encoding/json"
	"reflect"
	"runtime"
	"testing"

	"offloadsim/internal/policy"
	"offloadsim/internal/sim"
	"offloadsim/internal/workloads"
)

func testCfg(replicas int) sim.Config {
	cfg := sim.DefaultConfig(workloads.Apache())
	cfg.Policy = policy.HardwarePredictor
	cfg.Threshold = 100
	cfg.WarmupInstrs = 100_000
	cfg.MeasureInstrs = 600_000
	cfg.Sampling = sim.Sampling{
		Enabled:               true,
		IntervalInstrs:        5_000,
		Ratio:                 5,
		DetailedWarmIntervals: 1,
		WarmStride:            8,
		OSWarmStride:          2,
		WarmupTailInstrs:      50_000,
		Replicas:              replicas,
	}
	return cfg
}

func TestRunRejectsDisabledSampling(t *testing.T) {
	cfg := testCfg(1)
	cfg.Sampling = sim.Sampling{}
	if _, _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted a config without sampling")
	}
}

func TestRunMergesReplicas(t *testing.T) {
	const n = 3
	r, rep, err := Run(testCfg(n))
	if err != nil {
		t.Fatal(err)
	}
	if r.Sampling == nil {
		t.Fatal("merged result carries no provenance")
	}
	if r.Sampling.Replicas != n {
		t.Errorf("provenance replicas %d, want %d", r.Sampling.Replicas, n)
	}
	if rep.Replicas != n || len(rep.Seeds) != n {
		t.Errorf("report replicas %d seeds %v, want %d", rep.Replicas, rep.Seeds, n)
	}
	for i, s := range rep.Seeds {
		if want := testCfg(n).Seed + uint64(i); s != want {
			t.Errorf("seed[%d] = %d, want %d", i, s, want)
		}
	}

	// Interval counts accumulate across replicas. Measured counts vary a
	// little per seed (segments overshoot interval boundaries), so only
	// the schedule-determined total is exact.
	single, _, err := Run(testCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Sampling.TotalIntervals != n*single.Sampling.TotalIntervals {
		t.Errorf("merged total intervals %d, want %d", r.Sampling.TotalIntervals, n*single.Sampling.TotalIntervals)
	}
	if r.Sampling.Intervals <= single.Sampling.Intervals {
		t.Errorf("merged measured intervals %d not above single replica's %d",
			r.Sampling.Intervals, single.Sampling.Intervals)
	}

	tp := rep.Metric("Throughput")
	if tp.Name == "" || tp.Mean <= 0 {
		t.Fatalf("throughput estimate missing: %+v", tp)
	}
	if tp.Mean != r.Throughput {
		t.Errorf("report mean %v != merged throughput %v", tp.Mean, r.Throughput)
	}
	if tp.StdErr < 0 || tp.RelCI95 < 0 {
		t.Errorf("negative spread: %+v", tp)
	}
	if r.Sampling.ThroughputRelErr != tp.RelCI95 {
		t.Errorf("provenance rel err %v != report %v", r.Sampling.ThroughputRelErr, tp.RelCI95)
	}
}

// The acceptance property for parallel replay: the merged result is a
// pure function of the Config, independent of how many workers ran the
// replicas concurrently.
func TestDeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := testCfg(4)
	runAt := func(procs int) (string, Report) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		r, rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		j, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(j), rep
	}

	serial, serialRep := runAt(1)
	// On single-core machines NumCPU is 1, which would make the second
	// leg identical to the first; a floor of 4 still schedules the four
	// replicas concurrently there.
	procs := runtime.NumCPU()
	if procs < 4 {
		procs = 4
	}
	parallel, parallelRep := runAt(procs)
	if serial != parallel {
		t.Fatal("result JSON differs between GOMAXPROCS=1 and NumCPU")
	}
	if !reflect.DeepEqual(serialRep, parallelRep) {
		t.Fatal("report differs between GOMAXPROCS=1 and NumCPU")
	}
}

func TestRunManyMatchesRun(t *testing.T) {
	cfgs := []sim.Config{testCfg(1), testCfg(2)}
	results, reports, err := RunMany(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || len(reports) != 2 {
		t.Fatalf("got %d results, %d reports", len(results), len(reports))
	}
	for i, cfg := range cfgs {
		want, wantRep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Errorf("config %d: RunMany result differs from Run", i)
		}
		if !reflect.DeepEqual(reports[i], wantRep) {
			t.Errorf("config %d: RunMany report differs from Run", i)
		}
	}
}
