// Package sample layers replica fan-out and parallel interval replay on
// top of the interval-sampled simulation engine in package sim. One
// sampled run (sim.Simulator.RunSampled) extrapolates a single seed's
// detailed intervals; Run replays Config.Sampling.Replicas independent
// replicas — seeds Seed, Seed+1, … — across a worker pool bounded by
// GOMAXPROCS and merges them deterministically, so the merged Result is
// byte-identical however many workers happened to run concurrently.
// The replica spread yields per-metric error estimates (Report).
package sample

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"offloadsim/internal/sim"
)

// Estimate is one metric's cross-replica summary: the merged value, the
// standard error of the mean, and the 95% confidence half-width relative
// to the mean (zero when a single replica leaves nothing to compare).
type Estimate struct {
	Name   string
	Mean   float64
	StdErr float64
	// RelCI95 is 1.96·StdErr/|Mean|, or 0 when Mean is 0.
	RelCI95 float64
}

// Report carries the per-metric error estimates of a merged sampled run.
type Report struct {
	// Replicas is the number of independent replicas merged.
	Replicas int
	// Seeds lists the replica seeds in merge order.
	Seeds []uint64
	// Metrics holds cross-replica estimates in a fixed order, so the
	// report marshals identically run to run.
	Metrics []Estimate
}

// Metric returns the named estimate, or a zero Estimate when absent.
func (r Report) Metric(name string) Estimate {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m
		}
	}
	return Estimate{}
}

// replica is one replica's outcome, slotted by index so the merge order
// never depends on goroutine scheduling.
type replica struct {
	result  sim.Result
	samples []sim.IntervalSample
	err     error
}

// Run executes cfg as Sampling.Replicas independent interval-sampled
// replicas in parallel and merges them into one Result. The merge is
// deterministic: replicas are combined in seed order whatever the worker
// interleaving, so the same Config produces byte-identical Result JSON
// at GOMAXPROCS=1 and GOMAXPROCS=NumCPU.
func Run(cfg sim.Config) (sim.Result, Report, error) {
	cc, err := sim.Canonicalize(cfg)
	if err != nil {
		return sim.Result{}, Report{}, err
	}
	if !cc.Sampling.Enabled {
		return sim.Result{}, Report{}, fmt.Errorf("sample: sampling disabled in config")
	}
	n := cc.Sampling.Replicas

	reps := make([]replica, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers())
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rcfg := cc
			rcfg.Seed = cc.Seed + uint64(i)
			rcfg.Sampling.Replicas = 1
			s, err := sim.New(rcfg)
			if err != nil {
				reps[i].err = err
				return
			}
			reps[i].result, reps[i].samples = s.RunSampled()
		}(i)
	}
	wg.Wait()
	for i := range reps {
		if reps[i].err != nil {
			return sim.Result{}, Report{}, fmt.Errorf("sample: replica %d: %w", i, reps[i].err)
		}
	}

	merged, report := merge(cc, reps)
	return merged, report, nil
}

// RunMany runs several configurations through one shared worker pool —
// the sweep-level counterpart of Run's replica fan-out. Results and
// reports are returned in input order.
func RunMany(cfgs []sim.Config) ([]sim.Result, []Report, error) {
	results := make([]sim.Result, len(cfgs))
	reports := make([]Report, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers())
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], reports[i], errs[i] = runSerial(cfgs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("sample: config %d: %w", i, err)
		}
	}
	return results, reports, nil
}

// runSerial is Run without its own pool: RunMany already parallelizes
// across configs, and nesting pools would oversubscribe the machine.
func runSerial(cfg sim.Config) (sim.Result, Report, error) {
	cc, err := sim.Canonicalize(cfg)
	if err != nil {
		return sim.Result{}, Report{}, err
	}
	if !cc.Sampling.Enabled {
		return sim.Result{}, Report{}, fmt.Errorf("sampling disabled in config")
	}
	reps := make([]replica, cc.Sampling.Replicas)
	for i := range reps {
		rcfg := cc
		rcfg.Seed = cc.Seed + uint64(i)
		rcfg.Sampling.Replicas = 1
		s, err := sim.New(rcfg)
		if err != nil {
			return sim.Result{}, Report{}, fmt.Errorf("replica %d: %w", i, err)
		}
		reps[i].result, reps[i].samples = s.RunSampled()
	}
	merged, report := merge(cc, reps)
	return merged, report, nil
}

func workers() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// reportMetrics lists the Result fields summarized across replicas, in
// the fixed order they appear in a Report.
var reportMetrics = []struct {
	name string
	get  func(*sim.Result) float64
}{
	{"Throughput", func(r *sim.Result) float64 { return r.Throughput }},
	{"UserL2HitRate", func(r *sim.Result) float64 { return r.UserL2HitRate }},
	{"UserL1DHit", func(r *sim.Result) float64 { return r.UserL1DHit }},
	{"OSL2HitRate", func(r *sim.Result) float64 { return r.OSL2HitRate }},
	{"OffloadRate", func(r *sim.Result) float64 { return r.OffloadRate }},
	{"OSCoreUtilization", func(r *sim.Result) float64 { return r.OSCoreUtilization }},
	{"MeanQueueDelay", func(r *sim.Result) float64 { return r.MeanQueueDelay }},
}

// merge folds the replicas into replica 0's Result in seed order.
// Identity and end-of-run fields keep replica 0's values; measured
// metrics become cross-replica means; provenance totals accumulate.
func merge(cfg sim.Config, reps []replica) (sim.Result, Report) {
	n := len(reps)
	out := reps[0].result
	report := Report{Replicas: n}
	for i := 0; i < n; i++ {
		report.Seeds = append(report.Seeds, cfg.Seed+uint64(i))
	}

	if n > 1 {
		fm := func(get func(*sim.Result) float64) float64 {
			var sum float64
			for i := range reps {
				sum += get(&reps[i].result)
			}
			return sum / float64(n)
		}
		um := func(get func(*sim.Result) uint64) uint64 {
			var sum float64
			for i := range reps {
				sum += float64(get(&reps[i].result))
			}
			return uint64(sum/float64(n) + 0.5)
		}
		out.Throughput = fm(func(r *sim.Result) float64 { return r.Throughput })
		for c := range out.PerCoreIPC {
			out.PerCoreIPC[c] = fm(func(r *sim.Result) float64 { return r.PerCoreIPC[c] })
		}
		out.Instrs = um(func(r *sim.Result) uint64 { return r.Instrs })
		out.Cycles = um(func(r *sim.Result) uint64 { return r.Cycles })
		out.UserL2HitRate = fm(func(r *sim.Result) float64 { return r.UserL2HitRate })
		out.OSL2HitRate = fm(func(r *sim.Result) float64 { return r.OSL2HitRate })
		out.UserL1DHit = fm(func(r *sim.Result) float64 { return r.UserL1DHit })
		out.OSEntries = um(func(r *sim.Result) uint64 { return r.OSEntries })
		out.Offloads = um(func(r *sim.Result) uint64 { return r.Offloads })
		out.OffloadRate = fm(func(r *sim.Result) float64 { return r.OffloadRate })
		out.OverheadCycles = um(func(r *sim.Result) uint64 { return r.OverheadCycles })
		out.OSCoreUtilization = fm(func(r *sim.Result) float64 { return r.OSCoreUtilization })
		out.MeanQueueDelay = fm(func(r *sim.Result) float64 { return r.MeanQueueDelay })
		out.MaxQueueDelay = fm(func(r *sim.Result) float64 { return r.MaxQueueDelay })
		out.C2CTransfers = um(func(r *sim.Result) uint64 { return r.C2CTransfers })
		out.Invalidations = um(func(r *sim.Result) uint64 { return r.Invalidations })
		out.MemoryFills = um(func(r *sim.Result) uint64 { return r.MemoryFills })
		out.MemoryWritebacks = um(func(r *sim.Result) uint64 { return r.MemoryWritebacks })
		out.UserIdleCycles = um(func(r *sim.Result) uint64 { return r.UserIdleCycles })
		out.OSBusyCycles = um(func(r *sim.Result) uint64 { return r.OSBusyCycles })
		out.PredictorExact = fm(func(r *sim.Result) float64 { return r.PredictorExact })
		out.PredictorWithin5 = fm(func(r *sim.Result) float64 { return r.PredictorWithin5 })
		out.BinaryAccuracy = fm(func(r *sim.Result) float64 { return r.BinaryAccuracy })
		out.AllEntryExact = fm(func(r *sim.Result) float64 { return r.AllEntryExact })
		out.AllEntryBinaryAccuracy = fm(func(r *sim.Result) float64 { return r.AllEntryBinaryAccuracy })
	}

	// Provenance: interval counts accumulate across replicas; the
	// headline error estimate comes from the replica spread once there
	// is one, else from the single replica's interval spread.
	prov := *reps[0].result.Sampling
	for i := 1; i < n; i++ {
		p := reps[i].result.Sampling
		prov.Intervals += p.Intervals
		prov.TotalIntervals += p.TotalIntervals
		prov.SampledFraction += p.SampledFraction
		if p.Estimator != prov.Estimator {
			prov.Estimator = "mixed"
		}
	}
	prov.SampledFraction /= float64(n)
	prov.Replicas = n

	for _, m := range reportMetrics {
		vals := make([]float64, n)
		for i := range reps {
			vals[i] = m.get(&reps[i].result)
		}
		report.Metrics = append(report.Metrics, estimate(m.name, vals))
	}
	if n > 1 {
		prov.ThroughputRelErr = report.Metric("Throughput").RelCI95
	}
	out.Sampling = &prov
	return out, report
}

// estimate summarizes one metric's replica values.
func estimate(name string, vals []float64) Estimate {
	e := Estimate{Name: name}
	for _, v := range vals {
		e.Mean += v
	}
	e.Mean /= float64(len(vals))
	if len(vals) < 2 {
		return e
	}
	var ss float64
	for _, v := range vals {
		d := v - e.Mean
		ss += d * d
	}
	e.StdErr = math.Sqrt(ss/float64(len(vals)-1)) / math.Sqrt(float64(len(vals)))
	if e.Mean != 0 {
		e.RelCI95 = 1.96 * e.StdErr / math.Abs(e.Mean)
	}
	return e
}
