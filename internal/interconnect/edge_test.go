package interconnect

import "testing"

// TestSendLatencyTable pins the latency composition across the edge
// cases the coherence protocol actually produces: zero and negative hop
// counts (clamped to one link — a message always traverses the fabric,
// even to a co-located endpoint), multi-hop invalidation rounds, and
// degenerate zero-latency fabrics.
func TestSendLatencyTable(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		kind    MessageKind
		hops    int
		wantLat int
	}{
		{"one-hop request", Config{LinkLatency: 4, RouterLatency: 1}, ReqMsg, 1, 5},
		{"zero hops clamps to one", Config{LinkLatency: 4, RouterLatency: 1}, ReqMsg, 0, 5},
		{"negative hops clamps to one", Config{LinkLatency: 4, RouterLatency: 1}, FwdMsg, -3, 5},
		{"self-transfer still pays a link", Config{LinkLatency: 7, RouterLatency: 2}, DataMsg, 0, 9},
		{"invalidation round trip hops", Config{LinkLatency: 4, RouterLatency: 1}, InvMsg, 3, 13},
		{"free links, router only", Config{LinkLatency: 0, RouterLatency: 5}, AckMsg, 4, 5},
		{"entirely free fabric", Config{}, DataMsg, 2, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := New(tc.cfg)
			if lat := f.Send(tc.kind, tc.hops); lat != tc.wantLat {
				t.Fatalf("Send(%v, %d) = %d cycles, want %d", tc.kind, tc.hops, lat, tc.wantLat)
			}
			if got := f.Messages(tc.kind); got != 1 {
				t.Fatalf("message count for %v = %d, want 1", tc.kind, got)
			}
			if got := f.TotalCycles(); got != uint64(tc.wantLat) {
				t.Fatalf("TotalCycles = %d, want %d", got, tc.wantLat)
			}
		})
	}
}

// TestAccountingPerKindIsolated checks that each kind's counter is
// independent: traffic of one kind never leaks into another's count and
// the total is the exact sum.
func TestAccountingPerKindIsolated(t *testing.T) {
	f := New(DefaultConfig())
	sends := map[MessageKind]int{ReqMsg: 3, FwdMsg: 1, DataMsg: 4, InvMsg: 2, AckMsg: 5}
	total := 0
	for k, n := range sends {
		for i := 0; i < n; i++ {
			f.Send(k, 1)
		}
		total += n
	}
	for k, n := range sends {
		if got := f.Messages(k); got != uint64(n) {
			t.Fatalf("Messages(%v) = %d, want %d", k, got, n)
		}
	}
	if got := f.TotalMessages(); got != uint64(total) {
		t.Fatalf("TotalMessages = %d, want %d", got, total)
	}
}
