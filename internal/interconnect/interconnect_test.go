package interconnect

import "testing"

func TestSendLatency(t *testing.T) {
	f := New(Config{LinkLatency: 4, RouterLatency: 1})
	if lat := f.Send(ReqMsg, 1); lat != 5 {
		t.Fatalf("1-hop latency = %d, want 5", lat)
	}
	if lat := f.Send(DataMsg, 2); lat != 9 {
		t.Fatalf("2-hop latency = %d, want 9", lat)
	}
}

func TestSendClampsHops(t *testing.T) {
	f := New(DefaultConfig())
	if f.Send(InvMsg, 0) != f.Config().RouterLatency+f.Config().LinkLatency {
		t.Fatal("zero hops not clamped to one")
	}
}

func TestCounting(t *testing.T) {
	f := New(DefaultConfig())
	f.Send(ReqMsg, 1)
	f.Send(ReqMsg, 1)
	f.Send(DataMsg, 1)
	if f.Messages(ReqMsg) != 2 || f.Messages(DataMsg) != 1 || f.Messages(AckMsg) != 0 {
		t.Fatal("per-kind counts wrong")
	}
	if f.TotalMessages() != 3 {
		t.Fatalf("total = %d", f.TotalMessages())
	}
	if f.TotalCycles() != 15 {
		t.Fatalf("cycles = %d, want 15", f.TotalCycles())
	}
	f.Reset()
	if f.TotalMessages() != 0 || f.TotalCycles() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{LinkLatency: -1}).Validate(); err == nil {
		t.Fatal("negative link latency accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(Config{LinkLatency: -1})
}

func TestKindString(t *testing.T) {
	want := map[MessageKind]string{ReqMsg: "req", FwdMsg: "fwd", DataMsg: "data", InvMsg: "inv", AckMsg: "ack"}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}
