// Package interconnect models the point-to-point fabric that connects the
// private L2 caches, the directory and the memory controller (§IV: "a
// simple point-to-point interconnect fabric"). Latency composition is
// deliberately simple — per-hop link latency plus a fixed router traversal —
// because the paper's sensitivity lies in the *number* of protocol hops
// (directory lookup, cache-to-cache forward, invalidation round trips), not
// in contention modeling.
package interconnect

import (
	"fmt"

	"offloadsim/internal/stats"
)

// MessageKind classifies fabric traffic for accounting.
type MessageKind int

const (
	// ReqMsg is a request from an L2 to the directory.
	ReqMsg MessageKind = iota
	// FwdMsg is a directory-forwarded request to an owner cache.
	FwdMsg
	// DataMsg carries a cache line (c2c transfer or memory fill).
	DataMsg
	// InvMsg is an invalidation.
	InvMsg
	// AckMsg is an invalidation acknowledgment or completion notice.
	AckMsg
	numKinds
)

// String implements fmt.Stringer.
func (k MessageKind) String() string {
	switch k {
	case ReqMsg:
		return "req"
	case FwdMsg:
		return "fwd"
	case DataMsg:
		return "data"
	case InvMsg:
		return "inv"
	case AckMsg:
		return "ack"
	}
	return fmt.Sprintf("MessageKind(%d)", int(k))
}

// Config describes the fabric timing.
type Config struct {
	// LinkLatency is the cycles for one point-to-point hop.
	LinkLatency int
	// RouterLatency is the fixed per-message switching cost.
	RouterLatency int
}

// DefaultConfig matches the conservative on-chip numbers used for a 2-8
// node fabric at 3.5 GHz/32 nm (CACTI-derived in the paper's methodology):
// a handful of cycles per hop.
func DefaultConfig() Config {
	return Config{LinkLatency: 4, RouterLatency: 1}
}

// Validate rejects negative latencies.
func (c Config) Validate() error {
	if c.LinkLatency < 0 || c.RouterLatency < 0 {
		return fmt.Errorf("interconnect: negative latency in %+v", c)
	}
	return nil
}

// Fabric is the shared point-to-point network. All nodes are one hop from
// each other (a full crossbar), which is faithful for the 2-5 node systems
// simulated here.
type Fabric struct {
	cfg      Config
	messages [numKinds]stats.Counter
	cycles   stats.Counter
}

// New constructs a fabric; invalid configs panic since they are
// compile-time constants in practice.
func New(cfg Config) *Fabric {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Fabric{cfg: cfg}
}

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Send accounts for one message of kind k traveling hops point-to-point
// links and returns its latency contribution in cycles.
func (f *Fabric) Send(k MessageKind, hops int) int {
	if hops < 1 {
		hops = 1
	}
	lat := f.cfg.RouterLatency + hops*f.cfg.LinkLatency
	f.messages[k].Inc()
	f.cycles.Add(uint64(lat))
	return lat
}

// Messages returns the count of messages of kind k sent so far.
func (f *Fabric) Messages(k MessageKind) uint64 {
	return f.messages[k].Value()
}

// TotalMessages returns the count across all kinds.
func (f *Fabric) TotalMessages() uint64 {
	var sum uint64
	for i := range f.messages {
		sum += f.messages[i].Value()
	}
	return sum
}

// TotalCycles returns the cumulative latency charged through the fabric.
func (f *Fabric) TotalCycles() uint64 { return f.cycles.Value() }

// Reset clears all counters.
func (f *Fabric) Reset() {
	for i := range f.messages {
		f.messages[i].Reset()
	}
	f.cycles.Reset()
}

// Local is a private fabric traffic accumulator. Quantum-parallel
// execution gives each simulated core one Local so concurrent cores
// never touch the shared counters; the deltas are merged into the
// Fabric at the quantum barrier in fixed node order, keeping the shared
// totals deterministic at any worker count.
type Local struct {
	cfg      Config
	messages [numKinds]uint64
	cycles   uint64
}

// NewLocal returns an accumulator with this fabric's timing.
func (f *Fabric) NewLocal() *Local {
	return &Local{cfg: f.cfg}
}

// Send mirrors Fabric.Send against the private counters.
func (l *Local) Send(k MessageKind, hops int) int {
	if hops < 1 {
		hops = 1
	}
	lat := l.cfg.RouterLatency + hops*l.cfg.LinkLatency
	l.messages[k]++
	l.cycles += uint64(lat)
	return lat
}

// Merge folds the accumulated deltas into the shared fabric counters
// and clears the Local for the next quantum.
func (f *Fabric) Merge(l *Local) {
	for i := range l.messages {
		if l.messages[i] != 0 {
			f.messages[i].Add(l.messages[i])
		}
	}
	f.cycles.Add(l.cycles)
	*l = Local{cfg: l.cfg}
}
