package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"offloadsim/internal/sim"
	"offloadsim/internal/telemetry"
)

// traceSpec is smallSpec with telemetry capture requested.
func traceSpec(seed uint64) JobSpec {
	spec := smallSpec(seed)
	spec.Trace = true
	spec.TraceIntervalInstrs = 5_000
	return spec
}

func getTrace(t *testing.T, ts *httptest.Server, id, query string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/traces/" + id + query)
	if err != nil {
		t.Fatalf("GET /v1/traces/%s: %v", id, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, resp.Header.Get("Content-Type")
}

// TestTraceSpecValidation pins the spec-level constraints: tracing needs
// a cycle-accurate engine, and the interval cadence needs tracing.
func TestTraceSpecValidation(t *testing.T) {
	sampled := traceSpec(1)
	sampled.Mode = "sampled"
	if _, err := sampled.Config(); err == nil {
		t.Error("trace with mode sampled must be rejected")
	}
	noTrace := smallSpec(1)
	noTrace.TraceIntervalInstrs = 5_000
	if _, err := noTrace.Config(); err == nil {
		t.Error("trace_interval_instrs without trace must be rejected")
	}
	par := traceSpec(1)
	par.Mode = "parallel"
	par.Cores = 2
	if _, err := par.Config(); err != nil {
		t.Errorf("trace with mode parallel: %v", err)
	}
}

// TestTraceJobEndToEnd runs a real traced simulation through the HTTP
// API and checks both export formats plus the surrounding status codes.
func TestTraceJobEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations are not short")
	}
	srv := New(Options{QueueSize: 16, Workers: 2})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	body, _ := json.Marshal(traceSpec(7))
	code, st, apiErr := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("trace submit: HTTP %d (%s), want 202", code, apiErr.Error)
	}
	if !st.Traced {
		t.Error("submit status does not report traced")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if fin, err := srv.Wait(ctx, st.ID); err != nil || fin.State != StateDone {
		t.Fatalf("trace job did not finish: %v / %+v", err, fin)
	}

	// Default format is a Chrome trace: one valid JSON document with a
	// traceEvents array Perfetto can load.
	code, raw, ctype := getTrace(t, ts, st.ID, "")
	if code != http.StatusOK {
		t.Fatalf("GET trace: HTTP %d: %s", code, raw)
	}
	if ctype != "application/json" {
		t.Errorf("chrome content type %q", ctype)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &chrome); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Error("chrome trace has no events")
	}

	// JSONL: a meta header line followed by one JSON object per event.
	code, raw, ctype = getTrace(t, ts, st.ID, "?format=jsonl")
	if code != http.StatusOK {
		t.Fatalf("GET trace jsonl: HTTP %d", code)
	}
	if ctype != "application/x-ndjson" {
		t.Errorf("jsonl content type %q", ctype)
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("jsonl trace has %d lines", len(lines))
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("jsonl line %d is not valid JSON: %s", i, line)
		}
	}

	if code, _, _ := getTrace(t, ts, st.ID, "?format=bogus"); code != http.StatusBadRequest {
		t.Errorf("bogus format: HTTP %d, want 400", code)
	}
	if code, _, _ := getTrace(t, ts, "j-99999999", ""); code != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", code)
	}

	// A finished untraced job has no trace to serve.
	body, _ = json.Marshal(smallSpec(8))
	_, plain, _ := postJob(t, ts, body)
	if fin, err := srv.Wait(ctx, plain.ID); err != nil || fin.State != StateDone {
		t.Fatalf("plain job did not finish: %v / %+v", err, fin)
	}
	if code, _, _ := getTrace(t, ts, plain.ID, ""); code != http.StatusNotFound {
		t.Errorf("untraced job trace: HTTP %d, want 404", code)
	}

	m := scrapeMetrics(t, ts)
	if m["offsimd_jobs_traced_total"] != 1 {
		t.Errorf("jobs_traced_total = %v, want 1", m["offsimd_jobs_traced_total"])
	}
	// The PR-5 deprecated aliases are gone; only the unit-suffixed
	// canonical names remain.
	for _, gone := range []string{"offsimd_queue_depth", "offsimd_reserved_slots"} {
		if _, ok := m[gone]; ok {
			t.Errorf("removed deprecated alias %s still exported", gone)
		}
	}
	if m["offsimd_queue_wait_seconds_count"] < 2 {
		t.Errorf("queue_wait_seconds_count = %v, want >= 2", m["offsimd_queue_wait_seconds_count"])
	}
	if m["offsimd_sim_instrs_per_second_count"] < 1 {
		t.Errorf("sim_instrs_per_second_count = %v, want >= 1", m["offsimd_sim_instrs_per_second_count"])
	}
}

// TestTraceBypassesCacheAndCoalescing pins the trace-job scheduling
// contract with stubbed engines: a trace job simulates even on a warm
// cache, never coalesces onto an identical in-flight job, and still
// back-fills the cache for later untraced submissions.
func TestTraceBypassesCacheAndCoalescing(t *testing.T) {
	srv := New(Options{QueueSize: 16, Workers: 2})
	var plainRuns, tracedRuns atomic.Int64
	srv.runSim = func(sim.Config) (sim.Result, error) {
		plainRuns.Add(1)
		return sim.Result{Workload: "stub", Instrs: 1000}, nil
	}
	srv.runTraced = func(_ sim.Config, opts telemetry.Options) (sim.Result, *telemetry.Capture, error) {
		tracedRuns.Add(1)
		trc := telemetry.MustNew(opts, 1, telemetry.Meta{Workload: "stub", UserCores: 1})
		trc.Arm()
		trc.Emit(0, telemetry.Event{Time: 1, Kind: telemetry.KindOSEntry, Sys: 3, Instrs: 100})
		return sim.Result{Workload: "stub", Instrs: 1000}, trc.Capture(), nil
	}
	srv.Start()
	defer srv.Shutdown(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	wait := func(id string) JobStatus {
		t.Helper()
		st, err := srv.Wait(ctx, id)
		if err != nil || st.State != StateDone {
			t.Fatalf("job %s: %v / %+v", id, err, st)
		}
		return st
	}

	// Warm the cache with an untraced run.
	st1, err := srv.Submit(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	wait(st1.ID)

	// Identical spec with trace: must not be served from cache.
	st2, err := srv.Submit(traceSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached || st2.Coalesced {
		t.Errorf("trace job cached=%v coalesced=%v, want neither", st2.Cached, st2.Coalesced)
	}
	fin := wait(st2.ID)
	if !fin.Traced {
		t.Error("finished trace job does not report traced")
	}
	if got := tracedRuns.Load(); got != 1 {
		t.Errorf("traced engine ran %d times, want 1", got)
	}
	cap, _, ok := srv.Trace(st2.ID)
	if !ok || cap == nil || len(cap.Events) != 1 {
		t.Fatalf("capture not stored: ok=%v cap=%+v", ok, cap)
	}

	// The trace job's result back-fills the cache: the key is shared
	// with the untraced spec, so a later untraced submission hits.
	st3, err := srv.Submit(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if !st3.Cached {
		t.Error("untraced resubmission after trace job should be a cache hit")
	}
	if got := plainRuns.Load(); got != 1 {
		t.Errorf("plain engine ran %d times, want 1", got)
	}
}

// TestTraceJobNotFinished covers the in-flight trace fetch: 409 with
// Retry-After while the simulation runs.
func TestTraceJobNotFinished(t *testing.T) {
	srv := New(Options{QueueSize: 4, Workers: 1})
	release := make(chan struct{})
	srv.runTraced = func(_ sim.Config, opts telemetry.Options) (sim.Result, *telemetry.Capture, error) {
		<-release
		trc := telemetry.MustNew(opts, 1, telemetry.Meta{UserCores: 1})
		return sim.Result{}, trc.Capture(), nil
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		close(release)
		srv.Shutdown(context.Background())
	}()

	st, err := srv.Submit(traceSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if code, _, _ := getTrace(t, ts, st.ID, ""); code != http.StatusConflict {
		t.Errorf("in-flight trace fetch: HTTP %d, want 409", code)
	}
}
