package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"offloadsim/internal/sim"
)

// smallSpec returns a fast-to-simulate job spec.
func smallSpec(seed uint64) JobSpec {
	warm := uint64(0)
	meas := uint64(20_000)
	return JobSpec{
		Workload:      "apache",
		Policy:        "HI",
		WarmupInstrs:  &warm,
		MeasureInstrs: &meas,
		Seed:          &seed,
	}
}

// postJob submits a job body. It is goroutine-safe: failures are
// reported with Errorf and a zero status.
func postJob(t *testing.T, ts *httptest.Server, body []byte) (int, JobStatus, apiError) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Errorf("POST /v1/jobs: %v", err)
		return 0, JobStatus{}, apiError{}
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var st JobStatus
	var apiErr apiError
	if resp.StatusCode < 400 {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Errorf("decoding status %q: %v", raw, err)
		}
	} else {
		_ = json.Unmarshal(raw, &apiErr)
	}
	return resp.StatusCode, st, apiErr
}

func getResult(t *testing.T, ts *httptest.Server, id string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/results/" + id)
	if err != nil {
		t.Fatalf("GET /v1/results/%s: %v", id, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// scrapeMetrics fetches /metrics and parses the single-valued series.
func scrapeMetrics(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	out := map[string]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out
}

// TestEndToEndHTTP drives the acceptance scenario: >=16 concurrent
// submissions over HTTP all complete; resubmitting an identical config
// is a cache hit returning byte-identical result JSON; the /metrics
// counters reconcile with what was submitted.
func TestEndToEndHTTP(t *testing.T) {
	srv := New(Options{QueueSize: 64, Workers: 4})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	const n = 16
	ids := make([]string, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(smallSpec(uint64(i + 1)))
			code, st, apiErr := postJob(t, ts, body)
			if code != http.StatusAccepted && code != http.StatusOK {
				errs <- fmt.Errorf("job %d: status %d (%s)", i, code, apiErr.Error)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Wait for completion and fetch every result.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	results := make([][]byte, n)
	for i, id := range ids {
		st, err := srv.Wait(ctx, id)
		if err != nil {
			t.Fatalf("waiting for %s: %v", id, err)
		}
		if st.State != StateDone {
			t.Fatalf("job %s: state %s (err %q)", id, st.State, st.Error)
		}
		code, raw := getResult(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("result %s: HTTP %d: %s", id, code, raw)
		}
		var res sim.Result
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatalf("result %s is not a Result document: %v", id, err)
		}
		if res.Throughput <= 0 {
			t.Errorf("job %s: non-positive throughput %v", id, res.Throughput)
		}
		results[i] = raw
	}

	// Resubmit job 0's exact config: must be an instant cache hit with
	// byte-identical result JSON.
	body, _ := json.Marshal(smallSpec(1))
	code, st, _ := postJob(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("resubmission: HTTP %d, want 200 (cache hit)", code)
	}
	if !st.Cached || st.State != StateDone {
		t.Fatalf("resubmission: cached=%v state=%s, want cached done", st.Cached, st.State)
	}
	rcode, raw := getResult(t, ts, st.ID)
	if rcode != http.StatusOK {
		t.Fatalf("cached result: HTTP %d", rcode)
	}
	if !bytes.Equal(raw, results[0]) {
		t.Errorf("cache hit result is not byte-identical:\n%s\nvs\n%s", raw, results[0])
	}

	// A spelled-out-defaults spec must hit the same cache entry.
	explicit := smallSpec(1)
	thr := 1000
	lat := 100
	explicit.Threshold = &thr
	explicit.LatencyCycles = &lat
	explicit.Cores = 1
	explicit.OSSlots = 1
	body, _ = json.Marshal(explicit)
	code, st2, _ := postJob(t, ts, body)
	if code != http.StatusOK || !st2.Cached {
		t.Errorf("default-spelled spec: HTTP %d cached=%v, want cache hit", code, st2.Cached)
	}
	if st2.Key != st.Key {
		t.Errorf("default-spelled spec key %s != %s", st2.Key, st.Key)
	}

	m := scrapeMetrics(t, ts)
	submitted := m["offsimd_jobs_submitted_total"]
	completed := m["offsimd_jobs_completed_total"]
	failed := m["offsimd_jobs_failed_total"]
	if submitted != float64(n+2) {
		t.Errorf("jobs_submitted_total = %v, want %d", submitted, n+2)
	}
	if completed+failed != submitted {
		t.Errorf("completed(%v)+failed(%v) != submitted(%v)", completed, failed, submitted)
	}
	if failed != 0 {
		t.Errorf("jobs_failed_total = %v, want 0", failed)
	}
	if hits := m["offsimd_cache_hits_total"]; hits != 2 {
		t.Errorf("cache_hits_total = %v, want 2", hits)
	}
	if misses := m["offsimd_cache_misses_total"]; misses != float64(n) {
		t.Errorf("cache_misses_total = %v, want %d", misses, n)
	}
	if m["offsimd_queue_depth_jobs"] != 0 || m["offsimd_jobs_running"] != 0 {
		t.Errorf("gauges not quiescent: depth=%v running=%v",
			m["offsimd_queue_depth_jobs"], m["offsimd_jobs_running"])
	}
	if m["offsimd_job_latency_seconds_count"] != submitted {
		t.Errorf("latency histogram count %v != submitted %v",
			m["offsimd_job_latency_seconds_count"], submitted)
	}
}

// blockingServer builds a server whose simulations block until released.
func blockingServer(t *testing.T, opts Options) (*Server, chan struct{}, *atomic.Int64) {
	t.Helper()
	release := make(chan struct{})
	var runs atomic.Int64
	srv := New(opts)
	srv.runSim = func(c sim.Config) (sim.Result, error) {
		runs.Add(1)
		<-release
		return sim.Result{Workload: c.Workload.Name, Throughput: 1}, nil
	}
	srv.Start()
	return srv, release, &runs
}

// TestBackpressure429 fills the queue and verifies the next submission
// bounces with 429 while earlier ones still complete.
func TestBackpressure429(t *testing.T) {
	srv, release, _ := blockingServer(t, Options{QueueSize: 2, Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Worker 1 picks up job A and blocks; jobs B, C fill the queue.
	var accepted []string
	for i := 0; i < 3; i++ {
		body, _ := json.Marshal(smallSpec(uint64(100 + i)))
		code, st, apiErr := postJob(t, ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("job %d: HTTP %d (%s)", i, code, apiErr.Error)
		}
		accepted = append(accepted, st.ID)
	}
	// Give the worker a moment to dequeue job A so the queue state is
	// deterministic: 1 running + 2 queued = full.
	waitForCondition(t, time.Second, func() bool {
		return srv.Metrics().JobsRunning.Load() == 1 && srv.queue.depth() == 2
	})

	body, _ := json.Marshal(smallSpec(999))
	code, _, _ := postJob(t, ts, body)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: HTTP %d, want 429", code)
	}
	if got := srv.Metrics().JobsRejected.Load(); got != 1 {
		t.Errorf("jobs_rejected_total = %d, want 1", got)
	}

	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, id := range accepted {
		if st, err := srv.Wait(ctx, id); err != nil || st.State != StateDone {
			t.Fatalf("job %s after release: %v / %+v", id, err, st)
		}
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestShutdownDrains verifies graceful shutdown: running and queued jobs
// all finish before Shutdown returns, and intake is refused afterwards.
func TestShutdownDrains(t *testing.T) {
	srv, release, runs := blockingServer(t, Options{QueueSize: 8, Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 6; i++ {
		body, _ := json.Marshal(smallSpec(uint64(200 + i)))
		code, st, apiErr := postJob(t, ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("job %d: HTTP %d (%s)", i, code, apiErr.Error)
		}
		ids = append(ids, st.ID)
	}
	waitForCondition(t, time.Second, func() bool { return runs.Load() == 2 })

	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(context.Background()) }()

	// While draining: health reports 503 and submissions are refused.
	waitForCondition(t, time.Second, func() bool { return srv.Draining() })
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: HTTP %d, want 503", resp.StatusCode)
	}
	body, _ := json.Marshal(smallSpec(999))
	if code, _, _ := postJob(t, ts, body); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: HTTP %d, want 503", code)
	}

	close(release)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not finish")
	}
	// Every accepted job must have completed during the drain.
	for _, id := range ids {
		st, ok := srv.Status(id)
		if !ok || st.State != StateDone {
			t.Errorf("job %s after drain: %+v", id, st)
		}
	}
}

// TestCoalescing verifies that identical specs submitted while the first
// is in flight share one simulation and one result document.
func TestCoalescing(t *testing.T) {
	srv, release, runs := blockingServer(t, Options{QueueSize: 8, Workers: 2})
	defer func() { srv.Shutdown(context.Background()) }()

	st1, err := srv.Submit(smallSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	waitForCondition(t, time.Second, func() bool { return runs.Load() == 1 })
	st2, err := srv.Submit(smallSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Coalesced {
		t.Errorf("second identical submission not coalesced: %+v", st2)
	}
	if st2.Key != st1.Key {
		t.Errorf("coalesced key mismatch: %s vs %s", st2.Key, st1.Key)
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, id := range []string{st1.ID, st2.ID} {
		if st, err := srv.Wait(ctx, id); err != nil || st.State != StateDone {
			t.Fatalf("job %s: %v / %+v", id, err, st)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("ran %d simulations for 2 identical submissions, want 1", got)
	}
	r1, _, _ := srv.Result(st1.ID)
	r2, _, _ := srv.Result(st2.ID)
	if !bytes.Equal(r1, r2) {
		t.Errorf("coalesced results differ")
	}
	if srv.Metrics().JobsCoalesced.Load() != 1 {
		t.Errorf("jobs_coalesced_total = %d, want 1", srv.Metrics().JobsCoalesced.Load())
	}
}

// TestJobTimeout verifies per-job timeouts fail the job without taking
// the daemon down.
func TestJobTimeout(t *testing.T) {
	srv := New(Options{QueueSize: 4, Workers: 1, JobTimeout: 20 * time.Millisecond})
	block := make(chan struct{})
	srv.runSim = func(sim.Config) (sim.Result, error) {
		<-block
		return sim.Result{}, nil
	}
	srv.Start()
	defer close(block)
	defer srv.Shutdown(context.Background())

	st, err := srv.Submit(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	final, err := srv.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed || !strings.Contains(final.Error, "aborted") {
		t.Errorf("timed-out job: %+v, want failed/aborted", final)
	}
	if srv.Metrics().JobsFailed.Load() != 1 {
		t.Errorf("jobs_failed_total = %d, want 1", srv.Metrics().JobsFailed.Load())
	}
}

// TestSubmitRejectsInvalidSpecs covers the 400 path.
func TestSubmitRejectsInvalidSpecs(t *testing.T) {
	srv := New(Options{})
	srv.Start()
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	neg := -5
	zero := uint64(0)
	bad := []JobSpec{
		{Workload: "no-such-workload"},
		{Workload: "apache", Policy: "nope"},
		{Workload: "apache", Threshold: &neg},
		{Workload: "apache", LatencyCycles: &neg},
		{Workload: "apache", Cores: -1},
		{Workload: "apache", MeasureInstrs: &zero},
		{Workload: "apache", OSL1KB: -4},
	}
	for i, spec := range bad {
		body, _ := json.Marshal(spec)
		if code, _, _ := postJob(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("bad spec %d: HTTP %d, want 400", i, code)
		}
	}
	// Unknown fields are rejected too (catches client typos like "sede").
	if code, _, _ := postJob(t, ts, []byte(`{"workload":"apache","sede":3}`)); code != http.StatusBadRequest {
		t.Errorf("unknown field: HTTP %d, want 400", code)
	}
	if got := srv.Metrics().JobsSubmitted.Load(); got != 0 {
		t.Errorf("invalid specs counted as submitted: %d", got)
	}
}

// TestSpecFieldOrderIrrelevant: the same spec serialized with different
// JSON field orders must map to one canonical key.
func TestSpecFieldOrderIrrelevant(t *testing.T) {
	a := []byte(`{"workload":"apache","threshold":100,"seed":3,"latency_cycles":5000}`)
	b := []byte(`{"seed":3,"latency_cycles":5000,"workload":"apache","threshold":100}`)
	var sa, sb JobSpec
	if err := json.Unmarshal(a, &sa); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &sb); err != nil {
		t.Fatal(err)
	}
	ca, err := sa.Config()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := sb.Config()
	if err != nil {
		t.Fatal(err)
	}
	ka, err := sim.CanonicalKey(ca)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := sim.CanonicalKey(cb)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Errorf("field order changed the key: %s vs %s", ka, kb)
	}
}

func waitForCondition(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
