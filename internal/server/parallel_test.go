package server

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"offloadsim/internal/sim"
)

// parallelSpec is a small parallel-mode job: a few simulated cores so
// the engine actually partitions work.
func parallelSpec(seed uint64) JobSpec {
	spec := smallSpec(seed)
	warm := uint64(20_000)
	meas := uint64(100_000)
	spec.WarmupInstrs = &warm
	spec.MeasureInstrs = &meas
	spec.Cores = 4
	spec.Mode = "parallel"
	return spec
}

func TestParallelModeSpec(t *testing.T) {
	cfg, err := parallelSpec(1).Config()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Parallel.Enabled {
		t.Fatal("mode parallel did not enable the parallel engine")
	}
	if cfg.Parallel.Quantum != sim.DefaultParallel().Quantum {
		t.Errorf("quantum %d, want default %d", cfg.Parallel.Quantum, sim.DefaultParallel().Quantum)
	}

	// Parallel and serial-detailed versions of the same spec never share
	// a key, but two parallel specs differing only in Workers always do.
	det := parallelSpec(1)
	det.Mode = "detailed"
	detCfg, err := det.Config()
	if err != nil {
		t.Fatal(err)
	}
	pk, err := sim.CanonicalKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dk, err := sim.CanonicalKey(detCfg)
	if err != nil {
		t.Fatal(err)
	}
	if pk == dk {
		t.Fatal("parallel and detailed specs share a cache key")
	}
	wk := parallelSpec(1)
	wk.Workers = 7
	wkCfg, err := wk.Config()
	if err != nil {
		t.Fatal(err)
	}
	k7, err := sim.CanonicalKey(wkCfg)
	if err != nil {
		t.Fatal(err)
	}
	if k7 != pk {
		t.Fatal("workers changed the cache key")
	}

	bad := parallelSpec(1)
	bad.Workers = -1
	if _, err := bad.Config(); err == nil {
		t.Error("negative workers accepted")
	}
	badReps := parallelSpec(1)
	badReps.Replicas = 2
	if _, err := badReps.Config(); err == nil {
		t.Error("replicas with parallel mode accepted")
	}
	badWk := smallSpec(1)
	badWk.Workers = 2
	if _, err := badWk.Config(); err == nil {
		t.Error("workers without parallel mode accepted")
	}
	badDyn := parallelSpec(1)
	badDyn.DynamicN = true
	if _, err := badDyn.Config(); err == nil {
		t.Error("parallel+dynamic_n accepted")
	}
}

// Acceptance property: identical parallel submissions — at any workers
// setting — return byte-identical result JSON through the daemon, the
// mode counter ticks, and slot reservation never leaks.
func TestParallelModeEndToEnd(t *testing.T) {
	srv := New(Options{QueueSize: 8, Workers: 2})
	srv.Start()
	defer srv.Shutdown(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	runJob := func(spec JobSpec) []byte {
		t.Helper()
		st, err := srv.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if st, err = srv.Wait(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("job state %s (err %q)", st.State, st.Error)
		}
		body, _, ok := srv.Result(st.ID)
		if !ok {
			t.Fatal("result missing")
		}
		return body
	}

	first := runJob(parallelSpec(7))
	var res sim.Result
	if err := json.Unmarshal(first, &res); err != nil {
		t.Fatal(err)
	}
	if res.Parallel == nil {
		t.Fatal("parallel job result carries no provenance")
	}
	if res.Parallel.Quanta == 0 {
		t.Fatalf("implausible provenance: %+v", res.Parallel)
	}

	// Same spec with an explicit oversized workers request: cache key is
	// identical, so this is a hit and must return the same bytes. Then a
	// fresh server (cache bypassed) at workers=1 must reproduce them too.
	over := parallelSpec(7)
	over.Workers = 16
	if second := runJob(over); string(first) != string(second) {
		t.Fatal("workers setting changed the served bytes")
	}
	srv2 := New(Options{QueueSize: 8, Workers: 1})
	srv2.Start()
	defer srv2.Shutdown(context.Background())
	one := parallelSpec(7)
	one.Workers = 1
	st, err := srv2.Submit(one)
	if err != nil {
		t.Fatal(err)
	}
	if st, err = srv2.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	rerun, _, _ := srv2.Result(st.ID)
	if string(first) != string(rerun) {
		t.Fatal("parallel result not reproducible across server instances and workers")
	}

	var sb strings.Builder
	if _, err := srv.Metrics().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	metrics := sb.String()
	for _, want := range []string{
		"offsimd_jobs_parallel_total 1",
		"offsimd_reserved_worker_slots 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}
