package server

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"offloadsim/internal/sim"
)

// sampledSpec is a small sampled-mode job with an explicit schedule-
// friendly budget (the default schedule needs a few interval cycles to
// measure anything).
func sampledSpec(seed uint64) JobSpec {
	spec := smallSpec(seed)
	warm := uint64(100_000)
	meas := uint64(2_000_000)
	spec.WarmupInstrs = &warm
	spec.MeasureInstrs = &meas
	spec.Mode = "sampled"
	return spec
}

func TestSampledModeSpec(t *testing.T) {
	cfg, err := sampledSpec(1).Config()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Sampling.Enabled {
		t.Fatal("mode sampled did not enable sampling")
	}
	if cfg.Sampling.Ratio != sim.DefaultSampling().Ratio {
		t.Errorf("ratio %d, want default %d", cfg.Sampling.Ratio, sim.DefaultSampling().Ratio)
	}

	// Sampled and detailed versions of the same spec never share a key.
	det := sampledSpec(1)
	det.Mode = ""
	detCfg, err := det.Config()
	if err != nil {
		t.Fatal(err)
	}
	sk, err := sim.CanonicalKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dk, err := sim.CanonicalKey(detCfg)
	if err != nil {
		t.Fatal(err)
	}
	if sk == dk {
		t.Fatal("sampled and detailed specs share a cache key")
	}

	bad := sampledSpec(1)
	bad.Mode = "turbo"
	if _, err := bad.Config(); err == nil {
		t.Error("unknown mode accepted")
	}
	badReps := smallSpec(1)
	badReps.Replicas = 2
	if _, err := badReps.Config(); err == nil {
		t.Error("replicas without sampled mode accepted")
	}
	reps := sampledSpec(1)
	reps.Replicas = 3
	cfg3, err := reps.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg3.Sampling.Replicas != 3 {
		t.Errorf("replicas %d, want 3", cfg3.Sampling.Replicas)
	}
}

// Acceptance property: identical sampled submissions return
// byte-identical result JSON through the daemon, and the /metrics
// endpoint counts sampled vs detailed simulations.
func TestSampledModeEndToEnd(t *testing.T) {
	srv := New(Options{QueueSize: 8, Workers: 2})
	srv.Start()
	defer srv.Shutdown(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	runJob := func(spec JobSpec) []byte {
		t.Helper()
		st, err := srv.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if st, err = srv.Wait(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("job state %s (err %q)", st.State, st.Error)
		}
		body, _, ok := srv.Result(st.ID)
		if !ok {
			t.Fatal("result missing")
		}
		return body
	}

	first := runJob(sampledSpec(7))
	var res sim.Result
	if err := json.Unmarshal(first, &res); err != nil {
		t.Fatal(err)
	}
	if res.Sampling == nil {
		t.Fatal("sampled job result carries no provenance")
	}
	if res.Sampling.Intervals == 0 || res.Sampling.SampledFraction <= 0 {
		t.Fatalf("implausible provenance: %+v", res.Sampling)
	}

	// The second identical submission is a cache hit and must be
	// byte-identical; a fresh re-run (cache bypassed via new server)
	// must reproduce the same bytes too.
	second := runJob(sampledSpec(7))
	if string(first) != string(second) {
		t.Fatal("identical sampled submissions returned different bytes")
	}
	srv2 := New(Options{QueueSize: 8, Workers: 1})
	srv2.Start()
	defer srv2.Shutdown(context.Background())
	st, err := srv2.Submit(sampledSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if st, err = srv2.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	rerun, _, _ := srv2.Result(st.ID)
	if string(first) != string(rerun) {
		t.Fatal("sampled result not reproducible across server instances")
	}

	// A detailed job, then check the mode counters.
	runJob(smallSpec(7))
	var sb strings.Builder
	if _, err := srv.Metrics().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	metrics := sb.String()
	for _, want := range []string{
		"offsimd_jobs_sampled_total 1",
		"offsimd_jobs_detailed_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}
