package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"offloadsim/internal/obs"
)

// handlePeerSpans serves GET /v1/peer/spans/{traceid}: this replica's
// stored spans of one service trace, as a JSON array. Peers call it to
// stitch fleet-wide traces; an empty array (not 404) means this replica
// touched no part of the trace, which is a perfectly normal answer.
func (s *Server) handlePeerSpans(w http.ResponseWriter, r *http.Request) {
	if s.obs == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "tracing disabled on this replica"})
		return
	}
	spans := s.obs.Spans(r.PathValue("traceid"))
	if spans == nil {
		spans = []obs.Span{}
	}
	writeJSON(w, http.StatusOK, spans)
}

// handleDebugTrace serves GET /v1/debug/traces/{id}: the fleet-stitched
// service trace of a job ID, sweep ID, or raw 32-hex trace ID. The local
// store resolves the ID; every peer is then asked for its spans of the
// same trace, so a stolen or forwarded job renders as one tree spanning
// replicas. Formats: chrome (default, loads in Perfetto), json (span
// array), jsonl (one span per line, cmd/tracedump input).
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if s.obs == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "service tracing disabled; start with tracing enabled"})
		return
	}
	id := r.PathValue("id")
	traceID := id
	if !obs.IsTraceID(id) {
		var ok bool
		traceID, ok = s.obs.TraceIDFor(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("no service trace recorded for %q", id)})
			return
		}
	}
	spans := s.collectFleetSpans(r.Context(), traceID)
	if len(spans) == 0 {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("no spans stored for trace %s", traceID)})
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		_ = obs.WriteChrome(w, spans)
	case "json":
		writeJSON(w, http.StatusOK, spans)
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = obs.WriteJSONL(w, spans)
	default:
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("unknown format %q (chrome, json, jsonl)", format)})
	}
}

// collectFleetSpans merges this replica's spans of traceID with every
// peer's, best-effort: an unreachable peer costs that peer's spans, not
// the whole response. The merge is sorted, so output bytes do not depend
// on which peer answered first.
func (s *Server) collectFleetSpans(ctx context.Context, traceID string) []obs.Span {
	spans := s.obs.Spans(traceID)
	if s.cluster == nil || len(s.cluster.peers) == 0 {
		return spans
	}
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, peer := range s.cluster.peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			remote, err := s.cluster.client.FetchSpans(ctx, peer, traceID)
			if err != nil {
				s.log.Warn("peer span fetch failed",
					"peer", peer, "trace_id", traceID, "error", err.Error())
				return
			}
			mu.Lock()
			spans = append(spans, remote...)
			mu.Unlock()
		}(peer)
	}
	wg.Wait()
	obs.SortSpans(spans)
	return spans
}

// debugRing is the GET /v1/debug/ring document.
type debugRing struct {
	// Enabled reports fleet membership; false means single-replica.
	Enabled bool `json:"enabled"`
	// Self is this replica's advertised address ("" single-replica).
	Self string `json:"self,omitempty"`
	// VNodesPerMember is how many virtual nodes each member
	// contributes to the ring.
	VNodesPerMember int `json:"vnodes_per_member,omitempty"`
	// StealThreshold is the queue depth that triggers stealing (-1 off).
	StealThreshold int `json:"steal_threshold,omitempty"`
	// Members lists every replica with its local-cache ownership split.
	Members []debugRingMember `json:"members,omitempty"`
	// CachedKeys is the local cache entry count (all replicas' view of
	// their own shard; single-replica reports the whole cache).
	CachedKeys int `json:"cached_keys"`
}

// debugRingMember is one replica's row in the ring document.
type debugRingMember struct {
	Replica string `json:"replica"`
	Self    bool   `json:"self,omitempty"`
	// OwnedCachedKeys counts entries of THIS replica's cache that the
	// ring assigns to that member — nonzero rows other than self reveal
	// entries created by stealing or pre-rebalance history.
	OwnedCachedKeys int `json:"owned_cached_keys"`
}

// handleDebugRing serves GET /v1/debug/ring: membership, ring geometry
// and where this replica's cached keys hash to.
func (s *Server) handleDebugRing(w http.ResponseWriter, _ *http.Request) {
	keys := s.cache.keys()
	doc := debugRing{CachedKeys: len(keys)}
	if c := s.cluster; c != nil {
		doc.Enabled = true
		doc.Self = c.self
		doc.VNodesPerMember = c.ring.VNodesPerMember()
		doc.StealThreshold = c.stealThreshold
		owned := make(map[string]int)
		for _, k := range keys {
			owned[c.owner(k)]++
		}
		for _, m := range c.ring.Members() {
			doc.Members = append(doc.Members, debugRingMember{
				Replica:         m,
				Self:            m == c.self,
				OwnedCachedKeys: owned[m],
			})
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// debugCache is the GET /v1/debug/cache document.
type debugCache struct {
	Entries    int             `json:"entries"`
	Capacity   int             `json:"capacity"`
	Hits       uint64          `json:"hits"`
	Misses     uint64          `json:"misses"`
	PeerHits   uint64          `json:"peer_hits"`
	PeerMisses uint64          `json:"peer_misses"`
	OwnedKeys  int64           `json:"owned_keys"`
	Keys       []debugCacheKey `json:"keys"`
}

// debugCacheKey is one cached entry, most recently used first.
type debugCacheKey struct {
	Key string `json:"key"`
	// Owner is the ring owner of the key (omitted single-replica).
	Owner string `json:"owner,omitempty"`
}

// handleDebugCache serves GET /v1/debug/cache: the result cache's
// contents in LRU order plus both cache tiers' counters, so a cache-hit
// SLO burn can be pinned to a shard in one request.
func (s *Server) handleDebugCache(w http.ResponseWriter, _ *http.Request) {
	keys := s.cache.keys()
	doc := debugCache{
		Entries:    len(keys),
		Capacity:   s.opts.CacheEntries,
		Hits:       s.metrics.CacheHits.Load(),
		Misses:     s.metrics.CacheMisses.Load(),
		PeerHits:   s.metrics.PeerCacheHits.Load(),
		PeerMisses: s.metrics.PeerCacheMisses.Load(),
		OwnedKeys:  s.ownedCachedKeys(),
		Keys:       make([]debugCacheKey, 0, len(keys)),
	}
	for _, k := range keys {
		entry := debugCacheKey{Key: k}
		if s.cluster != nil {
			entry.Owner = s.cluster.owner(k)
		}
		doc.Keys = append(doc.Keys, entry)
	}
	writeJSON(w, http.StatusOK, doc)
}
