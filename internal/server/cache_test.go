package server

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.put("a", []byte("ra"))
	c.put("b", []byte("rb"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", []byte("rc")) // evicts b (a was just touched)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.get("a"); !ok || !bytes.Equal(v, []byte("ra")) {
		t.Error("a lost or corrupted")
	}
	if v, ok := c.get("c"); !ok || !bytes.Equal(v, []byte("rc")) {
		t.Error("c missing")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func TestResultCacheOverwrite(t *testing.T) {
	c := newResultCache(4)
	c.put("k", []byte("v1"))
	c.put("k", []byte("v2"))
	if v, _ := c.get("k"); !bytes.Equal(v, []byte("v2")) {
		t.Errorf("got %q, want v2", v)
	}
	if c.len() != 1 {
		t.Errorf("len = %d, want 1", c.len())
	}
}

// TestResultCacheConcurrent exercises the lock under the race detector.
func TestResultCacheConcurrent(t *testing.T) {
	c := newResultCache(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%40)
				c.put(k, []byte(k))
				if v, ok := c.get(k); ok && string(v) != k {
					t.Errorf("corrupted entry %s -> %s", k, v)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestMetricsExposition(t *testing.T) {
	m := NewMetrics()
	m.JobsSubmitted.Add(3)
	m.JobsCompleted.Add(2)
	m.JobsFailed.Add(1)
	m.CacheHits.Add(1)
	m.QueueDepth.Add(2)
	m.ObserveJobLatency(0.003)
	m.ObserveJobLatency(7)
	m.ObserveJobLatency(1000) // lands in +Inf

	var b strings.Builder
	if _, err := m.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wants := []string{
		"# TYPE offsimd_jobs_submitted_total counter",
		"offsimd_jobs_submitted_total 3",
		"offsimd_jobs_completed_total 2",
		"offsimd_jobs_failed_total 1",
		"offsimd_cache_hits_total 1",
		"# TYPE offsimd_queue_depth_jobs gauge",
		"offsimd_queue_depth_jobs 2",
		"# TYPE offsimd_job_latency_seconds histogram",
		`offsimd_job_latency_seconds_bucket{le="0.005"} 1`,
		`offsimd_job_latency_seconds_bucket{le="10"} 2`,
		`offsimd_job_latency_seconds_bucket{le="+Inf"} 3`,
		"offsimd_job_latency_seconds_count 3",
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
