package server

import (
	"container/list"
	"sync"
)

// resultCache maps canonical config keys to marshaled result JSON. It is
// a bounded LRU: sweep drivers revisit recent grid points heavily, and a
// byte cap is unnecessary because every entry is one small Result
// document. Stored bytes are returned verbatim, so repeated submissions
// of one config observe byte-identical responses.
type resultCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	key string
	val []byte
}

// newResultCache builds a cache holding up to max entries (min 1).
func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// get returns the cached result bytes for key, marking it recently used.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put stores result bytes under key, evicting the least recently used
// entry when full. The caller must not mutate val afterwards.
func (c *resultCache) put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// keys returns the cached keys, most recently used first.
func (c *resultCache) keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).key)
	}
	return out
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
