// Package server implements offsimd: a concurrent simulation-as-a-service
// daemon over the offloadsim library. It exposes an HTTP JSON API
// (POST /v1/jobs, GET /v1/jobs/{id}, GET /v1/results/{id}, /healthz,
// /metrics) backed by a bounded job queue with backpressure, a worker
// pool that runs simulations concurrently, and a deterministic result
// cache keyed by the canonical hash of the normalized config+seed, so
// repeated sweep points — the common case when exploring the paper's
// policy × threshold × latency design space — are served in O(1).
package server

import (
	"fmt"
	"time"

	"offloadsim/internal/coherence"
	"offloadsim/internal/core"
	"offloadsim/internal/cpu"
	"offloadsim/internal/migration"
	"offloadsim/internal/obs"
	"offloadsim/internal/policy"
	"offloadsim/internal/sim"
	"offloadsim/internal/telemetry"
	"offloadsim/internal/workloads"
)

// JobSpec is the wire form of one simulation request. Zero/omitted
// fields take the documented defaults; pointer fields distinguish
// "absent" from an explicit zero. The spec deliberately mirrors the
// cmd/offsim flag surface.
type JobSpec struct {
	// Workload is a profile name (required): apache, specjbb, derby, ...
	Workload string `json:"workload"`
	// Policy is a decision-policy name or alias (default "HI").
	Policy string `json:"policy,omitempty"`
	// Threshold is the off-load threshold N in instructions (default
	// 1000; pointer so an explicit 0 survives).
	Threshold *int `json:"threshold,omitempty"`
	// LatencyCycles is the one-way migration latency (default 100).
	LatencyCycles *int `json:"latency_cycles,omitempty"`
	// Cores is the number of user cores (default 1).
	Cores int `json:"cores,omitempty"`
	// OSSlots is the OS core's hardware context count (default 1).
	OSSlots int `json:"os_slots,omitempty"`
	// OSCores sizes the multi-OS-core off-load cluster (default 1 =
	// classic single OS core; docs/OSCORES.md).
	OSCores int `json:"os_cores,omitempty"`
	// Affinity maps syscall classes to cluster cores, e.g.
	// "file=0,network=1,*=0" (requires os_cores > 1).
	Affinity string `json:"affinity,omitempty"`
	// Asymmetry sets per-OS-core speed factors, e.g. "1,0.5".
	Asymmetry string `json:"asymmetry,omitempty"`
	// Async enables fire-and-forget off-load for side-effect-only
	// syscall classes.
	Async bool `json:"async,omitempty"`
	// DynamicN enables the epoch threshold tuner.
	DynamicN bool `json:"dynamic_n,omitempty"`
	// DMPredictor selects the 1500-entry direct-mapped predictor.
	DMPredictor bool `json:"dm_predictor,omitempty"`
	// InstrumentOnly charges decision overhead but never migrates.
	InstrumentOnly bool `json:"instrument_only,omitempty"`
	// MOESI switches the coherence protocol from MESI.
	MOESI bool `json:"moesi,omitempty"`
	// OSL1KB shrinks the OS core's L1s (0 = same as user cores).
	OSL1KB int `json:"os_l1_kb,omitempty"`
	// WarmupInstrs / MeasureInstrs are per-core instruction budgets
	// (defaults 300k / 1M).
	WarmupInstrs  *uint64 `json:"warmup_instrs,omitempty"`
	MeasureInstrs *uint64 `json:"measure_instrs,omitempty"`
	// Seed drives all stochastic behaviour (default 1).
	Seed *uint64 `json:"seed,omitempty"`
	// Mode selects the execution engine: "detailed" (default) simulates
	// every instruction; "sampled" runs interval sampling with
	// functional warming at the default schedule (docs/SAMPLING.md);
	// "parallel" runs detailed execution on the quantum-synchronized
	// parallel engine (docs/PARALLEL.md). No two modes of the same spec
	// share a cache key.
	Mode string `json:"mode,omitempty"`
	// Replicas merges that many independent sampled replicas (requires
	// mode "sampled"; default 1).
	Replicas int `json:"replicas,omitempty"`
	// Workers sizes the parallel engine's host-goroutine pool (requires
	// mode "parallel"; 0 lets the server clamp to its free worker
	// slots). Workers never affects results — only wall time — and is
	// not part of the cache key.
	Workers int `json:"workers,omitempty"`
	// Trace captures a telemetry event trace alongside the result
	// (docs/TELEMETRY.md), retrievable from GET /v1/traces/{id}. Requires
	// mode detailed or parallel. Tracing never changes the result — the
	// job still populates the shared cache — but a trace job always runs
	// its own simulation (no cache hit, no coalescing), because a cached
	// result document carries no event timeline.
	Trace bool `json:"trace,omitempty"`
	// TraceIntervalInstrs additionally samples the interval time-series
	// every that many retired instructions (requires trace).
	TraceIntervalInstrs uint64 `json:"trace_interval_instrs,omitempty"`
}

// Config translates the spec into a validated simulation config. All
// defaulting happens here, so two specs that differ only in spelled-out
// defaults translate to identical configs (and thus one cache key).
func (j JobSpec) Config() (sim.Config, error) {
	prof, ok := workloads.ByName(j.Workload)
	if !ok {
		return sim.Config{}, fmt.Errorf("unknown workload %q (have: %v)", j.Workload, workloads.Names())
	}
	polName := j.Policy
	if polName == "" {
		polName = "HI"
	}
	kind, ok := policy.Parse(polName)
	if !ok {
		return sim.Config{}, fmt.Errorf("unknown policy %q (baseline, SI, DI, HI, oracle)", j.Policy)
	}

	cfg := sim.DefaultConfig(prof)
	cfg.Policy = kind
	if j.Threshold != nil {
		if *j.Threshold < 0 {
			return sim.Config{}, fmt.Errorf("negative threshold %d", *j.Threshold)
		}
		cfg.Threshold = *j.Threshold
	}
	lat := 100
	if j.LatencyCycles != nil {
		lat = *j.LatencyCycles
	}
	if lat < 0 {
		return sim.Config{}, fmt.Errorf("negative latency_cycles %d", lat)
	}
	cfg.Migration = migration.Custom(lat)
	if j.Cores < 0 {
		return sim.Config{}, fmt.Errorf("negative cores %d", j.Cores)
	}
	if j.Cores > 0 {
		cfg.UserCores = j.Cores
	}
	if j.OSSlots < 0 {
		return sim.Config{}, fmt.Errorf("negative os_slots %d", j.OSSlots)
	}
	if j.OSSlots > 0 {
		cfg.OSCoreSlots = j.OSSlots
	}
	if j.OSCores < 0 {
		return sim.Config{}, fmt.Errorf("negative os_cores %d", j.OSCores)
	}
	if j.OSCores > 1 || j.Affinity != "" || j.Asymmetry != "" || j.Async {
		k := j.OSCores
		if k == 0 {
			k = 1
		}
		cfg.OSCores = sim.OSCores{
			Enabled: true, K: k,
			Affinity: j.Affinity, Asymmetry: j.Asymmetry, Async: j.Async,
		}
	}
	cfg.InstrumentOnly = j.InstrumentOnly
	cfg.DirectMappedPredictor = j.DMPredictor
	if j.MOESI {
		cc := coherence.DefaultConfig()
		cc.Protocol = coherence.MOESI
		cfg.Coherence = cc
	}
	if j.OSL1KB < 0 {
		return sim.Config{}, fmt.Errorf("negative os_l1_kb %d", j.OSL1KB)
	}
	if j.OSL1KB > 0 {
		osCPU := cpu.DefaultConfig()
		osCPU.L1I.SizeBytes = j.OSL1KB << 10
		osCPU.L1D.SizeBytes = j.OSL1KB << 10
		cfg.OSCPU = &osCPU
	}
	if j.WarmupInstrs != nil {
		cfg.WarmupInstrs = *j.WarmupInstrs
	}
	if j.MeasureInstrs != nil {
		if *j.MeasureInstrs == 0 {
			return sim.Config{}, fmt.Errorf("measure_instrs must be positive")
		}
		cfg.MeasureInstrs = *j.MeasureInstrs
	}
	if j.Seed != nil {
		cfg.Seed = *j.Seed
	}
	if j.DynamicN {
		cfg.DynamicN = true
		tc := core.DefaultTunerConfig()
		// Scale the paper's 25M/100M epochs down to the request's
		// measurement budget, as cmd/offsim does.
		tc.SampleEpoch = cfg.MeasureInstrs / 40
		if tc.SampleEpoch < 1000 {
			tc.SampleEpoch = 1000
		}
		tc.BaseRun = tc.SampleEpoch * 4
		tc.MaxRun = tc.BaseRun * 4
		cfg.Tuner = tc
	}
	switch j.Mode {
	case "", "detailed":
		if j.Replicas > 1 {
			return sim.Config{}, fmt.Errorf("replicas %d requires mode \"sampled\"", j.Replicas)
		}
		if j.Workers != 0 {
			return sim.Config{}, fmt.Errorf("workers requires mode \"parallel\"")
		}
	case "sampled":
		cfg.Sampling = sim.DefaultSampling()
		if j.Replicas < 0 {
			return sim.Config{}, fmt.Errorf("negative replicas %d", j.Replicas)
		}
		if j.Replicas > 0 {
			cfg.Sampling.Replicas = j.Replicas
		}
		if j.Workers != 0 {
			return sim.Config{}, fmt.Errorf("workers requires mode \"parallel\"")
		}
	case "parallel":
		if j.Replicas > 1 {
			return sim.Config{}, fmt.Errorf("replicas %d requires mode \"sampled\"", j.Replicas)
		}
		if j.Workers < 0 {
			return sim.Config{}, fmt.Errorf("negative workers %d", j.Workers)
		}
		cfg.Parallel = sim.DefaultParallel()
		cfg.Parallel.Workers = j.Workers
	default:
		return sim.Config{}, fmt.Errorf("unknown mode %q (detailed, sampled, parallel)", j.Mode)
	}
	if j.Trace && cfg.Sampling.Enabled {
		return sim.Config{}, fmt.Errorf("trace requires mode \"detailed\" or \"parallel\" " +
			"(sampled mode has no cycle-accurate timeline)")
	}
	if j.TraceIntervalInstrs > 0 && !j.Trace {
		return sim.Config{}, fmt.Errorf("trace_interval_instrs requires trace")
	}
	if err := cfg.Validate(); err != nil {
		return sim.Config{}, err
	}
	return cfg, nil
}

// State is a job's lifecycle position.
type State string

const (
	// StateQueued: accepted, waiting for a worker (or coalesced behind
	// an identical in-flight job).
	StateQueued State = "queued"
	// StateRunning: a worker is simulating it.
	StateRunning State = "running"
	// StateDone: finished; the result is available.
	StateDone State = "done"
	// StateFailed: simulation error, timeout, or shutdown before run.
	StateFailed State = "failed"
)

// JobStatus is the wire form of a job's current state.
type JobStatus struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State State  `json:"state"`
	// Cached is true when the job was served from the result cache
	// without running a simulation.
	Cached bool `json:"cached"`
	// Coalesced is true when the job attached to an identical in-flight
	// job instead of enqueueing its own simulation.
	Coalesced bool `json:"coalesced,omitempty"`
	// Traced is true when the job captures a telemetry trace; once done,
	// the trace is served by GET /v1/traces/{id}.
	Traced bool `json:"traced,omitempty"`
	// Stolen is true when an overloaded owner offered this job to a
	// peer replica instead of its own queue (work-stealing).
	Stolen bool `json:"stolen,omitempty"`
	// Replica is the advertised base URL of the replica holding this
	// job (fleet mode only) — poll status and fetch results there.
	Replica string `json:"replica,omitempty"`
	Error   string `json:"error,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// LatencySeconds is submit-to-finish wall time, set once finished.
	LatencySeconds float64 `json:"latency_seconds,omitempty"`
}

// job is the server-side record. All mutable fields are guarded by the
// owning Server's mutex; done is closed exactly once at completion.
type job struct {
	id   string
	key  string
	spec JobSpec
	cfg  sim.Config

	state     State
	cached    bool
	coalesced bool
	trace     bool
	stolen    bool
	err       string
	result    []byte             // marshaled Result JSON, byte-identical across cache hits
	capture   *telemetry.Capture // trace jobs only, set at completion

	// tctx is the job's admission-span context: execution spans (queue
	// wait, sim execute, steal push, ...) parent under it. Zero when
	// tracing is disabled (docs/OBSERVABILITY.md).
	tctx obs.SpanContext

	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time

	done chan struct{}
}

// telemetryOpts shapes a trace job's spec into attachment options: the
// event trace is always on, and the interval time-series rides along
// when the spec asked for a cadence.
func (j *job) telemetryOpts() telemetry.Options {
	return telemetry.Options{Events: true, IntervalInstrs: j.spec.TraceIntervalInstrs}
}

// status snapshots the job. Caller must hold the server mutex.
func (j *job) status() JobStatus {
	st := JobStatus{
		ID:          j.id,
		Key:         j.key,
		State:       j.state,
		Cached:      j.cached,
		Coalesced:   j.coalesced,
		Traced:      j.trace,
		Stolen:      j.stolen,
		Error:       j.err,
		SubmittedAt: j.submittedAt,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		st.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		st.FinishedAt = &t
		st.LatencySeconds = j.finishedAt.Sub(j.submittedAt).Seconds()
	}
	return st
}
