package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"offloadsim/internal/cluster"
	"offloadsim/internal/obs"
	"offloadsim/internal/sim"
)

// sweepHeader is the first NDJSON line of POST /v1/sweeps.
type sweepHeader struct {
	SweepID string `json:"sweep_id"`
	Points  int    `json:"points"`
}

// sweepPointSpec shapes one grid point into the ordinary job spec
// vocabulary, so a sweep point is indistinguishable from a directly
// submitted job: same canonical key, same cache, same metrics.
func sweepPointSpec(req cluster.SweepRequest, p cluster.Point) JobSpec {
	n := p.Threshold
	lat := p.Latency
	spec := JobSpec{
		Workload:      p.Workload,
		Policy:        p.Policy,
		Threshold:     &n,
		LatencyCycles: &lat,
		WarmupInstrs:  req.WarmupInstrs,
		MeasureInstrs: req.MeasureInstrs,
		Seed:          req.Seed,
		Mode:          req.Mode,
	}
	if req.Mode == "sampled" && req.Replicas > 0 {
		spec.Replicas = req.Replicas
	}
	return spec
}

// runSweepPoint executes one grid point fleet-wide: it computes the
// point's canonical key, routes to the ring owner (synchronous peer
// execute), and falls back to local execution when the fleet cannot
// help. Either way the result document is the same bytes — routing is
// a performance decision, never a correctness one.
func (s *Server) runSweepPoint(ctx context.Context, req cluster.SweepRequest, p cluster.Point) ([]byte, error) {
	spec := sweepPointSpec(req, p)
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	key, err := sim.CanonicalKey(cfg)
	if err != nil {
		return nil, err
	}
	// Per-point fan-out span under the sweep root carried in ctx. Points
	// run concurrently, so sibling IDs come from explicit ordinals — the
	// grid index, or the workload position for baseline (Index -1) points
	// — keeping the span tree deterministic regardless of finish order.
	var ps *obs.ActiveSpan
	if parent := obs.FromContext(ctx); s.obs != nil && parent.Valid() {
		name, ord := "sweep_point", p.Index
		if p.Index < 0 {
			name, ord = "sweep_baseline", 0
			for i, wl := range req.Workloads {
				if wl == p.Workload {
					ord = i
					break
				}
			}
		}
		ps = s.obs.StartSpanOrdinal(parent, name, ord)
		ps.SetAttr("workload", p.Workload)
		ps.SetAttr("policy", p.Policy)
	}
	b, err := s.routeSweepPoint(ctx, spec, key, ps.Context())
	if ps != nil {
		if err != nil {
			ps.SetError(err.Error())
		}
		ps.End()
	}
	return b, err
}

// routeSweepPoint sends one decomposed point to its ring owner, falling
// back to local execution when the fleet cannot help.
func (s *Server) routeSweepPoint(ctx context.Context, spec JobSpec, key string, sc obs.SpanContext) ([]byte, error) {
	if c := s.cluster; c != nil {
		if owner := c.owner(key); owner != c.self {
			specJSON, err := json.Marshal(spec)
			if err != nil {
				return nil, err
			}
			for attempt := 0; ; attempt++ {
				b, err := c.client.Execute(ctx, owner, specJSON, sc.Traceparent())
				if err == nil {
					return b, nil
				}
				if !errors.Is(err, cluster.ErrPeerBusy) || attempt >= 50 {
					// Owner down or persistently saturated: compute the
					// point here. The two-tier cache check in the execute
					// path still consults the owner first, so a transient
					// failure cannot cause a duplicate simulation unless
					// the owner is truly unreachable.
					break
				}
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-time.After(50 * time.Millisecond):
				}
			}
		}
	}
	return s.runPointLocal(ctx, spec, sc)
}

// runPointLocal submits spec to this replica's own queue (honoring
// backpressure by waiting, not failing: a sweep is a batch client) and
// returns the finished result document.
func (s *Server) runPointLocal(ctx context.Context, spec JobSpec, sc obs.SpanContext) ([]byte, error) {
	var st JobStatus
	for {
		var err error
		st, err = s.submit(spec, submitOpts{sc: sc})
		if err == nil {
			break
		}
		if !errors.Is(err, ErrQueueFull) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
	if _, err := s.Wait(ctx, st.ID); err != nil {
		return nil, err
	}
	res, fin, ok := s.Result(st.ID)
	if !ok {
		return nil, fmt.Errorf("sweep job %s vanished", st.ID)
	}
	if fin.State != StateDone {
		return nil, fmt.Errorf("sweep job %s failed: %s", st.ID, fin.Error)
	}
	return res, nil
}

// StartSweep validates req, registers a new sweep and launches its
// execution on the server's base context — a sweep outlives the
// submitting HTTP request, because its results belong to the fleet
// cache either way.
func (s *Server) StartSweep(req cluster.SweepRequest) (*cluster.Sweep, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.sweepSeq++
	id := fmt.Sprintf("s-%08d", s.sweepSeq)
	s.mu.Unlock()

	// Sweep root span: every fan-out point stitches under it through the
	// context handed to the coordinator. The sweep ID binds to the trace
	// like a job ID, so /v1/debug/traces/{sweep-id} resolves it.
	ctx := s.baseCtx
	var root *obs.ActiveSpan
	if s.obs != nil {
		root = s.obs.StartSpan(obs.RootContext(obs.TraceID("sweep:"+id, s.admissions.Add(1))), "sweep")
		root.SetJob(id)
		ctx = obs.ContextWith(ctx, root.Context())
	}

	sw, err := s.coord.Start(ctx, id, req)
	if err != nil {
		if root != nil {
			root.SetError(err.Error())
			root.End()
		}
		return nil, err
	}
	if root != nil {
		root.SetAttr("points", fmt.Sprint(sw.Total()))
		go func() {
			// The root closes when the last point lands; Wait only errors
			// on server shutdown, in which case the span ends then too.
			_ = sw.Wait(s.baseCtx)
			root.End()
		}()
	}
	s.mu.Lock()
	s.sweeps[id] = sw
	s.mu.Unlock()
	s.metrics.Sweeps.Add(1)
	s.metrics.SweepPoints.Add(uint64(sw.Total()))
	return sw, nil
}

// SweepProgress returns the live accounting of sweep id.
func (s *Server) SweepProgress(id string) (cluster.Progress, bool) {
	s.mu.Lock()
	sw, ok := s.sweeps[id]
	s.mu.Unlock()
	if !ok {
		return cluster.Progress{}, false
	}
	return sw.Progress(), true
}

// handleSweepSubmit serves POST /v1/sweeps: decompose the grid, fan it
// across the fleet, and stream per-point results back as NDJSON in
// index order — a header line, one line per point as it completes, and
// a final progress summary. Point lines are deterministic bytes: the
// same grid streams identical lines no matter which replicas computed
// the points or in which order they finished.
func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var req cluster.SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "malformed sweep request: " + err.Error()})
		return
	}
	sw, err := s.StartSweep(req)
	switch {
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Offsimd-Sweep-Id", sw.ID)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	emit := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	if err := emit(sweepHeader{SweepID: sw.ID, Points: sw.Total()}); err != nil {
		return
	}
	// Stream until done or the client goes away; the sweep itself keeps
	// running in the background and stays pollable via GET /v1/sweeps.
	if err := sw.Stream(r.Context(), func(pr *cluster.PointResult) error {
		return emit(pr)
	}); err != nil {
		return
	}
	_ = emit(sw.Progress())
}

// handleSweepStatus serves GET /v1/sweeps/{id}.
func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	prog, ok := s.SweepProgress(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown sweep"})
		return
	}
	writeJSON(w, http.StatusOK, prog)
}
