package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"offloadsim/internal/cluster"
	"offloadsim/internal/obs"
	"offloadsim/internal/sample"
	"offloadsim/internal/sim"
	"offloadsim/internal/telemetry"
)

// Options sizes the daemon. Zero values take the documented defaults.
type Options struct {
	// QueueSize bounds the job queue; a full queue rejects submissions
	// with ErrQueueFull (HTTP 429). Default 64.
	QueueSize int
	// Workers is the worker-pool size. Default GOMAXPROCS.
	Workers int
	// JobTimeout bounds one simulation's wall time; expired jobs fail.
	// Default 2m; negative disables the timeout.
	JobTimeout time.Duration
	// CacheEntries bounds the result cache. Default 4096.
	CacheEntries int
	// Cluster joins the server to a multi-replica fleet (consistent-hash
	// routing, peer cache tier, work-stealing, sweep fan-out). The zero
	// value runs a single replica. See docs/CLUSTER.md.
	Cluster ClusterOptions
	// Obs configures request-scoped tracing, structured logging and SLO
	// instrumentation (docs/OBSERVABILITY.md). The zero value disables
	// tracing and discards logs.
	Obs ObsOptions
}

// ObsOptions is the observability configuration (docs/OBSERVABILITY.md).
type ObsOptions struct {
	// Tracing enables the service-span collector and the
	// /v1/debug/traces endpoints. Disabled, every instrumentation site
	// degrades to a nil-check (the ≤2% overhead path gated in CI).
	Tracing bool
	// MaxTraces bounds the in-memory trace store (0 =
	// obs.DefaultMaxTraces). Whole traces are evicted FIFO.
	MaxTraces int
	// Logger receives structured logs with trace/span correlation
	// fields; nil discards them without formatting.
	Logger *slog.Logger
	// SLOLatencyP95 is the per-job latency target backing the
	// offsimd_slo_latency_* burn counters; 0 disables them.
	SLOLatencyP95 time.Duration
	// SLOCacheHitMin is the cache-hit-ratio target exported as
	// offsimd_slo_cache_hit_target_ratio for burn-rate computation
	// against the cache hit/miss counters; <= 0 disables it.
	SLOCacheHitMin float64
}

func (o Options) withDefaults() Options {
	if o.QueueSize == 0 {
		o.QueueSize = 64
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.JobTimeout == 0 {
		o.JobTimeout = 2 * time.Minute
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 4096
	}
	return o
}

// Server is the offsimd daemon core: submission, queueing, execution,
// caching and instrumentation. It is independent of HTTP; Handler()
// wraps it for the wire.
type Server struct {
	opts    Options
	metrics *Metrics
	cache   *resultCache
	queue   *jobQueue

	// cluster is non-nil when Options.Cluster joined a fleet; it owns
	// routing, the peer cache tier and stealing (cluster.go).
	cluster *clusterNode
	// coord decomposes and drives sweep requests (sweeps.go).
	coord *cluster.Coordinator

	// runSim is swappable for tests; defaults to sim.Run.
	runSim func(sim.Config) (sim.Result, error)

	// runTraced runs trace jobs: a detailed or parallel simulation with
	// telemetry attached. Swappable for tests.
	runTraced func(sim.Config, telemetry.Options) (sim.Result, *telemetry.Capture, error)

	// now is swappable for tests; defaults to time.Now.
	now func() time.Time

	// obs collects service spans; nil when Options.Obs.Tracing is off
	// (every emission site is then a nil-check no-op).
	obs *obs.Tracer
	// log is the structured logger; never nil (discard by default).
	log *slog.Logger
	// admissions numbers trace-creating admissions; together with the
	// canonical key it derives deterministic trace IDs.
	admissions atomic.Uint64

	mu       sync.Mutex
	jobs     map[string]*job   // all jobs by id
	pending  map[string][]*job // key -> jobs awaiting one in-flight simulation
	sweeps   map[string]*cluster.Sweep
	seq      uint64
	sweepSeq uint64
	draining bool
	// reserved counts worker-pool slots held by running parallel jobs
	// beyond their own worker, so concurrent parallel simulations cannot
	// oversubscribe the host (see reserveSlots).
	reserved int

	wg        sync.WaitGroup
	baseCtx   context.Context
	abort     context.CancelFunc
	startOnce sync.Once
}

// New builds a Server; call Start before submitting.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	srv := &Server{
		opts:    opts,
		metrics: NewMetrics(),
		cache:   newResultCache(opts.CacheEntries),
		queue:   newJobQueue(opts.QueueSize),
		runSim: func(c sim.Config) (sim.Result, error) {
			if c.Sampling.Enabled {
				r, _, err := sample.Run(c)
				return r, err
			}
			s, err := sim.New(c)
			if err != nil {
				return sim.Result{}, err
			}
			return s.Run(), nil
		},
		runTraced: func(c sim.Config, opts telemetry.Options) (sim.Result, *telemetry.Capture, error) {
			s, err := sim.New(c)
			if err != nil {
				return sim.Result{}, nil, err
			}
			trc, err := s.AttachTelemetry(opts)
			if err != nil {
				return sim.Result{}, nil, err
			}
			res := s.Run()
			return res, trc.Capture(), nil
		},
		now:     time.Now,
		jobs:    make(map[string]*job),
		pending: make(map[string][]*job),
		sweeps:  make(map[string]*cluster.Sweep),
		baseCtx: ctx,
		abort:   cancel,
	}
	if opts.Cluster.Enabled() {
		srv.cluster = newClusterNode(opts.Cluster)
	}
	srv.log = obs.LoggerOrDiscard(opts.Obs.Logger)
	if opts.Obs.Tracing {
		replica := ""
		if opts.Cluster.Enabled() {
			replica = opts.Cluster.Membership.Self
		}
		// The tracer reads the clock through the server so tests that
		// swap srv.now keep span times consistent with job times.
		srv.obs = obs.NewTracer(replica, opts.Obs.MaxTraces, func() time.Time { return srv.now() })
	}
	srv.metrics.SetSLOTargets(opts.Obs.SLOLatencyP95.Seconds(), opts.Obs.SLOCacheHitMin)
	srv.coord = &cluster.Coordinator{RunPoint: srv.runSweepPoint}
	return srv
}

// Metrics exposes the instrumentation registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Start launches the worker pool. Idempotent.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		for i := 0; i < s.opts.Workers; i++ {
			s.wg.Add(1)
			go s.worker()
		}
	})
}

// Submit validates spec, consults the result cache and either completes
// the job instantly (cache hit), attaches it to an identical in-flight
// job (coalescing), or enqueues it. In a fleet, a job landing on an
// overloaded owner may instead be offered to the least-loaded peer
// (work-stealing). ErrQueueFull and ErrDraining report backpressure and
// shutdown; other errors are invalid specs.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	return s.submit(spec, submitOpts{})
}

// submitOpts distinguishes replica-to-replica work from client work.
type submitOpts struct {
	// internal marks jobs arriving via /v1/peer/execute: they execute
	// here, period — no forwarding (done at the HTTP layer) and no
	// re-stealing, so work cannot bounce around the fleet.
	internal bool
	// sc is the caller's trace position (HTTP request span, peer_execute
	// span, sweep point). Invalid starts a fresh trace at admission.
	sc obs.SpanContext
}

func (s *Server) submit(spec JobSpec, opt submitOpts) (JobStatus, error) {
	cfg, err := spec.Config()
	if err != nil {
		return JobStatus{}, fmt.Errorf("invalid job spec: %w", err)
	}
	key, err := sim.CanonicalKey(cfg)
	if err != nil {
		return JobStatus{}, fmt.Errorf("invalid job spec: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobStatus{}, ErrDraining
	}
	s.seq++
	j := &job{
		id:          fmt.Sprintf("j-%08d", s.seq),
		key:         key,
		spec:        spec,
		cfg:         cfg,
		trace:       spec.Trace,
		state:       StateQueued,
		submittedAt: s.now(),
		done:        make(chan struct{}),
	}

	// Admission span: the root of the job's local span subtree. A job
	// arriving with trace context (forwarded, stolen, or a sweep point)
	// stitches under the caller's span; otherwise admission starts a new
	// trace whose ID is a pure function of the canonical key and the
	// admission ordinal (docs/OBSERVABILITY.md).
	var adm *obs.ActiveSpan
	if s.obs != nil {
		parent := opt.sc
		if !parent.Valid() {
			parent = obs.RootContext(obs.TraceID(key, s.admissions.Add(1)))
		}
		adm = s.obs.StartSpan(parent, "admission")
		adm.SetJob(j.id)
		if opt.internal {
			adm.SetAttr("internal", "true")
		}
		j.tctx = adm.Context()
	}
	finishAdm := func(outcome string, err error) {
		if adm == nil {
			return
		}
		adm.SetAttr("outcome", outcome)
		if err != nil {
			adm.SetError(err.Error())
		}
		adm.End()
		s.log.Debug("job admitted", append(obs.LogContext(j.tctx),
			slog.String("job", j.id), slog.String("outcome", outcome))...)
	}

	if j.trace {
		// A trace job must actually simulate: a cached result document
		// has no event timeline, and a coalesced waiter would inherit a
		// result without one. It bypasses the cache-hit and coalescing
		// paths entirely (and never registers under pending, so identical
		// untraced jobs coalesce among themselves as usual), but its
		// result still back-fills the shared cache on completion.
		if !s.queue.tryPush(j) {
			s.metrics.JobsRejected.Add(1)
			finishAdm("rejected", ErrQueueFull)
			return JobStatus{}, ErrQueueFull
		}
		s.jobs[j.id] = j
		s.metrics.JobsSubmitted.Add(1)
		s.metrics.CacheMisses.Add(1)
		s.metrics.QueueDepth.Add(1)
		finishAdm("enqueued_trace", nil)
		return s.stamp(j.status()), nil
	}

	var lookupStart time.Time
	if s.obs != nil {
		lookupStart = s.now()
	}
	res, hit := s.cache.get(key)
	if s.obs != nil {
		outcome := "miss"
		if hit {
			outcome = "hit"
		}
		s.obs.RecordSpan(j.tctx, "cache_lookup", j.id, lookupStart, s.now(),
			obs.StatusOK, "", map[string]string{"tier": "local", "outcome": outcome})
	}
	if hit {
		s.jobs[j.id] = j
		j.cached = true
		s.completeLocked(j, res, "")
		s.metrics.JobsSubmitted.Add(1)
		s.metrics.CacheHits.Add(1)
		finishAdm("cache_hit", nil)
		return s.stamp(j.status()), nil
	}

	if waiters, ok := s.pending[key]; ok {
		// An identical config is already queued or running: share its
		// outcome instead of simulating twice.
		s.jobs[j.id] = j
		j.coalesced = true
		s.pending[key] = append(waiters, j)
		s.metrics.JobsSubmitted.Add(1)
		s.metrics.CacheMisses.Add(1)
		s.metrics.JobsCoalesced.Add(1)
		finishAdm("coalesced", nil)
		return s.stamp(j.status()), nil
	}

	if !opt.internal && s.shouldSteal() {
		// The queue has grown past the steal threshold: offer the job to
		// the least-loaded peer instead of queueing it here. It still
		// registers under pending, so identical specs coalesce behind it,
		// and any steal failure re-enters the local queue (cluster.go).
		s.jobs[j.id] = j
		s.pending[key] = []*job{j}
		j.stolen = true
		s.metrics.JobsSubmitted.Add(1)
		s.metrics.CacheMisses.Add(1)
		finishAdm("steal_offered", nil)
		go s.stealOrRun(j)
		return s.stamp(j.status()), nil
	}

	if !s.queue.tryPush(j) {
		s.metrics.JobsRejected.Add(1)
		finishAdm("rejected", ErrQueueFull)
		return JobStatus{}, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.pending[key] = []*job{j}
	s.metrics.JobsSubmitted.Add(1)
	s.metrics.CacheMisses.Add(1)
	s.metrics.QueueDepth.Add(1)
	finishAdm("enqueued", nil)
	return s.stamp(j.status()), nil
}

// Status returns the current status of job id.
func (s *Server) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return s.stamp(j.status()), true
}

// Result returns the stored result JSON for a finished job. The boolean
// reports whether the job exists; a nil slice with a true boolean means
// the job has not produced a result (still in flight, or failed).
func (s *Server) Result(id string) ([]byte, JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, JobStatus{}, false
	}
	return j.result, s.stamp(j.status()), true
}

// Trace returns the telemetry capture of a finished trace job. The
// boolean reports whether the job exists; a nil capture with a true
// boolean means the job captured no trace (not a trace job, still in
// flight, or failed).
func (s *Server) Trace(id string) (*telemetry.Capture, JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, JobStatus{}, false
	}
	return j.capture, j.status(), true
}

// Wait blocks until job id finishes or ctx expires.
func (s *Server) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("unknown job %q", id)
	}
	select {
	case <-j.done:
		st, _ := s.Status(id)
		return st, nil
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown stops intake and drains: workers finish the running jobs and
// everything already queued, then exit. It returns nil once the pool is
// idle, or ctx's error if the deadline expires first (in-flight
// simulations are then abandoned via the base context).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.queue.close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.abort() // cancel in-flight job contexts
		<-done
		return ctx.Err()
	}
}

// reserveSlots sizes a parallel job's engine pool against the daemon's
// worker pool: the job's own worker is one slot, and up to Workers-1
// additional slots are reserved from whatever the pool has free (never
// blocking — a busy pool just clamps the job toward Workers=1). The
// clamp cannot change the job's result, only its wall time: Workers is
// outside the engine's determinism contract and outside the cache key.
// Returns the extra slots held; pass to releaseSlots when done.
func (s *Server) reserveSlots(j *job) int {
	want := j.cfg.Parallel.Workers
	if want <= 0 {
		want = runtime.GOMAXPROCS(0)
	}
	if want > j.cfg.UserCores {
		want = j.cfg.UserCores
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// JobsRunning already counts this job, so its base slot is spoken for.
	free := s.opts.Workers - int(s.metrics.JobsRunning.Load()) - s.reserved
	if free < 0 {
		free = 0
	}
	extra := want - 1
	if extra > free {
		extra = free
	}
	if extra < 0 {
		extra = 0
	}
	s.reserved += extra
	s.metrics.ReservedSlots.Store(int64(s.reserved))
	j.cfg.Parallel.Workers = 1 + extra
	return extra
}

// releaseSlots returns extra slots taken by reserveSlots to the pool.
func (s *Server) releaseSlots(extra int) {
	if extra == 0 {
		return
	}
	s.mu.Lock()
	s.reserved -= extra
	s.metrics.ReservedSlots.Store(int64(s.reserved))
	s.mu.Unlock()
}

// worker consumes the queue until it is closed and drained.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue.ch {
		s.metrics.QueueDepth.Add(-1)
		s.execute(j)
	}
}

// execute runs one job and completes every waiter coalesced behind it.
func (s *Server) execute(j *job) {
	s.mu.Lock()
	j.state = StateRunning
	j.startedAt = s.now()
	s.mu.Unlock()
	s.metrics.ObserveQueueWait(j.startedAt.Sub(j.submittedAt).Seconds())
	// Retro-recorded: the wait is only known once a worker picks the job up.
	s.obs.RecordSpan(j.tctx, "queue_wait", j.id, j.submittedAt, j.startedAt, obs.StatusOK, "", nil)
	s.metrics.JobsRunning.Add(1)
	defer s.metrics.JobsRunning.Add(-1)

	// Two-tier cache, remote leg: before simulating a key this replica
	// does not own, ask the ring owner's cache — a result computed
	// anywhere in the fleet is computed once (cluster.go).
	if res, ok := s.tryPeerFetch(j); ok {
		s.finishJob(j, res, nil, "")
		return
	}

	switch {
	case j.cfg.Parallel.Enabled:
		s.metrics.JobsParallel.Add(1)
		defer s.releaseSlots(s.reserveSlots(j))
	case j.cfg.Sampling.Enabled:
		s.metrics.JobsSampled.Add(1)
	default:
		s.metrics.JobsDetailed.Add(1)
	}
	if j.trace {
		s.metrics.JobsTraced.Add(1)
	}

	ctx := s.baseCtx
	if s.opts.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.JobTimeout)
		defer cancel()
	}

	type outcome struct {
		res sim.Result
		cap *telemetry.Capture
		err error
	}
	if ctx.Err() != nil {
		// Forced shutdown already fired: fail without spawning work.
		s.finishJob(j, nil, nil, fmt.Sprintf("job aborted: %v", ctx.Err()))
		return
	}
	simStart := s.now()
	ch := make(chan outcome, 1)
	go func() {
		if j.trace {
			res, cap, err := s.runTraced(j.cfg, j.telemetryOpts())
			ch <- outcome{res, cap, err}
			return
		}
		res, err := s.runSim(j.cfg)
		ch <- outcome{res, nil, err}
	}()

	var resBytes []byte
	var capture *telemetry.Capture
	var errMsg string
	mode := "detailed"
	switch {
	case j.cfg.Parallel.Enabled:
		mode = "parallel"
	case j.cfg.Sampling.Enabled:
		mode = "sampled"
	}
	select {
	case out := <-ch:
		if out.err != nil {
			errMsg = out.err.Error()
		} else if b, err := json.Marshal(out.res); err != nil {
			errMsg = fmt.Sprintf("encoding result: %v", err)
		} else {
			resBytes = b
			capture = out.cap
			if wall := s.now().Sub(simStart).Seconds(); wall > 0 {
				s.metrics.ObserveSimSpeed(float64(out.res.Instrs) / wall)
			}
			if out.res.OSCores != nil {
				recStart := s.now()
				for _, cs := range out.res.OSCores.PerClass {
					s.metrics.ObserveOSCoreDepth(cs.Class, cs.MeanQueueDepth)
				}
				// The reconcile step folds the finished job's per-class
				// OS-core telemetry back into the live gauges.
				s.obs.RecordSpan(j.tctx, "oscore_reconcile", j.id, recStart, s.now(),
					obs.StatusOK, "", map[string]string{"classes": strconv.Itoa(len(out.res.OSCores.PerClass))})
			}
		}
	case <-ctx.Done():
		// The simulation goroutine cannot be interrupted mid-run; it is
		// abandoned and its eventual result discarded.
		errMsg = fmt.Sprintf("job aborted: %v", ctx.Err())
	}
	simStatus, simErr := obs.StatusOK, ""
	if errMsg != "" {
		simStatus, simErr = obs.StatusError, errMsg
	}
	s.obs.RecordSpan(j.tctx, "sim_execute", j.id, simStart, s.now(), simStatus, simErr,
		map[string]string{"mode": mode})
	if errMsg != "" {
		s.log.Warn("job failed", append(obs.LogContext(j.tctx),
			slog.String("job", j.id), slog.String("error", errMsg))...)
	}

	s.finishJob(j, resBytes, capture, errMsg)
}

// finishJob caches a successful result and completes the job plus every
// waiter coalesced behind its key. Trace jobs never registered under
// pending, so they complete only themselves — but their result (which
// telemetry cannot have perturbed) still back-fills the cache.
func (s *Server) finishJob(j *job, resBytes []byte, capture *telemetry.Capture, errMsg string) {
	if errMsg == "" {
		s.cache.put(j.key, resBytes)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.trace {
		j.capture = capture
		s.completeLocked(j, resBytes, errMsg)
		return
	}
	waiters := s.pending[j.key]
	delete(s.pending, j.key)
	for _, w := range waiters {
		s.completeLocked(w, resBytes, errMsg)
	}
}

// completeLocked finishes one job. Caller holds s.mu.
func (s *Server) completeLocked(j *job, res []byte, errMsg string) {
	if j.state == StateDone || j.state == StateFailed {
		return
	}
	j.finishedAt = s.now()
	if errMsg != "" {
		j.state = StateFailed
		j.err = errMsg
		s.metrics.JobsFailed.Add(1)
	} else {
		j.state = StateDone
		j.result = res
		s.metrics.JobsCompleted.Add(1)
	}
	s.metrics.ObserveJobLatency(j.finishedAt.Sub(j.submittedAt).Seconds())
	close(j.done)
}
