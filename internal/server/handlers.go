package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"

	"offloadsim/internal/obs"
	"offloadsim/internal/sim"
	"offloadsim/internal/telemetry"
)

// Handler returns the daemon's HTTP API:
//
//	POST /v1/jobs         submit a JobSpec; 202 queued, 200 cache hit,
//	                      400 invalid, 429 queue full, 503 draining
//	GET  /v1/jobs/{id}    job status
//	GET  /v1/results/{id} result JSON of a finished job
//	GET  /v1/traces/{id}  telemetry trace of a finished trace job
//	                      (?format=chrome|jsonl, default chrome)
//	GET  /healthz         liveness (503 once draining)
//	GET  /metrics         Prometheus text metrics
//
// Fleet endpoints (docs/CLUSTER.md):
//
//	POST /v1/sweeps                  decompose a parameter grid across the
//	                                 fleet; streams NDJSON point results
//	GET  /v1/sweeps/{id}             sweep progress
//	GET  /v1/peer/results/{key}      peer cache probe (404 = not cached)
//	POST /v1/peer/execute            synchronous execution for a peer
//	GET  /v1/peer/load               queue-depth report for victim selection
//	GET  /v1/peer/spans/{traceid}    this replica's spans of one service trace
//
// Debug endpoints (docs/OBSERVABILITY.md; traces require Obs.Tracing):
//
//	GET  /v1/debug/traces/{id}  fleet-stitched service trace of a job,
//	                            sweep or raw trace ID
//	                            (?format=chrome|json|jsonl, default chrome)
//	GET  /v1/debug/ring         ring membership and key ownership counts
//	GET  /v1/debug/cache        result-cache contents and tier statistics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	mux.HandleFunc("GET /v1/traces/{id}", s.handleTrace)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepStatus)
	mux.HandleFunc("GET /v1/peer/results/{key}", s.handlePeerResult)
	mux.HandleFunc("POST /v1/peer/execute", s.handlePeerExecute)
	mux.HandleFunc("GET /v1/peer/load", s.handlePeerLoad)
	mux.HandleFunc("GET /v1/peer/spans/{traceid}", s.handlePeerSpans)
	mux.HandleFunc("GET /v1/debug/traces/{id}", s.handleDebugTrace)
	mux.HandleFunc("GET /v1/debug/ring", s.handleDebugRing)
	mux.HandleFunc("GET /v1/debug/cache", s.handleDebugCache)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "reading job spec: " + err.Error()})
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "malformed job spec: " + err.Error()})
		return
	}
	// The canonical key is needed twice — ring routing and trace-ID
	// derivation — so compute it once. Invalid specs skip both (they are
	// never forwarded and never traced); Submit reproduces the 400.
	var key string
	cfg, cfgErr := spec.Config()
	if cfgErr == nil {
		key, cfgErr = sim.CanonicalKey(cfg)
	}
	internal := r.Header.Get(internalHeader) != ""

	// Root span of the service trace. A forwarded submission carries the
	// first replica's traceparent, so the owner's request span nests under
	// the forwarder's peer_forward span instead of opening a second trace.
	var reqSpan *obs.ActiveSpan
	if s.obs != nil && cfgErr == nil {
		parent, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceHeader))
		if !ok {
			parent = obs.RootContext(obs.TraceID(key, s.admissions.Add(1)))
		}
		reqSpan = s.obs.StartSpan(parent, "request")
	}
	sc := reqSpan.Context()

	if s.cluster != nil && cfgErr == nil {
		owner := s.cluster.owner(key)
		route, rrStatus, rrErr := "local", obs.StatusOK, ""
		if owner != s.cluster.self {
			if internal {
				// Loop guard: an internally-marked request for a key this
				// replica does not own would forward forever under a
				// disagreeing ring view. Execute locally and flag it.
				rrStatus = obs.StatusError
				rrErr = "loop guard: internal submission for a key owned by " + owner + "; executing locally"
				s.log.Warn("ring loop guard tripped", append(obs.LogContext(sc),
					slog.String("owner", owner), slog.String("self", s.cluster.self))...)
			} else {
				route = "forward"
			}
		}
		if s.obs != nil {
			attrs := map[string]string{"owner": owner, "route": route}
			if rrErr != "" {
				attrs["loop_guard"] = "true"
			}
			at := s.now()
			s.obs.RecordSpan(sc, "ring_route", "", at, at, rrStatus, rrErr, attrs)
		}
		if route == "forward" {
			s.forwardSubmit(w, r, owner, body, sc)
			reqSpan.End()
			return
		}
	}

	st, err := s.submit(spec, submitOpts{sc: sc})
	finishReq := func(code int, errMsg string) {
		if reqSpan == nil {
			return
		}
		reqSpan.SetAttr("code", strconv.Itoa(code))
		if errMsg != "" {
			reqSpan.SetError(errMsg)
		}
		reqSpan.End()
	}
	switch {
	case errors.Is(err, ErrQueueFull):
		finishReq(http.StatusTooManyRequests, err.Error())
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
		return
	case errors.Is(err, ErrDraining):
		finishReq(http.StatusServiceUnavailable, err.Error())
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		return
	case err != nil:
		finishReq(http.StatusBadRequest, err.Error())
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	code := http.StatusAccepted
	if st.Cached {
		code = http.StatusOK // served from cache, already done
	}
	finishReq(code, "")
	writeJSON(w, code, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, st, ok := s.Result(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	switch st.State {
	case StateDone:
		// The stored bytes are written verbatim so identical configs get
		// byte-identical result documents.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(res)
	case StateFailed:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: st.Error})
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusConflict, apiError{Error: "job not finished: " + string(st.State)})
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	cap, st, ok := s.Trace(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	if !st.Traced {
		writeJSON(w, http.StatusNotFound, apiError{Error: "job was not submitted with \"trace\": true"})
		return
	}
	switch st.State {
	case StateDone:
	case StateFailed:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: st.Error})
		return
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusConflict, apiError{Error: "job not finished: " + string(st.State)})
		return
	}
	if cap == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no trace captured"})
		return
	}
	var sink telemetry.Sink
	switch format := r.URL.Query().Get("format"); format {
	case "", "chrome":
		// Loadable directly in Perfetto / chrome://tracing.
		w.Header().Set("Content-Type", "application/json")
		sink = telemetry.NewChromeSink(w)
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		sink = telemetry.NewJSONLSink(w)
	default:
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("unknown format %q (chrome, jsonl)", format)})
		return
	}
	// Export streams straight to the response; encoding errors past the
	// header can only be reported by aborting the body.
	_ = telemetry.Export(cap, sink)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// The ring-ownership gauge is a cache scan; refresh it per scrape
	// rather than on every cache mutation. Trace-store health likewise.
	s.metrics.RingOwnedKeys.Store(s.ownedCachedKeys())
	if s.obs != nil {
		s.metrics.SetTraceStats(s.obs.Stats())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = s.metrics.WriteTo(w)
}
