package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"offloadsim/internal/sim"
	"offloadsim/internal/telemetry"
)

// Handler returns the daemon's HTTP API:
//
//	POST /v1/jobs         submit a JobSpec; 202 queued, 200 cache hit,
//	                      400 invalid, 429 queue full, 503 draining
//	GET  /v1/jobs/{id}    job status
//	GET  /v1/results/{id} result JSON of a finished job
//	GET  /v1/traces/{id}  telemetry trace of a finished trace job
//	                      (?format=chrome|jsonl, default chrome)
//	GET  /healthz         liveness (503 once draining)
//	GET  /metrics         Prometheus text metrics
//
// Fleet endpoints (docs/CLUSTER.md):
//
//	POST /v1/sweeps                  decompose a parameter grid across the
//	                                 fleet; streams NDJSON point results
//	GET  /v1/sweeps/{id}             sweep progress
//	GET  /v1/peer/results/{key}      peer cache probe (404 = not cached)
//	POST /v1/peer/execute            synchronous execution for a peer
//	GET  /v1/peer/load               queue-depth report for victim selection
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	mux.HandleFunc("GET /v1/traces/{id}", s.handleTrace)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepStatus)
	mux.HandleFunc("GET /v1/peer/results/{key}", s.handlePeerResult)
	mux.HandleFunc("POST /v1/peer/execute", s.handlePeerExecute)
	mux.HandleFunc("GET /v1/peer/load", s.handlePeerLoad)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "reading job spec: " + err.Error()})
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "malformed job spec: " + err.Error()})
		return
	}
	// Consistent-hash routing: a submission that reaches the wrong replica
	// is proxied to the key's ring owner, so each key's cache entry lives
	// on exactly one shard. Replica-to-replica traffic carries
	// internalHeader and is never forwarded again.
	if s.cluster != nil && r.Header.Get(internalHeader) == "" {
		if cfg, err := spec.Config(); err == nil {
			if key, err := sim.CanonicalKey(cfg); err == nil {
				if owner := s.cluster.owner(key); owner != s.cluster.self {
					s.forwardSubmit(w, r, owner, body)
					return
				}
			}
		}
		// Invalid specs fall through: Submit produces the 400.
	}
	st, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
		return
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	code := http.StatusAccepted
	if st.Cached {
		code = http.StatusOK // served from cache, already done
	}
	writeJSON(w, code, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, st, ok := s.Result(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	switch st.State {
	case StateDone:
		// The stored bytes are written verbatim so identical configs get
		// byte-identical result documents.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(res)
	case StateFailed:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: st.Error})
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusConflict, apiError{Error: "job not finished: " + string(st.State)})
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	cap, st, ok := s.Trace(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	if !st.Traced {
		writeJSON(w, http.StatusNotFound, apiError{Error: "job was not submitted with \"trace\": true"})
		return
	}
	switch st.State {
	case StateDone:
	case StateFailed:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: st.Error})
		return
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusConflict, apiError{Error: "job not finished: " + string(st.State)})
		return
	}
	if cap == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no trace captured"})
		return
	}
	var sink telemetry.Sink
	switch format := r.URL.Query().Get("format"); format {
	case "", "chrome":
		// Loadable directly in Perfetto / chrome://tracing.
		w.Header().Set("Content-Type", "application/json")
		sink = telemetry.NewChromeSink(w)
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		sink = telemetry.NewJSONLSink(w)
	default:
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("unknown format %q (chrome, jsonl)", format)})
		return
	}
	// Export streams straight to the response; encoding errors past the
	// header can only be reported by aborting the body.
	_ = telemetry.Export(cap, sink)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// The ring-ownership gauge is a cache scan; refresh it per scrape
	// rather than on every cache mutation.
	s.metrics.RingOwnedKeys.Store(s.ownedCachedKeys())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = s.metrics.WriteTo(w)
}
