package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"offloadsim/internal/cluster"
	"offloadsim/internal/sim"
)

// fleetReplica is one in-process fleet member: a Server plus its HTTP
// listener, with the simulation entry point wrapped to count how many
// simulations this replica actually executed.
type fleetReplica struct {
	srv      *Server
	ts       *httptest.Server
	addr     string
	executes atomic.Int64
}

// fleet is an in-process N-replica offsimd deployment on loopback
// listeners, wired exactly like production: static membership, HTTP
// coordination, every replica serving the same Handler().
type fleet struct {
	reps []*fleetReplica
	ring *cluster.Ring
}

// newFleet boots n replicas. Listeners are bound before any server is
// built so every replica knows the full membership up front; mutate
// (optional) adjusts one replica's Options before construction.
func newFleet(t *testing.T, n int, mutate func(i int, o *Options)) *fleet {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = "http://" + ln.Addr().String()
	}
	ring, err := cluster.NewRing(addrs, 0)
	if err != nil {
		t.Fatalf("ring: %v", err)
	}
	fl := &fleet{ring: ring}
	for i := 0; i < n; i++ {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		mem, err := cluster.ParseMembership(addrs[i], peers)
		if err != nil {
			t.Fatalf("membership: %v", err)
		}
		opts := Options{
			QueueSize: 64,
			Workers:   4,
			Cluster:   ClusterOptions{Membership: mem, StealThreshold: -1},
		}
		if mutate != nil {
			mutate(i, &opts)
		}
		rep := &fleetReplica{addr: addrs[i]}
		rep.srv = New(opts)
		inner := rep.srv.runSim
		rep.srv.runSim = func(c sim.Config) (sim.Result, error) {
			rep.executes.Add(1)
			return inner(c)
		}
		rep.srv.Start()
		ts := httptest.NewUnstartedServer(rep.srv.Handler())
		ts.Listener.Close()
		ts.Listener = lns[i]
		ts.Start()
		rep.ts = ts
		fl.reps = append(fl.reps, rep)
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = rep.srv.Shutdown(ctx)
		})
	}
	return fl
}

// byAddr returns the replica advertising addr.
func (f *fleet) byAddr(t *testing.T, addr string) *fleetReplica {
	t.Helper()
	for _, r := range f.reps {
		if r.addr == addr {
			return r
		}
	}
	t.Fatalf("no replica at %s", addr)
	return nil
}

// keyOf computes spec's canonical key.
func keyOf(t *testing.T, spec JobSpec) string {
	t.Helper()
	cfg, err := spec.Config()
	if err != nil {
		t.Fatalf("spec config: %v", err)
	}
	key, err := sim.CanonicalKey(cfg)
	if err != nil {
		t.Fatalf("canonical key: %v", err)
	}
	return key
}

// specOwnedBy scans seeds for a small spec whose ring owner is the
// replica at ownerIdx, starting after *cursor so repeated calls yield
// distinct specs.
func (f *fleet) specOwnedBy(t *testing.T, ownerIdx int, cursor *uint64) JobSpec {
	t.Helper()
	for seed := *cursor + 1; seed < *cursor+10_000; seed++ {
		spec := smallSpec(seed)
		if f.ring.Owner(keyOf(t, spec)) == f.reps[ownerIdx].addr {
			*cursor = seed
			return spec
		}
	}
	t.Fatalf("no spec owned by replica %d in 10000 seeds", ownerIdx)
	return JobSpec{}
}

// waitJob polls replica rep for job id until it is terminal.
func waitJob(t *testing.T, rep *fleetReplica, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(rep.addr + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET /v1/jobs/%s: %v", id, err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding status: %v", err)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

// TestFleetRoutingLandsOnOwner submits jobs to one replica and checks
// every job executes (and caches) on its consistent-hash ring owner,
// with the submission response naming that owner so clients poll the
// right replica.
func TestFleetRoutingLandsOnOwner(t *testing.T) {
	fl := newFleet(t, 3, nil)

	forwarded := 0
	for seed := uint64(1); seed <= 8; seed++ {
		spec := smallSpec(seed)
		key := keyOf(t, spec)
		owner := fl.ring.Owner(key)
		body, _ := json.Marshal(spec)
		code, st, apiErr := postJob(t, fl.reps[0].ts, body)
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("seed %d: HTTP %d (%s)", seed, code, apiErr.Error)
		}
		if st.Replica != owner {
			t.Fatalf("seed %d: landed on %s, ring owner is %s", seed, st.Replica, owner)
		}
		if owner != fl.reps[0].addr {
			forwarded++
		}
		ownerRep := fl.byAddr(t, owner)
		fin := waitJob(t, ownerRep, st.ID)
		if fin.State != StateDone {
			t.Fatalf("seed %d: job failed: %s", seed, fin.Error)
		}
		// The cache entry must live on the owner shard: the peer cache
		// probe answers 200 there.
		resp, err := http.Get(owner + "/v1/peer/results/" + key)
		if err != nil {
			t.Fatalf("peer probe: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: owner %s peer probe returned %d, want 200", seed, owner, resp.StatusCode)
		}
	}
	if forwarded == 0 {
		t.Fatal("all 8 specs hashed to replica 0; test needs at least one forwarded submission")
	}
	m := scrapeMetrics(t, fl.reps[0].ts)
	if got := int(m["offsimd_jobs_forwarded_total"]); got != forwarded {
		t.Fatalf("replica 0 forwarded %d jobs, metrics say %d", forwarded, got)
	}
}

// TestFleetPeerCacheHit covers the two-tier cache's remote leg: after
// the owner computes a result, a different replica asked to execute the
// identical config serves it from the owner's cache over HTTP instead
// of simulating again.
func TestFleetPeerCacheHit(t *testing.T) {
	fl := newFleet(t, 3, nil)
	var cursor uint64
	spec := fl.specOwnedBy(t, 1, &cursor)
	body, _ := json.Marshal(spec)

	// Compute once on the owner.
	code, st, apiErr := postJob(t, fl.reps[1].ts, body)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("owner submit: HTTP %d (%s)", code, apiErr.Error)
	}
	if fin := waitJob(t, fl.reps[1], st.ID); fin.State != StateDone {
		t.Fatalf("owner job failed: %s", fin.Error)
	}
	_, ownerRes := getResult(t, fl.reps[1].ts, st.ID)

	// Force a recompute attempt on a non-owner via the internal execute
	// endpoint (which never forwards): it must fetch, not simulate.
	before := fl.reps[2].executes.Load()
	resp, err := http.Post(fl.reps[2].addr+"/v1/peer/execute", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("peer execute: %v", err)
	}
	peerRes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer execute: HTTP %d: %s", resp.StatusCode, peerRes)
	}
	if !bytes.Equal(peerRes, ownerRes) {
		t.Fatalf("peer-served result differs from owner's:\n%s\nvs\n%s", peerRes, ownerRes)
	}
	if got := fl.reps[2].executes.Load(); got != before {
		t.Fatalf("non-owner simulated %d times; want 0 (peer cache hit)", got-before)
	}
	m := scrapeMetrics(t, fl.reps[2].ts)
	if m["offsimd_peer_cache_hits_total"] < 1 {
		t.Fatalf("peer cache hit not counted: %v", m["offsimd_peer_cache_hits_total"])
	}
}

// TestFleetStealUnderOverload saturates one replica (single worker
// wedged, queue past the steal threshold) and checks overflow jobs are
// executed by less-loaded peers while the owner is stuck, then that
// everything drains once the owner recovers.
func TestFleetStealUnderOverload(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }

	fl := newFleet(t, 3, func(i int, o *Options) {
		if i == 0 {
			o.Workers = 1
			o.Cluster.StealThreshold = 1
		}
	})
	t.Cleanup(openGate)
	// Replica 0's simulations block until the gate opens; peers simulate
	// normally, so stolen work finishes while the owner is wedged.
	inner := fl.reps[0].srv.runSim
	fl.reps[0].srv.runSim = func(c sim.Config) (sim.Result, error) {
		<-gate
		return inner(c)
	}

	var cursor uint64
	var ids []string
	stolen := 0
	for i := 0; i < 8; i++ {
		spec := fl.specOwnedBy(t, 0, &cursor)
		body, _ := json.Marshal(spec)
		code, st, apiErr := postJob(t, fl.reps[0].ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d (%s)", i, code, apiErr.Error)
		}
		ids = append(ids, st.ID)
		if st.Stolen {
			stolen++
		}
	}
	if stolen == 0 {
		t.Fatal("no submissions entered the steal path with a wedged single-worker owner and threshold 1")
	}

	// While the owner's only worker is still wedged, peers must pick up
	// and finish stolen work.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var victimSims int64
		for _, rep := range fl.reps[1:] {
			victimSims += rep.executes.Load()
		}
		if victimSims >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no victim executed a stolen job within 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	m := scrapeMetrics(t, fl.reps[0].ts)
	if m["offsimd_jobs_stolen_total"] < 1 {
		t.Fatalf("offsimd_jobs_stolen_total = %v, want >= 1", m["offsimd_jobs_stolen_total"])
	}
	var peerExecs float64
	for _, rep := range fl.reps[1:] {
		peerExecs += scrapeMetrics(t, rep.ts)["offsimd_peer_executes_total"]
	}
	if peerExecs < 1 {
		t.Fatalf("victims report %v peer executes, want >= 1", peerExecs)
	}
	if fl.reps[0].executes.Load() != 0 {
		t.Fatal("wedged owner completed a simulation; the gate is broken")
	}

	// Unwedge; every admitted job (stolen or queued) must drain.
	openGate()
	for _, id := range ids {
		if fin := waitJob(t, fl.reps[0], id); fin.State != StateDone {
			t.Fatalf("job %s failed: %s", id, fin.Error)
		}
	}
}

// sweepBody is the 64-point Figure-4-style grid used by the sweep
// tests: 2 workloads x 2 policies x 4 thresholds x 4 latencies, with
// normalization off so fleet-wide execute accounting is exact.
func sweepBody() []byte {
	return []byte(`{
		"workloads": ["apache", "derby"],
		"policies": ["HI", "SI"],
		"thresholds": [50, 100, 150, 200],
		"latencies": [50, 100, 150, 200],
		"warmup_instrs": 0,
		"measure_instrs": 20000,
		"seed": 1,
		"normalize": false,
		"concurrency": 8
	}`)
}

// sweepProgress mirrors cluster.Progress for decoding; kept local so
// the test reads like an external client.
type sweepProgress struct {
	ID       string `json:"id"`
	Total    int    `json:"total"`
	Done     int    `json:"done"`
	Failed   int    `json:"failed"`
	Complete bool   `json:"complete"`
}

// runSweep POSTs body to rep and returns the parsed NDJSON stream:
// sweep id, raw point lines (in order) and the trailing progress line.
func runSweep(t *testing.T, rep *fleetReplica, body []byte) (string, []string, sweepProgress) {
	t.Helper()
	resp, err := http.Post(rep.addr+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/sweeps: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/sweeps: HTTP %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("sweep Content-Type = %q", ct)
	}
	id := resp.Header.Get("X-Offsimd-Sweep-Id")
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading sweep stream: %v", err)
	}
	if len(lines) < 2 {
		t.Fatalf("sweep stream too short: %d lines", len(lines))
	}
	var hdr sweepHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("decoding sweep header %q: %v", lines[0], err)
	}
	if hdr.SweepID != id {
		t.Fatalf("header sweep id %q != response header %q", hdr.SweepID, id)
	}
	var prog sweepProgress
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &prog); err != nil {
		t.Fatalf("decoding sweep trailer %q: %v", lines[len(lines)-1], err)
	}
	return id, lines[1 : len(lines)-1], prog
}

// TestFleetSweepExactlyOnce drives the acceptance scenario: a 64-point
// sweep POSTed to one replica of a 3-replica fleet is computed exactly
// once fleet-wide, streams every point in index order, and its point
// lines are byte-identical to the same sweep on a single replica.
func TestFleetSweepExactlyOnce(t *testing.T) {
	fl := newFleet(t, 3, nil)
	id, lines, prog := runSweep(t, fl.reps[0], sweepBody())
	if len(lines) != 64 {
		t.Fatalf("streamed %d point lines, want 64", len(lines))
	}
	for i, line := range lines {
		var pr struct {
			Index  int    `json:"index"`
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal([]byte(line), &pr); err != nil {
			t.Fatalf("decoding point line %d: %v", i, err)
		}
		if pr.Index != i {
			t.Fatalf("line %d carries index %d; the stream must emit each index exactly once, in order", i, pr.Index)
		}
		if pr.Status != "done" {
			t.Fatalf("point %d failed: %s", pr.Index, pr.Error)
		}
	}
	if !prog.Complete || prog.Done != 64 || prog.Failed != 0 {
		t.Fatalf("trailer progress = %+v, want 64 done / complete", prog)
	}

	// Exactly once fleet-wide: per-replica execute counts sum to the
	// grid size, and more than one replica did the computing.
	var total int64
	busy := 0
	for i, rep := range fl.reps {
		n := rep.executes.Load()
		t.Logf("replica %d executed %d points", i, n)
		total += n
		if n > 0 {
			busy++
		}
	}
	if total != 64 {
		t.Fatalf("fleet executed %d simulations for a 64-point sweep, want exactly 64", total)
	}
	if busy < 2 {
		t.Fatalf("only %d replica(s) executed work; fan-out did not spread the grid", busy)
	}

	// The finished sweep stays pollable.
	resp, err := http.Get(fl.reps[0].addr + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatalf("GET /v1/sweeps/%s: %v", id, err)
	}
	var polled sweepProgress
	if err := json.NewDecoder(resp.Body).Decode(&polled); err != nil {
		t.Fatalf("decoding progress: %v", err)
	}
	resp.Body.Close()
	if !polled.Complete || polled.Done != 64 {
		t.Fatalf("polled progress = %+v, want 64 done / complete", polled)
	}

	// A cross-replica recompute attempt of an already-computed point is
	// served from the owner's cache: zero extra simulations fleet-wide.
	zero := uint64(0)
	meas := uint64(20_000)
	one := uint64(1)
	n := 50
	lat := 50
	spec := JobSpec{
		Workload: "apache", Policy: "HI", Threshold: &n, LatencyCycles: &lat,
		WarmupInstrs: &zero, MeasureInstrs: &meas, Seed: &one,
	}
	body, _ := json.Marshal(spec)
	owner := fl.ring.Owner(keyOf(t, spec))
	var nonOwner *fleetReplica
	for _, rep := range fl.reps {
		if rep.addr != owner {
			nonOwner = rep
			break
		}
	}
	pe, err := http.Post(nonOwner.addr+"/v1/peer/execute", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("peer execute: %v", err)
	}
	peRes, _ := io.ReadAll(pe.Body)
	pe.Body.Close()
	if pe.StatusCode != http.StatusOK {
		t.Fatalf("peer execute: HTTP %d: %s", pe.StatusCode, peRes)
	}
	var after int64
	for _, rep := range fl.reps {
		after += rep.executes.Load()
	}
	if after != 64 {
		t.Fatalf("recompute attempt simulated: fleet total went from 64 to %d", after)
	}
	var peerHits float64
	for _, rep := range fl.reps {
		peerHits += scrapeMetrics(t, rep.ts)["offsimd_peer_cache_hits_total"]
	}
	if peerHits < 1 {
		t.Fatalf("offsimd_peer_cache_hits_total = %v fleet-wide, want > 0", peerHits)
	}

	// Determinism across fleet shapes: a single-replica fleet streams
	// byte-identical point lines for the same grid.
	solo := newFleet(t, 1, nil)
	_, soloLines, _ := runSweep(t, solo.reps[0], sweepBody())
	if len(soloLines) != len(lines) {
		t.Fatalf("single-replica sweep streamed %d lines, fleet streamed %d", len(soloLines), len(lines))
	}
	for i := range lines {
		if lines[i] != soloLines[i] {
			t.Fatalf("point line %d differs between 3-replica and 1-replica sweeps:\n%s\nvs\n%s",
				i, lines[i], soloLines[i])
		}
	}
}

// TestFleetMetricsAudit checks (a) every fleet metric is registered in
// the exposition, (b) sweep fan-out and peer executes count into the
// canonical queue metrics, (c) label cardinality stays bounded — the
// only labeled series are histogram buckets with the single "le"
// label — and (d) ring-ownership gauges reconcile with shard placement.
func TestFleetMetricsAudit(t *testing.T) {
	fl := newFleet(t, 3, nil)
	body := []byte(`{
		"workloads": ["apache"],
		"policies": ["HI"],
		"thresholds": [50, 100, 150, 200],
		"warmup_instrs": 0,
		"measure_instrs": 20000,
		"normalize": false
	}`)
	_, lines, _ := runSweep(t, fl.reps[0], body)
	if len(lines) != 4 {
		t.Fatalf("streamed %d point lines, want 4", len(lines))
	}

	registered := []string{
		"offsimd_peer_cache_hits_total",
		"offsimd_peer_cache_misses_total",
		"offsimd_jobs_stolen_total",
		"offsimd_peer_executes_total",
		"offsimd_jobs_forwarded_total",
		"offsimd_sweeps_total",
		"offsimd_sweep_points_total",
		"offsimd_ring_owned_keys",
		"offsimd_queue_depth_jobs",
		"offsimd_queue_wait_seconds_count",
		"offsimd_job_latency_seconds_count",
		"offsimd_trace_store_traces",
		"offsimd_trace_store_spans",
		"offsimd_spans_recorded_total",
		"offsimd_spans_dropped_total",
		"offsimd_traces_evicted_total",
		"offsimd_go_goroutines",
		"offsimd_go_heap_bytes",
		"offsimd_go_gc_cycles_total",
		"offsimd_go_gc_pause_seconds_total",
	}
	// The PR-5 deprecated unsuffixed aliases must be gone for good.
	deprecated := []string{"offsimd_queue_depth ", "offsimd_reserved_slots "}
	var submitted, queueWaits, owned float64
	for i, rep := range fl.reps {
		resp, err := http.Get(rep.addr + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		text := string(raw)
		for _, name := range registered {
			if !strings.Contains(text, "\n"+name+" ") && !strings.HasPrefix(text, name+" ") {
				t.Fatalf("replica %d: metric %s not exposed", i, name)
			}
		}
		for _, name := range deprecated {
			if strings.Contains(text, "\n"+name) {
				t.Fatalf("replica %d: removed deprecated alias %sstill exposed", i, name)
			}
		}
		for _, line := range strings.Split(text, "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			open := strings.IndexByte(line, '{')
			if open < 0 {
				continue
			}
			end := strings.IndexByte(line, '}')
			if end < open {
				t.Fatalf("replica %d: malformed series %q", i, line)
			}
			labels := line[open+1 : end]
			if strings.HasPrefix(line, "offsimd_oscore_queue_depth{") {
				// The one labeled gauge: its class label is drawn from the
				// fixed syscall-category set (cardinality-guarded at the
				// observe site), never composed with other labels.
				if !strings.HasPrefix(labels, `class="`) || strings.Contains(labels, ",") {
					t.Fatalf("replica %d: unexpected label set %q in %q (only a single class= label allowed)", i, labels, line)
				}
				continue
			}
			if !strings.HasPrefix(labels, `le="`) || strings.Contains(labels, ",") {
				t.Fatalf("replica %d: unexpected label set %q in %q (only le= buckets allowed)", i, labels, line)
			}
		}
		m := scrapeMetrics(t, rep.ts)
		submitted += m["offsimd_jobs_submitted_total"]
		queueWaits += m["offsimd_queue_wait_seconds_count"]
		owned += m["offsimd_ring_owned_keys"]
	}
	// Each of the 4 points was submitted exactly once fleet-wide and
	// went through exactly one replica's queue: sweeps route, they
	// don't duplicate.
	if submitted < 4 {
		t.Fatalf("fleet-wide jobs_submitted_total = %v, want >= 4", submitted)
	}
	if queueWaits < 4 {
		t.Fatalf("fleet-wide queue_wait observations = %v, want >= 4 (sweep work must flow through the canonical queue)", queueWaits)
	}
	// Every computed point is cached on its ring owner and nowhere
	// else, so the ownership gauges sum to the number of distinct keys.
	if owned != 4 {
		t.Fatalf("fleet-wide ring_owned_keys = %v, want 4 (one shard owner per key)", owned)
	}
	m := scrapeMetrics(t, fl.reps[0].ts)
	if m["offsimd_sweeps_total"] != 1 || m["offsimd_sweep_points_total"] != 4 {
		t.Fatalf("sweep counters = %v sweeps / %v points, want 1 / 4",
			m["offsimd_sweeps_total"], m["offsimd_sweep_points_total"])
	}
}
