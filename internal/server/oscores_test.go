package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"offloadsim/internal/sim"
)

// TestOSCoreJobEndToEnd submits a multi-OS-core async job over HTTP,
// checks the result document carries the cluster provenance block, and
// verifies the per-class queue-depth gauge appears on /metrics with the
// bounded class label.
func TestOSCoreJobEndToEnd(t *testing.T) {
	srv := New(Options{QueueSize: 8, Workers: 2})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	spec := smallSpec(1)
	spec.Cores = 2
	spec.OSCores = 2
	spec.Affinity = "file=0,network=1,*=0"
	spec.Asymmetry = "1,0.5"
	spec.Async = true
	body, _ := json.Marshal(spec)
	code, st, apiErr := postJob(t, ts, body)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("POST: HTTP %d (%s)", code, apiErr.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	fin, err := srv.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("waiting: %v", err)
	}
	if fin.State != StateDone {
		t.Fatalf("job state %s (err %q)", fin.State, fin.Error)
	}
	rcode, raw := getResult(t, ts, st.ID)
	if rcode != http.StatusOK {
		t.Fatalf("result: HTTP %d: %s", rcode, raw)
	}
	var res sim.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if res.OSCores == nil {
		t.Fatal("result missing OSCores provenance block")
	}
	if res.OSCores.K != 2 || !res.OSCores.Async {
		t.Errorf("provenance K=%d async=%v, want K=2 async", res.OSCores.K, res.OSCores.Async)
	}
	if len(res.OSCores.PerClass) == 0 {
		t.Fatal("provenance has no per-class stats")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	rawMetrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(rawMetrics)
	if !strings.Contains(text, `offsimd_oscore_queue_depth{class="file"}`) {
		t.Errorf("metrics missing per-class queue-depth gauge:\n%s", text)
	}
	classes := 0
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "offsimd_oscore_queue_depth{") {
			classes++
		}
	}
	if classes == 0 || classes > 8 {
		t.Errorf("oscore gauge series count %d outside (0, 8]", classes)
	}
}

// TestOSCoreSpecValidation: bad cluster specs bounce with 400 before any
// simulation is queued; distinct cluster shapes must not share a cache
// key.
func TestOSCoreSpecValidation(t *testing.T) {
	bad := []func(*JobSpec){
		func(s *JobSpec) { s.OSCores = -1 },
		func(s *JobSpec) { s.OSCores = 2; s.Affinity = "file=7" },
		func(s *JobSpec) { s.OSCores = 2; s.Affinity = "disk=0" },
		func(s *JobSpec) { s.OSCores = 2; s.Asymmetry = "1,0.5,0.5" },
		func(s *JobSpec) { s.OSCores = 2; s.Asymmetry = "1,1e9" },
	}
	for i, mut := range bad {
		spec := smallSpec(1)
		mut(&spec)
		if _, err := spec.Config(); err == nil {
			t.Errorf("bad spec %d: Config() accepted %+v", i, spec)
		}
	}

	base := smallSpec(1)
	baseCfg, err := base.Config()
	if err != nil {
		t.Fatal(err)
	}
	cluster := smallSpec(1)
	cluster.OSCores = 2
	clusterCfg, err := cluster.Config()
	if err != nil {
		t.Fatal(err)
	}
	baseKey, err := sim.CanonicalKey(baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	clusterKey, err := sim.CanonicalKey(clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	if baseKey == clusterKey {
		t.Error("K=2 cluster spec shares a cache key with the single-OS-core spec")
	}

	// os_cores=1 spelled out is the classic model: same key as omitting it.
	one := smallSpec(1)
	one.OSCores = 1
	oneCfg, err := one.Config()
	if err != nil {
		t.Fatal(err)
	}
	oneKey, err := sim.CanonicalKey(oneCfg)
	if err != nil {
		t.Fatal(err)
	}
	if baseKey != oneKey {
		t.Error("explicit os_cores=1 changed the cache key")
	}
}

// TestOSCoreDepthGaugeGuard: the observe-site cardinality guard drops
// class names outside the fixed category set.
func TestOSCoreDepthGaugeGuard(t *testing.T) {
	m := NewMetrics()
	m.ObserveOSCoreDepth("file", 1.5)
	m.ObserveOSCoreDepth("bogus", 9)
	m.ObserveOSCoreDepth(`evil"} hack{`, 9)
	var sb strings.Builder
	if _, err := m.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `offsimd_oscore_queue_depth{class="file"} 1.5`) {
		t.Errorf("gauge missing accepted class:\n%s", out)
	}
	if strings.Contains(out, "bogus") || strings.Contains(out, "evil") {
		t.Errorf("gauge leaked unknown class labels:\n%s", out)
	}
}
