package server

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"offloadsim/internal/cluster"
	"offloadsim/internal/obs"
	"offloadsim/internal/sim"
)

// stubFleet is one real traced replica whose peers are stub HTTP
// handlers under test control — the rig for exercising peer-call
// failure paths (timeouts, 5xx, backpressure) deterministically, and
// for asserting both the job outcome and the span the failure emitted.
type stubFleet struct {
	srv   *Server
	ts    *httptest.Server
	self  string
	peers []string
	ring  *cluster.Ring
}

func newStubFleet(t *testing.T, stubs []http.Handler, mutate func(*Options)) *stubFleet {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	self := "http://" + ln.Addr().String()
	peers := make([]string, len(stubs))
	for i, h := range stubs {
		ps := httptest.NewServer(h)
		t.Cleanup(ps.Close)
		peers[i] = ps.URL
	}
	mem, err := cluster.ParseMembership(self, peers)
	if err != nil {
		t.Fatalf("membership: %v", err)
	}
	opts := Options{
		QueueSize: 64,
		Workers:   4,
		Cluster:   ClusterOptions{Membership: mem, StealThreshold: -1},
		Obs:       ObsOptions{Tracing: true},
	}
	if mutate != nil {
		mutate(&opts)
	}
	srv := New(opts)
	srv.Start()
	ts := httptest.NewUnstartedServer(srv.Handler())
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	ring, err := cluster.NewRing(append([]string{self}, peers...), 0)
	if err != nil {
		t.Fatalf("ring: %v", err)
	}
	return &stubFleet{srv: srv, ts: ts, self: self, peers: peers, ring: ring}
}

// specOwnedByPeer scans seeds for a spec whose ring owner is peer i.
func (sf *stubFleet) specOwnedByPeer(t *testing.T, i int) JobSpec {
	t.Helper()
	for seed := uint64(1); seed < 10_000; seed++ {
		spec := smallSpec(seed)
		if sf.ring.Owner(keyOf(t, spec)) == sf.peers[i] {
			return spec
		}
	}
	t.Fatalf("no spec owned by peer %d in 10000 seeds", i)
	return JobSpec{}
}

// spanByName returns the first span with the given name out of the
// replica's stored trace, failing the test if it is absent.
func spanByName(t *testing.T, spans []obs.Span, name string) obs.Span {
	t.Helper()
	for _, sp := range spans {
		if sp.Name == name {
			return sp
		}
	}
	t.Fatalf("no %q span in trace (got %d spans)", name, len(spans))
	return obs.Span{}
}

// requestTrace fetches the spans of the first handler-created trace for
// spec: trace IDs are deterministic, so the first admission of a key
// always lands on trace obs.TraceID(key, 1).
func (sf *stubFleet) requestTrace(t *testing.T, spec JobSpec) []obs.Span {
	t.Helper()
	return sf.srv.obs.Spans(obs.TraceID(keyOf(t, spec), 1))
}

// TestForwardTimeoutEmitsErrorSpan points a submission at a ring owner
// that never answers within the client timeout: the client must get a
// 502 and the forwarding replica must record an error-status
// peer_forward span under the request trace.
func TestForwardTimeoutEmitsErrorSpan(t *testing.T) {
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Second)
		w.WriteHeader(http.StatusOK)
	})
	sf := newStubFleet(t, []http.Handler{slow}, func(o *Options) {
		o.Cluster.HTTPClient = &http.Client{Timeout: 100 * time.Millisecond}
	})
	spec := sf.specOwnedByPeer(t, 0)
	body, _ := json.Marshal(spec)
	code, _, apiErr := postJob(t, sf.ts, body)
	if code != http.StatusBadGateway {
		t.Fatalf("forward to dead owner: HTTP %d (%s), want 502", code, apiErr.Error)
	}
	if apiErr.Error == "" || !strings.Contains(apiErr.Error, "forwarding to owner") {
		t.Fatalf("502 body does not explain the forward failure: %q", apiErr.Error)
	}

	spans := sf.requestTrace(t, spec)
	fwd := spanByName(t, spans, "peer_forward")
	if fwd.Status != obs.StatusError || fwd.Error == "" {
		t.Fatalf("peer_forward span status = %q (error %q), want error status", fwd.Status, fwd.Error)
	}
	if route := spanByName(t, spans, "ring_route"); route.Attrs["route"] != "forward" {
		t.Fatalf("ring_route route attr = %q, want forward", route.Attrs["route"])
	}
}

// TestForwardPeerErrorRelayed checks a 5xx from the ring owner is
// relayed to the client verbatim and recorded as an error-status
// peer_forward span carrying the response code.
func TestForwardPeerErrorRelayed(t *testing.T) {
	boom := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "stub owner draining"})
	})
	sf := newStubFleet(t, []http.Handler{boom}, nil)
	spec := sf.specOwnedByPeer(t, 0)
	body, _ := json.Marshal(spec)
	code, _, apiErr := postJob(t, sf.ts, body)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("owner 503 relayed as HTTP %d, want 503", code)
	}
	if apiErr.Error != "stub owner draining" {
		t.Fatalf("owner error body not relayed verbatim: %q", apiErr.Error)
	}

	fwd := spanByName(t, sf.requestTrace(t, spec), "peer_forward")
	if fwd.Status != obs.StatusError {
		t.Fatalf("peer_forward span status = %q, want error", fwd.Status)
	}
	if fwd.Attrs["code"] != "503" {
		t.Fatalf("peer_forward code attr = %q, want 503", fwd.Attrs["code"])
	}
}

// TestLoopGuardExecutesLocally sends an internally-marked submission to
// a replica that does NOT own the key: the loop guard must execute it
// locally (the job completes) while flagging the routing anomaly with
// an error-status ring_route span.
func TestLoopGuardExecutesLocally(t *testing.T) {
	// The stub owner answers peer cache probes with a clean miss so the
	// execute path falls through to a local simulation.
	miss := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusNotFound, apiError{Error: "result not cached"})
	})
	sf := newStubFleet(t, []http.Handler{miss}, nil)
	spec := sf.specOwnedByPeer(t, 0)
	body, _ := json.Marshal(spec)

	req, err := http.NewRequest(http.MethodPost, sf.ts.URL+"/v1/jobs", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(internalHeader, "forwarded")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("loop-guarded submit: HTTP %d, want 202", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fin, err := sf.srv.Wait(ctx, st.ID)
	if err != nil || fin.State != StateDone {
		t.Fatalf("loop-guarded job did not complete locally: %v / %+v", err, fin)
	}

	spans := sf.requestTrace(t, spec)
	route := spanByName(t, spans, "ring_route")
	if route.Status != obs.StatusError {
		t.Fatalf("ring_route span status = %q, want error (loop guard)", route.Status)
	}
	if route.Attrs["loop_guard"] != "true" || route.Attrs["route"] != "local" {
		t.Fatalf("ring_route attrs = %v, want loop_guard=true route=local", route.Attrs)
	}
	spanByName(t, spans, "sim_execute") // it really ran here
}

// TestStealPushBackpressureFallsBackLocal wedges a single-worker
// replica past its steal threshold against a peer that answers every
// execute with 429: the steal must fail with an error-status steal_push
// span and the job must still complete locally once the worker frees.
func TestStealPushBackpressureFallsBackLocal(t *testing.T) {
	busy := http.NewServeMux()
	busy.HandleFunc("GET /v1/peer/load", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, cluster.LoadReport{Workers: 4})
	})
	busy.HandleFunc("POST /v1/peer/execute", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: "stub victim full"})
	})
	busy.HandleFunc("GET /v1/peer/results/{key}", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusNotFound, apiError{Error: "result not cached"})
	})

	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	t.Cleanup(openGate)

	sf := newStubFleet(t, []http.Handler{busy}, func(o *Options) {
		o.Workers = 1
		o.Cluster.StealThreshold = 1
	})
	inner := sf.srv.runSim
	sf.srv.runSim = func(c sim.Config) (sim.Result, error) {
		<-gate
		return inner(c)
	}

	// Fill the single-worker replica past the threshold, then submit the
	// job that must enter the steal path. Specs are distinct (different
	// seeds) so nothing coalesces, and all are owned by self so nothing
	// forwards.
	var stolen JobStatus
	seed, submitted := uint64(0), 0
	for submitted < 5 {
		seed++
		spec := smallSpec(seed)
		if sf.ring.Owner(keyOf(t, spec)) != sf.self {
			continue
		}
		submitted++
		st, err := sf.srv.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", submitted, err)
		}
		if st.Stolen {
			stolen = st
			break
		}
	}
	if stolen.ID == "" {
		t.Fatal("no submission entered the steal path with a wedged single worker and threshold 1")
	}
	// The steal fails against the 429 stub; free the worker so the local
	// fallback can drain everything.
	openGate()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fin, err := sf.srv.Wait(ctx, stolen.ID)
	if err != nil || fin.State != StateDone {
		t.Fatalf("steal-fallback job did not complete: %v / %+v", err, fin)
	}

	tid, ok := sf.srv.obs.TraceIDFor(stolen.ID)
	if !ok {
		t.Fatalf("no trace bound to stolen job %s", stolen.ID)
	}
	spans := sf.srv.obs.Spans(tid)
	push := spanByName(t, spans, "steal_push")
	if push.Status != obs.StatusError {
		t.Fatalf("steal_push span status = %q, want error after 429", push.Status)
	}
	if !strings.Contains(push.Error, "peer queue full") {
		t.Fatalf("steal_push span error = %q, want ErrPeerBusy text", push.Error)
	}
	if push.Attrs["victim"] != sf.peers[0] {
		t.Fatalf("steal_push victim attr = %q, want %q", push.Attrs["victim"], sf.peers[0])
	}
	spanByName(t, spans, "sim_execute") // local fallback really ran it
}
