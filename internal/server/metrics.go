package server

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"offloadsim/internal/obs"
	"offloadsim/internal/oscore"
)

// Metrics is the daemon's instrumentation, hand-rolled in the Prometheus
// text exposition format (no dependencies). Counters and gauges are
// atomics; the latency histogram takes a mutex only on observe/scrape.
type Metrics struct {
	JobsSubmitted atomic.Uint64 // accepted submissions (cache hits included)
	JobsCompleted atomic.Uint64 // jobs finished successfully (cache hits included)
	JobsFailed    atomic.Uint64 // jobs that errored, timed out, or were aborted
	JobsRejected  atomic.Uint64 // submissions bounced with 429 (full queue)
	JobsCoalesced atomic.Uint64 // submissions attached to an identical in-flight job

	CacheHits   atomic.Uint64 // submissions served instantly from the result cache
	CacheMisses atomic.Uint64 // submissions that required (or joined) a simulation

	JobsSampled  atomic.Uint64 // simulations executed in interval-sampled mode
	JobsDetailed atomic.Uint64 // simulations executed fully detailed
	JobsParallel atomic.Uint64 // simulations executed on the parallel engine
	JobsTraced   atomic.Uint64 // simulations executed with telemetry capture

	// Fleet coordination (docs/CLUSTER.md).
	PeerCacheHits   atomic.Uint64 // jobs finished from a peer's cache tier instead of simulating
	PeerCacheMisses atomic.Uint64 // peer cache probes that found nothing (job simulated locally)
	JobsStolen      atomic.Uint64 // jobs this owner dispatched to a less-loaded peer
	PeerExecutes    atomic.Uint64 // jobs executed here on behalf of a peer (steal victims, sweep fan-out)
	JobsForwarded   atomic.Uint64 // submissions routed to their ring owner
	Sweeps          atomic.Uint64 // sweep requests accepted
	SweepPoints     atomic.Uint64 // grid points accepted across all sweeps

	QueueDepth    atomic.Int64 // jobs sitting in the bounded queue
	JobsRunning   atomic.Int64 // jobs currently being simulated
	ReservedSlots atomic.Int64 // extra pool slots held by running parallel jobs
	RingOwnedKeys atomic.Int64 // cached results whose key this replica owns per the ring (refreshed at scrape)

	// SLO burn counters (docs/OBSERVABILITY.md). The latency pair splits
	// every finished job against the configured per-job latency target so
	// scrapers compute burn rate as breach_total / (within_total +
	// breach_total) over any window. Targets are stored as float bits so
	// observe and scrape need no lock.
	SLOLatencyWithin atomic.Uint64 // jobs that finished within the latency target
	SLOLatencyBreach atomic.Uint64 // jobs that exceeded the latency target
	sloLatencyBits   atomic.Uint64 // float64 bits of the latency target in seconds; 0 disables
	sloCacheHitBits  atomic.Uint64 // float64 bits of the cache-hit-ratio target; 0 disables

	// Service-trace store health, refreshed at scrape like RingOwnedKeys
	// (zero when tracing is disabled).
	TraceStoreTraces atomic.Int64  // traces resident in the in-memory store
	TraceStoreSpans  atomic.Int64  // spans resident across all stored traces
	SpansRecorded    atomic.Uint64 // service spans accepted into the store
	SpansDropped     atomic.Uint64 // service spans dropped (per-trace span cap, late arrivals)
	TracesEvicted    atomic.Uint64 // whole traces evicted FIFO by the store cap

	latency   histogram
	queueWait histogram
	simSpeed  histogram

	// oscoreDepth holds the per-syscall-class mean cluster queue depth
	// of the most recent multi-OS-core job (docs/OSCORES.md). The class
	// label is bounded by construction: ObserveOSCoreDepth drops any
	// name outside the fixed syscall-category set, so the series count
	// can never exceed oscore.CategoryNames().
	oscoreDepthMu sync.Mutex
	oscoreDepth   map[string]float64
}

// NewMetrics builds the registry with the default bucket layouts.
func NewMetrics() *Metrics {
	return &Metrics{
		latency: newHistogram(
			// Seconds; simulations span ~ms (cache hit path excluded) to
			// minutes for large budgets.
			[]float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60},
		),
		queueWait: newHistogram(
			// Seconds from submit to worker pickup: ~0 on an idle pool,
			// bounded by job runtime × queue depth under saturation.
			[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60},
		),
		simSpeed: newHistogram(
			// Simulated instructions per wall second; the detailed engine
			// sits in the millions (BENCH.md), sampled mode far higher.
			[]float64{1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7, 1e8, 2.5e8},
		),
	}
}

// SetSLOTargets installs the SLO targets: the per-job latency target in
// seconds and the minimum cache-hit ratio. Values <= 0 disable the
// corresponding series. Call before serving traffic.
func (m *Metrics) SetSLOTargets(latencySeconds, cacheHitMin float64) {
	if latencySeconds > 0 {
		m.sloLatencyBits.Store(math.Float64bits(latencySeconds))
	}
	if cacheHitMin > 0 {
		m.sloCacheHitBits.Store(math.Float64bits(cacheHitMin))
	}
}

// SetTraceStats refreshes the trace-store health gauges; called at
// scrape time with obs.Tracer.Stats().
func (m *Metrics) SetTraceStats(traces, spans int, recorded, dropped, evicted uint64) {
	m.TraceStoreTraces.Store(int64(traces))
	m.TraceStoreSpans.Store(int64(spans))
	m.SpansRecorded.Store(recorded)
	m.SpansDropped.Store(dropped)
	m.TracesEvicted.Store(evicted)
}

// ObserveJobLatency records one job's submit-to-finish wall time and, if
// a latency target is configured, scores it against the SLO.
func (m *Metrics) ObserveJobLatency(seconds float64) {
	m.latency.observe(seconds)
	if target := math.Float64frombits(m.sloLatencyBits.Load()); target > 0 {
		if seconds <= target {
			m.SLOLatencyWithin.Add(1)
		} else {
			m.SLOLatencyBreach.Add(1)
		}
	}
}

// ObserveOSCoreDepth records one syscall class's mean cluster queue
// depth from a finished multi-OS-core job. Unknown class names are
// dropped silently — the label-cardinality guard that keeps
// offsimd_oscore_queue_depth bounded at the fixed category set.
func (m *Metrics) ObserveOSCoreDepth(class string, depth float64) {
	if !oscoreClassNames[class] {
		return
	}
	m.oscoreDepthMu.Lock()
	defer m.oscoreDepthMu.Unlock()
	if m.oscoreDepth == nil {
		m.oscoreDepth = make(map[string]float64, len(oscoreClassNames))
	}
	m.oscoreDepth[class] = depth
}

// oscoreClassNames is the closed set of legal class label values.
var oscoreClassNames = func() map[string]bool {
	set := make(map[string]bool)
	for _, name := range oscore.CategoryNames() {
		set[name] = true
	}
	return set
}()

// ObserveQueueWait records one job's submit-to-worker-pickup wall time.
func (m *Metrics) ObserveQueueWait(seconds float64) { m.queueWait.observe(seconds) }

// ObserveSimSpeed records one successful simulation's simulated
// instructions per wall second.
func (m *Metrics) ObserveSimSpeed(instrsPerSecond float64) { m.simSpeed.observe(instrsPerSecond) }

// WriteTo renders the registry in the Prometheus text format.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gaugeF := func(name, help string, v float64) {
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counterF := func(name, help string, v float64) {
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	counter("offsimd_jobs_submitted_total", "Accepted job submissions.", m.JobsSubmitted.Load())
	counter("offsimd_jobs_completed_total", "Jobs finished successfully.", m.JobsCompleted.Load())
	counter("offsimd_jobs_failed_total", "Jobs that errored, timed out or were aborted.", m.JobsFailed.Load())
	counter("offsimd_jobs_rejected_total", "Submissions rejected by queue backpressure.", m.JobsRejected.Load())
	counter("offsimd_jobs_coalesced_total", "Submissions coalesced onto identical in-flight jobs.", m.JobsCoalesced.Load())
	counter("offsimd_cache_hits_total", "Submissions served from the result cache.", m.CacheHits.Load())
	counter("offsimd_cache_misses_total", "Submissions not present in the result cache.", m.CacheMisses.Load())
	counter("offsimd_jobs_sampled_total", "Simulations executed in interval-sampled mode.", m.JobsSampled.Load())
	counter("offsimd_jobs_detailed_total", "Simulations executed fully detailed.", m.JobsDetailed.Load())
	counter("offsimd_jobs_parallel_total", "Simulations executed on the parallel engine.", m.JobsParallel.Load())
	counter("offsimd_jobs_traced_total", "Simulations executed with telemetry capture.", m.JobsTraced.Load())
	counter("offsimd_peer_cache_hits_total", "Jobs finished from a peer's cache tier instead of simulating.", m.PeerCacheHits.Load())
	counter("offsimd_peer_cache_misses_total", "Peer cache probes that found nothing.", m.PeerCacheMisses.Load())
	counter("offsimd_jobs_stolen_total", "Jobs dispatched to a less-loaded peer by work-stealing.", m.JobsStolen.Load())
	counter("offsimd_peer_executes_total", "Jobs executed here on behalf of a peer replica.", m.PeerExecutes.Load())
	counter("offsimd_jobs_forwarded_total", "Submissions routed to their consistent-hash ring owner.", m.JobsForwarded.Load())
	counter("offsimd_sweeps_total", "Sweep requests accepted.", m.Sweeps.Load())
	counter("offsimd_sweep_points_total", "Grid points accepted across all sweeps.", m.SweepPoints.Load())
	gauge("offsimd_queue_depth_jobs", "Jobs waiting in the bounded queue.", m.QueueDepth.Load())
	gauge("offsimd_jobs_running", "Jobs currently being simulated.", m.JobsRunning.Load())
	gauge("offsimd_reserved_worker_slots", "Extra worker-pool slots held by running parallel jobs.", m.ReservedSlots.Load())
	gauge("offsimd_ring_owned_keys", "Cached results whose key this replica owns per the hash ring.", m.RingOwnedKeys.Load())
	gauge("offsimd_trace_store_traces", "Service traces resident in the in-memory store.", m.TraceStoreTraces.Load())
	gauge("offsimd_trace_store_spans", "Service spans resident across all stored traces.", m.TraceStoreSpans.Load())
	counter("offsimd_spans_recorded_total", "Service spans accepted into the trace store.", m.SpansRecorded.Load())
	counter("offsimd_spans_dropped_total", "Service spans dropped by the per-trace span cap.", m.SpansDropped.Load())
	counter("offsimd_traces_evicted_total", "Whole service traces evicted FIFO by the store cap.", m.TracesEvicted.Load())
	if target := math.Float64frombits(m.sloLatencyBits.Load()); target > 0 {
		gaugeF("offsimd_slo_latency_target_seconds", "Configured per-job latency SLO target.", target)
		counter("offsimd_slo_latency_within_total", "Jobs that finished within the latency SLO target.", m.SLOLatencyWithin.Load())
		counter("offsimd_slo_latency_breach_total", "Jobs that exceeded the latency SLO target.", m.SLOLatencyBreach.Load())
	}
	if target := math.Float64frombits(m.sloCacheHitBits.Load()); target > 0 {
		// Burn rate is computed by the scraper against the existing
		// offsimd_cache_{hits,misses}_total counters.
		gaugeF("offsimd_slo_cache_hit_target_ratio", "Configured minimum cache-hit-ratio SLO target.", target)
	}
	rt := obs.ReadRuntimeStats()
	gauge("offsimd_go_goroutines", "Live goroutines in the daemon process.", rt.Goroutines)
	gauge("offsimd_go_heap_bytes", "Bytes of live heap objects.", rt.HeapBytes)
	counter("offsimd_go_gc_cycles_total", "Completed GC cycles since process start.", rt.GCCycles)
	counterF("offsimd_go_gc_pause_seconds_total", "Approximate total stop-the-world GC pause time.", rt.GCPauseSeconds)
	m.writeOSCoreDepth(cw)
	m.latency.writeTo(cw, "offsimd_job_latency_seconds", "Submit-to-finish job latency.")
	m.queueWait.writeTo(cw, "offsimd_queue_wait_seconds", "Submit-to-worker-pickup queue wait.")
	m.simSpeed.writeTo(cw, "offsimd_sim_instrs_per_second", "Simulated instructions per wall second, successful jobs only.")
	return cw.n, cw.err
}

// writeOSCoreDepth renders the per-class cluster queue-depth gauge.
// Classes appear in fixed category order, so consecutive scrapes list
// series identically; the metric is absent until a multi-OS-core job
// completes, keeping single-OS-core deployments' scrapes unchanged.
func (m *Metrics) writeOSCoreDepth(w io.Writer) {
	m.oscoreDepthMu.Lock()
	defer m.oscoreDepthMu.Unlock()
	if len(m.oscoreDepth) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP offsimd_oscore_queue_depth Mean per-class OS-cluster queue depth of the most recent multi-OS-core job.\n"+
		"# TYPE offsimd_oscore_queue_depth gauge\n")
	for _, class := range oscore.CategoryNames() {
		if depth, ok := m.oscoreDepth[class]; ok {
			fmt.Fprintf(w, "offsimd_oscore_queue_depth{class=%q} %g\n", class, depth)
		}
	}
}

// histogram is a fixed-bucket cumulative histogram.
type histogram struct {
	mu      sync.Mutex
	bounds  []float64 // ascending upper bounds; +Inf implicit
	buckets []uint64  // non-cumulative counts per bound, +Inf last
	sum     float64
	count   uint64
}

func newHistogram(bounds []float64) histogram {
	return histogram{bounds: bounds, buckets: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i]++
	h.sum += v
	h.count++
}

func (h *histogram) writeTo(w io.Writer, name, help string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b, cum)
	}
	cum += h.buckets[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count)
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
