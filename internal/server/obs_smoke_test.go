package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"offloadsim/internal/obs"
	"offloadsim/internal/sim"
)

// obs_smoke_test.go is the `make obs-smoke` gate: an in-process
// 3-replica fleet with tracing enabled runs a forwarded job, a stolen
// job and an 8-point sweep, and each must come back from GET
// /v1/debug/traces/{id} as one fully-stitched trace — a single root,
// every parent ID resolvable, spans from every replica that touched the
// work. A trailing determinism test pins span IDs and structure, and a
// results-equivalence test proves tracing never touches simulation
// output (docs/OBSERVABILITY.md).

// tracedFleet boots an n-replica fleet with service tracing enabled on
// every replica; extra mutates per-replica options on top of that.
func tracedFleet(t *testing.T, n int, extra func(i int, o *Options)) *fleet {
	t.Helper()
	return newFleet(t, n, func(i int, o *Options) {
		o.Obs.Tracing = true
		if extra != nil {
			extra(i, o)
		}
	})
}

// debugTrace fetches GET /v1/debug/traces/{id}?format=json from rep.
func debugTrace(t *testing.T, rep *fleetReplica, id string) (int, []obs.Span) {
	t.Helper()
	resp, err := http.Get(rep.addr + "/v1/debug/traces/" + id + "?format=json")
	if err != nil {
		t.Fatalf("GET /v1/debug/traces/%s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	var spans []obs.Span
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatalf("decoding trace %s: %v", id, err)
	}
	return resp.StatusCode, spans
}

// waitTrace polls the stitched trace of id on rep until every span name
// in want is present — some spans (a sweep root, a steal push) are
// recorded moments after the client-visible operation completes.
func waitTrace(t *testing.T, rep *fleetReplica, id string, want ...string) []obs.Span {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, spans := debugTrace(t, rep, id)
		if code == http.StatusOK {
			names := map[string]int{}
			for _, sp := range spans {
				names[sp.Name]++
			}
			missing := ""
			for _, w := range want {
				if names[w] == 0 {
					missing = w
					break
				}
			}
			if missing == "" {
				return spans
			}
			if time.Now().After(deadline) {
				t.Fatalf("trace %s never grew a %q span (have %v)", id, missing, names)
			}
		} else if time.Now().After(deadline) {
			t.Fatalf("GET /v1/debug/traces/%s: HTTP %d after 30s", id, code)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// assertStitched checks the orphan-free single-tree invariant: one
// trace ID, exactly one root span, and every non-root parent ID present
// in the span set — a forwarded or stolen leg whose spans failed to
// stitch shows up here as an orphan.
func assertStitched(t *testing.T, spans []obs.Span) obs.Span {
	t.Helper()
	if len(spans) == 0 {
		t.Fatal("empty trace")
	}
	ids := map[string]bool{}
	for _, sp := range spans {
		if sp.TraceID != spans[0].TraceID {
			t.Fatalf("span %s/%s carries trace %s; rest of the tree is %s",
				sp.Name, sp.SpanID, sp.TraceID, spans[0].TraceID)
		}
		if ids[sp.SpanID] {
			t.Fatalf("duplicate span ID %s (%s)", sp.SpanID, sp.Name)
		}
		ids[sp.SpanID] = true
	}
	var root obs.Span
	roots := 0
	for _, sp := range spans {
		if sp.Parent == "" {
			root, roots = sp, roots+1
			continue
		}
		if !ids[sp.Parent] {
			t.Fatalf("orphan span %s (%s): parent %s is not in the stitched trace",
				sp.SpanID, sp.Name, sp.Parent)
		}
	}
	if roots != 1 {
		t.Fatalf("stitched trace has %d roots, want exactly 1", roots)
	}
	return root
}

// spanReplicas returns the set of replica addresses that recorded spans.
func spanReplicas(spans []obs.Span) map[string]bool {
	out := map[string]bool{}
	for _, sp := range spans {
		out[sp.Replica] = true
	}
	return out
}

// TestObsSmokeForwardedTrace submits a job to a non-owner replica: the
// request is forwarded over HTTP, and the trace downloaded from the
// owner must be one stitched tree spanning both replicas — the
// forwarder's request/ring_route/peer_forward leg and the owner's
// admission/sim_execute leg, joined by Traceparent propagation.
func TestObsSmokeForwardedTrace(t *testing.T) {
	fl := tracedFleet(t, 3, nil)
	var cursor uint64
	spec := fl.specOwnedBy(t, 1, &cursor)
	body, _ := json.Marshal(spec)

	code, st, apiErr := postJob(t, fl.reps[0].ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("forwarded submit: HTTP %d (%s)", code, apiErr.Error)
	}
	if st.Replica != fl.reps[1].addr {
		t.Fatalf("job landed on %s, want owner %s", st.Replica, fl.reps[1].addr)
	}
	if fin := waitJob(t, fl.reps[1], st.ID); fin.State != StateDone {
		t.Fatalf("forwarded job failed: %s", fin.Error)
	}

	spans := waitTrace(t, fl.reps[1], st.ID,
		"request", "ring_route", "peer_forward", "admission", "sim_execute")
	root := assertStitched(t, spans)
	if root.Name != "request" || root.Replica != fl.reps[0].addr {
		t.Fatalf("root span = %s on %s, want the forwarder's request span", root.Name, root.Replica)
	}
	if fwd := spanByName(t, spans, "peer_forward"); fwd.Replica != fl.reps[0].addr {
		t.Fatalf("peer_forward recorded on %s, want forwarder %s", fwd.Replica, fl.reps[0].addr)
	}
	if exec := spanByName(t, spans, "sim_execute"); exec.Replica != fl.reps[1].addr {
		t.Fatalf("sim_execute recorded on %s, want owner %s", exec.Replica, fl.reps[1].addr)
	}
	if reps := spanReplicas(spans); len(reps) < 2 {
		t.Fatalf("trace spans replicas %v, want both sides of the forward", reps)
	}

	// The default download is a Chrome trace Perfetto can load.
	resp, err := http.Get(fl.reps[1].addr + "/v1/debug/traces/" + st.ID)
	if err != nil {
		t.Fatalf("GET chrome trace: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chrome trace download: HTTP %d", resp.StatusCode)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &chrome); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(chrome.TraceEvents) < len(spans) {
		t.Fatalf("chrome trace holds %d events for %d spans", len(chrome.TraceEvents), len(spans))
	}
}

// TestObsSmokeStolenTrace wedges a single-worker replica past its steal
// threshold so a job is pushed to a victim, then asserts the stolen
// job's trace is one stitched tree: the owner's steal_push leg and the
// victim's peer_execute/sim_execute leg under a single root.
func TestObsSmokeStolenTrace(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }

	fl := tracedFleet(t, 3, func(i int, o *Options) {
		if i == 0 {
			o.Workers = 1
			o.Cluster.StealThreshold = 1
		}
	})
	t.Cleanup(openGate)
	inner := fl.reps[0].srv.runSim
	fl.reps[0].srv.runSim = func(c sim.Config) (sim.Result, error) {
		<-gate
		return inner(c)
	}

	var cursor uint64
	var stolen JobStatus
	for i := 0; i < 8 && stolen.ID == ""; i++ {
		spec := fl.specOwnedBy(t, 0, &cursor)
		body, _ := json.Marshal(spec)
		code, st, apiErr := postJob(t, fl.reps[0].ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d (%s)", i, code, apiErr.Error)
		}
		if st.Stolen {
			stolen = st
		}
	}
	if stolen.ID == "" {
		t.Fatal("no submission entered the steal path with a wedged single-worker owner and threshold 1")
	}
	// The victim executes the stolen job while the owner stays wedged.
	if fin := waitJob(t, fl.reps[0], stolen.ID); fin.State != StateDone {
		t.Fatalf("stolen job failed: %s", fin.Error)
	}

	spans := waitTrace(t, fl.reps[0], stolen.ID,
		"request", "admission", "steal_push", "peer_execute", "sim_execute")
	root := assertStitched(t, spans)
	if root.Replica != fl.reps[0].addr {
		t.Fatalf("root span on %s, want the owner %s", root.Replica, fl.reps[0].addr)
	}
	push := spanByName(t, spans, "steal_push")
	if push.Replica != fl.reps[0].addr || push.Status != obs.StatusOK {
		t.Fatalf("steal_push: replica %s status %s, want ok on the owner", push.Replica, push.Status)
	}
	victim := push.Attrs["victim"]
	if victim == "" || victim == fl.reps[0].addr {
		t.Fatalf("steal_push victim attr = %q, want a peer address", victim)
	}
	exec := spanByName(t, spans, "peer_execute")
	if exec.Replica != victim {
		t.Fatalf("peer_execute recorded on %s, want the victim %s", exec.Replica, victim)
	}
	if sim := spanByName(t, spans, "sim_execute"); sim.Replica != victim {
		t.Fatalf("sim_execute recorded on %s, want the victim %s (owner is wedged)", sim.Replica, victim)
	}
	if reps := spanReplicas(spans); len(reps) < 2 {
		t.Fatalf("trace spans replicas %v, want owner and victim", reps)
	}
	openGate()
}

// TestObsSmokeSweepTrace runs an 8-point sweep across the fleet and
// asserts the sweep trace is one stitched tree: a sweep root, all 8
// sweep_point spans under it, and every point's sim_execute reachable
// from its sweep_point through the stitched parent chain — whether the
// point ran locally or was dispatched to a peer.
func TestObsSmokeSweepTrace(t *testing.T) {
	fl := tracedFleet(t, 3, nil)
	body := []byte(`{
		"workloads": ["apache"],
		"policies": ["HI"],
		"thresholds": [50, 100, 150, 200],
		"latencies": [50, 100],
		"warmup_instrs": 0,
		"measure_instrs": 20000,
		"seed": 1,
		"normalize": false,
		"concurrency": 4
	}`)
	id, lines, prog := runSweep(t, fl.reps[0], body)
	if len(lines) != 8 || !prog.Complete || prog.Done != 8 || prog.Failed != 0 {
		t.Fatalf("sweep streamed %d points, trailer %+v; want 8 done", len(lines), prog)
	}

	spans := waitTrace(t, fl.reps[0], id, "sweep", "sweep_point", "sim_execute")
	root := assertStitched(t, spans)
	if root.Name != "sweep" || root.Replica != fl.reps[0].addr {
		t.Fatalf("root span = %s on %s, want the submitting replica's sweep span", root.Name, root.Replica)
	}
	if root.Attrs["points"] != "8" {
		t.Fatalf("sweep root points attr = %q, want 8", root.Attrs["points"])
	}

	byID := map[string]obs.Span{}
	points := 0
	for _, sp := range spans {
		byID[sp.SpanID] = sp
		if sp.Name == "sweep_point" {
			points++
			if sp.Parent != root.SpanID {
				t.Fatalf("sweep_point %s parented under %s, want the sweep root", sp.SpanID, sp.Parent)
			}
		}
		if sp.Name == "sweep_baseline" {
			t.Fatal("normalize:false sweep recorded a sweep_baseline span")
		}
	}
	if points != 8 {
		t.Fatalf("trace holds %d sweep_point spans, want 8", points)
	}
	// Each executed point must chain back to a sweep_point: walking
	// parents from every sim_execute crosses the peer_execute/admission
	// stitch even when the point ran on a remote replica.
	executed := map[string]bool{} // sweep_point span IDs with a sim_execute descendant
	for _, sp := range spans {
		if sp.Name != "sim_execute" {
			continue
		}
		for cur := sp; cur.Parent != ""; {
			parent, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("sim_execute %s ancestry broken at %s", sp.SpanID, cur.Parent)
			}
			if parent.Name == "sweep_point" {
				executed[parent.SpanID] = true
				break
			}
			cur = parent
		}
	}
	if len(executed) != 8 {
		t.Fatalf("%d of 8 sweep points have a stitched sim_execute", len(executed))
	}
}

// spanShape is a span minus everything timing-dependent: what must be
// identical between two runs of the same submissions.
type spanShape struct {
	SpanID, ParentID, Name, JobID, Status, Error string
	Attrs                                        string
}

func shapeOf(spans []obs.Span) []spanShape {
	out := make([]spanShape, 0, len(spans))
	for _, sp := range spans {
		attrs, _ := json.Marshal(sp.Attrs) // map marshal sorts keys
		out = append(out, spanShape{
			SpanID: sp.SpanID, ParentID: sp.Parent, Name: sp.Name,
			JobID: sp.JobID, Status: sp.Status, Error: sp.Error,
			Attrs: string(attrs),
		})
	}
	return out
}

// TestObsTraceDeterminism runs the same submission sequence against two
// identical single-replica servers: trace IDs, span IDs, parent edges,
// names, job bindings and attrs must match exactly — only timestamps
// may differ (docs/OBSERVABILITY.md, "Deterministic IDs").
func TestObsTraceDeterminism(t *testing.T) {
	specs := []JobSpec{smallSpec(101), smallSpec(102), smallSpec(103)}

	run := func() [][]obs.Span {
		srv := New(Options{QueueSize: 16, Workers: 2, Obs: ObsOptions{Tracing: true}})
		srv.Start()
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		})
		var traces [][]obs.Span
		for _, spec := range specs {
			body, _ := json.Marshal(spec)
			code, st, apiErr := postJob(t, ts, body)
			if code != http.StatusAccepted {
				t.Fatalf("submit: HTTP %d (%s)", code, apiErr.Error)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			if fin, err := srv.Wait(ctx, st.ID); err != nil || fin.State != StateDone {
				t.Fatalf("job did not finish: %v / %+v", err, fin)
			}
			cancel()
			tid, ok := srv.obs.TraceIDFor(st.ID)
			if !ok {
				t.Fatalf("no trace bound to %s", st.ID)
			}
			traces = append(traces, srv.obs.Spans(tid))
		}
		return traces
	}

	a, b := run(), run()
	for i := range specs {
		sa, sb := shapeOf(a[i]), shapeOf(b[i])
		if len(a[i]) == 0 {
			t.Fatalf("spec %d: empty trace", i)
		}
		if a[i][0].TraceID != b[i][0].TraceID {
			t.Fatalf("spec %d: trace IDs differ: %s vs %s", i, a[i][0].TraceID, b[i][0].TraceID)
		}
		if fmt.Sprint(sa) != fmt.Sprint(sb) {
			t.Fatalf("spec %d: span structure differs between identical runs:\n%v\nvs\n%v", i, sa, sb)
		}
	}
}

// TestObsResultsUnchangedByTracing proves the tracing layer observes
// without perturbing: the /v1/results document for the same spec is
// byte-identical with tracing on and off.
func TestObsResultsUnchangedByTracing(t *testing.T) {
	spec := smallSpec(777)
	body, _ := json.Marshal(spec)

	run := func(tracing bool) []byte {
		srv := New(Options{QueueSize: 16, Workers: 2, Obs: ObsOptions{Tracing: tracing}})
		srv.Start()
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		})
		code, st, apiErr := postJob(t, ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("submit: HTTP %d (%s)", code, apiErr.Error)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if fin, err := srv.Wait(ctx, st.ID); err != nil || fin.State != StateDone {
			t.Fatalf("job did not finish: %v / %+v", err, fin)
		}
		code, raw := getResult(t, ts, st.ID)
		if code != http.StatusOK {
			t.Fatalf("GET result: HTTP %d", code)
		}
		return raw
	}

	traced, plain := run(true), run(false)
	if !bytes.Equal(traced, plain) {
		t.Fatalf("result bytes differ with tracing on vs off:\n%s\nvs\n%s", traced, plain)
	}
}

// TestServerTracingOverheadDisabled gates the tracing-disabled server
// path at <=2% over raw simulation: with Obs zero-valued, the whole
// submit-to-result pipeline (key hashing, queueing, the nil-tracer
// checks at every span site) must cost no more than 2% on top of
// running the engine directly on the same configs. Env-gated like
// TestTelemetryOverheadDisabled so plain `go test` stays fast; `make
// telemetry-overhead` (part of `make ci`) runs it.
func TestServerTracingOverheadDisabled(t *testing.T) {
	if os.Getenv("OFFLOADSIM_TELEMETRY_OVERHEAD") == "" {
		t.Skip("set OFFLOADSIM_TELEMETRY_OVERHEAD to run the overhead gate")
	}
	const jobs = 8
	meas := uint64(500_000)
	warm := uint64(0)
	specAt := func(seed uint64) JobSpec {
		s := seed
		return JobSpec{Workload: "apache", Policy: "HI",
			WarmupInstrs: &warm, MeasureInstrs: &meas, Seed: &s}
	}

	var bestRatio float64 = -1
	seed := uint64(1)
	for attempt := 0; attempt < 5; attempt++ {
		// Fresh server per attempt; fresh seeds per attempt so the result
		// cache never short-circuits a simulation.
		srv := New(Options{QueueSize: 16, Workers: 1})
		srv.Start()

		cfgs := make([]sim.Config, jobs)
		specs := make([]JobSpec, jobs)
		for i := range specs {
			specs[i] = specAt(seed)
			seed++
			cfg, err := specs[i].Config()
			if err != nil {
				t.Fatalf("spec config: %v", err)
			}
			cfgs[i] = cfg
		}

		// Server path: sequential submit+wait through the full pipeline.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		serverStart := time.Now()
		for _, spec := range specs {
			st, err := srv.Submit(spec)
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			if fin, err := srv.Wait(ctx, st.ID); err != nil || fin.State != StateDone {
				t.Fatalf("job did not finish: %v / %+v", err, fin)
			}
		}
		serverTime := time.Since(serverStart)
		cancel()
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		_ = srv.Shutdown(sctx)
		scancel()

		// Baseline: the same configs through sim.Run directly, measured
		// back-to-back so host-speed drift cancels out of the ratio.
		simStart := time.Now()
		for _, cfg := range cfgs {
			eng, err := sim.New(cfg)
			if err != nil {
				t.Fatalf("sim.New: %v", err)
			}
			_ = eng.Run()
		}
		simTime := time.Since(simStart)

		ratio := float64(serverTime) / float64(simTime)
		if bestRatio < 0 || ratio < bestRatio {
			bestRatio = ratio
		}
		if ratio <= 1.02 {
			t.Logf("tracing-disabled server path: %.1f%% of raw simulation time (%v vs %v over %d jobs)",
				100*ratio, serverTime, simTime, jobs)
			return
		}
	}
	t.Errorf("tracing-disabled server path costs %.1f%% of raw simulation at best (want <= 102%%) — the disabled-tracing fast path has regressed", 100*bestRatio)
}
