package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"offloadsim/internal/cluster"
	"offloadsim/internal/obs"
)

// internalHeader marks replica-to-replica HTTP traffic. A request
// carrying it is never forwarded again (routing loops are impossible
// even under disagreeing ring configurations) and never re-stolen.
const internalHeader = "X-Offsimd-Internal"

// ClusterOptions joins this server to a static-membership fleet. The
// zero value means single-replica operation (no routing, no peers); a
// Membership with a Self address enables the ring even with no peers,
// which is how a one-replica "fleet" runs the same code path for
// benchmarking.
type ClusterOptions struct {
	// Membership is the validated fleet configuration; build it with
	// cluster.ParseMembership so malformed addresses are rejected at
	// flag-parse time, not mid-request.
	Membership cluster.Membership
	// VNodes is the ring's virtual-node count per replica (0 =
	// cluster.DefaultVNodes).
	VNodes int
	// StealThreshold is the local queue depth above which an owner
	// forwards new jobs to the least-loaded peer instead of queueing
	// (work-stealing). 0 uses DefaultStealThreshold; negative disables
	// stealing.
	StealThreshold int
	// HTTPClient carries all replica-to-replica traffic (nil gets a
	// default client; tests inject one wired to in-process listeners).
	HTTPClient *http.Client
}

// DefaultStealThreshold is the queue depth that triggers stealing when
// ClusterOptions leaves it zero.
const DefaultStealThreshold = 8

// Enabled reports whether the options describe fleet membership.
func (o ClusterOptions) Enabled() bool { return o.Membership.Self != "" }

// clusterNode is the server's runtime view of the fleet: the ring, the
// peer client, and the steal policy.
type clusterNode struct {
	self           string
	peers          []string
	ring           *cluster.Ring
	client         *cluster.PeerClient
	stealer        *cluster.Stealer
	stealThreshold int // -1 disables
}

// newClusterNode builds the runtime from validated options. Membership
// was checked by cluster.ParseMembership, so ring construction cannot
// fail; a panic here means a caller bypassed validation.
func newClusterNode(o ClusterOptions) *clusterNode {
	ring, err := cluster.NewRing(o.Membership.All(), o.VNodes)
	if err != nil {
		panic(fmt.Sprintf("server: invalid cluster membership reached New: %v", err))
	}
	client := cluster.NewPeerClient(o.HTTPClient)
	threshold := o.StealThreshold
	if threshold == 0 {
		threshold = DefaultStealThreshold
	}
	if threshold < 0 {
		threshold = -1
	}
	return &clusterNode{
		self:           o.Membership.Self,
		peers:          o.Membership.Peers,
		ring:           ring,
		client:         client,
		stealer:        &cluster.Stealer{Client: client, Peers: o.Membership.Peers},
		stealThreshold: threshold,
	}
}

// owner returns the ring owner of a canonical key.
func (c *clusterNode) owner(key string) string { return c.ring.Owner(key) }

// stamp annotates outward-facing job statuses with the replica that
// holds the job, so clients of a routed fleet know where to poll.
func (s *Server) stamp(st JobStatus) JobStatus {
	if s.cluster != nil {
		st.Replica = s.cluster.self
	}
	return st
}

// shouldSteal reports whether a fresh non-internal job should be
// offered to a peer instead of the local queue: stealing is configured,
// peers exist, and the queue has grown past the threshold.
func (s *Server) shouldSteal() bool {
	c := s.cluster
	return c != nil && c.stealThreshold >= 0 && len(c.peers) > 0 &&
		s.queue.depth() > c.stealThreshold
}

// stealOrRun runs on its own goroutine for a job that was admitted
// while the queue was past the steal threshold. It offers the job to
// the least-loaded peer; the peer executes through its own queue and
// the result is written back through this (owner) replica's cache, so
// shard ownership of cached state is preserved. Any failure falls back
// to the local queue — stealing is an optimization, never a
// correctness dependency.
func (s *Server) stealOrRun(j *job) {
	selfScore := int64(s.queue.depth()) + s.metrics.JobsRunning.Load()
	victim, ok := s.cluster.stealer.Victim(s.baseCtx, selfScore)
	if ok {
		specJSON, err := json.Marshal(j.spec)
		if err == nil {
			ctx := s.baseCtx
			if s.opts.JobTimeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, s.opts.JobTimeout)
				defer cancel()
			}
			s.metrics.JobsStolen.Add(1)
			push := s.obs.StartSpan(j.tctx, "steal_push")
			push.SetJob(j.id)
			push.SetAttr("victim", victim)
			res, err := s.cluster.client.Execute(ctx, victim, specJSON, push.Context().Traceparent())
			if err == nil {
				push.End()
				s.finishJob(j, res, nil, "")
				return
			}
			// The victim bounced (full queue, drain, network): fall
			// through to local execution.
			push.SetError(err.Error())
			push.End()
			s.log.Warn("steal push failed, running locally", append(obs.LogContext(j.tctx),
				slog.String("job", j.id), slog.String("victim", victim), slog.String("error", err.Error()))...)
		}
	}
	s.enqueueBlocking(j)
}

// enqueueBlocking pushes an already-admitted job onto the local queue,
// waiting out transient fullness. Unlike Submit-time admission (which
// rejects with 429), the job here was already accepted — failing it
// because a steal attempt raced a full queue would turn backpressure
// into data loss.
func (s *Server) enqueueBlocking(j *job) {
	for {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			s.finishJob(j, nil, nil, "job aborted: server draining before execution")
			return
		}
		if s.queue.tryPush(j) {
			s.metrics.QueueDepth.Add(1)
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		select {
		case <-s.baseCtx.Done():
			s.finishJob(j, nil, nil, fmt.Sprintf("job aborted: %v", s.baseCtx.Err()))
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// tryPeerFetch is the result cache's second tier: when this replica is
// about to simulate a key it does not own, it first asks the key's ring
// owner. A hit means some replica already computed the result — the
// fleet-wide "computed once" guarantee — and costs one HTTP round trip
// instead of a simulation. Fetches of one key are single-flighted in
// the peer client.
func (s *Server) tryPeerFetch(j *job) ([]byte, bool) {
	c := s.cluster
	if c == nil || j.trace {
		return nil, false
	}
	owner := c.owner(j.key)
	if owner == c.self {
		return nil, false
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, 10*time.Second)
	defer cancel()
	var fetchStart time.Time
	if s.obs != nil {
		fetchStart = s.now()
	}
	b, ok, err := c.client.FetchResult(ctx, owner, j.key)
	if s.obs != nil {
		attrs := map[string]string{"tier": "peer", "owner": owner, "outcome": "miss"}
		status, errMsg := obs.StatusOK, ""
		switch {
		case err != nil:
			status, errMsg = obs.StatusError, err.Error()
		case ok:
			attrs["outcome"] = "hit"
		}
		s.obs.RecordSpan(j.tctx, "peer_cache_fetch", j.id, fetchStart, s.now(), status, errMsg, attrs)
	}
	if err != nil || !ok {
		s.metrics.PeerCacheMisses.Add(1)
		return nil, false
	}
	s.metrics.PeerCacheHits.Add(1)
	return b, true
}

// handlePeerResult serves GET /v1/peer/results/{key}: this replica's
// cache tier, readable by peers. Strictly a cache probe — a miss is a
// 404, never a computation.
func (s *Server) handlePeerResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	b, ok := s.cache.get(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "result not cached"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

// handlePeerLoad serves GET /v1/peer/load: the queue-depth export that
// drives victim selection.
func (s *Server) handlePeerLoad(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, cluster.LoadReport{
		QueueDepth: s.metrics.QueueDepth.Load(),
		Running:    s.metrics.JobsRunning.Load(),
		Workers:    s.opts.Workers,
		Draining:   s.Draining(),
	})
}

// handlePeerExecute serves POST /v1/peer/execute: synchronous execution
// on behalf of another replica (steal victims and sweep fan-out). The
// job runs through the normal queue and worker pool — it is ordinary
// load and counts into the canonical queue metrics — but is marked
// internal, so it is never forwarded or re-stolen (no routing loops).
func (s *Server) handlePeerExecute(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "malformed job spec: " + err.Error()})
		return
	}
	// The caller's traceparent (steal_push or sweep fan-out span) stitches
	// this replica's execution into the originating service trace.
	var exec *obs.ActiveSpan
	sc := obs.SpanContext{}
	if parent, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceHeader)); ok {
		exec = s.obs.StartSpan(parent, "peer_execute")
		sc = exec.Context()
	}
	fail := func(status string) {
		if exec != nil {
			exec.SetError(status)
			exec.End()
		}
	}
	st, err := s.submit(spec, submitOpts{internal: true, sc: sc})
	switch {
	case errors.Is(err, ErrQueueFull):
		fail(err.Error())
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
		return
	case errors.Is(err, ErrDraining):
		fail(err.Error())
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		return
	case err != nil:
		fail(err.Error())
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	if exec != nil {
		exec.SetJob(st.ID)
	}
	s.metrics.PeerExecutes.Add(1)
	if _, err := s.Wait(r.Context(), st.ID); err != nil {
		fail("peer execute interrupted: " + err.Error())
		writeJSON(w, http.StatusGatewayTimeout, apiError{Error: "peer execute interrupted: " + err.Error()})
		return
	}
	res, fin, _ := s.Result(st.ID)
	if fin.State != StateDone {
		fail(fin.Error)
		writeJSON(w, http.StatusInternalServerError, apiError{Error: fin.Error})
		return
	}
	if exec != nil {
		exec.End()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(res)
}

// forwardSubmit proxies a job submission to its ring owner and relays
// the owner's response verbatim, so the client sees exactly the status
// document (including the owner's "replica" field) it would have
// gotten by submitting there directly.
func (s *Server) forwardSubmit(w http.ResponseWriter, r *http.Request, owner string, body []byte, parent obs.SpanContext) {
	s.metrics.JobsForwarded.Add(1)
	fwd := s.obs.StartSpan(parent, "peer_forward")
	fwd.SetAttr("owner", owner)
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		owner+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		fwd.SetError(err.Error())
		fwd.End()
		writeJSON(w, http.StatusBadGateway, apiError{Error: "forwarding to owner: " + err.Error()})
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(internalHeader, "forwarded")
	if tp := fwd.Context().Traceparent(); tp != "" {
		req.Header.Set(obs.TraceHeader, tp)
	}
	resp, err := s.cluster.client.HTTP.Do(req)
	if err != nil {
		fwd.SetError(err.Error())
		fwd.End()
		s.log.Warn("forward to ring owner failed", append(obs.LogContext(parent),
			slog.String("owner", owner), slog.String("error", err.Error()))...)
		writeJSON(w, http.StatusBadGateway, apiError{Error: fmt.Sprintf("forwarding to owner %s: %v", owner, err)})
		return
	}
	defer resp.Body.Close()
	fwd.SetAttr("code", strconv.Itoa(resp.StatusCode))
	if resp.StatusCode >= 400 {
		fwd.SetError(fmt.Sprintf("owner replied HTTP %d", resp.StatusCode))
	}
	fwd.End()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// ownedCachedKeys counts cache entries whose key this replica owns per
// the ring — the offsimd_ring_owned_keys gauge. Without a ring every
// cached key is "owned".
func (s *Server) ownedCachedKeys() int64 {
	keys := s.cache.keys()
	if s.cluster == nil {
		return int64(len(keys))
	}
	var owned int64
	for _, k := range keys {
		if s.cluster.owner(k) == s.cluster.self {
			owned++
		}
	}
	return owned
}
