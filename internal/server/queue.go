package server

import "errors"

// Errors surfaced by Submit.
var (
	// ErrQueueFull is returned when the bounded queue cannot accept
	// another job; the HTTP layer maps it to 429 Too Many Requests.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining is returned once shutdown has begun; the HTTP layer
	// maps it to 503 Service Unavailable.
	ErrDraining = errors.New("server: draining, not accepting jobs")
)

// jobQueue is a bounded FIFO feeding the worker pool. Admission control
// is non-blocking: a full queue rejects immediately so the HTTP layer
// can push backpressure to clients instead of stalling connections.
//
// Synchronization contract: tryPush and close are only called with the
// owning Server's mutex held, which makes "push after close" impossible
// without any extra state here; workers drain ch concurrently.
type jobQueue struct {
	ch chan *job
}

func newJobQueue(size int) *jobQueue {
	if size < 1 {
		size = 1
	}
	return &jobQueue{ch: make(chan *job, size)}
}

// tryPush enqueues j if capacity remains, reporting success.
func (q *jobQueue) tryPush(j *job) bool {
	select {
	case q.ch <- j:
		return true
	default:
		return false
	}
}

// close stops intake. Workers keep draining buffered jobs until empty —
// that drain is what makes shutdown graceful rather than lossy.
func (q *jobQueue) close() { close(q.ch) }

// depth returns the number of queued jobs.
func (q *jobQueue) depth() int { return len(q.ch) }
