package tracefile

import (
	"errors"
	"fmt"
	"io"

	"offloadsim/internal/core"
	"offloadsim/internal/stats"
	"offloadsim/internal/syscalls"
	"offloadsim/internal/trace"
)

// ReplayReport summarizes a predictor evaluated against a recorded trace.
type ReplayReport struct {
	Entries  uint64
	Syscalls uint64
	Traps    uint64

	// Run-length accuracy over syscall records (window traps excluded,
	// per §IV's reporting convention).
	Exact   float64
	Within5 float64

	// BinaryAccuracy is the off-load/stay hit rate at the replay
	// threshold, syscalls only.
	BinaryAccuracy float64
	// OffloadRate is off-load decisions per OS entry.
	OffloadRate float64
}

// Replay drives every record of r through the predictor at threshold n,
// training after each decision exactly as the live hardware would.
func Replay(r *Reader, pred core.Predictor, n int) (ReplayReport, error) {
	eng := core.NewEngine(pred, n)
	var rep ReplayReport
	var acc core.Accuracy
	var binOK, offloads uint64
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return rep, err
		}
		d := eng.Decide(rec.AState)
		eng.Train(rec.AState, d, rec.Instrs)
		rep.Entries++
		if d.Offload {
			offloads++
		}
		if rec.Kind != trace.SyscallSegment {
			rep.Traps++
			continue
		}
		rep.Syscalls++
		acc.Record(d.Predicted, rec.Instrs)
		if d.Offload == (rec.Instrs > n) {
			binOK++
		}
	}
	if rep.Entries == 0 {
		return rep, fmt.Errorf("tracefile: empty trace")
	}
	rep.Exact = acc.ExactRate()
	rep.Within5 = acc.Within5Rate()
	rep.BinaryAccuracy = stats.Ratio(binOK, rep.Syscalls)
	rep.OffloadRate = stats.Ratio(offloads, rep.Entries)
	return rep, nil
}

// Summary aggregates a trace's composition without evaluating anything.
type Summary struct {
	Entries    uint64
	Syscalls   uint64
	Traps      uint64
	OSInstrs   uint64
	UserInstrs uint64
	// RunLengths is a geometric histogram of invocation lengths.
	RunLengths *stats.Histogram
	// PerSyscall counts entries per entry point.
	PerSyscall map[string]uint64
	// PerCategory aggregates OS instruction time per kernel subsystem.
	PerCategory map[string]uint64
}

// Summarize scans a trace and reports its composition.
func Summarize(r *Reader) (Summary, error) {
	s := Summary{
		RunLengths:  stats.NewHistogram(24),
		PerSyscall:  map[string]uint64{},
		PerCategory: map[string]uint64{},
	}
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			return s, nil
		}
		if err != nil {
			return s, err
		}
		s.Entries++
		s.OSInstrs += uint64(rec.Instrs)
		s.UserInstrs += uint64(rec.UserGap)
		s.RunLengths.Observe(float64(rec.Instrs))
		s.PerSyscall[rec.Sys.String()]++
		s.PerCategory[syscalls.CategoryOf(rec.Sys).String()] += uint64(rec.Instrs)
		if rec.Kind == trace.SyscallSegment {
			s.Syscalls++
		} else {
			s.Traps++
		}
	}
}

// PrivFraction returns the trace's privileged-instruction share.
func (s Summary) PrivFraction() float64 {
	return stats.Ratio(s.OSInstrs, s.OSInstrs+s.UserInstrs)
}
