// Package tracefile records and replays OS-entry decision traces: the
// sequence of (segment kind, syscall, argument class, AState, run length)
// tuples a workload presents to the off-loading hardware. A recorded
// trace decouples predictor/policy studies from the timing simulator —
// the same stream can be replayed through any Predictor implementation,
// shared between machines, or inspected with cmd/tracedump — while
// staying byte-for-byte reproducible.
//
// The format is a small magic header followed by varint-encoded records;
// a typical apache trace costs ~10 bytes per OS entry.
package tracefile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"offloadsim/internal/syscalls"
	"offloadsim/internal/trace"
)

// magic identifies the format and its version.
const magic = "OSLTRC1\n"

// Record is one OS-entry event. User segments are not recorded: the
// decision hardware only observes privileged-mode transitions, and
// UserGap preserves the spacing it would have seen.
type Record struct {
	// Kind is the segment kind (SyscallSegment or TrapSegment).
	Kind trace.SegmentKind
	// Sys identifies the entry point.
	Sys syscalls.ID
	// ArgClass is the invocation's argument class.
	ArgClass int
	// AState is the register hash the predictor indexes with.
	AState uint64
	// Instrs is the invocation's actual run length.
	Instrs int
	// Interrupted marks invocations extended by an external interrupt.
	Interrupted bool
	// UserGap is the user-mode instruction count since the previous OS
	// entry.
	UserGap int
}

// Writer serializes records.
type Writer struct {
	w       *bufio.Writer
	started bool
	count   uint64
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (w *Writer) writeUvarint(v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.w.Write(buf[:n])
	return err
}

// Write appends one record.
func (w *Writer) Write(rec Record) error {
	if !w.started {
		if _, err := w.w.WriteString(magic); err != nil {
			return err
		}
		w.started = true
	}
	flags := uint64(rec.Kind) & 0x3
	if rec.Interrupted {
		flags |= 0x4
	}
	for _, v := range []uint64{
		flags,
		uint64(rec.Sys),
		uint64(rec.ArgClass),
		rec.AState,
		uint64(rec.Instrs),
		uint64(rec.UserGap),
	} {
		if err := w.writeUvarint(v); err != nil {
			return err
		}
	}
	w.count++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.count }

// Flush drains buffered output; call it before closing the destination.
func (w *Writer) Flush() error {
	if !w.started {
		// An empty trace still carries the header so readers can
		// distinguish "empty" from "not a trace".
		if _, err := w.w.WriteString(magic); err != nil {
			return err
		}
		w.started = true
	}
	return w.w.Flush()
}

// Reader deserializes records.
type Reader struct {
	r       *bufio.Reader
	started bool
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// ErrBadMagic reports a stream that is not a trace file.
var ErrBadMagic = errors.New("tracefile: bad magic (not an OS-entry trace)")

// Read returns the next record, or io.EOF at a clean end of stream.
func (r *Reader) Read() (Record, error) {
	if !r.started {
		head := make([]byte, len(magic))
		if _, err := io.ReadFull(r.r, head); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
				return Record{}, ErrBadMagic
			}
			return Record{}, err
		}
		if string(head) != magic {
			return Record{}, ErrBadMagic
		}
		r.started = true
	}
	flags, err := binary.ReadUvarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	var vals [5]uint64
	for i := range vals {
		v, err := binary.ReadUvarint(r.r)
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return Record{}, fmt.Errorf("tracefile: truncated record: %w", err)
		}
		vals[i] = v
	}
	rec := Record{
		Kind:        trace.SegmentKind(flags & 0x3),
		Interrupted: flags&0x4 != 0,
		Sys:         syscalls.ID(vals[0]),
		ArgClass:    int(vals[1]),
		AState:      vals[2],
		Instrs:      int(vals[3]),
		UserGap:     int(vals[4]),
	}
	if int(rec.Sys) < 0 || int(rec.Sys) >= syscalls.NumIDs {
		return Record{}, fmt.Errorf("tracefile: record with invalid syscall id %d", rec.Sys)
	}
	return rec, nil
}

// ReadAll drains the stream into a slice.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// Capture generates instrs worth of workload from src and writes the OS
// entries it produces. It returns the number of records captured.
func Capture(src trace.Source, instrs uint64, w io.Writer) (uint64, error) {
	tw := NewWriter(w)
	var generated uint64
	userGap := 0
	for generated < instrs {
		seg := src.Next()
		generated += uint64(seg.Instrs)
		if !seg.IsOS() {
			userGap += seg.Instrs
			continue
		}
		err := tw.Write(Record{
			Kind:        seg.Kind,
			Sys:         seg.Sys,
			ArgClass:    seg.ArgClass,
			AState:      seg.AState,
			Instrs:      seg.Instrs,
			Interrupted: seg.Interrupted,
			UserGap:     userGap,
		})
		if err != nil {
			return tw.Count(), err
		}
		userGap = 0
	}
	return tw.Count(), tw.Flush()
}
