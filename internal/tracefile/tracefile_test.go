package tracefile

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"offloadsim/internal/core"
	"offloadsim/internal/rng"
	"offloadsim/internal/syscalls"
	"offloadsim/internal/trace"
	"offloadsim/internal/workloads"
)

func sampleRecords() []Record {
	return []Record{
		{Kind: trace.SyscallSegment, Sys: syscalls.Read, ArgClass: 3, AState: 0xDEADBEEF, Instrs: 3300, UserGap: 2500},
		{Kind: trace.TrapSegment, Sys: syscalls.SpillTrap, AState: 42, Instrs: 18},
		{Kind: trace.SyscallSegment, Sys: syscalls.Fork, ArgClass: 1, AState: 7, Instrs: 27000, Interrupted: true, UserGap: 900},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, rec := range sampleRecords() {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Fatalf("count = %d", w.Count())
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := NewReader(&buf).ReadAll()
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty trace: %v, %d records", err, len(recs))
	}
}

func TestBadMagicRejected(t *testing.T) {
	r := NewReader(bytes.NewBufferString("not a trace at all"))
	if _, err := r.Read(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
	// Too-short stream.
	r = NewReader(bytes.NewBufferString("hi"))
	if _, err := r.Read(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("short stream: got %v", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-2]
	r := NewReader(bytes.NewReader(data))
	_, err := r.Read()
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated record read as %v", err)
	}
}

func TestInvalidSyscallRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Record{Kind: trace.SyscallSegment, Sys: syscalls.ID(9999), Instrs: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(&buf).Read(); err == nil {
		t.Fatal("invalid syscall id accepted")
	}
}

func captureApache(t *testing.T, instrs uint64) *bytes.Buffer {
	t.Helper()
	space := &trace.AddressSpace{}
	src := rng.New(71)
	kernel := trace.NewKernelLayout(space, src.Fork())
	gen := trace.MustNewGenerator(workloads.Apache(), 0, kernel, space, src.Fork())
	var buf bytes.Buffer
	n, err := Capture(gen, instrs, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("captured no records")
	}
	return &buf
}

func TestCaptureAndSummarize(t *testing.T) {
	buf := captureApache(t, 500_000)
	s, err := Summarize(NewReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if s.Entries == 0 || s.Syscalls == 0 || s.Traps == 0 {
		t.Fatalf("summary missing activity: %+v", s)
	}
	// Apache's privileged share must survive the round trip.
	if pf := s.PrivFraction(); pf < 0.35 || pf > 0.65 {
		t.Fatalf("trace privileged share %v outside apache's band", pf)
	}
	if s.PerSyscall["read"] == 0 {
		t.Fatal("no read syscalls in an apache trace")
	}
	if s.RunLengths.Total() != s.Entries {
		t.Fatal("histogram lost samples")
	}
}

func TestReplayAgainstPredictor(t *testing.T) {
	buf := captureApache(t, 2_000_000)
	rep, err := Replay(NewReader(bytes.NewReader(buf.Bytes())), core.NewCAMPredictor(core.DefaultCAMEntries), 500)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != rep.Syscalls+rep.Traps {
		t.Fatal("entry split inconsistent")
	}
	if rep.BinaryAccuracy < 0.80 {
		t.Fatalf("replay binary accuracy %v too low", rep.BinaryAccuracy)
	}
	if rep.OffloadRate <= 0 || rep.OffloadRate >= 1 {
		t.Fatalf("offload rate %v implausible", rep.OffloadRate)
	}
	if rep.Exact+rep.Within5 < 0.5 {
		t.Fatalf("replay run-length accuracy %v too low", rep.Exact+rep.Within5)
	}
}

func TestReplayEmptyTraceFails(t *testing.T) {
	var buf bytes.Buffer
	if err := NewWriter(&buf).Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(NewReader(&buf), core.NewCAMPredictor(8), 100); err == nil {
		t.Fatal("empty trace replayed successfully")
	}
}

// Property: any record round-trips bit-exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(kindRaw uint8, sysRaw uint8, class uint8, astate uint64, instrs uint16, gap uint16, intr bool) bool {
		rec := Record{
			Kind:        trace.SegmentKind(1 + int(kindRaw)%2), // syscall or trap
			Sys:         syscalls.ID(int(sysRaw) % syscalls.NumIDs),
			ArgClass:    int(class),
			AState:      astate,
			Instrs:      int(instrs),
			UserGap:     int(gap),
			Interrupted: intr,
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if w.Write(rec) != nil || w.Flush() != nil {
			return false
		}
		got, err := NewReader(&buf).ReadAll()
		return err == nil && len(got) == 1 && got[0] == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
