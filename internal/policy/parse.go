package policy

import "strings"

// Parse resolves a policy name or alias (case-insensitive) to its Kind.
// Accepted spellings follow the paper's Figure 5 vocabulary:
//
//	baseline, none            -> Baseline
//	si, static                -> StaticInstrumentation
//	di, dynamic               -> DynamicInstrumentation
//	hi, hardware              -> HardwarePredictor
//	oracle                    -> Oracle
//
// The second result is false for unknown names.
func Parse(s string) (Kind, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "baseline", "none":
		return Baseline, true
	case "si", "static":
		return StaticInstrumentation, true
	case "di", "dynamic":
		return DynamicInstrumentation, true
	case "hi", "hardware":
		return HardwarePredictor, true
	case "oracle":
		return Oracle, true
	}
	return 0, false
}
