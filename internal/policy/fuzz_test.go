package policy

import (
	"strings"
	"testing"
)

// FuzzParsePolicy drives Parse with arbitrary strings. Beyond "never
// panic", it pins the invariants the CLI and daemon rely on: the result
// is always one of the declared kinds, parsing is insensitive to case
// and surrounding whitespace, and every accepted kind's String() form
// parses back to itself.
func FuzzParsePolicy(f *testing.F) {
	for _, seed := range []string{
		"baseline", "none", "SI", "static", "DI", "dynamic",
		"HI", "hardware", "oracle", "  Oracle \t", "bogus", "",
		"Kind(3)", "hi ", "\nNONE\n", "óracle", "si\x00",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		k, ok := Parse(s)
		if !ok {
			if k != 0 {
				t.Fatalf("Parse(%q) = (%v, false): rejected input must return the zero Kind", s, k)
			}
			return
		}
		switch k {
		case Baseline, StaticInstrumentation, DynamicInstrumentation, HardwarePredictor, Oracle:
		default:
			t.Fatalf("Parse(%q) accepted unknown kind %d", s, int(k))
		}
		// Case and whitespace insensitivity.
		if k2, ok2 := Parse(strings.ToUpper(s)); !ok2 || k2 != k {
			t.Fatalf("Parse(%q) = %v but upper-cased = (%v, %v)", s, k, k2, ok2)
		}
		if k2, ok2 := Parse(" " + s + "\t"); !ok2 || k2 != k {
			t.Fatalf("Parse(%q) = %v but padded = (%v, %v)", s, k, k2, ok2)
		}
		// The canonical name round-trips.
		if k2, ok2 := Parse(k.String()); !ok2 || k2 != k {
			t.Fatalf("Parse(%v.String()) = (%v, %v), want (%v, true)", k, k2, ok2, k)
		}
	})
}
