package policy

import (
	"testing"

	"offloadsim/internal/syscalls"
)

func TestOracleDecidesOnActualLength(t *testing.T) {
	p := NewOracle(1000)
	d := p.Decide(syscallSeg(syscalls.Fork, 1, 22000))
	if !d.Offload || d.Overhead != 0 {
		t.Fatalf("oracle on long call: %+v", d)
	}
	if d.Predicted != 22000 {
		t.Fatalf("oracle predicted %d, want the true length", d.Predicted)
	}
	d = p.Decide(syscallSeg(syscalls.Getpid, 2, 85))
	if d.Offload {
		t.Fatalf("oracle off-loaded a short call: %+v", d)
	}
}

func TestOracleNeedsNoTraining(t *testing.T) {
	p := NewOracle(100)
	seg := syscallSeg(syscalls.Read, 3, 2850)
	d := p.Decide(seg)
	p.Observe(seg, d, seg.Instrs) // must be a no-op, not a panic
	if !d.Offload {
		t.Fatal("oracle missed a first-sight long call (no cold start)")
	}
}

func TestOracleThresholdPlumbing(t *testing.T) {
	p := NewOracle(100)
	if p.Kind() != Oracle || p.Name() != "oracle" {
		t.Fatal("identity wrong")
	}
	if p.Threshold() != 100 {
		t.Fatal("threshold lost")
	}
	p.SetThreshold(5000)
	if p.Threshold() != 5000 {
		t.Fatal("SetThreshold ignored")
	}
	d := p.Decide(syscallSeg(syscalls.Read, 1, 2850))
	if d.Offload {
		t.Fatal("2850 < 5000 should stay")
	}
	if p.Stats().Entries.Value() != 1 {
		t.Fatal("stats not recorded")
	}
}

func TestOracleViaFactory(t *testing.T) {
	p, err := New(Oracle, 0, 500, DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind() != Oracle {
		t.Fatalf("factory built %v", p.Kind())
	}
	// Predictor accessors must handle the oracle gracefully.
	if Engine(p) != nil {
		t.Fatal("oracle has no engine")
	}
	if SyscallAccuracy(p) != nil {
		t.Fatal("oracle has no accuracy books")
	}
	if _, ok := SyscallBinaryAccuracy(p); ok {
		t.Fatal("oracle has no binary accuracy")
	}
	ResetAccuracyBooks(p) // no-op, must not panic
}

func TestKindStringIncludesOracle(t *testing.T) {
	if Oracle.String() != "oracle" {
		t.Fatalf("Oracle.String() = %q", Oracle.String())
	}
}
