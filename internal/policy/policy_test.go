package policy

import (
	"testing"

	"offloadsim/internal/core"
	"offloadsim/internal/syscalls"
	"offloadsim/internal/trace"
)

func syscallSeg(id syscalls.ID, astate uint64, instrs int) *trace.Segment {
	return &trace.Segment{Kind: trace.SyscallSegment, Sys: id, AState: astate,
		Instrs: instrs, NominalInstrs: instrs}
}

func trapSeg(astate uint64) *trace.Segment {
	return &trace.Segment{Kind: trace.TrapSegment, Sys: syscalls.SpillTrap,
		AState: astate, Instrs: 18, NominalInstrs: 18}
}

func TestBaselineNeverOffloads(t *testing.T) {
	p := NewBaseline()
	for i := 0; i < 100; i++ {
		d := p.Decide(syscallSeg(syscalls.Fork, uint64(i), 20000))
		if d.Offload || d.Overhead != 0 {
			t.Fatalf("baseline decided %+v", d)
		}
	}
	if p.Stats().Entries.Value() != 100 || p.Stats().Offloads.Value() != 0 {
		t.Fatal("baseline stats wrong")
	}
}

func TestStaticSelectsLongSyscalls(t *testing.T) {
	ov := DefaultOverheads()
	p := NewStatic(5000, ov) // instruments mean length >= 10000
	// fork (mean 24500) must be instrumented; getpid must not.
	d := p.Decide(syscallSeg(syscalls.Fork, 1, 22000))
	if !d.Offload || d.Overhead != ov.SI {
		t.Fatalf("fork under SI: %+v", d)
	}
	d = p.Decide(syscallSeg(syscalls.Getpid, 2, 85))
	if d.Offload || d.Overhead != 0 {
		t.Fatalf("getpid under SI: %+v (uninstrumented entries are free)", d)
	}
}

func TestStaticIgnoresTraps(t *testing.T) {
	p := NewStatic(10, DefaultOverheads()) // threshold 20: everything qualifies
	d := p.Decide(trapSeg(9))
	if d.Offload || d.Overhead != 0 {
		t.Fatalf("SI instrumented a trap handler: %+v", d)
	}
}

func TestStaticSetShrinksWithLatency(t *testing.T) {
	small := InstrumentedCount(NewStatic(100, DefaultOverheads()))
	large := InstrumentedCount(NewStatic(5000, DefaultOverheads()))
	if small <= large {
		t.Fatalf("instrumented set should shrink with latency: %d vs %d", small, large)
	}
	if large == 0 {
		t.Fatal("conservative SI should still instrument fork/execve-class calls")
	}
}

func TestDynamicPaysOverheadAlways(t *testing.T) {
	ov := DefaultOverheads()
	p := NewDynamic(core.NewCAMPredictor(32), 1000, ov)
	// Unknown AState, global prediction 0 -> stay; overhead still paid.
	d := p.Decide(syscallSeg(syscalls.Getpid, 11, 85))
	if d.Offload {
		t.Fatal("cold DI should not offload")
	}
	if d.Overhead != ov.DI {
		t.Fatalf("DI overhead = %d, want %d even on stay", d.Overhead, ov.DI)
	}
	// Traps are instrumented too.
	d = p.Decide(trapSeg(12))
	if d.Overhead != ov.DI {
		t.Fatal("DI must instrument all entry points, including traps")
	}
}

func TestHardwareSingleCycle(t *testing.T) {
	ov := DefaultOverheads()
	p := NewHardware(core.NewCAMPredictor(32), 1000, ov)
	d := p.Decide(syscallSeg(syscalls.Read, 5, 3000))
	if d.Overhead != 1 {
		t.Fatalf("HI overhead = %d, want 1", d.Overhead)
	}
}

func TestPredictorPolicyLearnsAndOffloads(t *testing.T) {
	p := NewHardware(core.NewCAMPredictor(32), 1000, DefaultOverheads())
	seg := syscallSeg(syscalls.Fork, 77, 22000)
	// First decision is cold; train twice.
	for i := 0; i < 3; i++ {
		d := p.Decide(seg)
		p.Observe(seg, d, seg.Instrs)
	}
	d := p.Decide(seg)
	if !d.Offload {
		t.Fatalf("trained policy did not offload a 22k-instruction call: %+v", d)
	}
	if d.Predicted != 22000 {
		t.Fatalf("prediction = %d, want 22000", d.Predicted)
	}
}

func TestThresholdPlumbing(t *testing.T) {
	p := NewHardware(core.NewCAMPredictor(32), 1000, DefaultOverheads())
	if p.Threshold() != 1000 {
		t.Fatal("initial threshold lost")
	}
	p.SetThreshold(100)
	if p.Threshold() != 100 {
		t.Fatal("SetThreshold ignored")
	}
	// Baseline and SI have no threshold but must not panic.
	for _, q := range []Policy{NewBaseline(), NewStatic(5000, DefaultOverheads())} {
		q.SetThreshold(42)
		if q.Threshold() != 0 {
			t.Fatalf("%s reports threshold %d", q.Name(), q.Threshold())
		}
	}
}

func TestEngineAccessor(t *testing.T) {
	hi := NewHardware(core.NewCAMPredictor(8), 500, DefaultOverheads())
	if Engine(hi) == nil {
		t.Fatal("Engine(HI) returned nil")
	}
	if Engine(NewBaseline()) != nil {
		t.Fatal("Engine(baseline) should be nil")
	}
}

func TestNewFactory(t *testing.T) {
	for _, k := range []Kind{Baseline, StaticInstrumentation, DynamicInstrumentation, HardwarePredictor} {
		p, err := New(k, 5000, 1000, DefaultOverheads())
		if err != nil {
			t.Fatalf("New(%v): %v", k, err)
		}
		if p.Kind() != k {
			t.Fatalf("New(%v) built %v", k, p.Kind())
		}
	}
	if _, err := New(Kind(99), 0, 0, DefaultOverheads()); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := New(Baseline, 0, 0, Overheads{SI: -1}); err == nil {
		t.Fatal("invalid overheads accepted")
	}
}

func TestOffloadRateStat(t *testing.T) {
	p := NewStatic(5000, DefaultOverheads())
	p.Decide(syscallSeg(syscalls.Fork, 1, 22000)) // offload
	p.Decide(syscallSeg(syscalls.Getpid, 2, 85))  // stay
	p.Decide(syscallSeg(syscalls.Getpid, 3, 85))  // stay
	if got := p.Stats().OffloadRate(); got != 1.0/3 {
		t.Fatalf("offload rate = %v", got)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{Baseline: "baseline", StaticInstrumentation: "SI",
		DynamicInstrumentation: "DI", HardwarePredictor: "HI"}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}
