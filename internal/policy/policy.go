// Package policy implements the off-loading decision policies compared in
// Figure 5 (§V-B):
//
//   - Baseline — no off-loading; everything runs on the user core.
//   - SI (static instrumentation) — offline profiling selects the system
//     calls whose mean run length is at least twice the migration latency;
//     only those are instrumented, and they always off-load
//     (Chakraborty et al. style).
//   - DI (dynamic instrumentation) — every OS entry point is instrumented
//     in software; the decision logic is the functional equivalent of the
//     hardware predictor, but each entry pays the instrumentation cost
//     whether or not it off-loads (Mogul et al. style, broadened to all
//     entries).
//   - HI (hardware instrumentation) — the paper's proposal: the hardware
//     run-length predictor makes a single-cycle decision.
//
// Policies are per-core objects, exactly as each core would own its own
// predictor hardware.
package policy

import (
	"fmt"

	"offloadsim/internal/core"
	"offloadsim/internal/stats"
	"offloadsim/internal/syscalls"
	"offloadsim/internal/trace"
)

// Kind enumerates the policy families.
type Kind int

const (
	// Baseline never off-loads.
	Baseline Kind = iota
	// StaticInstrumentation is SI.
	StaticInstrumentation
	// DynamicInstrumentation is DI.
	DynamicInstrumentation
	// HardwarePredictor is HI.
	HardwarePredictor
	// Oracle off-loads on the invocation's true run length with zero
	// overhead: the upper bound any predictor-based policy can reach.
	Oracle
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Baseline:
		return "baseline"
	case StaticInstrumentation:
		return "SI"
	case DynamicInstrumentation:
		return "DI"
	case HardwarePredictor:
		return "HI"
	case Oracle:
		return "oracle"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Overheads sets the decision-making costs in cycles, paid on the user
// core at every instrumented OS entry.
type Overheads struct {
	// SI is the cost of the static off-load branch on instrumented
	// syscalls (§II measures the getpid example at 17->33 instructions
	// for the most trivial form).
	SI int
	// DI is the cost of full software instrumentation at every entry:
	// examining registers and internal structures runs "to hundreds of
	// cycles" (§II); it is paid even when the verdict is "stay".
	DI int
	// HI is the hardware predictor lookup: single cycle (§II).
	HI int
}

// DefaultOverheads returns the §II-derived costs. DI's examination of
// "multiple register values, or accessing internal data structures" puts
// it at the hundreds-of-cycles end of §II's range.
func DefaultOverheads() Overheads {
	return Overheads{SI: 16, DI: 320, HI: 1}
}

// Validate rejects negative overheads.
func (o Overheads) Validate() error {
	if o.SI < 0 || o.DI < 0 || o.HI < 0 {
		return fmt.Errorf("policy: negative overhead in %+v", o)
	}
	return nil
}

// Decision is the verdict for one OS entry.
type Decision struct {
	Offload bool
	// Overhead is the decision cost in cycles charged to the user core.
	Overhead int
	// Predicted is the run-length estimate behind the verdict (0 when
	// the policy does not estimate).
	Predicted int
	// Source says which sub-predictor produced Predicted (predictor-based
	// policies only; zero-valued otherwise).
	Source core.PredictionSource
}

// Policy is the per-core decision interface. Decide is consulted at every
// transition to privileged mode; Observe feeds back the invocation's
// actual instruction count after it retires.
type Policy interface {
	Kind() Kind
	Name() string
	Decide(seg *trace.Segment) Decision
	Observe(seg *trace.Segment, d Decision, actual int)
	// Threshold returns the current off-load threshold N; policies
	// without a threshold return 0.
	Threshold() int
	// SetThreshold installs a new N (driven by the dynamic tuner).
	SetThreshold(n int)
	// Stats exposes decision accounting.
	Stats() *Stats
}

// Stats counts decisions and overhead.
type Stats struct {
	Entries        stats.Counter
	Offloads       stats.Counter
	OverheadCycles stats.Counter
}

// OffloadRate returns off-loads per OS entry.
func (s *Stats) OffloadRate() float64 {
	return stats.Ratio(s.Offloads.Value(), s.Entries.Value())
}

func (s *Stats) record(d Decision) {
	s.Entries.Inc()
	if d.Offload {
		s.Offloads.Inc()
	}
	s.OverheadCycles.Add(uint64(d.Overhead))
}

// baseline never off-loads and costs nothing.
type baseline struct {
	stats Stats
}

// NewBaseline returns the no-off-loading policy.
func NewBaseline() Policy { return &baseline{} }

func (b *baseline) Kind() Kind   { return Baseline }
func (b *baseline) Name() string { return "baseline" }
func (b *baseline) Decide(seg *trace.Segment) Decision {
	d := Decision{}
	b.stats.record(d)
	return d
}
func (b *baseline) Observe(*trace.Segment, Decision, int) {}
func (b *baseline) Threshold() int                        { return 0 }
func (b *baseline) SetThreshold(int)                      {}
func (b *baseline) Stats() *Stats                         { return &b.stats }

// static is SI: a fixed set of instrumented syscalls that always off-load.
type static struct {
	instrumented [syscalls.NumIDs]bool
	overhead     int
	stats        Stats
}

// SIProfileFactor is the selection rule from §V-B: instrument the OS
// routines whose profiled mean run length is at least twice the migration
// latency.
const SIProfileFactor = 2.0

// NewStatic builds SI for a given migration latency. The "offline
// profile" is the syscall catalog's nominal mean lengths — the best case
// for static profiling, since it is exact. Trap handlers are not
// instrumented: static proposals targeted system calls.
func NewStatic(migrationLatency int, ov Overheads) Policy {
	s := &static{overhead: ov.SI}
	for _, spec := range syscalls.All() {
		if syscalls.IsTrap(spec.ID) {
			continue
		}
		mean := float64(spec.BaseLength) + float64(spec.ArgScale)*float64(spec.ArgClasses-1)/2
		if mean >= SIProfileFactor*float64(migrationLatency) {
			s.instrumented[spec.ID] = true
		}
	}
	return s
}

// InstrumentedCount reports how many syscalls SI instruments (tests).
func InstrumentedCount(p Policy) int {
	s, ok := p.(*static)
	if !ok {
		return 0
	}
	n := 0
	for _, b := range s.instrumented {
		if b {
			n++
		}
	}
	return n
}

func (s *static) Kind() Kind   { return StaticInstrumentation }
func (s *static) Name() string { return "SI" }
func (s *static) Decide(seg *trace.Segment) Decision {
	var d Decision
	if seg.Kind == trace.SyscallSegment && s.instrumented[seg.Sys] {
		d = Decision{Offload: true, Overhead: s.overhead}
	}
	s.stats.record(d)
	return d
}
func (s *static) Observe(*trace.Segment, Decision, int) {}
func (s *static) Threshold() int                        { return 0 }
func (s *static) SetThreshold(int)                      {}
func (s *static) Stats() *Stats                         { return &s.stats }

// predictorPolicy is the shared body of DI and HI: both consult a
// run-length prediction engine and compare against N; they differ only in
// the per-entry cost and the policy kind they report.
type predictorPolicy struct {
	kind     Kind
	name     string
	engine   *core.Engine
	overhead int
	stats    Stats

	// Syscall-only accuracy books. §IV notes the SPARC-specific
	// spill/fill invocations are omitted from reported statistics where
	// they would skew results; these counters score system calls only,
	// while the engine's own accounting covers every OS entry.
	sysAcc        core.Accuracy
	sysBinTotal   stats.Counter
	sysBinCorrect stats.Counter
}

// NewDynamic builds DI: the software twin of the hardware engine. It
// instruments *all* OS entry points (syscalls and traps), paying ov.DI
// cycles per entry.
func NewDynamic(pred core.Predictor, threshold int, ov Overheads) Policy {
	return &predictorPolicy{
		kind:     DynamicInstrumentation,
		name:     "DI",
		engine:   core.NewEngine(pred, threshold),
		overhead: ov.DI,
	}
}

// NewHardware builds HI: the paper's hardware predictor policy with its
// single-cycle decision.
func NewHardware(pred core.Predictor, threshold int, ov Overheads) Policy {
	return &predictorPolicy{
		kind:     HardwarePredictor,
		name:     "HI",
		engine:   core.NewEngine(pred, threshold),
		overhead: ov.HI,
	}
}

func (p *predictorPolicy) Kind() Kind   { return p.kind }
func (p *predictorPolicy) Name() string { return p.name }

func (p *predictorPolicy) Decide(seg *trace.Segment) Decision {
	dec := p.engine.Decide(seg.AState)
	d := Decision{Offload: dec.Offload, Overhead: p.overhead, Predicted: dec.Predicted, Source: dec.Source}
	p.stats.record(d)
	return d
}

func (p *predictorPolicy) Observe(seg *trace.Segment, d Decision, actual int) {
	p.engine.Train(seg.AState, core.Decision{Offload: d.Offload, Predicted: d.Predicted}, actual)
	if seg.Kind == trace.SyscallSegment {
		p.sysAcc.Record(d.Predicted, actual)
		p.sysBinTotal.Inc()
		if d.Offload == (actual > p.engine.Threshold()) {
			p.sysBinCorrect.Inc()
		}
	}
}

// SyscallAccuracy returns the run-length accuracy over system calls only
// (window traps excluded, per §IV's reporting convention).
func (p *predictorPolicy) SyscallAccuracy() *core.Accuracy { return &p.sysAcc }

// SyscallBinaryAccuracy returns the syscall-only binary decision hit rate
// (Figure 3's metric).
func (p *predictorPolicy) SyscallBinaryAccuracy() float64 {
	return stats.Ratio(p.sysBinCorrect.Value(), p.sysBinTotal.Value())
}

// resetSyscallBooks clears the syscall-only accounting (warmup boundary).
func (p *predictorPolicy) resetSyscallBooks() {
	p.sysAcc.Reset()
	p.sysBinTotal.Reset()
	p.sysBinCorrect.Reset()
}

func (p *predictorPolicy) Threshold() int     { return p.engine.Threshold() }
func (p *predictorPolicy) SetThreshold(n int) { p.engine.SetThreshold(n) }
func (p *predictorPolicy) Stats() *Stats      { return &p.stats }

// Engine exposes the underlying prediction engine of DI/HI policies for
// accuracy reporting; it returns nil for other kinds.
func Engine(p Policy) *core.Engine {
	if pp, ok := p.(*predictorPolicy); ok {
		return pp.engine
	}
	return nil
}

// SyscallAccuracy exposes the syscall-only accuracy books of DI/HI
// policies (nil for other kinds).
func SyscallAccuracy(p Policy) *core.Accuracy {
	if pp, ok := p.(*predictorPolicy); ok {
		return pp.SyscallAccuracy()
	}
	return nil
}

// SyscallBinaryAccuracy returns the syscall-only binary hit rate; the
// bool reports whether p tracks one.
func SyscallBinaryAccuracy(p Policy) (float64, bool) {
	if pp, ok := p.(*predictorPolicy); ok {
		return pp.SyscallBinaryAccuracy(), true
	}
	return 0, false
}

// ResetAccuracyBooks clears per-measurement accuracy accounting on DI/HI
// policies (no-op otherwise); predictor training state is preserved.
func ResetAccuracyBooks(p Policy) {
	if pp, ok := p.(*predictorPolicy); ok {
		pp.resetSyscallBooks()
		pp.engine.ResetBinaryAccuracy()
		pp.engine.Predictor().Accuracy().Reset()
	}
}

// oracle decides on the true run length: what a perfect single-cycle
// predictor would do. It bounds the benefit any history mechanism can
// deliver and is used in ablation studies.
type oracle struct {
	threshold int
	stats     Stats
}

// NewOracle builds the perfect-information policy.
func NewOracle(threshold int) Policy { return &oracle{threshold: threshold} }

func (o *oracle) Kind() Kind   { return Oracle }
func (o *oracle) Name() string { return "oracle" }
func (o *oracle) Decide(seg *trace.Segment) Decision {
	d := Decision{Offload: seg.Instrs > o.threshold, Predicted: seg.Instrs}
	o.stats.record(d)
	return d
}
func (o *oracle) Observe(*trace.Segment, Decision, int) {}
func (o *oracle) Threshold() int                        { return o.threshold }
func (o *oracle) SetThreshold(n int)                    { o.threshold = n }
func (o *oracle) Stats() *Stats                         { return &o.stats }

// New constructs a policy of the given kind with standard components: a
// fresh 200-entry CAM for predictor-based kinds.
func New(kind Kind, migrationLatency, threshold int, ov Overheads) (Policy, error) {
	if err := ov.Validate(); err != nil {
		return nil, err
	}
	switch kind {
	case Baseline:
		return NewBaseline(), nil
	case StaticInstrumentation:
		return NewStatic(migrationLatency, ov), nil
	case DynamicInstrumentation:
		return NewDynamic(core.NewCAMPredictor(core.DefaultCAMEntries), threshold, ov), nil
	case HardwarePredictor:
		return NewHardware(core.NewCAMPredictor(core.DefaultCAMEntries), threshold, ov), nil
	case Oracle:
		return NewOracle(threshold), nil
	}
	return nil, fmt.Errorf("policy: unknown kind %d", int(kind))
}
