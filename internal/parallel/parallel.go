// Package parallel provides the deterministic fan-out primitives shared
// by the quantum-parallel simulation engine (internal/sim), the sweep
// tool and the experiment runners. The contract everywhere is the same:
// work item i only touches item-private state, the assignment of items
// to goroutines is a static function of (workers, n), and results land
// in input order — so nothing observable depends on worker count or
// goroutine scheduling.
package parallel

import "sync"

// Resolve clamps a requested worker count to [1, n], treating 0 (and
// negatives) as "use fallback" — callers pass GOMAXPROCS or NumCPU as
// the fallback.
func Resolve(workers, fallback, n int) int {
	if workers <= 0 {
		workers = fallback
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Run invokes fn(i) for every i in [0, n), striping the indices across
// at most workers goroutines, and returns once every invocation has
// completed (the barrier). workers <= 1 runs inline. fn must confine
// itself to item-private state plus read-only shared state; Run
// provides the happens-before edge between all invocations and the
// caller's continuation.
func Run(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}

// Map runs fn over [0, n) on at most workers goroutines, feeding
// indices through a queue so uneven item costs balance, and returns the
// results in input order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}
