package parallel

import (
	"reflect"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	cases := []struct{ workers, fallback, n, want int }{
		{0, 4, 10, 4},  // zero -> fallback
		{-3, 4, 10, 4}, // negative -> fallback
		{8, 4, 3, 3},   // clamp to n
		{0, 16, 2, 2},  // fallback clamped to n
		{0, 0, 10, 1},  // degenerate fallback still yields >= 1
		{2, 4, 10, 2},  // explicit value passes through
		{5, 1, 0, 1},   // n == 0 still returns a sane minimum
	}
	for _, c := range cases {
		if got := Resolve(c.workers, c.fallback, c.n); got != c.want {
			t.Errorf("Resolve(%d,%d,%d) = %d, want %d", c.workers, c.fallback, c.n, got, c.want)
		}
	}
}

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 100} {
		const n = 37
		var hits [n]atomic.Int64
		Run(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d invoked %d times", workers, i, got)
			}
		}
	}
}

func TestRunZeroItems(t *testing.T) {
	called := false
	Run(4, 0, func(int) { called = true })
	if called {
		t.Fatal("fn invoked with n == 0")
	}
}

func TestMapInputOrder(t *testing.T) {
	const n = 53
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, 5, 64} {
		got := Map(workers, n, func(i int) int { return i * i })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: Map results out of input order: %v", workers, got)
		}
	}
}

func TestMapZeroItems(t *testing.T) {
	if got := Map(8, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("Map with n == 0 returned %v", got)
	}
}
