package cpu_test

import (
	"testing"

	"offloadsim/internal/enginebench"
)

// TestCoreStepZeroAllocs pins the steady-state allocation count of the
// detailed step loop at exactly zero. The hot path went through three
// rounds of de-allocation (pooled trace segments, the inline-entry
// directory table, the reusable reference buffer); this test is the
// regression fence that keeps per-instruction heap traffic from
// creeping back in behind a benchmark nobody re-reads.
func TestCoreStepZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	if testing.Short() {
		t.Skip("fixture warmup is not short")
	}
	if allocs := enginebench.CoreStepAllocs(100); allocs != 0 {
		t.Fatalf("detailed segment step allocates %v objects/op in steady state, want 0", allocs)
	}
}
