// Package cpu models the in-order cores of the simulated CMP (§IV: Simics
// with in-order UltraSPARC cores; the paper argues in-order multi-threaded
// cores are the realistic substrate for OS-intensive server work, citing
// Niagara/Rock/Atom).
//
// A Core charges one cycle per instruction plus memory stalls: instruction
// fetches and data references run through private L1 I/D arrays backed by
// the coherent L2 system, and every L1 miss stalls the core for the full
// hierarchy latency — the blocking behaviour of a single-issue in-order
// pipeline. Inclusion between L1s and the private L2 is maintained through
// the coherence system's back-invalidation hooks.
package cpu

import (
	"fmt"
	"math"

	"offloadsim/internal/cache"
	"offloadsim/internal/coherence"
	"offloadsim/internal/stats"
	"offloadsim/internal/trace"
)

// Config sizes a core's private L1s. Table II: 32 KB 2-way I and D, 1
// cycle, 64 B lines. The 1-cycle L1 hit is folded into the base CPI, so
// only misses add stall cycles.
type Config struct {
	L1I cache.Config
	L1D cache.Config
	// IFetchInterval is the instruction count per I-cache line fetch:
	// 64 B line / 4 B fixed-width SPARC instructions = 16.
	IFetchInterval int
}

// DefaultConfig returns the Table II core front end.
func DefaultConfig() Config {
	return Config{
		L1I: cache.Config{
			Name: "L1I", SizeBytes: 32 << 10, LineBytes: 64, Ways: 2, HitLatency: 1,
		},
		L1D: cache.Config{
			Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64, Ways: 2, HitLatency: 1,
		},
		IFetchInterval: 16,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.L1I.Validate(); err != nil {
		return err
	}
	if err := c.L1D.Validate(); err != nil {
		return err
	}
	if c.IFetchInterval < 1 {
		return fmt.Errorf("cpu: IFetchInterval %d < 1", c.IFetchInterval)
	}
	return nil
}

// Counters aggregates a core's execution statistics.
type Counters struct {
	Cycles     stats.Counter
	Instrs     stats.Counter
	UserInstrs stats.Counter
	OSInstrs   stats.Counter
	UserCycles stats.Counter
	OSCycles   stats.Counter
	StallCyc   stats.Counter // memory stall portion of Cycles
	IdleCyc    stats.Counter // cycles waiting on migration/queuing; the
	// core could clock-gate or enter a low-power state here (the basis
	// of the energy extension)
}

// IPC returns instructions per cycle over everything executed on the core.
func (c *Counters) IPC() float64 {
	return stats.Ratio(c.Instrs.Value(), c.Cycles.Value())
}

// Reset clears the counters (epoch boundaries).
func (c *Counters) Reset() { *c = Counters{} }

// Core is one in-order processor with private L1s, attached as one node
// of the coherent L2 system.
type Core struct {
	id   int
	node int
	cfg  Config
	l1i  *cache.Cache
	l1d  *cache.Cache
	sys  *coherence.System
	// mem is the active memory-system port: sys in serial mode, a
	// node-private coherence.EpochPort while a parallel quantum runs
	// (SetPort). Every L1 miss routes through it.
	mem coherence.Port

	memAcc float64 // fractional data-reference accumulator
	ifCnt  int     // instructions since last I-line fetch

	// refBuf is the detailed loop's reference staging buffer: RunSegment
	// drains each chunk of the segment's reference stream into it before
	// replaying the references through the memory hierarchy. Generating
	// and simulating in separate passes keeps the trace tables and the
	// tag/directory arrays from evicting each other every few
	// instructions. Allocated once; reused for every chunk.
	refBuf []uint64

	// Functional-warming state (interval sampling): while warming, the
	// core issues 1 of every warmStride references in bulk — enough to
	// keep cache and directory state alive — and estimates cycles
	// instead of accounting them per instruction.
	warming     bool
	warmStride  int
	warmIFCnt   int // I-fetches owed since the last warming fetch
	warmDataCnt int // data references owed since the last warming access

	// Calibrated CPI, tracked separately for user and OS segments while
	// the core executes in detail. Warming charges instrs×CPI instead of
	// scaling its strided stall sample: the strided references see a
	// warmer-than-steady cache (skipping references slows churn), so a
	// stall-derived clock runs systematically fast — and downstream the
	// OS-core queue model turns that clock bias into congestion error.
	cpiUser cpiEWMA
	cpiOS   cpiEWMA

	Counters Counters
}

// cpiTau is the instruction horizon of the CPI calibration: each update
// decays history by exp(-instrs/cpiTau), so the estimate tracks roughly
// the last ~50k detailed instructions.
const cpiTau = 50_000

// cpiMinInstrs is the minimum (decayed) instruction mass before a CPI
// estimate is trusted; below it warming falls back to stall scaling.
const cpiMinInstrs = 2_000

// cpiEWMA is an instruction-weighted exponential average of cycles per
// instruction.
type cpiEWMA struct {
	cyc, ins float64
}

func (e *cpiEWMA) update(cycles, instrs uint64) {
	f := math.Exp(-float64(instrs) / cpiTau)
	e.cyc = e.cyc*f + float64(cycles)
	e.ins = e.ins*f + float64(instrs)
}

func (e *cpiEWMA) cpi() (float64, bool) {
	if e.ins < cpiMinInstrs {
		return 0, false
	}
	return e.cyc / e.ins, true
}

// New builds a core attached to coherence node `node` of sys and wires
// the inclusion hooks. Core ids are only labels; the node index is what
// routes memory traffic.
func New(id, node int, cfg Config, sys *coherence.System) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l1iCfg := cfg.L1I
	l1iCfg.Name = fmt.Sprintf("%s%d", cfg.L1I.Name, id)
	l1dCfg := cfg.L1D
	l1dCfg.Name = fmt.Sprintf("%s%d", cfg.L1D.Name, id)
	l1i, err := cache.New(l1iCfg, nil)
	if err != nil {
		return nil, err
	}
	l1d, err := cache.New(l1dCfg, nil)
	if err != nil {
		return nil, err
	}
	c := &Core{id: id, node: node, cfg: cfg, l1i: l1i, l1d: l1d, sys: sys, mem: sys}
	sys.RegisterL1Hook(node, func(lineAddr uint64) {
		l1i.Invalidate(lineAddr)
		l1d.Invalidate(lineAddr)
	})
	return c, nil
}

// MustNew panics on config errors.
func MustNew(id, node int, cfg Config, sys *coherence.System) *Core {
	c, err := New(id, node, cfg, sys)
	if err != nil {
		panic(err)
	}
	return c
}

// ID returns the core's label.
func (c *Core) ID() int { return c.id }

// Node returns the coherence node the core drives.
func (c *Core) Node() int { return c.node }

// L1I exposes the instruction cache (stats/tests).
func (c *Core) L1I() *cache.Cache { return c.l1i }

// L1D exposes the data cache (stats/tests).
func (c *Core) L1D() *cache.Cache { return c.l1d }

// refChunkInstrs is the instruction span drained per draw/replay round
// of the detailed loop. Large enough that each pass amortises warming
// its working set into the host caches, small enough that the staged
// references (at most 2 per instruction) stay cache-resident.
const refChunkInstrs = 8192

// Reference kinds packed into the low two bits of a staged reference;
// the line address occupies the rest (line addresses are byte addresses
// shifted right by at least 6, so bits 62-63 are free).
const (
	refIF    = 0
	refRead  = 1
	refWrite = 2
)

// access runs one reference through an L1 array and, on a miss, the
// coherent L2 system. The returned cycles are the *stall* contribution: an
// L1 hit costs zero extra (its 1-cycle latency is the base CPI).
func (c *Core) access(l1 *cache.Cache, lineAddr uint64, write bool) int {
	l1.Stats.Accesses.Inc()
	// Probe = lookup + recency touch in one way scan. A present line is
	// touched even when the access continues as a write-upgrade miss:
	// the line is being used either way, and Allocate refreshes it again
	// on fill.
	st := l1.Probe(lineAddr)
	if st != cache.Invalid && (!write || st == cache.Modified) {
		l1.Stats.Hits.Inc()
		return 0
	}
	return c.missRef(l1, lineAddr, write)
}

// missRef completes an L1-missing reference through the coherent L2
// system and refills the L1. Split from access so RunSegment's replay
// loop can issue the hit path without a second call frame.
func (c *Core) missRef(l1 *cache.Cache, lineAddr uint64, write bool) int {
	l1.Stats.Misses.Inc()
	var lat int
	if write {
		lat, _ = c.mem.Write(c.node, lineAddr)
	} else {
		lat, _ = c.mem.Read(c.node, lineAddr)
	}
	fill := cache.Shared
	if write {
		fill = cache.Modified
	}
	// L1 victims need no action: inclusion guarantees the L2 still holds
	// the line, and dirty L1 data folds into the L2's Modified state.
	l1.Allocate(lineAddr, fill)
	return lat
}

// SetWarming switches the core between detailed execution and
// functional warming. stride must be >= 1: while warming, 1 of every
// stride cache references is performed (skipped references draw no
// randomness, which is where the speedup comes from) and the observed
// stall is scaled back up by stride to keep the core's clock estimate
// honest for scheduling and OS-core queuing.
func (c *Core) SetWarming(on bool, stride int) {
	if stride < 1 {
		stride = 1
	}
	c.warming = on
	c.warmStride = stride
}

// Warming reports whether the core is in functional-warming mode.
func (c *Core) Warming() bool { return c.warming }

// warmSegment is the functional-warming counterpart of RunSegment:
// references are issued in bulk with a stride to keep cache, directory
// and recency state alive, and no per-instruction work happens. Cycle
// cost is charged from the calibrated CPI of recent detailed execution
// (falling back to the scaled-up observed stall until calibration has
// seen enough instructions); a full-density warming segment (stride 1)
// performs exactly the references a detailed one would, so its observed
// stall is exact and feeds the calibration. The fractional fetch/data
// accumulators are shared with the detailed path so mode switches stay
// seamless.
func (c *Core) warmSegment(seg *trace.Segment) uint64 {
	nIF, ifCnt, nData, memAcc := seg.BatchRefs(c.cfg.IFetchInterval, c.ifCnt, c.memAcc)
	c.ifCnt, c.memAcc = ifCnt, memAcc

	stall := uint64(0)
	c.warmIFCnt += nIF
	for ; c.warmIFCnt >= c.warmStride; c.warmIFCnt -= c.warmStride {
		stall += uint64(c.access(c.l1i, seg.NextIFetch(), false))
	}
	c.warmDataCnt += nData
	for ; c.warmDataCnt >= c.warmStride; c.warmDataCnt -= c.warmStride {
		la, wr := seg.NextData()
		stall += uint64(c.access(c.l1d, la, wr))
	}

	e := &c.cpiUser
	if seg.IsOS() {
		e = &c.cpiOS
	}
	var cycles uint64
	if c.warmStride == 1 {
		cycles = uint64(seg.Instrs) + stall
		e.update(cycles, uint64(seg.Instrs))
	} else if cpi, ok := e.cpi(); ok {
		cycles = uint64(float64(seg.Instrs)*cpi + 0.5)
		if cycles < uint64(seg.Instrs) {
			cycles = uint64(seg.Instrs)
		}
	} else {
		cycles = uint64(seg.Instrs) + stall*uint64(c.warmStride)
	}
	stallOut := cycles - uint64(seg.Instrs)

	c.Counters.Cycles.Add(cycles)
	c.Counters.Instrs.Add(uint64(seg.Instrs))
	c.Counters.StallCyc.Add(stallOut)
	if seg.IsOS() {
		c.Counters.OSInstrs.Add(uint64(seg.Instrs))
		c.Counters.OSCycles.Add(cycles)
	} else {
		c.Counters.UserInstrs.Add(uint64(seg.Instrs))
		c.Counters.UserCycles.Add(cycles)
	}
	return cycles
}

// RunSegment executes one segment to completion and returns its cycle
// cost. The in-order pipeline retires one instruction per cycle; each
// I-line fetch and data reference that misses the L1 stalls retirement
// for the full miss latency. A core in warming mode takes the estimated
// bulk path instead.
func (c *Core) RunSegment(seg *trace.Segment) uint64 {
	if c.warming {
		return c.warmSegment(seg)
	}
	cycles := uint64(seg.Instrs)
	stall := uint64(0)
	// Hot loop, fissioned into a draw pass and a replay pass per chunk.
	// The draw pass walks the instruction stream exactly as a fused loop
	// would — same counters, same float accumulator (repeated addition is
	// not associative, so it must not be batched into a multiply), same
	// interleaving of I-fetch and data draws from the segment's stream —
	// but only records the references. The replay pass then issues them
	// through the hierarchy in that recorded order, so every cache,
	// directory and counter sees the identical access sequence. The split
	// exists purely for locality: drawing touches the workload's Zipf
	// guide/cdf tables, replaying touches the tag and directory arrays,
	// and interleaving the two per-instruction made each evict the other.
	ifCnt, memAcc := c.ifCnt, c.memAcc
	interval, ratio := c.cfg.IFetchInterval, seg.MemRatio
	if c.refBuf == nil {
		c.refBuf = make([]uint64, 0, refChunkInstrs+refChunkInstrs/interval+2)
	}
	for done := 0; done < seg.Instrs; {
		chunk := seg.Instrs - done
		if chunk > refChunkInstrs {
			chunk = refChunkInstrs
		}
		done += chunk
		buf := c.refBuf[:0]
		// Stride by I-fetch periods instead of testing the fetch counter
		// every instruction: a run covers the instructions up to and
		// including the next fetch (or the end of the chunk), the fetch
		// fires on the run's last instruction before that instruction's
		// data-reference check — exactly where the per-instruction
		// counter would have fired it.
		for i := 0; i < chunk; {
			run := interval - ifCnt
			if run < 1 {
				run = 1 // a counter carried at/past the interval fires immediately
			}
			fetch := true
			if run > chunk-i {
				run = chunk - i
				ifCnt += run
				fetch = false
			} else {
				ifCnt = 0
			}
			i += run
			if fetch {
				run--
			}
			for j := 0; j < run; j++ {
				memAcc += ratio
				if memAcc >= 1 {
					memAcc--
					la, wr := seg.NextData()
					op := uint64(refRead)
					if wr {
						op = refWrite
					}
					buf = append(buf, la<<2|op)
				}
			}
			if fetch {
				buf = append(buf, seg.NextIFetch()<<2|refIF)
				memAcc += ratio
				if memAcc >= 1 {
					memAcc--
					la, wr := seg.NextData()
					op := uint64(refRead)
					if wr {
						op = refWrite
					}
					buf = append(buf, la<<2|op)
				}
			}
		}
		c.refBuf = buf
		// Replay with the L1-hit path open-coded: hits are the common
		// case and this saves them the access() call frame. The access
		// sequence and every counter update match access() exactly.
		for _, r := range buf {
			la := r >> 2
			l1, write := c.l1d, false
			switch r & 3 {
			case refIF:
				l1 = c.l1i
			case refWrite:
				write = true
			}
			l1.Stats.Accesses.Inc()
			st := l1.Probe(la)
			if st != cache.Invalid && (!write || st == cache.Modified) {
				l1.Stats.Hits.Inc()
				continue
			}
			stall += uint64(c.missRef(l1, la, write))
		}
	}
	c.ifCnt, c.memAcc = ifCnt, memAcc
	cycles += stall

	if seg.IsOS() {
		c.cpiOS.update(cycles, uint64(seg.Instrs))
	} else {
		c.cpiUser.update(cycles, uint64(seg.Instrs))
	}
	c.Counters.Cycles.Add(cycles)
	c.Counters.Instrs.Add(uint64(seg.Instrs))
	c.Counters.StallCyc.Add(stall)
	if seg.IsOS() {
		c.Counters.OSInstrs.Add(uint64(seg.Instrs))
		c.Counters.OSCycles.Add(cycles)
	} else {
		c.Counters.UserInstrs.Add(uint64(seg.Instrs))
		c.Counters.UserCycles.Add(cycles)
	}
	return cycles
}

// Stall charges busy-wait cycles to the core (decision instrumentation):
// they advance time without retiring instructions, with the core active.
func (c *Core) Stall(cycles uint64) {
	c.Counters.Cycles.Add(cycles)
	c.Counters.StallCyc.Add(cycles)
}

// Idle charges low-power-eligible cycles (migration transit, OS-core
// queuing, remote execution): the core has nothing to execute and could
// sleep, which is what makes off-loading an energy play (Mogul et al.).
func (c *Core) Idle(cycles uint64) {
	c.Counters.Cycles.Add(cycles)
	c.Counters.IdleCyc.Add(cycles)
}

// AdjustIdle corrects a previously charged Idle estimate by delta
// cycles. The parallel engine charges an off-load's round trip from an
// epoch-start estimate during the quantum and trues it up here once the
// OS core resolves the actual execution and queuing cost at the
// barrier. A negative delta must not exceed the estimate it corrects.
func (c *Core) AdjustIdle(delta int64) {
	if delta >= 0 {
		c.Idle(uint64(delta))
		return
	}
	d := uint64(-delta)
	c.Counters.Cycles.Sub(d)
	c.Counters.IdleCyc.Sub(d)
}

// SetPort redirects the core's L1-miss traffic to p; nil restores the
// shared coherence system. The parallel engine installs a node-private
// coherence.EpochPort for the duration of each quantum.
func (c *Core) SetPort(p coherence.Port) {
	if p == nil {
		c.mem = c.sys
		return
	}
	c.mem = p
}

// ResetStats clears core and L1 counters, preserving cache contents.
func (c *Core) ResetStats() {
	c.Counters.Reset()
	c.l1i.Stats.Reset()
	c.l1d.Stats.Reset()
}

// MissCount returns the combined L1 I+D miss count — the telemetry
// layer differences it around an off-loaded invocation to price the OS
// core's cache warm-up.
func (c *Core) MissCount() uint64 {
	return c.l1i.Stats.Misses.Value() + c.l1d.Stats.Misses.Value()
}

// CalibratedCPI reports the core's current calibrated cycles-per-
// instruction estimates for user and OS segments (zero until warming
// calibration has seen enough detailed instructions). Diagnostic.
func (c *Core) CalibratedCPI() (user, os float64) {
	user, _ = c.cpiUser.cpi()
	os, _ = c.cpiOS.cpi()
	return user, os
}
