package cpu_test

import (
	"testing"

	"offloadsim/internal/enginebench"
)

// BenchmarkCoreStep is the inner loop of the detailed engine: one
// segment stepped through an in-order core in steady state. Must report
// 0 allocs/op; TestCoreStepZeroAllocs pins that.
func BenchmarkCoreStep(b *testing.B) { enginebench.CoreStep(b) }
