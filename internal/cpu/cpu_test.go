package cpu

import (
	"testing"

	"offloadsim/internal/cache"
	"offloadsim/internal/coherence"
	"offloadsim/internal/interconnect"
	"offloadsim/internal/memory"
	"offloadsim/internal/rng"
	"offloadsim/internal/trace"
	"offloadsim/internal/workloads"
)

func testSystem(nodes int) *coherence.System {
	return coherence.MustNew(coherence.Config{
		NumNodes:         nodes,
		L2:               cache.Config{Name: "L2", SizeBytes: 64 << 10, LineBytes: 64, Ways: 4, HitLatency: 12},
		DirectoryLatency: 10,
		Fabric:           interconnect.Config{LinkLatency: 4, RouterLatency: 1},
		Memory:           memory.Config{Latency: 350},
	}, nil)
}

func testSegment(t testing.TB, seed uint64) (*trace.Generator, trace.Segment) {
	t.Helper()
	space := &trace.AddressSpace{}
	src := rng.New(seed)
	k := trace.NewKernelLayout(space, src.Fork())
	g := trace.MustNewGenerator(workloads.Apache(), 0, k, space, src.Fork())
	return g, g.Next()
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.IFetchInterval = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero fetch interval accepted")
	}
	bad = DefaultConfig()
	bad.L1D.LineBytes = 48
	if err := bad.Validate(); err == nil {
		t.Fatal("bad L1D accepted")
	}
}

func TestRunSegmentChargesAtLeastOneCyclePerInstr(t *testing.T) {
	sys := testSystem(1)
	c := MustNew(0, 0, DefaultConfig(), sys)
	_, seg := testSegment(t, 5)
	cycles := c.RunSegment(&seg)
	if cycles < uint64(seg.Instrs) {
		t.Fatalf("cycles %d < instrs %d", cycles, seg.Instrs)
	}
	if c.Counters.Instrs.Value() != uint64(seg.Instrs) {
		t.Fatal("instruction counter mismatch")
	}
	if c.Counters.Cycles.Value() != cycles {
		t.Fatal("cycle counter mismatch")
	}
}

func TestWarmCacheRunsFaster(t *testing.T) {
	sys := testSystem(1)
	c := MustNew(0, 0, DefaultConfig(), sys)
	g, _ := testSegment(t, 7)
	// Use a long user segment; run a clone of the access pattern twice.
	var seg trace.Segment
	for {
		seg = g.Next()
		if seg.Kind == trace.UserSegment && seg.Instrs > 500 {
			break
		}
	}
	cold := c.RunSegment(&seg)
	warm := c.RunSegment(&seg) // walkers advance, but hot set is cached now
	if warm >= cold {
		t.Fatalf("warm run (%d) not faster than cold run (%d)", warm, cold)
	}
}

func TestUserOSSplitAccounting(t *testing.T) {
	sys := testSystem(1)
	c := MustNew(0, 0, DefaultConfig(), sys)
	g, _ := testSegment(t, 9)
	for i := 0; i < 50; i++ {
		seg := g.Next()
		c.RunSegment(&seg)
	}
	cnt := &c.Counters
	if cnt.UserInstrs.Value() == 0 || cnt.OSInstrs.Value() == 0 {
		t.Fatal("user/OS split not populated")
	}
	if cnt.UserInstrs.Value()+cnt.OSInstrs.Value() != cnt.Instrs.Value() {
		t.Fatal("user+OS != total instructions")
	}
	if cnt.UserCycles.Value()+cnt.OSCycles.Value() != cnt.Cycles.Value() {
		t.Fatal("user+OS != total cycles")
	}
}

func TestStallAdvancesTimeWithoutInstrs(t *testing.T) {
	sys := testSystem(1)
	c := MustNew(0, 0, DefaultConfig(), sys)
	c.Stall(5000)
	if c.Counters.Cycles.Value() != 5000 || c.Counters.Instrs.Value() != 0 {
		t.Fatal("Stall accounting wrong")
	}
	if c.Counters.IPC() != 0 {
		t.Fatal("IPC of pure stall should be 0")
	}
}

func TestInclusionBackInvalidation(t *testing.T) {
	sys := testSystem(2)
	c0 := MustNew(0, 0, DefaultConfig(), sys)
	c1 := MustNew(1, 1, DefaultConfig(), sys)
	// Core 0 reads a line into L1D+L2.
	c0.access(c0.l1d, 42, false)
	if c0.L1D().Lookup(42) == cache.Invalid {
		t.Fatal("line not in L1D after access")
	}
	// Core 1 writes the same line: node 0's L2 copy is invalidated, and
	// inclusion must drop the L1 copy too.
	c1.access(c1.l1d, 42, true)
	if c0.L1D().Lookup(42) != cache.Invalid {
		t.Fatal("L1 copy survived L2 invalidation (inclusion violated)")
	}
}

func TestL1HitCostsNoStall(t *testing.T) {
	sys := testSystem(1)
	c := MustNew(0, 0, DefaultConfig(), sys)
	if lat := c.access(c.l1d, 7, false); lat == 0 {
		t.Fatal("cold access should stall")
	}
	if lat := c.access(c.l1d, 7, false); lat != 0 {
		t.Fatalf("L1 hit stalled %d cycles", lat)
	}
}

func TestWriteUpgradeGoesToL2(t *testing.T) {
	sys := testSystem(2)
	c0 := MustNew(0, 0, DefaultConfig(), sys)
	c1 := MustNew(1, 1, DefaultConfig(), sys)
	// Both read: line Shared in both L1/L2 pairs.
	c0.access(c0.l1d, 9, false)
	c1.access(c1.l1d, 9, false)
	// Write from core 0 must upgrade (stall > 0) and invalidate core 1.
	if lat := c0.access(c0.l1d, 9, true); lat == 0 {
		t.Fatal("write upgrade from Shared should not be free")
	}
	if c1.L1D().Lookup(9) != cache.Invalid {
		t.Fatal("remote L1 copy survived upgrade")
	}
	// Subsequent write is a pure L1 hit.
	if lat := c0.access(c0.l1d, 9, true); lat != 0 {
		t.Fatalf("write to Modified L1 line stalled %d", lat)
	}
}

func TestResetStatsPreservesCaches(t *testing.T) {
	sys := testSystem(1)
	c := MustNew(0, 0, DefaultConfig(), sys)
	c.access(c.l1d, 3, false)
	c.ResetStats()
	if c.Counters.Cycles.Value() != 0 {
		t.Fatal("counters not reset")
	}
	if lat := c.access(c.l1d, 3, false); lat != 0 {
		t.Fatal("reset discarded cache contents")
	}
}

func TestIFetchesHappen(t *testing.T) {
	sys := testSystem(1)
	c := MustNew(0, 0, DefaultConfig(), sys)
	_, seg := testSegment(t, 13)
	c.RunSegment(&seg)
	if c.L1I().Stats.Accesses.Value() == 0 {
		t.Fatal("no instruction fetches recorded")
	}
	// Roughly Instrs/16 fetches.
	want := uint64(seg.Instrs / 16)
	got := c.L1I().Stats.Accesses.Value()
	if got < want/2 || got > want*2+2 {
		t.Fatalf("ifetches = %d, want ~%d", got, want)
	}
}
