// Package stats provides the light-weight measurement plumbing used by the
// simulator: event counters, running means/variances, histograms with
// configurable bucketing, and epoch series used by the dynamic threshold
// tuner. Everything is plain in-memory arithmetic — the package exists so
// that each simulator component reports through one consistent vocabulary
// and so experiment runners can render results uniformly.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Add increments the counter by d (d may be zero; negative deltas panic).
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Sub decrements the counter by d. The one sanctioned use is replacing
// an estimated charge with its resolved value (the parallel engine's
// quantum-barrier true-up); d must not exceed the current count.
func (c *Counter) Sub(d uint64) { c.n -= d }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Ratio returns a/b as a float, or 0 when b is zero. It is the common
// "hit rate" helper used throughout the cache and predictor stats.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Pct formats a fraction as a percentage string with two decimals.
func Pct(f float64) string {
	return fmt.Sprintf("%.2f%%", 100*f)
}

// Running accumulates a streaming mean and variance using Welford's
// algorithm; used for queuing-delay and run-length summaries where holding
// every observation would be wasteful.
type Running struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe adds one sample.
func (r *Running) Observe(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of samples observed.
func (r *Running) N() uint64 { return r.n }

// Mean returns the sample mean (0 with no samples).
func (r *Running) Mean() float64 { return r.mean }

// Sum returns the sample total, reconstructed as mean x n — bit-for-bit
// the expression interval collectors historically computed inline, kept
// identical so switching them to Sum() cannot move golden results.
func (r *Running) Sum() float64 { return r.mean * float64(r.n) }

// Variance returns the population variance (0 with <2 samples).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observed sample (0 with no samples).
func (r *Running) Min() float64 {
	if r.n == 0 {
		return 0
	}
	return r.min
}

// Max returns the largest observed sample (0 with no samples).
func (r *Running) Max() float64 {
	if r.n == 0 {
		return 0
	}
	return r.max
}

// Reset discards all samples.
func (r *Running) Reset() { *r = Running{} }

// Histogram counts samples into geometric (power-of-two) buckets starting
// at bucket [0,1), then [1,2), [2,4), [4,8)... It is used for OS invocation
// run-length distributions, where the interesting structure spans five
// orders of magnitude.
type Histogram struct {
	buckets []uint64
	total   uint64
	sum     float64
}

// NewHistogram returns a histogram with nBuckets geometric buckets; samples
// beyond the last bucket are clamped into it.
func NewHistogram(nBuckets int) *Histogram {
	if nBuckets < 1 {
		nBuckets = 1
	}
	return &Histogram{buckets: make([]uint64, nBuckets)}
}

// bucketFor maps a non-negative sample to its bucket index.
func (h *Histogram) bucketFor(x float64) int {
	if x < 1 {
		return 0
	}
	idx := 1 + int(math.Floor(math.Log2(x)))
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	return idx
}

// Observe adds one sample; negative samples count in bucket 0.
func (h *Histogram) Observe(x float64) {
	if x < 0 {
		x = 0
	}
	h.buckets[h.bucketFor(x)]++
	h.total++
	h.sum += x
}

// Total returns the sample count.
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the mean of observed samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 {
	if i < 0 || i >= len(h.buckets) {
		return 0
	}
	return h.buckets[i]
}

// NumBuckets returns the bucket count.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// BucketLow returns the inclusive lower bound of bucket i.
func (h *Histogram) BucketLow(i int) float64 {
	if i <= 0 {
		return 0
	}
	return math.Pow(2, float64(i-1))
}

// FractionAbove returns the fraction of samples whose bucket lower bound is
// >= threshold. Because bucketing is coarse this is approximate, matching
// its use as a quick distribution summary.
func (h *Histogram) FractionAbove(threshold float64) float64 {
	if h.total == 0 {
		return 0
	}
	var above uint64
	for i := range h.buckets {
		if h.BucketLow(i) >= threshold {
			above += h.buckets[i]
		}
	}
	return float64(above) / float64(h.total)
}

// Quantile returns an approximate q-quantile (0<=q<=1) using bucket lower
// bounds.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i]
		if cum >= target {
			return h.BucketLow(i)
		}
	}
	return h.BucketLow(len(h.buckets) - 1)
}

// Series is an ordered list of (label, value) points used for epoch-level
// feedback (e.g. L2 hit rate per epoch) and for rendering figure rows.
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// Append adds one point.
func (s *Series) Append(label string, v float64) {
	s.Labels = append(s.Labels, label)
	s.Values = append(s.Values, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Values) }

// Last returns the most recent value (0 when empty).
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// Mean returns the mean of all points (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Median computes the exact median of a copy of xs; it does not modify xs.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// GeoMean returns the geometric mean of xs; non-positive entries are
// skipped. Used to aggregate normalized throughput across benchmarks, the
// conventional aggregation for ratios.
func GeoMean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		sum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
