package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatal("zero value not zero")
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset did not zero")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio with zero denominator should be 0")
	}
	if got := Ratio(3, 4); got != 0.75 {
		t.Fatalf("Ratio(3,4) = %v", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.1234); got != "12.34%" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestRunningMoments(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Observe(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", r.Mean())
	}
	if math.Abs(r.Variance()-4) > 1e-12 {
		t.Fatalf("Variance = %v, want 4", r.Variance())
	}
	if math.Abs(r.StdDev()-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", r.StdDev())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.Min() != 0 || r.Max() != 0 {
		t.Fatal("empty Running should report zeros")
	}
}

func TestRunningReset(t *testing.T) {
	var r Running
	r.Observe(3)
	r.Reset()
	if r.N() != 0 || r.Mean() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(8)
	h.Observe(0)   // bucket 0
	h.Observe(0.5) // bucket 0
	h.Observe(1)   // bucket 1 [1,2)
	h.Observe(3)   // bucket 2 [2,4)
	h.Observe(100) // bucket 7 clamped? log2(100)=6.64 -> 1+6=7
	if h.Bucket(0) != 2 {
		t.Fatalf("bucket 0 = %d", h.Bucket(0))
	}
	if h.Bucket(1) != 1 {
		t.Fatalf("bucket 1 = %d", h.Bucket(1))
	}
	if h.Bucket(2) != 1 {
		t.Fatalf("bucket 2 = %d", h.Bucket(2))
	}
	if h.Bucket(7) != 1 {
		t.Fatalf("bucket 7 = %d", h.Bucket(7))
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramClampsOverflow(t *testing.T) {
	h := NewHistogram(4)
	h.Observe(1 << 30)
	if h.Bucket(3) != 1 {
		t.Fatal("overflow sample not clamped into last bucket")
	}
}

func TestHistogramNegativeGoesToZeroBucket(t *testing.T) {
	h := NewHistogram(4)
	h.Observe(-5)
	if h.Bucket(0) != 1 {
		t.Fatal("negative sample not clamped to bucket 0")
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(16)
	h.Observe(10)
	h.Observe(30)
	if math.Abs(h.Mean()-20) > 1e-12 {
		t.Fatalf("Mean = %v", h.Mean())
	}
}

func TestHistogramFractionAbove(t *testing.T) {
	h := NewHistogram(16)
	for i := 0; i < 10; i++ {
		h.Observe(2) // bucket [2,4)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1024) // bucket [1024,2048)
	}
	if got := h.FractionAbove(512); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("FractionAbove(512) = %v", got)
	}
	if got := h.FractionAbove(1); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("FractionAbove(1) = %v", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(20)
	for i := 0; i < 90; i++ {
		h.Observe(4)
	}
	for i := 0; i < 10; i++ {
		h.Observe(4096)
	}
	if q := h.Quantile(0.5); q != 4 {
		t.Fatalf("median = %v, want 4", q)
	}
	if q := h.Quantile(0.99); q != 4096 {
		t.Fatalf("p99 = %v, want 4096", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(4)
	if h.Quantile(0.5) != 0 || h.FractionAbove(10) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Last() != 0 || s.Mean() != 0 {
		t.Fatal("empty series should report zeros")
	}
	s.Append("a", 1)
	s.Append("b", 3)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Last() != 3 {
		t.Fatalf("Last = %v", s.Last())
	}
	if s.Mean() != 2 {
		t.Fatalf("Mean = %v", s.Mean())
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Fatal("empty median should be 0")
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
	// Median must not mutate its argument.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Median mutated its input")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean([]float64{-1, 0}); got != 0 {
		t.Fatalf("GeoMean of non-positives = %v, want 0", got)
	}
	// Non-positive entries are skipped, not zeroed.
	if got := GeoMean([]float64{0, 8}); math.Abs(got-8) > 1e-12 {
		t.Fatalf("GeoMean skipping zero = %v, want 8", got)
	}
}

// Property: Running mean always lies within [min, max].
func TestQuickRunningMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		var r Running
		any := false
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue // huge magnitudes overflow intermediate arithmetic
			}
			r.Observe(x)
			any = true
		}
		if !any {
			return true
		}
		return r.Mean() >= r.Min()-1e-9 && r.Mean() <= r.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram total equals the number of observations.
func TestQuickHistogramTotal(t *testing.T) {
	f := func(xs []float64) bool {
		h := NewHistogram(32)
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			h.Observe(x)
			n++
		}
		var sum uint64
		for i := 0; i < h.NumBuckets(); i++ {
			sum += h.Bucket(i)
		}
		return h.Total() == uint64(n) && sum == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
