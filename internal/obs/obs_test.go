package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func fixedClock() func() time.Time {
	t := time.Unix(1000, 0)
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

func TestTraceIDDeterministic(t *testing.T) {
	a := TraceID("key-1", 7)
	b := TraceID("key-1", 7)
	if a != b {
		t.Fatalf("same inputs produced different trace IDs: %s vs %s", a, b)
	}
	if len(a) != 32 || !IsTraceID(a) {
		t.Fatalf("trace ID %q is not 32 hex chars", a)
	}
	if TraceID("key-1", 8) == a || TraceID("key-2", 7) == a {
		t.Fatalf("distinct inputs collided on trace ID %s", a)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: TraceID("k", 1), SpanID: spanID(TraceID("k", 1), "", "request", 0)}
	got, ok := ParseTraceparent(sc.Traceparent())
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v want %+v", got, ok, sc)
	}
	// A root context (no span yet) survives too, with the zero span ID.
	root := RootContext(TraceID("k", 2))
	got, ok = ParseTraceparent(root.Traceparent())
	if !ok || got != root {
		t.Fatalf("root round trip: got %+v ok=%v want %+v", got, ok, root)
	}
	for _, bad := range []string{
		"", "garbage", "00-zz-11-01", "01-" + sc.TraceID + "-" + sc.SpanID + "-01",
		"00-" + sc.TraceID[:31] + "-" + sc.SpanID + "-01",
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("ParseTraceparent accepted %q", bad)
		}
	}
	if (SpanContext{}).Traceparent() != "" {
		t.Fatalf("invalid context rendered a traceparent")
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan(RootContext("x"), "admission")
	if sp != nil {
		t.Fatalf("nil tracer returned a live span")
	}
	sp.SetAttr("k", "v")
	sp.SetError("boom")
	sp.SetJob("j-1")
	sp.End()
	if sc := sp.Context(); sc.Valid() {
		t.Fatalf("nil span has valid context %+v", sc)
	}
	if sc := tr.RecordSpan(RootContext("x"), "n", "", time.Now(), time.Now(), StatusOK, "", nil); sc.Valid() {
		t.Fatalf("nil tracer recorded a span")
	}
	tr.BindJob("j-1", "x")
	if _, ok := tr.TraceIDFor("j-1"); ok {
		t.Fatalf("nil tracer resolved a job")
	}
	if got := tr.Spans("x"); got != nil {
		t.Fatalf("nil tracer returned spans")
	}
}

// TestSpanTreeDeterministic drives two independent tracers through the
// same span sequence and requires identical IDs and structure — the
// property the acceptance criteria pin for identical request inputs.
func TestSpanTreeDeterministic(t *testing.T) {
	build := func() []Span {
		tr := NewTracer("http://r1", 0, fixedClock())
		root := tr.StartSpan(RootContext(TraceID("key", 1)), "request")
		adm := tr.StartSpan(root.Context(), "admission")
		adm.SetJob("j-00000001")
		tr.RecordSpan(adm.Context(), "cache_lookup", "j-00000001",
			time.Unix(1, 0), time.Unix(2, 0), StatusOK, "", map[string]string{"outcome": "miss"})
		tr.RecordSpan(adm.Context(), "queue_wait", "j-00000001",
			time.Unix(2, 0), time.Unix(3, 0), StatusOK, "", nil)
		exec := tr.StartSpan(adm.Context(), "sim_execute")
		exec.End()
		adm.End()
		root.End()
		return tr.Spans(root.Context().TraceID)
	}
	a, b := build(), build()
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("expected 5 spans, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i].SpanID != b[i].SpanID || a[i].Parent != b[i].Parent || a[i].Name != b[i].Name {
			t.Fatalf("span %d differs across identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	// Same name under the same parent gets distinct sibling ordinals.
	tr := NewTracer("", 0, fixedClock())
	p := RootContext(TraceID("key", 2))
	s1 := tr.StartSpan(p, "twin")
	s2 := tr.StartSpan(p, "twin")
	if s1.Context().SpanID == s2.Context().SpanID {
		t.Fatalf("sibling spans share an ID")
	}
	// Explicit ordinals are position-stable regardless of call order.
	o3 := tr.StartSpanOrdinal(p, "sweep_point", 3)
	o1 := tr.StartSpanOrdinal(p, "sweep_point", 1)
	if o3.Context().SpanID == o1.Context().SpanID {
		t.Fatalf("explicit ordinals collided")
	}
	if o1b := tr.StartSpanOrdinal(p, "sweep_point", 1); o1b.Context().SpanID != o1.Context().SpanID {
		t.Fatalf("same explicit ordinal produced different IDs")
	}
}

func TestTracerBindingAndStats(t *testing.T) {
	tr := NewTracer("", 0, fixedClock())
	root := tr.StartSpan(RootContext(TraceID("k", 1)), "admission")
	root.SetJob("j-00000001")
	root.End()
	tid, ok := tr.TraceIDFor("j-00000001")
	if !ok || tid != root.Context().TraceID {
		t.Fatalf("TraceIDFor = %q, %v; want %q", tid, ok, root.Context().TraceID)
	}
	if _, ok := tr.TraceIDFor("j-unknown"); ok {
		t.Fatalf("resolved unknown job")
	}
	traces, spans, recorded, dropped, evicted := tr.Stats()
	if traces != 1 || spans != 1 || recorded != 1 || dropped != 0 || evicted != 0 {
		t.Fatalf("stats = %d %d %d %d %d", traces, spans, recorded, dropped, evicted)
	}
}

func TestTracerEviction(t *testing.T) {
	tr := NewTracer("", 2, fixedClock())
	var first SpanContext
	for i := uint64(0); i < 3; i++ {
		root := tr.StartSpan(RootContext(TraceID("k", i)), "admission")
		root.SetJob("j-" + string(rune('a'+i)))
		root.End()
		if i == 0 {
			first = root.Context()
		}
	}
	if got := tr.Spans(first.TraceID); len(got) != 0 {
		t.Fatalf("oldest trace survived eviction with %d spans", len(got))
	}
	if _, ok := tr.TraceIDFor("j-a"); ok {
		t.Fatalf("evicted trace's job binding survived")
	}
	traces, _, _, _, evicted := tr.Stats()
	if traces != 2 || evicted != 1 {
		t.Fatalf("traces=%d evicted=%d, want 2 and 1", traces, evicted)
	}
}

func TestJSONLRoundTripAndMixedDetection(t *testing.T) {
	tr := NewTracer("http://r1", 0, fixedClock())
	root := tr.StartSpan(RootContext(TraceID("k", 1)), "request")
	adm := tr.StartSpan(root.Context(), "admission")
	adm.SetJob("j-00000001")
	adm.SetAttr("outcome", "enqueued")
	adm.End()
	root.SetError("downstream failed")
	root.End()
	spans := tr.Spans(root.Context().TraceID)

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, spans); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(got) != len(spans) {
		t.Fatalf("round trip lost spans: %d -> %d", len(spans), len(got))
	}
	for i := range got {
		if got[i].SpanID != spans[i].SpanID || got[i].Error != spans[i].Error {
			t.Fatalf("span %d mismatch: %+v vs %+v", i, got[i], spans[i])
		}
	}

	// A sim-event line in a span file must fail with a line number.
	mixed := buf.String() + `{"t":5,"core":0,"seq":1,"kind":"os_entry"}` + "\n"
	_, err = ReadJSONL(strings.NewReader(mixed))
	if err == nil || !strings.Contains(err.Error(), "span_id") {
		t.Fatalf("mixed file error = %v, want span_id mention", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("mixed file error %v does not name the line", err)
	}
	if IsSpanRecord([]byte(`{"t":5,"kind":"os_entry"}`)) {
		t.Fatalf("sim event classified as span record")
	}
	if !IsSpanRecord([]byte(`{"span_id":"abc"}`)) {
		t.Fatalf("span record not recognized")
	}
}

func TestWriteChrome(t *testing.T) {
	tr1 := NewTracer("http://r1", 0, fixedClock())
	tr2 := NewTracer("http://r2", 0, fixedClock())
	root := tr1.StartSpan(RootContext(TraceID("k", 1)), "request")
	push := tr1.StartSpan(root.Context(), "steal_push")
	remote := tr2.StartSpan(push.Context(), "peer_execute")
	remote.SetJob("j-00000009")
	remote.End()
	push.End()
	root.End()
	spans := append(tr1.Spans(root.Context().TraceID), tr2.Spans(root.Context().TraceID)...)

	var buf bytes.Buffer
	if err := WriteChrome(&buf, spans); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v\n%s", err, buf.String())
	}
	var slices, procs int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			slices++
		case "M":
			if ev["name"] == "process_name" {
				procs++
			}
		}
	}
	if slices != 3 {
		t.Fatalf("expected 3 X slices, got %d", slices)
	}
	if procs != 2 {
		t.Fatalf("expected 2 process rows (one per replica), got %d", procs)
	}
	if !strings.Contains(buf.String(), "offsimd http://r2") {
		t.Fatalf("replica process name missing:\n%s", buf.String())
	}
}

func TestReadRuntimeStats(t *testing.T) {
	st := ReadRuntimeStats()
	if st.Goroutines <= 0 {
		t.Fatalf("goroutines = %d, want > 0", st.Goroutines)
	}
	if st.HeapBytes <= 0 {
		t.Fatalf("heap bytes = %d, want > 0", st.HeapBytes)
	}
	if st.GCPauseSeconds < 0 {
		t.Fatalf("negative GC pause total %g", st.GCPauseSeconds)
	}
}

func TestContextPropagation(t *testing.T) {
	sc := SpanContext{TraceID: TraceID("k", 1), SpanID: "0011223344556677"}
	ctx := ContextWith(context.Background(), sc)
	if got := FromContext(ctx); got != sc {
		t.Fatalf("FromContext = %+v, want %+v", got, sc)
	}
	if got := FromContext(context.Background()); got.Valid() {
		t.Fatalf("empty context produced %+v", got)
	}
}
