package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL renders spans one JSON object per line — the service-span
// interchange format served by GET /v1/debug/traces/{id}?format=jsonl
// and consumed by cmd/tracedump -convert. Spans are written in the
// canonical (StartNS, SpanID) order.
func WriteJSONL(w io.Writer, spans []Span) error {
	spans = append([]Span(nil), spans...)
	SortSpans(spans)
	bw := bufio.NewWriter(w)
	for _, s := range spans {
		b, err := json.Marshal(s)
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a span-JSONL stream. Every non-blank line must be a
// span record (identified by its "span_id" field); a sim-event record
// produces an error naming the line, so a mixed file fails loudly
// instead of half-converting.
func ReadJSONL(r io.Reader) ([]Span, error) {
	var out []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if !IsSpanRecord(line) {
			return nil, fmt.Errorf("line %d: not a service-span record (no \"span_id\" field); "+
				"simulation-event traces are a different format — do not mix the two in one file", lineNo)
		}
		var s Span
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if s.TraceID == "" || s.SpanID == "" || s.Name == "" {
			return nil, fmt.Errorf("line %d: span record missing trace_id/span_id/name", lineNo)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// IsSpanRecord reports whether one JSONL line is a service-span record
// (as opposed to a sim-event record): it is a JSON object with a
// "span_id" field. Used by cmd/tracedump to classify input files.
func IsSpanRecord(line []byte) bool {
	var probe struct {
		SpanID *string `json:"span_id"`
	}
	if err := json.Unmarshal(line, &probe); err != nil {
		return false
	}
	return probe.SpanID != nil
}
