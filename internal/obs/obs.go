// Package obs is the fleet's request-scoped observability layer:
// distributed tracing, structured-log correlation, and Go runtime
// instrumentation for offsimd (docs/OBSERVABILITY.md).
//
// Where internal/telemetry observes one *simulation* from the inside
// (cycle-timestamped engine events), obs observes the *service* from
// the outside: a job's life across admission, queueing, ring routing,
// peer forwarding, work stealing, sweep fan-out and execution —
// potentially spanning several replicas. The two layers share the
// Chrome-trace export vocabulary (internal/telemetry/chrome.go) so both
// kinds of trace open in Perfetto, but they never mix records: a sim
// trace's clock is cycles, a service trace's clock is wall time.
//
// Identity is deterministic by construction. A trace ID is a pure
// function of the job's canonical config key and its admission ordinal
// (TraceID), and a span ID is a pure function of its trace, parent,
// name and sibling ordinal (deterministic sibling counters in the
// Tracer). Two identical request sequences therefore produce identical
// trace/span IDs and identical span trees — only durations differ —
// which makes traces diffable across runs and replicas.
//
// Propagation uses a W3C-traceparent-shaped header (TraceHeader) on all
// internal peer HTTP calls, so a stolen or forwarded job stitches into
// one trace no matter how many replicas touched it.
package obs

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"strings"
)

// TraceHeader is the HTTP header carrying trace context between
// replicas. The value is W3C traceparent shaped:
// "00-<32 hex trace id>-<16 hex span id>-01".
const TraceHeader = "Traceparent"

// SpanContext identifies a position in a trace: the trace itself and
// the span that new child spans should attach under. The zero value is
// invalid and propagates nothing.
type SpanContext struct {
	TraceID string // 32 hex chars
	SpanID  string // 16 hex chars; empty at the trace root
}

// Valid reports whether sc names a trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" }

// RootContext returns the parent context for a trace's root span.
func RootContext(traceID string) SpanContext { return SpanContext{TraceID: traceID} }

// TraceID derives a deterministic 32-hex-char trace ID from a scope
// string (a canonical config key, or "sweep:<id>") and an admission
// ordinal. Identical request sequences get identical trace IDs.
func TraceID(scope string, admission uint64) string {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], admission)
	h := sha256.New()
	h.Write([]byte("offsimd.trace\x00"))
	h.Write([]byte(scope))
	h.Write([]byte{0})
	h.Write(n[:])
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// spanID derives a deterministic 16-hex-char span ID from the span's
// coordinates in the trace tree: trace, parent span, name and sibling
// ordinal (how many same-named siblings preceded it under that parent).
func spanID(traceID, parentID, name string, ordinal int) string {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(ordinal))
	h := sha256.New()
	h.Write([]byte("offsimd.span\x00"))
	h.Write([]byte(traceID))
	h.Write([]byte{0})
	h.Write([]byte(parentID))
	h.Write([]byte{0})
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write(n[:])
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}

// zeroSpanID is the all-zero parent field of a root span's header.
const zeroSpanID = "0000000000000000"

// Traceparent renders sc as the TraceHeader value.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	span := sc.SpanID
	if span == "" {
		span = zeroSpanID
	}
	return "00-" + sc.TraceID + "-" + span + "-01"
}

// ParseTraceparent parses a TraceHeader value. The boolean is false for
// absent or malformed values — propagation is best-effort, so a bad
// header degrades to an untraced request, never an error.
func ParseTraceparent(v string) (SpanContext, bool) {
	parts := strings.Split(v, "-")
	if len(parts) != 4 || parts[0] != "00" || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return SpanContext{}, false
	}
	if !isHex(parts[1]) || !isHex(parts[2]) {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: parts[1], SpanID: parts[2]}
	if sc.SpanID == zeroSpanID {
		sc.SpanID = ""
	}
	return sc, true
}

// IsTraceID reports whether s looks like a trace ID (32 hex chars) —
// used by debug endpoints that accept job IDs and raw trace IDs alike.
func IsTraceID(s string) bool { return len(s) == 32 && isHex(s) }

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

type ctxKey struct{}

// ContextWith attaches sc to ctx so deeply nested call paths (sweep
// fan-out) can recover their trace position without signature changes.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext recovers the SpanContext attached by ContextWith, or the
// zero (invalid) context.
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}
