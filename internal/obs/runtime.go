package obs

import (
	"math"
	"runtime/metrics"
)

// RuntimeStats is a point-in-time sample of the Go runtime health
// gauges exported on /metrics: scheduler, heap and GC pressure, which
// is where a saturated replica shows distress before job latency does.
type RuntimeStats struct {
	// Goroutines is the live goroutine count.
	Goroutines int64
	// HeapBytes is the bytes of live heap objects.
	HeapBytes int64
	// GCCycles is the completed GC cycle count since process start.
	GCCycles uint64
	// GCPauseSeconds is the approximate total stop-the-world GC pause
	// time since process start (bucket-midpoint sum of the runtime's
	// pause histogram).
	GCPauseSeconds float64
}

// runtimeNames is the fixed runtime/metrics read set.
var runtimeNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/cycles/total:gc-cycles",
	"/sched/pauses/total/gc:seconds",
}

// ReadRuntimeStats samples the runtime/metrics registry. Unknown or
// unsupported metrics (older runtimes) contribute zero rather than
// failing the scrape.
func ReadRuntimeStats() RuntimeStats {
	samples := make([]metrics.Sample, len(runtimeNames))
	for i, name := range runtimeNames {
		samples[i].Name = name
	}
	metrics.Read(samples)

	var out RuntimeStats
	for _, s := range samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == metrics.KindUint64 {
				out.Goroutines = int64(s.Value.Uint64())
			}
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				out.HeapBytes = int64(s.Value.Uint64())
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == metrics.KindUint64 {
				out.GCCycles = s.Value.Uint64()
			}
		case "/sched/pauses/total/gc:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				out.GCPauseSeconds = histogramSum(s.Value.Float64Histogram())
			}
		}
	}
	return out
}

// histogramSum approximates a Float64Histogram's total as the sum of
// bucket counts times bucket midpoints, clamping the open-ended edge
// buckets to their finite boundary.
func histogramSum(h *metrics.Float64Histogram) float64 {
	if h == nil {
		return 0
	}
	var sum float64
	for i, count := range h.Counts {
		if count == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, -1) {
			lo = hi
		}
		if math.IsInf(hi, 1) {
			hi = lo
		}
		sum += float64(count) * (lo + hi) / 2
	}
	return sum
}
