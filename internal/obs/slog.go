package obs

import (
	"context"
	"log/slog"
)

// LoggerOrDiscard returns l, or a zero-cost discard logger when l is
// nil — so server code logs unconditionally and the disabled path pays
// only an Enabled() check (no record formatting, no allocation).
func LoggerOrDiscard(l *slog.Logger) *slog.Logger {
	if l != nil {
		return l
	}
	return slog.New(discardHandler{})
}

// discardHandler drops everything before any formatting happens.
// (slog.DiscardHandler exists upstream but postdates this module's
// language version.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// LogContext returns the trace/span correlation attributes for sc,
// ready to splat into a slog call: log.Info("msg", obs.LogContext(sc)...).
// Empty for an invalid context, so untraced requests log cleanly.
func LogContext(sc SpanContext) []any {
	if !sc.Valid() {
		return nil
	}
	if sc.SpanID == "" {
		return []any{slog.String("trace_id", sc.TraceID)}
	}
	return []any{slog.String("trace_id", sc.TraceID), slog.String("span_id", sc.SpanID)}
}
