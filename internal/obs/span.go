package obs

// Span is one completed service-trace span. Times are wall-clock unix
// nanoseconds: service traces measure real queueing and network time,
// unlike sim telemetry's cycle clock. The JSON field set doubles as the
// span-JSONL record format (one span per line) consumed by
// cmd/tracedump -convert; the presence of "span_id" is what
// distinguishes a span record from a sim-event record.
type Span struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	// Parent is the parent span's ID; empty for a trace's root span.
	Parent string `json:"parent_id,omitempty"`
	// Name is the stage: admission, queue_wait, cache_lookup,
	// peer_cache_fetch, ring_route, peer_forward, steal_push,
	// peer_execute, sweep, sweep_point, sweep_baseline, sim_execute,
	// oscore_reconcile, request (docs/OBSERVABILITY.md).
	Name string `json:"name"`
	// Replica is the advertised base URL of the replica that emitted
	// the span; empty outside fleet mode.
	Replica string `json:"replica,omitempty"`
	// JobID ties execution spans to their job (or sweep) record.
	JobID   string `json:"job_id,omitempty"`
	StartNS int64  `json:"start_unix_ns"`
	EndNS   int64  `json:"end_unix_ns"`
	// Status is "ok" or "error".
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// Attrs carries stage-specific details (owner, victim, outcome, ...).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Context returns the span's position for parenting children.
func (s Span) Context() SpanContext {
	return SpanContext{TraceID: s.TraceID, SpanID: s.SpanID}
}

// DurationNS returns the span's wall duration in nanoseconds.
func (s Span) DurationNS() int64 { return s.EndNS - s.StartNS }

// Span statuses.
const (
	StatusOK    = "ok"
	StatusError = "error"
)
