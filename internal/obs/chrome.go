package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
)

// WriteChrome renders a (possibly fleet-stitched) span set as a Chrome
// trace-event JSON document, loadable in Perfetto / chrome://tracing —
// the same viewer vocabulary as internal/telemetry's ChromeSink, but
// over wall time: each replica becomes a process row, each job a thread
// row, and each span an "X" slice whose args carry the span identity
// and attributes. Timestamps are microseconds relative to the earliest
// span, so fleet traces line up even though absolute clocks differ.
func WriteChrome(w io.Writer, spans []Span) error {
	spans = append([]Span(nil), spans...)
	SortSpans(spans)

	replicaName := func(r string) string {
		if r == "" {
			return "local"
		}
		return r
	}

	// Stable row assignment: processes are the sorted replica set,
	// threads are jobs in first-span order (tid 0 is the service row for
	// spans with no job: request routing, sweep coordination).
	pidOf := map[string]int{}
	var replicas []string
	for _, s := range spans {
		if _, ok := pidOf[s.Replica]; !ok {
			pidOf[s.Replica] = 0
			replicas = append(replicas, s.Replica)
		}
	}
	sort.Strings(replicas)
	for i, r := range replicas {
		pidOf[r] = i
	}
	type row struct{ replica, job string }
	tidOf := map[row]int{}
	nextTid := map[string]int{}
	for _, s := range spans {
		if s.JobID == "" {
			continue
		}
		k := row{s.Replica, s.JobID}
		if _, ok := tidOf[k]; !ok {
			nextTid[s.Replica]++
			tidOf[k] = nextTid[s.Replica]
		}
	}

	var minStart int64
	if len(spans) > 0 {
		minStart = spans[0].StartNS
	}

	type chromeEvent struct {
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Ts   float64        `json:"ts"`
		Dur  *float64       `json:"dur,omitempty"`
		Name string         `json:"name"`
		Cat  string         `json:"cat,omitempty"`
		Args map[string]any `json:"args,omitempty"`
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","otherData":{"layer":"service","time_unit":"wall"},"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}

	for _, r := range replicas {
		if err := emit(chromeEvent{Ph: "M", Pid: pidOf[r], Name: "process_name",
			Args: map[string]any{"name": "offsimd " + replicaName(r)}}); err != nil {
			return err
		}
		if err := emit(chromeEvent{Ph: "M", Pid: pidOf[r], Tid: 0, Name: "thread_name",
			Args: map[string]any{"name": "service"}}); err != nil {
			return err
		}
	}
	named := map[row]bool{}
	for _, s := range spans {
		if s.JobID == "" {
			continue
		}
		k := row{s.Replica, s.JobID}
		if named[k] {
			continue
		}
		named[k] = true
		if err := emit(chromeEvent{Ph: "M", Pid: pidOf[s.Replica], Tid: tidOf[k], Name: "thread_name",
			Args: map[string]any{"name": s.JobID}}); err != nil {
			return err
		}
	}

	for _, s := range spans {
		tid := 0
		if s.JobID != "" {
			tid = tidOf[row{s.Replica, s.JobID}]
		}
		dur := float64(s.DurationNS()) / 1e3
		if dur < 1 {
			// Sub-microsecond slices render as zero-width; clamp so every
			// stage stays visible on the timeline.
			dur = 1
		}
		args := map[string]any{
			"span_id": s.SpanID,
			"status":  s.Status,
		}
		if s.Parent != "" {
			args["parent_id"] = s.Parent
		}
		if s.Error != "" {
			args["error"] = s.Error
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		if err := emit(chromeEvent{
			Ph: "X", Pid: pidOf[s.Replica], Tid: tid,
			Ts: float64(s.StartNS-minStart) / 1e3, Dur: &dur,
			Name: s.Name, Cat: "service", Args: args,
		}); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
