package obs

import (
	"sort"
	"sync"
	"time"
)

// DefaultMaxTraces bounds the in-memory trace store when the caller
// does not say otherwise.
const DefaultMaxTraces = 1024

// maxSpansPerTrace bounds one trace's span count so a pathological
// sweep cannot grow a single trace without limit; spans beyond the cap
// are counted as dropped.
const maxSpansPerTrace = 8192

// Tracer collects this replica's spans into a bounded in-memory store,
// keyed by trace ID. A nil *Tracer is the disabled path: every method
// is a cheap no-op, so instrumented code never branches on enablement.
//
// Determinism: span IDs come from per-(parent, name) sibling counters,
// so as long as same-named siblings under one parent are created from
// one goroutine (true for every emission site in internal/server), the
// span tree — IDs included — is a pure function of the request
// sequence, never of scheduling.
type Tracer struct {
	replica string
	max     int
	clock   func() time.Time

	mu       sync.Mutex
	traces   map[string]*traceBuf
	order    []string          // insertion order, oldest first (FIFO eviction)
	byID     map[string]string // job or sweep id -> trace id
	recorded uint64
	dropped  uint64
	evicted  uint64
}

type traceBuf struct {
	spans  []Span
	counts map[string]int // parentID+"\x00"+name -> next sibling ordinal
	ids    []string       // job/sweep ids bound to this trace
}

// NewTracer builds a tracer for one replica. replica is the advertised
// base URL ("" outside fleet mode); maxTraces <= 0 takes
// DefaultMaxTraces; clock nil takes time.Now (tests inject their own).
func NewTracer(replica string, maxTraces int, clock func() time.Time) *Tracer {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	if clock == nil {
		clock = time.Now
	}
	return &Tracer{
		replica: replica,
		max:     maxTraces,
		clock:   clock,
		traces:  make(map[string]*traceBuf),
		byID:    make(map[string]string),
	}
}

// ActiveSpan is a span in progress. The zero/nil value (from a nil or
// declined Tracer) is inert: every method no-ops and Context returns
// the invalid SpanContext, so callers never nil-check.
type ActiveSpan struct {
	t    *Tracer
	span Span
}

// StartSpan opens a span named name under parent, allocating its
// deterministic ID immediately (children may be parented under it
// before it ends). Returns nil — inert — when the tracer is disabled
// or parent is invalid.
func (t *Tracer) StartSpan(parent SpanContext, name string) *ActiveSpan {
	return t.startSpan(parent, name, -1)
}

// StartSpanOrdinal is StartSpan with an explicit sibling ordinal, for
// spans created concurrently under one parent (sweep points use their
// grid index) where a call-order counter would not be deterministic.
func (t *Tracer) StartSpanOrdinal(parent SpanContext, name string, ordinal int) *ActiveSpan {
	if ordinal < 0 {
		ordinal = 0
	}
	return t.startSpan(parent, name, ordinal)
}

func (t *Tracer) startSpan(parent SpanContext, name string, ordinal int) *ActiveSpan {
	if t == nil || !parent.Valid() {
		return nil
	}
	if ordinal < 0 {
		ordinal = t.nextOrdinal(parent, name)
	}
	return &ActiveSpan{
		t: t,
		span: Span{
			TraceID: parent.TraceID,
			SpanID:  spanID(parent.TraceID, parent.SpanID, name, ordinal),
			Parent:  parent.SpanID,
			Name:    name,
			Replica: t.replica,
			StartNS: t.clock().UnixNano(),
			Status:  StatusOK,
		},
	}
}

// nextOrdinal hands out sibling ordinals under (parent, name). The
// counter lives with the trace, so it is dropped with it on eviction.
func (t *Tracer) nextOrdinal(parent SpanContext, name string) int {
	key := parent.SpanID + "\x00" + name
	t.mu.Lock()
	defer t.mu.Unlock()
	tb := t.bufLocked(parent.TraceID)
	n := tb.counts[key]
	tb.counts[key] = n + 1
	return n
}

// RecordSpan records an already-measured span in one shot — for stages
// whose boundaries are known after the fact (queue wait, cache lookup).
// jobID may be empty for spans not tied to a job record. Returns the
// recorded span's context for parenting, or the invalid context when
// disabled.
func (t *Tracer) RecordSpan(parent SpanContext, name, jobID string, start, end time.Time, status, errMsg string, attrs map[string]string) SpanContext {
	sp := t.StartSpan(parent, name)
	if sp == nil {
		return SpanContext{}
	}
	sp.span.StartNS = start.UnixNano()
	if errMsg != "" || status == StatusError {
		sp.span.Status = StatusError
		sp.span.Error = errMsg
	}
	sp.span.Attrs = attrs
	sp.SetJob(jobID)
	sp.endAt(end)
	return sp.Context()
}

// Context returns the span's position for parenting and propagation.
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return a.span.Context()
}

// SetAttr attaches a stage-specific key/value.
func (a *ActiveSpan) SetAttr(k, v string) {
	if a == nil {
		return
	}
	if a.span.Attrs == nil {
		a.span.Attrs = make(map[string]string, 4)
	}
	a.span.Attrs[k] = v
}

// SetJob ties the span to a job or sweep record and binds that ID to
// the trace, so GET /v1/debug/traces/{id} resolves it.
func (a *ActiveSpan) SetJob(id string) {
	if a == nil || id == "" {
		return
	}
	a.span.JobID = id
	a.t.BindJob(id, a.span.TraceID)
}

// SetError marks the span failed. The message is kept even when empty
// status flips are wanted; pass a reason whenever one exists.
func (a *ActiveSpan) SetError(msg string) {
	if a == nil {
		return
	}
	a.span.Status = StatusError
	a.span.Error = msg
}

// End closes the span at the tracer's clock and stores it.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.endAt(a.t.clock())
}

func (a *ActiveSpan) endAt(end time.Time) {
	a.span.EndNS = end.UnixNano()
	a.t.store(a.span)
}

// store appends one finished span, evicting the oldest whole trace
// when the store is full. A span for an already-evicted trace is
// dropped rather than resurrecting the trace half-empty.
func (t *Tracer) store(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tb, ok := t.traces[s.TraceID]
	if !ok {
		// First record for this trace (counters may have come and gone
		// with an eviction): admit it as a fresh trace.
		tb = t.bufLocked(s.TraceID)
	}
	if len(tb.spans) >= maxSpansPerTrace {
		t.dropped++
		return
	}
	tb.spans = append(tb.spans, s)
	t.recorded++
}

// bufLocked returns the trace's buffer, creating (and FIFO-evicting)
// as needed. Caller holds t.mu.
func (t *Tracer) bufLocked(traceID string) *traceBuf {
	if tb, ok := t.traces[traceID]; ok {
		return tb
	}
	for len(t.order) >= t.max {
		oldest := t.order[0]
		t.order = t.order[1:]
		if old, ok := t.traces[oldest]; ok {
			for _, id := range old.ids {
				if t.byID[id] == oldest {
					delete(t.byID, id)
				}
			}
			delete(t.traces, oldest)
			t.evicted++
		}
	}
	tb := &traceBuf{counts: make(map[string]int)}
	t.traces[traceID] = tb
	t.order = append(t.order, traceID)
	return tb
}

// BindJob maps a job or sweep ID to its trace for debug-endpoint
// resolution. No-op when disabled.
func (t *Tracer) BindJob(id, traceID string) {
	if t == nil || id == "" || traceID == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tb := t.bufLocked(traceID)
	if t.byID[id] != traceID {
		t.byID[id] = traceID
		tb.ids = append(tb.ids, id)
	}
}

// TraceIDFor resolves a job or sweep ID to its trace ID.
func (t *Tracer) TraceIDFor(id string) (string, bool) {
	if t == nil {
		return "", false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tid, ok := t.byID[id]
	return tid, ok
}

// Spans snapshots this replica's spans for one trace, sorted by
// (StartNS, SpanID) so equal-input runs list spans identically.
func (t *Tracer) Spans(traceID string) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	tb, ok := t.traces[traceID]
	var out []Span
	if ok {
		out = append(out, tb.spans...)
	}
	t.mu.Unlock()
	SortSpans(out)
	return out
}

// SortSpans orders spans by start time, breaking ties by span ID — the
// canonical presentation order for stitched traces.
func SortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartNS != spans[j].StartNS {
			return spans[i].StartNS < spans[j].StartNS
		}
		return spans[i].SpanID < spans[j].SpanID
	})
}

// Stats reports the store's size and lifetime counters: live traces,
// live spans, spans recorded, spans dropped (per-trace cap), and whole
// traces evicted (store cap).
func (t *Tracer) Stats() (traces, spans int, recorded, dropped, evicted uint64) {
	if t == nil {
		return 0, 0, 0, 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tb := range t.traces {
		spans += len(tb.spans)
	}
	return len(t.traces), spans, t.recorded, t.dropped, t.evicted
}
