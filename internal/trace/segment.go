package trace

import (
	"fmt"

	"offloadsim/internal/rng"
	"offloadsim/internal/syscalls"
)

// SegmentKind classifies a contiguous stretch of single-mode execution.
type SegmentKind int

const (
	// UserSegment is unprivileged application execution.
	UserSegment SegmentKind = iota
	// SyscallSegment is a privileged system-call invocation.
	SyscallSegment
	// TrapSegment is a short hardware trap handled in privileged mode
	// (register-window spill/fill, TLB refill).
	TrapSegment
)

// String implements fmt.Stringer.
func (k SegmentKind) String() string {
	switch k {
	case UserSegment:
		return "user"
	case SyscallSegment:
		return "syscall"
	case TrapSegment:
		return "trap"
	}
	return fmt.Sprintf("SegmentKind(%d)", int(k))
}

// maxSources bounds the number of data-access targets per segment.
const maxSources = 6

type dataSource struct {
	region    *Region
	cum       float64 // cumulative normalized weight
	writeFrac float64
}

// Segment is one schedulable unit of execution. OS segments carry the
// AState hash captured at the privileged-mode transition (the predictor's
// index) and the ground-truth instruction count the predictor trains on.
type Segment struct {
	Kind     SegmentKind
	Sys      syscalls.ID
	ArgClass int

	// AState is the XOR register hash at OS entry; zero for user
	// segments.
	AState uint64

	// Instrs is the actual instruction count, including any interrupt
	// extension.
	Instrs int
	// NominalInstrs is the pre-extension length (what argument-based
	// software estimation could at best compute).
	NominalInstrs int
	// Interrupted marks invocations extended by an external interrupt.
	Interrupted bool

	// MemRatio is data references per instruction for this segment.
	MemRatio float64

	// code regions: ifetches come from codeMain, with codeAltProb
	// directing a fraction to codeAlt (kernel common path or IRQ code).
	codeMain    *Region
	codeAlt     *Region
	codeAltProb float64

	sources  [maxSources]dataSource
	nSources int

	// src is the segment's private reference stream, held by value so
	// producing a segment allocates nothing.
	src rng.Source
}

// setSources normalizes weights into the cumulative form Draw uses.
// Pairs are (region, weight, writeFrac); zero-weight entries are dropped.
func (s *Segment) setSources(entries ...dataSource) {
	total := 0.0
	for _, e := range entries {
		total += e.cum // cum carries the raw weight here
	}
	if total <= 0 {
		panic("trace: segment with no data sources")
	}
	s.nSources = 0
	acc := 0.0
	for _, e := range entries {
		if e.cum <= 0 {
			continue
		}
		acc += e.cum / total
		s.sources[s.nSources] = dataSource{region: e.region, cum: acc, writeFrac: e.writeFrac}
		s.nSources++
	}
	// Guard against floating-point shortfall on the last bucket.
	s.sources[s.nSources-1].cum = 1.0
}

// NextData returns the next data reference of the segment: a line address
// and whether it is a write.
func (s *Segment) NextData() (lineAddr uint64, write bool) {
	u := s.src.Float64()
	for i := 0; i < s.nSources; i++ {
		if u <= s.sources[i].cum {
			src := &s.sources[i]
			return src.region.NextFrom(&s.src), s.src.Bool(src.writeFrac)
		}
	}
	// Unreachable: the last cum is pinned to 1.0.
	src := &s.sources[s.nSources-1]
	return src.region.NextFrom(&s.src), s.src.Bool(src.writeFrac)
}

// BatchRefs converts the segment's length into whole reference counts
// for functional warming, where references are issued in bulk instead of
// per instruction. ifCarry is the instruction count since the last
// I-line fetch (cpu.Config.IFetchInterval domain) and dataCarry the
// fractional data-reference accumulator; both are returned updated so a
// warming stream stays in step with the per-instruction accounting a
// detailed segment would have performed.
func (s *Segment) BatchRefs(ifInterval int, ifCarry int, dataCarry float64) (nIFetch, newIFCarry int, nData int, newDataCarry float64) {
	newIFCarry = ifCarry + s.Instrs
	nIFetch = newIFCarry / ifInterval
	newIFCarry -= nIFetch * ifInterval

	newDataCarry = dataCarry + s.MemRatio*float64(s.Instrs)
	nData = int(newDataCarry)
	newDataCarry -= float64(nData)
	return nIFetch, newIFCarry, nData, newDataCarry
}

// NextIFetch returns the next instruction-fetch line address.
func (s *Segment) NextIFetch() uint64 {
	if s.codeAlt != nil && s.src.Bool(s.codeAltProb) {
		return s.codeAlt.NextFrom(&s.src)
	}
	return s.codeMain.NextFrom(&s.src)
}

// IsOS reports whether the segment executes in privileged mode.
func (s *Segment) IsOS() bool { return s.Kind != UserSegment }
