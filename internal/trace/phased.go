package trace

// Source is anything that produces a segment stream; the simulator
// consumes this interface so workloads can be composed (the plain
// Generator, or the phase-alternating wrapper below).
type Source interface {
	// Next returns the next segment of the stream.
	Next() Segment
	// SourceStats exposes the generation accounting.
	SourceStats() *GenStats
}

// SourceStats implements Source for the plain generator.
func (g *Generator) SourceStats() *GenStats { return &g.Stats }

// Phased alternates between several generators, switching every PhaseLen
// generated instructions. It models the program-phase behaviour §III-B's
// dynamic threshold estimation must survive: when the active phase
// changes, the optimal N can move, and the epoch sampler has to notice
// through its feedback metric and re-adapt.
type Phased struct {
	gens     []*Generator
	phaseLen uint64

	cur     int
	inPhase uint64
	merged  GenStats
}

// NewPhased wraps gens into an alternating stream with the given phase
// length in instructions. It panics on an empty generator list or a zero
// phase length, which are always construction bugs.
func NewPhased(gens []*Generator, phaseLen uint64) *Phased {
	if len(gens) == 0 {
		panic("trace: NewPhased with no generators")
	}
	if phaseLen == 0 {
		panic("trace: NewPhased with zero phase length")
	}
	return &Phased{gens: gens, phaseLen: phaseLen}
}

// Phase returns the index of the currently active generator.
func (p *Phased) Phase() int { return p.cur }

// Next implements Source. Phase switches happen on segment boundaries
// (a real phase change cannot preempt the middle of a syscall either).
func (p *Phased) Next() Segment {
	if p.inPhase >= p.phaseLen {
		p.inPhase = 0
		p.cur = (p.cur + 1) % len(p.gens)
	}
	seg := p.gens[p.cur].Next()
	p.inPhase += uint64(seg.Instrs)
	return seg
}

// SourceStats implements Source by merging the child generators'
// accounting into a snapshot.
func (p *Phased) SourceStats() *GenStats {
	p.merged = GenStats{}
	for _, g := range p.gens {
		p.merged.UserInstrs.Add(g.Stats.UserInstrs.Value())
		p.merged.OSInstrs.Add(g.Stats.OSInstrs.Value())
		p.merged.Syscalls.Add(g.Stats.Syscalls.Value())
		p.merged.Traps.Add(g.Stats.Traps.Value())
		p.merged.Interrupts.Add(g.Stats.Interrupts.Value())
	}
	return &p.merged
}

var (
	_ Source = (*Generator)(nil)
	_ Source = (*Phased)(nil)
)
