package trace

import (
	"offloadsim/internal/isa"
	"offloadsim/internal/rng"
	"offloadsim/internal/stats"
	"offloadsim/internal/syscalls"
	"offloadsim/internal/workloads"
)

// Per-segment-kind memory intensities. User intensity comes from the
// profile; kernel paths are more memory-intensive than typical user code,
// and the register-window handlers are almost pure memory traffic (16
// registers moved per trap).
const (
	osMemRatio    = 0.36
	trapMemRatio  = 0.95
	tlbMemRatio   = 0.45
	kernelWrFrac  = 0.15
	sharedWrFrac  = 0.50
	commonCodePct = 0.20 // fraction of syscall ifetches in the common path
)

// GenStats counts what the generator has produced; the privileged share
// it exposes feeds the tuner's startup heuristic and the calibration
// tests.
type GenStats struct {
	UserInstrs stats.Counter
	OSInstrs   stats.Counter
	Syscalls   stats.Counter
	Traps      stats.Counter
	Interrupts stats.Counter
}

// PrivFraction returns the fraction of generated instructions executed in
// privileged mode.
func (g *GenStats) PrivFraction() float64 {
	return stats.Ratio(g.OSInstrs.Value(), g.OSInstrs.Value()+g.UserInstrs.Value())
}

// Generator produces the segment stream of one simulated core running one
// workload profile. Every stochastic choice comes from the generator's
// private stream, so streams for different cores are independent and the
// whole trace is reproducible from the top-level seed.
type Generator struct {
	prof   *workloads.Profile
	coreID int
	regs   *isa.RegFile
	src    *rng.Source
	// mix seeds one private per-reference stream per segment (one Fork
	// per segment, a constant single draw). All data/ifetch randomness
	// of a segment comes from its own fork, so executing more or fewer
	// references — functional warming performs only a strided subset —
	// can never desynchronize any other segment's addresses or the
	// segment-parameter stream. Segment sequences and per-segment
	// reference streams are therefore identical across execution modes
	// and policies for a given seed, which is what lets sampled and
	// detailed runs (and baseline/off-load pairs) be compared as
	// common-random-number pairs.
	mix *rng.Source

	userCode *Region
	userData *Region
	shared   *Region
	kernel   *KernelLayout

	sampler *rng.Categorical
	ids     []syscalls.ID

	trapCtx [][3]uint64 // distinct (g1,i0,i1) user contexts at trap time

	// queue holds the traps + syscall pending after the current user
	// burst, consumed ring-style: qhead advances instead of re-slicing,
	// and the storage is reset and reused once drained, so steady-state
	// generation never reallocates it.
	queue []Segment
	qhead int

	callDepth int
	burstP    float64

	Stats GenStats
}

// NewGenerator builds a generator for core coreID running prof. The
// kernel layout is shared across generators; user regions are private and
// carved from space.
func NewGenerator(prof *workloads.Profile, coreID int, kernel *KernelLayout, space *AddressSpace, src *rng.Source) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		prof:     prof,
		coreID:   coreID,
		regs:     isa.NewRegFile(),
		src:      src,
		mix:      src.Fork(),
		kernel:   kernel,
		userCode: NewRegion(space, prof.UserCodeLines, prof.HotFrac, prof.ZipfS, src.Fork()),
		userData: NewRegion(space, prof.UserDataLines, prof.HotFrac, prof.ZipfS, src.Fork()),
		shared:   NewRegion(space, prof.SharedLines, 0.8, 0.9, src.Fork()),
	}
	weights := make([]float64, len(prof.Mix))
	for i, m := range prof.Mix {
		weights[i] = m.Weight
		g.ids = append(g.ids, m.ID)
	}
	var err error
	g.sampler, err = rng.NewCategorical(src.Fork(), weights)
	if err != nil {
		return nil, err
	}
	// Fixed pool of user register contexts observed at trap time. The
	// pool size scales with the thread count per core (each thread
	// contributes its own live contexts).
	n := prof.TrapContexts * prof.ThreadsPerCore
	ctxSrc := src.Fork()
	for i := 0; i < n; i++ {
		g.trapCtx = append(g.trapCtx, [3]uint64{
			ctxSrc.Uint64(), ctxSrc.Uint64(), ctxSrc.Uint64(),
		})
	}
	// Geometric parameter for burst lengths above the floor.
	mean := float64(prof.UserBurstMean - prof.UserBurstMin)
	if mean < 1 {
		mean = 1
	}
	g.burstP = 1 / (mean + 1)
	return g, nil
}

// MustNewGenerator panics on profile errors (test/benchmark convenience).
func MustNewGenerator(prof *workloads.Profile, coreID int, kernel *KernelLayout, space *AddressSpace, src *rng.Source) *Generator {
	g, err := NewGenerator(prof, coreID, kernel, space, src)
	if err != nil {
		panic(err)
	}
	return g
}

// Profile returns the generator's workload profile.
func (g *Generator) Profile() *workloads.Profile { return g.prof }

// CoreID returns the owning core's id.
func (g *Generator) CoreID() int { return g.coreID }

// UserData exposes the private user data region (tests).
func (g *Generator) UserData() *Region { return g.userData }

// Shared exposes the user/OS shared buffer region (tests).
func (g *Generator) Shared() *Region { return g.shared }

// Next produces the next segment of the stream. The stream alternates
// user bursts with the OS activity they trigger: zero or more short traps
// followed by one system call.
func (g *Generator) Next() Segment {
	if g.qhead < len(g.queue) {
		seg := g.queue[g.qhead]
		g.qhead++
		return seg
	}
	g.queue = g.queue[:0]
	g.qhead = 0
	burst := g.prof.UserBurstMin + g.src.Geometric(g.burstP)
	user := g.userSegment(burst)

	// Queue the traps the burst triggers, then the syscall ending it.
	spills, fills := g.windowTraps(burst)
	for i := 0; i < spills; i++ {
		g.queue = append(g.queue, g.trapSegment(syscalls.SpillTrap))
	}
	for i := 0; i < fills; i++ {
		g.queue = append(g.queue, g.trapSegment(syscalls.FillTrap))
	}
	for i := g.countFromRate(float64(burst) * g.prof.TLBMissPer1K / 1000); i > 0; i-- {
		g.queue = append(g.queue, g.trapSegment(syscalls.TLBMiss))
	}
	g.queue = append(g.queue, g.syscallSegment())

	return user
}

// countFromRate converts an expected count into an integer draw.
func (g *Generator) countFromRate(expected float64) int {
	n := int(expected)
	if g.src.Bool(expected - float64(n)) {
		n++
	}
	return n
}

// windowTraps walks the call/return behaviour of one user burst through
// the register-window state machine and returns the spill and fill trap
// counts it produced.
func (g *Generator) windowTraps(burst int) (spills, fills int) {
	calls := burst / g.prof.CallGrain
	for i := 0; i < calls; i++ {
		down := g.callDepth == 0 || g.src.Bool(g.prof.CallDepthBias)
		if down {
			g.callDepth++
			if g.regs.Save() == isa.WindowSpill {
				spills++
			}
		} else {
			g.callDepth--
			if g.regs.Restore() == isa.WindowFill {
				fills++
			}
		}
	}
	return spills, fills
}

func (g *Generator) userSegment(instrs int) Segment {
	g.Stats.UserInstrs.Add(uint64(instrs))
	seg := Segment{
		Kind:     UserSegment,
		Instrs:   instrs,
		MemRatio: g.prof.UserMemRatio,
		codeMain: g.userCode,
		src:      g.mix.ForkVal(),
	}
	seg.setSources(
		dataSource{region: g.userData, cum: 1 - g.prof.UserSharedFrac, writeFrac: g.prof.UserWriteFrac},
		dataSource{region: g.shared, cum: g.prof.UserSharedFrac, writeFrac: sharedWrFrac},
	)
	return seg
}

// trapSegment builds a spill/fill/TLB trap invocation. The register
// contents at trap time are whatever the user thread had live, drawn from
// the fixed per-core context pool, so trap AStates form a bounded
// population the predictor can capture.
func (g *Generator) trapSegment(id syscalls.ID) Segment {
	spec := syscalls.Lookup(id)
	ctx := g.trapCtx[g.src.Intn(len(g.trapCtx))]
	// Different trap vectors run with different alternate-global
	// contents, so the same user context hashes differently per trap
	// type; without this, spill/fill/TLB entries would alias in the
	// predictor despite having different run lengths.
	g.regs.G1, g.regs.I0, g.regs.I1 = ctx[0]^(uint64(id)*0xABCD_EF01), ctx[1], ctx[2]
	g.regs.EnterPrivileged(spec.MasksInterrupts)
	astate := g.regs.AState()
	argClass := 0
	if id == syscalls.TLBMiss {
		argClass = g.src.Intn(spec.ArgClasses)
	}
	instrs := spec.SampleLength(argClass, g.src)
	g.regs.ExitPrivileged()

	g.Stats.OSInstrs.Add(uint64(instrs))
	g.Stats.Traps.Inc()

	seg := Segment{
		Kind:          TrapSegment,
		Sys:           id,
		ArgClass:      argClass,
		AState:        astate,
		Instrs:        instrs,
		NominalInstrs: instrs,
		src:           g.mix.ForkVal(),
		codeMain:      g.kernel.SysCode[id],
	}
	switch id {
	case syscalls.SpillTrap:
		// Spills store the window to the user stack: nearly all writes
		// into user memory.
		seg.MemRatio = trapMemRatio
		seg.setSources(
			dataSource{region: g.userData, cum: spec.UserDataFrac, writeFrac: 1.0},
			dataSource{region: g.kernel.SysDataShared(id), cum: 1 - spec.UserDataFrac, writeFrac: kernelWrFrac},
		)
	case syscalls.FillTrap:
		// Fills load the window back: reads from user memory.
		seg.MemRatio = trapMemRatio
		seg.setSources(
			dataSource{region: g.userData, cum: spec.UserDataFrac, writeFrac: 0.0},
			dataSource{region: g.kernel.SysDataShared(id), cum: 1 - spec.UserDataFrac, writeFrac: kernelWrFrac},
		)
	default: // TLB refill: page-table walks in kernel data
		seg.MemRatio = tlbMemRatio
		seg.setSources(
			dataSource{region: g.kernel.SysDataShared(id), cum: 0.9, writeFrac: 0.1},
			dataSource{region: g.userData, cum: 0.1, writeFrac: 0.0},
		)
	}
	return seg
}

// loadSyscallArgs loads regs the way the user-side stub does: syscall
// number in g1, the argument registers encoding the argument class. i1
// carries a per-syscall constant (the reused buffer/descriptor).
func loadSyscallArgs(regs *isa.RegFile, id syscalls.ID, argClass int) {
	regs.SetSyscallArgs(
		0x800+uint64(id),
		uint64(argClass)*0x9E37+uint64(id)*0x1F,
		uint64(id)*0x51D1,
	)
}

// SyscallAState returns the AState hash a syscall invocation of the given
// argument class produces, exactly as the generator computes it. It lets
// hosts prime a predictor from an offline profile — the hardware
// counterpart of the offline profiling the static policy is granted.
func SyscallAState(id syscalls.ID, argClass int) uint64 {
	spec := syscalls.Lookup(id)
	regs := isa.NewRegFile()
	loadSyscallArgs(regs, id, argClass)
	regs.EnterPrivileged(spec.MasksInterrupts)
	return regs.AState()
}

func (g *Generator) syscallSegment() Segment {
	id := g.ids[g.sampler.Draw()]
	spec := syscalls.Lookup(id)
	argClass := g.src.Intn(spec.ArgClasses)

	loadSyscallArgs(g.regs, id, argClass)
	g.regs.EnterPrivileged(spec.MasksInterrupts)
	astate := g.regs.AState()

	nominal := spec.SampleLength(argClass, g.src)
	instrs := nominal
	interrupted := false
	if !spec.MasksInterrupts && g.regs.InterruptsEnabled() && g.src.Bool(g.prof.InterruptRate) {
		// An external interrupt preempts the invocation and extends the
		// privileged sequence (§III-A): geometric extension around the
		// profile's mean.
		ext := 1 + g.src.Geometric(1/float64(g.prof.InterruptMeanLen))
		instrs += ext
		interrupted = true
		g.Stats.Interrupts.Inc()
	}
	g.regs.ExitPrivileged()

	g.Stats.OSInstrs.Add(uint64(instrs))
	g.Stats.Syscalls.Inc()

	seg := Segment{
		Kind:          SyscallSegment,
		Sys:           id,
		ArgClass:      argClass,
		AState:        astate,
		Instrs:        instrs,
		NominalInstrs: nominal,
		Interrupted:   interrupted,
		MemRatio:      osMemRatio,
		codeMain:      g.kernel.SysCode[id],
		codeAlt:       g.kernel.CommonCode,
		codeAltProb:   commonCodePct,
		src:           g.mix.ForkVal(),
	}
	extFrac := 0.0
	if interrupted {
		extFrac = float64(instrs-nominal) / float64(instrs)
		// Interrupt handler instructions fetch from IRQ code.
		seg.codeAlt = g.kernel.IRQCode
		seg.codeAltProb = commonCodePct + extFrac*(1-commonCodePct)
	}
	kernelShare := 1 - spec.UserDataFrac
	seg.setSources(
		dataSource{region: g.kernel.SysDataClass(id, argClass), cum: (1 - extFrac) * kernelShare * 0.6, writeFrac: kernelWrFrac},
		dataSource{region: g.kernel.SysDataShared(id), cum: (1 - extFrac) * kernelShare * 0.2, writeFrac: kernelWrFrac},
		dataSource{region: g.kernel.CommonData, cum: (1 - extFrac) * kernelShare * 0.2, writeFrac: kernelWrFrac},
		dataSource{region: g.shared, cum: (1 - extFrac) * spec.UserDataFrac, writeFrac: sharedWrFrac},
		dataSource{region: g.kernel.IRQData, cum: extFrac, writeFrac: kernelWrFrac},
	)
	return seg
}
