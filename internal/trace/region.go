// Package trace turns workload profiles into the segment streams the
// simulated cores execute. A segment is one contiguous stretch of
// execution in one privilege mode: a user burst, a system call, a
// spill/fill or TLB trap, each carrying an instruction count and a memory
// access pattern over region-based footprints. The generator also computes
// the AState register hash at every privileged entry, which is the
// predictor's only input.
package trace

import (
	"fmt"

	"offloadsim/internal/rng"
)

// AddressSpace hands out disjoint line-address ranges. All addresses in
// the simulator are cache-line addresses (byte address >> 6 for the 64 B
// baseline); working in line space keeps the cache and coherence layers
// free of repeated shifting.
type AddressSpace struct {
	next uint64
}

// guardLines separates consecutive regions so set-index aliasing between
// regions is not systematically aligned.
const guardLines = 64

// Alloc reserves lines consecutive line addresses and returns the base.
func (a *AddressSpace) Alloc(lines int) uint64 {
	if lines <= 0 {
		panic(fmt.Sprintf("trace: Alloc(%d)", lines))
	}
	base := a.next
	a.next += uint64(lines) + guardLines
	return base
}

// Allocated returns the total line count consumed (diagnostics).
func (a *AddressSpace) Allocated() uint64 { return a.next }

// Region is a contiguous footprint with a reference-locality model: a
// Zipf-hot subset absorbs HotFrac of references, and the remainder falls
// uniformly across the whole range. This reproduces the classic
// server-workload pattern of hot metadata plus a lukewarm bulk whose
// cache behaviour degrades *proportionally* as resident share shrinks —
// the property that makes OS/user cache interference a graded effect
// rather than a cliff.
type Region struct {
	base  uint64
	lines int

	hotFrac float64
	zipf    *rng.Zipf
	src     *rng.Source
}

// NewRegion creates a region of the given line count. hotFrac of accesses
// go to a Zipf(s)-distributed hot subset (a quarter of the region, at
// least one line); the rest are uniform over the region.
func NewRegion(space *AddressSpace, lines int, hotFrac, zipfS float64, src *rng.Source) *Region {
	if lines <= 0 {
		panic(fmt.Sprintf("trace: NewRegion with %d lines", lines))
	}
	if hotFrac < 0 || hotFrac > 1 {
		panic(fmt.Sprintf("trace: hotFrac %v out of [0,1]", hotFrac))
	}
	hot := lines / 4
	if hot < 1 {
		hot = 1
	}
	if zipfS <= 0 {
		zipfS = 0.8
	}
	return &Region{
		base:    space.Alloc(lines),
		lines:   lines,
		hotFrac: hotFrac,
		zipf:    rng.NewZipf(src, hot, zipfS),
		src:     src,
	}
}

// Base returns the first line address of the region.
func (r *Region) Base() uint64 { return r.base }

// Lines returns the region size in lines.
func (r *Region) Lines() int { return r.lines }

// Contains reports whether lineAddr falls inside the region.
func (r *Region) Contains(lineAddr uint64) bool {
	return lineAddr >= r.base && lineAddr < r.base+uint64(r.lines)
}

// Next returns the next referenced line address.
func (r *Region) Next() uint64 {
	return r.NextFrom(r.src)
}

// NextFrom draws the next referenced line address from the caller's
// stream. Segments use this so that all per-reference randomness comes
// from the segment's private stream: a segment that issues only a
// strided subset of its references (functional warming) consumes draws
// from its own fork and leaves every other segment's addresses — and
// therefore the rest of the trace — bit-identical to a fully detailed
// execution.
func (r *Region) NextFrom(src *rng.Source) uint64 {
	if src.Bool(r.hotFrac) {
		return r.base + uint64(r.zipf.DrawFrom(src))
	}
	return r.base + uint64(src.Intn(r.lines))
}
