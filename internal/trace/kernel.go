package trace

import (
	"offloadsim/internal/rng"
	"offloadsim/internal/syscalls"
)

// KernelLayout is the global kernel footprint shared by every core's OS
// invocations: a common entry/exit path, per-syscall text, per-syscall
// data and the interrupt handlers. Because the layout is global, OS
// invocations from different cores touch the *same* lines — the
// constructive interference at a shared OS core that §I counts among
// off-loading's benefits, and conversely the OS-side cache pollution when
// invocations run in place on user cores.
//
// Kernel text is shared per syscall (and read-only, so copies replicate
// cheaply in the Shared MESI state). Kernel *data* is split: a quarter of
// each handler's footprint is common to all of its invocations (inode and
// socket metadata), while the rest is per-argument-class (different
// request sizes walk different amounts of page cache), so invocations of
// different classes do not artificially drag one working set between
// cores when an off-loading threshold separates them.
type KernelLayout struct {
	CommonCode *Region // trap entry/exit, syscall dispatch
	CommonData *Region // current-thread, scheduler, accounting structures

	SysCode [syscalls.NumIDs]*Region

	sysDataShared [syscalls.NumIDs]*Region
	sysDataClass  [syscalls.NumIDs][]*Region

	IRQCode *Region
	IRQData *Region
}

// Footprint sizes of the shared kernel paths, in 64 B lines.
const (
	commonCodeLines = 128
	commonDataLines = 320
	irqCodeLines    = 96
	irqDataLines    = 160

	// sysDataSharedFrac is the fraction of a handler's data footprint
	// common to all argument classes.
	sysDataSharedFrac = 0.25
)

// NewKernelLayout carves the kernel footprint out of space. The hot-set
// parameters are fixed: kernel code is highly reused (hot), kernel data
// moderately so.
func NewKernelLayout(space *AddressSpace, src *rng.Source) *KernelLayout {
	k := &KernelLayout{
		CommonCode: NewRegion(space, commonCodeLines, 0.9, 1.0, src.Fork()),
		CommonData: NewRegion(space, commonDataLines, 0.8, 0.9, src.Fork()),
		IRQCode:    NewRegion(space, irqCodeLines, 0.9, 1.0, src.Fork()),
		IRQData:    NewRegion(space, irqDataLines, 0.7, 0.9, src.Fork()),
	}
	for _, spec := range syscalls.All() {
		k.SysCode[spec.ID] = NewRegion(space, spec.CodeLines, 0.85, 1.0, src.Fork())
		shared := int(float64(spec.DataLines) * sysDataSharedFrac)
		if shared < 4 {
			shared = 4
		}
		k.sysDataShared[spec.ID] = NewRegion(space, shared, 0.7, 0.9, src.Fork())
		perClass := (spec.DataLines - shared) / spec.ArgClasses
		if perClass < 4 {
			perClass = 4
		}
		regions := make([]*Region, spec.ArgClasses)
		for c := range regions {
			// Larger argument classes touch proportionally more data
			// (bigger buffers walk more page cache).
			lines := perClass * (c + 1) * 2 / (spec.ArgClasses + 1)
			if lines < 4 {
				lines = 4
			}
			regions[c] = NewRegion(space, lines, 0.7, 0.9, src.Fork())
		}
		k.sysDataClass[spec.ID] = regions
	}
	return k
}

// SysDataShared returns the class-independent data slice of a handler.
func (k *KernelLayout) SysDataShared(id syscalls.ID) *Region {
	return k.sysDataShared[id]
}

// SysDataClass returns the per-argument-class data slice of a handler;
// the class is clamped to the valid range.
func (k *KernelLayout) SysDataClass(id syscalls.ID, class int) *Region {
	rs := k.sysDataClass[id]
	if class < 0 {
		class = 0
	}
	if class >= len(rs) {
		class = len(rs) - 1
	}
	return rs[class]
}

// TotalLines returns the aggregate kernel footprint in lines, for
// reporting the OS working-set size.
func (k *KernelLayout) TotalLines() int {
	total := k.CommonCode.Lines() + k.CommonData.Lines() + k.IRQCode.Lines() + k.IRQData.Lines()
	for _, spec := range syscalls.All() {
		total += k.SysCode[spec.ID].Lines() + k.sysDataShared[spec.ID].Lines()
		for _, r := range k.sysDataClass[spec.ID] {
			total += r.Lines()
		}
	}
	return total
}
