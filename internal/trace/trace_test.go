package trace

import (
	"testing"
	"testing/quick"

	"offloadsim/internal/rng"
	"offloadsim/internal/syscalls"
	"offloadsim/internal/workloads"
)

func newTestGen(t testing.TB, prof *workloads.Profile, seed uint64) *Generator {
	t.Helper()
	space := &AddressSpace{}
	src := rng.New(seed)
	kernel := NewKernelLayout(space, src.Fork())
	return MustNewGenerator(prof, 0, kernel, space, src.Fork())
}

func TestAddressSpaceDisjoint(t *testing.T) {
	var a AddressSpace
	b1 := a.Alloc(100)
	b2 := a.Alloc(50)
	if b2 < b1+100 {
		t.Fatalf("regions overlap: %d then %d", b1, b2)
	}
}

func TestAddressSpacePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc(0) did not panic")
		}
	}()
	var a AddressSpace
	a.Alloc(0)
}

func TestRegionBounds(t *testing.T) {
	var space AddressSpace
	r := NewRegion(&space, 100, 0.7, 0.9, rng.New(1))
	for i := 0; i < 10000; i++ {
		la := r.Next()
		if !r.Contains(la) {
			t.Fatalf("region produced out-of-range line %#x", la)
		}
	}
}

func TestRegionHotSetSkew(t *testing.T) {
	var space AddressSpace
	r := NewRegion(&space, 1000, 0.8, 1.0, rng.New(2))
	counts := map[uint64]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		counts[r.Next()]++
	}
	// The hottest line should absorb far more than a uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < n/100 {
		t.Fatalf("hottest line only %d/%d refs; expected strong skew", max, n)
	}
}

func TestKernelLayoutCoversAllSyscalls(t *testing.T) {
	var space AddressSpace
	k := NewKernelLayout(&space, rng.New(3))
	for _, spec := range syscalls.All() {
		if k.SysCode[spec.ID] == nil || k.SysDataShared(spec.ID) == nil {
			t.Fatalf("no kernel regions for %s", spec.Name)
		}
		if k.SysCode[spec.ID].Lines() != spec.CodeLines {
			t.Fatalf("%s code region %d lines, want %d", spec.Name, k.SysCode[spec.ID].Lines(), spec.CodeLines)
		}
		for c := 0; c < spec.ArgClasses; c++ {
			if k.SysDataClass(spec.ID, c) == nil {
				t.Fatalf("%s missing class-%d data region", spec.Name, c)
			}
		}
		// Clamping.
		if k.SysDataClass(spec.ID, -1) != k.SysDataClass(spec.ID, 0) {
			t.Fatalf("%s negative class not clamped", spec.Name)
		}
		if k.SysDataClass(spec.ID, 99) != k.SysDataClass(spec.ID, spec.ArgClasses-1) {
			t.Fatalf("%s oversized class not clamped", spec.Name)
		}
	}
	if k.TotalLines() <= 0 {
		t.Fatal("empty kernel layout")
	}
}

func TestStreamAlternatesUserAndOS(t *testing.T) {
	g := newTestGen(t, workloads.Apache(), 7)
	prevUser := false
	users, oss := 0, 0
	for i := 0; i < 2000; i++ {
		seg := g.Next()
		if seg.Kind == UserSegment {
			if prevUser {
				t.Fatal("two consecutive user segments")
			}
			prevUser = true
			users++
		} else {
			prevUser = false
			oss++
		}
		if seg.Instrs < 1 {
			t.Fatalf("segment with %d instructions", seg.Instrs)
		}
	}
	if users == 0 || oss == 0 {
		t.Fatalf("stream missing a mode: users=%d os=%d", users, oss)
	}
}

func TestEveryUserBurstEndsInSyscall(t *testing.T) {
	g := newTestGen(t, workloads.Derby(), 11)
	sawSyscall := false
	for i := 0; i < 500; i++ {
		seg := g.Next()
		if seg.Kind == SyscallSegment {
			sawSyscall = true
			if seg.AState == 0 {
				t.Fatal("syscall segment with zero AState")
			}
		}
	}
	if !sawSyscall {
		t.Fatal("no syscalls in 500 segments")
	}
}

func TestAStateDeterministicPerSyscallAndClass(t *testing.T) {
	g := newTestGen(t, workloads.Apache(), 13)
	byKey := map[[2]int]uint64{}
	for i := 0; i < 20000; i++ {
		seg := g.Next()
		if seg.Kind != SyscallSegment {
			continue
		}
		key := [2]int{int(seg.Sys), seg.ArgClass}
		if prev, ok := byKey[key]; ok {
			if prev != seg.AState {
				t.Fatalf("%v class %d produced two AStates: %#x vs %#x",
					seg.Sys, seg.ArgClass, prev, seg.AState)
			}
		} else {
			byKey[key] = seg.AState
		}
	}
	if len(byKey) < 10 {
		t.Fatalf("only %d distinct (syscall,class) pairs seen", len(byKey))
	}
}

func TestDistinctSyscallsDistinctAStates(t *testing.T) {
	g := newTestGen(t, workloads.Apache(), 17)
	seen := map[uint64][2]int{}
	for i := 0; i < 20000; i++ {
		seg := g.Next()
		if seg.Kind != SyscallSegment {
			continue
		}
		key := [2]int{int(seg.Sys), seg.ArgClass}
		if prev, ok := seen[seg.AState]; ok && prev != key {
			t.Fatalf("AState %#x shared by %v and %v", seg.AState, prev, key)
		}
		seen[seg.AState] = key
	}
}

func TestTrapsAreGenerated(t *testing.T) {
	g := newTestGen(t, workloads.Apache(), 19)
	traps := map[syscalls.ID]int{}
	for i := 0; i < 30000; i++ {
		seg := g.Next()
		if seg.Kind == TrapSegment {
			traps[seg.Sys]++
			if seg.Instrs >= 100 {
				t.Fatalf("trap %v with %d instructions", seg.Sys, seg.Instrs)
			}
		}
	}
	if traps[syscalls.SpillTrap] == 0 || traps[syscalls.FillTrap] == 0 {
		t.Fatalf("window traps missing: %v", traps)
	}
	if traps[syscalls.TLBMiss] == 0 {
		t.Fatalf("TLB traps missing: %v", traps)
	}
}

func TestInterruptExtensionOnlyWhenUnmasked(t *testing.T) {
	g := newTestGen(t, workloads.Apache(), 23)
	extended := 0
	for i := 0; i < 40000; i++ {
		seg := g.Next()
		if !seg.Interrupted {
			continue
		}
		extended++
		if syscalls.Lookup(seg.Sys).MasksInterrupts {
			t.Fatalf("%v extended by interrupt despite masking", seg.Sys)
		}
		if seg.Instrs <= seg.NominalInstrs {
			t.Fatal("interrupted segment not longer than nominal")
		}
	}
	if extended == 0 {
		t.Fatal("no interrupt extensions observed")
	}
}

func TestSegmentAccessesStayInKnownRegions(t *testing.T) {
	g := newTestGen(t, workloads.SPECjbb(), 29)
	for i := 0; i < 300; i++ {
		seg := g.Next()
		for j := 0; j < 50; j++ {
			la, _ := seg.NextData()
			_ = la
			fetch := seg.NextIFetch()
			_ = fetch
		}
	}
	// Reaching here without panics means all walkers stayed in bounds
	// (Region.Next cannot escape by construction; this exercises the
	// source-selection paths including interrupt mixes).
}

func TestSpillTrapsWriteUserMemory(t *testing.T) {
	g := newTestGen(t, workloads.Apache(), 31)
	for i := 0; i < 30000; i++ {
		seg := g.Next()
		if seg.Kind != TrapSegment || seg.Sys != syscalls.SpillTrap {
			continue
		}
		writes, userWrites := 0, 0
		for j := 0; j < 200; j++ {
			la, wr := seg.NextData()
			if wr {
				writes++
				if g.UserData().Contains(la) {
					userWrites++
				}
			}
		}
		if writes == 0 {
			t.Fatal("spill trap produced no writes")
		}
		if userWrites == 0 {
			t.Fatal("spill trap never wrote user memory")
		}
		return
	}
	t.Fatal("no spill trap found")
}

// Calibration: emergent privileged-instruction shares must land in the
// bands the paper describes for each workload class.
func TestPrivilegedShareCalibration(t *testing.T) {
	cases := []struct {
		prof   *workloads.Profile
		lo, hi float64
	}{
		{workloads.Apache(), 0.38, 0.60},  // webserver: OS ~half the instructions
		{workloads.SPECjbb(), 0.25, 0.45}, // middleware
		{workloads.Derby(), 0.06, 0.16},   // database: modest OS share
		{workloads.Mcf(), 0.005, 0.06},    // compute-bound
		{workloads.Blackscholes(), 0.002, 0.06},
	}
	for _, c := range cases {
		g := newTestGen(t, c.prof, 37)
		for g.Stats.UserInstrs.Value()+g.Stats.OSInstrs.Value() < 3_000_000 {
			g.Next()
		}
		got := g.Stats.PrivFraction()
		if got < c.lo || got > c.hi {
			t.Errorf("%s: privileged share %.3f outside [%.3f,%.3f]",
				c.prof.Name, got, c.lo, c.hi)
		}
	}
}

// Calibration: the share of OS instruction time in invocations longer
// than 10k instructions must reproduce Table III's structure: large for
// apache/specjbb, negligible for derby.
func TestLongTailCalibration(t *testing.T) {
	measure := func(prof *workloads.Profile) (above10k, above1k float64) {
		g := newTestGen(t, prof, 41)
		var tot, a10, a1 uint64
		for i := 0; i < 60000; i++ {
			seg := g.Next()
			if !seg.IsOS() {
				continue
			}
			tot += uint64(seg.Instrs)
			if seg.Instrs > 10000 {
				a10 += uint64(seg.Instrs)
			}
			if seg.Instrs > 1000 {
				a1 += uint64(seg.Instrs)
			}
		}
		return float64(a10) / float64(tot), float64(a1) / float64(tot)
	}
	if a10, _ := measure(workloads.Apache()); a10 < 0.20 || a10 > 0.55 {
		t.Errorf("apache OS time >10k = %.3f, want 0.20-0.55 (Table III: 17.68/45.75)", a10)
	}
	if a10, _ := measure(workloads.SPECjbb()); a10 < 0.20 || a10 > 0.60 {
		t.Errorf("specjbb OS time >10k = %.3f, want 0.20-0.60 (Table III: 14.79/34.48)", a10)
	}
	a10, a1 := measure(workloads.Derby())
	if a10 > 0.05 {
		t.Errorf("derby OS time >10k = %.3f, want <= 0.05 (Table III: 0.2/8.2)", a10)
	}
	if a1 < 0.30 {
		t.Errorf("derby OS time >1k = %.3f, want >= 0.30 (medium-length I/O mix)", a1)
	}
}

// Property: generated segments always have positive length and OS
// segments always carry a non-zero AState.
func TestQuickSegmentWellFormed(t *testing.T) {
	f := func(seed uint64) bool {
		g := newTestGen(t, workloads.Derby(), seed)
		for i := 0; i < 200; i++ {
			seg := g.Next()
			if seg.Instrs < 1 {
				return false
			}
			if seg.IsOS() && seg.AState == 0 {
				return false
			}
			if !seg.IsOS() && seg.AState != 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := newTestGen(t, workloads.Apache(), 101)
	g2 := newTestGen(t, workloads.Apache(), 101)
	for i := 0; i < 1000; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Kind != b.Kind || a.Sys != b.Sys || a.Instrs != b.Instrs || a.AState != b.AState {
			t.Fatalf("streams diverged at segment %d: %+v vs %+v", i, a, b)
		}
	}
}
