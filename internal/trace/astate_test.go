package trace

import (
	"testing"

	"offloadsim/internal/rng"
	"offloadsim/internal/syscalls"
	"offloadsim/internal/workloads"
)

// SyscallAState must reproduce exactly the hash the generator computes at
// each syscall entry, or predictor prewarming would train the wrong rows.
func TestSyscallAStateMatchesGenerator(t *testing.T) {
	g := newTestGen(t, workloads.Apache(), 53)
	checked := 0
	for i := 0; i < 40000 && checked < 200; i++ {
		seg := g.Next()
		if seg.Kind != SyscallSegment {
			continue
		}
		want := SyscallAState(seg.Sys, seg.ArgClass)
		if seg.AState != want {
			t.Fatalf("%v class %d: generator AState %#x, standalone %#x",
				seg.Sys, seg.ArgClass, seg.AState, want)
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d syscalls checked", checked)
	}
}

func TestSyscallAStateDistinctPerClass(t *testing.T) {
	spec := syscalls.Lookup(syscalls.Read)
	seen := map[uint64]bool{}
	for c := 0; c < spec.ArgClasses; c++ {
		a := SyscallAState(syscalls.Read, c)
		if seen[a] {
			t.Fatalf("class %d collides with an earlier class", c)
		}
		seen[a] = true
	}
}

func TestSyscallAStateStable(t *testing.T) {
	// Pure function: repeated calls agree (no hidden state).
	for i := 0; i < 5; i++ {
		if SyscallAState(syscalls.Fork, 1) != SyscallAState(syscalls.Fork, 1) {
			t.Fatal("SyscallAState is not deterministic")
		}
	}
}

func TestKernelPerClassRegionsDisjoint(t *testing.T) {
	var space AddressSpace
	k := NewKernelLayout(&space, rng.New(3))
	spec := syscalls.Lookup(syscalls.Read)
	for a := 0; a < spec.ArgClasses; a++ {
		for b := a + 1; b < spec.ArgClasses; b++ {
			ra, rb := k.SysDataClass(spec.ID, a), k.SysDataClass(spec.ID, b)
			if ra.Base() < rb.Base()+uint64(rb.Lines()) && rb.Base() < ra.Base()+uint64(ra.Lines()) {
				t.Fatalf("read class %d and %d data regions overlap", a, b)
			}
		}
	}
	// Larger classes get at least as much data as smaller ones.
	prev := 0
	for c := 0; c < spec.ArgClasses; c++ {
		l := k.SysDataClass(spec.ID, c).Lines()
		if l < prev {
			t.Fatalf("class %d region (%d lines) smaller than class %d (%d)", c, l, c-1, prev)
		}
		prev = l
	}
}
