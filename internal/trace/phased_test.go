package trace

import (
	"testing"

	"offloadsim/internal/rng"
	"offloadsim/internal/workloads"
)

func newPhased(t *testing.T, phaseLen uint64) *Phased {
	t.Helper()
	space := &AddressSpace{}
	src := rng.New(61)
	kernel := NewKernelLayout(space, src.Fork())
	a := MustNewGenerator(workloads.Apache(), 0, kernel, space, src.Fork())
	b := MustNewGenerator(workloads.Mcf(), 0, kernel, space, src.Fork())
	return NewPhased([]*Generator{a, b}, phaseLen)
}

func TestPhasedAlternates(t *testing.T) {
	p := newPhased(t, 50_000)
	seen := map[int]bool{}
	var instrs uint64
	for instrs < 400_000 {
		seg := p.Next()
		instrs += uint64(seg.Instrs)
		seen[p.Phase()] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("phases visited: %v", seen)
	}
}

func TestPhasedPhaseLengthRespected(t *testing.T) {
	p := newPhased(t, 30_000)
	var inPhase uint64
	prev := p.Phase()
	switches := 0
	for i := 0; i < 3000; i++ {
		seg := p.Next()
		if p.Phase() != prev {
			// A switch must not happen before the phase budget filled.
			if inPhase < 30_000 {
				t.Fatalf("phase switched after only %d instructions", inPhase)
			}
			inPhase = 0
			prev = p.Phase()
			switches++
		}
		inPhase += uint64(seg.Instrs)
	}
	if switches < 2 {
		t.Fatalf("only %d phase switches", switches)
	}
}

func TestPhasedStatsMerge(t *testing.T) {
	p := newPhased(t, 20_000)
	var instrs uint64
	for instrs < 100_000 {
		seg := p.Next()
		instrs += uint64(seg.Instrs)
	}
	st := p.SourceStats()
	if st.UserInstrs.Value()+st.OSInstrs.Value() < 100_000 {
		t.Fatal("merged stats lost instructions")
	}
	if st.Syscalls.Value() == 0 || st.Traps.Value() == 0 {
		t.Fatal("merged stats missing activity")
	}
}

func TestPhasedConstructionPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"no generators": func() { NewPhased(nil, 100) },
		"zero length":   func() { newPhased(t, 30_000); NewPhased([]*Generator{nil}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPhasedMixesPrivIntensity(t *testing.T) {
	// Apache-phase segments are far more OS-dense than mcf-phase ones:
	// the merged privileged share must land between the two profiles'.
	p := newPhased(t, 100_000)
	var instrs uint64
	for instrs < 2_000_000 {
		seg := p.Next()
		instrs += uint64(seg.Instrs)
	}
	priv := p.SourceStats().PrivFraction()
	if priv < 0.05 || priv > 0.45 {
		t.Fatalf("blended privileged share %v outside (apache, mcf) envelope", priv)
	}
}
