package cache_test

import (
	"testing"

	"offloadsim/internal/enginebench"
)

// BenchmarkCacheProbe is the package-local view of the shared engine
// benchmark: one steady-state hit access (lookup + touch) on a Table II
// L2 array. Must report 0 allocs/op.
func BenchmarkCacheProbe(b *testing.B) { enginebench.CacheProbe(b) }
