package cache

import (
	"testing"
	"testing/quick"

	"offloadsim/internal/rng"
)

func smallCfg(policy ReplacementPolicy) Config {
	return Config{Name: "t", SizeBytes: 1024, LineBytes: 64, Ways: 2, HitLatency: 1, Policy: policy}
}

func TestConfigValidate(t *testing.T) {
	good := smallCfg(LRU)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.LineBytes = 48
	if err := bad.Validate(); err == nil {
		t.Fatal("non-power-of-two line size accepted")
	}
	bad = good
	bad.SizeBytes = 1000
	if err := bad.Validate(); err == nil {
		t.Fatal("non-divisible size accepted")
	}
	bad = good
	bad.Ways = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero ways accepted")
	}
	bad = good
	bad.HitLatency = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}
	// Non-power-of-two set count: 3 sets.
	bad = good
	bad.SizeBytes = 64 * 2 * 3
	if err := bad.Validate(); err == nil {
		t.Fatal("non-power-of-two set count accepted")
	}
}

func TestNewRequiresRngForRandom(t *testing.T) {
	if _, err := New(smallCfg(Random), nil); err == nil {
		t.Fatal("Random policy without rng accepted")
	}
}

func TestBaselineGeometry(t *testing.T) {
	// Paper Table II: 1MB 16-way L2 with 64B lines -> 1024 sets.
	l2 := MustNew(Config{Name: "l2", SizeBytes: 1 << 20, LineBytes: 64, Ways: 16, HitLatency: 12}, nil)
	if l2.NumSets() != 1024 {
		t.Fatalf("L2 sets = %d, want 1024", l2.NumSets())
	}
	// 32KB 2-way L1 -> 256 sets.
	l1 := MustNew(Config{Name: "l1", SizeBytes: 32 << 10, LineBytes: 64, Ways: 2, HitLatency: 1}, nil)
	if l1.NumSets() != 256 {
		t.Fatalf("L1 sets = %d, want 256", l1.NumSets())
	}
}

func TestLookupAllocate(t *testing.T) {
	c := MustNew(smallCfg(LRU), nil)
	la := c.LineAddr(0x1000)
	if c.Lookup(la) != Invalid {
		t.Fatal("empty cache claims presence")
	}
	if _, evicted := c.Allocate(la, Exclusive); evicted {
		t.Fatal("allocation into empty set evicted")
	}
	if c.Lookup(la) != Exclusive {
		t.Fatalf("state = %v, want E", c.Lookup(la))
	}
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy = %d", c.Occupancy())
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew(smallCfg(LRU), nil) // 8 sets, 2 ways
	nSets := uint64(c.NumSets())
	// Three lines mapping to set 0.
	a, b, d := nSets*0+0, nSets*1+0, nSets*2+0
	c.Allocate(a, Shared)
	c.Allocate(b, Shared)
	c.Touch(a) // b is now LRU
	v, evicted := c.Allocate(d, Shared)
	if !evicted {
		t.Fatal("full set did not evict")
	}
	if v.LineAddr != b {
		t.Fatalf("evicted %#x, want %#x (LRU)", v.LineAddr, b)
	}
	if c.Lookup(a) == Invalid || c.Lookup(d) == Invalid {
		t.Fatal("survivors missing")
	}
	if c.Lookup(b) != Invalid {
		t.Fatal("victim still present")
	}
}

func TestModifiedVictimReported(t *testing.T) {
	c := MustNew(smallCfg(LRU), nil)
	nSets := uint64(c.NumSets())
	c.Allocate(0, Modified)
	c.Allocate(nSets, Shared)
	c.Touch(nSets)
	v, evicted := c.Allocate(2*nSets, Shared)
	if !evicted || v.State != Modified {
		t.Fatalf("dirty victim not reported: %+v evicted=%v", v, evicted)
	}
	if c.Stats.Writebacks.Value() != 1 {
		t.Fatalf("writebacks = %d", c.Stats.Writebacks.Value())
	}
}

func TestAllocatePresentUpdatesState(t *testing.T) {
	c := MustNew(smallCfg(LRU), nil)
	c.Allocate(7, Shared)
	if _, evicted := c.Allocate(7, Modified); evicted {
		t.Fatal("re-allocation evicted")
	}
	if c.Lookup(7) != Modified {
		t.Fatal("re-allocation did not update state")
	}
	if c.Occupancy() != 1 {
		t.Fatal("re-allocation duplicated the line")
	}
}

func TestSetStateAndInvalidate(t *testing.T) {
	c := MustNew(smallCfg(LRU), nil)
	c.Allocate(3, Exclusive)
	c.SetState(3, Modified)
	if c.Lookup(3) != Modified {
		t.Fatal("upgrade lost")
	}
	c.SetState(3, Shared)
	if c.Lookup(3) != Shared {
		t.Fatal("downgrade lost")
	}
	if prev := c.Invalidate(3); prev != Shared {
		t.Fatalf("Invalidate returned %v", prev)
	}
	if c.Lookup(3) != Invalid {
		t.Fatal("line survived invalidation")
	}
	if prev := c.Invalidate(3); prev != Invalid {
		t.Fatal("double invalidation reported a state")
	}
}

func TestSetStatePanicsOnAbsent(t *testing.T) {
	c := MustNew(smallCfg(LRU), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("SetState of absent line did not panic")
		}
	}()
	c.SetState(99, Modified)
}

func TestTouchPanicsOnAbsent(t *testing.T) {
	c := MustNew(smallCfg(LRU), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Touch of absent line did not panic")
		}
	}()
	c.Touch(99)
}

func TestAllocateInvalidPanics(t *testing.T) {
	c := MustNew(smallCfg(LRU), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Allocate(Invalid) did not panic")
		}
	}()
	c.Allocate(1, Invalid)
}

func TestFlush(t *testing.T) {
	c := MustNew(smallCfg(LRU), nil)
	c.Allocate(1, Modified)
	c.Allocate(2, Shared)
	if dirty := c.Flush(); dirty != 1 {
		t.Fatalf("Flush reported %d dirty", dirty)
	}
	if c.Occupancy() != 0 {
		t.Fatal("Flush left lines valid")
	}
}

func TestRandomPolicyEvictsWithinSet(t *testing.T) {
	c := MustNew(smallCfg(Random), rng.New(1))
	nSets := uint64(c.NumSets())
	c.Allocate(0, Shared)
	c.Allocate(nSets, Shared)
	v, evicted := c.Allocate(2*nSets, Shared)
	if !evicted {
		t.Fatal("no eviction")
	}
	if v.LineAddr != 0 && v.LineAddr != nSets {
		t.Fatalf("random victim %#x not from the conflicting set", v.LineAddr)
	}
}

func TestTreePLRUApproximatesLRU(t *testing.T) {
	cfg := Config{Name: "p", SizeBytes: 64 * 16, LineBytes: 64, Ways: 16, HitLatency: 1, Policy: TreePLRU}
	c := MustNew(cfg, nil) // one set, 16 ways
	for i := uint64(0); i < 16; i++ {
		c.Allocate(i, Shared)
	}
	// Touch lines 1..15; line 0 should be (approximately) the victim.
	for i := uint64(1); i < 16; i++ {
		c.Touch(i)
	}
	v, evicted := c.Allocate(100, Shared)
	if !evicted {
		t.Fatal("no eviction")
	}
	if v.LineAddr != 0 {
		t.Fatalf("PLRU victim = %#x, want 0 (the only untouched line)", v.LineAddr)
	}
}

func TestTreePLRUNonPowerOfTwoWays(t *testing.T) {
	cfg := Config{Name: "p12", SizeBytes: 64 * 12, LineBytes: 64, Ways: 12, HitLatency: 1, Policy: TreePLRU}
	c := MustNew(cfg, nil)
	for i := uint64(0); i < 40; i++ {
		c.Allocate(i, Shared) // must not panic or index out of range
	}
	if c.Occupancy() != 12 {
		t.Fatalf("occupancy = %d, want 12", c.Occupancy())
	}
}

func TestForEachValid(t *testing.T) {
	c := MustNew(smallCfg(LRU), nil)
	c.Allocate(1, Shared)
	c.Allocate(2, Modified)
	seen := map[uint64]State{}
	c.ForEachValid(func(la uint64, st State) { seen[la] = st })
	if len(seen) != 2 || seen[1] != Shared || seen[2] != Modified {
		t.Fatalf("ForEachValid saw %v", seen)
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"} {
		if st.String() != want {
			t.Fatalf("%d.String() = %q", st, st.String())
		}
	}
}

// Property: occupancy never exceeds capacity and Lookup always agrees with
// a just-completed Allocate, for random access streams over all policies.
func TestQuickOccupancyBound(t *testing.T) {
	for _, pol := range []ReplacementPolicy{LRU, Random, TreePLRU} {
		pol := pol
		f := func(addrs []uint16) bool {
			c := MustNew(smallCfg(pol), rng.New(9))
			capLines := c.NumSets() * c.Config().Ways
			for _, a := range addrs {
				la := uint64(a)
				c.Allocate(la, Shared)
				if c.Lookup(la) == Invalid {
					return false
				}
				if c.Occupancy() > capLines {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
	}
}

// Property: an evicted victim is no longer present and came from the same
// set as the newly allocated line.
func TestQuickVictimConsistency(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := MustNew(smallCfg(LRU), nil)
		mask := uint64(c.NumSets() - 1)
		for _, a := range addrs {
			la := uint64(a)
			v, evicted := c.Allocate(la, Shared)
			if evicted {
				if c.Lookup(v.LineAddr) != Invalid {
					return false
				}
				if v.LineAddr&mask != la&mask {
					return false
				}
				if v.State == Invalid {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
