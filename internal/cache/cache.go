// Package cache implements the set-associative cache arrays of the
// simulated memory hierarchy. A Cache models one tag/state array (an L1-I,
// L1-D or private L2); the directory-based coherence protocol that moves
// lines *between* caches lives in package coherence and manipulates line
// states through this package's API.
//
// The baseline configuration follows the paper's Table II: 32 KB 2-way L1s
// with 1-cycle access, 1 MB 16-way L2 with 12-cycle access, 64 B lines
// everywhere.
package cache

import (
	"fmt"
	"math/bits"

	"offloadsim/internal/rng"
	"offloadsim/internal/stats"
)

// State is the MESI coherence state of a cached line. L1 caches only use
// Invalid/Shared/Modified (the E state is tracked at the L2/directory
// level); the extra state costs nothing here.
type State uint8

const (
	// Invalid: the line is not present.
	Invalid State = iota
	// Shared: clean, potentially replicated in other caches.
	Shared
	// Exclusive: clean, guaranteed to be the only copy.
	Exclusive
	// Modified: dirty, guaranteed to be the only copy.
	Modified
	// Owned: dirty but replicated — this cache is responsible for
	// supplying the line and eventually writing it back (MOESI only).
	Owned
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	case Owned:
		return "O"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// ReplacementPolicy selects a victim way within a set.
type ReplacementPolicy int

const (
	// LRU evicts the least recently used way (the paper's baseline).
	LRU ReplacementPolicy = iota
	// Random evicts a uniformly random way.
	Random
	// TreePLRU approximates LRU with a binary decision tree, the common
	// hardware implementation for high associativity.
	TreePLRU
)

// String implements fmt.Stringer.
func (p ReplacementPolicy) String() string {
	switch p {
	case LRU:
		return "lru"
	case Random:
		return "random"
	case TreePLRU:
		return "tree-plru"
	}
	return fmt.Sprintf("ReplacementPolicy(%d)", int(p))
}

// Config describes one cache array.
type Config struct {
	Name       string
	SizeBytes  int
	LineBytes  int
	Ways       int
	HitLatency int // cycles for a hit in this array
	Policy     ReplacementPolicy
}

// Validate checks structural sanity: power-of-two geometry and at least
// one set.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry", c.Name)
	}
	if bits.OnesCount(uint(c.LineBytes)) != 1 {
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by %d-way x %dB lines",
			c.Name, c.SizeBytes, c.Ways, c.LineBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if bits.OnesCount(uint(sets)) != 1 {
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, sets)
	}
	if c.HitLatency < 0 {
		return fmt.Errorf("cache %q: negative hit latency", c.Name)
	}
	return nil
}

// Stats aggregates the per-array event counters the experiments consume.
type Stats struct {
	Accesses   stats.Counter
	Hits       stats.Counter
	Misses     stats.Counter
	Evictions  stats.Counter
	Writebacks stats.Counter // dirty victims pushed down/out
	Backinvals stats.Counter // invalidations arriving from coherence
}

// HitRate returns hits/accesses.
func (s *Stats) HitRate() float64 {
	return stats.Ratio(s.Hits.Value(), s.Accesses.Value())
}

// Reset clears all counters (used at epoch boundaries by the tuner).
func (s *Stats) Reset() {
	s.Accesses.Reset()
	s.Hits.Reset()
	s.Misses.Reset()
	s.Evictions.Reset()
	s.Writebacks.Reset()
	s.Backinvals.Reset()
}

// invalidTag marks an empty way in the tag array. Line addresses are
// byte addresses shifted right by at least 6, so no reachable line can
// collide with it; Allocate enforces this.
const invalidTag = ^uint64(0)

// wayRec is the complete per-way bookkeeping record: the tag word and a
// packed word carrying the LRU generation stamp (upper 56 bits) and the
// MESI state (low byte). Every generation stamp is written from a fresh
// gen++ and is therefore unique within the cache, so ordering packed
// words is identical to ordering raw stamps — the state byte can never
// break an LRU tie that does not exist. Keeping the record 16 bytes
// means a replacement-hint hit reads and updates one cache line instead
// of three parallel arrays.
type wayRec struct {
	tag      uint64 // invalidTag when the way is empty
	useState uint64 // gen<<8 | uint64(state)
}

const stateBits = 8

// Cache is one set-associative tag/state array. It is deliberately a
// *bookkeeping* structure: it records presence and MESI state and chooses
// victims, while latency composition and inter-cache movement are the
// callers' business.
//
// Storage is one flat record array, set-major: set s occupies indexes
// [s*Ways, (s+1)*Ways). The hot-path way scan compares the tag words —
// 16-byte strided, at most four host lines for a 16-way set — with empty
// ways holding a sentinel tag that matches nothing, so presence checks
// never consult state or recency until a hit is found.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	ways      int
	nSets     int
	recs      []wayRec
	plru      []bool   // nSets*2*Ways tree nodes (TreePLRU only), set-major
	hint      []uint16 // per-set most-recently-hit way, a pure scan shortcut
	gen       uint64
	rnd       *rng.Source

	Stats Stats
}

// New constructs a cache from cfg. The rnd source is only used by the
// Random policy and may be nil otherwise.
func New(cfg Config, rnd *rng.Source) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == Random && rnd == nil {
		return nil, fmt.Errorf("cache %q: random policy requires an rng source", cfg.Name)
	}
	nSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	c := &Cache{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(nSets - 1),
		ways:      cfg.Ways,
		nSets:     nSets,
		recs:      make([]wayRec, nSets*cfg.Ways),
		hint:      make([]uint16, nSets),
		rnd:       rnd,
	}
	for i := range c.recs {
		c.recs[i].tag = invalidTag
	}
	if cfg.Policy == TreePLRU {
		// Node 0 of each per-set tree is unused; a complete path over a
		// non-power-of-two way count can reach index 2*Ways-1.
		c.plru = make([]bool, nSets*2*cfg.Ways)
	}
	return c, nil
}

// MustNew is New that panics on config errors; for fixed baseline configs.
func MustNew(cfg Config, rnd *rng.Source) *Cache {
	c, err := New(cfg, rnd)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.nSets }

// LineAddr converts a byte address to a line address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift }

func (c *Cache) setIndex(lineAddr uint64) int { return int(lineAddr & c.setMask) }

// find returns the flat index of lineAddr's way, or -1 when absent. The
// scan touches only the contiguous tag words; empty ways hold invalidTag
// and match nothing.
func (c *Cache) find(lineAddr uint64) int {
	base := c.setIndex(lineAddr) * c.ways
	recs := c.recs[base : base+c.ways]
	for i := range recs {
		if recs[i].tag == lineAddr {
			return base + i
		}
	}
	return -1
}

// Lookup returns the state of the line containing addr (line-address
// domain) without updating replacement metadata or counters. Invalid means
// absent.
func (c *Cache) Lookup(lineAddr uint64) State {
	if i := c.find(lineAddr); i >= 0 {
		return State(c.recs[i].useState)
	}
	return Invalid
}

// Probe returns the state of the line containing lineAddr, recording a
// use (replacement touch) when the line is present. It is the hot-path
// combination of Lookup and Touch in one way scan: every present-line
// access updates recency, and Invalid means absent.
func (c *Cache) Probe(lineAddr uint64) State {
	// Most hits land on the way the set hit last time; checking it first
	// skips the way scan entirely. The hint is only a shortcut — a stale
	// hint falls through to the scan and every outcome is identical.
	si := c.setIndex(lineAddr)
	base := si * c.ways
	if h := base + int(c.hint[si]); c.recs[h].tag == lineAddr && c.plru == nil {
		c.gen++
		st := State(c.recs[h].useState)
		c.recs[h].useState = c.gen<<stateBits | uint64(st)
		return st
	}
	recs := c.recs[base : base+c.ways]
	for w := range recs {
		if recs[w].tag == lineAddr {
			c.hint[si] = uint16(w)
			c.gen++
			st := State(recs[w].useState)
			recs[w].useState = c.gen<<stateBits | uint64(st)
			if c.plru != nil {
				c.updatePLRU(si, w)
			}
			return st
		}
	}
	return Invalid
}

// Touch records a use of the line for replacement purposes and counts a
// hit. It must only be called when the line is present.
func (c *Cache) Touch(lineAddr uint64) {
	i := c.find(lineAddr)
	if i < 0 {
		panic(fmt.Sprintf("cache %q: Touch of absent line %#x", c.cfg.Name, lineAddr))
	}
	c.gen++
	c.recs[i].useState = c.gen<<stateBits | c.recs[i].useState&(1<<stateBits-1)
	c.updatePLRU(i/c.ways, i%c.ways)
}

// SetState transitions the MESI state of a present line (e.g. S->M on an
// upgrade, M->S on a downgrade from the directory). It panics if the line
// is absent — state changes on absent lines indicate a protocol bug.
func (c *Cache) SetState(lineAddr uint64, st State) {
	if st == Invalid {
		c.Invalidate(lineAddr)
		return
	}
	i := c.find(lineAddr)
	if i < 0 {
		panic(fmt.Sprintf("cache %q: SetState(%v) of absent line %#x", c.cfg.Name, st, lineAddr))
	}
	c.recs[i].useState = c.recs[i].useState&^(1<<stateBits-1) | uint64(st)
}

// Invalidate removes the line if present and returns its previous state.
// Used both for coherence invalidations and for inclusive back-invalidates.
func (c *Cache) Invalidate(lineAddr uint64) State {
	i := c.find(lineAddr)
	if i < 0 {
		return Invalid
	}
	prev := State(c.recs[i].useState)
	c.recs[i] = wayRec{tag: invalidTag}
	c.Stats.Backinvals.Inc()
	return prev
}

// Victim describes a line displaced by Allocate.
type Victim struct {
	LineAddr uint64
	State    State
}

// Allocate inserts lineAddr in state st, choosing and returning a victim
// if the set was full. A returned Victim with State != Invalid must be
// handled by the caller (writeback for Modified, directory notification
// for all). Allocating an already-present line just updates its state.
func (c *Cache) Allocate(lineAddr uint64, st State) (Victim, bool) {
	if st == Invalid {
		panic(fmt.Sprintf("cache %q: Allocate in Invalid state", c.cfg.Name))
	}
	if lineAddr == invalidTag {
		panic(fmt.Sprintf("cache %q: Allocate of reserved line address", c.cfg.Name))
	}
	si := c.setIndex(lineAddr)
	base := si * c.ways
	// One scan finds both an already-present line (refresh) and the first
	// free way. The free way matters only when the line is absent, and a
	// present line is unique in its set, so the merged scan decides
	// exactly what the two separate scans did.
	free := -1
	recs := c.recs[base : base+c.ways]
	for w := range recs {
		if recs[w].tag == lineAddr {
			c.gen++
			recs[w].useState = c.gen<<stateBits | uint64(st)
			c.hint[si] = uint16(w)
			c.updatePLRU(si, w)
			return Victim{}, false
		}
		if free < 0 && recs[w].tag == invalidTag {
			free = w
		}
	}
	if free >= 0 {
		c.fill(si, free, lineAddr, st)
		return Victim{}, false
	}
	// Evict.
	vi := base + c.chooseVictim(si)
	v := Victim{LineAddr: c.recs[vi].tag, State: State(c.recs[vi].useState)}
	c.Stats.Evictions.Inc()
	if v.State == Modified || v.State == Owned {
		c.Stats.Writebacks.Inc()
	}
	c.fill(si, vi-base, lineAddr, st)
	return v, true
}

func (c *Cache) fill(si, way int, lineAddr uint64, st State) {
	c.gen++
	c.recs[si*c.ways+way] = wayRec{tag: lineAddr, useState: c.gen<<stateBits | uint64(st)}
	c.hint[si] = uint16(way)
	c.updatePLRU(si, way)
}

func (c *Cache) chooseVictim(si int) int {
	switch c.cfg.Policy {
	case Random:
		return c.rnd.Intn(c.ways)
	case TreePLRU:
		return c.plruVictim(si)
	default: // LRU
		// Ordering the packed words is ordering the generation stamps:
		// every stamp came from a unique gen++, so the state byte never
		// decides a comparison.
		base := si * c.ways
		recs := c.recs[base : base+c.ways]
		best := 0
		for i := 1; i < len(recs); i++ {
			if recs[i].useState < recs[best].useState {
				best = i
			}
		}
		return best
	}
}

// updatePLRU marks the path to `way` as most-recently-used: at each tree
// node on the path, point the bit *away* from the accessed half.
func (c *Cache) updatePLRU(si, way int) {
	if c.cfg.Policy != TreePLRU {
		return
	}
	base := si * 2 * c.ways
	nodes := c.plru[base : base+2*c.ways]
	node := 1
	lo, hi := 0, c.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			nodes[node] = true // true: next victim search goes right
			node = 2 * node
			hi = mid
		} else {
			nodes[node] = false
			node = 2*node + 1
			lo = mid
		}
	}
}

// plruVictim walks the tree following the victim pointers.
func (c *Cache) plruVictim(si int) int {
	base := si * 2 * c.ways
	nodes := c.plru[base : base+2*c.ways]
	node := 1
	lo, hi := 0, c.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if nodes[node] { // go right
			node = 2*node + 1
			lo = mid
		} else {
			node = 2 * node
			hi = mid
		}
	}
	return lo
}

// Occupancy returns the number of valid lines, for diagnostics and tests.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.recs {
		if c.recs[i].tag != invalidTag {
			n++
		}
	}
	return n
}

// ForEachValid calls fn for every valid line (diagnostics / invariant
// checking in tests). Iteration order is set-major, way-minor.
func (c *Cache) ForEachValid(fn func(lineAddr uint64, st State)) {
	for i := range c.recs {
		if c.recs[i].tag != invalidTag {
			fn(c.recs[i].tag, State(c.recs[i].useState))
		}
	}
}

// Flush invalidates every line, returning how many were dirty. Used when a
// simulated workload is reset between epochs in tests.
func (c *Cache) Flush() (dirty int) {
	for i := range c.recs {
		if st := State(c.recs[i].useState); st == Modified || st == Owned {
			dirty++
		}
		c.recs[i] = wayRec{tag: invalidTag}
	}
	return dirty
}
