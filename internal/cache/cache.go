// Package cache implements the set-associative cache arrays of the
// simulated memory hierarchy. A Cache models one tag/state array (an L1-I,
// L1-D or private L2); the directory-based coherence protocol that moves
// lines *between* caches lives in package coherence and manipulates line
// states through this package's API.
//
// The baseline configuration follows the paper's Table II: 32 KB 2-way L1s
// with 1-cycle access, 1 MB 16-way L2 with 12-cycle access, 64 B lines
// everywhere.
package cache

import (
	"fmt"
	"math/bits"

	"offloadsim/internal/rng"
	"offloadsim/internal/stats"
)

// State is the MESI coherence state of a cached line. L1 caches only use
// Invalid/Shared/Modified (the E state is tracked at the L2/directory
// level); the extra state costs nothing here.
type State uint8

const (
	// Invalid: the line is not present.
	Invalid State = iota
	// Shared: clean, potentially replicated in other caches.
	Shared
	// Exclusive: clean, guaranteed to be the only copy.
	Exclusive
	// Modified: dirty, guaranteed to be the only copy.
	Modified
	// Owned: dirty but replicated — this cache is responsible for
	// supplying the line and eventually writing it back (MOESI only).
	Owned
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	case Owned:
		return "O"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// ReplacementPolicy selects a victim way within a set.
type ReplacementPolicy int

const (
	// LRU evicts the least recently used way (the paper's baseline).
	LRU ReplacementPolicy = iota
	// Random evicts a uniformly random way.
	Random
	// TreePLRU approximates LRU with a binary decision tree, the common
	// hardware implementation for high associativity.
	TreePLRU
)

// String implements fmt.Stringer.
func (p ReplacementPolicy) String() string {
	switch p {
	case LRU:
		return "lru"
	case Random:
		return "random"
	case TreePLRU:
		return "tree-plru"
	}
	return fmt.Sprintf("ReplacementPolicy(%d)", int(p))
}

// Config describes one cache array.
type Config struct {
	Name       string
	SizeBytes  int
	LineBytes  int
	Ways       int
	HitLatency int // cycles for a hit in this array
	Policy     ReplacementPolicy
}

// Validate checks structural sanity: power-of-two geometry and at least
// one set.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry", c.Name)
	}
	if bits.OnesCount(uint(c.LineBytes)) != 1 {
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by %d-way x %dB lines",
			c.Name, c.SizeBytes, c.Ways, c.LineBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if bits.OnesCount(uint(sets)) != 1 {
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, sets)
	}
	if c.HitLatency < 0 {
		return fmt.Errorf("cache %q: negative hit latency", c.Name)
	}
	return nil
}

// Stats aggregates the per-array event counters the experiments consume.
type Stats struct {
	Accesses   stats.Counter
	Hits       stats.Counter
	Misses     stats.Counter
	Evictions  stats.Counter
	Writebacks stats.Counter // dirty victims pushed down/out
	Backinvals stats.Counter // invalidations arriving from coherence
}

// HitRate returns hits/accesses.
func (s *Stats) HitRate() float64 {
	return stats.Ratio(s.Hits.Value(), s.Accesses.Value())
}

// Reset clears all counters (used at epoch boundaries by the tuner).
func (s *Stats) Reset() {
	s.Accesses.Reset()
	s.Hits.Reset()
	s.Misses.Reset()
	s.Evictions.Reset()
	s.Writebacks.Reset()
	s.Backinvals.Reset()
}

type line struct {
	tag     uint64 // full line address (addr >> lineShift); tag+index in one
	state   State
	lastUse uint64 // generation stamp for LRU
}

// Cache is one set-associative tag/state array. It is deliberately a
// *bookkeeping* structure: it records presence and MESI state and chooses
// victims, while latency composition and inter-cache movement are the
// callers' business.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	sets      [][]line
	plru      [][]bool // per-set PLRU tree nodes (Ways-1 nodes)
	gen       uint64
	rnd       *rng.Source

	Stats Stats
}

// New constructs a cache from cfg. The rnd source is only used by the
// Random policy and may be nil otherwise.
func New(cfg Config, rnd *rng.Source) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == Random && rnd == nil {
		return nil, fmt.Errorf("cache %q: random policy requires an rng source", cfg.Name)
	}
	nSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	c := &Cache{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(nSets - 1),
		sets:      make([][]line, nSets),
		rnd:       rnd,
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	if cfg.Policy == TreePLRU {
		c.plru = make([][]bool, nSets)
		for i := range c.plru {
			// Node 0 is unused; a complete path over a non-power-of-two
			// way count can reach index 2*Ways-1.
			c.plru[i] = make([]bool, 2*cfg.Ways)
		}
	}
	return c, nil
}

// MustNew is New that panics on config errors; for fixed baseline configs.
func MustNew(cfg Config, rnd *rng.Source) *Cache {
	c, err := New(cfg, rnd)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.sets) }

// LineAddr converts a byte address to a line address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift }

func (c *Cache) setIndex(lineAddr uint64) int { return int(lineAddr & c.setMask) }

// Lookup returns the state of the line containing addr (line-address
// domain) without updating replacement metadata or counters. Invalid means
// absent.
func (c *Cache) Lookup(lineAddr uint64) State {
	set := c.sets[c.setIndex(lineAddr)]
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			return set[i].state
		}
	}
	return Invalid
}

// Probe returns the state of the line containing lineAddr, recording a
// use (replacement touch) when the line is present. It is the hot-path
// combination of Lookup and Touch: every present-line access updates
// recency, and Invalid means absent.
func (c *Cache) Probe(lineAddr uint64) State {
	st := c.Lookup(lineAddr)
	if st != Invalid {
		c.Touch(lineAddr)
	}
	return st
}

// Touch records a use of the line for replacement purposes and counts a
// hit. It must only be called when the line is present.
func (c *Cache) Touch(lineAddr uint64) {
	si := c.setIndex(lineAddr)
	set := c.sets[si]
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			c.gen++
			set[i].lastUse = c.gen
			c.updatePLRU(si, i)
			return
		}
	}
	panic(fmt.Sprintf("cache %q: Touch of absent line %#x", c.cfg.Name, lineAddr))
}

// SetState transitions the MESI state of a present line (e.g. S->M on an
// upgrade, M->S on a downgrade from the directory). It panics if the line
// is absent — state changes on absent lines indicate a protocol bug.
func (c *Cache) SetState(lineAddr uint64, st State) {
	if st == Invalid {
		c.Invalidate(lineAddr)
		return
	}
	set := c.sets[c.setIndex(lineAddr)]
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			set[i].state = st
			return
		}
	}
	panic(fmt.Sprintf("cache %q: SetState(%v) of absent line %#x", c.cfg.Name, st, lineAddr))
}

// Invalidate removes the line if present and returns its previous state.
// Used both for coherence invalidations and for inclusive back-invalidates.
func (c *Cache) Invalidate(lineAddr uint64) State {
	set := c.sets[c.setIndex(lineAddr)]
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			prev := set[i].state
			set[i].state = Invalid
			c.Stats.Backinvals.Inc()
			return prev
		}
	}
	return Invalid
}

// Victim describes a line displaced by Allocate.
type Victim struct {
	LineAddr uint64
	State    State
}

// Allocate inserts lineAddr in state st, choosing and returning a victim
// if the set was full. A returned Victim with State != Invalid must be
// handled by the caller (writeback for Modified, directory notification
// for all). Allocating an already-present line just updates its state.
func (c *Cache) Allocate(lineAddr uint64, st State) (Victim, bool) {
	if st == Invalid {
		panic(fmt.Sprintf("cache %q: Allocate in Invalid state", c.cfg.Name))
	}
	si := c.setIndex(lineAddr)
	set := c.sets[si]
	// Already present: refresh.
	for i := range set {
		if set[i].state != Invalid && set[i].tag == lineAddr {
			set[i].state = st
			c.gen++
			set[i].lastUse = c.gen
			c.updatePLRU(si, i)
			return Victim{}, false
		}
	}
	// Free way?
	for i := range set {
		if set[i].state == Invalid {
			c.fill(si, i, lineAddr, st)
			return Victim{}, false
		}
	}
	// Evict.
	vi := c.chooseVictim(si)
	v := Victim{LineAddr: set[vi].tag, State: set[vi].state}
	c.Stats.Evictions.Inc()
	if v.State == Modified || v.State == Owned {
		c.Stats.Writebacks.Inc()
	}
	c.fill(si, vi, lineAddr, st)
	return v, true
}

func (c *Cache) fill(si, way int, lineAddr uint64, st State) {
	c.gen++
	c.sets[si][way] = line{tag: lineAddr, state: st, lastUse: c.gen}
	c.updatePLRU(si, way)
}

func (c *Cache) chooseVictim(si int) int {
	switch c.cfg.Policy {
	case Random:
		return c.rnd.Intn(c.cfg.Ways)
	case TreePLRU:
		return c.plruVictim(si)
	default: // LRU
		set := c.sets[si]
		best := 0
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < set[best].lastUse {
				best = i
			}
		}
		return best
	}
}

// updatePLRU marks the path to `way` as most-recently-used: at each tree
// node on the path, point the bit *away* from the accessed half.
func (c *Cache) updatePLRU(si, way int) {
	if c.cfg.Policy != TreePLRU {
		return
	}
	nodes := c.plru[si]
	node := 1
	lo, hi := 0, c.cfg.Ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			nodes[node] = true // true: next victim search goes right
			node = 2 * node
			hi = mid
		} else {
			nodes[node] = false
			node = 2*node + 1
			lo = mid
		}
	}
}

// plruVictim walks the tree following the victim pointers.
func (c *Cache) plruVictim(si int) int {
	nodes := c.plru[si]
	node := 1
	lo, hi := 0, c.cfg.Ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if nodes[node] { // go right
			node = 2*node + 1
			lo = mid
		} else {
			node = 2 * node
			hi = mid
		}
	}
	return lo
}

// Occupancy returns the number of valid lines, for diagnostics and tests.
func (c *Cache) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].state != Invalid {
				n++
			}
		}
	}
	return n
}

// ForEachValid calls fn for every valid line (diagnostics / invariant
// checking in tests).
func (c *Cache) ForEachValid(fn func(lineAddr uint64, st State)) {
	for _, set := range c.sets {
		for i := range set {
			if set[i].state != Invalid {
				fn(set[i].tag, set[i].state)
			}
		}
	}
}

// Flush invalidates every line, returning how many were dirty. Used when a
// simulated workload is reset between epochs in tests.
func (c *Cache) Flush() (dirty int) {
	for _, set := range c.sets {
		for i := range set {
			if set[i].state == Modified || set[i].state == Owned {
				dirty++
			}
			set[i].state = Invalid
		}
	}
	return dirty
}
