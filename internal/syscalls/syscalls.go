// Package syscalls models the operating-system entry points the simulator
// can invoke. Each entry point carries a run-length model: the number of
// privileged instructions an invocation executes as a function of its
// argument class, plus the stochastic effects the paper calls out
// (premature end-of-file returns, argument-independent jitter). The
// predictor's whole premise (§III-A) is that run length is *mostly* a
// deterministic function of syscall identity and arguments — this package
// is where that ground truth lives.
//
// The package also records the Table I census of distinct system calls
// across operating systems, which the paper uses to argue that manual
// per-syscall instrumentation does not scale.
package syscalls

import (
	"fmt"

	"offloadsim/internal/rng"
)

// ID identifies a modeled OS entry point. IDs 0..2 are the hardware-level
// trap handlers (register-window spill/fill and TLB refill) that execute in
// privileged mode without being "system calls"; the paper's mechanism
// watches the privilege bit, so it sees them too.
type ID int

// Trap handlers and system calls. The catalog is a representative cross
// section of a Unix syscall table: identity/process control, file I/O,
// networking, memory management, IPC, signals and time.
const (
	SpillTrap ID = iota
	FillTrap
	TLBMiss

	Getpid
	Gettid
	Getuid
	Time
	ClockGettime
	Sigprocmask
	Brk
	Sched_yield

	Read
	Write
	Pread
	Pwrite
	Open
	Close
	Stat
	Fstat
	Lseek
	Dup
	Pipe
	Fcntl
	Ioctl
	Readv
	Writev
	Fsync
	Unlink
	Rename
	Mkdir
	Getdents

	Socket
	Bind
	Listen
	Accept
	Connect
	Send
	Recv
	Sendto
	Recvfrom
	Sendfile
	Poll
	Select
	Epoll_wait
	Shutdown

	Mmap
	Munmap
	Mprotect
	Madvise

	Fork
	Execve
	Wait4
	Exit
	Kill
	Clone

	Futex
	Semop
	Msgsnd
	Msgrcv
	Shmat

	Nanosleep
	Getrusage
	Setitimer
	Sysinfo

	numIDs // sentinel
)

// NumIDs is the number of modeled entry points.
const NumIDs = int(numIDs)

// Spec describes the execution model of one OS entry point.
type Spec struct {
	ID   ID
	Name string

	// BaseLength is the privileged instruction count of the shortest
	// (smallest argument class) invocation.
	BaseLength int

	// ArgClasses is how many distinct argument classes the entry point
	// is invoked with (e.g. read() called with a few characteristic
	// buffer sizes). Each class has a deterministic length.
	ArgClasses int

	// ArgScale is the additional instruction count per argument-class
	// step: length(class) = BaseLength + ArgScale*class.
	ArgScale int

	// ShortReturnProb is the probability an invocation returns early at
	// a fraction of its nominal length (read() hitting EOF is the
	// paper's example). Early returns are what argument-based software
	// instrumentation cannot anticipate.
	ShortReturnProb float64

	// JitterProb is the probability the invocation length deviates by
	// up to ±5% from its deterministic value (cache/lock state inside
	// the kernel). Calibrated so the predictor's exact-hit rate lands
	// near the paper's 73.6%.
	JitterProb float64

	// MasksInterrupts marks handlers that run entirely with interrupts
	// disabled; they can never be extended by a device interrupt.
	MasksInterrupts bool

	// CodeLines / DataLines approximate the I-cache and D-cache
	// footprint (in 64 B lines) of the handler's kernel text and
	// private kernel data.
	CodeLines int
	DataLines int

	// UserDataFrac is the fraction of the handler's data references
	// that touch *user* memory (copy_to/from_user-style buffer
	// traffic). These references are the coherence coupling between
	// the user core and the OS core when off-loading is active.
	UserDataFrac float64
}

// Length returns the deterministic nominal run length for an argument
// class, clamped to at least 1 instruction.
func (s *Spec) Length(argClass int) int {
	if argClass < 0 {
		argClass = 0
	}
	if argClass >= s.ArgClasses {
		argClass = s.ArgClasses - 1
	}
	n := s.BaseLength + s.ArgScale*argClass
	if n < 1 {
		n = 1
	}
	return n
}

// SampleLength draws the *actual* run length of one invocation: the
// deterministic class length, shortened on an early return, and jittered
// with small probability. Interrupt extension is applied by the trace
// layer, not here, because it depends on machine state (PSTATE.IE), not on
// the syscall.
func (s *Spec) SampleLength(argClass int, src *rng.Source) int {
	n := s.Length(argClass)
	if s.ShortReturnProb > 0 && src.Bool(s.ShortReturnProb) {
		// Early return: the handler bails out at 35-70% of nominal (an
		// EOF read still walks the full VFS entry path before finding
		// nothing to copy).
		frac := 0.35 + 0.35*src.Float64()
		n = int(float64(n) * frac)
	} else if s.JitterProb > 0 && src.Bool(s.JitterProb) {
		// Small symmetric jitter within ±5%.
		n = int(float64(n) * (0.95 + 0.1*src.Float64()))
	}
	if n < 1 {
		n = 1
	}
	return n
}

// catalog is the full table of modeled entry points. Lengths are in
// instructions and follow the magnitudes the literature reports for
// in-order SPARC kernels: trap handlers tens of instructions, fast
// getters ~100, file/network I/O hundreds to tens of thousands depending
// on buffer size, fork/exec the longest.
var catalog = [NumIDs]Spec{
	SpillTrap: {Name: "spill_trap", BaseLength: 18, ArgClasses: 1, MasksInterrupts: true,
		CodeLines: 8, DataLines: 12, UserDataFrac: 0.85},
	FillTrap: {Name: "fill_trap", BaseLength: 16, ArgClasses: 1, MasksInterrupts: true,
		CodeLines: 8, DataLines: 12, UserDataFrac: 0.85},
	TLBMiss: {Name: "tlb_miss", BaseLength: 26, ArgClasses: 1, MasksInterrupts: true,
		CodeLines: 12, DataLines: 24, UserDataFrac: 0.10},

	Getpid:       {Name: "getpid", BaseLength: 85, ArgClasses: 1, JitterProb: 0.12, CodeLines: 18, DataLines: 32, UserDataFrac: 0.03},
	Gettid:       {Name: "gettid", BaseLength: 80, ArgClasses: 1, JitterProb: 0.12, CodeLines: 18, DataLines: 32, UserDataFrac: 0.03},
	Getuid:       {Name: "getuid", BaseLength: 90, ArgClasses: 1, JitterProb: 0.12, CodeLines: 12, DataLines: 9, UserDataFrac: 0.05},
	Time:         {Name: "time", BaseLength: 110, ArgClasses: 1, JitterProb: 0.12, CodeLines: 24, DataLines: 48, UserDataFrac: 0.04},
	ClockGettime: {Name: "clock_gettime", BaseLength: 150, ArgClasses: 2, ArgScale: 30, JitterProb: 0.12, CodeLines: 28, DataLines: 56, UserDataFrac: 0.04},
	Sigprocmask:  {Name: "sigprocmask", BaseLength: 140, ArgClasses: 2, ArgScale: 20, JitterProb: 0.12, CodeLines: 24, DataLines: 48, UserDataFrac: 0.04},
	Brk:          {Name: "brk", BaseLength: 400, ArgClasses: 3, ArgScale: 150, JitterProb: 0.12, CodeLines: 40, DataLines: 72, UserDataFrac: 0.10},
	Sched_yield:  {Name: "sched_yield", BaseLength: 300, ArgClasses: 1, JitterProb: 0.12, CodeLines: 36, DataLines: 60, UserDataFrac: 0.02},

	Read:     {Name: "read", BaseLength: 600, ArgClasses: 6, ArgScale: 900, ShortReturnProb: 0.030, JitterProb: 0.12, CodeLines: 80, DataLines: 480, UserDataFrac: 0.22},
	Write:    {Name: "write", BaseLength: 650, ArgClasses: 6, ArgScale: 950, ShortReturnProb: 0.010, JitterProb: 0.12, CodeLines: 84, DataLines: 480, UserDataFrac: 0.22},
	Pread:    {Name: "pread", BaseLength: 700, ArgClasses: 5, ArgScale: 900, ShortReturnProb: 0.025, JitterProb: 0.12, CodeLines: 80, DataLines: 720, UserDataFrac: 0.22},
	Pwrite:   {Name: "pwrite", BaseLength: 750, ArgClasses: 5, ArgScale: 950, ShortReturnProb: 0.010, JitterProb: 0.12, CodeLines: 84, DataLines: 720, UserDataFrac: 0.22},
	Open:     {Name: "open", BaseLength: 1800, ArgClasses: 4, ArgScale: 500, JitterProb: 0.12, CodeLines: 128, DataLines: 168, UserDataFrac: 0.15},
	Close:    {Name: "close", BaseLength: 350, ArgClasses: 2, ArgScale: 100, JitterProb: 0.12, CodeLines: 32, DataLines: 36, UserDataFrac: 0.05},
	Stat:     {Name: "stat", BaseLength: 1200, ArgClasses: 3, ArgScale: 350, JitterProb: 0.12, CodeLines: 96, DataLines: 120, UserDataFrac: 0.18},
	Fstat:    {Name: "fstat", BaseLength: 500, ArgClasses: 2, ArgScale: 150, JitterProb: 0.12, CodeLines: 48, DataLines: 60, UserDataFrac: 0.18},
	Lseek:    {Name: "lseek", BaseLength: 220, ArgClasses: 2, ArgScale: 50, JitterProb: 0.12, CodeLines: 20, DataLines: 24, UserDataFrac: 0.05},
	Dup:      {Name: "dup", BaseLength: 260, ArgClasses: 1, JitterProb: 0.12, CodeLines: 24, DataLines: 30, UserDataFrac: 0.02},
	Pipe:     {Name: "pipe", BaseLength: 900, ArgClasses: 1, JitterProb: 0.12, CodeLines: 64, DataLines: 84, UserDataFrac: 0.10},
	Fcntl:    {Name: "fcntl", BaseLength: 300, ArgClasses: 3, ArgScale: 80, JitterProb: 0.12, CodeLines: 32, DataLines: 36, UserDataFrac: 0.05},
	Ioctl:    {Name: "ioctl", BaseLength: 800, ArgClasses: 4, ArgScale: 400, JitterProb: 0.12, CodeLines: 72, DataLines: 96, UserDataFrac: 0.20},
	Readv:    {Name: "readv", BaseLength: 900, ArgClasses: 5, ArgScale: 1100, ShortReturnProb: 0.025, JitterProb: 0.12, CodeLines: 88, DataLines: 156, UserDataFrac: 0.22},
	Writev:   {Name: "writev", BaseLength: 950, ArgClasses: 5, ArgScale: 1150, ShortReturnProb: 0.010, JitterProb: 0.12, CodeLines: 92, DataLines: 156, UserDataFrac: 0.22},
	Fsync:    {Name: "fsync", BaseLength: 5200, ArgClasses: 3, ArgScale: 2500, JitterProb: 0.12, CodeLines: 144, DataLines: 960, UserDataFrac: 0.05, MasksInterrupts: true},
	Unlink:   {Name: "unlink", BaseLength: 1500, ArgClasses: 2, ArgScale: 400, JitterProb: 0.12, CodeLines: 104, DataLines: 132, UserDataFrac: 0.05},
	Rename:   {Name: "rename", BaseLength: 2100, ArgClasses: 2, ArgScale: 500, JitterProb: 0.12, CodeLines: 120, DataLines: 156, UserDataFrac: 0.05},
	Mkdir:    {Name: "mkdir", BaseLength: 1900, ArgClasses: 2, ArgScale: 400, JitterProb: 0.12, CodeLines: 112, DataLines: 144, UserDataFrac: 0.05},
	Getdents: {Name: "getdents", BaseLength: 1400, ArgClasses: 4, ArgScale: 700, ShortReturnProb: 0.050, JitterProb: 0.12, CodeLines: 96, DataLines: 168, UserDataFrac: 0.18},

	Socket:     {Name: "socket", BaseLength: 1100, ArgClasses: 2, ArgScale: 200, JitterProb: 0.12, CodeLines: 80, DataLines: 108, UserDataFrac: 0.05},
	Bind:       {Name: "bind", BaseLength: 700, ArgClasses: 1, JitterProb: 0.12, CodeLines: 56, DataLines: 72, UserDataFrac: 0.10},
	Listen:     {Name: "listen", BaseLength: 450, ArgClasses: 1, JitterProb: 0.12, CodeLines: 36, DataLines: 42, UserDataFrac: 0.02},
	Accept:     {Name: "accept", BaseLength: 2400, ArgClasses: 3, ArgScale: 600, JitterProb: 0.12, CodeLines: 128, DataLines: 168, UserDataFrac: 0.15},
	Connect:    {Name: "connect", BaseLength: 2600, ArgClasses: 3, ArgScale: 700, JitterProb: 0.12, CodeLines: 128, DataLines: 168, UserDataFrac: 0.15},
	Send:       {Name: "send", BaseLength: 1300, ArgClasses: 6, ArgScale: 1000, ShortReturnProb: 0.015, JitterProb: 0.12, CodeLines: 112, DataLines: 192, UserDataFrac: 0.18},
	Recv:       {Name: "recv", BaseLength: 1200, ArgClasses: 6, ArgScale: 950, ShortReturnProb: 0.040, JitterProb: 0.12, CodeLines: 112, DataLines: 192, UserDataFrac: 0.18},
	Sendto:     {Name: "sendto", BaseLength: 1400, ArgClasses: 5, ArgScale: 1000, ShortReturnProb: 0.015, JitterProb: 0.12, CodeLines: 116, DataLines: 192, UserDataFrac: 0.18},
	Recvfrom:   {Name: "recvfrom", BaseLength: 1300, ArgClasses: 5, ArgScale: 950, ShortReturnProb: 0.040, JitterProb: 0.12, CodeLines: 116, DataLines: 192, UserDataFrac: 0.18},
	Sendfile:   {Name: "sendfile", BaseLength: 3200, ArgClasses: 6, ArgScale: 2200, ShortReturnProb: 0.020, JitterProb: 0.12, CodeLines: 144, DataLines: 2400, UserDataFrac: 0.06},
	Poll:       {Name: "poll", BaseLength: 900, ArgClasses: 4, ArgScale: 450, JitterProb: 0.12, CodeLines: 80, DataLines: 108, UserDataFrac: 0.18},
	Select:     {Name: "select", BaseLength: 1000, ArgClasses: 4, ArgScale: 500, JitterProb: 0.12, CodeLines: 88, DataLines: 120, UserDataFrac: 0.18},
	Epoll_wait: {Name: "epoll_wait", BaseLength: 800, ArgClasses: 4, ArgScale: 400, JitterProb: 0.12, CodeLines: 72, DataLines: 96, UserDataFrac: 0.18},
	Shutdown:   {Name: "shutdown", BaseLength: 600, ArgClasses: 1, JitterProb: 0.12, CodeLines: 44, DataLines: 54, UserDataFrac: 0.02},

	Mmap:     {Name: "mmap", BaseLength: 2800, ArgClasses: 5, ArgScale: 900, JitterProb: 0.12, CodeLines: 144, DataLines: 192, UserDataFrac: 0.35},
	Munmap:   {Name: "munmap", BaseLength: 1700, ArgClasses: 4, ArgScale: 500, JitterProb: 0.12, CodeLines: 104, DataLines: 132, UserDataFrac: 0.30},
	Mprotect: {Name: "mprotect", BaseLength: 1100, ArgClasses: 3, ArgScale: 350, JitterProb: 0.12, CodeLines: 80, DataLines: 96, UserDataFrac: 0.35},
	Madvise:  {Name: "madvise", BaseLength: 700, ArgClasses: 3, ArgScale: 250, JitterProb: 0.12, CodeLines: 56, DataLines: 72, UserDataFrac: 0.45},

	Fork:   {Name: "fork", BaseLength: 22000, ArgClasses: 2, ArgScale: 5000, JitterProb: 0.12, CodeLines: 384, DataLines: 3200, UserDataFrac: 0.08, MasksInterrupts: true},
	Execve: {Name: "execve", BaseLength: 35000, ArgClasses: 2, ArgScale: 8000, JitterProb: 0.12, CodeLines: 320, DataLines: 576, UserDataFrac: 0.18, MasksInterrupts: true},
	Wait4:  {Name: "wait4", BaseLength: 1500, ArgClasses: 2, ArgScale: 400, JitterProb: 0.12, CodeLines: 88, DataLines: 108, UserDataFrac: 0.15},
	Exit:   {Name: "exit", BaseLength: 9000, ArgClasses: 1, JitterProb: 0.12, CodeLines: 256, DataLines: 1200, UserDataFrac: 0.05, MasksInterrupts: true},
	Kill:   {Name: "kill", BaseLength: 800, ArgClasses: 2, ArgScale: 200, JitterProb: 0.12, CodeLines: 60, DataLines: 72, UserDataFrac: 0.02},
	Clone:  {Name: "clone", BaseLength: 15000, ArgClasses: 3, ArgScale: 4000, JitterProb: 0.12, CodeLines: 320, DataLines: 560, UserDataFrac: 0.60, MasksInterrupts: true},

	Futex:  {Name: "futex", BaseLength: 500, ArgClasses: 4, ArgScale: 600, JitterProb: 0.12, CodeLines: 56, DataLines: 72, UserDataFrac: 0.28},
	Semop:  {Name: "semop", BaseLength: 700, ArgClasses: 3, ArgScale: 300, JitterProb: 0.12, CodeLines: 60, DataLines: 78, UserDataFrac: 0.15},
	Msgsnd: {Name: "msgsnd", BaseLength: 1100, ArgClasses: 4, ArgScale: 600, JitterProb: 0.12, CodeLines: 80, DataLines: 132, UserDataFrac: 0.28},
	Msgrcv: {Name: "msgrcv", BaseLength: 1050, ArgClasses: 4, ArgScale: 550, ShortReturnProb: 0.025, JitterProb: 0.12, CodeLines: 80, DataLines: 132, UserDataFrac: 0.28},
	Shmat:  {Name: "shmat", BaseLength: 1600, ArgClasses: 2, ArgScale: 400, JitterProb: 0.12, CodeLines: 96, DataLines: 120, UserDataFrac: 0.10},

	Nanosleep: {Name: "nanosleep", BaseLength: 1200, ArgClasses: 3, ArgScale: 300, JitterProb: 0.12, CodeLines: 72, DataLines: 84, UserDataFrac: 0.05},
	Getrusage: {Name: "getrusage", BaseLength: 600, ArgClasses: 1, JitterProb: 0.12, CodeLines: 48, DataLines: 60, UserDataFrac: 0.22},
	Setitimer: {Name: "setitimer", BaseLength: 700, ArgClasses: 2, ArgScale: 150, JitterProb: 0.12, CodeLines: 52, DataLines: 66, UserDataFrac: 0.15},
	Sysinfo:   {Name: "sysinfo", BaseLength: 900, ArgClasses: 1, JitterProb: 0.12, CodeLines: 64, DataLines: 84, UserDataFrac: 0.22},
}

func init() {
	// Stamp the IDs and validate the catalog once at package load so a
	// malformed entry fails fast rather than producing silent garbage.
	for i := range catalog {
		catalog[i].ID = ID(i)
		if catalog[i].Name == "" {
			panic(fmt.Sprintf("syscalls: entry %d has no name", i))
		}
		if catalog[i].BaseLength < 1 {
			panic(fmt.Sprintf("syscalls: %s has non-positive base length", catalog[i].Name))
		}
		if catalog[i].ArgClasses < 1 {
			catalog[i].ArgClasses = 1
		}
	}
}

// Lookup returns the spec for id. It panics on an out-of-range id, which
// always indicates a programming error in the caller.
func Lookup(id ID) *Spec {
	if id < 0 || int(id) >= NumIDs {
		panic(fmt.Sprintf("syscalls: id %d out of range", id))
	}
	return &catalog[id]
}

// All returns the full catalog in ID order. The returned slice aliases the
// package's data; callers must not modify the specs.
func All() []*Spec {
	out := make([]*Spec, NumIDs)
	for i := range catalog {
		out[i] = &catalog[i]
	}
	return out
}

// IsTrap reports whether id is a hardware trap handler rather than a
// programmer-visible system call. §IV notes these SPARC-specific short
// invocations can be excluded from reporting to match other ISAs.
func IsTrap(id ID) bool {
	return id == SpillTrap || id == FillTrap || id == TLBMiss
}

// String implements fmt.Stringer for IDs.
func (id ID) String() string {
	if id < 0 || int(id) >= NumIDs {
		return fmt.Sprintf("syscall(%d)", int(id))
	}
	return catalog[id].Name
}
