package syscalls

// sideEffectOnly tags the entry points whose invocations exist for their
// kernel-side effect rather than for data returned to the caller: writes
// and sends (the application typically streams on without inspecting the
// byte count), durability and teardown requests, signals, timer arms and
// paging hints. These are the classes eligible for asynchronous
// fire-and-forget off-loading (internal/oscore, docs/OSCORES.md): the
// user core may continue executing before the OS core has finished, with
// the return reconciled at its next OS boundary. Read-like calls,
// readiness waits and anything whose result feeds the very next user
// instruction are excluded — the caller cannot make progress without the
// answer, so overlapping them would change program semantics, not just
// timing.
var sideEffectOnly = [NumIDs]bool{
	Write:     true,
	Pwrite:    true,
	Writev:    true,
	Fsync:     true,
	Unlink:    true,
	Send:      true,
	Sendto:    true,
	Shutdown:  true,
	Madvise:   true,
	Kill:      true,
	Msgsnd:    true,
	Setitimer: true,
}

// SideEffectOnly reports whether id is a side-effect-only entry point —
// one whose off-loaded execution may overlap the requester (async
// fire-and-forget dispatch). IDs outside the catalog are never eligible.
func SideEffectOnly(id ID) bool {
	if id < 0 || int(id) >= NumIDs {
		return false
	}
	return sideEffectOnly[id]
}
