package syscalls

import (
	"testing"
	"testing/quick"

	"offloadsim/internal/rng"
)

func TestCatalogComplete(t *testing.T) {
	for _, s := range All() {
		if s.Name == "" {
			t.Fatalf("syscall %d has empty name", s.ID)
		}
		if s.BaseLength < 1 {
			t.Fatalf("%s: base length %d", s.Name, s.BaseLength)
		}
		if s.ArgClasses < 1 {
			t.Fatalf("%s: arg classes %d", s.Name, s.ArgClasses)
		}
		if s.CodeLines <= 0 || s.DataLines <= 0 {
			t.Fatalf("%s: footprints must be positive", s.Name)
		}
		if s.UserDataFrac < 0 || s.UserDataFrac > 1 {
			t.Fatalf("%s: UserDataFrac %v", s.Name, s.UserDataFrac)
		}
	}
}

func TestLookupMatchesAll(t *testing.T) {
	all := All()
	for i, s := range all {
		if Lookup(ID(i)) != s {
			t.Fatalf("Lookup(%d) mismatch", i)
		}
		if s.ID != ID(i) {
			t.Fatalf("entry %d has ID %d", i, s.ID)
		}
	}
}

func TestLookupPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Lookup(-1) did not panic")
		}
	}()
	Lookup(-1)
}

func TestLengthMonotonicInArgClass(t *testing.T) {
	read := Lookup(Read)
	prev := 0
	for c := 0; c < read.ArgClasses; c++ {
		n := read.Length(c)
		if n <= prev && c > 0 {
			t.Fatalf("read length not increasing at class %d", c)
		}
		prev = n
	}
}

func TestLengthClampsClass(t *testing.T) {
	s := Lookup(Read)
	if s.Length(-5) != s.Length(0) {
		t.Fatal("negative class not clamped to 0")
	}
	if s.Length(99) != s.Length(s.ArgClasses-1) {
		t.Fatal("oversized class not clamped to max")
	}
}

func TestTrapsAreShortAndMasked(t *testing.T) {
	for _, id := range []ID{SpillTrap, FillTrap, TLBMiss} {
		s := Lookup(id)
		if !IsTrap(id) {
			t.Fatalf("%s not classified as trap", s.Name)
		}
		if s.Length(0) >= 50 {
			t.Fatalf("%s: trap handlers must be short, got %d", s.Name, s.Length(0))
		}
		if !s.MasksInterrupts {
			t.Fatalf("%s: trap handlers run with interrupts masked", s.Name)
		}
	}
	if IsTrap(Read) {
		t.Fatal("read misclassified as trap")
	}
}

func TestSampleLengthDeterministicWithoutNoise(t *testing.T) {
	s := Lookup(Getpid)
	// With jitter probability 10%, most samples equal the nominal length.
	src := rng.New(1)
	exact := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if s.SampleLength(0, src) == s.Length(0) {
			exact++
		}
	}
	frac := float64(exact) / n
	if frac < 0.85 {
		t.Fatalf("getpid exact fraction %v, want >= 0.85", frac)
	}
}

func TestSampleLengthEarlyReturnShortens(t *testing.T) {
	s := Lookup(Read)
	src := rng.New(2)
	shorter := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if s.SampleLength(3, src) < s.Length(3)*8/10 {
			shorter++
		}
	}
	// ShortReturnProb is 3%; early returns land at 35-70% of nominal so
	// they all fall below 80% of the nominal length.
	frac := float64(shorter) / n
	if frac < 0.015 || frac > 0.06 {
		t.Fatalf("read early-return fraction = %v, want ~0.03", frac)
	}
}

func TestCensusMatchesPaper(t *testing.T) {
	rows := TableI()
	if len(rows) != 14 {
		t.Fatalf("Table I has %d rows, want 14", len(rows))
	}
	want := map[string]int{
		"Linux 2.6.30":    344,
		"FreeBSD Current": 513,
		"OpenSolaris":     255,
		"Windows Vista":   360,
		"Linux 0.01":      67,
	}
	got := map[string]int{}
	for _, r := range rows {
		got[r.OS] = r.Syscalls
	}
	for os, n := range want {
		if got[os] != n {
			t.Fatalf("%s: %d syscalls, want %d", os, got[os], n)
		}
	}
}

func TestIDString(t *testing.T) {
	if Read.String() != "read" {
		t.Fatalf("Read.String() = %q", Read.String())
	}
	if ID(-1).String() != "syscall(-1)" {
		t.Fatalf("invalid ID string = %q", ID(-1).String())
	}
}

// Property: SampleLength is always >= 1 and never exceeds the nominal
// length by more than the 5% jitter bound.
func TestQuickSampleLengthBounds(t *testing.T) {
	f := func(seed uint64, idRaw uint8, class uint8) bool {
		id := ID(int(idRaw) % NumIDs)
		s := Lookup(id)
		src := rng.New(seed)
		n := s.SampleLength(int(class)%s.ArgClasses, src)
		nominal := s.Length(int(class) % s.ArgClasses)
		return n >= 1 && float64(n) <= float64(nominal)*1.05+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEveryIDHasACategory(t *testing.T) {
	counts := map[Category]int{}
	for _, s := range All() {
		counts[CategoryOf(s.ID)]++ // must not panic for any catalog entry
	}
	if len(counts) != NumCategories {
		t.Fatalf("only %d of %d categories populated: %v", len(counts), NumCategories, counts)
	}
}

func TestCategoryBoundaries(t *testing.T) {
	want := map[ID]Category{
		SpillTrap: CatTrap, TLBMiss: CatTrap,
		Getpid: CatIdentity, Sched_yield: CatIdentity,
		Read: CatFile, Getdents: CatFile,
		Socket: CatNetwork, Shutdown: CatNetwork,
		Mmap: CatMemory, Madvise: CatMemory,
		Fork: CatProcess, Clone: CatProcess,
		Futex: CatIPC, Shmat: CatIPC,
		Nanosleep: CatTime, Sysinfo: CatTime,
	}
	for id, cat := range want {
		if got := CategoryOf(id); got != cat {
			t.Errorf("CategoryOf(%v) = %v, want %v", id, got, cat)
		}
	}
}

func TestByCategory(t *testing.T) {
	traps := ByCategory(CatTrap)
	if len(traps) != 3 {
		t.Fatalf("trap category has %d members", len(traps))
	}
	files := ByCategory(CatFile)
	if len(files) < 10 {
		t.Fatalf("file category has only %d members", len(files))
	}
	total := 0
	for c := Category(0); int(c) < NumCategories; c++ {
		total += len(ByCategory(c))
	}
	if total != NumIDs {
		t.Fatalf("categories cover %d of %d ids", total, NumIDs)
	}
}

func TestCategoryString(t *testing.T) {
	if CatFile.String() != "file" || CatTrap.String() != "trap" {
		t.Fatal("category names wrong")
	}
	if Category(99).String() == "" {
		t.Fatal("unknown category should still format")
	}
}
