package syscalls

// CensusEntry is one row of the paper's Table I: the number of distinct
// system calls in a released operating system. The table motivates the
// paper's core complaint about software instrumentation — there are
// hundreds of entry points per OS/version, and the count keeps growing, so
// hand-selecting and hand-instrumenting candidates does not scale.
type CensusEntry struct {
	OS       string
	Syscalls int
}

// TableI reproduces the paper's Table I verbatim. Ordering matches the
// paper (left column top-to-bottom, then right column).
func TableI() []CensusEntry {
	return []CensusEntry{
		{"Linux 2.6.30", 344},
		{"Linux 2.6.16", 310},
		{"Linux 2.4.29", 259},
		{"FreeBSD Current", 513},
		{"FreeBSD 5.3", 444},
		{"FreeBSD 2.2", 254},
		{"OpenSolaris", 255},
		{"Linux 2.2", 190},
		{"Linux 1.0", 143},
		{"Linux 0.01", 67},
		{"Windows Vista", 360},
		{"Windows XP", 288},
		{"Windows 2000", 247},
		{"Windows NT", 211},
	}
}
