package syscalls

import "testing"

// TestSideEffectOnlyMembership pins the async-eligible set: every tagged
// ID must be a real catalog entry, and the calls whose results gate the
// caller's next instruction must never be tagged.
func TestSideEffectOnlyMembership(t *testing.T) {
	want := []ID{Write, Pwrite, Writev, Fsync, Unlink, Send, Sendto,
		Shutdown, Madvise, Kill, Msgsnd, Setitimer}
	count := 0
	for id := ID(0); id < ID(NumIDs); id++ {
		if SideEffectOnly(id) {
			count++
		}
	}
	if count != len(want) {
		t.Fatalf("tagged %d IDs, want %d", count, len(want))
	}
	for _, id := range want {
		if !SideEffectOnly(id) {
			t.Errorf("%s: want side-effect-only", id)
		}
	}
	// Result-bearing calls must stay synchronous.
	for _, id := range []ID{Read, Recv, Recvfrom, Accept, Poll, Select,
		Epoll_wait, Open, Mmap, Fork, Wait4, Futex, SpillTrap, TLBMiss} {
		if SideEffectOnly(id) {
			t.Errorf("%s: must not be side-effect-only (caller consumes its result)", id)
		}
	}
}

// TestSideEffectOnlyBounds checks out-of-range IDs are never eligible.
func TestSideEffectOnlyBounds(t *testing.T) {
	if SideEffectOnly(-1) || SideEffectOnly(ID(NumIDs)) || SideEffectOnly(ID(NumIDs+100)) {
		t.Fatal("out-of-range ID reported side-effect-only")
	}
}
