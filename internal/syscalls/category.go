package syscalls

import "fmt"

// Category groups entry points by kernel subsystem; workload mixes and
// trace summaries report composition at this granularity.
type Category int

const (
	// CatTrap is the hardware trap handlers (spill/fill/TLB).
	CatTrap Category = iota
	// CatIdentity is fast getters and process-local state (getpid,
	// time, sigprocmask, brk, sched_yield).
	CatIdentity
	// CatFile is file and descriptor I/O.
	CatFile
	// CatNetwork is socket I/O and readiness.
	CatNetwork
	// CatMemory is address-space management.
	CatMemory
	// CatProcess is process lifecycle (fork/exec/exit/...).
	CatProcess
	// CatIPC is synchronization and message passing.
	CatIPC
	// CatTime is timers and accounting.
	CatTime

	numCategories
)

// NumCategories is the number of categories.
const NumCategories = int(numCategories)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CatTrap:
		return "trap"
	case CatIdentity:
		return "identity"
	case CatFile:
		return "file"
	case CatNetwork:
		return "network"
	case CatMemory:
		return "memory"
	case CatProcess:
		return "process"
	case CatIPC:
		return "ipc"
	case CatTime:
		return "time"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// CategoryOf classifies an entry point. The ID space is laid out in
// category order (see the const block in syscalls.go), so classification
// is a range check; a test pins the boundaries.
func CategoryOf(id ID) Category {
	switch {
	case id >= SpillTrap && id <= TLBMiss:
		return CatTrap
	case id >= Getpid && id <= Sched_yield:
		return CatIdentity
	case id >= Read && id <= Getdents:
		return CatFile
	case id >= Socket && id <= Shutdown:
		return CatNetwork
	case id >= Mmap && id <= Madvise:
		return CatMemory
	case id >= Fork && id <= Clone:
		return CatProcess
	case id >= Futex && id <= Shmat:
		return CatIPC
	case id >= Nanosleep && id <= Sysinfo:
		return CatTime
	}
	panic(fmt.Sprintf("syscalls: id %d has no category", int(id)))
}

// ByCategory returns the catalog entries in the given category.
func ByCategory(c Category) []*Spec {
	var out []*Spec
	for _, s := range All() {
		if CategoryOf(s.ID) == c {
			out = append(out, s)
		}
	}
	return out
}
