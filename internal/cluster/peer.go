package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"offloadsim/internal/obs"
)

// ErrPeerBusy reports that a peer rejected work with 429 backpressure;
// callers fall back to another victim or to local execution.
var ErrPeerBusy = errors.New("cluster: peer queue full")

// LoadReport is a replica's instantaneous load, served by
// GET /v1/peer/load and consumed by the stealer's victim selection.
type LoadReport struct {
	// QueueDepth is the number of jobs waiting in the bounded queue.
	QueueDepth int64 `json:"queue_depth"`
	// Running is the number of jobs currently simulating.
	Running int64 `json:"running"`
	// Workers is the worker-pool size (capacity context for the above).
	Workers int `json:"workers"`
	// Draining reports that the replica is shutting down and must not
	// be offered new work.
	Draining bool `json:"draining"`
}

// Score orders replicas by how much work is ahead of a new arrival.
func (l LoadReport) Score() int64 { return l.QueueDepth + l.Running }

// PeerClient is the HTTP side of fleet coordination: result fetches
// from a peer's cache tier (single-flighted), load queries, and
// synchronous remote execution for stolen or fanned-out jobs.
type PeerClient struct {
	// HTTP is the transport; per-call deadlines come from contexts.
	HTTP *http.Client
	sf   singleflight
}

// NewPeerClient builds a client around httpClient (nil gets a default
// with sane connection reuse and no global timeout — simulations are
// long; per-call contexts bound the waiting).
func NewPeerClient(httpClient *http.Client) *PeerClient {
	if httpClient == nil {
		httpClient = &http.Client{}
	}
	return &PeerClient{HTTP: httpClient}
}

// FetchResult asks base's cache tier for the result bytes of key via
// GET /v1/peer/results/{key}. The middle return is false on a clean
// cache miss (HTTP 404). Concurrent fetches of one (base, key) pair
// collapse into a single request: the fleet-wide "computed once"
// guarantee must not be undermined by a thundering herd of fetches.
func (p *PeerClient) FetchResult(ctx context.Context, base, key string) ([]byte, bool, error) {
	return p.sf.do(base+"|"+key, func() ([]byte, bool, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/peer/results/"+key, nil)
		if err != nil {
			return nil, false, err
		}
		resp, err := p.HTTP.Do(req)
		if err != nil {
			return nil, false, err
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				return nil, false, err
			}
			return b, true, nil
		case http.StatusNotFound:
			return nil, false, nil
		default:
			return nil, false, fmt.Errorf("cluster: peer %s result fetch: HTTP %d", base, resp.StatusCode)
		}
	})
}

// Load fetches base's load report with a short deadline: victim
// selection must never stall the serving path behind a dead peer.
func (p *PeerClient) Load(ctx context.Context, base string) (LoadReport, error) {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/peer/load", nil)
	if err != nil {
		return LoadReport{}, err
	}
	resp, err := p.HTTP.Do(req)
	if err != nil {
		return LoadReport{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return LoadReport{}, fmt.Errorf("cluster: peer %s load: HTTP %d", base, resp.StatusCode)
	}
	var l LoadReport
	if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
		return LoadReport{}, err
	}
	return l, nil
}

// Execute runs specJSON (a server.JobSpec document) on base via
// POST /v1/peer/execute and blocks until the result JSON comes back.
// The receiving replica executes locally — no re-routing, no re-steal —
// through its own queue and workers, so the work shows up in its
// canonical queue metrics. 429 maps to ErrPeerBusy. A non-empty
// traceparent rides along in the trace-propagation header, stitching the
// remote execution into the caller's service trace
// (docs/OBSERVABILITY.md).
func (p *PeerClient) Execute(ctx context.Context, base string, specJSON []byte, traceparent string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/peer/execute", bytes.NewReader(specJSON))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set(obs.TraceHeader, traceparent)
	}
	resp, err := p.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return body, nil
	case http.StatusTooManyRequests:
		return nil, ErrPeerBusy
	default:
		return nil, fmt.Errorf("cluster: peer %s execute: HTTP %d: %s", base, resp.StatusCode, truncate(body, 200))
	}
}

// FetchSpans retrieves base's stored spans of one service trace via
// GET /v1/peer/spans/{traceid} — the fleet-stitching leg of
// /v1/debug/traces. An empty list is a normal answer (that replica
// touched no part of the trace), not an error.
func (p *PeerClient) FetchSpans(ctx context.Context, base, traceID string) ([]obs.Span, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/peer/spans/"+traceID, nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("cluster: peer %s span fetch: HTTP %d: %s", base, resp.StatusCode, truncate(body, 200))
	}
	var spans []obs.Span
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		return nil, err
	}
	return spans, nil
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(bytes.TrimSpace(b))
}

// singleflight collapses concurrent calls with one key into a single
// execution whose outcome every caller shares. Hand-rolled because the
// module is dependency-free by policy.
type singleflight struct {
	mu sync.Mutex
	m  map[string]*sfCall
}

type sfCall struct {
	done chan struct{}
	val  []byte
	ok   bool
	err  error
}

func (g *singleflight) do(key string, fn func() ([]byte, bool, error)) ([]byte, bool, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*sfCall)
	}
	if c, inflight := g.m[key]; inflight {
		g.mu.Unlock()
		<-c.done
		return c.val, c.ok, c.err
	}
	c := &sfCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.ok, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.ok, c.err
}
