package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFetchResultSingleFlight hammers one (peer, key) pair from many
// goroutines and requires the peer to see exactly one request: the
// dedup is what keeps a popular cold key from stampeding its owner.
func TestFetchResultSingleFlight(t *testing.T) {
	var hits atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		<-release
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	p := NewPeerClient(nil)
	const callers = 16
	var wg sync.WaitGroup
	results := make([][]byte, callers)
	oks := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, ok, err := p.FetchResult(context.Background(), ts.URL, "k1")
			if err != nil {
				t.Errorf("fetch %d: %v", i, err)
			}
			results[i], oks[i] = b, ok
		}(i)
	}
	// Let the callers pile onto the in-flight request, then release it.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := hits.Load(); got != 1 {
		t.Errorf("peer saw %d requests, want 1 (single-flight)", got)
	}
	for i := range results {
		if !oks[i] || string(results[i]) != `{"ok":true}` {
			t.Errorf("caller %d got ok=%v body=%q", i, oks[i], results[i])
		}
	}
}

func TestFetchResultMissAndError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/peer/results/missing":
			http.NotFound(w, r)
		default:
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	}))
	defer ts.Close()

	p := NewPeerClient(nil)
	if _, ok, err := p.FetchResult(context.Background(), ts.URL, "missing"); err != nil || ok {
		t.Errorf("miss: ok=%v err=%v, want clean miss", ok, err)
	}
	if _, _, err := p.FetchResult(context.Background(), ts.URL, "broken"); err == nil {
		t.Error("500 fetch reported no error")
	}
}

func TestExecuteBackpressure(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()
	p := NewPeerClient(nil)
	_, err := p.Execute(context.Background(), ts.URL, []byte(`{}`), "")
	if !errors.Is(err, ErrPeerBusy) {
		t.Errorf("429 mapped to %v, want ErrPeerBusy", err)
	}
}

// TestStealerVictim exercises selection: least-loaded wins, draining
// and error peers are skipped, and nothing is picked when every peer is
// at least as loaded as the would-be thief.
func TestStealerVictim(t *testing.T) {
	mk := func(l LoadReport, fail bool) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if fail {
				http.Error(w, "down", http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			writeLoad(w, l)
		}))
	}
	light := mk(LoadReport{QueueDepth: 0, Running: 1}, false)
	heavy := mk(LoadReport{QueueDepth: 9, Running: 2}, false)
	draining := mk(LoadReport{QueueDepth: 0, Draining: true}, false)
	broken := mk(LoadReport{}, true)
	defer light.Close()
	defer heavy.Close()
	defer draining.Close()
	defer broken.Close()

	s := &Stealer{
		Client: NewPeerClient(nil),
		Peers:  []string{heavy.URL, light.URL, draining.URL, broken.URL},
	}
	victim, ok := s.Victim(context.Background(), 10)
	if !ok || victim != light.URL {
		t.Errorf("victim = %q ok=%v, want lightest peer %q", victim, ok, light.URL)
	}
	// A thief no more loaded than the best candidate finds no victim.
	if v, ok := s.Victim(context.Background(), 1); ok {
		t.Errorf("victim %q selected although self is equally light", v)
	}
	none := &Stealer{Client: NewPeerClient(nil)}
	if _, ok := none.Victim(context.Background(), 100); ok {
		t.Error("victim selected with no peers")
	}
}

func writeLoad(w http.ResponseWriter, l LoadReport) {
	_ = json.NewEncoder(w).Encode(l)
}
