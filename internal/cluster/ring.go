// Package cluster turns offsimd into a multi-replica fleet. It applies
// the paper's thesis — route work to the core that owns the relevant
// state — one level up: each replica owns a shard of canonical-config
// space (a consistent-hash ring over sim.CanonicalKey), so a shard's
// result cache lives exactly where its jobs land. The package provides
// the deterministic hash ring, static membership parsing, an HTTP peer
// client with single-flight deduplication (the two-tier cache's remote
// leg), the work-stealing victim picker, and the sweep-as-a-service
// coordinator that fans a Figure-4-style grid across the fleet.
//
// Membership is static configuration for now (no gossip); every piece
// of coordination is plain HTTP between replicas, so a whole fleet can
// run in-process in tests. Determinism is preserved end to end: routing
// is a pure function of the canonical key and the sorted member list,
// and results are byte-identical regardless of which replica computes
// them.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVNodes is the ring's default virtual-node count per member.
// 128 vnodes keep the max/min owned-key ratio under ~2 up to 16
// replicas (see TestRingBalance) while membership changes stay cheap.
const DefaultVNodes = 128

// Ring is a consistent-hash ring mapping canonical config keys to
// replica addresses. Ownership is a pure function of the sorted member
// list and the vnode count: two processes given the same membership
// build bit-identical rings, so routing never depends on process
// history (determinism across restarts), and a single join or leave
// moves only the keys adjacent to the changed member's vnodes (bounded
// movement, ~K/n of K keys for n members).
type Ring struct {
	vnodes  int
	members []string // sorted, deduplicated
	points  []ringPoint
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring over members with the given vnodes per member
// (0 means DefaultVNodes). Members are deduplicated and sorted, so any
// permutation of the same set yields an identical ring.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes == 0 {
		vnodes = DefaultVNodes
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("cluster: vnodes must be >= 1 (got %d)", vnodes)
	}
	seen := make(map[string]bool, len(members))
	sorted := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty ring member")
		}
		if !seen[m] {
			seen[m] = true
			sorted = append(sorted, m)
		}
	}
	sort.Strings(sorted)

	r := &Ring{
		vnodes:  vnodes,
		members: sorted,
		points:  make([]ringPoint, 0, len(sorted)*vnodes),
	}
	for _, m := range sorted {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(fmt.Sprintf("%s#%d", m, i)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Position collisions between members resolve by name so the
		// ring stays a pure function of the member set.
		return a.member < b.member
	})
	return r, nil
}

// Owner returns the member that owns key: the first vnode clockwise
// from the key's hash position.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest vnode
	}
	return r.points[i].member
}

// Members returns the sorted member list.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// VNodesPerMember returns how many virtual nodes each member
// contributes to the ring.
func (r *Ring) VNodesPerMember() int { return r.vnodes }

// hash64 is the first eight bytes of SHA-256: stable across processes,
// architectures and Go releases (restart-deterministic ownership), and
// well-dispersed even for near-identical inputs like "addr#17" vnode
// labels — weak mixing (FNV-style) clumps vnodes and skews shards.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
