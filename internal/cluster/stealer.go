package cluster

import (
	"context"
	"sync"
)

// Stealer picks victims for work-stealing. An owner whose queue depth
// exceeds the configured threshold forwards jobs to the least-loaded
// peer instead of queueing them; the peer executes and the owner writes
// the result back through its own cache, preserving shard ownership of
// the cached state. The MPSoC offload studies (PAPERS.md) are the
// cautionary tale here: dispatch overhead only amortizes when the
// victim genuinely has spare capacity, so selection requires a strictly
// lighter peer, not just any peer.
type Stealer struct {
	Client *PeerClient
	Peers  []string
}

// Victim returns the peer with the lowest load score, querying all
// peers concurrently. The boolean is false when no peer is usable or
// every usable peer is at least as loaded as selfScore (stealing would
// only shuffle the imbalance, and ping-pong between two saturated
// replicas burns dispatch overhead for nothing). Draining peers are
// never selected. Ties break toward the lexically smallest address so
// selection is deterministic for a given set of load reports.
func (s *Stealer) Victim(ctx context.Context, selfScore int64) (string, bool) {
	if len(s.Peers) == 0 {
		return "", false
	}
	type probe struct {
		addr string
		load LoadReport
		err  error
	}
	probes := make([]probe, len(s.Peers))
	var wg sync.WaitGroup
	for i, addr := range s.Peers {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			l, err := s.Client.Load(ctx, addr)
			probes[i] = probe{addr: addr, load: l, err: err}
		}(i, addr)
	}
	wg.Wait()

	best, found := "", false
	var bestScore int64
	for _, p := range probes {
		if p.err != nil || p.load.Draining {
			continue
		}
		score := p.load.Score()
		if score >= selfScore {
			continue
		}
		if !found || score < bestScore || (score == bestScore && p.addr < best) {
			best, bestScore, found = p.addr, score, true
		}
	}
	return best, found
}
