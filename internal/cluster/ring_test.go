package cluster

import (
	"fmt"
	"testing"
)

// testKeys returns n deterministic stand-ins for canonical config keys.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real cache keys: a hex-ish digest-style string.
		keys[i] = fmt.Sprintf("%016x", hash64(fmt.Sprintf("config-key-%d", i)))
	}
	return keys
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	return out
}

// TestRingBalance distributes a key population over 3..16 replicas and
// bounds the max/min owned-key ratio: virtual nodes must keep shards
// comparable so no replica becomes the fleet's hot spot.
func TestRingBalance(t *testing.T) {
	keys := testKeys(20_000)
	for n := 3; n <= 16; n++ {
		r, err := NewRing(members(n), DefaultVNodes)
		if err != nil {
			t.Fatal(err)
		}
		owned := map[string]int{}
		for _, k := range keys {
			owned[r.Owner(k)]++
		}
		if len(owned) != n {
			t.Fatalf("n=%d: only %d members own keys", n, len(owned))
		}
		min, max := len(keys), 0
		for _, c := range owned {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		ratio := float64(max) / float64(min)
		if ratio > 2.0 {
			t.Errorf("n=%d: max/min owned-key ratio %.2f exceeds 2.0 (min=%d max=%d)",
				n, ratio, min, max)
		}
	}
}

// TestRingBoundedMovement verifies the consistent-hashing contract: a
// single join or leave re-homes roughly K/n keys — never a wholesale
// reshuffle. The bound asserted is K/n + 25% slack (the acceptance
// criterion), where n is the larger of the two memberships.
func TestRingBoundedMovement(t *testing.T) {
	keys := testKeys(20_000)
	for n := 3; n <= 12; n++ {
		small, err := NewRing(members(n), DefaultVNodes)
		if err != nil {
			t.Fatal(err)
		}
		big, err := NewRing(members(n+1), DefaultVNodes) // members(n+1) ⊃ members(n)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		gained := 0
		joiner := fmt.Sprintf("http://replica-%d:8080", n)
		for _, k := range keys {
			before, after := small.Owner(k), big.Owner(k)
			if before != after {
				moved++
				if after != joiner {
					t.Fatalf("n=%d: key %s moved %s -> %s, not to the joiner", n, k, before, after)
				}
				gained++
			}
		}
		bound := int(float64(len(keys)) / float64(n+1) * 1.25)
		if moved > bound {
			t.Errorf("join at n=%d moved %d keys, bound %d (K/n+25%%)", n, moved, bound)
		}
		if moved == 0 {
			t.Errorf("join at n=%d moved no keys", n)
		}
		// The same pair read in reverse is the leave case: everything the
		// joiner owned returns whence it came, nothing else moves — which
		// the owner-check above already proved. Sanity-check the volume.
		if gained != moved {
			t.Errorf("n=%d: %d keys moved but joiner gained %d", n, moved, gained)
		}
	}
}

// TestRingDeterminism rebuilds rings from scratch (fresh process state,
// permuted member order) and requires identical ownership: routing must
// be a pure function of the member set, or restarts would re-home the
// whole cache.
func TestRingDeterminism(t *testing.T) {
	keys := testKeys(5_000)
	ms := members(5)
	r1, err := NewRing(ms, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	// Reversed member order and a duplicate entry: same set, same ring.
	rev := make([]string, 0, len(ms)+1)
	for i := len(ms) - 1; i >= 0; i-- {
		rev = append(rev, ms[i])
	}
	rev = append(rev, ms[0])
	r2, err := NewRing(rev, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if a, b := r1.Owner(k), r2.Owner(k); a != b {
			t.Fatalf("owner of %s differs across construction order: %s vs %s", k, a, b)
		}
	}
	// Pin a few ownerships to concrete values: if the hash function or
	// tie-breaking ever changes, this fails loudly instead of silently
	// re-homing every deployed fleet's cache.
	pin := map[string]string{}
	for _, k := range keys[:16] {
		pin[k] = r1.Owner(k)
	}
	r3, err := NewRing(ms, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range pin {
		if got := r3.Owner(k); got != want {
			t.Fatalf("owner of %s changed across rebuilds: %s vs %s", k, got, want)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Error("empty member accepted")
	}
	if _, err := NewRing(members(2), -1); err == nil {
		t.Error("negative vnodes accepted")
	}
	r, err := NewRing(members(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Owner("anything"); got != members(1)[0] {
		t.Errorf("single-member ring routed to %q", got)
	}
	if r.Size() != 1 {
		t.Errorf("Size() = %d", r.Size())
	}
}
