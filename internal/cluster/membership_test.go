package cluster

import (
	"strings"
	"testing"
)

func TestParseMembership(t *testing.T) {
	cases := []struct {
		name      string
		advertise string
		peers     []string
		wantErr   string // substring; empty = success
		wantSelf  string
		wantPeers []string
	}{
		{
			name:      "three replica fleet",
			advertise: "http://h0:8080",
			peers:     []string{"http://h1:8080", "http://h2:8080"},
			wantSelf:  "http://h0:8080",
			wantPeers: []string{"http://h1:8080", "http://h2:8080"},
		},
		{
			name:      "normalization folds case and trailing slash",
			advertise: "HTTP://H0:8080/",
			peers:     []string{"http://H1:8080/"},
			wantSelf:  "http://h0:8080",
			wantPeers: []string{"http://h1:8080"},
		},
		{
			name:      "no peers",
			advertise: "https://solo:9090",
			wantSelf:  "https://solo:9090",
		},
		{
			name:      "malformed peer URL",
			advertise: "http://h0:8080",
			peers:     []string{"://bad"},
			wantErr:   "-peers",
		},
		{
			name:      "peer without scheme",
			advertise: "http://h0:8080",
			peers:     []string{"h1:8080"},
			wantErr:   "scheme must be http or https",
		},
		{
			name:      "peer with path",
			advertise: "http://h0:8080",
			peers:     []string{"http://h1:8080/v1"},
			wantErr:   "bare base URL",
		},
		{
			name:      "self in peers",
			advertise: "http://h0:8080",
			peers:     []string{"http://h1:8080", "http://H0:8080/"},
			wantErr:   "own -advertise",
		},
		{
			name:      "duplicate peer",
			advertise: "http://h0:8080",
			peers:     []string{"http://h1:8080", "http://h1:8080/"},
			wantErr:   "duplicate address",
		},
		{
			name:      "empty advertise",
			advertise: "",
			wantErr:   "-advertise",
		},
		{
			name:      "advertise with query",
			advertise: "http://h0:8080?x=1",
			wantErr:   "bare base URL",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := ParseMembership(tc.advertise, tc.peers)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("expected error containing %q, got membership %+v", tc.wantErr, m)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not contain %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if m.Self != tc.wantSelf {
				t.Errorf("Self = %q, want %q", m.Self, tc.wantSelf)
			}
			if len(m.Peers) != len(tc.wantPeers) {
				t.Fatalf("Peers = %v, want %v", m.Peers, tc.wantPeers)
			}
			for i := range m.Peers {
				if m.Peers[i] != tc.wantPeers[i] {
					t.Errorf("Peers[%d] = %q, want %q", i, m.Peers[i], tc.wantPeers[i])
				}
			}
			if got := len(m.All()); got != len(tc.wantPeers)+1 {
				t.Errorf("All() has %d members, want %d", got, len(tc.wantPeers)+1)
			}
		})
	}
}
