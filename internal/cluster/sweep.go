package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"offloadsim/internal/sim"
)

// SweepRequest is the wire form of POST /v1/sweeps: a Figure-4-style
// parameter grid (workloads × policies × thresholds × latencies) that
// the coordinator decomposes into canonical-keyed jobs and fans across
// the fleet. Field semantics and defaults deliberately mirror
// cmd/sweep, so the streamed rows are comparable byte-for-byte with the
// offline tool's output for the same grid.
type SweepRequest struct {
	Workloads  []string `json:"workloads"`
	Policies   []string `json:"policies,omitempty"`   // default ["HI"]
	Thresholds []int    `json:"thresholds,omitempty"` // default [100]
	Latencies  []int    `json:"latencies,omitempty"`  // default [100]
	// WarmupInstrs / MeasureInstrs / Seed default to cmd/sweep's
	// 1M / 1M / 1; pointers let an explicit zero warmup survive.
	WarmupInstrs  *uint64 `json:"warmup_instrs,omitempty"`
	MeasureInstrs *uint64 `json:"measure_instrs,omitempty"`
	Seed          *uint64 `json:"seed,omitempty"`
	// Mode selects the execution engine per point: "" / "detailed",
	// "sampled", or "parallel" (same vocabulary as job specs).
	Mode string `json:"mode,omitempty"`
	// Replicas merges that many sampled replicas per point (requires
	// mode "sampled").
	Replicas int `json:"replicas,omitempty"`
	// Normalize adds per-workload baseline runs and reports normalized
	// throughput like cmd/sweep does. Default true; disable for exact
	// grid-only execution accounting.
	Normalize *bool `json:"normalize,omitempty"`
	// Concurrency bounds how many points are in flight fleet-wide from
	// this sweep (default DefaultSweepConcurrency).
	Concurrency int `json:"concurrency,omitempty"`
}

// DefaultSweepConcurrency bounds a sweep's in-flight points when the
// request does not say otherwise.
const DefaultSweepConcurrency = 8

// withDefaults fills cmd/sweep's defaults and validates shape-level
// constraints (per-point config validity is checked when each job spec
// is built).
func (r SweepRequest) withDefaults() (SweepRequest, error) {
	if len(r.Workloads) == 0 {
		return r, fmt.Errorf("sweep: workloads must be non-empty")
	}
	if len(r.Policies) == 0 {
		r.Policies = []string{"HI"}
	}
	if len(r.Thresholds) == 0 {
		r.Thresholds = []int{100}
	}
	if len(r.Latencies) == 0 {
		r.Latencies = []int{100}
	}
	for _, n := range r.Thresholds {
		if n < 0 {
			return r, fmt.Errorf("sweep: thresholds must be >= 0 (got %d)", n)
		}
	}
	for _, l := range r.Latencies {
		if l < 0 {
			return r, fmt.Errorf("sweep: latencies must be >= 0 (got %d)", l)
		}
	}
	if r.WarmupInstrs == nil {
		w := uint64(1_000_000)
		r.WarmupInstrs = &w
	}
	if r.MeasureInstrs == nil {
		m := uint64(1_000_000)
		r.MeasureInstrs = &m
	}
	if *r.MeasureInstrs == 0 {
		return r, fmt.Errorf("sweep: measure_instrs must be positive")
	}
	if r.Seed == nil {
		s := uint64(1)
		r.Seed = &s
	}
	switch r.Mode {
	case "", "detailed", "sampled", "parallel":
	default:
		return r, fmt.Errorf("sweep: unknown mode %q (detailed, sampled, parallel)", r.Mode)
	}
	if r.Replicas < 0 {
		return r, fmt.Errorf("sweep: negative replicas %d", r.Replicas)
	}
	if r.Replicas > 1 && r.Mode != "sampled" {
		return r, fmt.Errorf("sweep: replicas %d requires mode \"sampled\"", r.Replicas)
	}
	if r.Normalize == nil {
		t := true
		r.Normalize = &t
	}
	if r.Concurrency == 0 {
		r.Concurrency = DefaultSweepConcurrency
	}
	if r.Concurrency < 1 {
		return r, fmt.Errorf("sweep: concurrency must be >= 1 (got %d)", r.Concurrency)
	}
	return r, nil
}

// Point is one grid cell. Baseline points (normalization prep) carry
// Index -1 and are not streamed.
type Point struct {
	Index     int
	Workload  string
	Policy    string
	Threshold int
	Latency   int
}

// points enumerates the grid in cmd/sweep's nesting order:
// workloads × policies × thresholds × latencies.
func (r SweepRequest) points() []Point {
	var out []Point
	for _, wl := range r.Workloads {
		for _, pol := range r.Policies {
			for _, n := range r.Thresholds {
				for _, lat := range r.Latencies {
					out = append(out, Point{
						Index:     len(out),
						Workload:  wl,
						Policy:    pol,
						Threshold: n,
						Latency:   lat,
					})
				}
			}
		}
	}
	return out
}

// Row mirrors cmd/sweep's export row field-for-field, so a sweep
// served by the fleet reads exactly like one run offline.
type Row struct {
	Workload   string  `json:"workload"`
	Policy     string  `json:"policy"`
	Threshold  int     `json:"threshold"`
	OneWay     int     `json:"one_way_latency"`
	Throughput float64 `json:"throughput"`
	Normalized float64 `json:"normalized"`
	OffloadPct float64 `json:"offload_pct"`
	OSUtilPct  float64 `json:"os_util_pct"`
	UserL2Hit  float64 `json:"user_l2_hit"`
	OSL2Hit    float64 `json:"os_l2_hit"`
	C2C        uint64  `json:"c2c_transfers"`
	QueueMean  float64 `json:"queue_mean_cyc"`
	OSCores    int     `json:"os_cores,omitempty"`
}

// BuildRow shapes a simulation result into the export row. baseline is
// the matching workload's baseline throughput for normalization; pass 0
// to leave Normalized at 0 (normalization disabled).
func BuildRow(p Point, res sim.Result, baseline float64) Row {
	row := Row{
		Workload:   p.Workload,
		Policy:     res.Policy,
		Threshold:  p.Threshold,
		OneWay:     p.Latency,
		Throughput: res.Throughput,
		OffloadPct: 100 * res.OffloadRate,
		OSUtilPct:  100 * res.OSCoreUtilization,
		UserL2Hit:  res.UserL2HitRate,
		OSL2Hit:    res.OSL2HitRate,
		C2C:        res.C2CTransfers,
		QueueMean:  res.MeanQueueDelay,
	}
	if baseline > 0 {
		row.Normalized = res.Throughput / baseline
	}
	if res.OSCores != nil {
		row.OSCores = res.OSCores.K
	}
	return row
}

// PointResult is one streamed NDJSON line of POST /v1/sweeps: the grid
// coordinates, a terminal status, and the export row on success. Lines
// are emitted in index order and their bytes are deterministic, so two
// sweeps of the same grid stream identical point lines no matter which
// replicas did the computing.
type PointResult struct {
	Index     int    `json:"index"`
	Workload  string `json:"workload"`
	Policy    string `json:"policy"`
	Threshold int    `json:"threshold"`
	OneWay    int    `json:"one_way_latency"`
	Status    string `json:"status"` // "done" or "failed"
	Error     string `json:"error,omitempty"`
	Row       *Row   `json:"row,omitempty"`
}

// Progress is GET /v1/sweeps/{id}: a sweep's live point accounting.
type Progress struct {
	ID      string `json:"id"`
	Total   int    `json:"total"`
	Done    int    `json:"done"`
	Failed  int    `json:"failed"`
	Running int    `json:"running"`
	Pending int    `json:"pending"`
	// Complete is true once every point reached a terminal state.
	Complete bool `json:"complete"`
}

// RunPointFunc executes one grid point somewhere in the fleet and
// returns the result document bytes (a marshaled sim.Result). The
// server provides it: it builds the job spec, computes the canonical
// key, routes to the ring owner, and waits for completion.
type RunPointFunc func(ctx context.Context, req SweepRequest, p Point) ([]byte, error)

// Coordinator decomposes sweep requests and drives their points
// through RunPoint with bounded concurrency.
type Coordinator struct {
	RunPoint RunPointFunc
}

// Sweep is one in-flight or finished sweep.
type Sweep struct {
	ID  string
	Req SweepRequest

	points []Point

	mu      sync.Mutex
	results []*PointResult // nil until the point is terminal
	running int
	done    int
	failed  int

	ready    []chan struct{} // closed when results[i] is set
	finished chan struct{}   // closed when every point is terminal
}

// Start validates req, expands its grid and launches execution on ctx
// (which should outlive the submitting request: a sweep keeps running
// if the streaming client disconnects — its results land in the fleet
// cache either way).
func (c *Coordinator) Start(ctx context.Context, id string, req SweepRequest) (*Sweep, error) {
	req, err := req.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Sweep{
		ID:       id,
		Req:      req,
		points:   req.points(),
		finished: make(chan struct{}),
	}
	s.results = make([]*PointResult, len(s.points))
	s.ready = make([]chan struct{}, len(s.points))
	for i := range s.ready {
		s.ready[i] = make(chan struct{})
	}
	go s.run(ctx, c.RunPoint)
	return s, nil
}

// run executes baselines (when normalizing) then the grid, with at
// most Req.Concurrency points in flight.
func (s *Sweep) run(ctx context.Context, runPoint RunPointFunc) {
	defer close(s.finished)

	// Baselines first: one per workload, computed through the same
	// fleet path as any point (so repeats across sweeps hit the cache).
	baselines := make(map[string]float64, len(s.Req.Workloads))
	baselineErr := make(map[string]error, len(s.Req.Workloads))
	if *s.Req.Normalize {
		var wg sync.WaitGroup
		var mu sync.Mutex
		sem := make(chan struct{}, s.Req.Concurrency)
		for _, wl := range s.Req.Workloads {
			wg.Add(1)
			sem <- struct{}{}
			go func(wl string) {
				defer wg.Done()
				defer func() { <-sem }()
				res, err := s.execPoint(ctx, runPoint, Point{
					Index:    -1,
					Workload: wl,
					Policy:   "baseline",
					// Threshold/Latency are irrelevant to a never-off-loading
					// baseline but keep the grid defaults for a stable key.
					Threshold: 1000,
					Latency:   100,
				})
				mu.Lock()
				if err != nil {
					baselineErr[wl] = err
				} else {
					baselines[wl] = res.Throughput
				}
				mu.Unlock()
			}(wl)
		}
		wg.Wait()
	}

	sem := make(chan struct{}, s.Req.Concurrency)
	var wg sync.WaitGroup
	for i := range s.points {
		p := s.points[i]
		if err, bad := baselineErr[p.Workload]; bad {
			s.finishPoint(p, nil, fmt.Errorf("baseline for %s: %v", p.Workload, err))
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		s.mu.Lock()
		s.running++
		s.mu.Unlock()
		go func(p Point) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := s.execPoint(ctx, runPoint, p)
			if err != nil {
				s.finishPoint(p, nil, err)
				return
			}
			row := BuildRow(p, res, baselines[p.Workload])
			s.finishPoint(p, &row, nil)
		}(p)
	}
	wg.Wait()
}

// execPoint runs one point and decodes its result document.
func (s *Sweep) execPoint(ctx context.Context, runPoint RunPointFunc, p Point) (sim.Result, error) {
	b, err := runPoint(ctx, s.Req, p)
	if err != nil {
		return sim.Result{}, err
	}
	var res sim.Result
	if err := json.Unmarshal(b, &res); err != nil {
		return sim.Result{}, fmt.Errorf("decoding result for point %d: %v", p.Index, err)
	}
	return res, nil
}

// finishPoint records a terminal state for p and wakes its streamers.
// Baseline points (Index -1) have no slot and only surface as failures
// through the grid points that depended on them.
func (s *Sweep) finishPoint(p Point, row *Row, err error) {
	if p.Index < 0 {
		return
	}
	pr := &PointResult{
		Index:     p.Index,
		Workload:  p.Workload,
		Policy:    p.Policy,
		Threshold: p.Threshold,
		OneWay:    p.Latency,
	}
	if err != nil {
		pr.Status = "failed"
		pr.Error = err.Error()
	} else {
		pr.Status = "done"
		pr.Row = row
		// The row's Policy field uses the engine's canonical spelling;
		// mirror it in the coordinates for consistency with cmd/sweep.
		pr.Policy = row.Policy
	}
	s.mu.Lock()
	s.results[p.Index] = pr
	if s.running > 0 {
		s.running--
	}
	if err != nil {
		s.failed++
	} else {
		s.done++
	}
	s.mu.Unlock()
	close(s.ready[p.Index])
}

// Total returns the grid size.
func (s *Sweep) Total() int { return len(s.points) }

// Progress snapshots the sweep's accounting.
func (s *Sweep) Progress() Progress {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Progress{
		ID:       s.ID,
		Total:    len(s.points),
		Done:     s.done,
		Failed:   s.failed,
		Running:  s.running,
		Pending:  len(s.points) - s.done - s.failed - s.running,
		Complete: s.done+s.failed == len(s.points),
	}
}

// Stream delivers point results in index order, calling emit as each
// next-in-order point becomes terminal. It returns when all points
// have been emitted, ctx expires, or emit fails (client gone); the
// sweep itself keeps running regardless.
func (s *Sweep) Stream(ctx context.Context, emit func(*PointResult) error) error {
	for i := range s.points {
		select {
		case <-s.ready[i]:
		case <-ctx.Done():
			return ctx.Err()
		}
		s.mu.Lock()
		pr := s.results[i]
		s.mu.Unlock()
		if err := emit(pr); err != nil {
			return err
		}
	}
	return nil
}

// Wait blocks until every point is terminal or ctx expires.
func (s *Sweep) Wait(ctx context.Context) error {
	select {
	case <-s.finished:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
