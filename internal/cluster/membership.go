package cluster

import (
	"fmt"
	"net/url"
	"strings"
)

// Membership is a fleet's static configuration: this replica's
// advertised base URL plus its peers' base URLs. The ring is built over
// All(); membership changes are a restart with new flags (no gossip in
// this iteration — see docs/CLUSTER.md).
type Membership struct {
	// Self is the base URL peers use to reach this replica
	// (e.g. "http://10.0.0.1:8080"). Normalized by NormalizeAddr.
	Self string
	// Peers are the other replicas' base URLs, normalized and sorted.
	Peers []string
}

// NormalizeAddr canonicalizes a replica base URL: scheme and host are
// lower-cased and a trailing slash is dropped, so textual variants of
// one address compare equal. It rejects anything that is not a bare
// http(s) base URL with a host.
func NormalizeAddr(raw string) (string, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return "", fmt.Errorf("empty replica address")
	}
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("replica address %q: %v", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("replica address %q: scheme must be http or https", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("replica address %q: missing host", raw)
	}
	if strings.TrimSuffix(u.Path, "/") != "" || u.RawQuery != "" || u.Fragment != "" || u.User != nil {
		return "", fmt.Errorf("replica address %q: must be a bare base URL (no path, query, fragment or userinfo)", raw)
	}
	return strings.ToLower(u.Scheme) + "://" + strings.ToLower(u.Host), nil
}

// ParseMembership validates and normalizes a fleet configuration:
// advertise is this replica's own base URL, peers the others'. It
// rejects malformed URLs, the replica listing itself as a peer, and
// duplicate peer addresses — the same up-front validation contract the
// command-line tools follow.
func ParseMembership(advertise string, peers []string) (Membership, error) {
	self, err := NormalizeAddr(advertise)
	if err != nil {
		return Membership{}, fmt.Errorf("-advertise: %v", err)
	}
	seen := map[string]bool{self: true}
	norm := make([]string, 0, len(peers))
	for _, p := range peers {
		np, err := NormalizeAddr(p)
		if err != nil {
			return Membership{}, fmt.Errorf("-peers: %v", err)
		}
		if np == self {
			return Membership{}, fmt.Errorf("-peers: %q is the replica's own -advertise address", p)
		}
		if seen[np] {
			return Membership{}, fmt.Errorf("-peers: duplicate address %q", p)
		}
		seen[np] = true
		norm = append(norm, np)
	}
	return Membership{Self: self, Peers: norm}, nil
}

// All returns self plus peers. NewRing sorts, so order is irrelevant.
func (m Membership) All() []string {
	return append([]string{m.Self}, m.Peers...)
}
