package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"offloadsim/internal/sim"
)

// fakeRunPoint returns a deterministic marshaled sim.Result per point
// and records how often each point executed.
func fakeRunPoint(t *testing.T, calls map[string]int, mu *sync.Mutex) RunPointFunc {
	return func(ctx context.Context, req SweepRequest, p Point) ([]byte, error) {
		mu.Lock()
		calls[fmt.Sprintf("%s/%s/%d/%d", p.Workload, p.Policy, p.Threshold, p.Latency)]++
		mu.Unlock()
		res := sim.Result{
			Workload:   p.Workload,
			Policy:     p.Policy,
			Threshold:  p.Threshold,
			OneWay:     p.Latency,
			Throughput: 0.5 + float64(p.Threshold)/10_000,
		}
		if p.Policy == "baseline" {
			res.Throughput = 0.5
		}
		return json.Marshal(res)
	}
}

func TestSweepCoordinatorStreamsInOrder(t *testing.T) {
	calls := map[string]int{}
	var mu sync.Mutex
	c := &Coordinator{RunPoint: fakeRunPoint(t, calls, &mu)}
	s, err := c.Start(context.Background(), "s-1", SweepRequest{
		Workloads:  []string{"apache", "derby"},
		Policies:   []string{"HI", "SI"},
		Thresholds: []int{100, 1000},
		Latencies:  []int{100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Total() != 8 {
		t.Fatalf("Total = %d, want 8", s.Total())
	}

	var got []*PointResult
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Stream(ctx, func(pr *PointResult) error {
		got = append(got, pr)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("streamed %d points, want 8", len(got))
	}
	for i, pr := range got {
		if pr.Index != i {
			t.Errorf("line %d has index %d (stream must be in index order)", i, pr.Index)
		}
		if pr.Status != "done" || pr.Row == nil {
			t.Errorf("point %d: status %q row=%v", i, pr.Status, pr.Row)
		}
		// Normalized against the 0.5 baseline throughput.
		if pr.Row != nil && pr.Row.Normalized <= 1.0 {
			t.Errorf("point %d: normalized %.3f, want > 1 against 0.5 baseline", i, pr.Row.Normalized)
		}
	}
	prog := s.Progress()
	if !prog.Complete || prog.Done != 8 || prog.Failed != 0 || prog.Pending != 0 {
		t.Errorf("progress = %+v", prog)
	}

	mu.Lock()
	defer mu.Unlock()
	// 8 grid points + 2 baselines, each exactly once.
	if len(calls) != 10 {
		t.Errorf("executed %d distinct points, want 10: %v", len(calls), calls)
	}
	for k, n := range calls {
		if n != 1 {
			t.Errorf("point %s executed %d times", k, n)
		}
	}
}

func TestSweepCoordinatorFailuresAndValidation(t *testing.T) {
	c := &Coordinator{RunPoint: func(ctx context.Context, req SweepRequest, p Point) ([]byte, error) {
		if p.Workload == "bad" && p.Index >= 0 {
			return nil, fmt.Errorf("synthetic failure")
		}
		return json.Marshal(sim.Result{Workload: p.Workload, Policy: p.Policy, Throughput: 1})
	}}
	norm := false
	s, err := c.Start(context.Background(), "s-2", SweepRequest{
		Workloads:  []string{"good", "bad"},
		Thresholds: []int{100},
		Normalize:  &norm,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var lines []*PointResult
	if err := s.Stream(ctx, func(pr *PointResult) error { lines = append(lines, pr); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("streamed %d lines, want 2", len(lines))
	}
	if lines[0].Status != "done" {
		t.Errorf("good point: %+v", lines[0])
	}
	if lines[1].Status != "failed" || lines[1].Error == "" || lines[1].Row != nil {
		t.Errorf("bad point: %+v", lines[1])
	}
	// Normalize off leaves Normalized at zero.
	if lines[0].Row.Normalized != 0 {
		t.Errorf("normalized = %v with normalization off", lines[0].Row.Normalized)
	}
	prog := s.Progress()
	if prog.Done != 1 || prog.Failed != 1 || !prog.Complete {
		t.Errorf("progress = %+v", prog)
	}

	// Shape-level validation fires before any execution.
	for _, bad := range []SweepRequest{
		{},
		{Workloads: []string{"apache"}, Thresholds: []int{-1}},
		{Workloads: []string{"apache"}, Latencies: []int{-5}},
		{Workloads: []string{"apache"}, Mode: "warp"},
		{Workloads: []string{"apache"}, Replicas: 3},
		{Workloads: []string{"apache"}, Concurrency: -1},
	} {
		if _, err := c.Start(context.Background(), "s-x", bad); err == nil {
			t.Errorf("invalid request %+v accepted", bad)
		}
	}
}

// TestSweepBaselineFailurePropagates: when a workload's baseline run
// fails, every grid point of that workload fails with a diagnosable
// error instead of dividing by zero or hanging.
func TestSweepBaselineFailurePropagates(t *testing.T) {
	c := &Coordinator{RunPoint: func(ctx context.Context, req SweepRequest, p Point) ([]byte, error) {
		if p.Policy == "baseline" {
			return nil, fmt.Errorf("baseline exploded")
		}
		return json.Marshal(sim.Result{Throughput: 1})
	}}
	s, err := c.Start(context.Background(), "s-3", SweepRequest{Workloads: []string{"apache"}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var lines []*PointResult
	if err := s.Stream(ctx, func(pr *PointResult) error { lines = append(lines, pr); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || lines[0].Status != "failed" {
		t.Fatalf("lines = %+v, want one failed point", lines)
	}
}
