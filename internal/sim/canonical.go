package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"reflect"

	"offloadsim/internal/coherence"
	"offloadsim/internal/core"
	"offloadsim/internal/cpu"
	"offloadsim/internal/migration"
	"offloadsim/internal/policy"
	"offloadsim/internal/workloads"
)

// Canonicalize returns a normalized copy of c such that any two
// configurations that would produce identical simulations normalize to
// the same value. It applies exactly the defaulting New performs (zero
// Coherence takes Table II values, NumNodes is derived from the core
// count) and erases degrees of freedom that cannot influence a run:
//
//   - a uniform Workloads slice collapses into the single Workload field,
//     so "apache on 2 cores" and "[apache, apache]" are one config;
//   - the migration engine is reduced to its one-way latency (Name and
//     Description are documentation);
//   - the Tuner is zeroed when DynamicN is off, OSCoreSlots is clamped to
//     the single-context core New builds for 0;
//   - for Baseline runs — which build no OS core — the migration engine,
//     OS-core slot count and OS-core CPU are reset, since no off-load
//     path ever consults them.
//
// The returned Config is valid for New; invalid input is rejected.
func Canonicalize(c Config) (Config, error) {
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	// Mirror New's defaulting.
	if c.CPU.IFetchInterval == 0 {
		c.CPU = cpu.DefaultConfig()
	}
	if c.Coherence.NumNodes == 0 {
		c.Coherence = coherence.DefaultConfig()
	}
	c.OSCores = c.OSCores.withDefaults()
	nodes := c.UserCores + c.clusterK()
	c.Coherence.NumNodes = nodes

	// Collapse a uniform per-core workload list; expand nothing. After
	// this, Workloads is non-nil only for genuinely mixed configs.
	if len(c.Workloads) > 0 {
		uniform := true
		for _, p := range c.Workloads[1:] {
			if !sameProfile(p, c.Workloads[0]) {
				uniform = false
				break
			}
		}
		if uniform {
			c.Workload = c.Workloads[0]
			c.Workloads = nil
		} else {
			c.Workload = nil
		}
	}
	if len(c.PhaseProfiles) == 0 {
		c.PhaseProfiles = nil
		c.PhaseInstrs = 0
	}

	if !c.DynamicN || !supportsThreshold(c.Policy) {
		c.DynamicN = false
		c.Tuner = core.TunerConfig{}
	}
	// A disabled block drops stale knobs; an enabled one pins its
	// defaults, so spelled-out defaults and blanks share a key while
	// sampled and detailed runs never do. The warmup tail cannot exceed
	// the warmup phase, so clamping erases that degree of freedom too.
	c.Sampling = c.Sampling.withDefaults()
	if c.Sampling.Enabled && c.Sampling.WarmupTailInstrs > c.WarmupInstrs {
		c.Sampling.WarmupTailInstrs = c.WarmupInstrs
	}
	// Workers only partitions work across host cores; the simulation it
	// produces is identical at any setting (the engine's determinism
	// contract), so it is erased from the key. Quantum stays: it changes
	// the synchronization timing and therefore the results.
	c.Parallel = c.Parallel.withDefaults()
	c.Parallel.Workers = 0
	if c.OSCoreSlots < 1 {
		c.OSCoreSlots = 1
	}
	c.Migration = migration.Custom(c.Migration.OneWay)
	if !c.offloadCapable() {
		// Baseline builds no OS core: the off-load transport and OS-core
		// shape cannot matter.
		c.Migration = migration.Custom(0)
		c.OSCoreSlots = 1
		c.OSCPU = nil
		c.OSCores = OSCores{}
	}
	return c, nil
}

// sameProfile reports whether two profiles describe the same workload,
// by pointer or by value.
func sameProfile(a, b *workloads.Profile) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	return reflect.DeepEqual(*a, *b)
}

// canonicalForm is the hashed shape of a canonicalized Config. Field
// order is fixed, every field is JSON-marshalable and map-free, so the
// encoding — and therefore the key — is deterministic.
type canonicalForm struct {
	Workload       *workloads.Profile
	Workloads      []*workloads.Profile
	PhaseProfiles  []*workloads.Profile
	PhaseInstrs    uint64
	Policy         int
	Overheads      policy.Overheads
	Threshold      int
	DynamicN       bool
	Tuner          core.TunerConfig
	OneWay         int
	UserCores      int
	OSCoreSlots    int
	InstrumentOnly bool
	DirectMapped   bool
	ColdPredictor  bool
	WarmupInstrs   uint64
	MeasureInstrs  uint64
	Seed           uint64
	CPU            cpu.Config
	Coherence      coherence.Config
	OSCPU          *cpu.Config
	Sampling       Sampling
	Parallel       Parallel
	OSCores        OSCores
}

// CanonicalKey returns a stable hex digest identifying the simulation c
// describes: two configs share a key iff they canonicalize to the same
// run (workload content, policy, threshold, latency, hardware shape and
// seed all included). It is the cache key of the offsimd result cache.
func CanonicalKey(c Config) (string, error) {
	cc, err := Canonicalize(c)
	if err != nil {
		return "", err
	}
	form := canonicalForm{
		Workload:       cc.Workload,
		Workloads:      cc.Workloads,
		PhaseProfiles:  cc.PhaseProfiles,
		PhaseInstrs:    cc.PhaseInstrs,
		Policy:         int(cc.Policy),
		Overheads:      cc.Overheads,
		Threshold:      cc.Threshold,
		DynamicN:       cc.DynamicN,
		Tuner:          cc.Tuner,
		OneWay:         cc.Migration.OneWay,
		UserCores:      cc.UserCores,
		OSCoreSlots:    cc.OSCoreSlots,
		InstrumentOnly: cc.InstrumentOnly,
		DirectMapped:   cc.DirectMappedPredictor,
		ColdPredictor:  cc.ColdPredictor,
		WarmupInstrs:   cc.WarmupInstrs,
		MeasureInstrs:  cc.MeasureInstrs,
		Seed:           cc.Seed,
		CPU:            cc.CPU,
		Coherence:      cc.Coherence,
		OSCPU:          cc.OSCPU,
		Sampling:       cc.Sampling,
		Parallel:       cc.Parallel,
		OSCores:        cc.OSCores,
	}
	raw, err := json.Marshal(form)
	if err != nil {
		return "", fmt.Errorf("sim: encoding canonical form: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}
