package sim

import (
	"fmt"

	"offloadsim/internal/oscore"
)

// DefaultAsyncSlots is the per-user-core return-slot budget of async
// dispatch: double buffering, so a core can have one off-load in flight
// while the previous one's return descriptor is still unreconciled.
const DefaultAsyncSlots = 2

// MaxOSCores bounds the cluster size; beyond it per-class affinity stops
// being meaningful (there are only 8 syscall classes to route).
const MaxOSCores = 64

// OSCores generalizes the paper's single dedicated OS core into a
// cluster of K OS cores (Config.OSCores, internal/oscore,
// docs/OSCORES.md). The zero value disables the cluster and keeps the
// classic single-OS-core model; an enabled block with K=1, synchronous
// dispatch, symmetric speed and no depth modulation describes exactly
// that same model and canonicalizes back to disabled, so it shares
// results, goldens and cache keys with legacy configs byte for byte.
type OSCores struct {
	// Enabled switches the off-load path to the K-core cluster model.
	Enabled bool
	// K is the OS-core count (default 1).
	K int
	// Affinity maps syscall classes to designated OS cores, in the
	// "class=core" grammar of oscore.ParseAffinity ("" = round-robin by
	// class index).
	Affinity string
	// Asymmetry lists per-OS-core speed factors relative to the user
	// cores, per oscore.ParseAsymmetry ("" = symmetric; "1,0.5" = one
	// full-speed and one half-speed little core).
	Asymmetry string
	// Async enables fire-and-forget dispatch for side-effect-only
	// syscall classes (syscalls.SideEffectOnly): the user core pays only
	// the outbound transfer and keeps executing, reconciling the return
	// at its next OS boundary.
	Async bool
	// AsyncSlots is the per-user-core return-slot budget (default 2,
	// double-buffered). A core with all slots occupied stalls until the
	// earliest outstanding return lands.
	AsyncSlots int
	// DepthN adds DepthN instructions to the off-load threshold per
	// busy context observed on the designated queue at decision time —
	// queue-depth-aware dynamic N: a backlogged OS core only receives
	// work that amortizes the longer wait. Applies to threshold-based
	// policies; 0 disables.
	DepthN int
	// Rebalance lets routing divert a request from its backlogged
	// designated queue to a strictly less-loaded one (ties keep the
	// designated queue for cache locality).
	Rebalance bool
}

// DefaultOSCores returns an enabled synchronous k-core block with
// round-robin affinity and symmetric speeds.
func DefaultOSCores(k int) OSCores {
	return OSCores{Enabled: true, K: k}.withDefaults()
}

// withDefaults fills zero fields of an enabled block and normalizes its
// strings to canonical form; a disabled block normalizes to the zero
// value. An enabled block that describes exactly the legacy model — one
// synchronous full-speed OS core, no depth modulation — collapses to
// disabled, so it canonicalizes, runs and caches identically to a config
// that never mentioned OSCores. Must-parse canonicalization is safe for
// any block that passed Validate; unparsable strings are left as-is for
// Validate to report.
func (o OSCores) withDefaults() OSCores {
	if !o.Enabled {
		return OSCores{}
	}
	if o.K < 1 {
		o.K = 1
	}
	if o.Async && o.AsyncSlots == 0 {
		o.AsyncSlots = DefaultAsyncSlots
	}
	if !o.Async {
		o.AsyncSlots = 0
	}
	if o.K == 1 {
		// One queue has nowhere to rebalance to.
		o.Rebalance = false
	}
	if a, err := oscore.CanonicalAffinity(o.Affinity, o.K); err == nil {
		o.Affinity = a
	}
	if a, err := oscore.CanonicalAsymmetry(o.Asymmetry, o.K); err == nil {
		o.Asymmetry = a
	}
	if o.K == 1 && !o.Async && o.Asymmetry == "" && o.DepthN == 0 {
		return OSCores{}
	}
	return o
}

// Validate checks an enabled block (disabled blocks are always valid).
func (o OSCores) Validate() error {
	if !o.Enabled {
		return nil
	}
	if o.K < 0 {
		return fmt.Errorf("sim: negative OSCores.K %d", o.K)
	}
	k := o.K
	if k < 1 {
		k = 1
	}
	if k > MaxOSCores {
		return fmt.Errorf("sim: OSCores.K %d > %d", o.K, MaxOSCores)
	}
	if _, err := oscore.ParseAffinity(o.Affinity, k); err != nil {
		return err
	}
	if _, err := oscore.ParseAsymmetry(o.Asymmetry, k); err != nil {
		return err
	}
	if o.AsyncSlots < 0 {
		return fmt.Errorf("sim: negative OSCores.AsyncSlots %d", o.AsyncSlots)
	}
	if !o.Async && o.AsyncSlots > 0 {
		return fmt.Errorf("sim: OSCores.AsyncSlots set without Async")
	}
	if o.DepthN < 0 {
		return fmt.Errorf("sim: negative OSCores.DepthN %d", o.DepthN)
	}
	return nil
}

// clusterK returns how many OS cores the configuration builds (0 when
// off-loading is impossible). Call after withDefaults.
func (c *Config) clusterK() int {
	if !c.offloadCapable() {
		return 0
	}
	if c.OSCores.Enabled {
		return c.OSCores.K
	}
	return 1
}
