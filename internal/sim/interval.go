package sim

import (
	"math"

	"offloadsim/internal/stats"
)

// This file implements interval-sampled execution (Config.Sampling): the
// measurement window is cut into fixed-size instruction intervals, 1 of
// every Ratio runs at full detail and the rest run in functional-warming
// mode (caches, directory and predictor tables stay warm; cycle
// accounting is estimated). Detailed intervals are extrapolated into a
// Result; package sample layers replica fan-out and parallel replay on
// top of this engine.

// IntervalSample is the raw measurement of one detailed interval. All
// values are deltas over the interval.
type IntervalSample struct {
	// Index is the interval's position in the measurement window.
	Index int
	// Instrs is the workload instructions retired across user cores.
	Instrs uint64
	// Cycles is the largest per-core elapsed cycle count.
	Cycles uint64
	// PerCoreIPC is each user core's IPC over the interval.
	PerCoreIPC []float64
	// PerCoreInstrs and PerCoreCycles are the per-core deltas behind
	// PerCoreIPC; the collector aggregates them as ratios of sums so
	// longer intervals carry proportionally more weight.
	PerCoreInstrs []uint64
	PerCoreCycles []uint64
	// Throughput is the sum of PerCoreIPC — the same aggregate the full
	// simulation reports.
	Throughput float64

	UserL2Hits, UserL2Accesses   uint64
	UserL1DHits, UserL1DAccesses uint64
	OSL2Hits, OSL2Accesses       uint64

	OSEntries, Offloads uint64
	OverheadCycles      uint64
	UserIdleCycles      uint64
	OSBusyCycles        uint64
	QueueDelaySum       float64
	QueueDelayCount     uint64

	C2CTransfers, Invalidations   uint64
	MemoryFills, MemoryWritebacks uint64
}

// intervalProbe is a raw snapshot of every counter the sampled collector
// differences across a detailed interval.
type intervalProbe struct {
	clock, retired, idle        []uint64
	l2Hits, l2Acc               []uint64
	l1dHits, l1dAcc             []uint64
	entries, offloads, overhead []uint64

	osL2Hits, osL2Acc uint64
	osBusy            uint64
	queueSum          float64
	queueN            uint64

	c2c, inval, fills, wb uint64
}

func (s *Simulator) probe() intervalProbe {
	n := len(s.users)
	p := intervalProbe{
		clock: make([]uint64, n), retired: make([]uint64, n), idle: make([]uint64, n),
		l2Hits: make([]uint64, n), l2Acc: make([]uint64, n),
		l1dHits: make([]uint64, n), l1dAcc: make([]uint64, n),
		entries: make([]uint64, n), offloads: make([]uint64, n), overhead: make([]uint64, n),
	}
	for i, u := range s.users {
		p.clock[i] = u.clock
		p.retired[i] = u.retired
		p.idle[i] = u.core.Counters.IdleCyc.Value()
		l2 := s.sys.L2(u.core.Node())
		p.l2Hits[i] = l2.Stats.Hits.Value()
		p.l2Acc[i] = l2.Stats.Accesses.Value()
		p.l1dHits[i] = u.core.L1D().Stats.Hits.Value()
		p.l1dAcc[i] = u.core.L1D().Stats.Accesses.Value()
		ps := u.pol.Stats()
		p.entries[i] = ps.Entries.Value()
		p.offloads[i] = ps.Offloads.Value()
		p.overhead[i] = ps.OverheadCycles.Value()
	}
	if s.osCore != nil {
		ol2 := s.sys.L2(s.osNode)
		p.osL2Hits = ol2.Stats.Hits.Value()
		p.osL2Acc = ol2.Stats.Accesses.Value()
		p.osBusy = s.osQueue.BusyCycles.Value()
		p.queueN = s.osQueue.QueueDelay.N()
		p.queueSum = s.osQueue.QueueDelay.Sum()
	}
	if s.osc != nil {
		for q := 0; q < s.osc.K(); q++ {
			ol2 := s.sys.L2(s.osNode + q)
			p.osL2Hits += ol2.Stats.Hits.Value()
			p.osL2Acc += ol2.Stats.Accesses.Value()
		}
		p.osBusy = s.osc.BusyCycles()
		p.queueSum, p.queueN, _ = s.osc.QueueDelay()
	}
	cs := &s.sys.Stats
	p.c2c = cs.C2CTransfers.Value()
	p.inval = cs.Invalidations.Value()
	p.fills = cs.MemoryFills.Value()
	p.wb = s.sys.Memory().Writebacks()
	return p
}

// sampleDelta differences the current state against before.
func (s *Simulator) sampleDelta(idx int, before intervalProbe) IntervalSample {
	after := s.probe()
	out := IntervalSample{Index: idx}
	for i := range s.users {
		elapsed := after.clock[i] - before.clock[i]
		retired := after.retired[i] - before.retired[i]
		ipc := 0.0
		if elapsed > 0 {
			ipc = float64(retired) / float64(elapsed)
		}
		out.PerCoreIPC = append(out.PerCoreIPC, ipc)
		out.PerCoreInstrs = append(out.PerCoreInstrs, retired)
		out.PerCoreCycles = append(out.PerCoreCycles, elapsed)
		out.Throughput += ipc
		out.Instrs += retired
		if elapsed > out.Cycles {
			out.Cycles = elapsed
		}
		out.UserL2Hits += after.l2Hits[i] - before.l2Hits[i]
		out.UserL2Accesses += after.l2Acc[i] - before.l2Acc[i]
		out.UserL1DHits += after.l1dHits[i] - before.l1dHits[i]
		out.UserL1DAccesses += after.l1dAcc[i] - before.l1dAcc[i]
		out.OSEntries += after.entries[i] - before.entries[i]
		out.Offloads += after.offloads[i] - before.offloads[i]
		out.OverheadCycles += after.overhead[i] - before.overhead[i]
		out.UserIdleCycles += after.idle[i] - before.idle[i]
	}
	out.OSL2Hits = after.osL2Hits - before.osL2Hits
	out.OSL2Accesses = after.osL2Acc - before.osL2Acc
	out.OSBusyCycles = after.osBusy - before.osBusy
	out.QueueDelaySum = after.queueSum - before.queueSum
	out.QueueDelayCount = after.queueN - before.queueN
	out.C2CTransfers = after.c2c - before.c2c
	out.Invalidations = after.inval - before.inval
	out.MemoryFills = after.fills - before.fills
	out.MemoryWritebacks = after.wb - before.wb
	return out
}

// setWarming flips every core — user and OS — between detailed and
// functional-warming execution at the configured stride.
func (s *Simulator) setWarming(on bool) {
	s.setWarmingStride(on, s.cfg.Sampling.WarmStride)
}

// setWarmingStride is setWarming with an explicit user-core reference
// stride (the warmup tail warms at stride 1). The OS core always warms
// at the denser OSWarmStride — its L2 sees only the minority off-loaded
// stream and decays beyond repair at the user stride — capped by the
// user stride so an explicit sparse OS stride is still honored.
func (s *Simulator) setWarmingStride(on bool, stride int) {
	for _, u := range s.users {
		u.core.SetWarming(on, stride)
	}
	osStride := s.cfg.Sampling.OSWarmStride
	if osStride > stride {
		osStride = stride
	}
	if s.osCore != nil {
		s.osCore.SetWarming(on, osStride)
	}
	for _, oc := range s.osCores {
		oc.SetWarming(on, osStride)
	}
}

// intervalCov is one interval's trace-exact covariates, per user core.
// Unlike cycle counts these are pure functions of the segment stream and
// the policy decision sequence, so functional warming observes them
// exactly; they anchor the regression extrapolation in collectSampled.
type intervalCov struct {
	measured bool
	ins      []uint64 // instructions retired
	osIns    []uint64 // privileged instructions retired
	offl     []uint64 // off-load round-trips issued
}

// covSnapshot captures the absolute counters behind intervalCov.
type covSnapshot struct {
	retired, osIns, offl []uint64
}

func (s *Simulator) covSnapshot() covSnapshot {
	n := len(s.users)
	c := covSnapshot{
		retired: make([]uint64, n), osIns: make([]uint64, n), offl: make([]uint64, n),
	}
	for i, u := range s.users {
		c.retired[i] = u.retired
		c.osIns[i] = u.osInstrs
		c.offl[i] = u.pol.Stats().Offloads.Value()
	}
	return c
}

func covDelta(before, after covSnapshot, measured bool) intervalCov {
	n := len(before.retired)
	cov := intervalCov{
		measured: measured,
		ins:      make([]uint64, n), osIns: make([]uint64, n), offl: make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		cov.ins[i] = after.retired[i] - before.retired[i]
		cov.osIns[i] = after.osIns[i] - before.osIns[i]
		cov.offl[i] = after.offl[i] - before.offl[i]
	}
	return cov
}

// maxMeasured returns the furthest per-core progress through the
// measurement window — the anchor for the next interval target.
func (s *Simulator) maxMeasured() uint64 {
	var m uint64
	for _, u := range s.users {
		if p := u.retired - u.retiredAtMeas; p > m {
			m = p
		}
	}
	return m
}

// RunSampled executes warmup plus measurement in interval-sampling mode
// and returns the extrapolated Result together with the raw per-interval
// samples. With sampling disabled it falls back to the full detailed
// Run. The run is fully deterministic: segment streams, interval
// boundaries and the warming stride are all pure functions of the
// Config.
func (s *Simulator) RunSampled() (Result, []IntervalSample) {
	sp := s.cfg.Sampling
	if !sp.Enabled {
		return s.Run(), nil
	}
	s.installEpochHooks()

	// Warmup: strided warming for the head, full-density (stride 1)
	// warming for the tail. The tail is what actually fills the
	// megabyte-scale L2 — a strided stream populates it WarmStride times
	// too slowly — while the cheap head still ages the predictor and
	// branch state over the full warmup distance.
	warmFunctional := sp.Warming == WarmFunctional
	if s.cfg.WarmupInstrs > 0 {
		tail := sp.WarmupTailInstrs
		if tail > s.cfg.WarmupInstrs {
			tail = s.cfg.WarmupInstrs
		}
		if head := s.cfg.WarmupInstrs - tail; head > 0 {
			s.setWarmingStride(warmFunctional, sp.WarmStride)
			s.runUntil(func(u *userCtx) bool { return u.retired >= head })
		}
		s.setWarmingStride(warmFunctional, 1)
		s.runUntil(func(u *userCtx) bool { return u.retired >= s.cfg.WarmupInstrs })
	}
	s.setWarming(false)
	s.resetAfterWarmup()

	// Measurement. Each Ratio-interval cycle runs DetailedWarmIntervals
	// at full detail (repairing the recency state strided warming lets
	// decay), measures the next interval, and replays the remainder in
	// warming mode — so a measured interval always sees caches warmed by
	// genuine detailed execution, not by the strided approximation.
	//
	// Interval targets track actual retirement rather than fixed
	// positions: compute-heavy workloads emit segments far longer than
	// one interval, and a fixed schedule would drift behind the cores and
	// measure empty windows.
	var samples []IntervalSample
	var covs []intervalCov
	total := s.cfg.MeasureInstrs
	covBefore := s.covSnapshot()
	for idx := 0; ; idx++ {
		start := s.maxMeasured()
		if start >= total {
			break
		}
		target := start + sp.IntervalInstrs
		if target > total {
			target = total
		}
		pos := idx % sp.Ratio
		measured := pos == sp.DetailedWarmIntervals
		switch {
		case pos < sp.DetailedWarmIntervals:
			s.setWarming(false)
			s.runUntil(func(u *userCtx) bool { return u.retired-u.retiredAtMeas >= target })
		case measured:
			s.setWarming(false)
			before := s.probe()
			s.runUntil(func(u *userCtx) bool { return u.retired-u.retiredAtMeas >= target })
			samples = append(samples, s.sampleDelta(idx, before))
		default:
			s.setWarming(warmFunctional)
			s.runUntil(func(u *userCtx) bool { return u.retired-u.retiredAtMeas >= target })
		}
		covAfter := s.covSnapshot()
		covs = append(covs, covDelta(covBefore, covAfter, measured))
		covBefore = covAfter
	}
	s.setWarming(false)
	return s.collectSampled(samples, covs), samples
}

// collectSampled extrapolates the detailed samples into a full Result.
// Identity, predictor-accuracy and tuner fields come from the normal
// collector (they are rates or end-of-run state, valid across modes);
// everything measured in cycles or events is rebuilt from the detailed
// deltas, with raw event counts scaled by the inverse sampling fraction.
// Throughput uses the regression estimator over the trace-exact interval
// covariates when enough samples exist (see regress.go), falling back to
// the ratio-of-sums expansion otherwise.
func (s *Simulator) collectSampled(samples []IntervalSample, covs []intervalCov) Result {
	r := s.collect()

	var agg IntervalSample
	retiredSum := make([]uint64, len(s.users))
	elapsedSum := make([]uint64, len(s.users))
	for _, smp := range samples {
		agg.Instrs += smp.Instrs
		agg.Cycles += smp.Cycles
		agg.UserL2Hits += smp.UserL2Hits
		agg.UserL2Accesses += smp.UserL2Accesses
		agg.UserL1DHits += smp.UserL1DHits
		agg.UserL1DAccesses += smp.UserL1DAccesses
		agg.OSL2Hits += smp.OSL2Hits
		agg.OSL2Accesses += smp.OSL2Accesses
		agg.OSEntries += smp.OSEntries
		agg.Offloads += smp.Offloads
		agg.OverheadCycles += smp.OverheadCycles
		agg.UserIdleCycles += smp.UserIdleCycles
		agg.OSBusyCycles += smp.OSBusyCycles
		agg.QueueDelaySum += smp.QueueDelaySum
		agg.QueueDelayCount += smp.QueueDelayCount
		agg.C2CTransfers += smp.C2CTransfers
		agg.Invalidations += smp.Invalidations
		agg.MemoryFills += smp.MemoryFills
		agg.MemoryWritebacks += smp.MemoryWritebacks
		for i := range smp.PerCoreInstrs {
			retiredSum[i] += smp.PerCoreInstrs[i]
			elapsedSum[i] += smp.PerCoreCycles[i]
		}
	}

	// Ratio of sums, not mean of ratios: a long interval contributes in
	// proportion to its length, and short noisy intervals cannot skew
	// the estimate. This is also the fallback when the regression
	// estimator below cannot run.
	perCore := make([]float64, len(s.users))
	r.Throughput = 0
	for i := range perCore {
		perCore[i] = stats.Ratio(retiredSum[i], elapsedSum[i])
		r.Throughput += perCore[i]
	}
	estimator := s.regressPerCore(samples, covs, perCore)
	r.Throughput = 0
	for _, ipc := range perCore {
		r.Throughput += ipc
	}
	r.PerCoreIPC = perCore

	// Actual totals over the whole measurement window; events observed
	// in the detailed fraction scale up by the inverse fraction.
	var totInstrs, maxElapsed uint64
	for _, u := range s.users {
		totInstrs += u.retired - u.retiredAtMeas
		if e := u.clock - u.measureStart; e > maxElapsed {
			maxElapsed = e
		}
	}
	scale := 1.0
	if agg.Instrs > 0 {
		scale = float64(totInstrs) / float64(agg.Instrs)
	}
	scaleUp := func(v uint64) uint64 { return uint64(float64(v)*scale + 0.5) }

	r.Instrs = totInstrs
	r.Cycles = maxElapsed
	r.UserL2HitRate = stats.Ratio(agg.UserL2Hits, agg.UserL2Accesses)
	r.UserL1DHit = stats.Ratio(agg.UserL1DHits, agg.UserL1DAccesses)
	r.OSL2HitRate = stats.Ratio(agg.OSL2Hits, agg.OSL2Accesses)
	r.OSEntries = scaleUp(agg.OSEntries)
	r.Offloads = scaleUp(agg.Offloads)
	r.OffloadRate = stats.Ratio(agg.Offloads, agg.OSEntries)
	r.OverheadCycles = scaleUp(agg.OverheadCycles)
	r.UserIdleCycles = scaleUp(agg.UserIdleCycles)
	r.OSBusyCycles = scaleUp(agg.OSBusyCycles)
	r.C2CTransfers = scaleUp(agg.C2CTransfers)
	r.Invalidations = scaleUp(agg.Invalidations)
	r.MemoryFills = scaleUp(agg.MemoryFills)
	r.MemoryWritebacks = scaleUp(agg.MemoryWritebacks)
	if slots := uint64(s.osSlotsTotal()); slots > 0 {
		if agg.Cycles > 0 {
			r.OSCoreUtilization = float64(agg.OSBusyCycles) / (float64(agg.Cycles) * float64(slots))
		}
		if agg.QueueDelayCount > 0 {
			r.MeanQueueDelay = agg.QueueDelaySum / float64(agg.QueueDelayCount)
		} else {
			r.MeanQueueDelay = 0
		}
	}

	sp := s.cfg.Sampling
	totalIntervals := int((s.cfg.MeasureInstrs + sp.IntervalInstrs - 1) / sp.IntervalInstrs)
	r.Sampling = &SamplingProvenance{
		Intervals:        len(samples),
		TotalIntervals:   totalIntervals,
		Replicas:         1,
		SampledFraction:  1 / scale,
		Estimator:        estimator,
		ThroughputRelErr: throughputRelErr(samples),
	}
	return r
}

// regressPerCore replaces perCore with regression-extrapolated IPCs when
// possible and reports the estimator actually used. For each core it
// fits the sampled intervals' cycle counts against their trace-exact
// covariates and evaluates the fit at the covariate totals of the whole
// measurement window, which every interval — warming included — has
// observed exactly.
func (s *Simulator) regressPerCore(samples []IntervalSample, covs []intervalCov, perCore []float64) string {
	var measured []intervalCov
	xTot := make([][]float64, len(s.users))
	for i := range xTot {
		xTot[i] = make([]float64, 4)
	}
	for _, cov := range covs {
		for c := range xTot {
			xTot[c][0]++
			xTot[c][1] += float64(cov.ins[c])
			xTot[c][2] += float64(cov.osIns[c])
			xTot[c][3] += float64(cov.offl[c])
		}
		if cov.measured {
			measured = append(measured, cov)
		}
	}
	if len(measured) != len(samples) || len(samples) < olsMinSamples {
		return "ratio"
	}

	ipc := make([]float64, len(s.users))
	for c, u := range s.users {
		xs := make([][]float64, len(measured))
		ys := make([]float64, len(measured))
		for k, cov := range measured {
			xs[k] = []float64{1, float64(cov.ins[c]), float64(cov.osIns[c]), float64(cov.offl[c])}
			ys[k] = float64(samples[k].PerCoreCycles[c])
		}
		insTot := float64(u.retired - u.retiredAtMeas)
		cycTot, ok := olsTotal(xs, ys, xTot[c])
		if !ok || cycTot <= 0 {
			return "ratio"
		}
		// Cores retire at most one instruction per cycle, so the cycle
		// total can never undercut the instruction total; a fit that
		// tries marks extrapolation beyond the data's support.
		if cycTot < insTot {
			cycTot = insTot
		}
		ipc[c] = insTot / cycTot
	}
	copy(perCore, ipc)
	return "regression"
}

// throughputRelErr returns the 95% confidence half-width of the mean
// interval throughput, relative to that mean — the headline error
// estimate of an extrapolated run.
func throughputRelErr(samples []IntervalSample) float64 {
	if len(samples) < 2 {
		return 0
	}
	mean := 0.0
	for _, s := range samples {
		mean += s.Throughput
	}
	mean /= float64(len(samples))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, s := range samples {
		d := s.Throughput - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(samples)-1))
	return 1.96 * sd / math.Sqrt(float64(len(samples))) / mean
}
