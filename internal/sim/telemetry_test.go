package sim

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"offloadsim/internal/core"
	"offloadsim/internal/telemetry"
	"offloadsim/internal/workloads"
)

// traceOpts is the full-telemetry attachment the determinism tests use.
func traceOpts() telemetry.Options {
	return telemetry.Options{Events: true, IntervalInstrs: 25_000}
}

// detailedTraceCfg is a serial detailed configuration with the dynamic
// tuner enabled (scaled to test size), so captures include retunes.
func detailedTraceCfg() Config {
	cfg := DefaultConfig(workloads.Apache())
	cfg.UserCores = 2
	cfg.Threshold = 100
	cfg.DynamicN = true
	tc := core.DefaultTunerConfig()
	tc.SampleEpoch = 20_000
	tc.BaseRun = 60_000
	tc.MaxRun = 240_000
	cfg.Tuner = tc
	cfg.WarmupInstrs = 40_000
	cfg.MeasureInstrs = 150_000
	return cfg
}

// parallelTraceCfg is a quantum-parallel configuration at a fixed worker
// count.
func parallelTraceCfg(workers int) Config {
	cfg := DefaultConfig(workloads.Apache())
	cfg.UserCores = 4
	cfg.Threshold = 100
	cfg.WarmupInstrs = 40_000
	cfg.MeasureInstrs = 100_000
	cfg.Parallel = DefaultParallel()
	cfg.Parallel.Workers = workers
	return cfg
}

// tracedRun runs cfg with telemetry attached and returns the result's
// JSON, the capture, and its JSONL encoding.
func tracedRun(t *testing.T, cfg Config) ([]byte, *telemetry.Capture, []byte) {
	t.Helper()
	s := MustNew(cfg)
	trc, err := s.AttachTelemetry(traceOpts())
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	res := s.Run()
	resJSON, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	cap := trc.Capture()
	var buf bytes.Buffer
	if err := telemetry.Export(cap, telemetry.NewJSONLSink(&buf)); err != nil {
		t.Fatalf("export: %v", err)
	}
	return resJSON, cap, buf.Bytes()
}

// TestTelemetryDoesNotPerturbResults is the central no-perturbation
// gate: the same configuration must produce a byte-identical Result with
// tracing plus interval sampling enabled and with telemetry absent.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	if testing.Short() {
		t.Skip("full traced runs are not short")
	}
	cfgs := map[string]Config{
		"detailed-dynN": detailedTraceCfg(),
		"parallel":      parallelTraceCfg(2),
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			plain := MustNew(cfg).Run()
			plainJSON, err := json.Marshal(plain)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			tracedJSON, cap, _ := tracedRun(t, cfg)
			if !bytes.Equal(plainJSON, tracedJSON) {
				t.Errorf("telemetry perturbed the result:\nplain  %s\ntraced %s", plainJSON, tracedJSON)
			}
			if len(cap.Events) == 0 {
				t.Error("capture has no events")
			}
			if len(cap.Series) == 0 {
				t.Error("capture has no interval series")
			}
		})
	}
}

// TestTraceDeterministicAcrossGOMAXPROCS pins the trace-byte contract
// against host parallelism.
func TestTraceDeterministicAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("full traced runs are not short")
	}
	cfgs := map[string]Config{
		"detailed-dynN": detailedTraceCfg(),
		"parallel":      parallelTraceCfg(2),
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			prev := runtime.GOMAXPROCS(1)
			res1, _, trace1 := tracedRun(t, cfg)
			runtime.GOMAXPROCS(8)
			res8, _, trace8 := tracedRun(t, cfg)
			runtime.GOMAXPROCS(prev)
			if !bytes.Equal(res1, res8) {
				t.Errorf("results differ across GOMAXPROCS")
			}
			if !bytes.Equal(trace1, trace8) {
				t.Errorf("trace bytes differ across GOMAXPROCS (%d vs %d bytes)", len(trace1), len(trace8))
			}
		})
	}
}

// TestTraceDeterministicAcrossWorkers pins the trace-byte contract
// against the parallel engine's worker count, which — like the results
// themselves — must be invisible in the output.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full traced runs are not short")
	}
	res1, _, trace1 := tracedRun(t, parallelTraceCfg(1))
	res4, _, trace4 := tracedRun(t, parallelTraceCfg(4))
	if !bytes.Equal(res1, res4) {
		t.Errorf("results differ across Workers")
	}
	if !bytes.Equal(trace1, trace4) {
		t.Errorf("trace bytes differ across Workers (%d vs %d bytes)", len(trace1), len(trace4))
	}
}

// TestTraceCaptureContents checks the capture carries the event
// vocabulary the viewers rely on: entries, predictions, off-load round
// trips, outcomes and — with the dynamic tuner on — retunes.
func TestTraceCaptureContents(t *testing.T) {
	if testing.Short() {
		t.Skip("full traced runs are not short")
	}
	_, cap, _ := tracedRun(t, detailedTraceCfg())
	counts := map[telemetry.Kind]int{}
	for _, ev := range cap.Events {
		counts[ev.Kind]++
	}
	for _, k := range []telemetry.Kind{
		telemetry.KindOSEntry, telemetry.KindPredict, telemetry.KindOutcome,
		telemetry.KindOffloadDispatch, telemetry.KindOffloadQueue,
		telemetry.KindOffloadExecute, telemetry.KindCacheWarm,
		telemetry.KindOffloadReturn, telemetry.KindRetune,
	} {
		if counts[k] == 0 {
			t.Errorf("no %v events captured", k)
		}
	}
	if counts[telemetry.KindOSEntry] != counts[telemetry.KindPredict] ||
		counts[telemetry.KindOSEntry] != counts[telemetry.KindOutcome] {
		t.Errorf("entry/predict/outcome counts diverge: %d/%d/%d",
			counts[telemetry.KindOSEntry], counts[telemetry.KindPredict], counts[telemetry.KindOutcome])
	}
	if counts[telemetry.KindOffloadDispatch] != counts[telemetry.KindOffloadReturn] {
		t.Errorf("dispatch/return counts diverge: %d/%d",
			counts[telemetry.KindOffloadDispatch], counts[telemetry.KindOffloadReturn])
	}
	var chrome bytes.Buffer
	if err := telemetry.Export(cap, telemetry.NewChromeSink(&chrome)); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	if !json.Valid(chrome.Bytes()) {
		t.Error("chrome export is not valid JSON")
	}
}

func TestAttachTelemetryRejectsSampled(t *testing.T) {
	cfg := DefaultConfig(workloads.Apache())
	cfg.Sampling.Enabled = true
	s := MustNew(cfg)
	if _, err := s.AttachTelemetry(traceOpts()); err == nil {
		t.Fatal("sampled mode must reject telemetry")
	}
}

// TestTraceZeroAllocsDisabled pins the detailed step loop at zero
// steady-state allocations both with telemetry absent (the nil-tracer
// fast path must stay free) and with an armed event tracer (rings are
// preallocated; emission must not escape to the heap).
func TestTraceZeroAllocsDisabled(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	if testing.Short() {
		t.Skip("fixture warmup is not short")
	}
	mk := func(attach bool) *Simulator {
		cfg := DefaultConfig(workloads.Apache())
		cfg.Threshold = 100
		cfg.WarmupInstrs = 0
		cfg.MeasureInstrs = 1 << 62 // never reached; stepped manually
		s := MustNew(cfg)
		if attach {
			trc, err := s.AttachTelemetry(telemetry.Options{Events: true})
			if err != nil {
				t.Fatalf("attach: %v", err)
			}
			trc.Arm()
		}
		for i := 0; i < 5_000; i++ {
			s.step(s.minClock())
		}
		return s
	}
	for _, tc := range []struct {
		name   string
		attach bool
	}{{"disabled", false}, {"enabled", true}} {
		s := mk(tc.attach)
		if allocs := testing.AllocsPerRun(500, func() { s.step(s.minClock()) }); allocs != 0 {
			t.Errorf("%s: detailed step allocates %v objects/op in steady state, want 0", tc.name, allocs)
		}
	}
}
