package sim

import (
	"fmt"
	"strings"

	"offloadsim/internal/core"
	"offloadsim/internal/policy"
	"offloadsim/internal/stats"
	"offloadsim/internal/syscalls"
)

// Result is the measured outcome of one simulation run.
type Result struct {
	Workload  string
	Policy    string
	Threshold int // final threshold (after any dynamic tuning)
	OneWay    int
	UserCores int

	// Throughput is aggregate user-core throughput: the sum over user
	// cores of workload instructions retired per elapsed cycle. For one
	// single-threaded core this is IPC (§II "For single threaded
	// applications, throughput is equivalent to IPC").
	Throughput float64
	// PerCoreIPC lists each user core's instructions-per-cycle.
	PerCoreIPC []float64

	// Instrs and Cycles aggregate across user cores (cycles = max
	// elapsed among them).
	Instrs uint64
	Cycles uint64

	// Cache behaviour.
	UserL2HitRate float64
	OSL2HitRate   float64
	UserL1DHit    float64

	// Off-loading activity.
	OSEntries      uint64
	Offloads       uint64
	OffloadRate    float64
	OverheadCycles uint64

	// OS core service metrics (§V-C).
	OSCoreUtilization float64
	MeanQueueDelay    float64
	MaxQueueDelay     float64

	// Coherence traffic.
	C2CTransfers     uint64
	Invalidations    uint64
	MemoryFills      uint64
	MemoryWritebacks uint64

	// Energy-model inputs: cycles the user cores spent idle-eligible
	// (waiting on migrations), the OS core's busy cycles, and whether an
	// OS core existed at all.
	UserIdleCycles uint64
	OSBusyCycles   uint64
	HasOSCore      bool

	// Predictor quality (predictor-based policies only). Exact/Within5
	// and BinaryAccuracy score system calls only, following §IV's
	// convention of omitting the SPARC window-trap population from
	// statistics it would skew; the AllEntry variants include every
	// privileged entry (traps included).
	PredictorExact         float64
	PredictorWithin5       float64
	BinaryAccuracy         float64
	AllEntryExact          float64
	AllEntryBinaryAccuracy float64

	// PrivFraction is the workload's generated privileged share.
	PrivFraction float64

	// TunerChanges counts adopted-threshold changes (dynamic N runs).
	TunerChanges int

	// TunerHistory is core 0's epoch-by-epoch (threshold, hit-rate)
	// trail when dynamic N is enabled; nil otherwise.
	TunerHistory []core.Sample

	// Sampling records how an interval-sampled run was extrapolated;
	// nil for fully detailed runs.
	Sampling *SamplingProvenance `json:",omitempty"`

	// Parallel records that detailed execution ran on the
	// quantum-synchronized parallel engine; nil for serial runs.
	Parallel *ParallelProvenance `json:",omitempty"`

	// OSCores records the per-core and per-class behaviour of a
	// multi-OS-core run (Config.OSCores); nil for classic
	// single-OS-core and baseline runs.
	OSCores *OSCoresProvenance `json:",omitempty"`
}

// OSCoresProvenance is the Result block of a multi-OS-core run
// (internal/oscore, docs/OSCORES.md).
type OSCoresProvenance struct {
	// K is the OS-core count; Async whether fire-and-forget dispatch
	// was enabled.
	K     int
	Async bool
	// PerCore lists each OS core's service metrics, index-aligned with
	// the cluster.
	PerCore []OSCoreStat
	// PerClass lists every syscall class in catalog order with its
	// designated core and routing statistics (the source of the offsimd
	// per-class queue-depth gauge).
	PerClass []OSClassStat
	// Async accounting: dispatches issued, returns reconciled, cycles
	// issuing cores stalled on reconciliation, and descriptors still
	// outstanding at the end of measurement.
	AsyncDispatched  uint64
	AsyncReconciled  uint64
	AsyncStallCycles uint64
	AsyncOutstanding uint64
	// Rebalances counts requests diverted from their designated queue.
	Rebalances uint64
}

// OSCoreStat is one OS core's service metrics.
type OSCoreStat struct {
	// Speed is the core's configured speed factor.
	Speed float64
	// Requests and BusyCycles count work booked on this core's queue.
	Requests   uint64
	BusyCycles uint64
	// Utilization is busy cycles over the core's context capacity
	// across the measurement window.
	Utilization float64
	// MeanQueueDelay is the average reservation wait on this core.
	MeanQueueDelay float64
}

// OSClassStat is one syscall class's routing statistics.
type OSClassStat struct {
	// Class is the syscall category name; Core its designated OS core.
	Class string
	Core  int
	// Requests counts invocations of this class routed to the cluster;
	// MeanQueueDepth the average busy-context count they observed at
	// arrival.
	Requests       uint64
	MeanQueueDepth float64
}

// ParallelProvenance marks a Result as produced by the parallel
// detailed engine (docs/PARALLEL.md). Workers is deliberately absent:
// it cannot influence results, and recording it would break the
// byte-identical-at-any-Workers contract.
type ParallelProvenance struct {
	// Quantum is the synchronization interval in simulated cycles.
	Quantum uint64
	// Quanta is the number of barriers the run executed.
	Quanta uint64
}

// SamplingProvenance marks a Result as extrapolated from interval
// sampling and carries its headline error estimate. Per-metric estimates
// live in package sample's Report.
type SamplingProvenance struct {
	// Intervals is the number of detailed intervals measured (across
	// all merged replicas).
	Intervals int
	// TotalIntervals is the number of intervals in the measurement
	// window (across all merged replicas).
	TotalIntervals int
	// Replicas is the number of independent replicas merged.
	Replicas int
	// SampledFraction is the share of measured instructions executed in
	// full detail.
	SampledFraction float64
	// Estimator names the extrapolation used for throughput:
	// "regression" (cycle counts fitted against trace-exact interval
	// covariates) or "ratio" (plain ratio-of-sums expansion).
	Estimator string
	// ThroughputRelErr is the 95% confidence half-width of the
	// throughput estimate, relative to the estimate.
	ThroughputRelErr float64
}

// collect gathers the result after measurement completes.
func (s *Simulator) collect() Result {
	name := s.cfg.profileFor(0).Name
	for i := 1; i < s.cfg.UserCores; i++ {
		if p := s.cfg.profileFor(i); p.Name != name {
			name = "mixed"
			break
		}
	}
	r := Result{
		Workload:  name,
		Policy:    s.cfg.Policy.String(),
		Threshold: s.cfg.Threshold,
		OneWay:    s.cfg.Migration.OneWay,
		UserCores: s.cfg.UserCores,
	}

	var sumIPC float64
	var maxElapsed uint64
	var userHits, userAcc uint64
	var l1dHits, l1dAcc uint64
	for _, u := range s.users {
		elapsed := u.clock - u.measureStart
		retired := u.retired - u.retiredAtMeas
		ipc := 0.0
		if elapsed > 0 {
			ipc = float64(retired) / float64(elapsed)
		}
		r.PerCoreIPC = append(r.PerCoreIPC, ipc)
		sumIPC += ipc
		if elapsed > maxElapsed {
			maxElapsed = elapsed
		}
		r.Instrs += retired

		l2 := s.sys.L2(u.core.Node())
		userHits += l2.Stats.Hits.Value()
		userAcc += l2.Stats.Accesses.Value()
		l1dHits += u.core.L1D().Stats.Hits.Value()
		l1dAcc += u.core.L1D().Stats.Accesses.Value()

		r.UserIdleCycles += u.core.Counters.IdleCyc.Value()
		r.OSEntries += u.pol.Stats().Entries.Value()
		r.Offloads += u.pol.Stats().Offloads.Value()
		r.OverheadCycles += u.pol.Stats().OverheadCycles.Value()

		if eng := policy.Engine(u.pol); eng != nil {
			// Reported accuracy covers system calls only: §IV omits the
			// SPARC window-trap invocations from statistics they would
			// skew. Averaged across cores (same workload class).
			acc := policy.SyscallAccuracy(u.pol)
			r.PredictorExact += acc.ExactRate() / float64(len(s.users))
			r.PredictorWithin5 += acc.Within5Rate() / float64(len(s.users))
			if ba, ok := policy.SyscallBinaryAccuracy(u.pol); ok {
				r.BinaryAccuracy += ba / float64(len(s.users))
			}
			r.AllEntryExact += eng.Predictor().Accuracy().ExactRate() / float64(len(s.users))
			r.AllEntryBinaryAccuracy += eng.BinaryAccuracy() / float64(len(s.users))
			r.Threshold = eng.Threshold()
		}
		if u.tun != nil {
			r.TunerChanges += u.tun.Changes()
			if r.TunerHistory == nil {
				r.TunerHistory = append(r.TunerHistory, u.tun.History()...)
			}
		}
		r.PrivFraction = u.gen.SourceStats().PrivFraction()
	}
	r.Throughput = sumIPC
	r.Cycles = maxElapsed
	r.UserL2HitRate = stats.Ratio(userHits, userAcc)
	r.UserL1DHit = stats.Ratio(l1dHits, l1dAcc)
	r.OffloadRate = stats.Ratio(r.Offloads, r.OSEntries)

	if s.osCore != nil {
		r.HasOSCore = true
		ol2 := s.sys.L2(s.osNode)
		r.OSL2HitRate = ol2.Stats.HitRate()
		r.OSCoreUtilization = s.osQueue.Utilization(maxElapsed)
		r.OSBusyCycles = s.osQueue.BusyCycles.Value()
		r.MeanQueueDelay = s.osQueue.QueueDelay.Mean()
		r.MaxQueueDelay = s.osQueue.QueueDelay.Max()
	}
	if s.osc != nil {
		r.HasOSCore = true
		var osHits, osAcc uint64
		for q := 0; q < s.osc.K(); q++ {
			ol2 := s.sys.L2(s.osNode + q)
			osHits += ol2.Stats.Hits.Value()
			osAcc += ol2.Stats.Accesses.Value()
		}
		r.OSL2HitRate = stats.Ratio(osHits, osAcc)
		r.OSCoreUtilization = s.osc.Utilization(maxElapsed)
		r.OSBusyCycles = s.osc.BusyCycles()
		delaySum, delayN, delayMax := s.osc.QueueDelay()
		if delayN > 0 {
			r.MeanQueueDelay = delaySum / float64(delayN)
		}
		r.MaxQueueDelay = delayMax
		r.OSCores = s.oscoresProvenance(maxElapsed)
	}
	cs := &s.sys.Stats
	r.C2CTransfers = cs.C2CTransfers.Value()
	r.Invalidations = cs.Invalidations.Value()
	r.MemoryFills = cs.MemoryFills.Value()
	r.MemoryWritebacks = s.sys.Memory().Writebacks()
	if s.cfg.Parallel.Enabled {
		r.Parallel = &ParallelProvenance{Quantum: s.cfg.Parallel.Quantum}
		if s.par != nil {
			r.Parallel.Quanta = s.par.quanta
		}
	}
	return r
}

// oscoresProvenance shapes the cluster runtime's counters into the
// Result block.
func (s *Simulator) oscoresProvenance(horizon uint64) *OSCoresProvenance {
	p := &OSCoresProvenance{
		K:          s.osc.K(),
		Async:      s.cfg.OSCores.Async,
		Rebalances: s.osc.Rebalances(),
	}
	p.AsyncDispatched, p.AsyncReconciled, p.AsyncStallCycles = s.osc.AsyncStats()
	p.AsyncOutstanding = s.osc.OutstandingAsync()
	for q := 0; q < s.osc.K(); q++ {
		queue := s.osc.Queue(q)
		st := OSCoreStat{
			Speed:      s.osc.Speed(q),
			Requests:   queue.Requests.Value(),
			BusyCycles: queue.BusyCycles.Value(),
		}
		if horizon > 0 {
			st.Utilization = float64(st.BusyCycles) / (float64(horizon) * float64(queue.Slots()))
			if st.Utilization > 1 {
				st.Utilization = 1
			}
		}
		st.MeanQueueDelay = queue.QueueDelay.Mean()
		p.PerCore = append(p.PerCore, st)
	}
	for cat := 0; cat < syscalls.NumCategories; cat++ {
		req, depth := s.osc.ClassStats(syscalls.Category(cat))
		p.PerClass = append(p.PerClass, OSClassStat{
			Class:          syscalls.Category(cat).String(),
			Core:           s.osc.Designated(syscalls.Category(cat)),
			Requests:       req,
			MeanQueueDepth: depth,
		})
	}
	return p
}

// String renders a one-line summary.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s N=%d lat=%d cores=%d: tput=%.4f offl=%s osUtil=%s",
		r.Workload, r.Policy, r.Threshold, r.OneWay, r.UserCores,
		r.Throughput, stats.Pct(r.OffloadRate), stats.Pct(r.OSCoreUtilization))
	return b.String()
}
