package sim

import (
	"reflect"
	"testing"

	"offloadsim/internal/migration"
	"offloadsim/internal/policy"
	"offloadsim/internal/workloads"
)

// fuzzProfiles is the pool of workload profiles the fuzzer composes
// configurations from.
var fuzzProfiles = []func() *workloads.Profile{
	workloads.Apache, workloads.SPECjbb, workloads.Derby, workloads.Blackscholes,
}

// FuzzCanonicalize throws arbitrary configuration knobs at Canonicalize
// and checks the invariants the offsimd result cache is built on:
//
//   - Canonicalize accepts or rejects without panicking;
//   - it is idempotent — a canonical config is its own canonical form;
//   - CanonicalKey(c) equals CanonicalKey(Canonicalize(c)), so cache keys
//     do not depend on whether the caller pre-normalized;
//   - a uniform per-core Workloads list keys identically to the collapsed
//     single-Workload spelling of the same machine.
func FuzzCanonicalize(f *testing.F) {
	f.Add(uint8(0), uint8(3), int32(100), uint8(1), int32(1000), uint8(0), uint64(1), uint32(0), uint32(1_000_000), false, false)
	f.Add(uint8(1), uint8(0), int32(0), uint8(2), int32(0), uint8(2), uint64(7), uint32(300_000), uint32(64_000_000), false, true)
	f.Add(uint8(2), uint8(4), int32(10_000), uint8(4), int32(2500), uint8(1), uint64(42), uint32(1), uint32(1), true, false)
	f.Add(uint8(3), uint8(5), int32(-5), uint8(0), int32(-1), uint8(255), uint64(0), uint32(0), uint32(0), true, true)
	f.Fuzz(func(t *testing.T, wl, policyRaw uint8, threshold int32, userCores uint8, oneWay int32, slots uint8, seed uint64, warmup, measure uint32, dynamicN, uniformList bool) {
		prof := fuzzProfiles[int(wl)%len(fuzzProfiles)]()
		cfg := DefaultConfig(prof)
		cfg.Policy = policy.Kind(policyRaw % 6) // includes one out-of-range kind
		cfg.Threshold = int(threshold)
		cfg.UserCores = int(userCores) % 9
		cfg.Migration = migration.Custom(int(oneWay))
		cfg.OSCoreSlots = int(slots) % 5
		cfg.Seed = seed
		cfg.WarmupInstrs = uint64(warmup)
		cfg.MeasureInstrs = uint64(measure)
		cfg.DynamicN = dynamicN
		if uniformList && cfg.UserCores > 0 {
			// Spell the same machine as an explicit per-core list.
			cfg.Workloads = make([]*workloads.Profile, cfg.UserCores)
			for i := range cfg.Workloads {
				cfg.Workloads[i] = prof
			}
		}

		cc, err := Canonicalize(cfg)
		if err != nil {
			// Rejected input: the error path must agree with Validate.
			if vErr := cfg.Validate(); vErr == nil {
				t.Fatalf("Canonicalize rejected a config Validate accepts: %v", err)
			}
			return
		}
		if err := cc.Validate(); err != nil {
			t.Fatalf("canonical form fails Validate: %v", err)
		}
		cc2, err := Canonicalize(cc)
		if err != nil {
			t.Fatalf("re-canonicalizing failed: %v", err)
		}
		if !reflect.DeepEqual(cc, cc2) {
			t.Fatalf("Canonicalize not idempotent:\n first = %+v\nsecond = %+v", cc, cc2)
		}
		key, err := CanonicalKey(cfg)
		if err != nil {
			t.Fatalf("CanonicalKey(original): %v", err)
		}
		keyCC, err := CanonicalKey(cc)
		if err != nil {
			t.Fatalf("CanonicalKey(canonical): %v", err)
		}
		if key != keyCC {
			t.Fatalf("key changed under canonicalization: %s vs %s", key, keyCC)
		}
		if uniformList && cfg.UserCores > 0 {
			collapsed := cfg
			collapsed.Workloads = nil
			collapsed.Workload = prof
			keyC, err := CanonicalKey(collapsed)
			if err != nil {
				t.Fatalf("CanonicalKey(collapsed): %v", err)
			}
			if keyC != key {
				t.Fatalf("uniform Workloads list keys differently from single Workload: %s vs %s", key, keyC)
			}
		}
	})
}
