package sim

// Regression extrapolation for interval sampling. Per-interval cycle
// counts are only observed for the detailed (sampled) intervals, but
// the covariates that drive them — instructions retired, privileged
// instructions, off-load round-trips — are pure functions of the trace
// and the policy decision sequence, so functional warming observes them
// exactly for every interval. Fitting cycles against those covariates
// on the sampled intervals and evaluating the fit at the known
// population totals (the classic survey-sampling regression estimator)
// removes the variance contributed by the covariates' uneven spread
// across windows, which is the dominant noise source: whether a given
// window happens to contain an expensive system call or an off-load
// round-trip moves its cycle count far more than cache-state noise
// does.

// olsMinSamples is the smallest sample count worth fitting; below it
// the collector falls back to the plain ratio-of-sums estimator.
const olsMinSamples = 12

// olsTotal fits y ≈ β·x over the sampled rows and returns β·xTot — the
// regression estimate of the population total of y. Each x row and
// xTot must share the same length (include a leading 1 and make
// xTot[0] the population row count to fit an intercept). Covariates
// with no variation (or exact collinearity) are pinned to a zero
// coefficient rather than failing. Returns ok=false when there are too
// few rows to fit.
func olsTotal(xs [][]float64, ys []float64, xTot []float64) (total float64, ok bool) {
	n := len(xs)
	if n < olsMinSamples || n != len(ys) {
		return 0, false
	}
	k := len(xTot)

	// Normal equations A β = b with A = XᵀX, b = Xᵀy.
	a := make([][]float64, k)
	for i := range a {
		a[i] = make([]float64, k)
	}
	b := make([]float64, k)
	for r, x := range xs {
		for i := 0; i < k; i++ {
			for j := i; j < k; j++ {
				a[i][j] += x[i] * x[j]
			}
			b[i] += x[i] * ys[r]
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}

	// Gauss-Jordan without pivoting — the matrix is symmetric positive
	// semi-definite, so diagonal pivots are safe. A pivot that collapses
	// relative to its original magnitude marks a dead or collinear
	// covariate; its coefficient is pinned to zero so the fit degrades
	// gracefully instead of exploding.
	scale := make([]float64, k)
	for i := 0; i < k; i++ {
		scale[i] = a[i][i]
	}
	beta := b
	for i := 0; i < k; i++ {
		p := a[i][i]
		if p <= 0 || (scale[i] > 0 && p < 1e-12*scale[i]) {
			for j := 0; j < k; j++ {
				a[i][j] = 0
				a[j][i] = 0
			}
			a[i][i] = 1
			beta[i] = 0
			continue
		}
		inv := 1 / p
		for j := 0; j < k; j++ {
			a[i][j] *= inv
		}
		beta[i] *= inv
		for r := 0; r < k; r++ {
			if r == i {
				continue
			}
			f := a[r][i]
			if f == 0 {
				continue
			}
			for j := 0; j < k; j++ {
				a[r][j] -= f * a[i][j]
			}
			beta[r] -= f * beta[i]
		}
	}

	for i := 0; i < k; i++ {
		total += beta[i] * xTot[i]
	}
	return total, true
}
