//go:build race

package sim

// raceEnabled reports whether the race detector instruments this build;
// its allocations would break the zero-allocation regression test.
const raceEnabled = true
