package sim

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"offloadsim/internal/policy"
	"offloadsim/internal/workloads"
)

// oscoresCfg returns a quick multi-OS-core configuration.
func oscoresCfg(kind policy.Kind, block OSCores) Config {
	cfg := quickCfg(workloads.Apache(), kind)
	cfg.UserCores = 2
	cfg.OSCores = block
	return cfg
}

func TestOSCoresWithDefaults(t *testing.T) {
	// Disabled blocks zero out whatever stale knobs they carry.
	if got := (OSCores{K: 7, Async: true, DepthN: 3}).withDefaults(); got != (OSCores{}) {
		t.Fatalf("disabled block kept fields: %+v", got)
	}
	// A K=1 synchronous symmetric block IS the legacy model.
	for _, o := range []OSCores{
		{Enabled: true},
		{Enabled: true, K: 1},
		{Enabled: true, K: 1, Affinity: "file=0"},
		{Enabled: true, K: 1, Asymmetry: "1"},
		{Enabled: true, K: 1, Rebalance: true},
	} {
		if got := o.withDefaults(); got != (OSCores{}) {
			t.Errorf("%+v should collapse to the legacy model, got %+v", o, got)
		}
	}
	// Anything the legacy model cannot express stays enabled.
	for _, o := range []OSCores{
		{Enabled: true, K: 2},
		{Enabled: true, K: 1, Async: true},
		{Enabled: true, K: 1, Asymmetry: "0.5"},
		{Enabled: true, K: 1, DepthN: 50},
	} {
		if got := o.withDefaults(); !got.Enabled {
			t.Errorf("%+v collapsed but is not the legacy model", o)
		}
	}
	// Async pins the double-buffered default slot budget.
	if got := (OSCores{Enabled: true, K: 2, Async: true}).withDefaults(); got.AsyncSlots != DefaultAsyncSlots {
		t.Fatalf("AsyncSlots = %d, want %d", got.AsyncSlots, DefaultAsyncSlots)
	}
	// Equivalent spellings normalize to one canonical block.
	a := OSCores{Enabled: true, K: 2, Affinity: "trap=0,identity=1", Asymmetry: "1,1"}.withDefaults()
	b := OSCores{Enabled: true, K: 2}.withDefaults()
	if a != b {
		t.Fatalf("spelled-out defaults normalize differently: %+v vs %+v", a, b)
	}
}

func TestOSCoresValidate(t *testing.T) {
	cases := []struct {
		name    string
		block   OSCores
		wantErr string
	}{
		{name: "disabled", block: OSCores{}},
		{name: "plain k4", block: OSCores{Enabled: true, K: 4}},
		{name: "affinity+asymmetry", block: OSCores{Enabled: true, K: 2,
			Affinity: "file=0,network=1", Asymmetry: "1,0.5"}},
		{name: "async", block: OSCores{Enabled: true, K: 2, Async: true, AsyncSlots: 4}},
		{name: "negative K", block: OSCores{Enabled: true, K: -1}, wantErr: "negative OSCores.K"},
		{name: "huge K", block: OSCores{Enabled: true, K: 1000}, wantErr: "> 64"},
		{name: "bad affinity class", block: OSCores{Enabled: true, K: 2, Affinity: "disk=0"},
			wantErr: "unknown syscall class"},
		{name: "affinity out of range", block: OSCores{Enabled: true, K: 2, Affinity: "file=5"},
			wantErr: "outside"},
		{name: "bad asymmetry count", block: OSCores{Enabled: true, K: 2, Asymmetry: "1,1,1"},
			wantErr: "3 factors for 2"},
		{name: "slots without async", block: OSCores{Enabled: true, K: 2, AsyncSlots: 2},
			wantErr: "AsyncSlots set without Async"},
		{name: "negative slots", block: OSCores{Enabled: true, K: 2, Async: true, AsyncSlots: -1},
			wantErr: "negative OSCores.AsyncSlots"},
		{name: "negative depth", block: OSCores{Enabled: true, K: 2, DepthN: -5},
			wantErr: "negative OSCores.DepthN"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := oscoresCfg(policy.HardwarePredictor, tc.block)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid block rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}

	// The parallel engine cannot express the cluster model.
	cfg := oscoresCfg(policy.HardwarePredictor, OSCores{Enabled: true, K: 2})
	cfg.Parallel = DefaultParallel()
	if err := cfg.Validate(); err == nil {
		t.Fatal("Parallel+OSCores accepted")
	}
	// ...but a block that collapses to the legacy model composes fine.
	cfg.OSCores = OSCores{Enabled: true, K: 1}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Parallel with collapsing OSCores rejected: %v", err)
	}
}

// The load-bearing compatibility property: an enabled K=1 synchronous
// block IS the legacy single-OS-core configuration — same canonical key,
// same result bytes.
func TestOSCoresK1Equivalence(t *testing.T) {
	legacy := oscoresCfg(policy.HardwarePredictor, OSCores{})
	k1 := oscoresCfg(policy.HardwarePredictor, OSCores{Enabled: true, K: 1})

	legacyKey, err := CanonicalKey(legacy)
	if err != nil {
		t.Fatal(err)
	}
	k1Key, err := CanonicalKey(k1)
	if err != nil {
		t.Fatal(err)
	}
	if legacyKey != k1Key {
		t.Fatalf("K=1 sync key %s != legacy key %s", k1Key, legacyKey)
	}

	legacyJSON, err := json.Marshal(MustNew(legacy).Run())
	if err != nil {
		t.Fatal(err)
	}
	k1JSON, err := json.Marshal(MustNew(k1).Run())
	if err != nil {
		t.Fatal(err)
	}
	if string(legacyJSON) != string(k1JSON) {
		t.Fatal("K=1 synchronous result differs from legacy result")
	}
}

func TestOSCoresCanonicalKeyDiscriminates(t *testing.T) {
	base := oscoresCfg(policy.HardwarePredictor, OSCores{})
	variants := []OSCores{
		{Enabled: true, K: 2},
		{Enabled: true, K: 4},
		{Enabled: true, K: 2, Rebalance: true},
		{Enabled: true, K: 2, Async: true},
		{Enabled: true, K: 2, Asymmetry: "1,0.5"},
		{Enabled: true, K: 2, Affinity: "*=0,network=1"},
		{Enabled: true, K: 2, DepthN: 100},
	}
	seen := map[string]string{}
	baseKey, err := CanonicalKey(base)
	if err != nil {
		t.Fatal(err)
	}
	seen[baseKey] = "legacy"
	for _, v := range variants {
		cfg := base
		cfg.OSCores = v
		key, err := CanonicalKey(cfg)
		if err != nil {
			t.Fatal(err)
		}
		desc := v.Affinity + "/" + v.Asymmetry
		if prev, dup := seen[key]; dup {
			t.Errorf("variant %+v shares key with %s", v, prev)
		}
		seen[key] = desc
	}
}

func TestClusterRunSynchronous(t *testing.T) {
	cfg := oscoresCfg(policy.HardwarePredictor, OSCores{
		Enabled: true, K: 2, Affinity: "file=0,network=1", Rebalance: true,
	})
	r := MustNew(cfg).Run()
	if !r.HasOSCore {
		t.Fatal("cluster run reports no OS core")
	}
	if r.OSCores == nil {
		t.Fatal("cluster run missing OSCores provenance")
	}
	if r.OSCores.K != 2 || r.OSCores.Async {
		t.Fatalf("provenance K=%d Async=%v, want 2,false", r.OSCores.K, r.OSCores.Async)
	}
	if len(r.OSCores.PerCore) != 2 {
		t.Fatalf("PerCore has %d entries, want 2", len(r.OSCores.PerCore))
	}
	if len(r.OSCores.PerClass) != 8 {
		t.Fatalf("PerClass has %d entries, want 8", len(r.OSCores.PerClass))
	}
	var perCoreReq, perClassReq uint64
	for _, st := range r.OSCores.PerCore {
		perCoreReq += st.Requests
	}
	for _, st := range r.OSCores.PerClass {
		perClassReq += st.Requests
	}
	if perCoreReq != perClassReq {
		t.Fatalf("per-core requests %d != per-class requests %d", perCoreReq, perClassReq)
	}
	if perCoreReq == 0 {
		t.Fatal("apache/HI run off-loaded nothing to the cluster")
	}
	if r.OSCores.AsyncDispatched != 0 || r.OSCores.AsyncOutstanding != 0 {
		t.Fatalf("synchronous run recorded async activity: %+v", r.OSCores)
	}
	if r.Throughput <= 0 {
		t.Fatalf("throughput %v", r.Throughput)
	}
}

func TestClusterRunAsync(t *testing.T) {
	cfg := oscoresCfg(policy.HardwarePredictor, OSCores{Enabled: true, K: 2, Async: true})
	r := MustNew(cfg).Run()
	if r.OSCores == nil || !r.OSCores.Async {
		t.Fatal("async provenance missing")
	}
	if r.OSCores.AsyncDispatched == 0 {
		t.Fatal("async run dispatched nothing fire-and-forget (apache writes/sends should qualify)")
	}
	if got := r.OSCores.AsyncReconciled + r.OSCores.AsyncOutstanding; got != r.OSCores.AsyncDispatched {
		t.Fatalf("reconciled %d + outstanding %d != dispatched %d",
			r.OSCores.AsyncReconciled, r.OSCores.AsyncOutstanding, r.OSCores.AsyncDispatched)
	}
}

// Asymmetric little cores execute the same off-loaded work in more
// reference cycles, so OS-side busy time must grow monotonically as the
// cluster slows down.
func TestClusterAsymmetrySlowsOSSide(t *testing.T) {
	busyAt := func(asym string) uint64 {
		cfg := oscoresCfg(policy.HardwarePredictor, OSCores{Enabled: true, K: 2, Asymmetry: asym})
		r := MustNew(cfg).Run()
		if r.OSBusyCycles == 0 {
			t.Fatalf("asymmetry %q: no OS busy cycles", asym)
		}
		return r.OSBusyCycles
	}
	full := busyAt("")
	half := busyAt("0.5,0.5")
	if half <= full {
		t.Fatalf("half-speed cluster busy %d <= full-speed busy %d", half, full)
	}
}

// The async engine runs on the serial stepper, so its results — like
// every detailed result — must be a pure function of the Config,
// independent of host parallelism. This is the acceptance property for
// async dispatch ordering.
func TestClusterAsyncDeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := oscoresCfg(policy.HardwarePredictor, OSCores{
		Enabled: true, K: 4, Async: true, Rebalance: true,
		Affinity: "trap=0,identity=0,file=1,network=2,*=3", Asymmetry: "1,1,0.5,0.5",
	})
	cfg.UserCores = 4
	runAt := func(procs int) string {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		j, err := json.Marshal(MustNew(cfg).Run())
		if err != nil {
			t.Fatal(err)
		}
		return string(j)
	}
	serial := runAt(1)
	procs := runtime.NumCPU()
	if procs < 4 {
		procs = 4
	}
	if parallel := runAt(procs); serial != parallel {
		t.Fatal("cluster result differs between GOMAXPROCS=1 and NumCPU")
	}
}

// Sampling composes with the cluster model: the sampled run drives the
// same serial stepper, so it must produce a provenance-carrying result
// without error.
func TestClusterSamplingComposes(t *testing.T) {
	cfg := oscoresCfg(policy.HardwarePredictor, OSCores{Enabled: true, K: 2, Async: true})
	cfg.Sampling = DefaultSampling()
	r, _ := MustNew(cfg).RunSampled()
	if r.Sampling == nil {
		t.Fatal("sampled run missing sampling provenance")
	}
	if r.OSCores == nil || r.OSCores.K != 2 {
		t.Fatal("sampled cluster run missing OSCores provenance")
	}
	if r.Throughput <= 0 {
		t.Fatalf("throughput %v", r.Throughput)
	}
}

// DepthN raises the effective threshold under backlog, so it can only
// reduce (or retain) off-load volume relative to the same config without
// modulation.
func TestClusterDepthNReducesOffloads(t *testing.T) {
	at := func(depth int) uint64 {
		cfg := oscoresCfg(policy.HardwarePredictor, OSCores{Enabled: true, K: 2, DepthN: depth})
		cfg.UserCores = 4
		return MustNew(cfg).Run().Offloads
	}
	plain := at(0)
	damped := at(5000)
	if plain == 0 {
		t.Fatal("no off-loads in undamped run")
	}
	if damped > plain {
		t.Fatalf("DepthN=5000 off-loaded more (%d) than DepthN=0 (%d)", damped, plain)
	}
}
