package sim

import (
	"testing"

	"offloadsim/internal/coherence"
	"offloadsim/internal/core"
	"offloadsim/internal/migration"
	"offloadsim/internal/policy"
	"offloadsim/internal/workloads"
)

func apacheProfile(t *testing.T) *workloads.Profile {
	t.Helper()
	p, ok := workloads.ByName("apache")
	if !ok {
		t.Fatal("apache profile missing")
	}
	return p
}

func mustKey(t *testing.T, c Config) string {
	t.Helper()
	k, err := CanonicalKey(c)
	if err != nil {
		t.Fatalf("CanonicalKey: %v", err)
	}
	return k
}

// The same logical configuration written in different forms must produce
// one key: default-filled vs zero coherence, uniform Workloads slice vs
// single Workload, named vs custom migration engine of equal latency,
// stale tuner state with DynamicN off.
func TestCanonicalKeyEquivalentForms(t *testing.T) {
	prof := apacheProfile(t)
	base := DefaultConfig(prof)
	want := mustKey(t, base)

	t.Run("zero coherence equals default coherence", func(t *testing.T) {
		c := DefaultConfig(prof)
		c.Coherence = coherence.Config{}
		if got := mustKey(t, c); got != want {
			t.Errorf("zero-coherence key %s != default key %s", got, want)
		}
	})

	t.Run("stale NumNodes is ignored", func(t *testing.T) {
		c := DefaultConfig(prof)
		c.Coherence.NumNodes = 7 // New overrides it from the core count
		if got := mustKey(t, c); got != want {
			t.Errorf("NumNodes=7 key %s != default key %s", got, want)
		}
	})

	t.Run("uniform workloads slice collapses", func(t *testing.T) {
		c := DefaultConfig(prof)
		c.UserCores = 2
		c.Coherence = coherence.DefaultConfig()
		k1 := mustKey(t, c)

		c2 := c
		c2.Workload = nil
		c2.Workloads = []*workloads.Profile{prof, prof}
		if k2 := mustKey(t, c2); k2 != k1 {
			t.Errorf("uniform slice key %s != single-workload key %s", k2, k1)
		}
	})

	t.Run("migration engine name does not matter", func(t *testing.T) {
		c := DefaultConfig(prof)
		c.Migration = migration.Aggressive() // 100 cycles
		k1 := mustKey(t, c)
		c.Migration = migration.Custom(100)
		if k2 := mustKey(t, c); k2 != k1 {
			t.Errorf("aggressive key %s != custom-100 key %s", k2, k1)
		}
	})

	t.Run("tuner ignored when DynamicN off", func(t *testing.T) {
		c := DefaultConfig(prof)
		c.Tuner = core.DefaultTunerConfig() // set but unused
		if got := mustKey(t, c); got != want {
			t.Errorf("stale-tuner key %s != default key %s", got, want)
		}
	})

	t.Run("zero OSCoreSlots equals one", func(t *testing.T) {
		a := DefaultConfig(prof)
		a.OSCoreSlots = 0
		b := DefaultConfig(prof)
		b.OSCoreSlots = 1
		if ka, kb := mustKey(t, a), mustKey(t, b); ka != kb {
			t.Errorf("slots=0 key %s != slots=1 key %s", ka, kb)
		}
	})

	t.Run("baseline ignores the off-load transport", func(t *testing.T) {
		a := DefaultConfig(prof)
		a.Policy = policy.Baseline
		a.Migration = migration.Conservative()
		b := DefaultConfig(prof)
		b.Policy = policy.Baseline
		b.Migration = migration.Aggressive()
		if ka, kb := mustKey(t, a), mustKey(t, b); ka != kb {
			t.Errorf("baseline keys differ across migration engines: %s vs %s", ka, kb)
		}
	})
}

// Every behaviorally significant field must separate keys — above all the
// seed, since the cache would otherwise conflate distinct sample points.
func TestCanonicalKeyDiscriminates(t *testing.T) {
	prof := apacheProfile(t)
	base := mustKey(t, DefaultConfig(prof))

	mutate := map[string]func(*Config){
		"seed":           func(c *Config) { c.Seed = 2 },
		"threshold":      func(c *Config) { c.Threshold = 100 },
		"latency":        func(c *Config) { c.Migration = migration.Custom(5000) },
		"policy":         func(c *Config) { c.Policy = policy.DynamicInstrumentation },
		"cores":          func(c *Config) { c.UserCores = 2 },
		"os slots":       func(c *Config) { c.OSCoreSlots = 2 },
		"measure budget": func(c *Config) { c.MeasureInstrs = 2_000_000 },
		"warmup budget":  func(c *Config) { c.WarmupInstrs = 0 },
		"workload": func(c *Config) {
			p, ok := workloads.ByName("derby")
			if !ok {
				panic("derby profile missing")
			}
			c.Workload = p
		},
		"predictor org":   func(c *Config) { c.DirectMappedPredictor = true },
		"cold predictor":  func(c *Config) { c.ColdPredictor = true },
		"instrument only": func(c *Config) { c.InstrumentOnly = true },
		"memory latency":  func(c *Config) { c.Coherence = coherence.DefaultConfig(); c.Coherence.Memory.Latency = 999 },
	}
	for name, mut := range mutate {
		c := DefaultConfig(prof)
		mut(&c)
		if got := mustKey(t, c); got == base {
			t.Errorf("mutating %s did not change the canonical key", name)
		}
	}
}

func TestCanonicalKeyRejectsInvalid(t *testing.T) {
	c := DefaultConfig(apacheProfile(t))
	c.UserCores = 0
	if _, err := CanonicalKey(c); err == nil {
		t.Error("expected error for UserCores=0")
	}
	c = Config{}
	if _, err := CanonicalKey(c); err == nil {
		t.Error("expected error for zero config")
	}
}

func TestCanonicalizeProducesRunnableConfig(t *testing.T) {
	c := DefaultConfig(apacheProfile(t))
	c.Coherence = coherence.Config{}
	cc, err := Canonicalize(c)
	if err != nil {
		t.Fatalf("Canonicalize: %v", err)
	}
	if _, err := New(cc); err != nil {
		t.Fatalf("New(canonicalized): %v", err)
	}
}
