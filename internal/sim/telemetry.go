package sim

import (
	"fmt"

	"offloadsim/internal/core"
	"offloadsim/internal/policy"
	"offloadsim/internal/stats"
	"offloadsim/internal/telemetry"
	"offloadsim/internal/trace"
)

// This file is the simulator side of the telemetry layer
// (internal/telemetry, docs/TELEMETRY.md). Telemetry attaches to a built
// Simulator rather than riding in Config: the Config is the determinism
// and cache-key contract (sim.CanonicalKey), and observing a run must
// not change its identity. Instrumentation is read-only — every emission
// site samples engine state that the simulation already computed, so
// results are byte-identical with tracing on or off, and the disabled
// path costs one nil check per OS segment (bounded by
// `make telemetry-overhead`).

// AttachTelemetry arms tracing for the next Run. opts selects the event
// trace and/or the interval time-series; the returned Tracer yields its
// Capture after Run completes. Trace capture requires cycle-accurate
// execution, so sampled mode (Config.Sampling) is rejected; the detailed
// and parallel engines are both supported — the parallel engine emits
// barrier-resolved off-load events in the same (time, node, seq)
// discipline as its result reconciliation, so trace bytes stay identical
// at any Workers setting. Attach before Run; attaching twice replaces
// the previous tracer.
func (s *Simulator) AttachTelemetry(opts telemetry.Options) (*telemetry.Tracer, error) {
	if s.cfg.Sampling.Enabled {
		return nil, fmt.Errorf("sim: telemetry requires detailed or parallel mode, not sampled " +
			"(functional warming has no cycle-accurate timeline to trace)")
	}
	trc, err := telemetry.New(opts, len(s.users), s.telemetryMeta())
	if err != nil {
		return nil, err
	}
	s.trc = trc
	for i, u := range s.users {
		u.idx = i
		u.trc = trc
	}
	return trc, nil
}

// telemetryMeta describes this simulator's run for trace headers.
func (s *Simulator) telemetryMeta() telemetry.Meta {
	name := s.cfg.profileFor(0).Name
	for i := 1; i < s.cfg.UserCores; i++ {
		if p := s.cfg.profileFor(i); p.Name != name {
			name = "mixed"
			break
		}
	}
	meta := telemetry.Meta{
		Workload:  name,
		Policy:    s.cfg.Policy.String(),
		Threshold: s.cfg.Threshold,
		UserCores: s.cfg.UserCores,
		OSCore:    s.osCore != nil || s.osc != nil,
		Seed:      s.cfg.Seed,
	}
	if s.osc != nil {
		meta.OSCores = s.osc.K()
	}
	return meta
}

// emitDecide records the OS entry and the policy verdict for it. entry
// is the core clock at the privileged-mode transition, before decision
// overhead is charged.
func (u *userCtx) emitDecide(entry uint64, seg *trace.Segment, d policy.Decision) {
	u.trc.Emit(u.idx, telemetry.Event{
		Time: entry, Kind: telemetry.KindOSEntry,
		Sys: int32(seg.Sys), Instrs: int32(seg.Instrs),
	})
	u.trc.Emit(u.idx, telemetry.Event{
		Time: entry, Kind: telemetry.KindPredict,
		Offload: d.Offload, Global: d.Source == core.GlobalPrediction,
		Sys: int32(seg.Sys), Instrs: int32(seg.Instrs),
		Pred: int32(d.Predicted), Cycles: uint64(d.Overhead),
	})
}

// emitOutcome scores the decision against the retired invocation.
func (u *userCtx) emitOutcome(seg *trace.Segment, d policy.Decision) {
	u.trc.Emit(u.idx, telemetry.Event{
		Time: u.clock, Kind: telemetry.KindOutcome,
		Offload: d.Offload, Sys: int32(seg.Sys),
		Instrs: int32(seg.Instrs), Pred: int32(d.Predicted),
		Value: int64(seg.Instrs) - int64(d.Predicted),
	})
}

// emitLocalOS records an invocation completing on its own user core.
func (u *userCtx) emitLocalOS(seg *trace.Segment, cycles uint64) {
	u.trc.Emit(u.idx, telemetry.Event{
		Time: u.clock, Kind: telemetry.KindOSExit,
		Sys: int32(seg.Sys), Cycles: cycles,
	})
}

// emitOffload records one resolved off-load round trip as four events:
// dispatch (leaving the user core), queue wait at the OS core, execution
// on the OS core with its cache warm-up cost, and the return to the
// issuing core. node indexes the issuing core's ring; dispatch is its
// clock when the transfer left, and the caller has already resolved
// start/wait/execCycles/total against the real reservation queue.
func (s *Simulator) emitOffload(node int, seg *trace.Segment,
	dispatch, arrival, start, wait, execCycles, total uint64, backlog int, missDelta uint64) {
	oneWay := uint64(s.cfg.Migration.OneWay)
	sys := int32(seg.Sys)
	s.trc.Emit(node, telemetry.Event{
		Time: dispatch, Kind: telemetry.KindOffloadDispatch, Sys: sys, Cycles: oneWay,
	})
	s.trc.Emit(node, telemetry.Event{
		Time: arrival, Kind: telemetry.KindOffloadQueue, Sys: sys,
		Cycles: wait, Value: int64(backlog),
	})
	s.trc.Emit(node, telemetry.Event{
		Time: start, Kind: telemetry.KindOffloadExecute, Sys: sys, Cycles: execCycles,
	})
	s.trc.Emit(node, telemetry.Event{
		Time: start, Kind: telemetry.KindCacheWarm, Sys: sys, Value: int64(missDelta),
	})
	s.trc.Emit(node, telemetry.Event{
		Time: dispatch + total, Kind: telemetry.KindOffloadReturn, Sys: sys, Cycles: total,
	})
}

// osMisses is the OS core's cumulative private-cache miss count (L1 I+D
// plus its L2): the counter emitOffload differences into cache-warm-up
// events.
func (s *Simulator) osMisses() uint64 {
	return s.osCore.MissCount() + s.sys.L2(s.osNode).Stats.Misses.Value()
}

// runMeasureWithSeries runs the measurement phase cut into
// IntervalInstrs sub-targets, sampling the interval time-series at each
// boundary. The partition cannot perturb the run: runUntil (serial and
// parallel alike) picks which core steps independently of the done
// predicate, so the step sequence — and therefore every result — is
// identical to the single-target measurement loop in Run.
func (s *Simulator) runMeasureWithSeries() {
	cadence := s.trc.IntervalInstrs()
	total := s.cfg.MeasureInstrs
	for {
		// Exit exactly when the single-target loop would: every core at
		// total. (The interval anchor below is the *furthest* core —
		// using it for termination too would end the run while slower
		// cores were still short.)
		allDone := true
		for _, u := range s.users {
			if u.retired-u.retiredAtMeas < total {
				allDone = false
				break
			}
		}
		if allDone {
			return
		}
		target := s.maxMeasured() + cadence
		if target > total {
			target = total
		}
		before := s.probe()
		s.runUntil(func(u *userCtx) bool { return u.retired-u.retiredAtMeas >= target })
		smp := s.sampleDelta(0, before)
		s.trc.RecordInterval(s.intervalPoint(smp, target))
	}
}

// intervalPoint shapes one interval's raw counter deltas into the
// exported time-series sample.
func (s *Simulator) intervalPoint(smp IntervalSample, endInstrs uint64) telemetry.IntervalPoint {
	p := telemetry.IntervalPoint{
		EndInstrs:      endInstrs,
		Instrs:         smp.Instrs,
		Cycles:         smp.Cycles,
		Throughput:     smp.Throughput,
		UserL2HitRate:  stats.Ratio(smp.UserL2Hits, smp.UserL2Accesses),
		UserL1DHitRate: stats.Ratio(smp.UserL1DHits, smp.UserL1DAccesses),
		OSL2HitRate:    stats.Ratio(smp.OSL2Hits, smp.OSL2Accesses),
		OSEntries:      smp.OSEntries,
		Offloads:       smp.Offloads,
		LiveN:          s.users[0].pol.Threshold(),
	}
	if slots := s.osSlotsTotal(); slots > 0 && smp.Cycles > 0 {
		p.OSCoreUtilization = float64(smp.OSBusyCycles) /
			(float64(smp.Cycles) * float64(slots))
		p.QueueDepth = smp.QueueDelaySum / float64(smp.Cycles)
	}
	if smp.QueueDelayCount > 0 {
		p.MeanQueueDelay = smp.QueueDelaySum / float64(smp.QueueDelayCount)
	}
	return p
}
