package sim

import "fmt"

// WarmPolicy selects how non-sampled intervals keep microarchitectural
// state alive between detailed measurement windows.
type WarmPolicy int

const (
	// WarmFunctional replays unsampled intervals in functional-warming
	// mode: segments still flow through the caches, directory and
	// predictor tables (with strided references), but detailed
	// per-instruction cycle accounting is skipped. This is the default
	// and the source of the speedup.
	WarmFunctional WarmPolicy = iota
	// WarmDetailed executes unsampled intervals at full detail. No
	// speedup — the reference mode for isolating extrapolation error
	// from warming error in accuracy studies.
	WarmDetailed
)

// String implements fmt.Stringer.
func (p WarmPolicy) String() string {
	switch p {
	case WarmFunctional:
		return "functional"
	case WarmDetailed:
		return "detailed"
	}
	return fmt.Sprintf("WarmPolicy(%d)", int(p))
}

// Default sampling parameters. Interval length trades measurement
// granularity against mode-switch overhead; the ratio and warm stride
// together set the speedup ceiling, and the detailed warm-up intervals
// repair the cache state strided warming leaves behind before each
// measurement (see docs/SAMPLING.md for the error trade-off measured
// across the four workload classes).
const (
	DefaultSampleInterval     = 20_000
	DefaultSampleRatio        = 50
	DefaultSampleWarmStride   = 32
	DefaultSampleOSWarmStride = 8
	DefaultSampleDetailedWarm = 1
	DefaultSampleWarmupTail   = 250_000
)

// Sampling configures interval-sampled execution (Config.Sampling). The
// zero value disables sampling; an enabled block with zero fields takes
// the documented defaults.
type Sampling struct {
	// Enabled switches the run from full detailed simulation to
	// interval sampling with functional warming.
	Enabled bool
	// IntervalInstrs is the per-core instruction length of one interval
	// (default 10,000).
	IntervalInstrs uint64
	// Ratio measures 1 of every Ratio intervals in full detail; the rest
	// run in warming mode (default 25).
	Ratio int
	// DetailedWarmIntervals is the number of intervals executed at full
	// detail — but not measured — immediately before each measured
	// interval, repairing the cache and recency state that strided
	// warming lets decay (default 2; there is no way to request 0, which
	// would measure cold caches).
	DetailedWarmIntervals int
	// Warming selects the unsampled-interval execution mode (default
	// WarmFunctional). The warmup phase uses the same mode.
	Warming WarmPolicy
	// WarmStride performs 1 of every WarmStride cache references while
	// warming, scaling the observed stall back up for clock estimation
	// (default 8). Stride 1 warms with every reference.
	WarmStride int
	// OSWarmStride is the reference stride of the OS core while warming
	// (default 2, denser than WarmStride). The OS node's L2 is warmed
	// only by the minority off-loaded stream, so at the user stride it
	// would decay faster than any detailed warm-up interval could
	// repair, systematically slowing off-loaded segments.
	OSWarmStride int
	// WarmupTailInstrs is the length of the warmup phase's tail executed
	// at full reference density (stride 1), so the multi-megabyte shared
	// L2 reaches its steady-state contents before measurement begins —
	// strided warming alone populates it WarmStride times too slowly
	// (default 250,000; clamped to WarmupInstrs).
	WarmupTailInstrs uint64
	// Replicas runs that many independent interval-sampled replicas
	// (seeds Seed, Seed+1, ...) and merges them deterministically
	// (default 1). Replicas multiply CPU cost but replay in parallel
	// and tighten the error estimate.
	Replicas int
}

// DefaultSampling returns an enabled block with the default parameters.
func DefaultSampling() Sampling {
	return Sampling{Enabled: true}.withDefaults()
}

// withDefaults fills zero fields of an enabled block; a disabled block
// normalizes to the zero value so detailed configs canonicalize
// identically whatever stale sampling fields they carry.
func (s Sampling) withDefaults() Sampling {
	if !s.Enabled {
		return Sampling{}
	}
	if s.IntervalInstrs == 0 {
		s.IntervalInstrs = DefaultSampleInterval
	}
	if s.Ratio == 0 {
		s.Ratio = DefaultSampleRatio
	}
	if s.DetailedWarmIntervals == 0 {
		s.DetailedWarmIntervals = DefaultSampleDetailedWarm
	}
	if s.WarmStride == 0 {
		s.WarmStride = DefaultSampleWarmStride
	}
	if s.OSWarmStride == 0 {
		s.OSWarmStride = DefaultSampleOSWarmStride
	}
	if s.WarmupTailInstrs == 0 {
		s.WarmupTailInstrs = DefaultSampleWarmupTail
	}
	if s.Replicas == 0 {
		s.Replicas = 1
	}
	return s
}

// Validate checks an enabled block (disabled blocks are always valid).
func (s Sampling) Validate() error {
	if !s.Enabled {
		return nil
	}
	s = s.withDefaults()
	if s.Ratio < 1 {
		return fmt.Errorf("sim: sampling ratio %d < 1", s.Ratio)
	}
	if s.WarmStride < 1 {
		return fmt.Errorf("sim: sampling warm stride %d < 1", s.WarmStride)
	}
	if s.OSWarmStride < 1 {
		return fmt.Errorf("sim: sampling OS warm stride %d < 1", s.OSWarmStride)
	}
	if s.DetailedWarmIntervals < 0 {
		return fmt.Errorf("sim: sampling detailed warm intervals %d < 0", s.DetailedWarmIntervals)
	}
	if s.DetailedWarmIntervals >= s.Ratio {
		return fmt.Errorf("sim: sampling detailed warm intervals %d >= ratio %d", s.DetailedWarmIntervals, s.Ratio)
	}
	if s.Replicas < 1 {
		return fmt.Errorf("sim: sampling replicas %d < 1", s.Replicas)
	}
	if s.Warming != WarmFunctional && s.Warming != WarmDetailed {
		return fmt.Errorf("sim: unknown warm policy %d", int(s.Warming))
	}
	return nil
}
