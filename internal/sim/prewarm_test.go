package sim

import (
	"testing"

	"offloadsim/internal/core"
	"offloadsim/internal/policy"
	"offloadsim/internal/workloads"
)

func TestPrewarmTrainsRareClasses(t *testing.T) {
	// With a primed table, even a short run should make correct
	// decisions on first-sight long calls; a cold table falls back to
	// the (trap-dominated) global average and misses some.
	warm := quickCfg(workloads.Apache(), policy.HardwarePredictor)
	warm.Threshold = 100
	wres := MustNew(warm).Run()

	cold := warm
	cold.ColdPredictor = true
	cres := MustNew(cold).Run()

	if wres.BinaryAccuracy < cres.BinaryAccuracy-0.02 {
		t.Fatalf("primed predictor (%v) should not be less accurate than cold (%v)",
			wres.BinaryAccuracy, cres.BinaryAccuracy)
	}
	if wres.BinaryAccuracy < 0.90 {
		t.Fatalf("primed binary accuracy %v, want >= 0.90 even at quick scale", wres.BinaryAccuracy)
	}
}

func TestPrewarmSkippedForNonPredictorPolicies(t *testing.T) {
	// Baseline and SI have no predictor; construction must not panic
	// and behaviour must be unchanged by the flag.
	for _, kind := range []policy.Kind{policy.Baseline, policy.StaticInstrumentation, policy.Oracle} {
		a := quickCfg(workloads.Derby(), kind)
		b := a
		b.ColdPredictor = true
		ra := MustNew(a).Run()
		rb := MustNew(b).Run()
		if ra.Throughput != rb.Throughput {
			t.Fatalf("%v: ColdPredictor changed a policy without a predictor", kind)
		}
	}
}

func TestOraclePolicyRuns(t *testing.T) {
	cfg := quickCfg(workloads.Apache(), policy.Oracle)
	cfg.Threshold = 100
	r := MustNew(cfg).Run()
	if r.Offloads == 0 {
		t.Fatal("oracle never off-loaded")
	}
	if r.OverheadCycles != 0 {
		t.Fatal("oracle charged decision overhead")
	}
	if r.Policy != "oracle" {
		t.Fatalf("policy label %q", r.Policy)
	}
}

func TestOracleAtLeastAsGoodAsHI(t *testing.T) {
	hi := quickCfg(workloads.Apache(), policy.HardwarePredictor)
	hi.Threshold = 100
	hi.WarmupInstrs = 150_000
	hi.MeasureInstrs = 300_000
	or := hi
	or.Policy = policy.Oracle
	hiRes := MustNew(hi).Run()
	orRes := MustNew(or).Run()
	// Allow a small noise band: different policies perturb the access
	// stream interleaving.
	if orRes.Throughput < hiRes.Throughput*0.97 {
		t.Fatalf("oracle (%v) materially below HI (%v)", orRes.Throughput, hiRes.Throughput)
	}
}

func TestTunerHistoryExposed(t *testing.T) {
	cfg := quickCfg(workloads.Apache(), policy.HardwarePredictor)
	cfg.DynamicN = true
	tc := core.DefaultTunerConfig()
	tc.SampleEpoch = 20_000
	tc.BaseRun = 80_000
	tc.MaxRun = 320_000
	cfg.Tuner = tc
	cfg.WarmupInstrs = 60_000
	cfg.MeasureInstrs = 400_000
	r := MustNew(cfg).Run()
	if len(r.TunerHistory) == 0 {
		t.Fatal("dynamic run recorded no tuner history")
	}
	for _, s := range r.TunerHistory {
		if s.Instructions == 0 {
			t.Fatal("epoch with zero instruction budget")
		}
	}
}
