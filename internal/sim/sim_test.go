package sim

import (
	"testing"

	"offloadsim/internal/core"
	"offloadsim/internal/migration"
	"offloadsim/internal/policy"
	"offloadsim/internal/workloads"
)

// quickCfg returns a configuration small enough for unit tests.
func quickCfg(prof *workloads.Profile, kind policy.Kind) Config {
	cfg := DefaultConfig(prof)
	cfg.Policy = kind
	cfg.WarmupInstrs = 50_000
	cfg.MeasureInstrs = 150_000
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := quickCfg(workloads.Derby(), policy.Baseline)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.Workload = nil
	if bad.Validate() == nil {
		t.Fatal("nil workload accepted")
	}
	bad = good
	bad.UserCores = 0
	if bad.Validate() == nil {
		t.Fatal("zero cores accepted")
	}
	bad = good
	bad.MeasureInstrs = 0
	if bad.Validate() == nil {
		t.Fatal("zero ROI accepted")
	}
	bad = good
	bad.Threshold = -1
	if bad.Validate() == nil {
		t.Fatal("negative threshold accepted")
	}
	bad = good
	bad.DynamicN = true // zero tuner config must be rejected
	if bad.Validate() == nil {
		t.Fatal("dynamic N without tuner config accepted")
	}
}

func TestBaselineRunCompletes(t *testing.T) {
	r := MustNew(quickCfg(workloads.Derby(), policy.Baseline)).Run()
	if r.Instrs < 150_000 {
		t.Fatalf("retired %d instrs, want >= ROI", r.Instrs)
	}
	if r.Throughput <= 0 || r.Throughput > 1 {
		t.Fatalf("throughput %v outside (0,1]", r.Throughput)
	}
	if r.Offloads != 0 {
		t.Fatal("baseline off-loaded")
	}
	if r.OSCoreUtilization != 0 {
		t.Fatal("baseline has no OS core")
	}
	if r.Policy != "baseline" || r.Workload != "derby" {
		t.Fatalf("labels wrong: %+v", r)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := quickCfg(workloads.Apache(), policy.HardwarePredictor)
	a := MustNew(cfg).Run()
	b := MustNew(cfg).Run()
	if a.Throughput != b.Throughput || a.Cycles != b.Cycles || a.Offloads != b.Offloads {
		t.Fatalf("identical configs diverged: %+v vs %+v", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := quickCfg(workloads.Apache(), policy.HardwarePredictor)
	a := MustNew(cfg).Run()
	cfg.Seed = 999
	b := MustNew(cfg).Run()
	if a.Cycles == b.Cycles {
		t.Fatal("different seeds produced identical cycle counts")
	}
}

func TestHardwarePolicyOffloads(t *testing.T) {
	cfg := quickCfg(workloads.Apache(), policy.HardwarePredictor)
	cfg.Threshold = 100
	r := MustNew(cfg).Run()
	if r.Offloads == 0 {
		t.Fatal("HI at N=100 never off-loaded on apache")
	}
	if r.OSCoreUtilization <= 0 {
		t.Fatal("OS core never utilized")
	}
	if r.OffloadRate <= 0 || r.OffloadRate > 1 {
		t.Fatalf("offload rate %v", r.OffloadRate)
	}
	// At this tiny scale only the all-entry accuracy (trap-dominated,
	// quickly trained) is statistically meaningful.
	if r.AllEntryExact < 0.5 {
		t.Fatalf("all-entry predictor accuracy %v too low", r.AllEntryExact)
	}
}

func TestThresholdMonotonicOffloadRate(t *testing.T) {
	rates := []float64{}
	for _, n := range []int{0, 1000, 100000} {
		cfg := quickCfg(workloads.Apache(), policy.HardwarePredictor)
		cfg.Threshold = n
		rates = append(rates, MustNew(cfg).Run().OffloadRate)
	}
	if !(rates[0] > rates[1] && rates[1] > rates[2]) {
		t.Fatalf("offload rate not decreasing in N: %v", rates)
	}
	if rates[0] < 0.99 {
		t.Fatalf("N=0 should off-load everything, got %v", rates[0])
	}
}

func TestInstrumentOnlySuppressesMigration(t *testing.T) {
	cfg := quickCfg(workloads.Apache(), policy.DynamicInstrumentation)
	cfg.Threshold = 0
	cfg.InstrumentOnly = true
	r := MustNew(cfg).Run()
	if r.OSCoreUtilization != 0 {
		t.Fatal("InstrumentOnly still executed on the OS core")
	}
	if r.OverheadCycles == 0 {
		t.Fatal("InstrumentOnly charged no overhead")
	}
}

func TestInstrumentationOverheadHurts(t *testing.T) {
	base := MustNew(quickCfg(workloads.Apache(), policy.Baseline)).Run()
	cfg := quickCfg(workloads.Apache(), policy.DynamicInstrumentation)
	cfg.Threshold = 1 << 30 // never offload
	cfg.InstrumentOnly = true
	di := MustNew(cfg).Run()
	if di.Throughput >= base.Throughput {
		t.Fatalf("DI instrumentation (%.4f) should cost throughput vs baseline (%.4f)",
			di.Throughput, base.Throughput)
	}
}

func TestQueueingEmergesWithMoreCores(t *testing.T) {
	mk := func(cores int) Result {
		cfg := quickCfg(workloads.SPECjbb(), policy.HardwarePredictor)
		cfg.Threshold = 100
		cfg.Migration = migration.Custom(1000)
		cfg.UserCores = cores
		cfg.WarmupInstrs = 30_000
		cfg.MeasureInstrs = 100_000
		return MustNew(cfg).Run()
	}
	one := mk(1)
	four := mk(4)
	if four.MeanQueueDelay <= one.MeanQueueDelay {
		t.Fatalf("queuing delay did not grow with user cores: %v vs %v",
			one.MeanQueueDelay, four.MeanQueueDelay)
	}
	if four.OSCoreUtilization <= one.OSCoreUtilization {
		t.Fatalf("OS core utilization did not grow: %v vs %v",
			one.OSCoreUtilization, four.OSCoreUtilization)
	}
	if len(four.PerCoreIPC) != 4 {
		t.Fatalf("per-core IPC has %d entries", len(four.PerCoreIPC))
	}
}

func TestDynamicNAdjustsThreshold(t *testing.T) {
	cfg := quickCfg(workloads.Apache(), policy.HardwarePredictor)
	cfg.DynamicN = true
	tc := core.DefaultTunerConfig()
	tc.SampleEpoch = 20_000
	tc.BaseRun = 60_000
	tc.MaxRun = 240_000
	cfg.Tuner = tc
	cfg.WarmupInstrs = 50_000
	cfg.MeasureInstrs = 400_000
	r := MustNew(cfg).Run()
	// The tuner must have run: final threshold is a ladder value.
	onLadder := false
	for _, n := range tc.Ladder {
		if r.Threshold == n {
			onLadder = true
		}
	}
	if !onLadder {
		t.Fatalf("final threshold %d not on the tuner ladder", r.Threshold)
	}
}

func TestDirectMappedPredictorOption(t *testing.T) {
	cfg := quickCfg(workloads.Apache(), policy.HardwarePredictor)
	cfg.DirectMappedPredictor = true
	r := MustNew(cfg).Run()
	if r.Offloads == 0 && r.OffloadRate != 0 {
		t.Fatal("inconsistent offload accounting")
	}
	if r.AllEntryExact < 0.4 {
		t.Fatalf("direct-mapped all-entry accuracy too low: %v", r.AllEntryExact)
	}
}

func TestSIOffloadsOnlyLongSyscalls(t *testing.T) {
	cfg := quickCfg(workloads.Apache(), policy.StaticInstrumentation)
	cfg.Migration = migration.Conservative()
	r := MustNew(cfg).Run()
	// SI at conservative instruments few syscalls; offload rate must be
	// far below HI at N=0.
	if r.OffloadRate > 0.10 {
		t.Fatalf("SI offload rate %v too high", r.OffloadRate)
	}
}

func TestResultString(t *testing.T) {
	r := MustNew(quickCfg(workloads.Derby(), policy.Baseline)).Run()
	if s := r.String(); s == "" {
		t.Fatal("empty result string")
	}
}
