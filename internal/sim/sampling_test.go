package sim

import (
	"encoding/json"
	"reflect"
	"testing"

	"offloadsim/internal/core"
	"offloadsim/internal/policy"
	"offloadsim/internal/workloads"
)

// sampledCfg returns a unit-test-sized config with a schedule that
// yields enough measured intervals for the regression estimator.
func sampledCfg(kind policy.Kind) Config {
	cfg := quickCfg(workloads.Apache(), kind)
	cfg.WarmupInstrs = 100_000
	cfg.MeasureInstrs = 1_000_000
	cfg.Sampling = Sampling{
		Enabled:               true,
		IntervalInstrs:        5_000,
		Ratio:                 5,
		DetailedWarmIntervals: 1,
		WarmStride:            8,
		OSWarmStride:          2,
		WarmupTailInstrs:      50_000,
	}
	return cfg
}

func TestSamplingValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Sampling
	}{
		{"ratio", Sampling{Enabled: true, Ratio: -1}},
		{"stride", Sampling{Enabled: true, WarmStride: -2}},
		{"osStride", Sampling{Enabled: true, OSWarmStride: -1}},
		{"warmGEratio", Sampling{Enabled: true, Ratio: 2, DetailedWarmIntervals: 3}},
		{"replicas", Sampling{Enabled: true, Replicas: -4}},
		{"policy", Sampling{Enabled: true, Warming: WarmPolicy(9)}},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: invalid block validated", c.name)
		}
	}
	if err := (Sampling{}).Validate(); err != nil {
		t.Errorf("disabled block rejected: %v", err)
	}
	if err := DefaultSampling().Validate(); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}

	// Config-level: the epoch tuner has no defined semantics across
	// functionally-warmed intervals.
	tuned := sampledCfg(policy.HardwarePredictor)
	tuned.DynamicN = true
	tuned.Tuner = core.DefaultTunerConfig()
	if err := tuned.Validate(); err == nil {
		t.Error("Sampling+DynamicN validated")
	}
}

func TestSamplingCanonicalKeys(t *testing.T) {
	base := quickCfg(workloads.Apache(), policy.HardwarePredictor)
	key := func(c Config) string {
		k, err := CanonicalKey(c)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	detailed := key(base)

	sampled := base
	sampled.Sampling = Sampling{Enabled: true}
	if key(sampled) == detailed {
		t.Fatal("sampled and detailed configs share a cache key")
	}

	// An enabled block with zero fields canonicalizes to the spelled-out
	// defaults.
	explicit := base
	explicit.Sampling = DefaultSampling()
	if key(explicit) != key(sampled) {
		t.Error("blank enabled block and explicit defaults have different keys")
	}

	// A disabled block with stale knobs canonicalizes to plain detailed.
	stale := base
	stale.Sampling = Sampling{Enabled: false, Ratio: 99, WarmStride: 3}
	if key(stale) != detailed {
		t.Error("disabled block with stale knobs changed the key")
	}
}

func TestRunSampledDisabledFallsBack(t *testing.T) {
	cfg := quickCfg(workloads.Apache(), policy.HardwarePredictor)
	detailed := MustNew(cfg).Run()
	viaSampled, samples := MustNew(cfg).RunSampled()
	if samples != nil {
		t.Fatalf("disabled sampling produced %d interval samples", len(samples))
	}
	if viaSampled.Sampling != nil {
		t.Fatal("disabled sampling attached provenance")
	}
	if !reflect.DeepEqual(detailed, viaSampled) {
		t.Fatal("RunSampled with sampling disabled differs from Run")
	}
}

func TestRunSampledExtrapolates(t *testing.T) {
	cfg := sampledCfg(policy.HardwarePredictor)
	r, samples := MustNew(cfg).RunSampled()

	if r.Sampling == nil {
		t.Fatal("sampled run carries no provenance")
	}
	p := r.Sampling
	if p.Intervals != len(samples) {
		t.Errorf("provenance intervals %d != %d samples", p.Intervals, len(samples))
	}
	if len(samples) < olsMinSamples {
		t.Fatalf("only %d samples; schedule should yield at least %d", len(samples), olsMinSamples)
	}
	if p.Estimator != "regression" {
		t.Errorf("estimator %q, want regression with %d samples", p.Estimator, len(samples))
	}
	if p.SampledFraction <= 0 || p.SampledFraction >= 1 {
		t.Errorf("sampled fraction %v outside (0,1)", p.SampledFraction)
	}
	if p.Replicas != 1 {
		t.Errorf("single run reported %d replicas", p.Replicas)
	}
	if r.Throughput <= 0 || r.Throughput > float64(cfg.UserCores) {
		t.Errorf("extrapolated throughput %v out of range", r.Throughput)
	}
	if r.Instrs < cfg.MeasureInstrs*uint64(cfg.UserCores) {
		t.Errorf("retired %d instrs, want at least the %d measured",
			r.Instrs, cfg.MeasureInstrs*uint64(cfg.UserCores))
	}
	for _, s := range samples {
		if s.Instrs == 0 || s.Cycles == 0 {
			t.Fatalf("interval %d measured empty window", s.Index)
		}
	}
}

func TestRunSampledDeterministic(t *testing.T) {
	cfg := sampledCfg(policy.HardwarePredictor)
	a, _ := MustNew(cfg).RunSampled()
	b, _ := MustNew(cfg).RunSampled()
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatal("identical sampled runs produced different result JSON")
	}
}

// WarmDetailed executes every interval at full detail, so the only
// error left is extrapolating from the measured subset; the estimate
// must land close to the fully detailed run.
func TestRunSampledWarmDetailedTracksDetailed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run comparison")
	}
	cfg := sampledCfg(policy.HardwarePredictor)
	cfg.MeasureInstrs = 2_000_000
	detailed := MustNew(cfg).Run()

	cfg.Sampling.Warming = WarmDetailed
	sampled, _ := MustNew(cfg).RunSampled()
	// The run is deterministic, so the tolerance only needs to clear the
	// subset noise of ~100 five-thousand-instruction windows.
	rel := sampled.Throughput/detailed.Throughput - 1
	if rel < -0.08 || rel > 0.08 {
		t.Fatalf("WarmDetailed sampled throughput off by %+.2f%%", 100*rel)
	}
}
