// Quantum-synchronized parallel detailed execution (docs/PARALLEL.md).
//
// The serial engine steps the globally youngest core one segment at a
// time. The parallel engine instead advances every user core through
// one quantum of simulated cycles concurrently: each core runs against
// its private L1/L2 state plus a frozen snapshot of the shared
// directory (coherence.EpochPort), and every cross-core interaction —
// directory transactions, cache-to-cache traffic, off-loads to the OS
// core — is buffered into per-core event logs. At the quantum barrier a
// serial reconciliation applies the merged logs in a fixed order
// (timestamp, then core id, then per-core sequence), so the result is a
// pure function of the configuration: byte-identical run-to-run at any
// GOMAXPROCS and any Workers setting, though not bit-identical to the
// serial engine (the relaxed synchronization is an accuracy-gated
// modelling approximation, like sampling).
package sim

import (
	"runtime"
	"slices"

	"offloadsim/internal/coherence"
	"offloadsim/internal/parallel"
	"offloadsim/internal/trace"
)

// defaultOSCPIEstimate prices an off-loaded segment's OS-core execution
// before CPI calibration has seen enough detailed instructions. Only
// the intra-quantum interleaving depends on it: the barrier true-up
// replaces every estimate with the resolved cost.
const defaultOSCPIEstimate = 2.0

// offloadEvent is one off-load deferred to the quantum barrier. The
// segment is copied by value, freezing its private rng stream position,
// so the OS core replays at the barrier exactly the references the
// serial engine would have replayed at decide time.
type offloadEvent struct {
	seg     trace.Segment
	arrival uint64 // user clock + one-way transfer at issue
	est     uint64 // round-trip estimate charged during the quantum
	node    int32
	seq     uint32
}

// parRuntime is the Simulator's lazily built parallel-engine state.
type parRuntime struct {
	workers int
	quantum uint64
	ports   []*coherence.EpochPort
	// freeAt is each core's private view of the OS core's earliest free
	// context: seeded from the real reservation queue at the quantum
	// start and advanced by the core's own estimated off-loads, so a
	// core that off-loads repeatedly inside one quantum models its own
	// queuing. Cross-core contention resolves at the barrier.
	freeAt   []uint64
	offloads [][]offloadEvent
	merged   []offloadEvent
	osCPI    float64
	quanta   uint64
}

func (s *Simulator) parRuntimeInit() *parRuntime {
	pr := &parRuntime{
		workers:  parallel.Resolve(s.cfg.Parallel.Workers, runtime.GOMAXPROCS(0), len(s.users)),
		quantum:  s.cfg.Parallel.Quantum,
		freeAt:   make([]uint64, len(s.users)),
		offloads: make([][]offloadEvent, len(s.users)),
	}
	for _, u := range s.users {
		pr.ports = append(pr.ports, s.sys.NewEpochPort(u.core.Node()))
	}
	return pr
}

// runUntilParallel is runUntil's quantum-barrier counterpart: the done
// predicate is evaluated only at barriers, where the shared state is
// consistent, and — like the serial loop — cores that satisfy it early
// keep executing until every core does.
func (s *Simulator) runUntilParallel(done func(*userCtx) bool) {
	if s.par == nil {
		s.par = s.parRuntimeInit()
		for i, u := range s.users {
			u.core.SetPort(s.par.ports[i])
		}
	}
	for {
		allDone := true
		for _, u := range s.users {
			if !done(u) {
				allDone = false
				break
			}
		}
		if allDone {
			return
		}
		s.runQuantum(s.par)
	}
}

// runQuantum advances every user core to the barrier horizon
// min(clocks)+Quantum on the worker pool, then reconciles serially.
func (s *Simulator) runQuantum(pr *parRuntime) {
	t := s.users[0].clock
	for _, u := range s.users[1:] {
		if u.clock < t {
			t = u.clock
		}
	}
	t += pr.quantum

	if s.osQueue != nil {
		free := s.osQueue.FreeAt()
		for i := range pr.freeAt {
			pr.freeAt[i] = free
		}
		_, osCPI := s.osCore.CalibratedCPI()
		if osCPI <= 0 {
			osCPI = defaultOSCPIEstimate
		}
		pr.osCPI = osCPI
	}

	parallel.Run(pr.workers, len(s.users), func(i int) {
		u := s.users[i]
		for u.clock < t {
			s.stepParallel(u, pr, i)
		}
	})

	s.sys.ReconcileEpoch(pr.ports)
	s.resolveOffloads(pr)
	pr.quanta++
}

// stepParallel is step() under quantum isolation: identical control
// flow, with two substitutions. Memory traffic flows through the core's
// EpochPort (installed via SetPort), and an off-load is priced from the
// epoch-start queue snapshot and deferred to the barrier instead of
// executing on the OS core immediately.
func (s *Simulator) stepParallel(u *userCtx, pr *parRuntime, i int) {
	u.seg = u.gen.Next()
	seg := &u.seg
	pr.ports[i].SetTime(u.clock)
	if !seg.IsOS() {
		u.clock += u.core.RunSegment(seg)
		u.advance(seg)
		return
	}

	entry := u.clock
	d := u.pol.Decide(seg)
	if u.trc != nil {
		// Mid-quantum events carry the engine's within-quantum clock —
		// the same estimated timeline the engine itself runs on, so the
		// emission is deterministic at any Workers setting.
		u.emitDecide(entry, seg, d)
	}
	if d.Overhead > 0 {
		u.core.Stall(uint64(d.Overhead))
		u.clock += uint64(d.Overhead)
	}

	if d.Offload && !s.cfg.InstrumentOnly && s.osCore != nil {
		oneWay := uint64(s.cfg.Migration.OneWay)
		arrival := u.clock + oneWay
		execEst := uint64(float64(seg.Instrs)*pr.osCPI + 0.5)
		if execEst < uint64(seg.Instrs) {
			execEst = uint64(seg.Instrs)
		}
		wait := uint64(0)
		if pr.freeAt[i] > arrival {
			wait = pr.freeAt[i] - arrival
		}
		pr.freeAt[i] = arrival + wait + execEst
		est := oneWay + wait + execEst + oneWay
		pr.offloads[i] = append(pr.offloads[i], offloadEvent{
			seg:     *seg,
			arrival: arrival,
			est:     est,
			node:    int32(i),
			seq:     uint32(len(pr.offloads[i])),
		})
		u.core.Idle(est)
		u.clock += est
	} else {
		cycles := u.core.RunSegment(seg)
		u.clock += cycles
		if u.trc != nil {
			u.emitLocalOS(seg, cycles)
		}
	}
	u.pol.Observe(seg, d, seg.Instrs)
	if u.trc != nil {
		u.emitOutcome(seg, d)
	}
	u.advance(seg)
}

// resolveOffloads executes the quantum's deferred off-loads serially on
// the real OS core in (arrival, core, sequence) order — the order the
// serial engine's reservation queue would have seen them — and replaces
// each issuing core's estimated round trip with the resolved cost.
func (s *Simulator) resolveOffloads(pr *parRuntime) {
	pr.merged = pr.merged[:0]
	for i := range pr.offloads {
		pr.merged = append(pr.merged, pr.offloads[i]...)
		pr.offloads[i] = pr.offloads[i][:0]
	}
	if len(pr.merged) == 0 {
		return
	}
	slices.SortFunc(pr.merged, func(a, b offloadEvent) int {
		if a.arrival != b.arrival {
			if a.arrival < b.arrival {
				return -1
			}
			return 1
		}
		if a.node != b.node {
			return int(a.node) - int(b.node)
		}
		return int(a.seq) - int(b.seq)
	})
	oneWay := uint64(s.cfg.Migration.OneWay)
	for i := range pr.merged {
		ev := &pr.merged[i]
		// Barrier-resolved telemetry: samples bracket the model's own
		// calls, emitted serially in the same (arrival, node, seq) order
		// as the resolution itself — so every core's ring receives its
		// off-load events in issue order at any Workers setting.
		var backlog int
		var missBase uint64
		if s.trc != nil {
			backlog = s.osQueue.Backlog(ev.arrival)
			missBase = s.osMisses()
		}
		execCycles := s.osCore.RunSegment(&ev.seg)
		start, wait := s.osQueue.Reserve(ev.arrival, execCycles)
		total := oneWay + wait + execCycles + oneWay
		u := s.users[ev.node]
		u.core.AdjustIdle(int64(total) - int64(ev.est))
		if total >= ev.est {
			u.clock += total - ev.est
		} else {
			u.clock -= ev.est - total
		}
		if s.trc != nil {
			s.emitOffload(int(ev.node), &ev.seg, ev.arrival-oneWay, ev.arrival,
				start, wait, execCycles, total, backlog, s.osMisses()-missBase)
		}
	}
}
