// Package sim assembles the full simulated system: user cores running
// workload traces, an optional dedicated OS core, the coherent memory
// hierarchy, an off-loading policy per user core, the migration engine and
// the dynamic threshold tuner. It reproduces the paper's experimental
// setup (§IV): the baseline executes everything on a single core with one
// private L2; off-loading configurations add an OS core with its own L2,
// kept coherent by the directory protocol.
//
// The simulation is discrete-event at segment granularity: user cores
// advance local clocks segment by segment, scheduled in clock order, and
// off-loaded invocations serialize through the OS core's reservation
// queue (so OS-core contention and queuing delay emerge naturally, §V-C).
package sim

import (
	"fmt"

	"offloadsim/internal/coherence"
	"offloadsim/internal/core"
	"offloadsim/internal/cpu"
	"offloadsim/internal/migration"
	"offloadsim/internal/oscore"
	"offloadsim/internal/policy"
	"offloadsim/internal/rng"
	"offloadsim/internal/syscalls"
	"offloadsim/internal/telemetry"
	"offloadsim/internal/trace"
	"offloadsim/internal/workloads"
)

// Config describes one simulation run.
type Config struct {
	// Workload is the benchmark profile every user core runs.
	Workload *workloads.Profile
	// Workloads optionally assigns a distinct profile to each user core
	// (consolidated-server scenarios, §I's motivation); when set, its
	// length must equal UserCores and it overrides Workload.
	Workloads []*workloads.Profile
	// PhaseProfiles, when non-empty, makes every user core alternate
	// between these profiles and its base profile every PhaseInstrs
	// instructions — the program-phase behaviour the §III-B tuner must
	// re-adapt to.
	PhaseProfiles []*workloads.Profile
	// PhaseInstrs is the phase length in instructions (required when
	// PhaseProfiles is set).
	PhaseInstrs uint64
	// Policy selects the off-loading decision mechanism.
	Policy policy.Kind
	// Overheads are the per-entry decision costs.
	Overheads policy.Overheads
	// Threshold is the static off-load threshold N in instructions
	// (predictor-based policies only).
	Threshold int
	// DynamicN enables the §III-B epoch tuner, which overrides
	// Threshold after the first epoch.
	DynamicN bool
	// Tuner parameterizes the dynamic tuner when DynamicN is set.
	Tuner core.TunerConfig
	// Migration is the off-load transport.
	Migration migration.Engine
	// UserCores is the number of user cores sharing the one OS core.
	UserCores int
	// OSCoreSlots is the OS core's hardware context count: 1 (default)
	// is the paper's non-SMT core; >1 models the SMT extension §V-C
	// suggests for serving multiple user cores.
	OSCoreSlots int
	// InstrumentOnly charges decision overhead but suppresses all
	// migrations — the Figure 1 configuration that isolates software
	// instrumentation cost.
	InstrumentOnly bool
	// DirectMappedPredictor selects the 1500-entry tag-less predictor
	// organization instead of the 200-entry CAM.
	DirectMappedPredictor bool
	// ColdPredictor disables profile-priming of DI/HI predictor tables.
	// By default tables start primed with each syscall class's nominal
	// length — the counterpart of the offline profiling SI is granted,
	// and the state the hardware converges to within the first tens of
	// millions of instructions of a paper-scale run. Our measurement
	// windows are ~1000x shorter, so an unprimed rare-class first
	// encounter (one execve mispredicted onto the user core) would
	// otherwise dominate an entire run.
	ColdPredictor bool

	// WarmupInstrs and MeasureInstrs are per-user-core instruction
	// budgets; statistics reset after warmup.
	WarmupInstrs  uint64
	MeasureInstrs uint64

	// Sampling, when enabled, replaces full detailed execution with
	// interval sampling plus functional warming (see RunSampled and
	// internal/sample). Disabled by default; zero-valued knobs of an
	// enabled block take the documented defaults.
	Sampling Sampling

	// Parallel, when enabled, runs detailed execution with the
	// quantum-synchronized parallel engine (see RunParallel and
	// docs/PARALLEL.md). Composes with Sampling: detailed intervals run
	// in parallel while warming stays cheap. Disabled by default;
	// zero-valued knobs of an enabled block take the documented
	// defaults.
	Parallel Parallel

	// OSCores, when enabled, generalizes the single OS core into a
	// cluster of K OS cores with per-syscall-class affinity routing,
	// asymmetric core speeds and optional asynchronous dispatch (see
	// internal/oscore and docs/OSCORES.md). Disabled by default; an
	// enabled K=1 synchronous block is the legacy model and
	// canonicalizes back to disabled.
	OSCores OSCores

	// Seed drives all stochastic behaviour.
	Seed uint64

	// CPU and Coherence configure the hardware substrate; zero values
	// take the Table II defaults.
	CPU       cpu.Config
	Coherence coherence.Config
	// OSCPU, when non-nil, configures the OS core's front end separately
	// from the user cores — the asymmetric-CMP design of Mogul et al.
	// (§VI-B): OS execution tolerates a simpler, lower-power core, e.g.
	// with smaller L1s.
	OSCPU *cpu.Config
}

// DefaultConfig returns a single-user-core Table II configuration running
// the hardware policy at N=1000 over the aggressive migration engine.
func DefaultConfig(prof *workloads.Profile) Config {
	return Config{
		Workload:      prof,
		Policy:        policy.HardwarePredictor,
		Overheads:     policy.DefaultOverheads(),
		Threshold:     1000,
		Migration:     migration.Aggressive(),
		UserCores:     1,
		WarmupInstrs:  300_000,
		MeasureInstrs: 1_000_000,
		Seed:          1,
		CPU:           cpu.DefaultConfig(),
		Coherence:     coherence.DefaultConfig(),
	}
}

// offloadCapable reports whether the configuration includes an OS core.
func (c *Config) offloadCapable() bool {
	return c.Policy != policy.Baseline
}

// profileFor returns the profile user core i runs.
func (c *Config) profileFor(i int) *workloads.Profile {
	if len(c.Workloads) > 0 {
		return c.Workloads[i]
	}
	return c.Workload
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if len(c.Workloads) > 0 {
		if len(c.Workloads) != c.UserCores {
			return fmt.Errorf("sim: %d per-core workloads for %d cores", len(c.Workloads), c.UserCores)
		}
		for i, p := range c.Workloads {
			if p == nil {
				return fmt.Errorf("sim: nil workload for core %d", i)
			}
			if err := p.Validate(); err != nil {
				return err
			}
		}
	} else {
		if c.Workload == nil {
			return fmt.Errorf("sim: nil workload")
		}
		if err := c.Workload.Validate(); err != nil {
			return err
		}
	}
	if c.OSCoreSlots < 0 {
		return fmt.Errorf("sim: negative OSCoreSlots")
	}
	if len(c.PhaseProfiles) > 0 {
		if c.PhaseInstrs == 0 {
			return fmt.Errorf("sim: PhaseProfiles set without PhaseInstrs")
		}
		for i, p := range c.PhaseProfiles {
			if p == nil {
				return fmt.Errorf("sim: nil phase profile %d", i)
			}
			if err := p.Validate(); err != nil {
				return err
			}
		}
	}
	if err := c.Overheads.Validate(); err != nil {
		return err
	}
	if err := c.Migration.Validate(); err != nil {
		return err
	}
	if c.UserCores < 1 {
		return fmt.Errorf("sim: UserCores %d < 1", c.UserCores)
	}
	if c.MeasureInstrs == 0 {
		return fmt.Errorf("sim: MeasureInstrs must be positive")
	}
	if c.Threshold < 0 {
		return fmt.Errorf("sim: negative threshold")
	}
	if err := c.CPU.Validate(); err != nil {
		return err
	}
	if c.OSCPU != nil {
		if err := c.OSCPU.Validate(); err != nil {
			return err
		}
	}
	if c.DynamicN {
		if err := c.Tuner.Validate(); err != nil {
			return err
		}
	}
	if err := c.Sampling.Validate(); err != nil {
		return err
	}
	// The §III-B tuner adapts on per-epoch feedback; functional warming
	// changes what it would observe between measured windows, so the
	// combination has no well-defined semantics.
	if c.Sampling.Enabled && c.DynamicN {
		return fmt.Errorf("sim: Sampling cannot be combined with DynamicN")
	}
	if err := c.Parallel.Validate(); err != nil {
		return err
	}
	// The tuner's epoch feedback reads cross-core state (pooled hit
	// rates, the shared clock horizon) mid-run; under relaxed quantum
	// synchronization that feedback is stale by up to a quantum per
	// core, so the adapted thresholds would depend on the quantum. Keep
	// the combination rejected rather than silently approximate.
	if c.Parallel.Enabled && c.DynamicN {
		return fmt.Errorf("sim: Parallel cannot be combined with DynamicN")
	}
	if err := c.OSCores.Validate(); err != nil {
		return err
	}
	// The parallel engine's quantum barriers reconcile one OS core's
	// reservations; multi-queue routing and async return slots would need
	// their own cross-quantum reconciliation discipline. Reject the
	// combination rather than silently approximate it. (A block that
	// collapses to the legacy model — K=1, synchronous, symmetric — is
	// fine: it runs the untouched single-OS-core path.)
	if c.OSCores.withDefaults().Enabled && c.Parallel.Enabled {
		return fmt.Errorf("sim: Parallel cannot be combined with OSCores")
	}
	return nil
}

// userCtx is the per-user-core simulation state.
type userCtx struct {
	core *cpu.Core
	gen  trace.Source
	pol  policy.Policy
	tun  *core.Tuner

	clock         uint64
	retired       uint64 // workload instructions retired (incl. off-loaded)
	osInstrs      uint64 // privileged instructions retired (subset of retired)
	measureStart  uint64 // clock at measurement start
	retiredAtMeas uint64

	// epoch bookkeeping for the dynamic tuner
	epochRetired uint64
	epochTarget  uint64
	snapClock    uint64
	snapRetired  uint64

	// tuningEnabled gates the epoch machinery: the tuner only samples
	// once warmup ends, so cold-cache transients cannot masquerade as
	// threshold quality.
	tuningEnabled bool

	// hooks installed by the Simulator so advance() can reach system
	// state without a back-pointer
	epochHitRateFn func() float64
	resnapshot     func()

	// seg is the in-flight segment, reused across steps so handing the
	// policy and cores a pointer never forces a heap escape.
	seg trace.Segment

	// idx is the core's index; trc the attached tracer (nil when
	// telemetry is off — every tracer method is nil-safe, and the step
	// functions additionally guard their emission blocks on it).
	idx int
	trc *telemetry.Tracer
}

// Simulator is one configured system ready to run.
type Simulator struct {
	cfg     Config
	sys     *coherence.System
	users   []*userCtx
	osCore  *cpu.Core
	osQueue *migration.OSCore
	osNode  int

	// Multi-OS-core cluster state (Config.OSCores): the K OS cores at
	// nodes osNode..osNode+K-1 and their routing/queueing runtime.
	// Exactly one of (osCore, osQueue) and (osCores, osc) is non-nil in
	// an off-load-capable simulator; legacy configs never build the
	// cluster, so their code path is untouched.
	osCores []*cpu.Core
	osc     *oscore.Cluster

	// par is the parallel engine's runtime state (ports, event buffers,
	// worker count), built lazily on the first parallel quantum.
	par *parRuntime

	// trc is the attached telemetry tracer; nil when telemetry is off
	// (see AttachTelemetry in telemetry.go).
	trc *telemetry.Tracer
}

// New builds a simulator from cfg.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CPU.IFetchInterval == 0 {
		cfg.CPU = cpu.DefaultConfig()
	}
	if cfg.Coherence.NumNodes == 0 {
		cfg.Coherence = coherence.DefaultConfig()
	}
	cfg.Sampling = cfg.Sampling.withDefaults()
	cfg.Parallel = cfg.Parallel.withDefaults()
	cfg.OSCores = cfg.OSCores.withDefaults()
	nodes := cfg.UserCores + cfg.clusterK()
	cfg.Coherence.NumNodes = nodes

	root := rng.New(cfg.Seed)
	sys, err := coherence.New(cfg.Coherence, root.Fork())
	if err != nil {
		return nil, err
	}
	s := &Simulator{cfg: cfg, sys: sys, osNode: cfg.UserCores}

	space := &trace.AddressSpace{}
	kernel := trace.NewKernelLayout(space, root.Fork())

	for i := 0; i < cfg.UserCores; i++ {
		c, err := cpu.New(i, i, cfg.CPU, sys)
		if err != nil {
			return nil, err
		}
		prof := cfg.profileFor(i)
		base, err := trace.NewGenerator(prof, i, kernel, space, root.Fork())
		if err != nil {
			return nil, err
		}
		var gen trace.Source = base
		if len(cfg.PhaseProfiles) > 0 {
			gens := []*trace.Generator{base}
			for _, pp := range cfg.PhaseProfiles {
				pg, err := trace.NewGenerator(pp, i, kernel, space, root.Fork())
				if err != nil {
					return nil, err
				}
				gens = append(gens, pg)
			}
			gen = trace.NewPhased(gens, cfg.PhaseInstrs)
		}
		pol, err := s.buildPolicy()
		if err != nil {
			return nil, err
		}
		if !cfg.ColdPredictor {
			prewarmPolicy(pol, prof)
			for _, pp := range cfg.PhaseProfiles {
				prewarmPolicy(pol, pp)
			}
		}
		ctx := &userCtx{core: c, gen: gen, pol: pol}
		if cfg.DynamicN && supportsThreshold(cfg.Policy) {
			tun, err := core.NewTuner(cfg.Tuner, prof.ExpectedOSShare())
			if err != nil {
				return nil, err
			}
			ctx.tun = tun
			ctx.epochTarget = tun.EpochLength()
			pol.SetThreshold(tun.Threshold())
			ctx.snapshotEpoch(s)
		}
		s.users = append(s.users, ctx)
	}
	if cfg.offloadCapable() {
		osCPU := cfg.CPU
		if cfg.OSCPU != nil {
			osCPU = *cfg.OSCPU
		}
		if cfg.OSCores.Enabled {
			// Cluster mode: K OS cores at consecutive nodes, each with
			// its own private hierarchy, sharing one routing fabric.
			// Both strings passed Validate, so they must parse.
			k := cfg.OSCores.K
			aff, err := oscore.ParseAffinity(cfg.OSCores.Affinity, k)
			if err != nil {
				return nil, err
			}
			speeds, err := oscore.ParseAsymmetry(cfg.OSCores.Asymmetry, k)
			if err != nil {
				return nil, err
			}
			for q := 0; q < k; q++ {
				oc, err := cpu.New(s.osNode+q, s.osNode+q, osCPU, sys)
				if err != nil {
					return nil, err
				}
				s.osCores = append(s.osCores, oc)
			}
			s.osc = oscore.NewCluster(k, cfg.OSCoreSlots, aff, speeds,
				cfg.OSCores.Rebalance, cfg.OSCores.AsyncSlots, cfg.UserCores)
		} else {
			oc, err := cpu.New(s.osNode, s.osNode, osCPU, sys)
			if err != nil {
				return nil, err
			}
			s.osCore = oc
			s.osQueue = migration.NewOSCore(cfg.OSCoreSlots)
		}
	}
	return s, nil
}

// MustNew panics on configuration errors.
func MustNew(cfg Config) *Simulator {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// prewarmPolicy primes a predictor-based policy's table with the nominal
// run length of every (syscall, argument class) pair in the workload's
// mix. Two updates raise the entry confidence above the global-fallback
// gate.
func prewarmPolicy(pol policy.Policy, prof *workloads.Profile) {
	eng := policy.Engine(pol)
	if eng == nil {
		return
	}
	pred := eng.Predictor()
	for _, m := range prof.Mix {
		spec := syscalls.Lookup(m.ID)
		for c := 0; c < spec.ArgClasses; c++ {
			astate := trace.SyscallAState(m.ID, c)
			pred.Update(astate, spec.Length(c))
			pred.Update(astate, spec.Length(c))
		}
	}
	pred.Accuracy().Reset()
}

func supportsThreshold(k policy.Kind) bool {
	return k == policy.DynamicInstrumentation || k == policy.HardwarePredictor || k == policy.Oracle
}

func (s *Simulator) buildPolicy() (policy.Policy, error) {
	switch s.cfg.Policy {
	case policy.Baseline:
		return policy.NewBaseline(), nil
	case policy.StaticInstrumentation:
		return policy.NewStatic(s.cfg.Migration.OneWay, s.cfg.Overheads), nil
	case policy.DynamicInstrumentation, policy.HardwarePredictor:
		var pred core.Predictor
		if s.cfg.DirectMappedPredictor {
			pred = core.NewDirectMappedPredictor(core.DefaultDirectMappedEntries)
		} else {
			pred = core.NewCAMPredictor(core.DefaultCAMEntries)
		}
		if s.cfg.Policy == policy.DynamicInstrumentation {
			return policy.NewDynamic(pred, s.cfg.Threshold, s.cfg.Overheads), nil
		}
		return policy.NewHardware(pred, s.cfg.Threshold, s.cfg.Overheads), nil
	case policy.Oracle:
		return policy.NewOracle(s.cfg.Threshold), nil
	}
	return nil, fmt.Errorf("sim: unknown policy kind %d", int(s.cfg.Policy))
}

// snapshotEpoch records the state the epoch feedback is measured against.
func (u *userCtx) snapshotEpoch(s *Simulator) {
	u.snapClock = u.clock
	u.snapRetired = u.retired
}

// epochFeedback returns the core's throughput (workload instructions per
// elapsed cycle, migrations and queuing included) over the epoch. §III-B
// proposes the pooled user+OS L2 hit rate as the feedback counter; in
// this memory model that signal is anti-correlated with throughput (an
// idle OS core contributes no misses, so high thresholds always look
// "better"), so the sampler is fed epoch IPC instead — an equally
// available hardware counter. The sampling framework is unchanged; the
// substitution is recorded in DESIGN.md.
func (u *userCtx) epochFeedback(s *Simulator) float64 {
	cycles := u.clock - u.snapClock
	if cycles == 0 {
		return 0
	}
	return float64(u.retired-u.snapRetired) / float64(cycles)
}

// step advances one user core by one segment.
func (s *Simulator) step(u *userCtx) {
	u.seg = u.gen.Next()
	seg := &u.seg
	if !seg.IsOS() {
		cycles := u.core.RunSegment(seg)
		u.clock += cycles
		u.advance(seg)
		return
	}

	entry := u.clock
	// Queue-depth-aware dynamic N (Config.OSCores.DepthN): raise the
	// effective threshold by DepthN per busy context on the designated
	// queue, so a backlogged OS core only receives work long enough to
	// amortize the extra wait. The base threshold is restored right after
	// the decision — the modulation is per-invocation, and composes with
	// the epoch tuner (which retunes the base).
	depthBase, depthMod := 0, false
	if s.osc != nil && s.cfg.OSCores.DepthN > 0 && supportsThreshold(s.cfg.Policy) {
		depthBase = u.pol.Threshold()
		des := s.osc.Designated(syscalls.CategoryOf(seg.Sys))
		u.pol.SetThreshold(depthBase + s.cfg.OSCores.DepthN*s.osc.Backlog(des, u.clock))
		depthMod = true
	}
	d := u.pol.Decide(seg)
	if depthMod {
		u.pol.SetThreshold(depthBase)
	}
	if u.trc != nil {
		u.emitDecide(entry, seg, d)
	}
	if d.Overhead > 0 {
		u.core.Stall(uint64(d.Overhead))
		u.clock += uint64(d.Overhead)
	}

	if d.Offload && !s.cfg.InstrumentOnly && s.osc != nil {
		s.clusterOffload(u, seg)
	} else if d.Offload && !s.cfg.InstrumentOnly && s.osCore != nil {
		oneWay := uint64(s.cfg.Migration.OneWay)
		dispatch := u.clock
		arrival := dispatch + oneWay
		// Telemetry samples are read-only and taken around — never
		// inside — the model's own calls, so the simulated outcome is
		// identical with tracing on or off.
		var backlog int
		var missBase uint64
		if u.trc != nil {
			backlog = s.osQueue.Backlog(arrival)
			missBase = s.osMisses()
		}
		execCycles := s.osCore.RunSegment(seg)
		start, wait := s.osQueue.Reserve(arrival, execCycles)
		total := oneWay + wait + execCycles + oneWay
		u.core.Idle(total)
		u.clock += total
		if u.trc != nil {
			s.emitOffload(u.idx, seg, dispatch, arrival, start, wait,
				execCycles, total, backlog, s.osMisses()-missBase)
		}
	} else {
		// A locally executed OS segment is still an OS boundary: any
		// outstanding fire-and-forget returns reconcile before the core
		// re-enters privileged mode.
		if s.osc != nil {
			s.drainAsync(u)
		}
		cycles := u.core.RunSegment(seg)
		u.clock += cycles
		if u.trc != nil {
			u.emitLocalOS(seg, cycles)
		}
	}
	u.pol.Observe(seg, d, seg.Instrs)
	if u.trc != nil {
		u.emitOutcome(seg, d)
	}
	u.advance(seg)
}

// advance updates retirement and epoch bookkeeping after a segment.
func (u *userCtx) advance(seg *trace.Segment) {
	u.retired += uint64(seg.Instrs)
	if seg.IsOS() {
		u.osInstrs += uint64(seg.Instrs)
	}
	if u.tun == nil || !u.tuningEnabled {
		return
	}
	u.epochRetired += uint64(seg.Instrs)
	if u.epochRetired < u.epochTarget {
		return
	}
	u.epochRetired = 0
	// Feed the epoch's hit rate back; the tuner may change N.
	u.tun.ReportEpoch(u.epochHitRateFn())
	u.pol.SetThreshold(u.tun.Threshold())
	u.epochTarget = u.tun.EpochLength()
	u.resnapshot()
	if u.trc != nil {
		u.trc.Emit(u.idx, telemetry.Event{
			Time: u.clock, Kind: telemetry.KindRetune,
			Sys: -1, Value: int64(u.tun.Threshold()),
		})
	}
}

func (s *Simulator) installEpochHooks() {
	for _, u := range s.users {
		u := u
		u.epochHitRateFn = func() float64 { return u.epochFeedback(s) }
		u.resnapshot = func() { u.snapshotEpoch(s) }
	}
}

// Run executes warmup plus measurement and returns the results.
func (s *Simulator) Run() Result {
	s.installEpochHooks()

	// Warmup: run until every user core has retired WarmupInstrs.
	if s.cfg.WarmupInstrs > 0 {
		s.runUntil(func(u *userCtx) bool { return u.retired >= s.cfg.WarmupInstrs })
	}
	s.resetAfterWarmup()

	// Measurement: run until every user core retires MeasureInstrs more.
	// With an interval time-series attached the window is cut into
	// cadence sub-targets — a pure repartition of the same step sequence
	// (see runMeasureWithSeries).
	if s.trc.IntervalInstrs() > 0 {
		s.runMeasureWithSeries()
	} else {
		s.runUntil(func(u *userCtx) bool {
			return u.retired-u.retiredAtMeas >= s.cfg.MeasureInstrs
		})
	}
	return s.collect()
}

// runUntil steps the system in clock order until every user core
// satisfies done. Cores that finish early keep executing — freezing them
// would skew the per-core clocks and corrupt the shared OS-core timeline
// (a fast compute tenant would appear to submit requests millions of
// cycles "in the past" of a slow server tenant). Throughput is a ratio,
// so the extra segments do not bias per-core results.
func (s *Simulator) runUntil(done func(*userCtx) bool) {
	if s.cfg.Parallel.Enabled {
		s.runUntilParallel(done)
		return
	}
	for {
		allDone := true
		for _, u := range s.users {
			if !done(u) {
				allDone = false
				break
			}
		}
		if allDone {
			return
		}
		s.step(s.minClock())
	}
}

// minClock returns the user core with the smallest local clock.
func (s *Simulator) minClock() *userCtx {
	best := s.users[0]
	for _, u := range s.users[1:] {
		if u.clock < best.clock {
			best = u
		}
	}
	return best
}

func (s *Simulator) resetAfterWarmup() {
	s.sys.ResetStats()
	for _, u := range s.users {
		u.core.ResetStats()
		u.measureStart = u.clock
		u.retiredAtMeas = u.retired
		// Policy decision stats restart; predictor training persists,
		// as warmed hardware state should.
		*u.pol.Stats() = policy.Stats{}
		policy.ResetAccuracyBooks(u.pol)
		if u.tun != nil {
			u.tuningEnabled = true
			u.epochRetired = 0
			u.snapshotEpoch(s)
		}
	}
	if s.osCore != nil {
		s.osCore.ResetStats()
		s.osQueue.ResetStats()
	}
	if s.osc != nil {
		for _, oc := range s.osCores {
			oc.ResetStats()
		}
		s.osc.ResetStats()
	}
	// Telemetry captures describe exactly the measurement window.
	s.trc.Arm()
}
