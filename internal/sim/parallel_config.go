package sim

import "fmt"

// Default parallel-execution parameters. The quantum trades wall-clock
// speedup (fewer barriers) against timing fidelity: cross-core
// coherence and migration effects are only reconciled at quantum
// boundaries, so a longer quantum lets cores act on staler remote state
// (docs/PARALLEL.md quantifies the error curve).
const (
	DefaultParallelQuantum = 1000
)

// Parallel configures quantum-synchronized parallel detailed execution
// (Config.Parallel). The zero value disables it; an enabled block with
// zero fields takes the documented defaults.
//
// In parallel mode the simulated cores are partitioned across worker
// goroutines. Each core advances through one quantum of simulated
// cycles against its own private state plus a frozen snapshot of the
// shared directory, logging every cross-core interaction; at the
// quantum barrier a serial reconciliation pass applies the merged logs
// in a fixed deterministic order. Results are NOT bit-identical to
// serial detailed mode (the relaxed synchronization is a modelling
// approximation, accuracy-gated like sampling), but they ARE
// byte-identical run-to-run at any GOMAXPROCS and any Workers setting.
type Parallel struct {
	// Enabled switches detailed execution from the serial engine to the
	// quantum-synchronized parallel engine.
	Enabled bool
	// Quantum is the synchronization interval in simulated cycles
	// (default 1000). Smaller quanta reconcile cross-core effects more
	// often — less timing error, more barrier overhead.
	Quantum uint64
	// Workers is the number of worker goroutines the simulated cores
	// are partitioned across (default GOMAXPROCS, resolved at run
	// time). Workers never affects simulation results, only wall-clock
	// time, so it is erased from the canonical configuration key.
	Workers int
}

// DefaultParallel returns an enabled block with the default parameters.
func DefaultParallel() Parallel {
	return Parallel{Enabled: true}.withDefaults()
}

// withDefaults fills zero fields of an enabled block; a disabled block
// normalizes to the zero value so serial configs canonicalize
// identically whatever stale parallel fields they carry. Workers is
// left as-is: 0 means "resolve to GOMAXPROCS at run time", and pinning
// a host core count here would make canonical keys host-dependent.
func (p Parallel) withDefaults() Parallel {
	if !p.Enabled {
		return Parallel{}
	}
	if p.Quantum == 0 {
		p.Quantum = DefaultParallelQuantum
	}
	return p
}

// Validate checks an enabled block (disabled blocks are always valid).
func (p Parallel) Validate() error {
	if !p.Enabled {
		return nil
	}
	if p.Workers < 0 {
		return fmt.Errorf("sim: parallel workers %d < 0", p.Workers)
	}
	return nil
}
