package sim

import (
	"testing"

	"offloadsim/internal/core"
	"offloadsim/internal/policy"
	"offloadsim/internal/workloads"
)

func TestPhasedConfigValidation(t *testing.T) {
	cfg := quickCfg(workloads.Apache(), policy.HardwarePredictor)
	cfg.PhaseProfiles = []*workloads.Profile{workloads.Mcf()}
	if cfg.Validate() == nil {
		t.Fatal("phase profiles without PhaseInstrs accepted")
	}
	cfg.PhaseInstrs = 50_000
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid phased config rejected: %v", err)
	}
	cfg.PhaseProfiles = []*workloads.Profile{nil}
	if cfg.Validate() == nil {
		t.Fatal("nil phase profile accepted")
	}
}

func TestPhasedRunBlendsBehaviour(t *testing.T) {
	pure := quickCfg(workloads.Apache(), policy.HardwarePredictor)
	pure.Threshold = 100
	pureRes := MustNew(pure).Run()

	mixed := pure
	mixed.PhaseProfiles = []*workloads.Profile{workloads.Mcf()}
	mixed.PhaseInstrs = 40_000
	mixedRes := MustNew(mixed).Run()

	// Half the time in a nearly-OS-free compute phase: privileged share
	// and off-load traffic must drop relative to pure apache.
	if mixedRes.PrivFraction >= pureRes.PrivFraction {
		t.Fatalf("phased privileged share %v not below pure apache %v",
			mixedRes.PrivFraction, pureRes.PrivFraction)
	}
	if mixedRes.Offloads >= pureRes.Offloads {
		t.Fatalf("phased off-loads %d not below pure %d", mixedRes.Offloads, pureRes.Offloads)
	}
}

func TestTunerSurvivesPhaseChanges(t *testing.T) {
	// §III-B: the epoch mechanism must keep functioning when the program
	// alternates phases; this checks it keeps sampling and ends on a
	// ladder value rather than wedging.
	cfg := quickCfg(workloads.Apache(), policy.HardwarePredictor)
	cfg.PhaseProfiles = []*workloads.Profile{workloads.Mcf()}
	cfg.PhaseInstrs = 60_000
	cfg.DynamicN = true
	tc := core.DefaultTunerConfig()
	tc.SampleEpoch = 25_000
	tc.BaseRun = 100_000
	tc.MaxRun = 400_000
	cfg.Tuner = tc
	cfg.WarmupInstrs = 60_000
	cfg.MeasureInstrs = 500_000
	r := MustNew(cfg).Run()
	if len(r.TunerHistory) < 4 {
		t.Fatalf("tuner sampled only %d epochs across phases", len(r.TunerHistory))
	}
	onLadder := false
	for _, n := range tc.Ladder {
		if r.Threshold == n {
			onLadder = true
		}
	}
	if !onLadder {
		t.Fatalf("final threshold %d off the ladder", r.Threshold)
	}
}
