package sim

import (
	"testing"

	"offloadsim/internal/cpu"
	"offloadsim/internal/migration"
	"offloadsim/internal/policy"
	"offloadsim/internal/workloads"
)

func TestPerCoreWorkloads(t *testing.T) {
	cfg := quickCfg(workloads.Apache(), policy.HardwarePredictor)
	cfg.UserCores = 2
	cfg.Workloads = []*workloads.Profile{workloads.Apache(), workloads.Derby()}
	cfg.Threshold = 100
	r := MustNew(cfg).Run()
	if r.Workload != "mixed" {
		t.Fatalf("mixed run labeled %q", r.Workload)
	}
	if len(r.PerCoreIPC) != 2 {
		t.Fatalf("per-core IPC entries = %d", len(r.PerCoreIPC))
	}
	// Derby is far less OS-intensive, so the two cores must behave
	// visibly differently.
	if r.PerCoreIPC[0] == r.PerCoreIPC[1] {
		t.Fatal("distinct workloads produced identical IPCs")
	}
}

func TestPerCoreWorkloadValidation(t *testing.T) {
	cfg := quickCfg(workloads.Apache(), policy.Baseline)
	cfg.UserCores = 2
	cfg.Workloads = []*workloads.Profile{workloads.Apache()} // wrong length
	if cfg.Validate() == nil {
		t.Fatal("length mismatch accepted")
	}
	cfg.Workloads = []*workloads.Profile{workloads.Apache(), nil}
	if cfg.Validate() == nil {
		t.Fatal("nil per-core workload accepted")
	}
	cfg.Workloads = nil
	cfg.Workload = nil
	if cfg.Validate() == nil {
		t.Fatal("no workload at all accepted")
	}
}

func TestSMTOSCoreReducesQueuing(t *testing.T) {
	mk := func(slots int) Result {
		cfg := quickCfg(workloads.SPECjbb(), policy.HardwarePredictor)
		cfg.Threshold = 100
		cfg.Migration = migration.Custom(1000)
		cfg.UserCores = 4
		cfg.OSCoreSlots = slots
		cfg.WarmupInstrs = 40_000
		cfg.MeasureInstrs = 120_000
		return MustNew(cfg).Run()
	}
	one := mk(1)
	two := mk(2)
	if two.MeanQueueDelay >= one.MeanQueueDelay {
		t.Fatalf("2-context OS core did not reduce queuing: %v vs %v",
			two.MeanQueueDelay, one.MeanQueueDelay)
	}
	if two.Throughput <= one.Throughput*0.95 {
		t.Fatalf("SMT OS core hurt throughput: %v vs %v", two.Throughput, one.Throughput)
	}
}

func TestNegativeSlotsRejected(t *testing.T) {
	cfg := quickCfg(workloads.Derby(), policy.HardwarePredictor)
	cfg.OSCoreSlots = -1
	if cfg.Validate() == nil {
		t.Fatal("negative slots accepted")
	}
}

func TestHeterogeneousOSCore(t *testing.T) {
	// An OS core with quarter-size L1s (the asymmetric-CMP design) must
	// still deliver most of the off-loading benefit: OS working sets are
	// small and heavily reused.
	full := quickCfg(workloads.Apache(), policy.HardwarePredictor)
	full.Threshold = 100
	fullRes := MustNew(full).Run()

	small := full
	osCPU := cpu.DefaultConfig()
	osCPU.L1I.SizeBytes = 8 << 10
	osCPU.L1D.SizeBytes = 8 << 10
	small.OSCPU = &osCPU
	smallRes := MustNew(small).Run()

	if smallRes.Throughput < fullRes.Throughput*0.85 {
		t.Fatalf("quarter-L1 OS core lost %.1f%% throughput; OS execution should tolerate small L1s",
			100*(1-smallRes.Throughput/fullRes.Throughput))
	}
}

func TestHeterogeneousOSCoreValidation(t *testing.T) {
	cfg := quickCfg(workloads.Derby(), policy.HardwarePredictor)
	bad := cpu.DefaultConfig()
	bad.IFetchInterval = 0
	cfg.OSCPU = &bad
	if cfg.Validate() == nil {
		t.Fatal("invalid OS core config accepted")
	}
}
