package sim

import (
	"encoding/json"
	"math"
	"runtime"
	"testing"

	"offloadsim/internal/workloads"
)

// parTestConfig is a small multi-core configuration exercising the
// off-load path, sized so the full determinism sweep stays fast.
func parTestConfig(t *testing.T, name string) Config {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	cfg := DefaultConfig(w)
	cfg.UserCores = 4
	cfg.WarmupInstrs = 50_000
	cfg.MeasureInstrs = 150_000
	cfg.Parallel = DefaultParallel()
	return cfg
}

func runJSON(t *testing.T, cfg Config) ([]byte, Result) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r := s.Run()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b, r
}

// TestParallelDeterminism is the engine's core contract: the result JSON
// is byte-identical run-to-run and across every Workers setting,
// including the inline workers=1 path and an oversubscribed pool.
func TestParallelDeterminism(t *testing.T) {
	cfg := parTestConfig(t, "apache")
	workerSweep := []int{1, 2, runtime.GOMAXPROCS(0), 2 * runtime.GOMAXPROCS(0)}

	cfg.Parallel.Workers = 1
	ref, res := runJSON(t, cfg)
	if res.Parallel == nil {
		t.Fatalf("parallel run missing Parallel provenance")
	}
	if res.Parallel.Quanta == 0 {
		t.Fatalf("parallel run recorded zero quanta")
	}
	for _, wk := range workerSweep {
		cfg.Parallel.Workers = wk
		for rep := 0; rep < 2; rep++ {
			got, _ := runJSON(t, cfg)
			if string(got) != string(ref) {
				t.Fatalf("workers=%d rep=%d: result differs from workers=1 reference\n got: %s\n ref: %s",
					wk, rep, got, ref)
			}
		}
	}
}

// TestParallelInvariantsHold verifies the barrier reconciliation leaves
// the directory and caches exactly consistent: the serial coherence
// paths used for barrier off-load execution panic on any drift, and
// CheckInvariants is the same predicate they rely on.
func TestParallelInvariantsHold(t *testing.T) {
	for _, name := range []string{"apache", "blackscholes"} {
		cfg := parTestConfig(t, name)
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		s.Run()
		if err := s.sys.CheckInvariants(); err != nil {
			t.Fatalf("%s: post-run invariant violation: %v", name, err)
		}
	}
}

// TestParallelQuantumSweep checks the knob works the way the design
// says: shrinking the quantum tightens synchronization, so the
// throughput error versus the serial engine must not grow as the
// quantum shrinks (allowing slack for non-monotonic noise at a point).
func TestParallelQuantumSweep(t *testing.T) {
	cfg := parTestConfig(t, "apache")
	cfg.Parallel = Parallel{}
	_, serial := runJSON(t, cfg)
	if serial.Throughput <= 0 {
		t.Fatalf("serial throughput %v", serial.Throughput)
	}

	errAt := func(q uint64) float64 {
		c := cfg
		c.Parallel = DefaultParallel()
		c.Parallel.Quantum = q
		_, r := runJSON(t, c)
		return math.Abs(r.Throughput-serial.Throughput) / serial.Throughput
	}
	coarse := errAt(100_000)
	mid := errAt(10_000)
	fine := errAt(500)
	t.Logf("quantum sweep error: q=100k %.4f, q=10k %.4f, q=500 %.4f", coarse, mid, fine)
	// Monotonic-ish: the finest quantum must beat (or match within 20%
	// relative slack) the coarsest, and stay inside the accuracy budget.
	if fine > coarse*1.2+1e-9 {
		t.Errorf("finer quantum did not reduce error: q=500 err %.4f vs q=100k err %.4f", fine, coarse)
	}
	if fine > 0.02 {
		t.Errorf("q=500 error %.4f exceeds 2%% budget", fine)
	}
}

// TestParallelSamplingCompose runs both accelerations together and
// checks the composition is itself deterministic and carries both
// provenance blocks.
func TestParallelSamplingCompose(t *testing.T) {
	cfg := parTestConfig(t, "specjbb")
	cfg.MeasureInstrs = 400_000
	cfg.Sampling = DefaultSampling()
	cfg.Sampling.IntervalInstrs = 20_000
	cfg.Sampling.Ratio = 4
	cfg.Sampling.Replicas = 1

	run := func(workers int) []byte {
		c := cfg
		c.Parallel.Workers = workers
		s, err := New(c)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		r, _ := s.RunSampled()
		if r.Sampling == nil || r.Parallel == nil {
			t.Fatalf("composed run missing provenance: sampling=%v parallel=%v", r.Sampling, r.Parallel)
		}
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	ref := run(1)
	for _, wk := range []int{2, runtime.GOMAXPROCS(0)} {
		if got := run(wk); string(got) != string(ref) {
			t.Fatalf("sampled+parallel differs at workers=%d", wk)
		}
	}
}

// TestParallelConfigValidation pins the config surface: Workers < 0 is
// rejected, DynamicN cannot combine with Parallel, and serial runs
// carry no Parallel provenance.
func TestParallelConfigValidation(t *testing.T) {
	cfg := parTestConfig(t, "apache")
	cfg.Parallel.Workers = -1
	if _, err := New(cfg); err == nil {
		t.Errorf("negative Workers accepted")
	}

	cfg = parTestConfig(t, "apache")
	cfg.DynamicN = true
	if _, err := New(cfg); err == nil {
		t.Errorf("Parallel+DynamicN accepted")
	}

	cfg = parTestConfig(t, "apache")
	cfg.Parallel = Parallel{}
	_, r := runJSON(t, cfg)
	if r.Parallel != nil {
		t.Errorf("serial run carries Parallel provenance")
	}
}

// TestParallelCanonicalKey pins the cache-key semantics: Workers is
// erased (it cannot change results), Quantum is kept (it can), and a
// parallel config never shares a key with its serial twin.
func TestParallelCanonicalKey(t *testing.T) {
	cfg := parTestConfig(t, "apache")
	key := func(c Config) string {
		k, err := CanonicalKey(c)
		if err != nil {
			t.Fatalf("CanonicalKey: %v", err)
		}
		return k
	}

	a := cfg
	a.Parallel.Workers = 1
	b := cfg
	b.Parallel.Workers = 8
	if key(a) != key(b) {
		t.Errorf("Workers changed the canonical key")
	}

	q := cfg
	q.Parallel.Quantum = 123
	if key(cfg) == key(q) {
		t.Errorf("Quantum did not change the canonical key")
	}

	serial := cfg
	serial.Parallel = Parallel{}
	if key(cfg) == key(serial) {
		t.Errorf("parallel and serial configs share a canonical key")
	}
}
