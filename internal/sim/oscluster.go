package sim

import (
	"offloadsim/internal/oscore"
	"offloadsim/internal/syscalls"
	"offloadsim/internal/telemetry"
	"offloadsim/internal/trace"
)

// This file is the engine side of the multi-OS-core model
// (Config.OSCores, internal/oscore, docs/OSCORES.md). clusterOffload
// replaces the legacy single-queue off-load block of step() when the
// cluster is built; the legacy path is untouched, so disabled configs
// run byte-identically.
//
// Pricing. A synchronous off-load costs the issuing core the same round
// trip as the legacy model — oneWay + wait + exec + oneWay — with exec
// scaled by the serving core's speed factor. An asynchronous
// (fire-and-forget) off-load costs the issuing core only the outbound
// oneWay: the OS-side work overlaps user execution, following
// Colagrande & Benini's observation that offload latency hides when the
// requester keeps running. The overlap is not free — the return
// descriptor must still be reconciled at the core's next OS boundary
// (or earlier, if the per-core return slots fill), and any cycles the
// core stalls waiting for an unlanded return are charged there.

// clusterOffload executes one off-loaded invocation against the OS-core
// cluster.
func (s *Simulator) clusterOffload(u *userCtx, seg *trace.Segment) {
	async := s.cfg.OSCores.Async && syscalls.SideEffectOnly(seg.Sys)
	if async {
		// Fire-and-forget needs a free return slot; with all slots
		// occupied the core stalls until the earliest outstanding
		// return lands (double buffering at the default budget of 2).
		s.awaitAsyncSlot(u)
	} else {
		// A synchronous off-load is an OS boundary: every outstanding
		// async return reconciles before the round trip begins.
		s.drainAsync(u)
	}

	oneWay := uint64(s.cfg.Migration.OneWay)
	dispatch := u.clock
	arrival := dispatch + oneWay
	cat := syscalls.CategoryOf(seg.Sys)
	q, _ := s.osc.Route(cat, arrival)

	// Telemetry samples are read-only and taken around — never inside —
	// the model's own calls (same discipline as the legacy path).
	var backlog int
	var missBase uint64
	if u.trc != nil {
		backlog = s.osc.Backlog(q, arrival)
		missBase = s.clusterMisses(q)
	}
	execCycles := s.osCores[q].RunSegment(seg)
	scaled := oscore.Scale(execCycles, s.osc.Speed(q))
	start, wait := s.osc.Reserve(q, cat, arrival, scaled)

	if async {
		complete := start + scaled + oneWay
		s.osc.PushAsync(u.idx, complete, q)
		u.core.Idle(oneWay)
		u.clock += oneWay
	} else {
		total := oneWay + wait + scaled + oneWay
		u.core.Idle(total)
		u.clock += total
	}
	if u.trc != nil {
		s.emitClusterOffload(u.idx, seg, dispatch, arrival, start, wait,
			scaled, q, backlog, s.clusterMisses(q)-missBase, async)
	}
}

// awaitAsyncSlot frees a return slot on user core u, reconciling the
// earliest-completing outstanding off-loads until one is available.
func (s *Simulator) awaitAsyncSlot(u *userCtx) {
	for !s.osc.SlotFree(u.idx) {
		complete, q, ok := s.osc.PopEarliest(u.idx)
		if !ok {
			return
		}
		s.reconcileAsync(u, complete, q)
	}
}

// drainAsync reconciles every outstanding fire-and-forget return of user
// core u in issue order — the synchronous OS-boundary drain.
func (s *Simulator) drainAsync(u *userCtx) {
	if s.osc.PendingCount(u.idx) == 0 {
		return
	}
	for _, ret := range s.osc.TakePending(u.idx) {
		s.reconcileAsync(u, ret.Complete, ret.Core)
	}
}

// reconcileAsync lands one return descriptor on its issuing core,
// stalling the core if the descriptor has not arrived yet. The stall is
// idle-eligible, like any migration wait.
func (s *Simulator) reconcileAsync(u *userCtx, complete uint64, q int) {
	var stall uint64
	if complete > u.clock {
		stall = complete - u.clock
		u.core.Idle(stall)
		u.clock = complete
	}
	s.osc.ObserveReconcile(stall)
	if u.trc != nil {
		u.trc.Emit(u.idx, telemetry.Event{
			Time: u.clock, Kind: telemetry.KindAsyncReturn,
			Sys: -1, Cycles: stall, Value: int64(q),
		})
	}
}

// emitClusterOffload records one cluster off-load: dispatch, routed
// enqueue (wait and observed backlog), execution on the serving core
// with its cache warm-up cost, and — synchronous only — the return to
// the issuing core. Async returns are emitted by reconcileAsync when
// they actually land.
func (s *Simulator) emitClusterOffload(node int, seg *trace.Segment,
	dispatch, arrival, start, wait, scaled uint64, q, backlog int, missDelta uint64, async bool) {
	oneWay := uint64(s.cfg.Migration.OneWay)
	sys := int32(seg.Sys)
	s.trc.Emit(node, telemetry.Event{
		Time: dispatch, Kind: telemetry.KindOffloadDispatch, Sys: sys, Cycles: oneWay,
	})
	s.trc.Emit(node, telemetry.Event{
		Time: arrival, Kind: telemetry.KindOSCoreEnqueue, Sys: sys,
		Cycles: wait, Value: int64(backlog),
	})
	s.trc.Emit(node, telemetry.Event{
		Time: start, Kind: telemetry.KindOSCoreExecute, Sys: sys,
		Cycles: scaled, Value: int64(q),
	})
	s.trc.Emit(node, telemetry.Event{
		Time: start, Kind: telemetry.KindCacheWarm, Sys: sys, Value: int64(missDelta),
	})
	if !async {
		total := oneWay + wait + scaled + oneWay
		s.trc.Emit(node, telemetry.Event{
			Time: dispatch + total, Kind: telemetry.KindOffloadReturn, Sys: sys, Cycles: total,
		})
	}
}

// clusterMisses is OS core q's cumulative private-cache miss count (L1
// I+D plus its L2) — the cluster counterpart of osMisses.
func (s *Simulator) clusterMisses(q int) uint64 {
	return s.osCores[q].MissCount() + s.sys.L2(s.osNode+q).Stats.Misses.Value()
}

// osSlotsTotal is the hardware-context capacity of the OS side: the
// single queue's contexts in legacy mode, contexts x K in cluster mode,
// 0 without an OS core.
func (s *Simulator) osSlotsTotal() int {
	switch {
	case s.osQueue != nil:
		return s.osQueue.Slots()
	case s.osc != nil:
		return s.osc.Contexts() * s.osc.K()
	}
	return 0
}
