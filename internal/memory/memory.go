// Package memory models main memory as a uniform-latency backing store, as
// the paper does (Table II: "Main Memory — 350 Cycle Uniform Latency",
// taken from Brown and Tullsen's real-machine timings). The model counts
// reads (fills) and writes (writebacks) and charges a fixed latency for
// fills; writebacks are posted (buffered) and do not stall the requester,
// matching a write-back hierarchy with adequate write buffering.
package memory

import (
	"fmt"

	"offloadsim/internal/stats"
)

// Config describes the memory model.
type Config struct {
	// Latency is the fill latency in cycles.
	Latency int
}

// DefaultConfig returns the paper's 350-cycle uniform latency.
func DefaultConfig() Config { return Config{Latency: 350} }

// Validate rejects negative latency.
func (c Config) Validate() error {
	if c.Latency < 0 {
		return fmt.Errorf("memory: negative latency %d", c.Latency)
	}
	return nil
}

// Memory is the backing store.
type Memory struct {
	cfg        Config
	reads      stats.Counter
	writebacks stats.Counter
}

// New constructs a Memory; invalid configs panic (they are constants in
// practice).
func New(cfg Config) *Memory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Memory{cfg: cfg}
}

// Config returns the configuration.
func (m *Memory) Config() Config { return m.cfg }

// Read charges one line fill and returns its latency.
func (m *Memory) Read() int {
	m.reads.Inc()
	return m.cfg.Latency
}

// Writeback records one posted line writeback (no requester stall).
func (m *Memory) Writeback() {
	m.writebacks.Inc()
}

// Reads returns the fill count.
func (m *Memory) Reads() uint64 { return m.reads.Value() }

// Writebacks returns the writeback count.
func (m *Memory) Writebacks() uint64 { return m.writebacks.Value() }

// Reset clears counters.
func (m *Memory) Reset() {
	m.reads.Reset()
	m.writebacks.Reset()
}

// Local is a private access accumulator, the memory-side counterpart of
// interconnect.Local: quantum-parallel cores count their fills and
// writebacks here and merge at the barrier in fixed node order.
type Local struct {
	cfg        Config
	reads      uint64
	writebacks uint64
}

// NewLocal returns an accumulator with this memory's timing.
func (m *Memory) NewLocal() *Local {
	return &Local{cfg: m.cfg}
}

// Read mirrors Memory.Read against the private counters.
func (l *Local) Read() int {
	l.reads++
	return l.cfg.Latency
}

// Writeback mirrors Memory.Writeback against the private counters.
func (l *Local) Writeback() {
	l.writebacks++
}

// Merge folds the accumulated deltas into the shared counters and
// clears the Local for the next quantum.
func (m *Memory) Merge(l *Local) {
	m.reads.Add(l.reads)
	m.writebacks.Add(l.writebacks)
	*l = Local{cfg: l.cfg}
}
