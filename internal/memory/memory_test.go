package memory

import "testing"

func TestDefaultIsPaperLatency(t *testing.T) {
	m := New(DefaultConfig())
	if got := m.Read(); got != 350 {
		t.Fatalf("fill latency = %d, want 350 (Table II)", got)
	}
}

func TestCounting(t *testing.T) {
	m := New(Config{Latency: 100})
	m.Read()
	m.Read()
	m.Writeback()
	if m.Reads() != 2 || m.Writebacks() != 1 {
		t.Fatalf("reads=%d writebacks=%d", m.Reads(), m.Writebacks())
	}
	m.Reset()
	if m.Reads() != 0 || m.Writebacks() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{Latency: -1}).Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(Config{Latency: -1})
}
