package oscore

import (
	"fmt"
	"strconv"
	"strings"

	"offloadsim/internal/syscalls"
)

// Affinity maps each syscall category to the index of its designated OS
// core (queue).
type Affinity [syscalls.NumCategories]int

// DefaultAffinity spreads the categories round-robin across k queues
// (category index mod k) — the deterministic default when no map is
// configured.
func DefaultAffinity(k int) Affinity {
	var a Affinity
	for i := range a {
		a[i] = i % k
	}
	return a
}

// ParseAffinity parses a deterministic affinity map for k OS cores from
// its config string form: a comma-separated list of class=core pairs,
// where class is a syscall category name (trap, identity, file, network,
// memory, process, ipc, time) or the wildcard "*" setting the default for
// every class not listed explicitly. Classes absent from the map (and
// not covered by a wildcard) spread round-robin by category index. The
// empty string is the pure round-robin default. Examples, for k=2:
//
//	"file=0,network=1"        // I/O split, everything else round-robin
//	"*=0,trap=1"              // traps isolated, all else on core 0
//
// Duplicate classes, unknown names, malformed pairs and core indexes
// outside [0,k) are errors.
func ParseAffinity(s string, k int) (Affinity, error) {
	if k < 1 {
		return Affinity{}, fmt.Errorf("oscore: affinity needs k >= 1 (got %d)", k)
	}
	a := DefaultAffinity(k)
	s = strings.TrimSpace(s)
	if s == "" {
		return a, nil
	}
	seen := map[string]bool{}
	var explicit [syscalls.NumCategories]bool
	wildcard := -1
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return Affinity{}, fmt.Errorf("oscore: empty affinity entry in %q", s)
		}
		name, val, found := strings.Cut(part, "=")
		if !found {
			return Affinity{}, fmt.Errorf("oscore: affinity entry %q is not class=core", part)
		}
		name = strings.TrimSpace(name)
		core, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil {
			return Affinity{}, fmt.Errorf("oscore: affinity entry %q: bad core index", part)
		}
		if core < 0 || core >= k {
			return Affinity{}, fmt.Errorf("oscore: affinity entry %q: core %d outside [0,%d)", part, core, k)
		}
		if seen[name] {
			return Affinity{}, fmt.Errorf("oscore: duplicate affinity class %q", name)
		}
		seen[name] = true
		if name == "*" {
			wildcard = core
			continue
		}
		cat, ok := categoryByName(name)
		if !ok {
			return Affinity{}, fmt.Errorf("oscore: unknown syscall class %q (have: %s and \"*\")",
				name, strings.Join(CategoryNames(), ", "))
		}
		a[cat] = core
		explicit[cat] = true
	}
	if wildcard >= 0 {
		for i := range a {
			if !explicit[i] {
				a[i] = wildcard
			}
		}
	}
	return a, nil
}

// CanonicalAffinity re-renders an affinity string into canonical form:
// parsed, resolved (wildcards and defaults applied) and written as the
// full explicit map in category order — except when the resolved map
// equals the round-robin default, which renders as "", so a blank and a
// spelled-out default share one canonical key.
func CanonicalAffinity(s string, k int) (string, error) {
	a, err := ParseAffinity(s, k)
	if err != nil {
		return "", err
	}
	if a == DefaultAffinity(k) {
		return "", nil
	}
	parts := make([]string, syscalls.NumCategories)
	for i := range a {
		parts[i] = syscalls.Category(i).String() + "=" + strconv.Itoa(a[i])
	}
	return strings.Join(parts, ","), nil
}

// CategoryNames lists the syscall category names in catalog order — the
// valid affinity classes.
func CategoryNames() []string {
	out := make([]string, syscalls.NumCategories)
	for i := range out {
		out[i] = syscalls.Category(i).String()
	}
	return out
}

// categoryByName resolves a category name.
func categoryByName(name string) (syscalls.Category, bool) {
	for i := 0; i < syscalls.NumCategories; i++ {
		if syscalls.Category(i).String() == name {
			return syscalls.Category(i), true
		}
	}
	return 0, false
}
