package oscore

import "testing"

// FuzzParseAffinity drives the affinity grammar with arbitrary strings
// and core counts, checking the parser never panics, every accepted map
// stays in range, and canonicalization is a fixed point (parse →
// render → parse round-trips to the identical map and string).
func FuzzParseAffinity(f *testing.F) {
	f.Add("", 1)
	f.Add("", 4)
	f.Add("file=0,network=1", 2)
	f.Add("*=0,trap=1", 2)
	f.Add(" file = 1 , network = 0 ", 2)
	f.Add("trap=0,identity=1,file=2,network=3,memory=0,process=1,ipc=2,time=3", 4)
	f.Add("disk=0", 2)
	f.Add("file=0,file=1", 2)
	f.Add("file=-1", 2)
	f.Add("file=99", 2)
	f.Add("=,=,=", 3)
	f.Add("*=*", 1)
	f.Fuzz(func(t *testing.T, s string, k int) {
		if k < 1 || k > 64 {
			k = 1 + (k&0x3f+64)%64 // keep k in [1,64] without rejecting inputs
		}
		a, err := ParseAffinity(s, k)
		if err != nil {
			return
		}
		for cat, q := range a {
			if q < 0 || q >= k {
				t.Fatalf("ParseAffinity(%q, %d): category %d routed to %d, outside [0,%d)", s, k, cat, q, k)
			}
		}
		canon, err := CanonicalAffinity(s, k)
		if err != nil {
			t.Fatalf("parsed OK but CanonicalAffinity(%q, %d) failed: %v", s, k, err)
		}
		a2, err := ParseAffinity(canon, k)
		if err != nil {
			t.Fatalf("canonical form %q rejected: %v", canon, err)
		}
		if a2 != a {
			t.Fatalf("canonical round-trip changed map: %v -> %q -> %v", a, canon, a2)
		}
		canon2, err := CanonicalAffinity(canon, k)
		if err != nil || canon2 != canon {
			t.Fatalf("canonicalization not a fixed point: %q -> %q (err %v)", canon, canon2, err)
		}
	})
}
