// Package oscore generalizes the paper's single dedicated OS core into a
// cluster of K OS cores with per-syscall-class affinity routing,
// asymmetric (big/little) core speeds, and asynchronous fire-and-forget
// dispatch for side-effect-only syscall classes (docs/OSCORES.md).
//
// The paper evaluates exactly one OS core and prices every off-load as a
// synchronous round trip. Two strands of follow-on work motivate the
// generalization: Kallurkar & Sarangi's sensitivity analysis shows the
// benefit of core specialization hinges on how dispatch and queue
// overheads amortize across consumers, and Colagrande & Benini's MPSoC
// offload model shows most of the latency hides when the requester keeps
// executing while the offloaded work runs. This package owns the routing
// and queueing state; internal/sim owns the clock/pricing semantics.
//
// Everything here is deterministic: routing ties break toward the lowest
// queue index, async return slots drain in issue order, and no state
// depends on host scheduling.
package oscore

import (
	"offloadsim/internal/migration"
	"offloadsim/internal/syscalls"
)

// AsyncReturn is one outstanding fire-and-forget off-load: the cycle its
// return descriptor lands back at the issuing core, and the OS core that
// served it (telemetry).
type AsyncReturn struct {
	Complete uint64
	Core     int
}

// Cluster is the runtime state of K OS cores serving off-loaded
// invocations: one reservation queue per core (each with the configured
// number of hardware contexts), a per-class designated queue, per-core
// speed factors, and per-user-core async return slots.
type Cluster struct {
	affinity  [syscalls.NumCategories]int
	speeds    []float64
	queues    []*migration.OSCore
	rebalance bool

	// slots is the async return-slot count per user core (0 disables
	// async dispatch); pending holds each user core's outstanding
	// fire-and-forget off-loads in issue order.
	slots   int
	pending [][]AsyncReturn

	// Per-class accounting: requests routed and the queue depth each
	// observed at arrival (for mean-depth reporting and the offsimd
	// per-class gauge).
	classReq   [syscalls.NumCategories]uint64
	classDepth [syscalls.NumCategories]uint64

	rebalances       uint64
	asyncDispatched  uint64
	asyncReconciled  uint64
	asyncStallCycles uint64
}

// NewCluster builds a cluster of k queues with contexts hardware contexts
// each. affinity designates a queue per syscall category, speeds the
// relative frequency of each core (len k), rebalance whether routing may
// divert to a less-loaded queue, asyncSlots the per-user return-slot
// budget (0 = synchronous only) and users the user-core count.
func NewCluster(k, contexts int, affinity [syscalls.NumCategories]int, speeds []float64,
	rebalance bool, asyncSlots, users int) *Cluster {
	c := &Cluster{
		affinity:  affinity,
		speeds:    speeds,
		rebalance: rebalance,
		slots:     asyncSlots,
		pending:   make([][]AsyncReturn, users),
	}
	for i := 0; i < k; i++ {
		c.queues = append(c.queues, migration.NewOSCore(contexts))
	}
	return c
}

// K returns the OS-core count.
func (c *Cluster) K() int { return len(c.queues) }

// Contexts returns the hardware-context count of one OS core.
func (c *Cluster) Contexts() int { return c.queues[0].Slots() }

// Speed returns OS core q's relative speed factor.
func (c *Cluster) Speed(q int) float64 { return c.speeds[q] }

// Queue exposes OS core q's reservation queue (stats collection).
func (c *Cluster) Queue(q int) *migration.OSCore { return c.queues[q] }

// Designated returns the affinity-designated queue for a category.
func (c *Cluster) Designated(cat syscalls.Category) int { return c.affinity[cat] }

// Backlog returns the busy-context count of queue q at the given cycle.
func (c *Cluster) Backlog(q int, now uint64) int { return c.queues[q].Backlog(now) }

// Route picks the queue serving a category-cat request arriving at the
// given cycle. Without rebalancing the affinity-designated queue always
// serves; with it, the least-backlogged queue wins, the designated queue
// keeping ties (cache locality) and lower indexes breaking the rest.
func (c *Cluster) Route(cat syscalls.Category, arrival uint64) (q int, rebalanced bool) {
	des := c.affinity[cat]
	if !c.rebalance || len(c.queues) == 1 {
		return des, false
	}
	desBacklog := c.queues[des].Backlog(arrival)
	best, bestBacklog := des, desBacklog
	for i, queue := range c.queues {
		if i == des {
			continue
		}
		if b := queue.Backlog(arrival); b < bestBacklog {
			best, bestBacklog = i, b
		}
	}
	if best != des && bestBacklog < desBacklog {
		c.rebalances++
		return best, true
	}
	return des, false
}

// Reserve books queue q for a request of the given category arriving at
// arrival with execCycles of (already speed-scaled) execution, recording
// the per-class depth sample, and returns the start cycle and queue wait.
func (c *Cluster) Reserve(q int, cat syscalls.Category, arrival, execCycles uint64) (start, wait uint64) {
	c.classReq[cat]++
	c.classDepth[cat] += uint64(c.queues[q].Backlog(arrival))
	return c.queues[q].Reserve(arrival, execCycles)
}

// Scale converts raw execution cycles into the shared reference clock
// given a core's relative speed: a 0.5x "little" core takes twice the
// cycles. Non-zero work never rounds to zero.
func Scale(cycles uint64, speed float64) uint64 {
	if speed == 1 || cycles == 0 {
		return cycles
	}
	scaled := uint64(float64(cycles)/speed + 0.5)
	if scaled == 0 {
		scaled = 1
	}
	return scaled
}

// AsyncSlots returns the per-user async return-slot budget (0 = sync
// only).
func (c *Cluster) AsyncSlots() int { return c.slots }

// SlotFree reports whether user core u may issue another fire-and-forget
// off-load without waiting.
func (c *Cluster) SlotFree(u int) bool {
	return c.slots > 0 && len(c.pending[u]) < c.slots
}

// PushAsync records a fire-and-forget off-load by user core u completing
// (return descriptor landed) at the given cycle on OS core q.
func (c *Cluster) PushAsync(u int, complete uint64, q int) {
	c.pending[u] = append(c.pending[u], AsyncReturn{Complete: complete, Core: q})
	c.asyncDispatched++
}

// PopEarliest removes and returns user core u's earliest-completing
// outstanding off-load (false if none). Ties break toward issue order.
func (c *Cluster) PopEarliest(u int) (complete uint64, core int, ok bool) {
	p := c.pending[u]
	if len(p) == 0 {
		return 0, 0, false
	}
	best := 0
	for i := 1; i < len(p); i++ {
		if p[i].Complete < p[best].Complete {
			best = i
		}
	}
	s := p[best]
	c.pending[u] = append(p[:best], p[best+1:]...)
	return s.Complete, s.Core, true
}

// PendingCount returns user core u's outstanding fire-and-forget count.
func (c *Cluster) PendingCount(u int) int { return len(c.pending[u]) }

// TakePending removes and returns user core u's outstanding off-loads in
// issue order — the drain at a synchronous OS boundary. The returned
// slice aliases the slot buffer: consume it before the next PushAsync.
func (c *Cluster) TakePending(u int) []AsyncReturn {
	p := c.pending[u]
	c.pending[u] = c.pending[u][:0]
	return p
}

// ObserveReconcile accounts one async return reconciled after the issuing
// core stalled the given cycles for it.
func (c *Cluster) ObserveReconcile(stall uint64) {
	c.asyncReconciled++
	c.asyncStallCycles += stall
}

// OutstandingAsync counts unreconciled fire-and-forget off-loads across
// all user cores.
func (c *Cluster) OutstandingAsync() uint64 {
	var n uint64
	for _, p := range c.pending {
		n += uint64(len(p))
	}
	return n
}

// BusyCycles sums execution cycles booked across all queues.
func (c *Cluster) BusyCycles() uint64 {
	var sum uint64
	for _, q := range c.queues {
		sum += q.BusyCycles.Value()
	}
	return sum
}

// Requests sums requests served across all queues.
func (c *Cluster) Requests() uint64 {
	var sum uint64
	for _, q := range c.queues {
		sum += q.Requests.Value()
	}
	return sum
}

// Utilization returns aggregate busy cycles over the cluster's capacity
// (horizon x total hardware contexts), capped at 1.
func (c *Cluster) Utilization(horizon uint64) float64 {
	if horizon == 0 {
		return 0
	}
	contexts := 0
	for _, q := range c.queues {
		contexts += q.Slots()
	}
	u := float64(c.BusyCycles()) / (float64(horizon) * float64(contexts))
	if u > 1 {
		u = 1
	}
	return u
}

// QueueDelay aggregates the queues' delay statistics: the pooled sum and
// observation count (for the mean) and the maximum across queues.
func (c *Cluster) QueueDelay() (sum float64, n uint64, max float64) {
	for _, q := range c.queues {
		sum += q.QueueDelay.Sum()
		n += q.QueueDelay.N()
		if m := q.QueueDelay.Max(); m > max {
			max = m
		}
	}
	return sum, n, max
}

// ClassStats returns category cat's routed-request count and the mean
// queue depth those requests observed at arrival.
func (c *Cluster) ClassStats(cat syscalls.Category) (requests uint64, meanDepth float64) {
	requests = c.classReq[cat]
	if requests > 0 {
		meanDepth = float64(c.classDepth[cat]) / float64(requests)
	}
	return requests, meanDepth
}

// Rebalances counts requests diverted away from their designated queue.
func (c *Cluster) Rebalances() uint64 { return c.rebalances }

// AsyncStats returns the fire-and-forget counters: dispatches, reconciled
// returns and the cycles issuing cores stalled waiting on reconciles.
func (c *Cluster) AsyncStats() (dispatched, reconciled, stallCycles uint64) {
	return c.asyncDispatched, c.asyncReconciled, c.asyncStallCycles
}

// ResetStats clears the accounting but keeps the queue horizons and
// outstanding async slots, so in-flight work stays consistent across the
// warmup boundary.
func (c *Cluster) ResetStats() {
	for _, q := range c.queues {
		q.ResetStats()
	}
	for i := range c.classReq {
		c.classReq[i] = 0
		c.classDepth[i] = 0
	}
	c.rebalances = 0
	c.asyncDispatched = 0
	c.asyncReconciled = 0
	c.asyncStallCycles = 0
}
