package oscore

import (
	"strings"
	"testing"

	"offloadsim/internal/syscalls"
)

func TestParseAffinity(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		k       int
		want    Affinity // ignored when wantErr
		wantErr string
	}{
		{name: "empty is round-robin", in: "", k: 2,
			want: Affinity{0, 1, 0, 1, 0, 1, 0, 1}},
		{name: "blank is round-robin", in: "  ", k: 3,
			want: Affinity{0, 1, 2, 0, 1, 2, 0, 1}},
		{name: "k1 collapses", in: "", k: 1,
			want: Affinity{}},
		{name: "explicit pair", in: "file=1,network=1", k: 2,
			want: Affinity{0, 1, 1, 1, 0, 1, 0, 1}},
		{name: "whitespace tolerated", in: " file = 1 , network = 0 ", k: 2,
			want: Affinity{0, 1, 1, 0, 0, 1, 0, 1}},
		{name: "wildcard fills unlisted", in: "*=0,trap=1", k: 2,
			want: Affinity{1, 0, 0, 0, 0, 0, 0, 0}},
		{name: "wildcard loses to explicit", in: "file=1,*=0", k: 2,
			want: Affinity{0, 0, 1, 0, 0, 0, 0, 0}},
		{name: "unknown class", in: "disk=0", k: 2, wantErr: "unknown syscall class"},
		{name: "duplicate class", in: "file=0,file=1", k: 2, wantErr: "duplicate"},
		{name: "duplicate wildcard", in: "*=0,*=1", k: 2, wantErr: "duplicate"},
		{name: "missing equals", in: "file", k: 2, wantErr: "not class=core"},
		{name: "bad index", in: "file=x", k: 2, wantErr: "bad core index"},
		{name: "index out of range", in: "file=2", k: 2, wantErr: "outside"},
		{name: "negative index", in: "file=-1", k: 2, wantErr: "outside"},
		{name: "empty entry", in: "file=0,,network=1", k: 2, wantErr: "empty affinity entry"},
		{name: "bad k", in: "", k: 0, wantErr: "k >= 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseAffinity(tc.in, tc.k)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("ParseAffinity(%q, %d) err = %v, want containing %q", tc.in, tc.k, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseAffinity(%q, %d): %v", tc.in, tc.k, err)
			}
			if got != tc.want {
				t.Fatalf("ParseAffinity(%q, %d) = %v, want %v", tc.in, tc.k, got, tc.want)
			}
		})
	}
}

func TestCanonicalAffinity(t *testing.T) {
	// The default map, however spelled, canonicalizes to "".
	for _, s := range []string{"", "trap=0,identity=1", "  file = 0 , network = 1 "} {
		got, err := CanonicalAffinity(s, 2)
		if err != nil {
			t.Fatalf("CanonicalAffinity(%q, 2): %v", s, err)
		}
		if got != "" {
			t.Errorf("CanonicalAffinity(%q, 2) = %q, want \"\" (default map)", s, got)
		}
	}
	// Non-default maps render fully explicit in category order, and
	// re-canonicalizing is a fixed point.
	got, err := CanonicalAffinity("*=0,network=1", 2)
	if err != nil {
		t.Fatal(err)
	}
	want := "trap=0,identity=0,file=0,network=1,memory=0,process=0,ipc=0,time=0"
	if got != want {
		t.Fatalf("CanonicalAffinity = %q, want %q", got, want)
	}
	again, err := CanonicalAffinity(got, 2)
	if err != nil || again != got {
		t.Fatalf("canonical form not a fixed point: %q -> %q (err %v)", got, again, err)
	}
}

func TestParseAsymmetry(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		k       int
		want    []float64
		wantErr string
	}{
		{name: "empty is symmetric", in: "", k: 3, want: []float64{1, 1, 1}},
		{name: "exact list", in: "1,0.5", k: 2, want: []float64{1, 0.5}},
		{name: "broadcast single", in: "0.5", k: 3, want: []float64{0.5, 0.5, 0.5}},
		{name: "whitespace tolerated", in: " 2 , 1 ", k: 2, want: []float64{2, 1}},
		{name: "wrong count", in: "1,1,1", k: 2, wantErr: "lists 3 factors for 2"},
		{name: "not a number", in: "fast,1", k: 2, wantErr: "not a number"},
		{name: "zero factor", in: "0,1", k: 2, wantErr: "outside"},
		{name: "negative factor", in: "-1,1", k: 2, wantErr: "outside"},
		{name: "too big", in: "100", k: 1, wantErr: "outside"},
		{name: "bad k", in: "", k: 0, wantErr: "k >= 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseAsymmetry(tc.in, tc.k)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("ParseAsymmetry(%q, %d) err = %v, want containing %q", tc.in, tc.k, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseAsymmetry(%q, %d): %v", tc.in, tc.k, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("ParseAsymmetry(%q, %d) = %v, want %v", tc.in, tc.k, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("ParseAsymmetry(%q, %d) = %v, want %v", tc.in, tc.k, got, tc.want)
				}
			}
		})
	}
}

func TestCanonicalAsymmetry(t *testing.T) {
	for _, s := range []string{"", "1,1", "1"} {
		got, err := CanonicalAsymmetry(s, 2)
		if err != nil {
			t.Fatalf("CanonicalAsymmetry(%q, 2): %v", s, err)
		}
		if got != "" {
			t.Errorf("CanonicalAsymmetry(%q, 2) = %q, want \"\" (symmetric)", s, got)
		}
	}
	got, err := CanonicalAsymmetry("0.5", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != "0.5,0.5" {
		t.Fatalf("CanonicalAsymmetry(\"0.5\", 2) = %q, want \"0.5,0.5\"", got)
	}
	again, err := CanonicalAsymmetry(got, 2)
	if err != nil || again != got {
		t.Fatalf("canonical form not a fixed point: %q -> %q (err %v)", got, again, err)
	}
}

func TestRouteAffinityAndRebalance(t *testing.T) {
	aff, _ := ParseAffinity("file=0,network=1", 2)
	c := NewCluster(2, 1, aff, SymmetricSpeeds(2), false, 0, 1)
	if q, reb := c.Route(syscalls.CatFile, 0); q != 0 || reb {
		t.Fatalf("no-rebalance Route(file) = %d,%v, want 0,false", q, reb)
	}
	// Load up queue 0; without rebalancing, file traffic still sticks.
	c.Reserve(0, syscalls.CatFile, 0, 1000)
	if q, _ := c.Route(syscalls.CatFile, 10); q != 0 {
		t.Fatal("rebalance disabled but request diverted")
	}

	// With rebalancing, a backlogged designated queue diverts to the
	// idle one, and ties keep the designated queue.
	c = NewCluster(2, 1, aff, SymmetricSpeeds(2), true, 0, 1)
	if q, reb := c.Route(syscalls.CatFile, 0); q != 0 || reb {
		t.Fatalf("tie should keep designated queue, got %d,%v", q, reb)
	}
	c.Reserve(0, syscalls.CatFile, 0, 1000)
	c.Reserve(0, syscalls.CatFile, 0, 1000)
	q, reb := c.Route(syscalls.CatFile, 10)
	if q != 1 || !reb {
		t.Fatalf("Route under backlog = %d,%v, want 1,true", q, reb)
	}
	if c.Rebalances() != 1 {
		t.Fatalf("Rebalances = %d, want 1", c.Rebalances())
	}
}

func TestScale(t *testing.T) {
	if got := Scale(100, 1); got != 100 {
		t.Fatalf("Scale(100, 1) = %d", got)
	}
	if got := Scale(100, 0.5); got != 200 {
		t.Fatalf("Scale(100, 0.5) = %d, want 200", got)
	}
	if got := Scale(100, 2); got != 50 {
		t.Fatalf("Scale(100, 2) = %d, want 50", got)
	}
	if got := Scale(1, 16); got != 1 {
		t.Fatalf("Scale(1, 16) = %d, want 1 (non-zero work never free)", got)
	}
	if got := Scale(0, 0.5); got != 0 {
		t.Fatalf("Scale(0, 0.5) = %d, want 0", got)
	}
}

func TestAsyncSlots(t *testing.T) {
	aff := DefaultAffinity(2)
	c := NewCluster(2, 1, aff, SymmetricSpeeds(2), false, 2, 2)
	if !c.SlotFree(0) {
		t.Fatal("fresh cluster should have free slots")
	}
	c.PushAsync(0, 500, 1)
	c.PushAsync(0, 300, 0)
	if c.SlotFree(0) {
		t.Fatal("both slots filled, SlotFree should be false")
	}
	if !c.SlotFree(1) {
		t.Fatal("slots are per user core")
	}
	if n := c.OutstandingAsync(); n != 2 {
		t.Fatalf("OutstandingAsync = %d, want 2", n)
	}
	// PopEarliest picks the min-Complete entry regardless of issue order.
	complete, core, ok := c.PopEarliest(0)
	if !ok || complete != 300 || core != 0 {
		t.Fatalf("PopEarliest = %d,%d,%v, want 300,0,true", complete, core, ok)
	}
	// TakePending drains the rest in issue order.
	rest := c.TakePending(0)
	if len(rest) != 1 || rest[0].Complete != 500 || rest[0].Core != 1 {
		t.Fatalf("TakePending = %+v, want one {500 1}", rest)
	}
	if c.PendingCount(0) != 0 {
		t.Fatal("drain left pending entries")
	}
	if _, _, ok := c.PopEarliest(0); ok {
		t.Fatal("PopEarliest on empty slots returned ok")
	}

	c.ObserveReconcile(40)
	c.ObserveReconcile(0)
	d, r, stall := c.AsyncStats()
	if d != 2 || r != 2 || stall != 40 {
		t.Fatalf("AsyncStats = %d,%d,%d, want 2,2,40", d, r, stall)
	}
}

func TestClusterStats(t *testing.T) {
	aff, _ := ParseAffinity("*=0", 2)
	c := NewCluster(2, 1, aff, []float64{1, 0.5}, false, 0, 1)
	c.Reserve(0, syscalls.CatFile, 0, 100)
	c.Reserve(0, syscalls.CatFile, 0, 100) // queues behind the first
	c.Reserve(1, syscalls.CatNetwork, 0, 50)
	if got := c.Requests(); got != 3 {
		t.Fatalf("Requests = %d, want 3", got)
	}
	if got := c.BusyCycles(); got != 250 {
		t.Fatalf("BusyCycles = %d, want 250", got)
	}
	req, depth := c.ClassStats(syscalls.CatFile)
	if req != 2 || depth != 0.5 {
		t.Fatalf("ClassStats(file) = %d,%g, want 2,0.5", req, depth)
	}
	sum, n, max := c.QueueDelay()
	if n != 3 || sum != 100 || max != 100 {
		t.Fatalf("QueueDelay = %g,%d,%g, want 100,3,100", sum, n, max)
	}
	// horizon 1000, 2 contexts total -> 250/2000
	if u := c.Utilization(1000); u != 0.125 {
		t.Fatalf("Utilization = %g, want 0.125", u)
	}
	c.ResetStats()
	if c.Requests() != 0 || c.BusyCycles() != 0 || c.Rebalances() != 0 {
		t.Fatal("ResetStats left counters")
	}
	if req, _ := c.ClassStats(syscalls.CatFile); req != 0 {
		t.Fatal("ResetStats left class counters")
	}
}
