package oscore

import (
	"fmt"
	"strconv"
	"strings"
)

// Speed-factor bounds. A factor below 1 is a "little" core (OS execution
// takes proportionally more reference-clock cycles), above 1 a "big"
// core. The bounds reject typos (0, negatives, reversed ratios like 50
// for 0.5) rather than constrain modeling: real DVFS/heterogeneity spans
// well under a 16x spread.
const (
	MinSpeed = 1.0 / 16
	MaxSpeed = 16.0
)

// SymmetricSpeeds returns k speed factors of 1.0.
func SymmetricSpeeds(k int) []float64 {
	s := make([]float64, k)
	for i := range s {
		s[i] = 1
	}
	return s
}

// ParseAsymmetry parses per-OS-core speed factors from the config string
// form: a comma-separated list of k positive factors relative to the
// user cores ("1,0.5" = one full-speed core and one half-speed little
// core). The empty string is symmetric (all 1.0). A single factor
// broadcasts to all k cores. Anything else must list exactly k values
// inside [1/16, 16].
func ParseAsymmetry(s string, k int) ([]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("oscore: asymmetry needs k >= 1 (got %d)", k)
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return SymmetricSpeeds(k), nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != k && len(parts) != 1 {
		return nil, fmt.Errorf("oscore: asymmetry %q lists %d factors for %d OS cores", s, len(parts), k)
	}
	speeds := make([]float64, 0, k)
	for _, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("oscore: asymmetry factor %q is not a number", strings.TrimSpace(part))
		}
		if v < MinSpeed || v > MaxSpeed {
			return nil, fmt.Errorf("oscore: asymmetry factor %g outside [%g, %g]", v, MinSpeed, MaxSpeed)
		}
		speeds = append(speeds, v)
	}
	for len(speeds) < k {
		speeds = append(speeds, speeds[0])
	}
	return speeds, nil
}

// CanonicalAsymmetry re-renders an asymmetry string into canonical form:
// parsed, broadcast and written as exactly k shortest-form factors — or
// "" when every factor is 1.0, so a blank and a spelled-out "1,1" share
// one canonical key.
func CanonicalAsymmetry(s string, k int) (string, error) {
	speeds, err := ParseAsymmetry(s, k)
	if err != nil {
		return "", err
	}
	symmetric := true
	for _, v := range speeds {
		if v != 1 {
			symmetric = false
			break
		}
	}
	if symmetric {
		return "", nil
	}
	parts := make([]string, len(speeds))
	for i, v := range speeds {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, ","), nil
}
