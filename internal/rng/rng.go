// Package rng provides the deterministic pseudo-random number generation
// used throughout the simulator. Every stochastic component of the system
// (workload generators, run-length noise, interrupt arrival, replacement
// tie-breaking) draws from a seeded Source so that whole-system simulations
// are reproducible bit-for-bit across runs and platforms.
//
// The generator is SplitMix64 (Steele, Lea, Flood; JavaOne 2014), chosen for
// its tiny state, full 2^64 period per stream, and the ability to fork
// statistically independent child streams cheaply — each simulated core,
// workload and region walker owns its own stream so adding an access in one
// component never perturbs another.
package rng

import "math"

// Source is a deterministic 64-bit PRNG stream. The zero value is a valid
// stream seeded with 0; use New to seed explicitly.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds yield streams that
// are statistically independent for simulation purposes.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// golden is the 64-bit golden-ratio increment used by SplitMix64.
const golden = 0x9E3779B97F4A7C15

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += golden
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Fork derives a child stream from the current state. The child is
// independent of subsequent draws from the parent, so components can be
// given private streams at construction time.
func (s *Source) Fork() *Source {
	v := s.ForkVal()
	return &v
}

// ForkVal is Fork without the heap allocation: it returns the child
// stream by value, for embedding inside pooled structures. The child
// state is identical to what Fork would have produced.
func (s *Source) ForkVal() Source {
	// Mix the parent's next output through a different finalizer so the
	// child does not share its sequence with the parent.
	v := s.Uint64()
	v ^= v >> 33
	v *= 0xFF51AFD7ED558CCD
	v ^= v >> 33
	return Source{state: v}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Float64 returns a uniform float in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Range returns a uniform integer in [lo, hi] inclusive. It panics if
// hi < lo.
func (s *Source) Range(lo, hi int) int {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Normal returns a draw from the normal distribution with the given mean
// and standard deviation, using the Box-Muller transform.
func (s *Source) Normal(mean, stddev float64) float64 {
	// Avoid log(0) by nudging u1 away from zero.
	u1 := s.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a draw from the log-normal distribution whose underlying
// normal has parameters mu and sigma.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Geometric returns the number of failures before the first success in a
// Bernoulli(p) process. For p >= 1 it returns 0; p <= 0 panics.
func (s *Source) Geometric(p float64) int {
	if p <= 0 {
		panic("rng: Geometric with non-positive p")
	}
	if p >= 1 {
		return 0
	}
	u := s.Float64()
	if u < 1e-300 {
		u = 1e-300
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}
