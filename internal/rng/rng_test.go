package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/1000 draws", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Fork()
	// The child must not replay the parent's sequence.
	p := make([]uint64, 64)
	c := make([]uint64, 64)
	for i := range p {
		p[i] = parent.Uint64()
		c[i] = child.Uint64()
	}
	matches := 0
	for i := range p {
		if p[i] == c[i] {
			matches++
		}
	}
	if matches > 1 {
		t.Fatalf("forked stream matched parent on %d/64 draws", matches)
	}
}

func TestForkDeterminism(t *testing.T) {
	a := New(9)
	b := New(9)
	ca := a.Fork()
	cb := b.Fork()
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatalf("forks of identical parents diverged at draw %d", i)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) returned %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 returned %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) hit rate = %v", p)
	}
	if s.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestRangeInclusive(t *testing.T) {
	s := New(17)
	seenLo, seenHi := false, false
	for i := 0; i < 10000; i++ {
		v := s.Range(5, 8)
		if v < 5 || v > 8 {
			t.Fatalf("Range(5,8) returned %d", v)
		}
		if v == 5 {
			seenLo = true
		}
		if v == 8 {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Fatal("Range(5,8) never produced an endpoint")
	}
	// Degenerate range.
	if v := s.Range(4, 4); v != 4 {
		t.Fatalf("Range(4,4) = %d", v)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(23)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(variance-4) > 0.2 {
		t.Fatalf("Normal variance = %v, want ~4", variance)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(29)
	const p = 0.2
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Geometric(p)
	}
	mean := float64(sum) / n
	want := (1 - p) / p // mean of failures-before-success
	if math.Abs(mean-want) > 0.15 {
		t.Fatalf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
	}
	if s.Geometric(1.0) != 0 {
		t.Fatal("Geometric(1) != 0")
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(31)
	z := NewZipf(s, 100, 1.0)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf rank 0 (%d) not hotter than rank 50 (%d)", counts[0], counts[50])
	}
	// Rank 0 should take roughly 1/H(100) ~ 19% of draws for s=1.
	frac := float64(counts[0]) / n
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("Zipf rank-0 fraction = %v, want ~0.19", frac)
	}
}

func TestZipfBounds(t *testing.T) {
	s := New(37)
	z := NewZipf(s, 8, 1.2)
	for i := 0; i < 10000; i++ {
		v := z.Draw()
		if v < 0 || v >= 8 {
			t.Fatalf("Zipf draw out of range: %d", v)
		}
	}
}

func TestCategoricalProportions(t *testing.T) {
	s := New(41)
	c := MustCategorical(s, []float64{1, 3, 6})
	counts := make([]int, 3)
	const n = 120000
	for i := 0; i < n; i++ {
		counts[c.Draw()]++
	}
	want := []float64{0.1, 0.3, 0.6}
	for i, w := range want {
		got := float64(counts[i]) / n
		if math.Abs(got-w) > 0.02 {
			t.Fatalf("category %d frequency = %v, want ~%v", i, got, w)
		}
	}
}

func TestCategoricalErrors(t *testing.T) {
	s := New(43)
	if _, err := NewCategorical(s, nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewCategorical(s, []float64{0, 0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
	if _, err := NewCategorical(s, []float64{1, -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestCategoricalZeroWeightNeverDrawn(t *testing.T) {
	s := New(47)
	c := MustCategorical(s, []float64{0, 1, 0})
	for i := 0; i < 10000; i++ {
		if v := c.Draw(); v != 1 {
			t.Fatalf("zero-weight category drawn: %d", v)
		}
	}
}

// ForkVal must produce exactly the state Fork would have, so converting
// a call site from one to the other cannot move any random stream.
func TestForkValMatchesFork(t *testing.T) {
	a, b := New(51), New(51)
	for i := 0; i < 100; i++ {
		ca := a.Fork()
		cb := b.ForkVal()
		for j := 0; j < 8; j++ {
			if ca.Uint64() != cb.Uint64() {
				t.Fatalf("ForkVal diverged from Fork at fork %d draw %d", i, j)
			}
		}
	}
}

// The guide-table Zipf search must be index-identical to a plain
// lower-bound search over the full cdf for every draw, including the
// u=0 and bucket-boundary edges — otherwise committed golden results
// would shift.
func TestZipfGuideMatchesLowerBound(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 100, 1024, 70000} {
		z := NewZipf(New(53), n, 1.01)
		src := New(uint64(59 + n))
		for i := 0; i < 20000; i++ {
			u := src.Float64()
			want := lowerBound(z.cdf, u)
			got := z.drawAt(u)
			if got != want {
				t.Fatalf("n=%d u=%v: guided search %d, lower bound %d", n, u, got, want)
			}
		}
		// Boundary values: exact cdf entries and their neighbours.
		for i, c := range z.cdf {
			for _, u := range []float64{c, math.Nextafter(c, 0), math.Nextafter(c, 2)} {
				if u < 0 || u >= 1 {
					continue
				}
				if got, want := z.drawAt(u), lowerBound(z.cdf, u); got != want {
					t.Fatalf("n=%d boundary i=%d u=%v: guided %d, lower bound %d", n, i, u, got, want)
				}
			}
		}
		if got, want := z.drawAt(0), lowerBound(z.cdf, 0); got != want {
			t.Fatalf("n=%d u=0: guided %d, lower bound %d", n, got, want)
		}
	}
}

// Property: Intn is always in range for any positive n and any seed.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		nn := int(n%1000) + 1
		s := New(seed)
		for i := 0; i < 32; i++ {
			v := s.Intn(nn)
			if v < 0 || v >= nn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: equal seeds always produce equal streams.
func TestQuickSeedDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
