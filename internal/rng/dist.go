package rng

import (
	"fmt"
	"math"
	"sort"
)

// Zipf draws ranks in [0, n) following a Zipf distribution with exponent s.
// Low ranks are the most popular. It is used to model hot-set locality in
// workload footprints: a few cache lines absorb most references, with a
// long cold tail, which is the reference behaviour reported for both user
// and OS working sets.
type Zipf struct {
	src *Source
	cdf []float64 // cumulative probability per rank
}

// NewZipf constructs a Zipf sampler over n ranks with exponent s (> 0).
// The construction cost is O(n); samplers are meant to be built once per
// region at workload-setup time.
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	if s <= 0 {
		panic("rng: NewZipf with non-positive exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{src: src, cdf: cdf}
}

// N returns the number of ranks the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw returns a rank in [0, N()).
func (z *Zipf) Draw() int {
	return z.DrawFrom(z.src)
}

// DrawFrom draws a rank using the caller's stream instead of the
// sampler's own. Trace generation uses this to charge every
// per-reference draw to the consuming segment's private stream, so the
// number of references one segment performs can never shift the
// randomness any other segment sees.
func (z *Zipf) DrawFrom(src *Source) int {
	u := src.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Categorical draws from a fixed discrete distribution given by weights.
// It is used for syscall-mix sampling: each benchmark profile assigns a
// weight to every syscall it issues.
type Categorical struct {
	src *Source
	cdf []float64
}

// NewCategorical builds a sampler over len(weights) categories. Weights
// must be non-negative and sum to a positive value.
func NewCategorical(src *Source, weights []float64) (*Categorical, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("rng: categorical needs at least one weight")
	}
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("rng: categorical weight %d is %v", i, w)
		}
		sum += w
		cdf[i] = sum
	}
	if sum <= 0 {
		return nil, fmt.Errorf("rng: categorical weights sum to %v", sum)
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Categorical{src: src, cdf: cdf}, nil
}

// MustCategorical is NewCategorical that panics on invalid weights; for use
// with compile-time-constant profiles.
func MustCategorical(src *Source, weights []float64) *Categorical {
	c, err := NewCategorical(src, weights)
	if err != nil {
		panic(err)
	}
	return c
}

// Draw returns a category index in [0, len(weights)).
func (c *Categorical) Draw() int {
	u := c.src.Float64()
	return sort.SearchFloat64s(c.cdf, u)
}

// K returns the number of categories.
func (c *Categorical) K() int { return len(c.cdf) }
