package rng

import (
	"fmt"
	"math"
)

// lowerBound returns the smallest index i with cdf[i] >= u — the same
// contract as sort.SearchFloat64s, hand-rolled so the comparison is not
// behind a closure call on the simulator's hottest path.
func lowerBound(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Zipf draws ranks in [0, n) following a Zipf distribution with exponent s.
// Low ranks are the most popular. It is used to model hot-set locality in
// workload footprints: a few cache lines absorb most references, with a
// long cold tail, which is the reference behaviour reported for both user
// and OS working sets.
type Zipf struct {
	src *Source
	cdf []float64 // cumulative probability per rank
	// guide is an equi-probability bucket index over cdf: guide[k] is the
	// smallest rank i with cdf[i] >= k/T where T = len(guide)-1. A draw
	// only binary-searches within one bucket, which makes the expected
	// search cost O(1) instead of O(log n) full-array probes. The result
	// is index-identical to a lower-bound search over the whole cdf.
	guide   []int32
	buckets float64 // float64(len(guide) - 1)
}

// NewZipf constructs a Zipf sampler over n ranks with exponent s (> 0).
// The construction cost is O(n); samplers are meant to be built once per
// region at workload-setup time.
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	if s <= 0 {
		panic("rng: NewZipf with non-positive exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{src: src, cdf: cdf, guide: buildGuide(cdf), buckets: guideBuckets(cdf)}
}

// guideBuckets picks the bucket count for a cdf: four buckets per rank,
// so most buckets span a single rank and a draw resolves without any
// binary-search iterations. Clamped so tiny samplers still work and huge
// footprints do not pay unbounded index memory.
func guideBuckets(cdf []float64) float64 {
	t := 4 * len(cdf)
	if t < 16 {
		t = 16
	}
	if t > 1<<18 {
		t = 1 << 18
	}
	return float64(t)
}

// buildGuide computes guide[k] = smallest i with cdf[i] >= k/T in one
// pass over the cdf.
func buildGuide(cdf []float64) []int32 {
	t := int(guideBuckets(cdf))
	guide := make([]int32, t+1)
	i := 0
	for k := 0; k <= t; k++ {
		thr := float64(k) / float64(t)
		for i < len(cdf) && cdf[i] < thr {
			i++
		}
		if i >= len(cdf) {
			guide[k] = int32(len(cdf) - 1)
		} else {
			guide[k] = int32(i)
		}
	}
	return guide
}

// N returns the number of ranks the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw returns a rank in [0, N()).
func (z *Zipf) Draw() int {
	return z.DrawFrom(z.src)
}

// DrawFrom draws a rank using the caller's stream instead of the
// sampler's own. Trace generation uses this to charge every
// per-reference draw to the consuming segment's private stream, so the
// number of references one segment performs can never shift the
// randomness any other segment sees.
func (z *Zipf) DrawFrom(src *Source) int {
	return z.drawAt(src.Float64())
}

// drawAt maps a uniform u in [0, 1) to its rank. It must return exactly
// lowerBound(cdf, u).
func (z *Zipf) drawAt(u float64) int {
	// Rounding in u*T can land one bucket high, never low (u*T >= k
	// exactly implies the rounded product >= k because integers in this
	// range are representable). The bucket search plus the backtrack
	// guard below therefore returns exactly lowerBound(cdf, u).
	k := int(u * z.buckets)
	if k > len(z.guide)-2 {
		k = len(z.guide) - 2
	}
	lo, hi := int(z.guide[k]), int(z.guide[k+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for lo > 0 && z.cdf[lo-1] >= u {
		lo--
	}
	return lo
}

// Categorical draws from a fixed discrete distribution given by weights.
// It is used for syscall-mix sampling: each benchmark profile assigns a
// weight to every syscall it issues.
type Categorical struct {
	src *Source
	cdf []float64
}

// NewCategorical builds a sampler over len(weights) categories. Weights
// must be non-negative and sum to a positive value.
func NewCategorical(src *Source, weights []float64) (*Categorical, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("rng: categorical needs at least one weight")
	}
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("rng: categorical weight %d is %v", i, w)
		}
		sum += w
		cdf[i] = sum
	}
	if sum <= 0 {
		return nil, fmt.Errorf("rng: categorical weights sum to %v", sum)
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Categorical{src: src, cdf: cdf}, nil
}

// MustCategorical is NewCategorical that panics on invalid weights; for use
// with compile-time-constant profiles.
func MustCategorical(src *Source, weights []float64) *Categorical {
	c, err := NewCategorical(src, weights)
	if err != nil {
		panic(err)
	}
	return c
}

// Draw returns a category index in [0, len(weights)).
func (c *Categorical) Draw() int {
	u := c.src.Float64()
	return lowerBound(c.cdf, u)
}

// K returns the number of categories.
func (c *Categorical) K() int { return len(c.cdf) }
