package experiments

import (
	"fmt"
	"io"

	"offloadsim/internal/policy"
	"offloadsim/internal/sim"
	"offloadsim/internal/stats"
)

// OSCoreCountResult holds the multi-OS-core scaling study: every plotted
// group run with 4 user cores off-loading into clusters of K = 1, 2 and
// 4 OS cores (docs/OSCORES.md). It extends the paper's §V-C observation
// — a single OS core saturates under 4 user cores — with the obvious
// next question the paper leaves open: how much of the lost throughput
// does adding OS cores buy back, and where does the queueing collapse?
type OSCoreCountResult struct {
	Groups []string
	Ks     []int
	// Normalized[g][k] is geometric-mean throughput over the group's
	// members, each normalized to its own single-core baseline.
	Normalized [][]float64
	// MeanQueueDelay[g][k] is the arithmetic-mean off-load queue delay
	// in cycles over the group's members.
	MeanQueueDelay [][]float64
	// OSUtilization[g][k] is the mean busy fraction of the cluster
	// (pooled over its K cores).
	OSUtilization [][]float64
}

// OSCoreCountSweep runs the study: HI policy at N=100, 100-cycle
// migration, 4 user cores, backlog rebalancing on so the added cores
// actually absorb load.
func OSCoreCountSweep(o Options) OSCoreCountResult {
	res := OSCoreCountResult{Groups: GroupNames(), Ks: []int{1, 2, 4}}
	for _, group := range res.Groups {
		var norms, queues, utils []float64
		for _, k := range res.Ks {
			var memberNorms []float64
			var queueSum, utilSum float64
			members := o.groupProfiles(group)
			for _, prof := range members {
				base := o.baselineThroughput(prof)
				cfg := o.baseConfig(prof, policy.HardwarePredictor, 100, 100)
				cfg.UserCores = 4
				if k > 1 {
					cfg.OSCores = sim.OSCores{Enabled: true, K: k, Rebalance: true}
				}
				r := o.run(cfg)
				if base > 0 {
					memberNorms = append(memberNorms, r.Throughput/base)
				}
				queueSum += r.MeanQueueDelay
				utilSum += r.OSCoreUtilization
			}
			norms = append(norms, stats.GeoMean(memberNorms))
			queues = append(queues, queueSum/float64(len(members)))
			utils = append(utils, utilSum/float64(len(members)))
		}
		res.Normalized = append(res.Normalized, norms)
		res.MeanQueueDelay = append(res.MeanQueueDelay, queues)
		res.OSUtilization = append(res.OSUtilization, utils)
	}
	return res
}

// Render writes the OS-core-count table.
func (r OSCoreCountResult) Render(w io.Writer) {
	header := []string{"group"}
	for _, k := range r.Ks {
		header = append(header,
			fmt.Sprintf("K=%d norm", k),
			fmt.Sprintf("K=%d queue", k),
			fmt.Sprintf("K=%d util", k))
	}
	var rows [][]string
	for gi, g := range r.Groups {
		row := []string{g}
		for ki := range r.Ks {
			row = append(row,
				fmt.Sprintf("%.3f", r.Normalized[gi][ki]),
				fmt.Sprintf("%.0f cyc", r.MeanQueueDelay[gi][ki]),
				fmt.Sprintf("%.1f%%", 100*r.OSUtilization[gi][ki]))
		}
		rows = append(rows, row)
	}
	renderTable(w, "OS-core-count sweep: 4 user cores, HI N=100, 100-cycle off-load, K OS cores with rebalancing",
		header, rows)
}

// OSCoreSensitivityResult holds the heterogeneous-cluster sensitivity
// grid: each server workload swept over migration latency and OS-core
// speed asymmetry at fixed K=2, in the style of Kallurkar's
// sensitivity studies (PAPERS.md). The grid answers whether off-loading
// survives slow little OS cores: the big/little factors model dedicating
// cheap low-power cores to OS work, and the latency axis prices how far
// away they sit.
type OSCoreSensitivityResult struct {
	Workloads   []string
	Latencies   []int
	Asymmetries []string
	// Normalized[w][l][a] is throughput normalized to the workload's
	// single-core baseline.
	Normalized [][][]float64
}

// OSCoreSensitivity runs the grid: K=2, 4 user cores, HI at N=100.
func OSCoreSensitivity(o Options) OSCoreSensitivityResult {
	res := OSCoreSensitivityResult{
		Workloads:   append([]string{}, serverNames...),
		Latencies:   []int{100, 1000, 5000},
		Asymmetries: []string{"1,1", "1,0.5", "0.5,0.5"},
	}
	for _, wl := range res.Workloads {
		prof := o.groupProfiles(wl)[0]
		base := o.baselineThroughput(prof)
		var wlGrid [][]float64
		for _, lat := range res.Latencies {
			var latRow []float64
			for _, asym := range res.Asymmetries {
				cfg := o.baseConfig(prof, policy.HardwarePredictor, 100, lat)
				cfg.UserCores = 4
				cfg.OSCores = sim.OSCores{
					Enabled: true, K: 2, Asymmetry: asym, Rebalance: true,
				}
				r := o.run(cfg)
				norm := 0.0
				if base > 0 {
					norm = r.Throughput / base
				}
				latRow = append(latRow, norm)
			}
			wlGrid = append(wlGrid, latRow)
		}
		res.Normalized = append(res.Normalized, wlGrid)
	}
	return res
}

// Render writes one latency × asymmetry table per workload.
func (r OSCoreSensitivityResult) Render(w io.Writer) {
	for wi, wl := range r.Workloads {
		header := []string{"latency"}
		for _, a := range r.Asymmetries {
			header = append(header, "asym "+a)
		}
		var rows [][]string
		for li, lat := range r.Latencies {
			row := []string{fmt.Sprintf("%d cyc", lat)}
			for ai := range r.Asymmetries {
				row = append(row, fmt.Sprintf("%.3f", r.Normalized[wi][li][ai]))
			}
			rows = append(rows, row)
		}
		renderTable(w, fmt.Sprintf("OS-core sensitivity grid [%s]: K=2, 4 user cores, HI N=100, normalized throughput", wl),
			header, rows)
	}
}
