package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"offloadsim/internal/policy"
	"offloadsim/internal/sample"
	"offloadsim/internal/sim"
	"offloadsim/internal/workloads"
)

// SamplingAccuracyOptions scales the sampled-vs-detailed validation
// sweep. The defaults reproduce the validation scale documented in
// docs/SAMPLING.md: Figure 4's threshold sweep shape on all four
// workload classes, at a cache scale the detailed warm-up intervals can
// actually keep warm, measured long enough for the regression estimator
// to settle.
type SamplingAccuracyOptions struct {
	// Workloads are the swept workload names (default the four classes:
	// apache, specjbb, derby, blackscholes-as-compute).
	Workloads []string
	// Thresholds is the swept off-load threshold list (default 50, 100,
	// 250 — the rising edge of Figure 4 where accuracy matters most).
	Thresholds []int
	// Seeds are averaged per point; normalized-IPC error is judged on
	// the seed mean (default 1, 2).
	Seeds []uint64
	// WarmupInstrs and MeasureInstrs are per-run budgets (default 1M /
	// 64M).
	WarmupInstrs  uint64
	MeasureInstrs uint64
	// L2SizeBytes overrides the per-node L2 capacity (default 256 KiB —
	// the validation scale; see docs/SAMPLING.md for why full-size L2s
	// bias strided warming).
	L2SizeBytes int
	// Sampling is the schedule under test (default sim.DefaultSampling).
	Sampling sim.Sampling
}

// withDefaults fills zero fields.
func (o SamplingAccuracyOptions) withDefaults() SamplingAccuracyOptions {
	if len(o.Workloads) == 0 {
		o.Workloads = []string{"apache", "specjbb", "derby", "blackscholes"}
	}
	if len(o.Thresholds) == 0 {
		o.Thresholds = []int{50, 100, 250}
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1, 2}
	}
	if o.WarmupInstrs == 0 {
		o.WarmupInstrs = 1_000_000
	}
	if o.MeasureInstrs == 0 {
		o.MeasureInstrs = 64_000_000
	}
	if o.L2SizeBytes == 0 {
		o.L2SizeBytes = 256 * 1024
	}
	if !o.Sampling.Enabled {
		o.Sampling = sim.DefaultSampling()
	}
	return o
}

// SamplingAccuracyResult compares interval-sampled runs against fully
// detailed references across the Figure-4 threshold sweep.
type SamplingAccuracyResult struct {
	Workloads  []string
	Thresholds []int
	Seeds      []uint64
	Sampling   sim.Sampling

	// NormDetailed and NormSampled hold seed-averaged normalized IPC
	// (policy throughput over same-mode baseline throughput), indexed
	// [workload][threshold].
	NormDetailed [][]float64
	NormSampled  [][]float64
	// ErrPct is the normalized-IPC error of sampling in percent,
	// indexed [workload][threshold], on the seed-averaged values.
	ErrPct [][]float64
	// MeanAbsErrPct and MaxAbsErrPct summarize each workload's row.
	MeanAbsErrPct []float64
	MaxAbsErrPct  []float64

	// DetailedSecs and SampledSecs sum the per-run wall time of each
	// mode across the whole sweep (baselines included); Speedup is their
	// ratio.
	DetailedSecs float64
	SampledSecs  float64
	Speedup      float64
}

// SamplingAccuracy runs the Figure-4 threshold sweep twice — fully
// detailed and interval-sampled — and reports per-point normalized-IPC
// error plus the aggregate speedup. Both modes run the baseline too, so
// the comparison is between complete sweeps: sampled error includes
// whatever noise sampling adds to the denominator.
func SamplingAccuracy(o SamplingAccuracyOptions) SamplingAccuracyResult {
	o = o.withDefaults()
	res := SamplingAccuracyResult{
		Workloads:  o.Workloads,
		Thresholds: o.Thresholds,
		Seeds:      o.Seeds,
		Sampling:   o.Sampling,
	}

	cfgFor := func(name string, threshold int, seed uint64, sampled bool) sim.Config {
		prof, ok := workloads.ByName(name)
		if !ok {
			panic(fmt.Sprintf("experiments: unknown workload %q", name))
		}
		cfg := sim.DefaultConfig(prof)
		if threshold < 0 {
			cfg.Policy = policy.Baseline
			cfg.Threshold = 0
		} else {
			cfg.Threshold = threshold
		}
		cfg.WarmupInstrs = o.WarmupInstrs
		cfg.MeasureInstrs = o.MeasureInstrs
		cfg.Seed = seed
		cfg.Coherence.L2.SizeBytes = o.L2SizeBytes
		if sampled {
			cfg.Sampling = o.Sampling
		}
		return cfg
	}

	run := func(cfg sim.Config) (float64, time.Duration) {
		t0 := time.Now()
		var tput float64
		if cfg.Sampling.Enabled {
			r, _, err := sample.Run(cfg)
			if err != nil {
				panic(fmt.Sprintf("experiments: sampled run: %v", err))
			}
			tput = r.Throughput
		} else {
			tput = sim.MustNew(cfg).Run().Throughput
		}
		return tput, time.Since(t0)
	}

	for _, name := range o.Workloads {
		detRow := make([]float64, len(o.Thresholds))
		sampRow := make([]float64, len(o.Thresholds))
		errRow := make([]float64, len(o.Thresholds))
		for _, seed := range o.Seeds {
			detBase, d := run(cfgFor(name, -1, seed, false))
			res.DetailedSecs += d.Seconds()
			sampBase, d2 := run(cfgFor(name, -1, seed, true))
			res.SampledSecs += d2.Seconds()
			for ti, n := range o.Thresholds {
				det, dd := run(cfgFor(name, n, seed, false))
				res.DetailedSecs += dd.Seconds()
				samp, ds := run(cfgFor(name, n, seed, true))
				res.SampledSecs += ds.Seconds()
				detRow[ti] += det / detBase / float64(len(o.Seeds))
				sampRow[ti] += samp / sampBase / float64(len(o.Seeds))
			}
		}
		var meanAbs, maxAbs float64
		for ti := range o.Thresholds {
			errRow[ti] = 100 * (sampRow[ti]/detRow[ti] - 1)
			a := math.Abs(errRow[ti])
			meanAbs += a / float64(len(o.Thresholds))
			if a > maxAbs {
				maxAbs = a
			}
		}
		res.NormDetailed = append(res.NormDetailed, detRow)
		res.NormSampled = append(res.NormSampled, sampRow)
		res.ErrPct = append(res.ErrPct, errRow)
		res.MeanAbsErrPct = append(res.MeanAbsErrPct, meanAbs)
		res.MaxAbsErrPct = append(res.MaxAbsErrPct, maxAbs)
	}
	if res.SampledSecs > 0 {
		res.Speedup = res.DetailedSecs / res.SampledSecs
	}
	return res
}

// Render writes the per-workload error table and the speedup line.
func (r SamplingAccuracyResult) Render(w io.Writer) {
	header := []string{"workload"}
	for _, n := range r.Thresholds {
		header = append(header, fmt.Sprintf("err@N=%d", n))
	}
	header = append(header, "mean|err|", "max|err|")
	var rows [][]string
	for wi, name := range r.Workloads {
		row := []string{name}
		for _, e := range r.ErrPct[wi] {
			row = append(row, fmt.Sprintf("%+.2f%%", e))
		}
		row = append(row,
			fmt.Sprintf("%.2f%%", r.MeanAbsErrPct[wi]),
			fmt.Sprintf("%.2f%%", r.MaxAbsErrPct[wi]))
		rows = append(rows, row)
	}
	renderTable(w, "Sampling accuracy: normalized-IPC error, sampled vs detailed (seed-averaged)",
		header, rows)
	fmt.Fprintf(w, "  speedup: %.1fx (detailed %.1fs / sampled %.1fs, %d seeds)\n\n",
		r.Speedup, r.DetailedSecs, r.SampledSecs, len(r.Seeds))
}
