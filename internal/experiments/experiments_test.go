package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableIRendering(t *testing.T) {
	var buf bytes.Buffer
	TableI(&buf)
	out := buf.String()
	for _, want := range []string{"Linux 2.6.30", "344", "FreeBSD Current", "513", "Windows NT"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I output missing %q", want)
		}
	}
}

func TestTableIIRendering(t *testing.T) {
	var buf bytes.Buffer
	TableII(&buf)
	out := buf.String()
	for _, want := range []string{"In-Order", "Directory Based MESI", "350 Cycle", "32 KB/2-way", "1 MB/16-way"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II output missing %q", want)
		}
	}
}

func TestTableIIIShape(t *testing.T) {
	r := TableIII(QuickOptions())
	if len(r.Workloads) != 3 || len(r.Thresholds) != 4 {
		t.Fatalf("Table III dims: %dx%d", len(r.Workloads), len(r.Thresholds))
	}
	for i, name := range r.Workloads {
		row := r.Utilization[i]
		// Utilization trends down in N (higher threshold -> fewer
		// off-loads). A bounded local rise is allowed: at N=100 the
		// 5,000-cycle migration stalls inflate elapsed time, which
		// dilutes the utilization denominator.
		if row[len(row)-1] > row[0]+0.02 {
			t.Errorf("%s: utilization at N=10000 (%v) exceeds N=100 (%v)", name, row[len(row)-1], row[0])
		}
		for j := 1; j < len(row); j++ {
			if row[j] > row[j-1]+0.12 {
				t.Errorf("%s: utilization rose sharply with N: %v", name, row)
			}
		}
		for _, u := range row {
			if u < 0 || u > 1 {
				t.Errorf("%s: utilization %v out of range", name, u)
			}
		}
	}
	// Apache must use the OS core far more than derby at N=100.
	if r.Utilization[0][0] <= r.Utilization[2][0] {
		t.Errorf("apache (%v) should exceed derby (%v) at N=100",
			r.Utilization[0][0], r.Utilization[2][0])
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Table III") {
		t.Error("render missing title")
	}
}

func TestFigure1Shape(t *testing.T) {
	r := Figure1(QuickOptions())
	if len(r.Groups) != 4 {
		t.Fatalf("groups = %v", r.Groups)
	}
	for gi, g := range r.Groups {
		row := r.Slowdowns[gi]
		// Overhead must grow with per-entry cost.
		for i := 1; i < len(row); i++ {
			if row[i] < row[i-1]-0.01 {
				t.Errorf("%s: slowdown not increasing with cost: %v", g, row)
			}
		}
	}
	// Server workloads pay more than compute (more OS entries).
	apache := r.Slowdowns[0][len(r.Costs)-1]
	compute := r.Slowdowns[3][len(r.Costs)-1]
	if apache <= compute {
		t.Errorf("apache slowdown (%v) should exceed compute (%v)", apache, compute)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Error("render missing title")
	}
}

func TestFigure2Accuracy(t *testing.T) {
	r := Figure2(QuickOptions())
	if r.CAMBytes < 1800 || r.CAMBytes > 2300 {
		t.Errorf("CAM bytes = %d, want ~2KB", r.CAMBytes)
	}
	if r.DMBytes < 3000 || r.DMBytes > 3700 {
		t.Errorf("DM bytes = %d, want ~3.3KB", r.DMBytes)
	}
	if got := r.MeanExact() + r.MeanWithin5(); got < 0.35 {
		// Quick scale starves rare syscalls of training samples; the
		// full-scale number is recorded in EXPERIMENTS.md (~90%).
		t.Errorf("CAM exact+within5 = %v, want >= 0.35 at quick scale", got)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Error("render missing title")
	}
}

func TestFigure3Shape(t *testing.T) {
	r := Figure3(QuickOptions())
	if len(r.Thresholds) != 5 {
		t.Fatalf("thresholds = %v", r.Thresholds)
	}
	for gi, g := range r.Groups {
		server := gi < 3
		for ti, v := range r.HitRate[gi] {
			if v < 0 || v > 1.0 {
				t.Errorf("%s N=%d: binary accuracy %v out of range", g, r.Thresholds[ti], v)
			}
			// Server workloads see enough syscalls to be scored even at
			// quick scale; the compute group's handful of cold syscalls
			// are only meaningful at full scale.
			if server && v < 0.5 {
				t.Errorf("%s N=%d: binary accuracy %v implausible", g, r.Thresholds[ti], v)
			}
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Error("render missing title")
	}
}

func TestFigure4QuickShape(t *testing.T) {
	// A reduced sweep to keep test time in check: verify dimensions and
	// the headline monotonicity (higher migration latency never helps).
	o := QuickOptions()
	r := Figure4(o)
	if len(r.Normalized) != 4 || len(r.Normalized[0]) != len(r.Latencies) ||
		len(r.Normalized[0][0]) != len(r.Thresholds) {
		t.Fatal("Figure 4 dimensions wrong")
	}
	// At N=0 (everything off-loads), latency 5000 must be far worse
	// than latency 0 for the server workloads.
	for gi, g := range r.Groups[:2] {
		lat0 := r.Normalized[gi][0][0]
		lat5k := r.Normalized[gi][len(r.Latencies)-1][0]
		if lat5k >= lat0 {
			t.Errorf("%s: N=0 at 5000-cycle latency (%v) not worse than at 0 (%v)", g, lat5k, lat0)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Error("render missing title")
	}
	// Best() returns a point within the sweep.
	norm, lat, n := r.Best(0)
	if norm <= 0 {
		t.Error("Best returned non-positive norm")
	}
	found := false
	for _, l := range r.Latencies {
		if l == lat {
			found = true
		}
	}
	if !found {
		t.Errorf("Best latency %d not in sweep", lat)
	}
	_ = n
}

func TestFigure5QuickShape(t *testing.T) {
	r := Figure5(QuickOptions())
	if len(r.Policies) != 3 {
		t.Fatalf("policies = %v", r.Policies)
	}
	for gi, g := range r.Groups {
		for pi := range r.Policies {
			for _, v := range r.Normalized[gi][pi] {
				if v <= 0 || v > 3 {
					t.Errorf("%s/%s: normalized %v implausible", g, r.Policies[pi], v)
				}
			}
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Error("render missing title")
	}
}

func TestScalingQuickShape(t *testing.T) {
	r := Scaling(QuickOptions())
	if len(r.UserCores) != 3 {
		t.Fatalf("cores = %v", r.UserCores)
	}
	// Queue delay must increase with core count.
	if !(r.MeanQueueDelay[2] > r.MeanQueueDelay[0]) {
		t.Errorf("queue delay did not grow: %v", r.MeanQueueDelay)
	}
	// Per-core throughput must fall from 2:1 to 4:1 as the OS core
	// saturates (at 2:1 constructive kernel interference can still win).
	if !(r.PerCoreThroughput[2] < r.PerCoreThroughput[1]) {
		t.Errorf("per-core throughput did not fall from 2:1 to 4:1: %v", r.PerCoreThroughput)
	}
	if r.SpeedupVsOne[0] != 1.0 {
		t.Errorf("self-speedup %v != 1", r.SpeedupVsOne[0])
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Scaling") {
		t.Error("render missing title")
	}
}

func TestGroupProfilesResolution(t *testing.T) {
	o := DefaultOptions()
	if got := len(o.groupProfiles("compute")); got != len(o.ComputeReps) {
		t.Fatalf("compute group resolved to %d profiles", got)
	}
	if got := o.groupProfiles("apache"); len(got) != 1 || got[0].Name != "apache" {
		t.Fatal("apache group resolution wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown workload did not panic")
		}
	}()
	o.groupProfiles("nosuch")
}

func TestHalvedL2Shape(t *testing.T) {
	r := HalvedL2(QuickOptions())
	if len(r.Normalized) != len(r.Latencies) {
		t.Fatal("dimension mismatch")
	}
	// Benefit must decay with latency.
	first, last := r.Normalized[0], r.Normalized[len(r.Normalized)-1]
	if last >= first {
		t.Errorf("halved-L2 benefit did not decay with latency: %v", r.Normalized)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "512 KB") {
		t.Error("render missing title")
	}
	_ = r.CrossoverLatency() // must not panic
}

func TestPredictorAblationShape(t *testing.T) {
	r := PredictorAblation(QuickOptions())
	if len(r.Variants) != 6 || len(r.Normalized) != 6 {
		t.Fatalf("variants: %v", r.Variants)
	}
	byName := map[string]float64{}
	for i, v := range r.Variants {
		byName[v] = r.Normalized[i]
	}
	// The oracle bounds the predictor organizations (small tolerance for
	// stream-interleaving noise at quick scale).
	if byName["HI-CAM"] > byName["oracle"]*1.08 {
		t.Errorf("CAM (%v) above oracle bound (%v)", byName["HI-CAM"], byName["oracle"])
	}
	// DI pays heavy per-entry costs: it must not beat HI.
	if byName["DI"] > byName["HI-CAM"]*1.02 {
		t.Errorf("DI (%v) beat HI (%v)", byName["DI"], byName["HI-CAM"])
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "decision mechanisms") {
		t.Error("render missing title")
	}
}

func TestFigure4Charts(t *testing.T) {
	r := Figure4(QuickOptions())
	var buf bytes.Buffer
	r.RenderCharts(&buf)
	out := buf.String()
	for _, g := range r.Groups {
		if !strings.Contains(out, "["+g+"]") {
			t.Errorf("chart for %s missing", g)
		}
	}
	if !strings.Contains(out, "5000 cyc") {
		t.Error("latency legend missing")
	}
}

func TestPredictorSizing(t *testing.T) {
	r := PredictorSizing(QuickOptions())
	if len(r.Entries) != len(r.Exact) || len(r.Entries) != len(r.BinaryAt500) {
		t.Fatal("dimension mismatch")
	}
	// Accuracy must not degrade as the table grows (small tolerance for
	// replacement noise).
	for i := 1; i < len(r.Entries); i++ {
		a, b := r.Exact[i-1]+r.Within5[i-1], r.Exact[i]+r.Within5[i]
		if b < a-0.05 {
			t.Errorf("accuracy fell from %d to %d entries: %v -> %v",
				r.Entries[i-1], r.Entries[i], a, b)
		}
	}
	// The paper's claim: 200 entries is within noise of infinite history.
	if gap := r.GapTo200(); gap > 0.03 {
		t.Errorf("200-entry gap to unbounded = %.3f, want <= 0.03", gap)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "unbounded") {
		t.Error("render missing reference row")
	}
}

func TestProtocolAblation(t *testing.T) {
	r := ProtocolAblation(QuickOptions())
	if len(r.Protocols) != 2 || r.Protocols[0] != "MESI" || r.Protocols[1] != "MOESI" {
		t.Fatalf("protocols: %v", r.Protocols)
	}
	// MOESI must not write back more than MESI on the same traffic
	// pattern (the Owned state only removes writebacks).
	if r.Writebacks[1] > r.Writebacks[0] {
		t.Errorf("MOESI wrote back more than MESI: %v", r.Writebacks)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "MOESI") {
		t.Error("render missing protocol names")
	}
}

func TestAsymmetricOSCore(t *testing.T) {
	r := AsymmetricOSCore(QuickOptions())
	if len(r.L1KB) != len(r.Normalized) {
		t.Fatal("dimension mismatch")
	}
	// The 4KB point must retain most of the 32KB point's benefit.
	if r.Normalized[len(r.Normalized)-1] < r.Normalized[0]*0.8 {
		t.Errorf("tiny OS-core L1s lost too much: %v", r.Normalized)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "4 KB") {
		t.Error("render missing rows")
	}
}

func TestConfidenceStudy(t *testing.T) {
	r := Confidence(QuickOptions(), 3)
	if len(r.Seeds) != 3 || len(r.Policies) != 3 {
		t.Fatalf("dims: %d seeds, %d policies", len(r.Seeds), len(r.Policies))
	}
	for i := range r.Policies {
		if r.Min[i] > r.Mean[i] || r.Mean[i] > r.Max[i] {
			t.Errorf("%s: mean %v outside [min %v, max %v]", r.Policies[i], r.Mean[i], r.Min[i], r.Max[i])
		}
		if r.StdDev[i] < 0 {
			t.Errorf("%s: negative stddev", r.Policies[i])
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Seed sensitivity") {
		t.Error("render missing title")
	}
}
