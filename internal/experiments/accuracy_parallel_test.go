package experiments

import (
	"runtime"
	"strings"
	"testing"
)

// TestParallelAccuracy is the acceptance check for the quantum-parallel
// engine: on the multi-core threshold sweep, parallel mode must stay
// within 2% normalized-IPC error of the serial detailed engine on every
// workload class. The 2.5x wall-clock speedup target additionally needs
// free host cores, so that assertion applies only on hosts with at
// least four CPUs (make bench-parallel records the scaling curve either
// way); accuracy and determinism are asserted everywhere.
func TestParallelAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute sweep")
	}
	if raceEnabled {
		t.Skip("wall-clock assertions are meaningless under -race; run via `make accuracy-parallel`")
	}
	res := ParallelAccuracy(ParallelAccuracyOptions{
		Thresholds: []int{100},
		Seeds:      []uint64{1, 2},
	})
	const errTolPct = 2.0
	for wi, name := range res.Workloads {
		for ti, n := range res.Thresholds {
			if e := res.ErrPct[wi][ti]; e < -errTolPct || e > errTolPct {
				t.Errorf("%s N=%d: normalized-IPC error %+.2f%% exceeds %.1f%%",
					name, n, e, errTolPct)
			}
		}
	}
	const speedupFloor = 2.5
	if runtime.NumCPU() < 4 {
		t.Logf("host has %d CPUs; %.1fx speedup floor not assertable (measured %.2fx)",
			runtime.NumCPU(), speedupFloor, res.Speedup)
		return
	}
	if res.Speedup < speedupFloor {
		t.Errorf("speedup %.2fx below %.1fx (serial %.1fs, parallel %.1fs)",
			res.Speedup, speedupFloor, res.SerialSecs, res.ParallelSecs)
	}
}

func TestParallelAccuracyQuickShape(t *testing.T) {
	res := ParallelAccuracy(ParallelAccuracyOptions{
		Workloads:     []string{"apache"},
		Thresholds:    []int{100},
		Seeds:         []uint64{1},
		Cores:         4,
		WarmupInstrs:  50_000,
		MeasureInstrs: 200_000,
	})
	if len(res.ErrPct) != 1 || len(res.ErrPct[0]) != 1 {
		t.Fatalf("unexpected shape: %+v", res.ErrPct)
	}
	if len(res.MeanAbsErrPct) != 1 || len(res.MaxAbsErrPct) != 1 {
		t.Fatal("missing row summaries")
	}
	if res.NormSerial[0][0] <= 0 || res.NormParallel[0][0] <= 0 {
		t.Fatal("non-positive normalized IPC")
	}
	if res.Speedup <= 0 {
		t.Fatal("speedup not measured")
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "apache") || !strings.Contains(sb.String(), "wall clock") {
		t.Fatalf("render missing content:\n%s", sb.String())
	}
}
