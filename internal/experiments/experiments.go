// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a pure function from an Options value to
// a result struct with a Render method, so the same runners back the
// cmd/experiments binary, the examples and the root-level benchmarks.
//
// Absolute numbers differ from the paper's Simics testbed; the runners
// exist to reproduce the *shapes*: who wins, by roughly what factor, and
// where the crossovers fall. EXPERIMENTS.md records paper-vs-measured for
// each artifact.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"offloadsim/internal/migration"
	"offloadsim/internal/policy"
	"offloadsim/internal/sim"
	"offloadsim/internal/stats"
	"offloadsim/internal/workloads"
)

// Options scales the experiment suite. Defaults trade ~a minute of wall
// clock for stable numbers; tests shrink the budgets.
type Options struct {
	// WarmupInstrs and MeasureInstrs are per-core budgets for each run.
	WarmupInstrs  uint64
	MeasureInstrs uint64
	// Seed drives every run (same seed -> identical workload streams
	// across policies, which is what makes normalization meaningful).
	Seed uint64
	// ComputeReps are the compute-group representatives averaged into
	// the "compute" series (§II presents the group as one curve).
	ComputeReps []string
	// Workers bounds concurrent simulation runs inside one experiment
	// (0 = one per CPU). Runs are deterministic and independent, so
	// parallelism affects only wall-clock time.
	Workers int
}

// DefaultOptions returns the standard experiment scale.
func DefaultOptions() Options {
	return Options{
		WarmupInstrs:  3_000_000,
		MeasureInstrs: 2_000_000,
		Seed:          1,
		ComputeReps:   []string{"blackscholes", "mcf"},
	}
}

// QuickOptions returns a reduced scale for smoke tests.
func QuickOptions() Options {
	return Options{
		WarmupInstrs:  60_000,
		MeasureInstrs: 150_000,
		Seed:          1,
		ComputeReps:   []string{"blackscholes"},
	}
}

// serverNames are the individually-plotted workloads, in paper order.
var serverNames = []string{"apache", "specjbb", "derby"}

// GroupNames returns the four plotted series: the three servers plus the
// aggregated compute group.
func GroupNames() []string { return append(append([]string{}, serverNames...), "compute") }

// groupProfiles resolves a series name to its member profiles.
func (o Options) groupProfiles(name string) []*workloads.Profile {
	if name != "compute" {
		p, ok := workloads.ByName(name)
		if !ok {
			panic(fmt.Sprintf("experiments: unknown workload %q", name))
		}
		return []*workloads.Profile{p}
	}
	var out []*workloads.Profile
	for _, rep := range o.ComputeReps {
		p, ok := workloads.ByName(rep)
		if !ok {
			panic(fmt.Sprintf("experiments: unknown compute rep %q", rep))
		}
		out = append(out, p)
	}
	return out
}

// baseConfig assembles a sim.Config with the experiment-wide budgets.
func (o Options) baseConfig(prof *workloads.Profile, kind policy.Kind, threshold, oneWay int) sim.Config {
	cfg := sim.DefaultConfig(prof)
	cfg.Policy = kind
	cfg.Threshold = threshold
	cfg.Migration = migration.Custom(oneWay)
	cfg.WarmupInstrs = o.WarmupInstrs
	cfg.MeasureInstrs = o.MeasureInstrs
	cfg.Seed = o.Seed
	return cfg
}

// run executes one configuration.
func (o Options) run(cfg sim.Config) sim.Result {
	return sim.MustNew(cfg).Run()
}

// baselineThroughput runs the no-off-loading single-core baseline.
func (o Options) baselineThroughput(prof *workloads.Profile) float64 {
	return o.run(o.baseConfig(prof, policy.Baseline, 0, 0)).Throughput
}

// groupNormalized runs cfgFor for every member of a group and returns the
// geometric-mean throughput normalized to each member's own baseline.
func (o Options) groupNormalized(group string, cfgFor func(*workloads.Profile) sim.Config) float64 {
	var norms []float64
	for _, prof := range o.groupProfiles(group) {
		base := o.baselineThroughput(prof)
		r := o.run(cfgFor(prof))
		if base > 0 {
			norms = append(norms, r.Throughput/base)
		}
	}
	return stats.GeoMean(norms)
}

// renderTable writes an aligned text table: header row then data rows.
func renderTable(w io.Writer, title string, header []string, rows [][]string) {
	fmt.Fprintf(w, "%s\n", title)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	fmt.Fprintln(w)
}
