package experiments

import (
	"reflect"
	"testing"
)

func TestFigure4ParallelDeterminism(t *testing.T) {
	serial := QuickOptions()
	serial.Workers = 1
	parallel := QuickOptions()
	parallel.Workers = 8
	a := Figure4(serial)
	b := Figure4(parallel)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("parallel execution changed Figure 4 results")
	}
}

func TestFigure5ParallelDeterminism(t *testing.T) {
	serial := QuickOptions()
	serial.Workers = 1
	parallel := QuickOptions()
	parallel.Workers = 8
	a := Figure5(serial)
	b := Figure5(parallel)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("parallel execution changed Figure 5 results")
	}
}
