package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"offloadsim/internal/policy"
	"offloadsim/internal/sim"
	"offloadsim/internal/workloads"
)

// ParallelAccuracyOptions scales the parallel-vs-serial validation
// sweep: the Figure-4 threshold shape on all four workload classes, run
// multi-core (the parallel engine's reason to exist) on both the serial
// detailed engine and the quantum-parallel one.
type ParallelAccuracyOptions struct {
	// Workloads are the swept workload names (default apache, specjbb,
	// derby, blackscholes).
	Workloads []string
	// Thresholds is the swept off-load threshold list (default 50, 100,
	// 250).
	Thresholds []int
	// Seeds are averaged per point; normalized-IPC error is judged on
	// the seed mean (default 1, 2).
	Seeds []uint64
	// Cores is the simulated user-core count (default 8 — the scale the
	// engine targets).
	Cores int
	// WarmupInstrs and MeasureInstrs are per-core budgets (default 200k
	// / 2M; 8 cores make each run 8x that).
	WarmupInstrs  uint64
	MeasureInstrs uint64
	// Parallel is the engine configuration under test (default
	// sim.DefaultParallel; set Workers to bound host goroutines).
	Parallel sim.Parallel
}

// withDefaults fills zero fields.
func (o ParallelAccuracyOptions) withDefaults() ParallelAccuracyOptions {
	if len(o.Workloads) == 0 {
		o.Workloads = []string{"apache", "specjbb", "derby", "blackscholes"}
	}
	if len(o.Thresholds) == 0 {
		o.Thresholds = []int{50, 100, 250}
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1, 2}
	}
	if o.Cores == 0 {
		o.Cores = 8
	}
	if o.WarmupInstrs == 0 {
		o.WarmupInstrs = 200_000
	}
	if o.MeasureInstrs == 0 {
		o.MeasureInstrs = 2_000_000
	}
	if !o.Parallel.Enabled {
		o.Parallel = sim.DefaultParallel()
	}
	return o
}

// ParallelAccuracyResult compares quantum-parallel runs against serial
// detailed references across the threshold sweep.
type ParallelAccuracyResult struct {
	Workloads  []string
	Thresholds []int
	Seeds      []uint64
	Cores      int
	Parallel   sim.Parallel

	// NormSerial and NormParallel hold seed-averaged normalized IPC
	// (policy throughput over same-engine baseline throughput), indexed
	// [workload][threshold].
	NormSerial   [][]float64
	NormParallel [][]float64
	// ErrPct is the parallel engine's normalized-IPC error in percent,
	// indexed [workload][threshold], on the seed-averaged values.
	ErrPct [][]float64
	// MeanAbsErrPct and MaxAbsErrPct summarize each workload's row.
	MeanAbsErrPct []float64
	MaxAbsErrPct  []float64

	// SerialSecs and ParallelSecs sum per-run wall time across the whole
	// sweep (baselines included); Speedup is their ratio. Wall-clock
	// speedup requires free host cores: on a saturated or single-core
	// host the ratio degrades toward (or slightly past) 1x while the
	// accuracy columns remain exact.
	SerialSecs   float64
	ParallelSecs float64
	Speedup      float64
}

// ParallelAccuracy runs the threshold sweep twice — serial detailed and
// quantum-parallel — and reports per-point normalized-IPC error plus the
// aggregate wall-clock speedup. Both engines run the baseline too, so
// the comparison is between complete sweeps.
func ParallelAccuracy(o ParallelAccuracyOptions) ParallelAccuracyResult {
	o = o.withDefaults()
	res := ParallelAccuracyResult{
		Workloads:  o.Workloads,
		Thresholds: o.Thresholds,
		Seeds:      o.Seeds,
		Cores:      o.Cores,
		Parallel:   o.Parallel,
	}

	cfgFor := func(name string, threshold int, seed uint64, par bool) sim.Config {
		prof, ok := workloads.ByName(name)
		if !ok {
			panic(fmt.Sprintf("experiments: unknown workload %q", name))
		}
		cfg := sim.DefaultConfig(prof)
		if threshold < 0 {
			cfg.Policy = policy.Baseline
			cfg.Threshold = 0
		} else {
			cfg.Threshold = threshold
		}
		cfg.UserCores = o.Cores
		cfg.WarmupInstrs = o.WarmupInstrs
		cfg.MeasureInstrs = o.MeasureInstrs
		cfg.Seed = seed
		if par {
			cfg.Parallel = o.Parallel
		}
		return cfg
	}

	run := func(cfg sim.Config) (float64, time.Duration) {
		t0 := time.Now()
		tput := sim.MustNew(cfg).Run().Throughput
		return tput, time.Since(t0)
	}

	for _, name := range o.Workloads {
		serRow := make([]float64, len(o.Thresholds))
		parRow := make([]float64, len(o.Thresholds))
		errRow := make([]float64, len(o.Thresholds))
		for _, seed := range o.Seeds {
			serBase, d := run(cfgFor(name, -1, seed, false))
			res.SerialSecs += d.Seconds()
			parBase, d2 := run(cfgFor(name, -1, seed, true))
			res.ParallelSecs += d2.Seconds()
			for ti, n := range o.Thresholds {
				ser, ds := run(cfgFor(name, n, seed, false))
				res.SerialSecs += ds.Seconds()
				par, dp := run(cfgFor(name, n, seed, true))
				res.ParallelSecs += dp.Seconds()
				serRow[ti] += ser / serBase / float64(len(o.Seeds))
				parRow[ti] += par / parBase / float64(len(o.Seeds))
			}
		}
		var meanAbs, maxAbs float64
		for ti := range o.Thresholds {
			errRow[ti] = 100 * (parRow[ti]/serRow[ti] - 1)
			a := math.Abs(errRow[ti])
			meanAbs += a / float64(len(o.Thresholds))
			if a > maxAbs {
				maxAbs = a
			}
		}
		res.NormSerial = append(res.NormSerial, serRow)
		res.NormParallel = append(res.NormParallel, parRow)
		res.ErrPct = append(res.ErrPct, errRow)
		res.MeanAbsErrPct = append(res.MeanAbsErrPct, meanAbs)
		res.MaxAbsErrPct = append(res.MaxAbsErrPct, maxAbs)
	}
	if res.ParallelSecs > 0 {
		res.Speedup = res.SerialSecs / res.ParallelSecs
	}
	return res
}

// Render writes the per-workload error table and the speedup line.
func (r ParallelAccuracyResult) Render(w io.Writer) {
	header := []string{"workload"}
	for _, n := range r.Thresholds {
		header = append(header, fmt.Sprintf("err@N=%d", n))
	}
	header = append(header, "mean|err|", "max|err|")
	var rows [][]string
	for wi, name := range r.Workloads {
		row := []string{name}
		for _, e := range r.ErrPct[wi] {
			row = append(row, fmt.Sprintf("%+.2f%%", e))
		}
		row = append(row,
			fmt.Sprintf("%.2f%%", r.MeanAbsErrPct[wi]),
			fmt.Sprintf("%.2f%%", r.MaxAbsErrPct[wi]))
		rows = append(rows, row)
	}
	renderTable(w, fmt.Sprintf(
		"Parallel-engine accuracy: normalized-IPC error vs serial detailed (%d cores, quantum %d, seed-averaged)",
		r.Cores, r.Parallel.Quantum), header, rows)
	fmt.Fprintf(w, "  wall clock: %.1fx (serial %.1fs / parallel %.1fs, %d seeds)\n\n",
		r.Speedup, r.SerialSecs, r.ParallelSecs, len(r.Seeds))
}
