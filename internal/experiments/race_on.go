//go:build race

package experiments

// raceEnabled reports whether the race detector instruments this build.
// The sampling accuracy sweep asserts a wall-clock speedup, which race
// instrumentation distorts (and stretches to many minutes), so the test
// skips itself under -race; `make ci` runs it in a separate plain pass.
const raceEnabled = true
