package experiments

import (
	"fmt"
	"io"

	"offloadsim/internal/coherence"
	"offloadsim/internal/cpu"
	"offloadsim/internal/policy"
	"offloadsim/internal/sim"
	"offloadsim/internal/syscalls"
)

// TableI renders the paper's Table I: the census of distinct system calls
// across operating systems, the scale argument against per-syscall manual
// instrumentation.
func TableI(w io.Writer) {
	rows := [][]string{}
	census := syscalls.TableI()
	// Two-column layout like the paper.
	half := (len(census) + 1) / 2
	for i := 0; i < half; i++ {
		row := []string{census[i].OS, fmt.Sprint(census[i].Syscalls), "", ""}
		if j := half + i; j < len(census) {
			row[2] = census[j].OS
			row[3] = fmt.Sprint(census[j].Syscalls)
		}
		rows = append(rows, row)
	}
	renderTable(w, "Table I: Number of distinct system calls in various operating systems",
		[]string{"OS", "#Syscalls", "OS", "#Syscalls"}, rows)
}

// TableII renders the simulator parameters actually in effect, mirroring
// the paper's Table II.
func TableII(w io.Writer) {
	cc := coherence.DefaultConfig()
	cp := cpu.DefaultConfig()
	rows := [][]string{
		{"ISA", "UltraSPARC III (modeled)"},
		{"Processor Pipeline", "In-Order, 1 IPC + memory stalls"},
		{"Coherence Protocol", "Directory Based MESI"},
		{"L1 I-cache", fmt.Sprintf("%d KB/%d-way, %d-cycle",
			cp.L1I.SizeBytes>>10, cp.L1I.Ways, cp.L1I.HitLatency)},
		{"L1 D-cache", fmt.Sprintf("%d KB/%d-way, %d-cycle",
			cp.L1D.SizeBytes>>10, cp.L1D.Ways, cp.L1D.HitLatency)},
		{"L2 Cache", fmt.Sprintf("%d MB/%d-way, %d-cycle (private per core)",
			cc.L2.SizeBytes>>20, cc.L2.Ways, cc.L2.HitLatency)},
		{"L1 and L2 Cache Line Size", fmt.Sprintf("%d Bytes", cc.L2.LineBytes)},
		{"Main Memory", fmt.Sprintf("%d Cycle Uniform Latency", cc.Memory.Latency)},
		{"Directory Lookup", fmt.Sprintf("%d Cycles", cc.DirectoryLatency)},
		{"Interconnect", fmt.Sprintf("point-to-point, %d-cycle link + %d-cycle router",
			cc.Fabric.LinkLatency, cc.Fabric.RouterLatency)},
	}
	renderTable(w, "Table II: Simulator parameters", []string{"Parameter", "Value"}, rows)
}

// TableIIIResult holds OS-core utilization per workload per threshold
// (paper Table III: "percentage of total execution time spent on OS-core
// using selective migration based on threshold N", 5,000-cycle off-load).
type TableIIIResult struct {
	Thresholds []int
	Workloads  []string
	// Utilization[w][t] is the OS-core busy fraction for workload w at
	// threshold index t.
	Utilization [][]float64
}

// TableIII runs the utilization sweep.
func TableIII(o Options) TableIIIResult {
	res := TableIIIResult{
		Thresholds: []int{100, 1000, 5000, 10000},
		Workloads:  serverNames,
	}
	var cfgs []sim.Config
	for _, name := range res.Workloads {
		prof := o.groupProfiles(name)[0]
		for _, n := range res.Thresholds {
			cfgs = append(cfgs, o.baseConfig(prof, policy.HardwarePredictor, n, 5000))
		}
	}
	results := o.runBatch(cfgs)
	i := 0
	for range res.Workloads {
		row := make([]float64, len(res.Thresholds))
		for ni := range res.Thresholds {
			row[ni] = results[i].OSCoreUtilization
			i++
		}
		res.Utilization = append(res.Utilization, row)
	}
	return res
}

// Render writes the table.
func (r TableIIIResult) Render(w io.Writer) {
	header := []string{"Benchmark"}
	for _, n := range r.Thresholds {
		header = append(header, fmt.Sprintf("N=%d", n))
	}
	var rows [][]string
	for i, name := range r.Workloads {
		row := []string{name}
		for _, u := range r.Utilization[i] {
			row = append(row, fmt.Sprintf("%.2f%%", 100*u))
		}
		rows = append(rows, row)
	}
	renderTable(w, "Table III: % of execution time on OS core vs migration threshold N (5,000-cycle off-load)",
		header, rows)
}
