package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestOSCoreCountSweepShape(t *testing.T) {
	r := OSCoreCountSweep(QuickOptions())
	if len(r.Groups) != 4 || len(r.Ks) != 3 {
		t.Fatalf("dims: %d groups, %d Ks", len(r.Groups), len(r.Ks))
	}
	for gi, g := range r.Groups {
		if len(r.Normalized[gi]) != len(r.Ks) || len(r.MeanQueueDelay[gi]) != len(r.Ks) ||
			len(r.OSUtilization[gi]) != len(r.Ks) {
			t.Fatalf("%s: row dims wrong", g)
		}
		for ki, k := range r.Ks {
			if r.Normalized[gi][ki] <= 0 {
				t.Errorf("%s K=%d: non-positive normalized throughput", g, k)
			}
			if u := r.OSUtilization[gi][ki]; u < 0 || u > 1 {
				t.Errorf("%s K=%d: utilization %v out of range", g, k, u)
			}
		}
		// More OS cores must never increase queueing pressure: the same
		// off-load stream spreads over a deeper cluster (small tolerance
		// for routing noise at quick scale).
		if r.MeanQueueDelay[gi][2] > r.MeanQueueDelay[gi][0]*1.05+1 {
			t.Errorf("%s: queue delay grew with K: %v", g, r.MeanQueueDelay[gi])
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "OS-core-count sweep") {
		t.Error("render missing title")
	}
}

func TestOSCoreSensitivityShape(t *testing.T) {
	r := OSCoreSensitivity(QuickOptions())
	if len(r.Workloads) != 3 || len(r.Latencies) != 3 || len(r.Asymmetries) != 3 {
		t.Fatalf("dims: %d x %d x %d", len(r.Workloads), len(r.Latencies), len(r.Asymmetries))
	}
	for wi, wl := range r.Workloads {
		for li, lat := range r.Latencies {
			for ai, asym := range r.Asymmetries {
				v := r.Normalized[wi][li][ai]
				if v <= 0 || v > 6 {
					t.Errorf("%s lat=%d asym=%s: normalized %v implausible", wl, lat, asym, v)
				}
			}
		}
		// At the cheapest latency, a symmetric cluster must not lose to
		// one whose OS cores both run at half speed (small tolerance for
		// interleaving noise at quick scale).
		if r.Normalized[wi][0][2] > r.Normalized[wi][0][0]*1.05 {
			t.Errorf("%s: half-speed cluster (%v) beat symmetric (%v)",
				wl, r.Normalized[wi][0][2], r.Normalized[wi][0][0])
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, wl := range r.Workloads {
		if !strings.Contains(out, "["+wl+"]") {
			t.Errorf("render missing %s grid", wl)
		}
	}
}
