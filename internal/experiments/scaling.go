package experiments

import (
	"fmt"
	"io"

	"offloadsim/internal/policy"
)

// ScalingResult holds the §V-C OS-core scaling study: SPECjbb2005,
// N=100, 1,000-cycle off-load, with 1, 2 and 4 user cores sharing a
// single OS core. The paper reports a mean queuing delay of ~1,348 cycles
// at 2:1 and >25,000 cycles at 4:1, with aggregate throughput up only
// 4.5% at 2:1 and down at 4:1.
type ScalingResult struct {
	UserCores []int
	// AggregateThroughput[i] is the summed user-core IPC.
	AggregateThroughput []float64
	// PerCoreThroughput[i] is aggregate / cores.
	PerCoreThroughput []float64
	// MeanQueueDelay[i] is the average cycles an off-load waited for
	// the OS core.
	MeanQueueDelay []float64
	// OSUtilization[i] is the OS core's busy fraction.
	OSUtilization []float64
	// SpeedupVsOne[i] is aggregate throughput relative to the 1-core
	// configuration.
	SpeedupVsOne []float64
}

// Scaling runs the study.
func Scaling(o Options) ScalingResult {
	prof := o.groupProfiles("specjbb")[0]
	res := ScalingResult{UserCores: []int{1, 2, 4}}
	for _, cores := range res.UserCores {
		cfg := o.baseConfig(prof, policy.HardwarePredictor, 100, 1000)
		cfg.UserCores = cores
		r := o.run(cfg)
		res.AggregateThroughput = append(res.AggregateThroughput, r.Throughput)
		res.PerCoreThroughput = append(res.PerCoreThroughput, r.Throughput/float64(cores))
		res.MeanQueueDelay = append(res.MeanQueueDelay, r.MeanQueueDelay)
		res.OSUtilization = append(res.OSUtilization, r.OSCoreUtilization)
	}
	for i := range res.UserCores {
		res.SpeedupVsOne = append(res.SpeedupVsOne, res.AggregateThroughput[i]/res.AggregateThroughput[0])
	}
	return res
}

// Render writes the scaling table.
func (r ScalingResult) Render(w io.Writer) {
	header := []string{"user:OS cores", "agg tput", "per-core tput", "mean queue delay", "OS util", "agg vs 1:1"}
	var rows [][]string
	for i, c := range r.UserCores {
		rows = append(rows, []string{
			fmt.Sprintf("%d:1", c),
			fmt.Sprintf("%.4f", r.AggregateThroughput[i]),
			fmt.Sprintf("%.4f", r.PerCoreThroughput[i]),
			fmt.Sprintf("%.0f cyc", r.MeanQueueDelay[i]),
			fmt.Sprintf("%.1f%%", 100*r.OSUtilization[i]),
			fmt.Sprintf("%.2fx", r.SpeedupVsOne[i]),
		})
	}
	renderTable(w, "Scaling study (§V-C): SPECjbb2005, N=100, 1,000-cycle off-load, shared OS core",
		header, rows)
}
