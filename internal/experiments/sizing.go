package experiments

import (
	"fmt"
	"io"

	"offloadsim/internal/core"
	"offloadsim/internal/rng"
	"offloadsim/internal/trace"
)

// PredictorSizingResult validates the §III-A sizing claim: "a
// fully-associative predictor table with 200 entries yields close to
// optimal (infinite history) performance". The study replays one apache
// OS-entry stream through CAM tables of increasing size (plus an
// unbounded table as the infinite-history reference) and reports
// run-length accuracy for each.
type PredictorSizingResult struct {
	Entries []int // table sizes; the last row is the unbounded reference
	Exact   []float64
	Within5 []float64
	// BinaryAt500 is the off-load/stay hit rate at N=500 (Figure 3's
	// anchor threshold).
	BinaryAt500 []float64
}

// infiniteEntries is the stand-in for an unbounded table: far above the
// workload's AState population, so no replacement ever happens.
const infiniteEntries = 1 << 16

// PredictorSizing runs the sweep. The predictors are replayed outside the
// timing simulator (accuracy does not depend on cache timing), which
// keeps the sweep cheap enough to use generous instruction budgets.
func PredictorSizing(o Options) PredictorSizingResult {
	res := PredictorSizingResult{
		Entries: []int{25, 50, 100, 200, 400, infiniteEntries},
	}
	prof := o.groupProfiles("apache")[0]
	budget := o.WarmupInstrs + 4*o.MeasureInstrs

	for _, entries := range res.Entries {
		space := &trace.AddressSpace{}
		src := rng.New(o.Seed)
		kernel := trace.NewKernelLayout(space, src.Fork())
		gen := trace.MustNewGenerator(prof, 0, kernel, space, src.Fork())

		eng := core.NewEngine(core.NewCAMPredictor(entries), 500)
		var instrs uint64
		warm := budget / 3
		var scored, exact, within5, binOK uint64
		for instrs < budget {
			seg := gen.Next()
			instrs += uint64(seg.Instrs)
			if !seg.IsOS() {
				continue
			}
			d := eng.Decide(seg.AState)
			eng.Train(seg.AState, d, seg.Instrs)
			if instrs < warm || seg.Kind != trace.SyscallSegment {
				continue
			}
			scored++
			diff := d.Predicted - seg.Instrs
			if diff < 0 {
				diff = -diff
			}
			switch {
			case diff == 0:
				exact++
			case diff*20 <= seg.Instrs:
				within5++
			}
			if d.Offload == (seg.Instrs > 500) {
				binOK++
			}
		}
		res.Exact = append(res.Exact, float64(exact)/float64(scored))
		res.Within5 = append(res.Within5, float64(within5)/float64(scored))
		res.BinaryAt500 = append(res.BinaryAt500, float64(binOK)/float64(scored))
	}
	return res
}

// GapTo200 returns how far the 200-entry table's exact+within5 accuracy
// sits below the unbounded reference (positive = worse than infinite).
func (r PredictorSizingResult) GapTo200() float64 {
	idx200 := -1
	for i, e := range r.Entries {
		if e == 200 {
			idx200 = i
		}
	}
	last := len(r.Entries) - 1
	if idx200 < 0 {
		return 0
	}
	return (r.Exact[last] + r.Within5[last]) - (r.Exact[idx200] + r.Within5[idx200])
}

// Render writes the sizing table.
func (r PredictorSizingResult) Render(w io.Writer) {
	header := []string{"entries", "exact", "within ±5%", "binary @ N=500"}
	var rows [][]string
	for i, e := range r.Entries {
		name := fmt.Sprint(e)
		if e == infiniteEntries {
			name = "unbounded"
		}
		rows = append(rows, []string{name,
			fmt.Sprintf("%.1f%%", 100*r.Exact[i]),
			fmt.Sprintf("%.1f%%", 100*r.Within5[i]),
			fmt.Sprintf("%.1f%%", 100*r.BinaryAt500[i]),
		})
	}
	renderTable(w, "Predictor sizing (§III-A: 200 entries ≈ infinite history) [apache]",
		header, rows)
	fmt.Fprintf(w, "  200-entry accuracy gap to unbounded: %.2f points\n\n", 100*r.GapTo200())
}
