package experiments

import (
	"strings"
	"testing"
)

// TestSamplingAccuracy is the acceptance check for interval sampling:
// on the Figure-4 threshold sweep at the documented validation scale,
// sampled mode must stay within 2% normalized-IPC error of fully
// detailed simulation on every workload class while running at least
// 5x faster. The sweep is deterministic (fixed seeds), so the
// tolerances clear the realized errors with margin rather than hoping
// across reruns; the full three-threshold sweep lives behind
// cmd/experiments -only sampling.
func TestSamplingAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute sweep")
	}
	if raceEnabled {
		t.Skip("wall-clock speedup assertion is meaningless under -race; run via `make accuracy`")
	}
	res := SamplingAccuracy(SamplingAccuracyOptions{
		Thresholds: []int{100},
		Seeds:      []uint64{1, 2},
	})
	const errTolPct = 2.0
	for wi, name := range res.Workloads {
		for ti, n := range res.Thresholds {
			if e := res.ErrPct[wi][ti]; e < -errTolPct || e > errTolPct {
				t.Errorf("%s N=%d: normalized-IPC error %+.2f%% exceeds %.1f%%",
					name, n, e, errTolPct)
			}
		}
	}
	const speedupFloor = 5.0
	if res.Speedup < speedupFloor {
		t.Errorf("speedup %.1fx below %.1fx (detailed %.1fs, sampled %.1fs)",
			res.Speedup, speedupFloor, res.DetailedSecs, res.SampledSecs)
	}
}

func TestSamplingAccuracyQuickShape(t *testing.T) {
	res := SamplingAccuracy(SamplingAccuracyOptions{
		Workloads:     []string{"apache"},
		Thresholds:    []int{100},
		Seeds:         []uint64{1},
		WarmupInstrs:  100_000,
		MeasureInstrs: 2_000_000,
	})
	if len(res.ErrPct) != 1 || len(res.ErrPct[0]) != 1 {
		t.Fatalf("unexpected shape: %+v", res.ErrPct)
	}
	if len(res.MeanAbsErrPct) != 1 || len(res.MaxAbsErrPct) != 1 {
		t.Fatal("missing row summaries")
	}
	if res.NormDetailed[0][0] <= 0 || res.NormSampled[0][0] <= 0 {
		t.Fatal("non-positive normalized IPC")
	}
	if res.Speedup <= 0 {
		t.Fatal("speedup not measured")
	}
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "apache") || !strings.Contains(sb.String(), "speedup") {
		t.Fatalf("render missing content:\n%s", sb.String())
	}
}
