package experiments

import (
	"fmt"
	"io"

	"offloadsim/internal/coherence"
	"offloadsim/internal/cpu"
	"offloadsim/internal/policy"
	"offloadsim/internal/sim"
)

// HalvedL2Result reproduces the §V-B aside: an off-loading system built
// from two *512 KB* L2s can still beat the single-core baseline with its
// full 1 MB L2 — but only when migration is cheap. The paper calls the
// comparison academic (nobody would halve an existing cache to enable
// off-loading), yet it cleanly separates the "extra cache" benefit from
// the isolation benefit.
type HalvedL2Result struct {
	Workload   string
	Latencies  []int
	Normalized []float64 // halved-L2 off-loading vs full-L2 baseline
}

// HalvedL2 runs the study on apache with the HI policy at N=100.
func HalvedL2(o Options) HalvedL2Result {
	prof := o.groupProfiles("apache")[0]
	base := o.baselineThroughput(prof) // single core, 1 MB L2

	res := HalvedL2Result{
		Workload:  prof.Name,
		Latencies: []int{0, 100, 500, 1000, 5000},
	}
	for _, lat := range res.Latencies {
		cfg := o.baseConfig(prof, policy.HardwarePredictor, 100, lat)
		cc := coherence.DefaultConfig()
		cc.L2.SizeBytes = 512 << 10 // two halved private L2s
		cfg.Coherence = cc
		r := o.run(cfg)
		res.Normalized = append(res.Normalized, r.Throughput/base)
	}
	return res
}

// CrossoverLatency returns the largest swept latency at which the
// halved-L2 system still beats the full-L2 baseline (-1 if never).
func (r HalvedL2Result) CrossoverLatency() int {
	best := -1
	for i, lat := range r.Latencies {
		if r.Normalized[i] > 1.0 {
			best = lat
		}
	}
	return best
}

// Render writes the ablation table.
func (r HalvedL2Result) Render(w io.Writer) {
	header := []string{"one-way latency", "normalized throughput"}
	var rows [][]string
	for i, lat := range r.Latencies {
		rows = append(rows, []string{
			fmt.Sprintf("%d cyc", lat),
			fmt.Sprintf("%.3f", r.Normalized[i]),
		})
	}
	renderTable(w, fmt.Sprintf(
		"Ablation (§V-B): off-loading with two 512 KB L2s vs single-core 1 MB baseline [%s, HI, N=100]",
		r.Workload), header, rows)
}

// ProtocolAblationResult compares the paper's MESI baseline against
// MOESI at the coherence-stressed operating point (small N, cheap
// migration): the Owned state removes the memory writeback every time the
// OS core reads a line the user core dirtied, which is exactly the
// traffic off-loading multiplies.
type ProtocolAblationResult struct {
	Workload   string
	Protocols  []string
	Normalized []float64
	Writebacks []uint64
	C2C        []uint64
}

// ProtocolAblation runs apache with HI at N=50 over the aggressive engine
// under both protocols.
func ProtocolAblation(o Options) ProtocolAblationResult {
	prof := o.groupProfiles("apache")[0]
	base := o.baselineThroughput(prof)
	res := ProtocolAblationResult{Workload: prof.Name}
	for _, proto := range []coherence.Protocol{coherence.MESI, coherence.MOESI} {
		cfg := o.baseConfig(prof, policy.HardwarePredictor, 50, 100)
		cc := coherence.DefaultConfig()
		cc.Protocol = proto
		cfg.Coherence = cc
		r := o.run(cfg)
		res.Protocols = append(res.Protocols, proto.String())
		res.Normalized = append(res.Normalized, r.Throughput/base)
		res.C2C = append(res.C2C, r.C2CTransfers)
		res.Writebacks = append(res.Writebacks, r.MemoryWritebacks)
	}
	return res
}

// Render writes the protocol comparison.
func (r ProtocolAblationResult) Render(w io.Writer) {
	header := []string{"protocol", "normalized throughput", "c2c transfers", "memory writebacks"}
	var rows [][]string
	for i := range r.Protocols {
		rows = append(rows, []string{r.Protocols[i],
			fmt.Sprintf("%.3f", r.Normalized[i]),
			fmt.Sprintf("%d", r.C2C[i]),
			fmt.Sprintf("%d", r.Writebacks[i]),
		})
	}
	renderTable(w, fmt.Sprintf(
		"Ablation: coherence protocol under off-loading [%s, HI, N=50, 100-cycle migration]", r.Workload),
		header, rows)
}

// PredictorAblationResult compares decision mechanisms at a fixed
// operating point: the oracle bound, the two predictor organizations, a
// cold (unprimed) predictor, and the static set — isolating how much of
// HI's benefit each mechanism piece carries.
type PredictorAblationResult struct {
	Workload   string
	Variants   []string
	Normalized []float64
}

// PredictorAblation runs apache at N=100 over the aggressive engine.
func PredictorAblation(o Options) PredictorAblationResult {
	prof := o.groupProfiles("apache")[0]
	base := o.baselineThroughput(prof)
	res := PredictorAblationResult{Workload: prof.Name}

	add := func(name string, mutate func(*sim.Config)) {
		cfg := o.baseConfig(prof, policy.HardwarePredictor, 100, 100)
		mutate(&cfg)
		r := o.run(cfg)
		res.Variants = append(res.Variants, name)
		res.Normalized = append(res.Normalized, r.Throughput/base)
	}
	add("oracle", func(c *sim.Config) { c.Policy = policy.Oracle })
	add("HI-CAM", func(c *sim.Config) {})
	add("HI-directmapped", func(c *sim.Config) { c.DirectMappedPredictor = true })
	add("HI-cold", func(c *sim.Config) { c.ColdPredictor = true })
	add("SI", func(c *sim.Config) { c.Policy = policy.StaticInstrumentation })
	add("DI", func(c *sim.Config) { c.Policy = policy.DynamicInstrumentation })
	return res
}

// Render writes the ablation table.
func (r PredictorAblationResult) Render(w io.Writer) {
	header := []string{"variant", "normalized throughput"}
	var rows [][]string
	for i, v := range r.Variants {
		rows = append(rows, []string{v, fmt.Sprintf("%.3f", r.Normalized[i])})
	}
	renderTable(w, fmt.Sprintf(
		"Ablation: decision mechanisms [%s, N=100, 100-cycle migration]", r.Workload),
		header, rows)
}

// AsymmetricOSCoreResult sweeps the OS core's L1 size, quantifying how
// much front end the kernel actually needs (§VI-B: OS code does not
// leverage aggressive cores; an off-load target can be small and cheap).
type AsymmetricOSCoreResult struct {
	Workload   string
	L1KB       []int
	Normalized []float64
}

// AsymmetricOSCore runs apache with HI at N=100 over the aggressive
// engine, shrinking the OS core's L1s from the Table II 32 KB down to
// 4 KB.
func AsymmetricOSCore(o Options) AsymmetricOSCoreResult {
	prof := o.groupProfiles("apache")[0]
	base := o.baselineThroughput(prof)
	res := AsymmetricOSCoreResult{
		Workload: prof.Name,
		L1KB:     []int{32, 16, 8, 4},
	}
	for _, kb := range res.L1KB {
		cfg := o.baseConfig(prof, policy.HardwarePredictor, 100, 100)
		osCPU := cpu.DefaultConfig()
		osCPU.L1I.SizeBytes = kb << 10
		osCPU.L1D.SizeBytes = kb << 10
		cfg.OSCPU = &osCPU
		r := o.run(cfg)
		res.Normalized = append(res.Normalized, r.Throughput/base)
	}
	return res
}

// Render writes the sweep table.
func (r AsymmetricOSCoreResult) Render(w io.Writer) {
	header := []string{"OS-core L1 size", "normalized throughput"}
	var rows [][]string
	for i, kb := range r.L1KB {
		rows = append(rows, []string{
			fmt.Sprintf("%d KB", kb),
			fmt.Sprintf("%.3f", r.Normalized[i]),
		})
	}
	renderTable(w, fmt.Sprintf(
		"Ablation (§VI-B): shrinking the OS core's L1s [%s, HI, N=100, 100-cycle migration]", r.Workload),
		header, rows)
}
