package experiments

import (
	"runtime"

	"offloadsim/internal/parallel"
	"offloadsim/internal/sim"
)

// Parallelism returns the worker count for batched runs: the Options
// override when positive, else one worker per CPU. Every simulation is a
// self-contained deterministic function of its Config, so concurrent
// execution cannot perturb results — only reordering wall-clock time.
func (o Options) parallelism() int {
	if o.Workers > 0 {
		return o.Workers
	}
	n := runtime.NumCPU()
	if n < 1 {
		n = 1
	}
	return n
}

// runBatch executes every config concurrently and returns results in
// input order.
func (o Options) runBatch(cfgs []sim.Config) []sim.Result {
	return parallel.Map(o.parallelism(), len(cfgs), func(i int) sim.Result {
		return o.run(cfgs[i])
	})
}
