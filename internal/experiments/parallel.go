package experiments

import (
	"runtime"
	"sync"

	"offloadsim/internal/sim"
)

// Parallelism returns the worker count for batched runs: the Options
// override when positive, else one worker per CPU. Every simulation is a
// self-contained deterministic function of its Config, so concurrent
// execution cannot perturb results — only reordering wall-clock time.
func (o Options) parallelism() int {
	if o.Workers > 0 {
		return o.Workers
	}
	n := runtime.NumCPU()
	if n < 1 {
		n = 1
	}
	return n
}

// runBatch executes every config concurrently and returns results in
// input order.
func (o Options) runBatch(cfgs []sim.Config) []sim.Result {
	results := make([]sim.Result, len(cfgs))
	workers := o.parallelism()
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers <= 1 {
		for i, cfg := range cfgs {
			results[i] = o.run(cfg)
		}
		return results
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = o.run(cfgs[i])
			}
		}()
	}
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}
