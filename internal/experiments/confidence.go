package experiments

import (
	"fmt"
	"io"
	"math"

	"offloadsim/internal/policy"
	"offloadsim/internal/sim"
)

// ConfidenceResult quantifies seed sensitivity: the headline comparison
// (baseline vs SI vs HI vs oracle on apache at the aggressive point) is
// repeated across independent seeds and reported as mean ± standard
// deviation of normalized throughput. The simulator is deterministic per
// seed, so this measures *workload-realization* variance, the analogue of
// the paper running multiple benchmark regions.
type ConfidenceResult struct {
	Workload string
	Seeds    []uint64
	Policies []string
	// Mean[p] / StdDev[p] / Min[p] / Max[p] of normalized throughput
	// across seeds for policy index p.
	Mean   []float64
	StdDev []float64
	Min    []float64
	Max    []float64
}

// Confidence runs the study with nSeeds seeds derived from o.Seed.
func Confidence(o Options, nSeeds int) ConfidenceResult {
	if nSeeds < 2 {
		nSeeds = 2
	}
	prof := o.groupProfiles("apache")[0]
	kinds := []policy.Kind{policy.StaticInstrumentation, policy.HardwarePredictor, policy.Oracle}
	res := ConfidenceResult{
		Workload: prof.Name,
		Policies: []string{"SI", "HI", "oracle"},
	}
	for i := 0; i < nSeeds; i++ {
		res.Seeds = append(res.Seeds, o.Seed+uint64(i)*1000003)
	}

	// Grid: per seed, one baseline plus one run per policy.
	var cfgs []sim.Config
	for _, seed := range res.Seeds {
		so := o
		so.Seed = seed
		cfgs = append(cfgs, so.baseConfig(prof, policy.Baseline, 0, 0))
		for _, kind := range kinds {
			cfgs = append(cfgs, so.baseConfig(prof, kind, 100, 100))
		}
	}
	results := o.runBatch(cfgs)

	perPolicy := make([][]float64, len(kinds))
	idx := 0
	for range res.Seeds {
		base := results[idx].Throughput
		idx++
		for pi := range kinds {
			perPolicy[pi] = append(perPolicy[pi], results[idx].Throughput/base)
			idx++
		}
	}
	for _, norms := range perPolicy {
		var sum, sumSq float64
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range norms {
			sum += v
			sumSq += v * v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		n := float64(len(norms))
		mean := sum / n
		res.Mean = append(res.Mean, mean)
		res.StdDev = append(res.StdDev, math.Sqrt(math.Max(0, sumSq/n-mean*mean)))
		res.Min = append(res.Min, lo)
		res.Max = append(res.Max, hi)
	}
	return res
}

// Render writes the study.
func (r ConfidenceResult) Render(w io.Writer) {
	header := []string{"policy", "mean", "stddev", "min", "max"}
	var rows [][]string
	for i, p := range r.Policies {
		rows = append(rows, []string{p,
			fmt.Sprintf("%.3f", r.Mean[i]),
			fmt.Sprintf("%.3f", r.StdDev[i]),
			fmt.Sprintf("%.3f", r.Min[i]),
			fmt.Sprintf("%.3f", r.Max[i]),
		})
	}
	renderTable(w, fmt.Sprintf(
		"Seed sensitivity over %d seeds [%s, N=100, 100-cycle migration; normalized throughput]",
		len(r.Seeds), r.Workload), header, rows)
}
