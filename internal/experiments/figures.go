package experiments

import (
	"fmt"
	"io"

	"offloadsim/internal/core"
	"offloadsim/internal/plot"
	"offloadsim/internal/policy"
	"offloadsim/internal/sim"
	"offloadsim/internal/stats"
	"offloadsim/internal/workloads"
)

// Figure1Result holds the runtime overhead of dynamic software
// instrumentation of *all* OS entry points, with off-loading disabled —
// the pure cost of making decisions in software (paper Figure 1).
type Figure1Result struct {
	Costs     []int // instrumentation cost per entry, cycles
	Groups    []string
	Slowdowns [][]float64 // Slowdowns[g][c]: fractional throughput loss
}

// Figure1 measures instrumentation overhead at several per-entry costs,
// spanning the "tens of cycles in basic implementations to hundreds of
// cycles in complex implementations" range of §II.
func Figure1(o Options) Figure1Result {
	res := Figure1Result{
		Costs:  []int{50, 100, 200, 400},
		Groups: GroupNames(),
	}
	for _, g := range res.Groups {
		var row []float64
		for _, cost := range res.Costs {
			norm := o.groupNormalized(g, func(p *workloads.Profile) sim.Config {
				cfg := o.baseConfig(p, policy.DynamicInstrumentation, 1<<30, 0)
				cfg.Overheads.DI = cost
				cfg.InstrumentOnly = true
				return cfg
			})
			row = append(row, 1-norm)
		}
		res.Slowdowns = append(res.Slowdowns, row)
	}
	return res
}

// Render writes the figure as a table of slowdown percentages.
func (r Figure1Result) Render(w io.Writer) {
	header := []string{"Workload"}
	for _, c := range r.Costs {
		header = append(header, fmt.Sprintf("%d cyc/entry", c))
	}
	var rows [][]string
	for i, g := range r.Groups {
		row := []string{g}
		for _, s := range r.Slowdowns[i] {
			row = append(row, fmt.Sprintf("%.2f%%", 100*s))
		}
		rows = append(rows, row)
	}
	renderTable(w, "Figure 1: runtime overhead of dynamic software instrumentation (all OS entry points, no off-loading)",
		header, rows)
}

// Figure2Result summarizes the predictor organizations of Figure 2: the
// hardware budgets and the §III-A accuracy numbers measured on the full
// workload mix (73.6% exact / +24.8% within ±5% in the paper).
type Figure2Result struct {
	CAMEntries    int
	CAMBytes      int
	DMEntries     int
	DMBytes       int
	Workloads     []string
	ExactRate     []float64 // per workload, CAM organization
	Within5Rate   []float64
	DMExactRate   []float64 // direct-mapped organization
	DMWithin5Rate []float64
}

// Figure2 runs both predictor organizations across the workloads and
// collects accuracy; storage figures come from the structures themselves.
func Figure2(o Options) Figure2Result {
	// Accuracy experiments need the predictor fully warm on the rare
	// syscalls too (the paper warms 50 M instructions); scale the
	// budgets up relative to the throughput experiments.
	o.WarmupInstrs *= 5
	o.MeasureInstrs *= 3
	cam := core.NewCAMPredictor(core.DefaultCAMEntries)
	dm := core.NewDirectMappedPredictor(core.DefaultDirectMappedEntries)
	res := Figure2Result{
		CAMEntries: cam.Entries(),
		CAMBytes:   cam.StorageBits() / 8,
		DMEntries:  dm.Entries(),
		DMBytes:    dm.StorageBits() / 8,
		Workloads:  GroupNames(),
	}
	for _, g := range res.Workloads {
		var ex, w5, dex, dw5, n float64
		for _, prof := range o.groupProfiles(g) {
			cfg := o.baseConfig(prof, policy.HardwarePredictor, 1000, 100)
			r := o.run(cfg)
			ex += r.PredictorExact
			w5 += r.PredictorWithin5
			cfg.DirectMappedPredictor = true
			r = o.run(cfg)
			dex += r.PredictorExact
			dw5 += r.PredictorWithin5
			n++
		}
		res.ExactRate = append(res.ExactRate, ex/n)
		res.Within5Rate = append(res.Within5Rate, w5/n)
		res.DMExactRate = append(res.DMExactRate, dex/n)
		res.DMWithin5Rate = append(res.DMWithin5Rate, dw5/n)
	}
	return res
}

// MeanExact returns the cross-workload mean exact-prediction rate (CAM).
func (r Figure2Result) MeanExact() float64 {
	sum := 0.0
	for _, v := range r.ExactRate {
		sum += v
	}
	return sum / float64(len(r.ExactRate))
}

// MeanWithin5 returns the cross-workload mean within-±5% rate (CAM).
func (r Figure2Result) MeanWithin5() float64 {
	sum := 0.0
	for _, v := range r.Within5Rate {
		sum += v
	}
	return sum / float64(len(r.Within5Rate))
}

// Render writes the predictor summary.
func (r Figure2Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 2: OS run-length predictor organizations\n")
	fmt.Fprintf(w, "  CAM: %d entries, %d bytes (paper: 200 entries, ~2 KB)\n", r.CAMEntries, r.CAMBytes)
	fmt.Fprintf(w, "  Direct-mapped (tag-less): %d entries, %d bytes (paper: 1500 entries, ~3.3 KB)\n\n", r.DMEntries, r.DMBytes)
	header := []string{"Workload", "CAM exact", "CAM ±5%", "DM exact", "DM ±5%"}
	var rows [][]string
	for i, g := range r.Workloads {
		rows = append(rows, []string{g,
			fmt.Sprintf("%.1f%%", 100*r.ExactRate[i]),
			fmt.Sprintf("%.1f%%", 100*r.Within5Rate[i]),
			fmt.Sprintf("%.1f%%", 100*r.DMExactRate[i]),
			fmt.Sprintf("%.1f%%", 100*r.DMWithin5Rate[i]),
		})
	}
	renderTable(w, "  Run-length prediction accuracy", header, rows)
	fmt.Fprintf(w, "  Mean: %.1f%% exact + %.1f%% within ±5%% (paper: 73.6%% + 24.8%%)\n\n",
		100*r.MeanExact(), 100*r.MeanWithin5())
}

// Figure3Result holds binary off-load decision accuracy per trigger
// threshold (paper Figure 3).
type Figure3Result struct {
	Thresholds []int
	Groups     []string
	HitRate    [][]float64 // HitRate[g][t]
}

// Figure3 measures how often the predictor-driven binary decision
// (off-load vs stay) matches an oracle with the same threshold.
func Figure3(o Options) Figure3Result {
	// Same warm-predictor requirement as Figure2.
	o.WarmupInstrs *= 5
	o.MeasureInstrs *= 3
	res := Figure3Result{
		Thresholds: []int{100, 500, 1000, 5000, 10000},
		Groups:     GroupNames(),
	}
	type key struct{ g, n, m int }
	var cfgs []sim.Config
	var keys []key
	for gi, g := range res.Groups {
		for mi, prof := range o.groupProfiles(g) {
			for ni, n := range res.Thresholds {
				cfgs = append(cfgs, o.baseConfig(prof, policy.HardwarePredictor, n, 100))
				keys = append(keys, key{gi, ni, mi})
			}
		}
	}
	results := o.runBatch(cfgs)
	for gi, g := range res.Groups {
		members := len(o.groupProfiles(g))
		row := make([]float64, len(res.Thresholds))
		for i, k := range keys {
			if k.g == gi {
				row[k.n] += results[i].BinaryAccuracy / float64(members)
			}
		}
		res.HitRate = append(res.HitRate, row)
	}
	return res
}

// Render writes the accuracy table.
func (r Figure3Result) Render(w io.Writer) {
	header := []string{"Workload"}
	for _, n := range r.Thresholds {
		header = append(header, fmt.Sprintf("N=%d", n))
	}
	var rows [][]string
	for i, g := range r.Groups {
		row := []string{g}
		for _, v := range r.HitRate[i] {
			row = append(row, fmt.Sprintf("%.1f%%", 100*v))
		}
		rows = append(rows, row)
	}
	renderTable(w, "Figure 3: binary prediction hit rate for core-migration trigger thresholds",
		header, rows)
}

// Figure4Result holds normalized IPC against the single-core baseline for
// every (threshold, one-way latency) point — the paper's four-panel
// Figure 4.
type Figure4Result struct {
	Thresholds []int
	Latencies  []int
	Groups     []string
	// Normalized[g][l][t]: throughput relative to the group's baseline.
	Normalized [][][]float64
}

// Figure4 runs the threshold x latency sweep with the hardware predictor.
func Figure4(o Options) Figure4Result {
	res := Figure4Result{
		Thresholds: []int{0, 50, 100, 250, 500, 1000, 2500, 5000, 10000},
		Latencies:  []int{0, 100, 500, 1000, 5000},
		Groups:     GroupNames(),
	}
	res.Normalized = make([][][]float64, len(res.Groups))
	// Build the whole grid up front and run it on all CPUs: every point
	// is an independent deterministic simulation.
	type key struct {
		group, lat, n, member int
	}
	var cfgs []sim.Config
	var keys []key
	baselineIdx := map[string]int{}
	for gi, g := range res.Groups {
		for mi, p := range o.groupProfiles(g) {
			if _, ok := baselineIdx[p.Name]; !ok {
				baselineIdx[p.Name] = len(cfgs)
				cfgs = append(cfgs, o.baseConfig(p, policy.Baseline, 0, 0))
				keys = append(keys, key{-1, -1, -1, -1})
			}
			for li := range res.Latencies {
				for ni := range res.Thresholds {
					cfgs = append(cfgs, o.baseConfig(p, policy.HardwarePredictor,
						res.Thresholds[ni], res.Latencies[li]))
					keys = append(keys, key{gi, li, ni, mi})
				}
			}
		}
	}
	results := o.runBatch(cfgs)

	// Assemble: geometric mean across group members per (lat, n) point.
	for gi, g := range res.Groups {
		profiles := o.groupProfiles(g)
		panel := make([][]float64, len(res.Latencies))
		for li := range panel {
			panel[li] = make([]float64, len(res.Thresholds))
		}
		for li := range res.Latencies {
			for ni := range res.Thresholds {
				var norms []float64
				for mi, p := range profiles {
					base := results[baselineIdx[p.Name]].Throughput
					for ki, k := range keys {
						if k.group == gi && k.lat == li && k.n == ni && k.member == mi {
							norms = append(norms, results[ki].Throughput/base)
						}
					}
				}
				panel[li][ni] = geoMean(norms)
			}
		}
		res.Normalized[gi] = panel
	}
	return res
}

// RenderCharts draws the four panels as ASCII line charts (one curve per
// migration latency), the closest terminal equivalent of the paper's
// Figure 4.
func (r Figure4Result) RenderCharts(w io.Writer) {
	for gi, g := range r.Groups {
		chart := plot.Chart{
			Title:  fmt.Sprintf("Figure 4 [%s]: normalized IPC vs threshold N", g),
			YLabel: "throughput normalized to single-core baseline",
		}
		for _, n := range r.Thresholds {
			chart.XLabels = append(chart.XLabels, fmt.Sprint(n))
		}
		for li, lat := range r.Latencies {
			chart.Series = append(chart.Series, plot.Series{
				Name:   fmt.Sprintf("%d cyc", lat),
				Values: r.Normalized[gi][li],
			})
		}
		chart.Render(w)
	}
}

// Best returns the peak normalized throughput and its (latency,
// threshold) for a group index.
func (r Figure4Result) Best(group int) (norm float64, latency, threshold int) {
	for li, lat := range r.Latencies {
		for ti, n := range r.Thresholds {
			if v := r.Normalized[group][li][ti]; v > norm {
				norm, latency, threshold = v, lat, n
			}
		}
	}
	return norm, latency, threshold
}

// Render writes one table per workload panel.
func (r Figure4Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 4: normalized IPC vs off-loading threshold N, per one-way migration latency")
	for gi, g := range r.Groups {
		header := []string{"one-way lat"}
		for _, n := range r.Thresholds {
			header = append(header, fmt.Sprintf("N=%d", n))
		}
		var rows [][]string
		for li, lat := range r.Latencies {
			row := []string{fmt.Sprintf("%d cyc", lat)}
			for ti := range r.Thresholds {
				row = append(row, fmt.Sprintf("%.3f", r.Normalized[gi][li][ti]))
			}
			rows = append(rows, row)
		}
		renderTable(w, fmt.Sprintf("  [%s] (1.000 = single-core baseline)", g), header, rows)
	}
}

// Figure5Result compares the decision policies at the conservative
// (5,000-cycle) and aggressive (100-cycle) migration points (paper
// Figure 5). DI and HI are reported at the best threshold on the dynamic
// tuner's ladder: the paper's §III-B mechanism converges there over
// hundreds of millions of instructions, which our measurement windows
// (1000x shorter than the paper's) are too small to replay live; the
// live sampler itself is exercised by the tuner unit tests and the
// examples/tuner demo.
type Figure5Result struct {
	Groups   []string
	Policies []string // SI, DI, HI
	// Normalized[g][p][0]=conservative, [1]=aggressive.
	Normalized [][][2]float64
}

// figure5Points are the two migration engines of Figure 5.
var figure5Points = []int{5000, 100}

// Figure5 runs the policy comparison.
func Figure5(o Options) Figure5Result {
	res := Figure5Result{
		Groups:   GroupNames(),
		Policies: []string{"SI", "DI", "HI"},
	}
	// tunerLadder mirrors DefaultTunerConfig's interior rungs (N=0 and
	// the top guard rung are never optimal and are skipped to bound
	// runtime).
	tunerLadder := []int{50, 100, 500, 1000, 5000, 10000}
	kinds := []policy.Kind{policy.StaticInstrumentation, policy.DynamicInstrumentation, policy.HardwarePredictor}

	// Build the full grid (baselines + every policy point) and run it
	// concurrently; every run is independent and deterministic.
	var cfgs []sim.Config
	type key struct {
		prof string
		kind policy.Kind
		lat  int
		n    int
	}
	var keys []key
	seen := map[string]bool{}
	for _, g := range res.Groups {
		for _, p := range o.groupProfiles(g) {
			if seen[p.Name] {
				continue
			}
			seen[p.Name] = true
			cfgs = append(cfgs, o.baseConfig(p, policy.Baseline, 0, 0))
			keys = append(keys, key{p.Name, policy.Baseline, 0, 0})
			for _, kind := range kinds {
				for _, lat := range figure5Points {
					if kind == policy.StaticInstrumentation {
						cfgs = append(cfgs, o.baseConfig(p, kind, 0, lat))
						keys = append(keys, key{p.Name, kind, lat, 0})
						continue
					}
					for _, n := range tunerLadder {
						cfgs = append(cfgs, o.baseConfig(p, kind, n, lat))
						keys = append(keys, key{p.Name, kind, lat, n})
					}
				}
			}
		}
	}
	results := o.runBatch(cfgs)
	lookup := map[key]float64{}
	for i, k := range keys {
		lookup[k] = results[i].Throughput
	}

	for _, g := range res.Groups {
		profiles := o.groupProfiles(g)
		var row [][2]float64
		for _, kind := range kinds {
			var point [2]float64
			for pi, lat := range figure5Points {
				var norms []float64
				for _, p := range profiles {
					base := lookup[key{p.Name, policy.Baseline, 0, 0}]
					if kind == policy.StaticInstrumentation {
						norms = append(norms, lookup[key{p.Name, kind, lat, 0}]/base)
						continue
					}
					best := 0.0
					for _, n := range tunerLadder {
						if v := lookup[key{p.Name, kind, lat, n}] / base; v > best {
							best = v
						}
					}
					norms = append(norms, best)
				}
				point[pi] = geoMean(norms)
			}
			row = append(row, point)
		}
		res.Normalized = append(res.Normalized, row)
	}
	return res
}

// Render writes the policy comparison.
func (r Figure5Result) Render(w io.Writer) {
	header := []string{"Workload"}
	for _, p := range r.Policies {
		header = append(header, p+"-Cons", p+"-Agg")
	}
	var rows [][]string
	for gi, g := range r.Groups {
		row := []string{g}
		for pi := range r.Policies {
			row = append(row, fmt.Sprintf("%.3f", r.Normalized[gi][pi][0]),
				fmt.Sprintf("%.3f", r.Normalized[gi][pi][1]))
		}
		rows = append(rows, row)
	}
	renderTable(w, "Figure 5: normalized throughput by policy (Cons = 5,000-cycle migration, Agg = 100-cycle)",
		header, rows)
}

// geoMean aggregates normalized throughputs across group members.
func geoMean(xs []float64) float64 { return stats.GeoMean(xs) }
