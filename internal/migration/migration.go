// Package migration models the mechanisms that move execution between a
// user core and the OS core, and the queuing that arises when one OS core
// serves several user cores (§II "Migration Implementations", §V-C).
//
// The paper deliberately parameterizes the one-way migration latency
// because it dominates the achievable benefit: ~5,000 cycles for an
// unmodified Linux 2.6.18 kernel migration, ~3,000 for proposed software
// improvements (Strong et al.), and ~100 cycles for the Brown & Tullsen
// hardware thread-transfer mechanism.
package migration

import (
	"fmt"

	"offloadsim/internal/stats"
)

// Engine describes one migration implementation.
type Engine struct {
	Name string
	// OneWay is the one-way migration latency in cycles. A full
	// off-load pays it twice: once to reach the OS core and once to
	// return.
	OneWay int
	// Description says where the number comes from.
	Description string
}

// Validate rejects negative latencies.
func (e Engine) Validate() error {
	if e.OneWay < 0 {
		return fmt.Errorf("migration: negative one-way latency %d", e.OneWay)
	}
	return nil
}

// Conservative is today's software path: interrupt the user core, write
// architected state to memory, interrupt the OS core, reload (§II;
// ~5,000 cycles in unmodified Linux 2.6.18).
func Conservative() Engine {
	return Engine{Name: "conservative", OneWay: 5000,
		Description: "unmodified Linux 2.6.18 kernel thread migration"}
}

// Fast is the improved software switching of Strong et al. (~3,000
// cycles).
func Fast() Engine {
	return Engine{Name: "fast", OneWay: 3000,
		Description: "software fast-switch (Strong et al., OSR 2009)"}
}

// Aggressive is the hardware state-machine transfer of Brown & Tullsen
// (~100 cycles).
func Aggressive() Engine {
	return Engine{Name: "aggressive", OneWay: 100,
		Description: "hardware thread transfer (Brown & Tullsen, ICS 2008)"}
}

// Custom builds an engine with an arbitrary one-way latency, for the
// latency sweeps of Figure 4.
func Custom(oneWay int) Engine {
	return Engine{Name: fmt.Sprintf("custom-%d", oneWay), OneWay: oneWay,
		Description: "parameterized latency point"}
}

// OSCore models the off-load target: a core that serves off-loaded OS
// invocations on a fixed number of hardware contexts. The paper evaluates
// a single (non-SMT) core — requests queue whenever it is busy (§V-C) —
// and suggests SMT as the way one OS core might serve several user cores;
// Slots > 1 models that extension as a k-server queue. The zero value is
// the paper's single-context core.
type OSCore struct {
	freeAt []uint64 // next-free cycle per hardware context

	Requests   stats.Counter
	BusyCycles stats.Counter
	QueueDelay stats.Running
}

// NewOSCore builds an OS core with the given number of hardware contexts
// (clamped to at least 1).
func NewOSCore(slots int) *OSCore {
	if slots < 1 {
		slots = 1
	}
	return &OSCore{freeAt: make([]uint64, slots)}
}

// ensure lazily initializes the zero value as a single-context core.
func (o *OSCore) ensure() {
	if len(o.freeAt) == 0 {
		o.freeAt = make([]uint64, 1)
	}
}

// Slots returns the number of hardware contexts.
func (o *OSCore) Slots() int {
	o.ensure()
	return len(o.freeAt)
}

// Reserve books a context for an off-loaded invocation arriving at the
// given cycle (already including the inbound migration). It returns the
// cycle execution starts and the queuing delay endured.
func (o *OSCore) Reserve(arrival, execCycles uint64) (start, wait uint64) {
	o.ensure()
	// Earliest-free context serves the request.
	best := 0
	for i := 1; i < len(o.freeAt); i++ {
		if o.freeAt[i] < o.freeAt[best] {
			best = i
		}
	}
	start = arrival
	if o.freeAt[best] > start {
		start = o.freeAt[best]
	}
	wait = start - arrival
	o.freeAt[best] = start + execCycles
	o.Requests.Inc()
	o.BusyCycles.Add(execCycles)
	o.QueueDelay.Observe(float64(wait))
	return start, wait
}

// Backlog counts the hardware contexts still busy at the given cycle —
// the queue depth an off-load arriving then observes. Read-only; the
// telemetry layer samples it before Reserve books the request.
func (o *OSCore) Backlog(now uint64) int {
	o.ensure()
	n := 0
	for _, f := range o.freeAt {
		if f > now {
			n++
		}
	}
	return n
}

// FreeAt returns the earliest cycle at which some context becomes idle.
func (o *OSCore) FreeAt() uint64 {
	o.ensure()
	min := o.freeAt[0]
	for _, f := range o.freeAt[1:] {
		if f < min {
			min = f
		}
	}
	return min
}

// Utilization returns busy cycles as a fraction of the elapsed capacity
// (horizon x contexts).
func (o *OSCore) Utilization(horizon uint64) float64 {
	if horizon == 0 {
		return 0
	}
	o.ensure()
	u := float64(o.BusyCycles.Value()) / (float64(horizon) * float64(len(o.freeAt)))
	if u > 1 {
		u = 1
	}
	return u
}

// ResetStats clears the accounting but keeps the busy horizon so
// in-flight reservations stay consistent.
func (o *OSCore) ResetStats() {
	o.Requests.Reset()
	o.BusyCycles.Reset()
	o.QueueDelay.Reset()
}
