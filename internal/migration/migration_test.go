package migration

import "testing"

func TestEngineLatenciesMatchPaper(t *testing.T) {
	if Conservative().OneWay != 5000 {
		t.Fatal("conservative must be 5000 cycles (§II)")
	}
	if Fast().OneWay != 3000 {
		t.Fatal("fast must be 3000 cycles (Strong et al.)")
	}
	if Aggressive().OneWay != 100 {
		t.Fatal("aggressive must be 100 cycles (Brown & Tullsen)")
	}
	if Custom(777).OneWay != 777 {
		t.Fatal("custom latency not honored")
	}
}

func TestEngineValidate(t *testing.T) {
	if err := (Engine{OneWay: -1}).Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}
	if err := Custom(0).Validate(); err != nil {
		t.Fatalf("zero latency (ideal point) rejected: %v", err)
	}
}

func TestReserveIdleCore(t *testing.T) {
	var o OSCore
	start, wait := o.Reserve(1000, 500)
	if start != 1000 || wait != 0 {
		t.Fatalf("idle reserve: start=%d wait=%d", start, wait)
	}
	if o.FreeAt() != 1500 {
		t.Fatalf("freeAt = %d", o.FreeAt())
	}
}

func TestReserveQueues(t *testing.T) {
	var o OSCore
	o.Reserve(1000, 500) // busy until 1500
	start, wait := o.Reserve(1200, 300)
	if start != 1500 || wait != 300 {
		t.Fatalf("queued reserve: start=%d wait=%d", start, wait)
	}
	if o.FreeAt() != 1800 {
		t.Fatalf("freeAt = %d", o.FreeAt())
	}
	if o.QueueDelay.Mean() != 150 { // (0+300)/2
		t.Fatalf("mean queue delay = %v", o.QueueDelay.Mean())
	}
}

func TestReserveAfterIdleGap(t *testing.T) {
	var o OSCore
	o.Reserve(100, 50)
	start, wait := o.Reserve(10_000, 10)
	if start != 10_000 || wait != 0 {
		t.Fatalf("gap reserve: start=%d wait=%d", start, wait)
	}
}

func TestUtilization(t *testing.T) {
	var o OSCore
	o.Reserve(0, 300)
	o.Reserve(300, 200)
	if got := o.Utilization(1000); got != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
	if o.Utilization(0) != 0 {
		t.Fatal("zero horizon should report 0")
	}
	// Clamped at 1.
	if o.Utilization(100) != 1 {
		t.Fatal("utilization should clamp at 1")
	}
}

func TestResetStatsKeepsHorizon(t *testing.T) {
	var o OSCore
	o.Reserve(0, 1000)
	o.ResetStats()
	if o.Requests.Value() != 0 || o.BusyCycles.Value() != 0 {
		t.Fatal("stats not cleared")
	}
	// The core is still busy until 1000.
	start, wait := o.Reserve(500, 10)
	if start != 1000 || wait != 500 {
		t.Fatalf("horizon lost: start=%d wait=%d", start, wait)
	}
}

func TestMultiSlotOSCore(t *testing.T) {
	o := NewOSCore(2)
	if o.Slots() != 2 {
		t.Fatalf("slots = %d", o.Slots())
	}
	// Two overlapping requests fit in parallel contexts: no queuing.
	s1, w1 := o.Reserve(100, 500)
	s2, w2 := o.Reserve(150, 500)
	if w1 != 0 || w2 != 0 || s1 != 100 || s2 != 150 {
		t.Fatalf("SMT contexts queued: (%d,%d) (%d,%d)", s1, w1, s2, w2)
	}
	// The third request must wait for the earlier context (free at 600).
	s3, w3 := o.Reserve(200, 100)
	if s3 != 600 || w3 != 400 {
		t.Fatalf("third request: start=%d wait=%d, want 600/400", s3, w3)
	}
}

func TestZeroValueIsSingleSlot(t *testing.T) {
	var o OSCore
	if o.Slots() != 1 {
		t.Fatalf("zero value has %d slots", o.Slots())
	}
	o.Reserve(0, 100)
	if _, w := o.Reserve(0, 100); w != 100 {
		t.Fatal("zero-value core did not serialize")
	}
}

func TestNewOSCoreClampsSlots(t *testing.T) {
	if NewOSCore(0).Slots() != 1 || NewOSCore(-3).Slots() != 1 {
		t.Fatal("non-positive slots not clamped")
	}
}

func TestUtilizationScalesWithSlots(t *testing.T) {
	o := NewOSCore(2)
	o.Reserve(0, 500)
	// 500 busy cycles over a 1000-cycle horizon with 2 contexts = 25%.
	if got := o.Utilization(1000); got != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", got)
	}
}
