// Package isa models the slice of the UltraSPARC III architected state
// that the paper's hardware predictor observes. The predictor (Nellans et
// al., §III-A) indexes its table with "AState": the XOR of the PSTATE
// register (privilege/interrupt/FP state), the g0 and g1 global registers,
// and the i0 and i1 input-argument registers, captured at every transition
// into privileged mode.
//
// We model exactly those registers plus the SPARC register-window
// machinery, because the windows' spill/fill traps are the source of the
// very short (<25 instruction) privileged sequences that §IV calls out and
// that any general off-loading mechanism must cope with.
package isa

// PSTATE bit fields, following the SPARC V9 PSTATE layout that matters for
// execution-mode tracking. Only the bits the simulator manipulates are
// modeled; the remaining bits are carried opaquely so they still perturb
// the AState hash the way real register content would.
const (
	// PStateAG selects the alternate globals (set during trap handling).
	PStateAG uint64 = 1 << 0
	// PStateIE enables interrupts. When a privileged sequence runs with
	// IE set, an external interrupt may extend the sequence — the one
	// source of run-length misprediction the paper identifies.
	PStateIE uint64 = 1 << 1
	// PStatePriv is the privileged-execution bit. Every 0->1 transition
	// is an OS entry and a prediction point.
	PStatePriv uint64 = 1 << 2
	// PStateAM enables 32-bit address masking.
	PStateAM uint64 = 1 << 3
	// PStatePEF enables the floating point unit.
	PStatePEF uint64 = 1 << 4
	// PStateMM is the two-bit memory-model field (TSO/PSO/RMO).
	PStateMM uint64 = 3 << 6
)

// NumWindows is the number of register windows in the modeled core. Real
// UltraSPARC III implements 8; the exact count only shifts spill/fill
// frequency slightly.
const NumWindows = 8

// RegFile is the architected register state visible to the predictor. The
// simulator updates it as workload segments execute so the AState captured
// at OS entry reflects syscall number and arguments the way the SPARC ABI
// exposes them (syscall number in g1, arguments in o0/o1 which become the
// callee's i0/i1).
type RegFile struct {
	PState uint64
	G0     uint64 // architecturally always zero on SPARC; modeled as such
	G1     uint64 // syscall number lives here per the Solaris/Linux ABI
	I0     uint64 // first argument register (callee view)
	I1     uint64 // second argument register (callee view)

	// CWP/CANSAVE/CANRESTORE implement the rotating register window
	// state machine that produces spill/fill traps.
	CWP        int
	CanSave    int
	CanRestore int
}

// NewRegFile returns a register file in the reset state: user mode,
// interrupts enabled, FP enabled, all windows available for saving.
func NewRegFile() *RegFile {
	return &RegFile{
		PState:     PStateIE | PStatePEF,
		CanSave:    NumWindows - 2,
		CanRestore: 0,
	}
}

// Privileged reports whether the core is executing in privileged mode.
func (r *RegFile) Privileged() bool { return r.PState&PStatePriv != 0 }

// InterruptsEnabled reports whether PSTATE.IE is set.
func (r *RegFile) InterruptsEnabled() bool { return r.PState&PStateIE != 0 }

// EnterPrivileged flips the core into privileged mode, as a trap or
// syscall instruction would. Interrupt enablement is preserved unless
// maskInterrupts is set (most trap handlers run the first few instructions
// with interrupts disabled; long syscalls re-enable them, which is what
// exposes them to run-length extension).
func (r *RegFile) EnterPrivileged(maskInterrupts bool) {
	r.PState |= PStatePriv | PStateAG
	if maskInterrupts {
		r.PState &^= PStateIE
	}
}

// ExitPrivileged returns the core to user mode with interrupts enabled.
func (r *RegFile) ExitPrivileged() {
	r.PState &^= PStatePriv | PStateAG
	r.PState |= PStateIE
}

// SetSyscallArgs loads the registers the way a user program does
// immediately before a trap: syscall number in g1, first two arguments in
// the in-registers.
func (r *RegFile) SetSyscallArgs(num, arg0, arg1 uint64) {
	r.G1 = num
	r.I0 = arg0
	r.I1 = arg1
}

// AState computes the predictor index exactly as §III-A specifies: the
// XOR of PSTATE, g0, g1, i0 and i1. On real hardware this is a single
// 64-bit XOR tree evaluated in the cycle of the privileged-mode
// transition, which is what lets the hardware policy decide in one cycle.
func (r *RegFile) AState() uint64 {
	return r.PState ^ r.G0 ^ r.G1 ^ r.I0 ^ r.I1
}

// WindowEvent describes the outcome of a register-window operation.
type WindowEvent int

const (
	// WindowOK means the save/restore hit an available window.
	WindowOK WindowEvent = iota
	// WindowSpill means a save found no clean window: the core traps to
	// the OS spill handler (a short privileged sequence).
	WindowSpill
	// WindowFill means a restore found no restorable window: the core
	// traps to the OS fill handler.
	WindowFill
)

// Save models a procedure-call SAVE instruction. When the windows are
// exhausted it returns WindowSpill: the OS spill handler must write the
// oldest window to the memory stack.
func (r *RegFile) Save() WindowEvent {
	r.CWP = (r.CWP + 1) % NumWindows
	if r.CanSave == 0 {
		// Spill: the trap handler writes the oldest window to the
		// stack (CANSAVE++/CANRESTORE--), then the SAVE completes
		// (CANSAVE--/CANRESTORE++) — a net-zero change, preserving
		// CANSAVE+CANRESTORE == NumWindows-2.
		return WindowSpill
	}
	r.CanSave--
	r.CanRestore++
	return WindowOK
}

// Restore models a procedure-return RESTORE instruction. When no window
// holds the caller's registers it returns WindowFill: the OS fill handler
// reloads the window from the stack.
func (r *RegFile) Restore() WindowEvent {
	r.CWP = (r.CWP - 1 + NumWindows) % NumWindows
	if r.CanRestore == 0 {
		// Fill: the trap handler reloads the caller's window from
		// the stack, then the RESTORE completes — net zero, same
		// invariant as Save's spill path.
		return WindowFill
	}
	r.CanRestore--
	r.CanSave++
	return WindowOK
}

// WindowsInUse returns the number of occupied windows, for diagnostics.
func (r *RegFile) WindowsInUse() int { return r.CanRestore }
