package isa

import (
	"testing"
	"testing/quick"
)

func TestResetState(t *testing.T) {
	r := NewRegFile()
	if r.Privileged() {
		t.Fatal("reset state should be user mode")
	}
	if !r.InterruptsEnabled() {
		t.Fatal("reset state should have interrupts enabled")
	}
	if r.G0 != 0 {
		t.Fatal("g0 must be zero")
	}
}

func TestEnterExitPrivileged(t *testing.T) {
	r := NewRegFile()
	r.EnterPrivileged(false)
	if !r.Privileged() {
		t.Fatal("EnterPrivileged did not set priv bit")
	}
	if !r.InterruptsEnabled() {
		t.Fatal("interrupts should remain enabled when not masked")
	}
	r.ExitPrivileged()
	if r.Privileged() {
		t.Fatal("ExitPrivileged did not clear priv bit")
	}
	if !r.InterruptsEnabled() {
		t.Fatal("ExitPrivileged should restore interrupts")
	}
}

func TestEnterPrivilegedMasksInterrupts(t *testing.T) {
	r := NewRegFile()
	r.EnterPrivileged(true)
	if r.InterruptsEnabled() {
		t.Fatal("maskInterrupts did not clear IE")
	}
	r.ExitPrivileged()
	if !r.InterruptsEnabled() {
		t.Fatal("exit should re-enable interrupts")
	}
}

func TestAStateReflectsSyscallIdentity(t *testing.T) {
	r := NewRegFile()
	r.SetSyscallArgs(5, 100, 200)
	r.EnterPrivileged(false)
	a1 := r.AState()

	r2 := NewRegFile()
	r2.SetSyscallArgs(5, 100, 200)
	r2.EnterPrivileged(false)
	if r2.AState() != a1 {
		t.Fatal("identical syscall state should hash identically")
	}

	r2.SetSyscallArgs(6, 100, 200)
	if r2.AState() == a1 {
		t.Fatal("different syscall number should change AState")
	}
	r2.SetSyscallArgs(5, 101, 200)
	if r2.AState() == a1 {
		t.Fatal("different argument should change AState")
	}
}

func TestAStateChangesWithPrivilegeBits(t *testing.T) {
	r := NewRegFile()
	r.SetSyscallArgs(5, 1, 2)
	user := r.AState()
	r.EnterPrivileged(false)
	if r.AState() == user {
		t.Fatal("privilege transition should perturb AState")
	}
}

func TestWindowSpillAfterExhaustion(t *testing.T) {
	r := NewRegFile()
	spills := 0
	for i := 0; i < NumWindows; i++ {
		if r.Save() == WindowSpill {
			spills++
		}
	}
	if spills == 0 {
		t.Fatal("deep call chain should eventually spill")
	}
	// First NumWindows-2 saves must succeed.
	r2 := NewRegFile()
	for i := 0; i < NumWindows-2; i++ {
		if ev := r2.Save(); ev != WindowOK {
			t.Fatalf("save %d trapped unexpectedly: %v", i, ev)
		}
	}
	if ev := r2.Save(); ev != WindowSpill {
		t.Fatalf("save beyond capacity should spill, got %v", ev)
	}
}

func TestWindowFillAfterSpill(t *testing.T) {
	r := NewRegFile()
	// Exhaust and spill several times so earlier windows are on the stack.
	for i := 0; i < NumWindows+3; i++ {
		r.Save()
	}
	fills := 0
	for i := 0; i < NumWindows+3; i++ {
		if r.Restore() == WindowFill {
			fills++
		}
	}
	if fills == 0 {
		t.Fatal("returning past spilled windows should fill")
	}
}

func TestBalancedSaveRestoreNoTraps(t *testing.T) {
	r := NewRegFile()
	for depth := 0; depth < NumWindows-2; depth++ {
		if r.Save() != WindowOK {
			t.Fatal("save within capacity trapped")
		}
	}
	for depth := 0; depth < NumWindows-2; depth++ {
		if r.Restore() != WindowOK {
			t.Fatal("restore of in-register window trapped")
		}
	}
}

// Property: AState is a pure function of the five registers.
func TestQuickAStatePure(t *testing.T) {
	f := func(pstate, g1, i0, i1 uint64) bool {
		a := &RegFile{PState: pstate, G1: g1, I0: i0, I1: i1}
		b := &RegFile{PState: pstate, G1: g1, I0: i0, I1: i1}
		return a.AState() == b.AState() && a.AState() == pstate^g1^i0^i1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: window state machine never goes out of bounds under random
// save/restore sequences.
func TestQuickWindowInvariants(t *testing.T) {
	f := func(ops []bool) bool {
		r := NewRegFile()
		for _, save := range ops {
			if save {
				r.Save()
			} else {
				r.Restore()
			}
			if r.CanSave < 0 || r.CanSave > NumWindows-2 {
				return false
			}
			if r.CanRestore < 0 || r.CanRestore > NumWindows-2 {
				return false
			}
			if r.CWP < 0 || r.CWP >= NumWindows {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
