package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Sink consumes a capture's event stream. Export drives it: one Begin,
// one Event per merged record in canonical order, one End. Encoders are
// required to be deterministic — identical captures must produce
// identical bytes.
type Sink interface {
	Begin(meta Meta, dropped uint64) error
	Event(ev Event) error
	End() error
}

// Export streams c through s in the canonical merged order.
func Export(c *Capture, s Sink) error {
	if c == nil {
		return fmt.Errorf("telemetry: nil capture")
	}
	if err := s.Begin(c.Meta, c.Dropped); err != nil {
		return err
	}
	for _, ev := range c.Events {
		if err := s.Event(ev); err != nil {
			return err
		}
	}
	return s.End()
}

// JSONLSink encodes the trace as JSON Lines: a meta header line followed
// by one object per event. The encoder is hand-rolled with a fixed field
// order and per-kind field sets (docs/TELEMETRY.md), so the bytes are a
// pure function of the capture.
type JSONLSink struct {
	w   *bufio.Writer
	buf []byte
}

// NewJSONLSink wraps w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Begin writes the meta header line.
func (s *JSONLSink) Begin(meta Meta, dropped uint64) error {
	b, err := json.Marshal(struct {
		Meta    Meta   `json:"meta"`
		Dropped uint64 `json:"dropped"`
	}{meta, dropped})
	if err != nil {
		return err
	}
	s.w.Write(b)
	return s.w.WriteByte('\n')
}

// Event writes one event line.
func (s *JSONLSink) Event(ev Event) error {
	b := s.buf[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendUint(b, ev.Time, 10)
	b = append(b, `,"core":`...)
	b = strconv.AppendInt(b, int64(ev.Core), 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendUint(b, uint64(ev.Seq), 10)
	b = append(b, `,"kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, '"')
	if ev.Sys >= 0 {
		b = append(b, `,"sys":`...)
		b = strconv.AppendInt(b, int64(ev.Sys), 10)
	}
	switch ev.Kind {
	case KindOSEntry:
		b = appendInstrs(b, ev)
	case KindPredict:
		b = appendInstrs(b, ev)
		b = appendPred(b, ev)
		b = appendBool(b, `,"offload":`, ev.Offload)
		b = appendBool(b, `,"global":`, ev.Global)
		b = appendCycles(b, ev)
	case KindOSExit, KindOffloadDispatch, KindOffloadExecute, KindOffloadReturn:
		b = appendCycles(b, ev)
	case KindOffloadQueue, KindOSCoreEnqueue, KindOSCoreExecute, KindAsyncReturn:
		b = appendCycles(b, ev)
		b = appendValue(b, ev)
	case KindCacheWarm:
		b = appendValue(b, ev)
	case KindOutcome:
		b = appendInstrs(b, ev)
		b = appendPred(b, ev)
		b = appendBool(b, `,"offload":`, ev.Offload)
		b = appendValue(b, ev)
	case KindRetune:
		b = appendValue(b, ev)
	}
	b = append(b, '}', '\n')
	s.buf = b
	_, err := s.w.Write(b)
	return err
}

// End flushes.
func (s *JSONLSink) End() error { return s.w.Flush() }

func appendInstrs(b []byte, ev Event) []byte {
	b = append(b, `,"instrs":`...)
	return strconv.AppendInt(b, int64(ev.Instrs), 10)
}

func appendPred(b []byte, ev Event) []byte {
	b = append(b, `,"pred":`...)
	return strconv.AppendInt(b, int64(ev.Pred), 10)
}

func appendCycles(b []byte, ev Event) []byte {
	b = append(b, `,"cycles":`...)
	return strconv.AppendUint(b, ev.Cycles, 10)
}

func appendValue(b []byte, ev Event) []byte {
	b = append(b, `,"value":`...)
	return strconv.AppendInt(b, ev.Value, 10)
}

func appendBool(b []byte, key string, v bool) []byte {
	b = append(b, key...)
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}

// jsonlRecord is the union wire shape one JSONL line decodes into.
type jsonlRecord struct {
	Meta    *Meta  `json:"meta"`
	Dropped uint64 `json:"dropped"`

	T       uint64 `json:"t"`
	Core    int32  `json:"core"`
	Seq     uint32 `json:"seq"`
	Kind    string `json:"kind"`
	Sys     *int32 `json:"sys"`
	Instrs  int32  `json:"instrs"`
	Pred    int32  `json:"pred"`
	Offload bool   `json:"offload"`
	Global  bool   `json:"global"`
	Cycles  uint64 `json:"cycles"`
	Value   int64  `json:"value"`
}

// ReadJSONL parses a JSONL trace back into a Capture (events only; the
// interval series travels separately). It is the inverse of JSONLSink
// and backs tracedump's format conversion.
func ReadJSONL(r io.Reader) (*Capture, error) {
	c := &Capture{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec jsonlRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("telemetry: jsonl line %d: %w", line, err)
		}
		if rec.Meta != nil {
			c.Meta = *rec.Meta
			c.Dropped = rec.Dropped
			continue
		}
		kind, ok := KindByName(rec.Kind)
		if !ok {
			return nil, fmt.Errorf("telemetry: jsonl line %d: unknown kind %q", line, rec.Kind)
		}
		sys := int32(-1)
		if rec.Sys != nil {
			sys = *rec.Sys
		}
		c.Events = append(c.Events, Event{
			Time: rec.T, Core: rec.Core, Seq: rec.Seq, Kind: kind,
			Offload: rec.Offload, Global: rec.Global, Sys: sys,
			Instrs: rec.Instrs, Pred: rec.Pred, Cycles: rec.Cycles, Value: rec.Value,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading jsonl: %w", err)
	}
	return c, nil
}
