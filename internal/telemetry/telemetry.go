// Package telemetry is the simulator's observability layer: a
// deterministic structured event trace (per-core ring buffers merged in
// (time, core, seq) order), interval time-series of the headline
// metrics, and exporters for JSONL and the Chrome trace-event format
// that Perfetto loads (docs/TELEMETRY.md).
//
// The layer is built around two contracts. First, instrumentation never
// perturbs the simulation: tracing only reads engine state, so results
// are byte-identical with telemetry on or off. Second, tracing itself is
// deterministic: per-core rings are private to their simulated core (the
// parallel engine's workers never contend), and the merge order is a
// pure function of event content, so trace bytes are identical at any
// GOMAXPROCS and any Workers setting. A nil *Tracer is the disabled
// state; every method is nil-safe and the simulator guards its emission
// sites with a single pointer check, which the engine benchmark bounds
// at under 2% (make telemetry-overhead).
package telemetry

import (
	"fmt"
	"sort"
)

// DefaultRingEvents is the default per-core event-ring capacity. At 48
// bytes an event, the default bounds a 16-core trace at ~50 MB.
const DefaultRingEvents = 1 << 16

// DefaultIntervalInstrs is the default time-series cadence in retired
// instructions per user core.
const DefaultIntervalInstrs = 50_000

// Options configures what a Tracer captures.
type Options struct {
	// Events enables the structured event trace.
	Events bool
	// RingEvents bounds each core's event ring; when a ring fills, the
	// oldest events are overwritten (the trace keeps the tail).
	// 0 takes DefaultRingEvents.
	RingEvents int
	// IntervalInstrs enables interval time-series sampling at this
	// cadence (retired instructions per user core); 0 disables the
	// series.
	IntervalInstrs uint64
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.RingEvents < 0 {
		return fmt.Errorf("telemetry: negative RingEvents %d", o.RingEvents)
	}
	if !o.Events && o.IntervalInstrs == 0 {
		return fmt.Errorf("telemetry: nothing enabled (set Events or IntervalInstrs)")
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.Events && o.RingEvents == 0 {
		o.RingEvents = DefaultRingEvents
	}
	return o
}

// Meta identifies the run a capture came from.
type Meta struct {
	Workload  string `json:"workload"`
	Policy    string `json:"policy"`
	Threshold int    `json:"threshold"`
	UserCores int    `json:"user_cores"`
	OSCore    bool   `json:"os_core"`
	// OSCores is the OS-cluster core count K when the run used the
	// multi-OS-core model (internal/oscore); 0 — and omitted — for the
	// classic single-OS-core configuration, keeping legacy headers
	// byte-identical.
	OSCores int    `json:"os_cores,omitempty"`
	Seed    uint64 `json:"seed"`
	// TimeUnit names the unit of every Time/Cycles field: "cycle".
	TimeUnit string `json:"time_unit"`
}

// Capture is the finished product of a traced run: the merged event
// stream, the interval time-series, and enough metadata to interpret
// both.
type Capture struct {
	Meta   Meta
	Events []Event
	Series []IntervalPoint
	// Dropped counts events lost to ring overflow (oldest-first, per
	// core); 0 means the trace is complete.
	Dropped uint64
}

// ring is one core's event buffer: a circular overwrite buffer that
// keeps the most recent cap(buf) events. n counts every emission, so
// n - len(kept) is the core's drop count and n is the per-core Seq
// source.
type ring struct {
	buf []Event
	n   uint64
}

func (r *ring) emit(ev Event) {
	ev.Seq = uint32(r.n)
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.n%uint64(cap(r.buf))] = ev
	}
	r.n++
}

func (r *ring) dropped() uint64 {
	return r.n - uint64(len(r.buf))
}

// Tracer collects one run's telemetry. Build one with New, hand it to
// sim.Simulator.AttachTelemetry before Run, and read the Capture after.
// Emission is safe for concurrent use by distinct cores (each core owns
// its ring); all other methods are single-goroutine.
type Tracer struct {
	opts  Options
	meta  Meta
	rings []ring
	// armed gates emission to the measurement phase: the simulator arms
	// the tracer after warmup, so captures describe exactly the window
	// Result describes.
	armed  bool
	series []IntervalPoint
}

// New builds a tracer for a system with cores user cores.
func New(opts Options, cores int, meta Meta) (*Tracer, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if cores < 1 {
		return nil, fmt.Errorf("telemetry: cores %d < 1", cores)
	}
	opts = opts.withDefaults()
	meta.TimeUnit = "cycle"
	t := &Tracer{opts: opts, meta: meta}
	if opts.Events {
		t.rings = make([]ring, cores)
		for i := range t.rings {
			t.rings[i].buf = make([]Event, 0, opts.RingEvents)
		}
	}
	return t, nil
}

// MustNew panics on option errors.
func MustNew(opts Options, cores int, meta Meta) *Tracer {
	t, err := New(opts, cores, meta)
	if err != nil {
		panic(err)
	}
	return t
}

// Arm enables emission; the simulator calls it at the warmup/measurement
// boundary. Nil-safe.
func (t *Tracer) Arm() {
	if t == nil {
		return
	}
	t.armed = true
}

// EventsEnabled reports whether the structured event trace is on.
// Nil-safe.
func (t *Tracer) EventsEnabled() bool {
	return t != nil && t.opts.Events
}

// IntervalInstrs returns the time-series cadence (0 = disabled).
// Nil-safe.
func (t *Tracer) IntervalInstrs() uint64 {
	if t == nil {
		return 0
	}
	return t.opts.IntervalInstrs
}

// Emit records one event on core's ring. Distinct cores may emit
// concurrently; one core's emissions must be serial (they are: each
// simulated core is stepped by exactly one goroutine). Nil-safe.
func (t *Tracer) Emit(core int, ev Event) {
	if t == nil || !t.armed || !t.opts.Events {
		return
	}
	ev.Core = int32(core)
	t.rings[core].emit(ev)
}

// RecordInterval appends one time-series point. Nil-safe.
func (t *Tracer) RecordInterval(p IntervalPoint) {
	if t == nil || !t.armed {
		return
	}
	p.Index = len(t.series)
	t.series = append(t.series, p)
}

// Capture merges the per-core rings into the canonical (Time, Core,
// Seq) order and returns the finished capture. The merge is a pure
// function of event content, so two runs of the same configuration
// yield byte-identical encodings regardless of host parallelism.
func (t *Tracer) Capture() *Capture {
	if t == nil {
		return nil
	}
	c := &Capture{Meta: t.meta, Series: t.series}
	total := 0
	for i := range t.rings {
		total += len(t.rings[i].buf)
		c.Dropped += t.rings[i].dropped()
	}
	c.Events = make([]Event, 0, total)
	for i := range t.rings {
		c.Events = append(c.Events, t.rings[i].buf...)
	}
	sort.Slice(c.Events, func(a, b int) bool {
		x, y := &c.Events[a], &c.Events[b]
		if x.Time != y.Time {
			return x.Time < y.Time
		}
		if x.Core != y.Core {
			return x.Core < y.Core
		}
		return x.Seq < y.Seq
	})
	return c
}
